(** Static data-race detection from RELAY summaries.

    A {e race pair} is a pair of static statements (identified by sid)
    that may access the same abstract object from two concurrently-running
    thread roots, with disjoint locksets, at least one side writing
    (Section 2.1 of the paper).

    As in RELAY, non-mutex happens-before (fork/join, barriers, condition
    variables) is ignored, so e.g. initialization code in [main] is
    considered concurrent with every spawned thread — a deliberate
    imprecision that Chimera's profiling optimization later exploits.

    The one post-filter we apply is the paper's sound heapified-local
    filter (Section 6.2): a race on a function local is dropped unless the
    local {e escapes} its function (its address is reachable from a
    global, the heap, or another function's frame in the points-to
    solution). *)

open Minic.Ast
module A = Pointer.Absloc
module Aset = Pointer.Absloc.Set

type site = {
  st_sid : int;
  st_fname : string;
  st_line : int;
  st_write : bool;
}

let pp_site ppf s =
  Fmt.pf ppf "%s:%d(sid %d)%s" s.st_fname s.st_line s.st_sid
    (if s.st_write then "[W]" else "[R]")

type race_pair = {
  rp_s1 : site;   (** site with the smaller sid *)
  rp_s2 : site;
  rp_objs : A.t list;  (** abstract objects the pair races on *)
}

let pp_race_pair ppf rp =
  Fmt.pf ppf "%a <-> %a on {%a}" pp_site rp.rp_s1 pp_site rp.rp_s2
    Fmt.(list ~sep:comma A.pp)
    rp.rp_objs

type provenance = Kept | Pruned_mhp | Pruned_escape

let pp_provenance ppf = function
  | Kept -> Fmt.string ppf "kept"
  | Pruned_mhp -> Fmt.string ppf "pruned:mhp"
  | Pruned_escape -> Fmt.string ppf "pruned:escape"

type report = {
  races : race_pair list;                  (** kept after MHP pruning *)
  pruned : (race_pair * provenance) list;  (** statically serialized *)
  n_candidates : int;                      (** pairs before pruning *)
  racy_sids : (int, unit) Hashtbl.t;       (** sids of kept pairs *)
  racy_fun_pairs : (string * string) list; (** deduped function pairs *)
  roots : string list;
}

(* ------------------------------------------------------------------ *)
(* Escape analysis for the heapified-local filter *)

(** Candidate holders: all globals, heap allocation sites, and every
    function's locals and params. Enumerated once per program — the
    per-local escape queries below all share one enumeration instead of
    re-scanning the program each time. *)
let all_holders (p : program) : A.t list =
  let holders = ref [] in
  List.iter
    (fun (g : global) -> holders := A.AGlobal g.g_name :: !holders)
    p.p_globals;
  List.iter
    (fun (fd : fundec) ->
      List.iter
        (fun (v : var_decl) ->
          holders := A.ALocal (fd.f_name, v.v_name) :: !holders)
        (fd.f_params @ fd.f_locals))
    p.p_funs;
  iter_program_stmts
    (fun s ->
      match s.skind with
      | Builtin (_, Malloc, _) -> holders := A.AHeap s.sid :: !holders
      | _ -> ())
    p;
  !holders

(** Does local [l = ALocal (f, v)] escape [f] given the precomputed
    holder set? True iff its address appears in the points-to set of some
    location outside [f]'s frame (global, heap object, or another
    function's local/param), directly or held transitively inside an
    object that holder points to. *)
let escapes_among (pa : Pointer.Analysis.t) (holders : A.t list) (l : A.t) :
    bool =
  match l with
  | A.ALocal (f, _) ->
      let pts = Pointer.Analysis.points_to pa in
      let foreign = function A.ALocal (g, _) -> g <> f | _ -> true in
      List.exists
        (fun h ->
          foreign h
          && (Aset.mem l (pts h)
             || Aset.exists
                  (fun o -> (not (A.equal o l)) && Aset.mem l (pts o))
                  (pts h)))
        holders
  | _ -> true

(** One-off query form (tests, external callers): enumerates holders for
    this single query. {!detect} instead calls {!escapes_among} with one
    shared enumeration. *)
let escapes (pa : Pointer.Analysis.t) (l : A.t) : bool =
  escapes_among pa (all_holders pa.Pointer.Analysis.prog) l

(* ------------------------------------------------------------------ *)

(** Which roots can a function's code run under? A function reachable from
    root r (per the pointer-resolved call graph) runs in r's thread. *)
let roots_of_fun (cg : Minic.Callgraph.t) (roots : string list) :
    (string, string list) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          let cur = Option.value (Hashtbl.find_opt tbl f) ~default:[] in
          Hashtbl.replace tbl f (r :: cur))
        (Minic.Callgraph.reachable_from cg r))
    roots;
  tbl

(** Two accesses can be concurrent if reachable from two different roots,
    or from one root that can have multiple live instances. *)
let concurrent_roots (cg : Minic.Callgraph.t) roots_a roots_b : bool =
  List.exists
    (fun ra ->
      List.exists
        (fun rb ->
          ra <> rb || Minic.Callgraph.root_multiply_spawned cg ra)
        roots_b)
    roots_a

(* ------------------------------------------------------------------ *)
(* MHP pruning: classify each candidate pair *)

(** An object is {e confined} when fork/join structure serializes every
    one of its writes against every one of its accesses — the MHP
    strengthening of the escape filter: an object written only while its
    other accessors' threads are not yet spawned (or already joined)
    cannot race, wherever its address flows. *)
let object_confined (mhp : Mhp.t) (accs : Summary.gaccess list) : bool =
  List.exists (fun (a : Summary.gaccess) -> a.Summary.ga_write) accs
  && List.for_all
       (fun (w : Summary.gaccess) ->
         (not w.Summary.ga_write)
         || List.for_all
              (fun (a : Summary.gaccess) ->
                Mhp.pair_serialized mhp ~f1:w.Summary.ga_fname
                     ~sid1:w.Summary.ga_sid ~f2:a.Summary.ga_fname
                     ~sid2:a.Summary.ga_sid)
              accs)
       accs

(** Classify a candidate pair. The escape refinement is checked first:
    it is the stronger (object-level) fact, and subsumes the site-level
    MHP check for the pairs it covers. *)
let classify_pair mhp confined_c (rp : race_pair) : provenance =
  if List.for_all confined_c rp.rp_objs then Pruned_escape
  else if
    Mhp.pair_serialized mhp ~f1:rp.rp_s1.st_fname ~sid1:rp.rp_s1.st_sid
      ~f2:rp.rp_s2.st_fname ~sid2:rp.rp_s2.st_sid
  then Pruned_mhp
  else Kept

(** Run race detection over computed summaries.

    With [pool], the per-object escape filter + pair scans and the
    per-candidate MHP classification run concurrently. Each object's
    scan is independent and returns its pair contributions as an event
    list; events are replayed into the shared pair table serially, in
    the object order a serial run would have used, so the report —
    including the [rp_objs] order inside each pair — is byte-identical
    to the serial one. [precomputed_mhp] lets the caller run (and time)
    {!Mhp.analyze} itself; ignored when [mhp] is [false]. *)
let detect ?(mhp = true) ?(precomputed_mhp : Mhp.t option)
    ?(pool : Par.Pool.t option) (sm : Summary.t) : report =
  let cg = sm.Summary.cg in
  let roots = cg.Minic.Callgraph.cg_roots in
  let fun_roots = roots_of_fun cg roots in
  let roots_of f = Option.value (Hashtbl.find_opt fun_roots f) ~default:[] in
  (* collect root-level accesses: for each root, its composed summary *)
  let accesses : Summary.gaccess list =
    List.concat_map (fun r -> (Summary.summary sm r).Summary.sm_accesses) roots
    (* dedupe by (sid, obj, write), intersecting locksets *)
    |> List.fold_left
         (fun m (a : Summary.gaccess) -> Summary.merge_access m a)
         Summary.AccMap.empty
    |> Summary.AccMap.bindings |> List.map snd
  in
  (* index by object *)
  let by_obj : (A.t, Summary.gaccess list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Summary.gaccess) ->
      let cur = Option.value (Hashtbl.find_opt by_obj a.ga_obj) ~default:[] in
      Hashtbl.replace by_obj a.ga_obj (a :: cur))
    accesses;
  (* escape queries: one holder enumeration for the whole detection run *)
  let holders = all_holders sm.Summary.pa.Pointer.Analysis.prog in
  (* fix the object order once — Hashtbl.fold traverses like
     Hashtbl.iter, so this is exactly the order a serial [Hashtbl.iter
     by_obj] scan would visit — then scan each object independently
     (parallel) and replay the contributions serially in that order *)
  let obj_entries =
    List.rev (Hashtbl.fold (fun o accs acc -> (o, accs) :: acc) by_obj [])
  in
  let scan_obj (obj, accs) =
    let shareable =
      match obj with
      | A.ALocal _ -> escapes_among sm.Summary.pa holders obj
      | A.AGlobal _ | A.AHeap _ -> true
      | _ -> false
    in
    if not shareable then []
    else begin
      let out = ref [] in
      let arr = Array.of_list accs in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let a : Summary.gaccess = arr.(i)
          and b : Summary.gaccess = arr.(j) in
          if
            (a.ga_write || b.ga_write)
            && (a.ga_sid <> b.ga_sid || a.ga_write = b.ga_write)
            && Aset.is_empty (Aset.inter a.ga_held b.ga_held)
            && concurrent_roots cg (roots_of a.ga_fname) (roots_of b.ga_fname)
          then begin
            let s1, s2 = if a.ga_sid <= b.ga_sid then (a, b) else (b, a) in
            let site_of (x : Summary.gaccess) =
              {
                st_sid = x.ga_sid;
                st_fname = x.ga_fname;
                st_line = x.ga_line;
                st_write = x.ga_write;
              }
            in
            out := ((s1.ga_sid, s2.ga_sid), site_of s1, site_of s2) :: !out
          end
        done
      done;
      List.rev !out
    end
  in
  let scans = Par.Pool.map_opt pool scan_obj obj_entries in
  let pairs : (int * int, site * site * A.t list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter2
    (fun (obj, _) events ->
      List.iter
        (fun (key, x1, y1) ->
          match Hashtbl.find_opt pairs key with
          | None -> Hashtbl.replace pairs key (x1, y1, [ obj ])
          | Some (x, y, objs) ->
              if not (List.exists (A.equal obj) objs) then
                Hashtbl.replace pairs key (x, y, obj :: objs))
        events)
    obj_entries scans;
  let candidates =
    Hashtbl.fold
      (fun _ (s1, s2, objs) acc -> { rp_s1 = s1; rp_s2 = s2; rp_objs = objs } :: acc)
      pairs []
    |> List.sort (fun a b ->
           compare (a.rp_s1.st_sid, a.rp_s2.st_sid) (b.rp_s1.st_sid, b.rp_s2.st_sid))
  in
  let races, pruned =
    if not mhp then (candidates, [])
    else begin
      let m =
        match precomputed_mhp with
        | Some m -> m
        | None -> Mhp.analyze sm.Summary.prog sm.Summary.pa cg
      in
      (* confinement is per-object: precompute it (concurrently) for the
         objects candidates actually race on, then classification is a
         pure read and can itself fan out per candidate *)
      let cand_objs =
        List.concat_map (fun rp -> rp.rp_objs) candidates
        |> List.sort_uniq compare
      in
      let conf_tbl : (A.t, bool) Hashtbl.t = Hashtbl.create 16 in
      Par.Pool.map_opt pool
        (fun obj ->
          let accs = Option.value (Hashtbl.find_opt by_obj obj) ~default:[] in
          object_confined m accs)
        cand_objs
      |> List.iter2 (Hashtbl.replace conf_tbl) cand_objs;
      let confined_c obj = Hashtbl.find conf_tbl obj in
      let provs =
        Par.Pool.map_opt pool (classify_pair m confined_c) candidates
      in
      List.fold_left2
        (fun (kept, pruned) rp prov ->
          match prov with
          | Kept -> (rp :: kept, pruned)
          | p -> (kept, (rp, p) :: pruned))
        ([], []) candidates provs
      |> fun (k, p) -> (List.rev k, List.rev p)
    end
  in
  let racy_sids = Hashtbl.create 64 in
  List.iter
    (fun rp ->
      Hashtbl.replace racy_sids rp.rp_s1.st_sid ();
      Hashtbl.replace racy_sids rp.rp_s2.st_sid ())
    races;
  let racy_fun_pairs =
    List.map
      (fun rp ->
        let f1 = rp.rp_s1.st_fname and f2 = rp.rp_s2.st_fname in
        if f1 <= f2 then (f1, f2) else (f2, f1))
      races
    |> List.sort_uniq compare
  in
  {
    races;
    pruned;
    n_candidates = List.length candidates;
    racy_sids;
    racy_fun_pairs;
    roots;
  }

(** Convenience: full static analysis pipeline from a program. *)
let analyze ?mhp ?pool (p : program) : Summary.t * report =
  let pa = Pointer.Analysis.run p in
  let sm = Summary.compute ?pool p pa in
  (sm, detect ?mhp ?pool sm)

let pp_report ppf (r : report) =
  Fmt.pf ppf "roots: %a@\n%d race pairs (%d candidates, %d pruned):@\n%a"
    Fmt.(list ~sep:comma string)
    r.roots (List.length r.races) r.n_candidates (List.length r.pruned)
    Fmt.(list ~sep:(any "@\n") pp_race_pair)
    r.races

let pp_report_explain ppf (r : report) =
  let all =
    List.map (fun rp -> (rp, Kept)) r.races @ r.pruned
    |> List.sort (fun (a, _) (b, _) ->
           compare
             (a.rp_s1.st_sid, a.rp_s2.st_sid)
             (b.rp_s1.st_sid, b.rp_s2.st_sid))
  in
  Fmt.pf ppf "roots: %a@\n%d candidate pairs, %d kept, %d pruned:@\n%a"
    Fmt.(list ~sep:comma string)
    r.roots r.n_candidates (List.length r.races) (List.length r.pruned)
    Fmt.(
      list ~sep:(any "@\n") (fun ppf (rp, p) ->
          pf ppf "[%a] %a" pp_provenance p pp_race_pair rp))
    all
