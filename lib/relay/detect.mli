(** Static race detection from RELAY summaries.

    A race pair is a pair of statements that may access the same abstract
    object from two concurrently-runnable thread roots, with disjoint
    locksets, at least one side writing. Fork/join and barrier ordering
    are ignored (RELAY's deliberate imprecision, recovered by Chimera's
    profiling); races on function locals are dropped unless the local
    escapes its frame (the paper's sound heapified-local filter,
    Section 6.2). *)

type site = {
  st_sid : int;
  st_fname : string;
  st_line : int;
  st_write : bool;
}

val pp_site : site Fmt.t

type race_pair = {
  rp_s1 : site;  (** site with the smaller sid *)
  rp_s2 : site;
  rp_objs : Pointer.Absloc.t list;  (** objects the pair races on *)
}

val pp_race_pair : race_pair Fmt.t

(** Why a candidate pair survived or was dropped. [Pruned_escape] marks
    pairs whose every raced-on object is {e confined} — all its writes are
    serialized against all its accesses by fork/join structure (the
    object-level strengthening of {!escapes}); [Pruned_mhp] marks pairs
    whose two sites the MHP phase analysis proves can never run
    concurrently. *)
type provenance = Kept | Pruned_mhp | Pruned_escape

val pp_provenance : provenance Fmt.t

type report = {
  races : race_pair list;  (** pairs kept after MHP pruning *)
  pruned : (race_pair * provenance) list;
      (** candidate pairs statically serialized by fork/join ordering *)
  n_candidates : int;  (** RELAY pairs before pruning *)
  racy_sids : (int, unit) Hashtbl.t;  (** sids of kept pairs *)
  racy_fun_pairs : (string * string) list;  (** deduped, ordered pairs *)
  roots : string list;  (** thread entry points considered *)
}

(** Does the local escape its function (address reachable from a global,
    the heap, or another frame in the points-to solution)? Non-local
    locations trivially "escape". *)
val escapes : Pointer.Analysis.t -> Pointer.Absloc.t -> bool

(** Race detection over computed summaries. [mhp] (default [true]) runs
    the {!Mhp} pass and moves statically serialized pairs from [races] to
    [pruned]; [~mhp:false] reproduces raw RELAY output.
    [precomputed_mhp] supplies an already-computed MHP analysis (so the
    caller can time it separately); ignored when [mhp] is [false]. With
    [pool], per-object scans and per-candidate classification run
    concurrently with byte-identical output. *)
val detect :
  ?mhp:bool -> ?precomputed_mhp:Mhp.t -> ?pool:Par.Pool.t -> Summary.t -> report

(** Full static pipeline: pointer analysis, summaries, detection. *)
val analyze :
  ?mhp:bool -> ?pool:Par.Pool.t -> Minic.Ast.program -> Summary.t * report

val pp_report : report Fmt.t

(** Like {!pp_report} but listing every candidate pair with its
    provenance ([kept] / [pruned:mhp] / [pruned:escape]) — the
    [--explain-races] view. *)
val pp_report_explain : report Fmt.t
