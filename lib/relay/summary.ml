(** RELAY-style function summaries (Voung, Jhala, Lerner — FSE 2007).

    For every function we compute, flow-sensitively over the structured
    body, the set of {e guarded accesses}: (statement, abstract object,
    read/write, relative lockset). Locksets are {e relative} to the
    function's entry: [ga_held] are locks acquired within the function (or
    its callees) and still held at the access; [ga_released] are locks the
    function released that it did not itself acquire (i.e. entry locks it
    dropped). Summaries compose bottom-up over the call graph, so the
    summary of a thread root carries absolute locksets.

    Soundness choices (Section 3 of the paper):
    - locksets must {e under}-approximate: a [lock(e)] whose argument does
      not resolve to a single must-alias object acquires nothing;
    - object sets {e over}-approximate via Andersen/Steensgaard points-to;
    - non-mutex synchronization (fork/join, barriers, condition variables)
      contributes no happens-before — deliberately, as in RELAY; this is
      the paper's first source of false positives, later recovered by
      profiling. *)

open Minic.Ast
module A = Pointer.Absloc
module Aset = Pointer.Absloc.Set

type gaccess = {
  ga_sid : int;
  ga_fname : string;  (** function containing the statement *)
  ga_line : int;
  ga_obj : A.t;
  ga_write : bool;
  ga_held : Aset.t;
  ga_released : Aset.t;
}

let pp_gaccess ppf a =
  Fmt.pf ppf "%s:%d %s %a held=%a" a.ga_fname a.ga_line
    (if a.ga_write then "W" else "R")
    A.pp a.ga_obj A.pp_set a.ga_held

type summary = {
  sm_accesses : gaccess list;
  sm_acquired : Aset.t;  (** locks held at exit that were not held at entry *)
  sm_released : Aset.t;  (** entry locks released by the function *)
}

let empty_summary =
  { sm_accesses = []; sm_acquired = Aset.empty; sm_released = Aset.empty }

type t = {
  summaries : (string, summary) Hashtbl.t;
  prog : program;
  pa : Pointer.Analysis.t;
  cg : Minic.Callgraph.t;
}

(* ------------------------------------------------------------------ *)

type state = { held : Aset.t; released : Aset.t }

let entry_state = { held = Aset.empty; released = Aset.empty }

let join_state a b =
  { held = Aset.inter a.held b.held; released = Aset.union a.released b.released }

let equal_state a b = Aset.equal a.held b.held && Aset.equal a.released b.released

(* access dedup/merge: same (sid, obj, write) merges by intersecting held
   (sound: the lock is only guaranteed held if held on every path) *)
module AccKey = struct
  type t = int * A.t * bool
  let compare = compare
end

module AccMap = Map.Make (AccKey)

let merge_access m (a : gaccess) =
  let key = (a.ga_sid, a.ga_obj, a.ga_write) in
  match AccMap.find_opt key m with
  | None -> AccMap.add key a m
  | Some b ->
      AccMap.add key
        {
          b with
          ga_held = Aset.inter b.ga_held a.ga_held;
          ga_released = Aset.union b.ga_released a.ga_released;
        }
        m

(* ------------------------------------------------------------------ *)

type ctx = {
  prog : program;
  pa : Pointer.Analysis.t;
  lookup : string -> summary option;
  fname : string;
  sid_index : (int, int) Hashtbl.t;  (* sid -> line *)
  mutable accs : gaccess AccMap.t;
}

(* objects an lvalue touches, filtered to those that could possibly be
   shared (globals, heap, locals of other functions, or locals whose
   address is taken somewhere) *)
let shareable _ctx (l : A.t) : bool =
  match l with
  | A.AGlobal n -> not (String.length n > 0 && n.[0] = '$')
  | A.AHeap _ -> true
  | A.ALocal _ -> true (* refined by the escape filter at detection time *)
  | A.AFun _ | A.ATemp _ -> false

let record ctx (st : state) (s : stmt) ~(write : bool) (objs : Aset.t) : unit =
  Aset.iter
    (fun o ->
      if shareable ctx o then
        ctx.accs <-
          merge_access ctx.accs
            {
              ga_sid = s.sid;
              ga_fname = ctx.fname;
              ga_line = s.sloc.line;
              ga_obj = o;
              ga_write = write;
              ga_held = st.held;
              ga_released = st.released;
            })
    objs

let lval_objs ctx lv = Pointer.Analysis.lval_objects ctx.pa ctx.fname lv

(* record all reads embedded in an expression *)
let rec record_exp ctx st s (e : exp) : unit =
  match e with
  | Const _ -> ()
  | Lval lv ->
      record ctx st s ~write:false (lval_objs ctx lv);
      record_lval_addr ctx st s lv
  | AddrOf lv -> record_lval_addr ctx st s lv
  | Unop (_, e) -> record_exp ctx st s e
  | Binop (_, a, b) -> record_exp ctx st s a; record_exp ctx st s b

(* reads performed to *compute the address* of an lvalue *)
and record_lval_addr ctx st s (lv : lval) : unit =
  match lv with
  | Var _ -> ()
  | Deref e -> record_exp ctx st s e
  | Index (lv, e) -> record_lval_addr ctx st s lv; record_exp ctx st s e
  | Field (lv, _) -> record_lval_addr ctx st s lv
  | Arrow (e, _) -> record_exp ctx st s e

(* apply callee summary at a call site *)
let apply_summary ctx (st : state) (sm : summary) : state =
  List.iter
    (fun (a : gaccess) ->
      let held = Aset.union a.ga_held (Aset.diff st.held a.ga_released) in
      let released =
        Aset.union st.released (Aset.diff a.ga_released st.held)
      in
      ctx.accs <-
        merge_access ctx.accs { a with ga_held = held; ga_released = released })
    sm.sm_accesses;
  {
    held = Aset.union (Aset.diff st.held sm.sm_released) sm.sm_acquired;
    released = Aset.union st.released (Aset.diff sm.sm_released st.held);
  }

let summary_of ctx f = Option.value (ctx.lookup f) ~default:empty_summary

let rec walk_block ctx (st : state) (b : block) : state =
  List.fold_left (fun st s -> walk_stmt ctx st s) st b

and walk_stmt ctx (st : state) (s : stmt) : state =
  match s.skind with
  | Assign (lv, e) ->
      record_exp ctx st s e;
      record_lval_addr ctx st s lv;
      record ctx st s ~write:true (lval_objs ctx lv);
      st
  | Call (ret, tgt, args) ->
      List.iter (record_exp ctx st s) args;
      Option.iter
        (fun lv ->
          record_lval_addr ctx st s lv;
          record ctx st s ~write:true (lval_objs ctx lv))
        ret;
      let callees =
        match tgt with
        | Direct f -> [ f ]
        | ViaPtr e -> Pointer.Analysis.resolve_funptr ctx.pa ctx.fname e
      in
      (* conservative over indirect targets: resulting state must be sound
         whichever callee ran -> join *)
      let states =
        List.filter_map
          (fun f ->
            if Minic.Ast.find_fun ctx.prog f = None then None
            else Some (apply_summary ctx st (summary_of ctx f)))
          callees
      in
      (match states with
      | [] -> st
      | s0 :: rest -> List.fold_left join_state s0 rest)
  | Builtin (ret, b, args) -> (
      List.iter (record_exp ctx st s) args;
      Option.iter
        (fun lv ->
          record_lval_addr ctx st s lv;
          record ctx st s ~write:true (lval_objs ctx lv))
        ret;
      match (b, args) with
      | MutexLock, [ e ] -> (
          match Pointer.Analysis.lock_objects ctx.pa ctx.fname e with
          | Some l -> { st with held = Aset.add l st.held }
          | None -> st (* unknown lock acquires nothing: underestimate *))
      | MutexUnlock, [ e ] -> (
          match Pointer.Analysis.lock_objects ctx.pa ctx.fname e with
          | Some l ->
              if Aset.mem l st.held then
                { st with held = Aset.remove l st.held }
              else { st with released = Aset.add l st.released }
          | None ->
              (* unknown unlock might release anything we hold: drop all
                 (sound direction: underestimate held locks) *)
              {
                held = Aset.empty;
                released = Aset.union st.released st.held;
              })
      | (NetRead | FileRead), buf :: _ ->
          (* the runtime writes into the buffer *)
          let objs = Pointer.Analysis.exp_objects ctx.pa ctx.fname buf in
          record ctx st s ~write:true objs;
          st
      | Spawn, _ :: rest ->
          List.iter (record_exp ctx st s) rest;
          st
      | _ -> st)
  | If (c, b1, b2) ->
      record_exp ctx st s c;
      let s1 = walk_block ctx st b1 in
      let s2 = walk_block ctx st b2 in
      join_state s1 s2
  | While (c, body, _) ->
      record_exp ctx st s c;
      (* fixpoint: held can only shrink, released only grow *)
      let cur = ref st in
      let stable = ref false in
      while not !stable do
        let after = walk_block ctx !cur body in
        let joined = join_state !cur after in
        if equal_state joined !cur then stable := true else cur := joined
      done;
      !cur
  | Return (Some e) ->
      record_exp ctx st s e;
      st
  | Return None | Break | Continue -> st
  | WeakEnter _ | WeakExit _ -> st

let analyze_fun prog pa lookup (fd : fundec) : summary =
  let ctx =
    { prog; pa; lookup; fname = fd.f_name; sid_index = Hashtbl.create 1; accs = AccMap.empty }
  in
  let final = walk_block ctx entry_state fd.f_body in
  {
    sm_accesses = List.map snd (AccMap.bindings ctx.accs);
    sm_acquired = final.held;
    sm_released = final.released;
  }

let equal_summary (a : summary) (b : summary) =
  Aset.equal a.sm_acquired b.sm_acquired
  && Aset.equal a.sm_released b.sm_released
  && List.length a.sm_accesses = List.length b.sm_accesses
  && List.for_all2
       (fun (x : gaccess) (y : gaccess) ->
         x.ga_sid = y.ga_sid && A.equal x.ga_obj y.ga_obj
         && x.ga_write = y.ga_write
         && Aset.equal x.ga_held y.ga_held
         && Aset.equal x.ga_released y.ga_released)
       a.sm_accesses b.sm_accesses

(** Compute summaries bottom-up over the call-graph condensation. SCCs
    are scheduled level by level: all components in a level depend only
    on strictly earlier levels, so with [pool] they are solved
    concurrently, each against a read-only view of the completed
    levels. Each component runs its own local fixpoint (recursion
    iterates; bounded: locksets shrink, access sets are bounded by
    program size). Results merge into the shared table serially in
    level/component order, so the final table — and everything derived
    from it — is identical with or without a pool. *)
let compute ?(pool : Par.Pool.t option) (p : program) (pa : Pointer.Analysis.t)
    : t =
  let cg = Pointer.Analysis.callgraph pa in
  let summaries = Hashtbl.create 64 in
  let solve_scc comp =
    (* overlay: this component's in-progress summaries shadow the shared
       table, which holds only completed lower levels during a level *)
    let local = Hashtbl.create (List.length comp) in
    let lookup f =
      match Hashtbl.find_opt local f with
      | Some _ as sm -> sm
      | None -> Hashtbl.find_opt summaries f
    in
    let members = List.filter_map (Minic.Ast.find_fun p) comp in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 10 do
      incr rounds;
      changed := false;
      List.iter
        (fun (fd : fundec) ->
          let sm = analyze_fun p pa lookup fd in
          let prev =
            Option.value (Hashtbl.find_opt local fd.f_name)
              ~default:empty_summary
          in
          if not (equal_summary prev sm) then begin
            changed := true;
            Hashtbl.replace local fd.f_name sm
          end)
        members;
      (* non-recursive singleton: the one pass is exact, skip the
         confirmation round *)
      (match comp with
      | [ f ] when not (List.mem f (Minic.Callgraph.callees cg f)) ->
          changed := false
      | _ -> ())
    done;
    List.filter_map
      (fun (fd : fundec) ->
        Option.map (fun sm -> (fd.f_name, sm)) (Hashtbl.find_opt local fd.f_name))
      members
  in
  List.iter
    (fun level ->
      Par.Pool.map_opt pool solve_scc level
      |> List.iter (List.iter (fun (f, sm) -> Hashtbl.replace summaries f sm)))
    (Minic.Callgraph.scc_levels cg p);
  { summaries; prog = p; pa; cg }

let summary (t : t) (f : string) : summary =
  Option.value (Hashtbl.find_opt t.summaries f) ~default:empty_summary
