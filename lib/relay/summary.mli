(** RELAY-style function summaries (Voung, Jhala, Lerner — FSE 2007):
    per-function guarded accesses with entry-relative locksets, composed
    bottom-up over the call graph so that thread-root summaries carry
    absolute locksets.

    Soundness choices (paper Section 3): locksets under-approximate
    (an unresolvable [lock(e)] acquires nothing), object sets
    over-approximate (points-to), and non-mutex synchronization
    contributes no ordering — deliberately, as in RELAY. *)

module Aset = Pointer.Absloc.Set

type gaccess = {
  ga_sid : int;       (** statement id of the access *)
  ga_fname : string;  (** function containing the statement *)
  ga_line : int;
  ga_obj : Pointer.Absloc.t;
  ga_write : bool;
  ga_held : Aset.t;      (** locks definitely held (entry-relative) *)
  ga_released : Aset.t;  (** entry locks released before this access *)
}

val pp_gaccess : gaccess Fmt.t

type summary = {
  sm_accesses : gaccess list;
  sm_acquired : Aset.t;  (** net locks held at exit *)
  sm_released : Aset.t;  (** entry locks released *)
}

val empty_summary : summary

type t = {
  summaries : (string, summary) Hashtbl.t;
  prog : Minic.Ast.program;
  pa : Pointer.Analysis.t;
  cg : Minic.Callgraph.t;
}

(** Access-map keyed by (sid, object, write); merging intersects held
    locksets (sound: a lock protects an access only if held on every
    path). *)
module AccMap : Map.S with type key = int * Pointer.Absloc.t * bool

val merge_access : gaccess AccMap.t -> gaccess -> gaccess AccMap.t

(** Compute all summaries bottom-up over the (pointer-resolved) call
    graph; recursion iterates to a fixpoint. With [pool], independent
    call-graph SCCs at the same condensation depth are solved
    concurrently; results merge in callgraph order, so the outcome is
    identical to the serial run. *)
val compute : ?pool:Par.Pool.t -> Minic.Ast.program -> Pointer.Analysis.t -> t

val summary : t -> string -> summary
