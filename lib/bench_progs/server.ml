(** The two server applications of Table 1: knot and apache.

    - {b knot}: a small thread-per-pool web server. [main] accepts
      requests ([net_read]) and hands them to workers through a bounded
      queue (mutex + condition variables); workers serve pages from an
      in-memory cache and racily bump hit/miss statistics — partly
      inline ([hits], the [freq] popularity check) and partly through
      the [account] bookkeeping helper, so the statistics clique spans a
      caller/callee pair the way apache's response clique does. Network
      wait dominates, so recording overhead hides under I/O as in the
      paper.
    - {b apache}: a larger worker-pool server. Each worker accepts under
      an accept mutex, parses the request, and builds the response in its
      own slice of a shared response arena by calling [memset_w] — the
      paper's flagship example (Section 7.3): RELAY reports a false race
      inside the hot memset loop because the per-worker slices are one
      abstract object, and only the symbolic-bounds loop-lock
      ([&dst\[0\] .. &dst\[n-1\]], disjoint per worker) avoids
      serializing it. A racy scoreboard and a mutex-protected cache round
      out the sharing mix. *)

let sub = Template.subst

(* Sustained-load scales: the request volumes used by the segmented-log
   experiments (`bench sustained`, `make log-check`). The regular
   evaluation scales serve tens of requests — enough for overhead
   ratios, far too few to stress log growth. These serve 20k requests
   per server (knot: 4*scale accepts; apache: 2*scale per worker, 4
   workers), which pushes the recorder's raw log past a megabyte so a
   spilling recorder's bounded residency is measurable against the
   monolithic log's, rather than asserted. Both record in seconds. *)
let knot_sustained_scale = 5000
let apache_sustained_scale = 2500

let knot ~workers ~scale =
  let nreq = max 4 (4 * scale) in
  sub
    [
      ("W", workers);
      ("NREQ", nreq);
      ("NPAGES", 8);
      ("PAGESZ", 16);
    ]
    {|
int pages[128];
int freq[${NPAGES}];
int queue[16];
int qhead = 0;
int qtail = 0;
int qlock;
int qfill;
int qspace;
int accepting = 1;
int hits = 0;
int hot = 0;
int served = 0;
int servelock;

void account(int page) {
  freq[page] = freq[page] + 1;
}

void handle(int req) {
  int page; int k; int sum;
  page = req % ${NPAGES};
  sum = 0;
  for (k = 0; k < ${PAGESZ}; k++) {
    sum = sum + pages[page * ${PAGESZ} + k];
  }
  hits = hits + 1;
  if (freq[page] > 2) {
    hot = hot + 1;
  }
  account(page);
  lock(&servelock);
  served = served + 1;
  unlock(&servelock);
  output(sum % 1000);
}

void worker(int *unused) {
  int req; int more;
  more = 1;
  while (more) {
    req = 0 - 1;
    lock(&qlock);
    while (qhead == qtail && accepting == 1) {
      cond_wait(&qfill, &qlock);
    }
    if (qhead < qtail) {
      req = queue[qhead % 16];
      qhead = qhead + 1;
      cond_signal(&qspace);
    }
    unlock(&qlock);
    if (req < 0) {
      more = 0;
    } else {
      handle(req);
    }
  }
}

int main() {
  int tids[${W}];
  int i; int n; int got; int buf[4];
  for (i = 0; i < 128; i++) {
    pages[i] = (i * 31 + 17) % 256;
  }
  for (i = 0; i < ${W}; i++) {
    tids[i] = spawn(worker, &qlock);
  }
  for (n = 0; n < ${NREQ}; n++) {
    got = net_read(buf, 1);
    if (got == 0) { break; }
    lock(&qlock);
    while (qtail - qhead >= 16) {
      cond_wait(&qspace, &qlock);
    }
    queue[qtail % 16] = buf[0];
    qtail = qtail + 1;
    cond_signal(&qfill);
    unlock(&qlock);
  }
  lock(&qlock);
  accepting = 0;
  cond_broadcast(&qfill);
  unlock(&qlock);
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  output(hits);
  output(hot);
  output(served);
  return 0;
}
|}
  ^ Libc.all

let knot_io ~seed ~scale =
  Interp.Iomodel.stream ~seed ~chunks:(max 4 (4 * scale)) ~chunk_size:1
    ~input_range:256

let apache ~workers ~scale =
  let nreq_per = max 2 (2 * scale) in
  let bufsz = 24 in
  sub
    [
      ("W", workers);
      ("RPW", nreq_per);
      ("BUFSZ", bufsz);
      ("ARENA", workers * bufsz);
      ("NCACHE", 8);
      ("CACHESZ", 8);
    ]
    {|
struct wstate { int id; int done; };

int arena[${ARENA}];
int cache_tag[${NCACHE}];
int cache_data[64];
int cache_lock;
int accept_lock;
int next_req = 0;
int scoreboard[${W}];
int total_served = 0;
struct wstate states[${W}];

int cache_lookup(int key) {
  int slot; int v; int k;
  slot = key % ${NCACHE};
  lock(&cache_lock);
  if (cache_tag[slot] != key) {
    cache_tag[slot] = key;
    for (k = 0; k < ${CACHESZ}; k++) {
      cache_data[slot * ${CACHESZ} + k] = key * 7 + k;
    }
  }
  v = cache_data[slot * ${CACHESZ}];
  unlock(&cache_lock);
  return v;
}

int parse_request(int *req, int len) {
  int i; int h;
  h = 0;
  for (i = 0; i < len; i++) {
    h = h * 31 + req[i];
    h = h % 65536;
  }
  return h;
}

void build_response(int id, int key, int body) {
  int i; int base;
  base = id * ${BUFSZ};
  memset_w(&arena[base], 0, ${BUFSZ});
  arena[base] = key % 256;
  arena[base + 1] = body % 256;
  for (i = 2; i < ${BUFSZ}; i++) {
    arena[base + i] = (key + i * body) % 256;
  }
}

void worker(struct wstate *st) {
  int req[8];
  int r; int got; int key; int body; int sum; int id;
  id = st->id;
  for (r = 0; r < ${RPW}; r++) {
    lock(&accept_lock);
    got = net_read(req, 8);
    next_req = next_req + 1;
    unlock(&accept_lock);
    if (got == 0) { break; }
    key = parse_request(req, got);
    body = cache_lookup(key);
    build_response(id, key, body);
    sum = checksum_w(&arena[id * ${BUFSZ}], ${BUFSZ});
    scoreboard[id] = scoreboard[id] + 1;
    total_served = total_served + 1;
    output(sum);
  }
  st->done = 1;
}

int main() {
  int tids[${W}];
  int i;
  for (i = 0; i < ${NCACHE}; i++) {
    cache_tag[i] = 0 - 1;
  }
  for (i = 0; i < ${W}; i++) {
    states[i].id = i;
    states[i].done = 0;
    scoreboard[i] = 0;
    tids[i] = spawn(worker, &states[i]);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  output(total_served);
  output(next_req);
  for (i = 0; i < ${W}; i++) {
    output(scoreboard[i]);
  }
  return 0;
}
|}
  ^ Libc.all

let apache_io ~seed ~scale =
  Interp.Iomodel.stream ~seed ~chunks:(max 2 (2 * scale)) ~chunk_size:8
    ~input_range:256
