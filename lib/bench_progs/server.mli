(** The two server applications of Table 1: knot and apache — MiniC
    re-implementations with the concurrency structure of the originals
    (see the implementation header for the per-app stories, including
    apache's flagship hot-memset loop-lock example).

    [~scale] is the number of requests served. Sources include the
    {!Libc} routines. *)

val knot_sustained_scale : int
(** Scale at which knot serves 20k requests — the sustained-load input
    of the segmented-log experiments ({!Registry.bench.b_sustained_scale}). *)

val apache_sustained_scale : int
(** Scale at which apache's four workers serve 20k requests total. *)

val knot : workers:int -> scale:int -> string
val knot_io : seed:int -> scale:int -> Interp.Iomodel.t

val apache : workers:int -> scale:int -> string
val apache_io : seed:int -> scale:int -> Interp.Iomodel.t
