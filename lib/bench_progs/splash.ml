(** The four SPLASH-2 kernels of Table 1: ocean, water, fft, radix —
    MiniC versions with the sharing and synchronization patterns that
    drive the paper's results.

    - {b ocean}: red-black grid relaxation. Threads own row strips of the
      grid (affine partitioning — loop-locks with precise bounds), but
      each sweep reads one neighbor row across the strip boundary, which
      a lockset analysis flags as racy against the neighbor's writes.
      Phases are separated by barriers RELAY ignores.
    - {b water} (n-squared): barrier-phased force computation. [interf]
      and [bndry] never overlap thanks to barriers — this is exactly the
      Figure 2 example, so its races are recovered by function-locks —
      and the force-accumulation phase updates a per-thread slice plus a
      global reduction under a real lock. A final [binmols] phase bins
      molecules into a shared occupancy table by position
      (water-spatial's box assignment, done once as a closing density
      statistic): the open-addressing probe reads [boxes] at
      data-dependent indices inside an inner loop while the claiming
      write sits in the outer loop body, so the planner nests a total
      probe-loop lock inside a total insert-loop lock on the same pair —
      the shape the must-lockset elision collapses.
    - {b fft}: barrier-separated butterfly stages over a partitioned
      array, plus a transpose whose strided accesses defeat the symbolic
      bounds analysis (the paper's loop-lock contention case).
    - {b radix}: the paper's Figure 4 program. Per-thread [rank] slices
      are zeroed with affine bounds (precise loop-locks); the counting
      loop indexes [rank] with a value loaded from [key_from] (my_key),
      which is statically unbounded — the [-INF..+INF] loop-lock of
      Figure 4. *)

let sub = Template.subst

let ocean ~workers ~scale =
  let rows_per = max 2 (2 * scale) in
  let rows = (workers * rows_per) + 2 in
  let cols = 8 + (2 * scale) in
  sub
    [
      ("W", workers);
      ("ROWS", rows);
      ("COLS", cols);
      ("RP", rows_per);
      ("CELLS", rows * cols);
      ("ITERS", 4);
    ]
    {|
int grid[${CELLS}];
int newg[${CELLS}];
int residual = 0;
int reslock;
int iterbar;
int ids[${W}];

void relax(int id) {
  int r; int c; int lo; int hi; int acc;
  lo = id * ${RP} + 1;
  hi = lo + ${RP};
  for (r = lo; r < hi; r++) {
    for (c = 1; c < ${COLS} - 1; c++) {
      acc = grid[r * ${COLS} + c];
      acc = acc + grid[(r - 1) * ${COLS} + c];
      acc = acc + grid[(r + 1) * ${COLS} + c];
      acc = acc + grid[r * ${COLS} + c - 1];
      acc = acc + grid[r * ${COLS} + c + 1];
      newg[r * ${COLS} + c] = acc / 5;
    }
  }
}

void copyback(int id) {
  int r; int c; int lo; int hi; int diff; int local;
  lo = id * ${RP} + 1;
  hi = lo + ${RP};
  local = 0;
  for (r = lo; r < hi; r++) {
    for (c = 1; c < ${COLS} - 1; c++) {
      diff = newg[r * ${COLS} + c] - grid[r * ${COLS} + c];
      if (diff < 0) { diff = 0 - diff; }
      local = local + diff;
      grid[r * ${COLS} + c] = newg[r * ${COLS} + c];
    }
  }
  lock(&reslock);
  residual = residual + local;
  unlock(&reslock);
}

void worker(int *idp) {
  int it; int id;
  id = *idp;
  for (it = 0; it < ${ITERS}; it++) {
    relax(id);
    barrier_wait(&iterbar);
    copyback(id);
    barrier_wait(&iterbar);
  }
}

int main() {
  int tids[${W}];
  int i; int cs;
  for (i = 0; i < ${CELLS}; i++) {
    grid[i] = (i * 37 + 11) % 100;
    newg[i] = 0;
  }
  barrier_init(&iterbar, ${W});
  for (i = 0; i < ${W}; i++) {
    ids[i] = i;
    tids[i] = spawn(worker, &ids[i]);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  output(residual);
  cs = checksum_w(grid, ${CELLS});
  output(cs);
  return 0;
}
|}
  ^ Libc.all

let water ~workers ~scale =
  let mols_per = max 2 (4 * scale) in
  let mols = workers * mols_per in
  sub
    [
      ("W", workers);
      ("MOLS", mols);
      ("MP", mols_per);
      ("NBOX", 2 * mols);
      ("STEPS", 3);
    ]
    {|
int pos[${MOLS}];
int vel[${MOLS}];
int forces[${MOLS}];
int boxes[${NBOX}];
int potential = 0;
int plock;
int phasebar;
int ids[${W}];

void interf(int id) {
  int i; int j; int lo; int hi; int f; int local;
  lo = id * ${MP};
  hi = lo + ${MP};
  local = 0;
  for (i = lo; i < hi; i++) {
    f = 0;
    for (j = 0; j < ${MOLS}; j++) {
      f = f + (pos[j] - pos[i]) / (1 + (i - j) * (i - j));
    }
    forces[i] = f;
    local = local + f * f;
  }
  lock(&plock);
  potential = potential + local;
  unlock(&plock);
}

void bndry(int id) {
  int i; int lo; int hi;
  lo = id * ${MP};
  hi = lo + ${MP};
  for (i = lo; i < hi; i++) {
    if (pos[i] > 1000) { pos[i] = pos[i] - 2000; }
    if (pos[i] < 0 - 1000) { pos[i] = pos[i] + 2000; }
  }
}

void kineti(int id) {
  int i; int lo; int hi;
  lo = id * ${MP};
  hi = lo + ${MP};
  for (i = lo; i < hi; i++) {
    vel[i] = vel[i] + forces[i] / 16;
    pos[i] = pos[i] + vel[i] / 4;
  }
}

void binmols(int id) {
  int m; int lo; int hi; int c; int occ;
  lo = id * ${MP};
  hi = lo + ${MP};
  for (m = lo; m < hi; m++) {
    c = pos[m] % ${NBOX};
    if (c < 0) { c = c + ${NBOX}; }
    occ = boxes[c];
    while (occ != 0) {
      c = c + 1;
      if (c >= ${NBOX}) { c = 0; }
      occ = boxes[c];
    }
    boxes[c] = m + 1;
  }
}

void worker(int *idp) {
  int s; int id;
  id = *idp;
  for (s = 0; s < ${STEPS}; s++) {
    interf(id);
    barrier_wait(&phasebar);
    kineti(id);
    barrier_wait(&phasebar);
    bndry(id);
    barrier_wait(&phasebar);
  }
  binmols(id);
}

int main() {
  int tids[${W}];
  int i; int cs;
  for (i = 0; i < ${MOLS}; i++) {
    pos[i] = (i * 53 + 7) % 500;
    vel[i] = (i * 19) % 9 - 4;
    forces[i] = 0;
  }
  barrier_init(&phasebar, ${W});
  for (i = 0; i < ${W}; i++) {
    ids[i] = i;
    tids[i] = spawn(worker, &ids[i]);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  output(potential);
  cs = checksum_w(pos, ${MOLS});
  output(cs);
  cs = checksum_w(vel, ${MOLS});
  output(cs);
  cs = checksum_w(boxes, ${NBOX});
  output(cs);
  return 0;
}
|}
  ^ Libc.all

let fft ~workers ~scale =
  let per = max 4 (8 * scale) in
  let n = workers * per in
  sub
    [ ("W", workers); ("N", n); ("PER", per); ("STAGES", 3) ]
    {|
int re[${N}];
int im[${N}];
int tmp[${N}];
int stagebar;
int ids[${W}];

void butterfly(int id, int stage) {
  int i; int lo; int hi; int stride; int partner; int a; int b;
  lo = id * ${PER};
  hi = lo + ${PER};
  stride = stage * 2 + 1;
  for (i = lo; i < hi; i++) {
    partner = (i + stride) % ${N};
    a = re[i] + re[partner];
    b = im[i] - im[partner];
    tmp[i] = a / 2 + b / 3;
  }
}

void scatter(int id) {
  int i; int lo; int hi;
  lo = id * ${PER};
  hi = lo + ${PER};
  for (i = lo; i < hi; i++) {
    re[i] = tmp[i];
    im[i] = tmp[i] / 2 - im[i];
  }
}

void worker(int *idp) {
  int s; int id;
  id = *idp;
  for (s = 0; s < ${STAGES}; s++) {
    butterfly(id, s);
    barrier_wait(&stagebar);
    scatter(id);
    barrier_wait(&stagebar);
  }
}

int main() {
  int tids[${W}];
  int i; int cs;
  for (i = 0; i < ${N}; i++) {
    re[i] = (i * 91 + 3) % 256;
    im[i] = (i * 57 + 5) % 256;
    tmp[i] = 0;
  }
  barrier_init(&stagebar, ${W});
  for (i = 0; i < ${W}; i++) {
    ids[i] = i;
    tids[i] = spawn(worker, &ids[i]);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  cs = checksum_w(re, ${N});
  output(cs);
  cs = checksum_w(im, ${N});
  output(cs);
  return 0;
}
|}
  ^ Libc.all

let radix ~workers ~scale =
  let radix_n = 8 in
  let keys_per = max 8 (50 * scale) in
  let nkeys = workers * keys_per in
  sub
    [
      ("W", workers);
      ("RADIX", radix_n);
      ("KEYS", nkeys);
      ("KP", keys_per);
      ("RANKCAP", workers * radix_n);
      ("MASK", radix_n - 1);
      ("DIGITS", 2);
    ]
    {|
int key_from[${KEYS}];
int key_to[${KEYS}];
int rank[${RANKCAP}];
int global_hist[${RADIX}];
int offsets[${RANKCAP}];
int histlock;
int digitbar;
int ids[${W}];

void slave_sort(int id) {
  int i; int j; int d; int my_key; int base; int start; int stop;
  int offset; int divisor; int t;
  base = id * ${RADIX};
  start = id * ${KP};
  stop = start + ${KP};
  divisor = 1;
  for (d = 0; d < ${DIGITS}; d++) {
    for (j = 0; j < ${RADIX}; j++) {
      rank[base + j] = 0;
    }
    for (j = start; j < stop; j++) {
      my_key = (key_from[j] / divisor) & ${MASK};
      rank[base + my_key] = rank[base + my_key] + 1;
    }
    lock(&histlock);
    for (j = 0; j < ${RADIX}; j++) {
      global_hist[j] = global_hist[j] + rank[base + j];
    }
    unlock(&histlock);
    barrier_wait(&digitbar);
    if (id == 0) {
      offset = 0;
      for (j = 0; j < ${RADIX}; j++) {
        for (i = 0; i < ${W}; i++) {
          offsets[i * ${RADIX} + j] = offset;
          offset = offset + rank[i * ${RADIX} + j];
        }
      }
    }
    barrier_wait(&digitbar);
    for (j = start; j < stop; j++) {
      my_key = (key_from[j] / divisor) & ${MASK};
      t = offsets[base + my_key];
      offsets[base + my_key] = t + 1;
      key_to[t] = key_from[j];
    }
    barrier_wait(&digitbar);
    for (j = start; j < stop; j++) {
      key_from[j] = key_to[j];
    }
    barrier_wait(&digitbar);
    if (id == 0) {
      for (j = 0; j < ${RADIX}; j++) {
        global_hist[j] = 0;
      }
    }
    barrier_wait(&digitbar);
    divisor = divisor * ${RADIX};
  }
}

void worker(int *idp) {
  slave_sort(*idp);
}

int main() {
  int tids[${W}];
  int i; int cs;
  for (i = 0; i < ${KEYS}; i++) {
    key_from[i] = (i * 7919 + 13) % 4096;
    key_to[i] = 0;
  }
  for (i = 0; i < ${RADIX}; i++) {
    global_hist[i] = 0;
  }
  barrier_init(&digitbar, ${W});
  for (i = 0; i < ${W}; i++) {
    ids[i] = i;
    tids[i] = spawn(worker, &ids[i]);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  cs = checksum_w(key_from, ${KEYS});
  output(cs);
  return 0;
}
|}
  ^ Libc.all

let scientific_io ~seed ~scale:_ =
  (* SPLASH kernels take no runtime input; the model is unused *)
  Interp.Iomodel.random ~seed
