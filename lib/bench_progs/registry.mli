(** The benchmark registry: the nine applications of the paper's Table 1
    with their profile and evaluation environments.

    The paper's inputs scale to hours of Xeon time; the simulator
    equivalents keep the paper's {e structure} — profile inputs are
    smaller than and different from evaluation inputs, scientific
    kernels take no runtime input, network applications are I/O-bound —
    at simulator-friendly sizes. *)

type kind = Desktop | Server | Scientific

val pp_kind : kind Fmt.t

type bench = {
  b_name : string;
  b_kind : kind;
  b_source : workers:int -> scale:int -> string;
      (** MiniC source, parameterized by worker-thread count and input
          scale (the per-app meaning of [scale] is documented in the
          source module) *)
  b_io : seed:int -> scale:int -> Interp.Iomodel.t;
      (** the app's environment model — request streams, file contents,
          download bytes — as a pure function of [seed] *)
  b_profile_scale : int;  (** input scale used for the profile runs *)
  b_eval_scale : int;     (** input scale used for the evaluation runs *)
  b_sustained_scale : int;
      (** input scale for the sustained-load segmented-log experiments:
          servers serve 20k requests ({!Server.knot_sustained_scale}),
          the rest get ~4x their evaluation inputs *)
}

(** All nine, in Table 1 order:
    aget, pfscan, pbzip2, knot, apache, ocean, water, fft, radix. *)
val all : bench list

(** @raise Invalid_argument on an unknown name. *)
val by_name : string -> bench

val names : string list

(** Lines of MiniC source (Table 1's LOC column, measured like the paper
    on the front-end representation, excluding blank lines). *)
val loc : bench -> workers:int -> int
