(** The benchmark registry: the nine applications of Table 1 with their
    profile and evaluation environments.

    Paper inputs scale to hours of Xeon time; the simulator equivalents
    keep the paper's {e structure} — profile inputs are smaller than and
    different from evaluation inputs, scientific kernels take no runtime
    input, network applications are I/O-bound — at simulator-friendly
    sizes. [b_profile_scale]/[b_eval_scale] parameterize input size;
    worker counts come from the caller (the paper records with 4 worker
    threads and scales 2/4/8 in Figure 8). *)

type kind = Desktop | Server | Scientific

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Desktop -> "desktop"
    | Server -> "server"
    | Scientific -> "scientific")

type bench = {
  b_name : string;
  b_kind : kind;
  b_source : workers:int -> scale:int -> string;
  b_io : seed:int -> scale:int -> Interp.Iomodel.t;
  b_profile_scale : int;
  b_eval_scale : int;
  b_sustained_scale : int;
}

let all : bench list =
  [
    {
      b_name = "aget";
      b_kind = Desktop;
      b_source = Desktop.aget;
      b_io = Desktop.aget_io;
      b_profile_scale = 64;
      b_eval_scale = 256;
      b_sustained_scale = 1024;
    };
    {
      b_name = "pfscan";
      b_kind = Desktop;
      b_source = Desktop.pfscan;
      b_io = Desktop.pfscan_io;
      b_profile_scale = 4;
      b_eval_scale = 28;
      b_sustained_scale = 112;
    };
    {
      b_name = "pbzip2";
      b_kind = Desktop;
      b_source = Desktop.pbzip2;
      b_io = Desktop.pbzip2_io;
      b_profile_scale = 2;
      b_eval_scale = 6;
      b_sustained_scale = 24;
    };
    {
      b_name = "knot";
      b_kind = Server;
      b_source = Server.knot;
      b_io = Server.knot_io;
      b_profile_scale = 2;
      b_eval_scale = 10;
      b_sustained_scale = Server.knot_sustained_scale;
    };
    {
      b_name = "apache";
      b_kind = Server;
      b_source = Server.apache;
      b_io = Server.apache_io;
      b_profile_scale = 2;
      b_eval_scale = 8;
      b_sustained_scale = Server.apache_sustained_scale;
    };
    {
      b_name = "ocean";
      b_kind = Scientific;
      b_source = Splash.ocean;
      b_io = Splash.scientific_io;
      b_profile_scale = 2;
      b_eval_scale = 6;
      b_sustained_scale = 12;
    };
    {
      b_name = "water";
      b_kind = Scientific;
      b_source = Splash.water;
      b_io = Splash.scientific_io;
      b_profile_scale = 2;
      b_eval_scale = 6;
      b_sustained_scale = 12;
    };
    {
      b_name = "fft";
      b_kind = Scientific;
      b_source = Splash.fft;
      b_io = Splash.scientific_io;
      b_profile_scale = 3;
      b_eval_scale = 10;
      b_sustained_scale = 20;
    };
    {
      b_name = "radix";
      b_kind = Scientific;
      b_source = Splash.radix;
      b_io = Splash.scientific_io;
      b_profile_scale = 2;
      b_eval_scale = 8;
      b_sustained_scale = 16;
    };
  ]

let by_name name =
  match List.find_opt (fun b -> b.b_name = name) all with
  | Some b -> b
  | None -> Fmt.invalid_arg "unknown benchmark %s" name

let names = List.map (fun b -> b.b_name) all

(** Lines of MiniC source (Table 1's LOC column, measured like the paper
    on the front-end representation, excluding blank lines). *)
let loc (b : bench) ~workers : int =
  let src = b.b_source ~workers ~scale:b.b_eval_scale in
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
