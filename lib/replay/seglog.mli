(** Segmented on-disk recording ([chimera-log-segments/1]): sealed,
    {!Zcompress}ed, MD5-checksummed log segments in a directory with a
    manifest, written incrementally by the spilling recorder and
    streamed back by {!Replayer.of_stream}. Optional per-seal engine
    checkpoints (state digest + marshalled snapshot) are pinned in the
    manifest. All corruption — bad magic, size or checksum mismatches,
    truncation — raises the typed {!Log.Corrupt}, never a crash. *)

val magic : string
(** Manifest header: ["chimera-log-segments/1"]. *)

val segment_magic : string
(** Per-segment-file header: ["chimera-log-segment/1"]. *)

type checkpoint = {
  ck_digest : string;  (** engine state digest at the seal (hex) *)
  ck_md5 : string;     (** MD5 of the snapshot bytes (hex) *)
}

type segment = {
  sg_index : int;
  sg_first_tick : int;
  sg_last_tick : int;
  sg_events : int;  (** gated events sealed into this segment *)
  sg_raw_input : int;
  sg_raw_order : int;
  sg_z_input : int;
  sg_z_order : int;
  sg_md5_input : string;
  sg_md5_order : string;
  sg_checkpoint : checkpoint option;
}

type manifest = { mf_segments : segment array }

val segment_file : int -> string
val checkpoint_file : int -> string
val manifest_file : string

(* Writer *)

type writer_stats = {
  ws_segments : int;
  ws_events : int;
  ws_peak_raw : int;
      (** largest single-segment encoding — the resident-log-memory
          bound a spilling recording keeps *)
  ws_total_raw : int;
  ws_total_z : int;
}

type writer

(** Own [dir] for a fresh recording: create it, drop stale segment /
    checkpoint / manifest files. *)
val create_writer : dir:string -> writer

(** Seal one segment: encode, compress, checksum, write
    [seg-NNNN.seg], and rewrite the manifest (so a crashed recording
    leaves a readable prefix). [snapshot], when given, is the engine's
    [(state_digest, marshalled bytes)] checkpoint, written to
    [ckpt-NNNN.bin] and pinned in the manifest entry. *)
val append :
  writer ->
  ?snapshot:string * string ->
  first_tick:int ->
  last_tick:int ->
  events:int ->
  Log.t ->
  unit

val writer_stats : writer -> writer_stats
val close_writer : writer -> manifest

(* Reader *)

val read_manifest : dir:string -> manifest
(** @raise Log.Corrupt on a missing, truncated, or malformed manifest. *)

val load_segment : dir:string -> segment -> Log.t
(** Verify magic, sizes and checksums, decompress, decode.
    @raise Log.Corrupt on any mismatch. *)

val load_snapshot : dir:string -> segment -> string option
(** The checksum-verified snapshot bytes pinned at this seal, if any. *)

val stream : dir:string -> manifest * (unit -> Log.t option)
(** Lazy sequential pull for {!Replayer.of_stream}; a windowed replay
    that halts early never reads the later segment files. *)

val covering_segment : manifest -> upto:int -> int
(** Index of the last segment needed to cover a replay window ending at
    tick [upto] (clamped to the final segment). *)
