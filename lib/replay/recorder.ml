(** The recorder: appends events to a {!Log.t} during a recorded run and
    keeps the per-category counters reported in Table 2 of the paper.

    {b Spilling.} By default the whole recording accumulates in one
    [Log.t]. {!set_spill} turns the log into a sequence of bounded
    in-memory segments: once the open segment holds [events_per_segment]
    gated events, the engine's next {!maybe_seal} hands it to the flush
    callback (which compresses, checksums, and spills it — see
    {!Seglog}) and recording continues into a fresh [Log.t]. Sealing is
    a pure function of the event counts, so two recordings of the same
    execution seal at identical points; it charges no simulated ticks,
    so spilled and monolithic recordings of one program are
    tick-identical. The Table 2 counters keep accumulating across
    seals. *)

open Runtime

type spill = {
  sp_events : int;  (** seal threshold: gated events per segment *)
  sp_flush :
    log:Log.t -> first_tick:int -> last_tick:int -> events:int -> unit;
}

type t = {
  mutable log : Log.t;  (** the open segment *)
  (* Table 2 counters *)
  mutable n_syscalls : int;        (** DRF input-log entries *)
  mutable n_sync_ops : int;        (** original synchronization HB entries *)
  mutable n_weak : int array;      (** weak-lock log entries, by granularity
                                       rank: func, loop, bb, instr *)
  mutable n_forced : int;
  (* spilling state *)
  mutable spill : spill option;
  mutable seg_events : int;   (** gated events in the open segment *)
  mutable seg_first_tick : int;
  mutable segments_sealed : int;
}

let create () =
  {
    log = Log.create ();
    n_syscalls = 0;
    n_sync_ops = 0;
    n_weak = Array.make 4 0;
    n_forced = 0;
    spill = None;
    seg_events = 0;
    seg_first_tick = 0;
    segments_sealed = 0;
  }

let set_spill (t : t) ~(events_per_segment : int)
    ~(flush :
       log:Log.t -> first_tick:int -> last_tick:int -> events:int -> unit) =
  t.spill <- Some { sp_events = max 1 events_per_segment; sp_flush = flush }

let rec_input (t : t) ~(tp : Key.tid_path) (values : int list) =
  t.n_syscalls <- t.n_syscalls + 1;
  t.seg_events <- t.seg_events + 1;
  let cur = Log.cell t.log.inputs tp in
  cur := values :: !cur;
  t.log.syscall_order <- tp :: t.log.syscall_order

let rec_sync (t : t) ~(obj : Key.addr) ~(op : Log.sync_op) ~(tp : Key.tid_path)
    =
  t.n_sync_ops <- t.n_sync_ops + 1;
  t.seg_events <- t.seg_events + 1;
  let cur = Log.cell t.log.sync_order obj in
  cur := (op, tp) :: !cur

let rec_weak (t : t) ~(lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path)
    ~(claim : Log.sclaim) =
  let rank = Minic.Ast.granularity_rank lock.wl_gran in
  t.n_weak.(rank) <- t.n_weak.(rank) + 1;
  t.seg_events <- t.seg_events + 1;
  let cur = Log.cell t.log.weak_order lock in
  cur := (tp, claim) :: !cur

let rec_forced (t : t) ~(owner : Key.tid_path) ~(steps : int) ~(acqs : int)
    ~(lock : Minic.Ast.weak_lock) =
  t.n_forced <- t.n_forced + 1;
  t.seg_events <- t.seg_events + 1;
  t.log.forced <-
    { fe_owner = owner; fe_steps = steps; fe_acqs = acqs; fe_lock = lock }
    :: t.log.forced

let rec_sched (t : t) ~(core : int) ~(tp : Key.tid_path) ~(ticks : int) =
  (* merge with previous segment when the same thread stays on the core *)
  match t.log.sched with
  | sg :: _ when sg.sg_core = core && sg.sg_tid = tp ->
      sg.sg_ticks <- sg.sg_ticks + ticks
  | _ -> t.log.sched <- { sg_core = core; sg_tid = tp; sg_ticks = ticks } :: t.log.sched

let seal (t : t) (sp : spill) ~(now : int) =
  sp.sp_flush ~log:t.log ~first_tick:t.seg_first_tick ~last_tick:now
    ~events:t.seg_events;
  t.log <- Log.create ();
  t.seg_events <- 0;
  t.seg_first_tick <- now;
  t.segments_sealed <- t.segments_sealed + 1

let maybe_seal (t : t) ~(now : int) =
  match t.spill with
  | Some sp when t.seg_events >= sp.sp_events -> seal t sp ~now
  | _ -> ()

let finish (t : t) ~(now : int) =
  match t.spill with
  | Some sp when t.seg_events > 0 || t.segments_sealed = 0 -> seal t sp ~now
  | _ -> ()

(** Number of weak-lock log entries per granularity:
    (func, loop, bb, instr). *)
let weak_counts (t : t) =
  (t.n_weak.(0), t.n_weak.(1), t.n_weak.(2), t.n_weak.(3))
