(** The recorder: appends events to a {!Log.t} during a recorded run and
    keeps the per-category counters reported in Table 2 of the paper. *)

open Runtime

type t = {
  log : Log.t;
  (* Table 2 counters *)
  mutable n_syscalls : int;        (** DRF input-log entries *)
  mutable n_sync_ops : int;        (** original synchronization HB entries *)
  mutable n_weak : int array;      (** weak-lock log entries, by granularity
                                       rank: func, loop, bb, instr *)
  mutable n_forced : int;
}

let create () =
  {
    log = Log.create ();
    n_syscalls = 0;
    n_sync_ops = 0;
    n_weak = Array.make 4 0;
    n_forced = 0;
  }

let rec_input (t : t) ~(tp : Key.tid_path) (values : int list) =
  t.n_syscalls <- t.n_syscalls + 1;
  let cur = Log.cell t.log.inputs tp in
  cur := values :: !cur;
  t.log.syscall_order <- tp :: t.log.syscall_order

let rec_sync (t : t) ~(obj : Key.addr) ~(op : Log.sync_op) ~(tp : Key.tid_path)
    =
  t.n_sync_ops <- t.n_sync_ops + 1;
  let cur = Log.cell t.log.sync_order obj in
  cur := (op, tp) :: !cur

let rec_weak (t : t) ~(lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path)
    ~(claim : Log.sclaim) =
  let rank = Minic.Ast.granularity_rank lock.wl_gran in
  t.n_weak.(rank) <- t.n_weak.(rank) + 1;
  let cur = Log.cell t.log.weak_order lock in
  cur := (tp, claim) :: !cur

let rec_forced (t : t) ~(owner : Key.tid_path) ~(steps : int) ~(acqs : int)
    ~(lock : Minic.Ast.weak_lock) =
  t.n_forced <- t.n_forced + 1;
  t.log.forced <-
    { fe_owner = owner; fe_steps = steps; fe_acqs = acqs; fe_lock = lock }
    :: t.log.forced

let rec_sched (t : t) ~(core : int) ~(tp : Key.tid_path) ~(ticks : int) =
  (* merge with previous segment when the same thread stays on the core *)
  match t.log.sched with
  | sg :: _ when sg.sg_core = core && sg.sg_tid = tp ->
      sg.sg_ticks <- sg.sg_ticks + ticks
  | _ -> t.log.sched <- { sg_core = core; sg_tid = tp; sg_ticks = ticks } :: t.log.sched

(** Number of weak-lock log entries per granularity:
    (func, loop, bb, instr). *)
let weak_counts (t : t) =
  (t.n_weak.(0), t.n_weak.(1), t.n_weak.(2), t.n_weak.(3))
