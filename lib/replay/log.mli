(** Record/replay log structures and their binary serialization.

    A recording splits, as in the paper, into the {e input log} (syscall
    results in per-thread order + the global syscall serialization) and
    the {e order log} (per-object synchronization order, per-weak-lock
    acquisition order with claimed address ranges, forced-release events,
    per-core schedule segments). Threads are named by
    {!Runtime.Key.tid_path}s and objects by stable {!Runtime.Key.addr}s
    so a replayer under a different scheduler still matches events. *)

open Runtime

exception Corrupt of string
(** Raised by {!decode} when a log is truncated or corrupt (varint or
    string running past the end, impossible list length, unknown tag).
    Decoding never escapes with a raw [Invalid_argument]. *)

type sync_op =
  | SMutexAcq
  | SMutexRel
  | SBarrierInit
  | SBarrierWait
  | SCondWait
  | SCondSignal
  | SCondBroadcast

val sync_op_code : sync_op -> int
val sync_op_of_code : int -> sync_op
val pp_sync_op : sync_op Fmt.t

type srange = {
  sr_origin : Key.origin;
  sr_lo : int;
  sr_hi : int;
  sr_write : bool;
}
(** A claimed address range in stable origin coordinates. *)

type sclaim = srange list
(** Empty = total claim. *)

(** Do two claims conflict (overlap with at least one writer, or either
    total)? Replay enforces recorded order only between conflicting
    acquisitions. *)
val sclaims_conflict : sclaim -> sclaim -> bool

type forced_event = {
  fe_owner : Key.tid_path;
  fe_steps : int;  (** owner's step count at preemption *)
  fe_acqs : int;
      (** owner's weak-acquisition count at preemption — orders the event
          against the owner's own reacquisitions at the same step count *)
  fe_lock : Minic.Ast.weak_lock;
}

type sched_segment = {
  sg_core : int;
  sg_tid : Key.tid_path;
  mutable sg_ticks : int;
      (** mutable so the recorder extends the open segment in place *)
}

type t = {
  inputs : (Key.tid_path, int list list ref) Hashtbl.t;
      (** per-thread recorded syscall bursts, newest first *)
  mutable syscall_order : Key.tid_path list;  (** global order, reversed *)
  sync_order : (Key.addr, (sync_op * Key.tid_path) list ref) Hashtbl.t;
      (** per-object op sequence, reversed *)
  weak_order :
    (Minic.Ast.weak_lock, (Key.tid_path * sclaim) list ref) Hashtbl.t;
      (** per-lock acquisition sequence with claims, reversed *)
  mutable forced : forced_event list;  (** reversed *)
  mutable sched : sched_segment list;  (** reversed *)
}
(** Keyed event sequences live behind [ref] cells so the recorder appends
    with a single table lookup; sequences are stored newest-first. *)

val create : unit -> t

val cell : ('k, 'a list ref) Hashtbl.t -> 'k -> 'a list ref
(** [cell tbl k] is the append cell for [k], created empty on first use. *)

val oldest_first : 'a list -> 'a array
(** Oldest-first array view of a newest-first event list. *)

(** Varint-based binary encodings; reported log sizes are these strings,
    compressed. [decode input order] inverts both. *)
val encode_input_log : t -> string

val encode_order_log : t -> string

(** Same bytes as the plain encoders, plus the strictly interior
    record-boundary offsets (section headers and per-event boundaries),
    ascending — the cut points of the fault-injection truncation sweep. *)
val encode_input_log_marked : t -> string * int array

val encode_order_log_marked : t -> string * int array

val decode : string -> string -> t
(** @raise Corrupt on truncated or malformed input, and on trailing
    bytes left after either log's structure is complete — a recording
    must consume both buffers exactly. *)
