(** The replayer: cursors over a {!Log.t} that the engine consults to gate
    execution.

    Replay enforces exactly the orders the paper's replayer enforces:
    per-thread syscall results are fed back from the input log; the global
    syscall order, the per-object synchronization-operation order, and
    the per-weak-lock acquisition order are enforced by blocking a thread
    whose operation is not next in its object's recorded sequence; forced
    weak-lock releases are re-applied at the recorded owner step count.
    Data accesses are not gated: the instrumented program is data-race
    free under its (weak-)lock synchronization, so these orders determine
    the execution.

    Cursors are position-indexed arrays over the decoded sequences, so
    every peek/advance is O(1); the weak-lock cursor additionally keeps a
    consumed bitmap and per-thread position queues so the out-of-order
    consumption of disjoint-claim acquisitions stays cheap.

    {b Streaming.} A replayer consumes a {e sequence} of logs — the
    sealed segments of a spilling recording ({!Seglog}) — pulled one at
    a time through {!of_stream}. Only the current segment's cursors are
    resident. Every event of segment [k] was recorded before every event
    of segment [k+1] (a seal is a point in recorded time), so replay
    drains segments in order: a thread whose next event is not in the
    current segment blocks until the segment drains, and the
    "beyond-the-log: unconstrained" escape applies only on the {e last}
    segment. Draining segment [k] first is always feasible for the same
    reason — nothing recorded in [k] can depend on an event recorded
    after the seal. {!of_log} is the one-segment special case and
    behaves exactly as the historical monolithic replayer. *)

open Runtime

(* a sequence consumed strictly front to back *)
type 'a seq_cursor = { sc_arr : 'a array; mutable sc_pos : int }

let seq_of_list xs = { sc_arr = Log.oldest_first xs; sc_pos = 0 }
let seq_peek c = if c.sc_pos < Array.length c.sc_arr then Some c.sc_arr.(c.sc_pos) else None
let seq_left c = Array.length c.sc_arr - c.sc_pos

(* a per-lock acquisition sequence, consumed per-thread and possibly out
   of order (disjoint claims overtake) *)
type weak_cursor = {
  wc_entries : (Key.tid_path * Log.sclaim) array;  (** oldest first *)
  wc_consumed : bool array;
  mutable wc_head : int;  (** first unconsumed index *)
  wc_next : (Key.tid_path, int Queue.t) Hashtbl.t;
      (** each thread's remaining entry indices, ascending *)
}

let weak_cursor_of_list xs =
  let entries = Log.oldest_first xs in
  let n = Array.length entries in
  let wc_next = Hashtbl.create 8 in
  Array.iteri
    (fun i (p, _) ->
      let q =
        match Hashtbl.find_opt wc_next p with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace wc_next p q;
            q
      in
      Queue.push i q)
    entries;
  { wc_entries = entries; wc_consumed = Array.make n false; wc_head = 0; wc_next }

(** A served weak-lock acquisition whose claim differs from the recorded
    one — instrumentation drift between the recording and replaying
    binaries (different plan, lockopt decisions, or claim computation).
    The replay itself may still complete; the mismatch is the signal. *)
type claim_mismatch = {
  cm_lock : Minic.Ast.weak_lock;
  cm_tp : Key.tid_path;
  cm_index : int;  (** position in the lock's recorded acquisition order *)
  cm_recorded : Log.sclaim;
  cm_served : Log.sclaim;
}

(* the per-segment cursor set; rebuilt whenever the stream advances *)
type cursors = {
  syscall_cursor : Key.tid_path seq_cursor;
  sync_cursors : (Key.addr, (Log.sync_op * Key.tid_path) seq_cursor) Hashtbl.t;
  weak_cursors : (Minic.Ast.weak_lock, weak_cursor) Hashtbl.t;
  input_cursors : (Key.tid_path, int list seq_cursor) Hashtbl.t;
      (** remaining bursts, oldest first *)
  forced_by_owner :
    (Key.tid_path, (int * int * Minic.Ast.weak_lock) seq_cursor) Hashtbl.t;
}

type t = {
  mutable cur : cursors;
  mutable remaining : int;
      (** gated consumables left in the current segment: syscall-order
          entries, input bursts, sync ops, weak acquisitions, forced
          events (sched segments are informational, never consumed) *)
  mutable pending : Log.t option;  (** prefetched next segment *)
  mutable pull : unit -> Log.t option;
  mutable seg_index : int;  (** current segment, 0-based *)
  mutable segments_loaded : int;
  mutable halt_after : int option;
      (** windowed replay: stop (and never load further segments) once
          this segment index drains *)
  mutable halted : bool;
  mutable last_drained : bool;
  mutable on_advance : int -> unit;
      (** fired with the index of each segment the moment it drains —
          before the next one loads, so a caller-side state digest taken
          here is comparable across full and windowed replays of the
          same recording *)
  mutable mismatches : claim_mismatch list;  (** newest first *)
  weak_base : (Minic.Ast.weak_lock, int) Hashtbl.t;
      (** acquisitions of each lock in already-drained segments, so
          [cm_index] stays a position in the whole recording *)
}

let cursors_of_log (log : Log.t) : cursors =
  let sync_cursors = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace sync_cursors k (seq_of_list !v))
    log.sync_order;
  let weak_cursors = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace weak_cursors k (weak_cursor_of_list !v))
    log.weak_order;
  let input_cursors = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k bursts -> Hashtbl.replace input_cursors k (seq_of_list !bursts))
    log.inputs;
  let forced_by_owner = Hashtbl.create 4 in
  let forced = Log.oldest_first log.forced in
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun (fe : Log.forced_event) ->
      Hashtbl.replace counts fe.fe_owner
        (1 + Option.value (Hashtbl.find_opt counts fe.fe_owner) ~default:0))
    forced;
  Hashtbl.iter
    (fun owner n ->
      Hashtbl.replace forced_by_owner owner
        { sc_arr = Array.make n (0, 0, { Minic.Ast.wl_id = 0; wl_gran = Gfunc }); sc_pos = 0 })
    counts;
  let fill = Hashtbl.create 4 in
  Array.iter
    (fun (fe : Log.forced_event) ->
      let i = Option.value (Hashtbl.find_opt fill fe.fe_owner) ~default:0 in
      (Hashtbl.find forced_by_owner fe.fe_owner).sc_arr.(i) <-
        (fe.fe_steps, fe.fe_acqs, fe.fe_lock);
      Hashtbl.replace fill fe.fe_owner (i + 1))
    forced;
  {
    syscall_cursor = seq_of_list log.syscall_order;
    sync_cursors;
    weak_cursors;
    input_cursors;
    forced_by_owner;
  }

(** Gated consumables in [log] — the drain counter of one segment. *)
let gated_events (log : Log.t) : int =
  let n = ref (List.length log.syscall_order + List.length log.forced) in
  Hashtbl.iter (fun _ bursts -> n := !n + List.length !bursts) log.inputs;
  Hashtbl.iter (fun _ ops -> n := !n + List.length !ops) log.sync_order;
  Hashtbl.iter (fun _ ps -> n := !n + List.length !ps) log.weak_order;
  !n

(* advance the stream when the current segment has drained: fire
   [on_advance], then either halt (windowed replay), finish (last
   segment), or rebuild the cursors from the prefetched next segment.
   Loops over gated-event-free segments (e.g. a sched-only tail). *)
let rec drain_check (t : t) =
  if t.remaining = 0 && not t.halted && not t.last_drained then begin
    t.on_advance t.seg_index;
    match t.halt_after with
    | Some m when t.seg_index >= m -> t.halted <- true
    | _ -> (
        match t.pending with
        | None -> t.last_drained <- true
        | Some log ->
            Hashtbl.iter
              (fun lock (wc : weak_cursor) ->
                let base =
                  Option.value (Hashtbl.find_opt t.weak_base lock) ~default:0
                in
                Hashtbl.replace t.weak_base lock
                  (base + Array.length wc.wc_entries))
              t.cur.weak_cursors;
            t.cur <- cursors_of_log log;
            t.remaining <- gated_events log;
            t.pending <- t.pull ();
            t.seg_index <- t.seg_index + 1;
            t.segments_loaded <- t.segments_loaded + 1;
            drain_check t)
  end

let consumed (t : t) =
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then drain_check t

let of_stream (pull : unit -> Log.t option) : t =
  let first = match pull () with Some l -> l | None -> Log.create () in
  let t =
    {
      cur = cursors_of_log first;
      remaining = gated_events first;
      pending = pull ();
      pull;
      seg_index = 0;
      segments_loaded = 1;
      halt_after = None;
      halted = false;
      last_drained = false;
      on_advance = (fun _ -> ());
      mismatches = [];
      weak_base = Hashtbl.create 8;
    }
  in
  drain_check t;
  t

let of_log (log : Log.t) : t =
  let served = ref false in
  of_stream (fun () ->
      if !served then None
      else begin
        served := true;
        Some log
      end)

(** Execution past the end of the recording is unconstrained — but only
    once the stream is on its final segment (and not halted): an event
    missing from a {e mid-stream} segment lives in a later one and must
    wait for it. *)
let unconstrained (t : t) = t.pending = None && not t.halted

let halted (t : t) = t.halted
let segment_index (t : t) = t.seg_index
let segments_loaded (t : t) = t.segments_loaded

let set_window (t : t) ~(last_segment : int) =
  t.halt_after <- Some last_segment;
  (* the window may close on a segment that already drained *)
  if t.remaining = 0 && t.seg_index >= last_segment then t.halted <- true

let set_on_advance (t : t) (f : int -> unit) = t.on_advance <- f

(* ------------------------------------------------------------------ *)
(* Gating queries: [peek] tells whose turn it is; [advance] consumes. *)

let peek_syscall (t : t) : Key.tid_path option = seq_peek t.cur.syscall_cursor

let advance_syscall (t : t) =
  let c = t.cur.syscall_cursor in
  if c.sc_pos < Array.length c.sc_arr then begin
    c.sc_pos <- c.sc_pos + 1;
    consumed t
  end

let peek_sync (t : t) (obj : Key.addr) : (Log.sync_op * Key.tid_path) option =
  match Hashtbl.find_opt t.cur.sync_cursors obj with
  | None -> None
  | Some c -> seq_peek c

let advance_sync (t : t) (obj : Key.addr) =
  match Hashtbl.find_opt t.cur.sync_cursors obj with
  | None -> ()
  | Some c ->
      if c.sc_pos < Array.length c.sc_arr then begin
        c.sc_pos <- c.sc_pos + 1;
        consumed t
      end

(** May thread [tp] perform its next recorded acquisition of [lock]?
    True when no {e earlier} unconsumed acquisition of the same lock
    conflicts (range-overlaps) with [tp]'s next recorded claim —
    disjoint-range loop-lock acquisitions legitimately overlap in the
    recording, so only the order of conflicting pairs is enforced.
    A thread with no remaining entry in the current segment is
    unconstrained only past the end of the stream; mid-stream its next
    acquisition is recorded in a later segment and must wait for it. *)
let weak_turn (t : t) (lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path) : bool
    =
  match Hashtbl.find_opt t.cur.weak_cursors lock with
  | None -> unconstrained t
  | Some wc -> (
      match Hashtbl.find_opt wc.wc_next tp with
      | None -> unconstrained t
      | Some q when Queue.is_empty q -> unconstrained t
      | Some q ->
          let mine = Queue.peek q in
          let _, claim = wc.wc_entries.(mine) in
          let ok = ref true in
          let i = ref wc.wc_head in
          while !ok && !i < mine do
            (if not wc.wc_consumed.(!i) then
               let _, c' = wc.wc_entries.(!i) in
               if Log.sclaims_conflict claim c' then ok := false);
            incr i
          done;
          !ok)

(** Consume [tp]'s earliest remaining acquisition entry for [lock].
    When [claim] (the claim the engine is actually serving) is given, it
    is validated against the recorded claim of the consumed entry; any
    difference is accumulated as a {!claim_mismatch} — the recorded
    order is still honored, so replay proceeds and the drift surfaces in
    the outcome instead of wedging the run. *)
let consume_weak (t : t) (lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path)
    ?(claim : Log.sclaim option) () =
  match Hashtbl.find_opt t.cur.weak_cursors lock with
  | None -> ()
  | Some wc -> (
      match Hashtbl.find_opt wc.wc_next tp with
      | None -> ()
      | Some q when Queue.is_empty q -> ()
      | Some q ->
          let i = Queue.pop q in
          (match claim with
          | Some served when served <> snd wc.wc_entries.(i) ->
              let base =
                Option.value (Hashtbl.find_opt t.weak_base lock) ~default:0
              in
              t.mismatches <-
                {
                  cm_lock = lock;
                  cm_tp = tp;
                  cm_index = base + i;
                  cm_recorded = snd wc.wc_entries.(i);
                  cm_served = served;
                }
                :: t.mismatches
          | _ -> ());
          wc.wc_consumed.(i) <- true;
          let n = Array.length wc.wc_entries in
          while wc.wc_head < n && wc.wc_consumed.(wc.wc_head) do
            wc.wc_head <- wc.wc_head + 1
          done;
          consumed t)

(** Claim mismatches accumulated so far, in consumption order. *)
let claim_mismatches (t : t) : claim_mismatch list = List.rev t.mismatches

let pp_sclaim ppf (c : Log.sclaim) =
  match c with
  | [] -> Fmt.string ppf "<total>"
  | rs ->
      Fmt.(list ~sep:comma) (fun ppf (r : Log.srange) ->
          Fmt.pf ppf "%a[%d..%d]%s" Key.pp_origin r.sr_origin r.sr_lo r.sr_hi
            (if r.sr_write then "w" else "r"))
        ppf rs

let pp_claim_mismatch ppf (m : claim_mismatch) =
  Fmt.pf ppf "weak %a acq #%d by %a: recorded {%a} vs served {%a}"
    Minic.Ast.pp_weak_lock m.cm_lock m.cm_index Key.pp_tid_path m.cm_tp
    pp_sclaim m.cm_recorded pp_sclaim m.cm_served

(** Pop the next recorded input burst for thread [tp]. *)
let take_input (t : t) (tp : Key.tid_path) : int list option =
  match Hashtbl.find_opt t.cur.input_cursors tp with
  | None -> None
  | Some c -> (
      match seq_peek c with
      | None -> None
      | Some burst ->
          c.sc_pos <- c.sc_pos + 1;
          consumed t;
          Some burst)

(** Forced release pending for [owner] at (or before) step count [steps]
    and weak-acquisition count [acqs]. The entry is consumed only when
    [holds lock] — the owner may not have (re)acquired the lock yet at
    the moment the step threshold is first crossed (recordings can carry
    several forced events at the same owner step count when the owner was
    parked). The acquisition-count threshold orders the event against the
    owner's own reacquisitions at that step count: a forced release
    recorded after the owner took two locks back must not fire until the
    replaying owner has them back too. *)
let pending_forced (t : t) (owner : Key.tid_path) ~(steps : int) ~(acqs : int)
    ~(holds : Minic.Ast.weak_lock -> bool) : Minic.Ast.weak_lock option =
  match Hashtbl.find_opt t.cur.forced_by_owner owner with
  | None -> None
  | Some c -> (
      match seq_peek c with
      | Some (s, a, lock) when steps >= s && acqs >= a && holds lock ->
          c.sc_pos <- c.sc_pos + 1;
          consumed t;
          Some lock
      | _ -> None)

(** Any forced-release event still pending in the current segment, for
    any owner. Pure: unlike {!pending_forced} this never consumes. *)
let has_forced (t : t) : bool =
  Hashtbl.fold
    (fun _ c acc -> acc || seq_left c > 0)
    t.cur.forced_by_owner false

(** Human-readable dump of the first few remaining entries of every
    cursor — the deadlock-diagnosis view. *)
let dump_remaining (t : t) : string list =
  let acc = ref [] in
  if t.segments_loaded > 1 || t.pending <> None then
    acc :=
      Fmt.str "stream: segment %d, %d gated events left%s" t.seg_index
        t.remaining
        (if t.pending = None then " (last)" else "")
      :: !acc;
  (match seq_left t.cur.syscall_cursor with
  | 0 -> ()
  | left ->
      let rest =
        Array.to_list
          (Array.sub t.cur.syscall_cursor.sc_arr t.cur.syscall_cursor.sc_pos
             left)
      in
      acc :=
        Fmt.str "syscall next: %a (%d left)"
          Fmt.(list ~sep:sp Key.pp_tid_path)
          (Listx.take 4 rest) left
        :: !acc);
  Hashtbl.iter
    (fun obj c ->
      match seq_peek c with
      | None -> ()
      | Some (op, p) ->
          acc :=
            Fmt.str "sync %a next: %a by %a (%d left)" Key.pp_addr obj
              Log.pp_sync_op op Key.pp_tid_path p (seq_left c)
            :: !acc)
    t.cur.sync_cursors;
  Hashtbl.iter
    (fun lock wc ->
      let remaining = ref [] in
      for i = Array.length wc.wc_entries - 1 downto wc.wc_head do
        if not wc.wc_consumed.(i) then
          remaining := fst wc.wc_entries.(i) :: !remaining
      done;
      match !remaining with
      | [] -> ()
      | ps ->
          acc :=
            Fmt.str "weak %a next: %a (%d left)" Minic.Ast.pp_weak_lock lock
              Fmt.(list ~sep:sp Key.pp_tid_path)
              (Listx.take 4 ps) (List.length ps)
            :: !acc)
    t.cur.weak_cursors;
  List.sort compare !acc

(** Is the next forced event for [owner] exactly at [steps]? (peek) *)
let peek_forced (t : t) (owner : Key.tid_path) : int option =
  match Hashtbl.find_opt t.cur.forced_by_owner owner with
  | None -> None
  | Some c -> ( match seq_peek c with Some (s, _, _) -> Some s | None -> None)
