(** The recorder: appends events to a {!Log.t} during a recorded run and
    keeps the per-category counters reported in Table 2. *)

open Runtime

type spill = {
  sp_events : int;  (** seal threshold: gated events per segment *)
  sp_flush :
    log:Log.t -> first_tick:int -> last_tick:int -> events:int -> unit;
}

type t = {
  mutable log : Log.t;        (** the open (in-memory) segment *)
  mutable n_syscalls : int;   (** input-log entries *)
  mutable n_sync_ops : int;   (** original-synchronization HB entries *)
  mutable n_weak : int array; (** weak-lock entries by granularity rank *)
  mutable n_forced : int;
  mutable spill : spill option;
  mutable seg_events : int;       (** gated events in the open segment *)
  mutable seg_first_tick : int;
  mutable segments_sealed : int;
}

val create : unit -> t

(** Turn on segmented spilling: once the open segment holds
    [events_per_segment] gated events, the next {!maybe_seal} passes it
    to [flush] (with its tick range and event count) and recording
    continues into a fresh log. Off by default — without it the recorder
    behaves exactly as the historical monolithic one. *)
val set_spill :
  t ->
  events_per_segment:int ->
  flush:(log:Log.t -> first_tick:int -> last_tick:int -> events:int -> unit) ->
  unit

(** Seal the open segment if it has reached the spill threshold; no-op
    without {!set_spill}. The engine calls this after every recorded
    event, passing its current tick. Seal points are a function of the
    gated event counts only, so re-recordings seal identically. *)
val maybe_seal : t -> now:int -> unit

(** Seal the open tail segment (even a short one; an empty one only when
    nothing was ever sealed). No-op without {!set_spill}. *)
val finish : t -> now:int -> unit

(** Record one syscall: its result burst (possibly empty, e.g. for
    [output]) and its slot in the global syscall order. *)
val rec_input : t -> tp:Key.tid_path -> int list -> unit

val rec_sync : t -> obj:Key.addr -> op:Log.sync_op -> tp:Key.tid_path -> unit

val rec_weak :
  t -> lock:Minic.Ast.weak_lock -> tp:Key.tid_path -> claim:Log.sclaim -> unit

val rec_forced :
  t ->
  owner:Key.tid_path ->
  steps:int ->
  acqs:int ->
  lock:Minic.Ast.weak_lock ->
  unit

(** Adjacent segments of the same thread on the same core merge. *)
val rec_sched : t -> core:int -> tp:Key.tid_path -> ticks:int -> unit

(** Weak-lock log entries per granularity: (func, loop, bb, instr). *)
val weak_counts : t -> int * int * int * int
