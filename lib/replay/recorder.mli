(** The recorder: appends events to a {!Log.t} during a recorded run and
    keeps the per-category counters reported in Table 2. *)

open Runtime

type t = {
  log : Log.t;
  mutable n_syscalls : int;   (** input-log entries *)
  mutable n_sync_ops : int;   (** original-synchronization HB entries *)
  mutable n_weak : int array; (** weak-lock entries by granularity rank *)
  mutable n_forced : int;
}

val create : unit -> t

(** Record one syscall: its result burst (possibly empty, e.g. for
    [output]) and its slot in the global syscall order. *)
val rec_input : t -> tp:Key.tid_path -> int list -> unit

val rec_sync : t -> obj:Key.addr -> op:Log.sync_op -> tp:Key.tid_path -> unit

val rec_weak :
  t -> lock:Minic.Ast.weak_lock -> tp:Key.tid_path -> claim:Log.sclaim -> unit

val rec_forced :
  t ->
  owner:Key.tid_path ->
  steps:int ->
  acqs:int ->
  lock:Minic.Ast.weak_lock ->
  unit

(** Adjacent segments of the same thread on the same core merge. *)
val rec_sched : t -> core:int -> tp:Key.tid_path -> ticks:int -> unit

(** Weak-lock log entries per granularity: (func, loop, bb, instr). *)
val weak_counts : t -> int * int * int * int
