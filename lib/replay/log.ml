(** Record/replay log structures and their binary serialization.

    Following the paper's recorder, a recording is split into:

    - the {e input log}: results of nondeterministic system calls
      ([input], [net_read], [file_read]) in per-thread order, plus the
      global serialization order of system calls;
    - the {e order log}: the happens-before order of original
      synchronization operations (per-object operation order), the
      per-weak-lock acquisition order, forced-release (timeout) events,
      and the per-core thread schedule segments (informational).

    Threads are named by schedule-independent {!Runtime.Key.tid_path}s and
    objects by {!Runtime.Key.addr} / weak-lock ids, so a replayer running
    under a different scheduler still matches events.

    Serialization uses a simple varint-based binary format; reported log
    sizes (Table 2) are the compressed sizes of these encodings.

    Event sequences are stored newest-first (the recorder appends with a
    cons); encoding streams them oldest-first through a single buffer via
    a flat reversed array — no intermediate per-event lists. *)

open Runtime

exception Corrupt of string
(** Raised by {!decode} on a truncated or corrupt log. *)

type sync_op =
  | SMutexAcq
  | SMutexRel
  | SBarrierInit
  | SBarrierWait
  | SCondWait
  | SCondSignal
  | SCondBroadcast

let sync_op_code = function
  | SMutexAcq -> 0 | SMutexRel -> 1 | SBarrierInit -> 2 | SBarrierWait -> 3
  | SCondWait -> 4 | SCondSignal -> 5 | SCondBroadcast -> 6

let sync_op_of_code = function
  | 0 -> SMutexAcq | 1 -> SMutexRel | 2 -> SBarrierInit | 3 -> SBarrierWait
  | 4 -> SCondWait | 5 -> SCondSignal | 6 -> SCondBroadcast
  | n -> Fmt.invalid_arg "sync_op_of_code %d" n

let pp_sync_op ppf op =
  Fmt.string ppf
    (match op with
    | SMutexAcq -> "lock" | SMutexRel -> "unlock"
    | SBarrierInit -> "barrier_init" | SBarrierWait -> "barrier_wait"
    | SCondWait -> "cond_wait" | SCondSignal -> "cond_signal"
    | SCondBroadcast -> "cond_broadcast")

(** A stable (origin-space) address range claimed by a weak-lock
    acquisition; the empty claim list means "protects everything"
    ([-INF..+INF] in Figure 4). Two acquisitions of the same weak lock
    conflict unless both carry claims and all range pairs are disjoint —
    replay enforces the recorded order only between {e conflicting}
    acquisitions, because disjoint-range loop-lock holders legitimately
    overlap (that is the whole point of Section 5). *)
type srange = {
  sr_origin : Key.origin;
  sr_lo : int;
  sr_hi : int;
  sr_write : bool;
}

type sclaim = srange list

let sclaims_conflict (a : sclaim) (b : sclaim) : bool =
  match (a, b) with
  | [], _ | _, [] -> true
  | _ ->
      List.exists
        (fun ra ->
          List.exists
            (fun rb ->
              (ra.sr_write || rb.sr_write)
              && ra.sr_origin = rb.sr_origin
              && ra.sr_lo <= rb.sr_hi && rb.sr_lo <= ra.sr_hi)
            b)
        a

type forced_event = {
  fe_owner : Key.tid_path;
  fe_steps : int;          (** owner's per-thread step count at preemption *)
  fe_acqs : int;
      (** weak acquisitions the owner had performed when preempted — pins
          where the forced release falls between the owner's own
          reacquisitions at the same step count *)
  fe_lock : Minic.Ast.weak_lock;
}

type sched_segment = {
  sg_core : int;
  sg_tid : Key.tid_path;
  mutable sg_ticks : int;
      (** mutable so the recorder extends the open segment in place *)
}

type t = {
  (* input log *)
  inputs : (Key.tid_path, int list list ref) Hashtbl.t;
      (** per-thread recorded syscall result bursts, newest first (each
          burst is the word list one syscall returned, in order) *)
  mutable syscall_order : Key.tid_path list;  (** global order, reversed *)
  (* order log *)
  sync_order : (Key.addr, (sync_op * Key.tid_path) list ref) Hashtbl.t;
      (** per-object op sequence, reversed *)
  weak_order :
    (Minic.Ast.weak_lock, (Key.tid_path * sclaim) list ref) Hashtbl.t;
      (** per-lock acquisition sequence with claimed ranges, reversed *)
  mutable forced : forced_event list;  (** reversed *)
  mutable sched : sched_segment list;  (** reversed *)
}

let create () =
  {
    inputs = Hashtbl.create 16;
    syscall_order = [];
    sync_order = Hashtbl.create 64;
    weak_order = Hashtbl.create 64;
    forced = [];
    sched = [];
  }

(** The append cell for key [k] of table [tbl], created empty on first
    use — the recorder's one-lookup append point. *)
let cell tbl k : 'a list ref =
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace tbl k r;
      r

(** Oldest-first array view of a newest-first event list: one flat
    allocation, reversed in place. *)
let oldest_first (xs : 'a list) : 'a array =
  match xs with
  | [] -> [||]
  | _ ->
      let a = Array.of_list xs in
      let n = Array.length a in
      for i = 0 to (n / 2) - 1 do
        let t = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- t
      done;
      a

(* ------------------------------------------------------------------ *)
(* Binary encoding *)

module Enc = struct
  let varint b n =
    (* zigzag for negatives *)
    let n = if n >= 0 then n lsl 1 else ((-n) lsl 1) lor 1 in
    let rec go n =
      if n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let string b s =
    varint b (String.length s);
    Buffer.add_string b s

  let list b f xs =
    varint b (List.length xs);
    List.iter (f b) xs

  let tid_path b (p : Key.tid_path) = list b varint p

  let origin b = function
    | Key.OGlobal g -> varint b 0; string b g
    | Key.OFrame (p, n) -> varint b 1; tid_path b p; varint b n
    | Key.OHeap (p, n) -> varint b 2; tid_path b p; varint b n

  let addr b (a : Key.addr) =
    origin b a.a_origin;
    varint b a.a_off

  let weak_lock b (w : Minic.Ast.weak_lock) =
    varint b (Minic.Ast.granularity_rank w.wl_gran);
    varint b w.wl_id
end

module Dec = struct
  type cursor = { s : string; mutable pos : int }

  let corrupt c fmt =
    Fmt.kstr (fun m -> raise (Corrupt (Fmt.str "%s (byte %d)" m c.pos))) fmt

  let varint c =
    let len = String.length c.s in
    let rec go shift acc =
      if c.pos >= len then corrupt c "truncated varint";
      if shift > 62 then corrupt c "varint overflow";
      let byte = Char.code c.s.[c.pos] in
      c.pos <- c.pos + 1;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    let z = go 0 0 in
    if z land 1 = 0 then z lsr 1 else -(z lsr 1)

  let string c =
    let n = varint c in
    if n < 0 || n > String.length c.s - c.pos then
      corrupt c "truncated string (%d bytes expected)" n;
    let s = String.sub c.s c.pos n in
    c.pos <- c.pos + n;
    s

  let check_count c n =
    (* every element encodes to >= 1 byte, so a count beyond the
       remaining bytes is corruption — reject it before trying to
       materialize a multi-gigabyte sequence *)
    if n < 0 || n > String.length c.s - c.pos then
      corrupt c "bad list length %d" n

  (* Elements are read left to right by an explicit loop: the byte
     stream dictates the order, so the reader must never rely on the
     argument evaluation order of a constructor (List.init makes no
     such guarantee). *)
  let list c f =
    let n = varint c in
    check_count c n;
    if n = 0 then []
    else begin
      let first = f c in
      let a = Array.make n first in
      for i = 1 to n - 1 do
        a.(i) <- f c
      done;
      Array.to_list a
    end

  (* newest-first (reversed) list of [n] elements read left to right —
     the storage form of the log tables, built with no second pass *)
  let rev_list c f =
    let n = varint c in
    check_count c n;
    let r = ref [] in
    for _ = 1 to n do
      r := f c :: !r
    done;
    !r

  let tid_path c : Key.tid_path = list c varint

  let origin c =
    match varint c with
    | 0 -> Key.OGlobal (string c)
    | 1 ->
        let p = tid_path c in
        let n = varint c in
        Key.OFrame (p, n)
    | 2 ->
        let p = tid_path c in
        let n = varint c in
        Key.OHeap (p, n)
    | n -> corrupt c "origin tag %d" n

  let addr c : Key.addr =
    let o = origin c in
    let off = varint c in
    { a_origin = o; a_off = off }

  let weak_lock c : Minic.Ast.weak_lock =
    let g =
      match varint c with
      | 0 -> Minic.Ast.Gfunc | 1 -> Gloop | 2 -> Gbb | 3 -> Ginstr
      | n -> corrupt c "weak_lock granularity tag %d" n
    in
    let id = varint c in
    { wl_gran = g; wl_id = id }
end

(* sorted oldest-first key array of a keyed table — canonical encode
   order, via the typed comparator [cmp] *)
let sorted_keys (tbl : ('k, 'v) Hashtbl.t) (cmp : 'k -> 'k -> int) : 'k array
    =
  let keys = Array.make (Hashtbl.length tbl) None in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- Some k;
      incr i)
    tbl;
  let keys = Array.map (function Some k -> k | None -> assert false) keys in
  Array.sort cmp keys;
  keys

(* [mark], when given, receives the byte offset after every encoded
   record (section headers and individual events) — the record-boundary
   map the fault-injection truncation sweep cuts at. [None] compiles to
   a dead branch, keeping the plain encoders allocation-free. *)

let mark_at (mark : (int -> unit) option) b =
  match mark with Some f -> f (Buffer.length b) | None -> ()

(* a rev_seq whose element boundaries are marked *)
let rev_seq_marked mark b f xs =
  let a = oldest_first xs in
  Enc.varint b (Array.length a);
  mark_at mark b;
  Array.iter
    (fun x ->
      f b x;
      mark_at mark b)
    a

let encode_input_log_gen ~mark (t : t) : string =
  let b = Buffer.create 1024 in
  let keys = sorted_keys t.inputs Key.compare_tid_path in
  Enc.varint b (Array.length keys);
  mark_at mark b;
  Array.iter
    (fun p ->
      Enc.tid_path b p;
      mark_at mark b;
      rev_seq_marked mark b (fun b vs -> Enc.list b Enc.varint vs)
        !(Hashtbl.find t.inputs p))
    keys;
  rev_seq_marked mark b Enc.tid_path t.syscall_order;
  Buffer.contents b

let encode_order_log_gen ~mark (t : t) : string =
  let b = Buffer.create 1024 in
  let sync_keys = sorted_keys t.sync_order Key.compare_addr in
  Enc.varint b (Array.length sync_keys);
  mark_at mark b;
  Array.iter
    (fun a ->
      Enc.addr b a;
      mark_at mark b;
      rev_seq_marked mark b
        (fun b (op, p) ->
          Enc.varint b (sync_op_code op);
          Enc.tid_path b p)
        !(Hashtbl.find t.sync_order a))
    sync_keys;
  let weak_keys = sorted_keys t.weak_order Minic.Ast.compare_weak_lock in
  Enc.varint b (Array.length weak_keys);
  mark_at mark b;
  Array.iter
    (fun w ->
      Enc.weak_lock b w;
      mark_at mark b;
      rev_seq_marked mark b
        (fun b (p, (claim : sclaim)) ->
          Enc.tid_path b p;
          Enc.list b
            (fun b sr ->
              Enc.origin b sr.sr_origin;
              Enc.varint b sr.sr_lo;
              Enc.varint b sr.sr_hi;
              Enc.varint b (if sr.sr_write then 1 else 0))
            claim)
        !(Hashtbl.find t.weak_order w))
    weak_keys;
  rev_seq_marked mark b
    (fun b fe ->
      Enc.tid_path b fe.fe_owner;
      Enc.varint b fe.fe_steps;
      Enc.varint b fe.fe_acqs;
      Enc.weak_lock b fe.fe_lock)
    t.forced;
  rev_seq_marked mark b
    (fun b sg ->
      Enc.varint b sg.sg_core;
      Enc.tid_path b sg.sg_tid;
      Enc.varint b sg.sg_ticks)
    t.sched;
  Buffer.contents b

(** Serialize the input log (syscall values + global syscall order). *)
let encode_input_log (t : t) : string = encode_input_log_gen ~mark:None t

(** Serialize the order log (sync + weak + forced + schedule). *)
let encode_order_log (t : t) : string = encode_order_log_gen ~mark:None t

(* the marked variants: encoding plus the sorted, deduplicated record
   boundary offsets (0 and the full length excluded — truncating there
   is the empty or the intact log, not a damaged one) *)
let with_marks encode t =
  let marks = ref [] in
  let s = encode ~mark:(Some (fun off -> marks := off :: !marks)) t in
  let n = String.length s in
  let bounds =
    List.sort_uniq compare
      (List.filter (fun off -> off > 0 && off < n) !marks)
  in
  (s, Array.of_list bounds)

(** [encode_input_log_marked t] is the exact {!encode_input_log} bytes
    plus the strictly interior record-boundary offsets, ascending. *)
let encode_input_log_marked (t : t) : string * int array =
  with_marks encode_input_log_gen t

let encode_order_log_marked (t : t) : string * int array =
  with_marks encode_order_log_gen t

(* a decode that stops early is as corrupt as one that runs past the
   end: bytes appended after a well-formed log would otherwise vanish
   silently, so an intact-looking recording could carry (and mask) any
   amount of trailing garbage *)
let check_consumed (c : Dec.cursor) what =
  if c.pos <> String.length c.s then
    Dec.corrupt c "trailing garbage after %s (%d bytes)" what
      (String.length c.s - c.pos)

let decode (input_log : string) (order_log : string) : t =
  let t = create () in
  let c = { Dec.s = input_log; pos = 0 } in
  let n = Dec.varint c in
  for _ = 1 to n do
    let p = Dec.tid_path c in
    let bursts = Dec.rev_list c (fun c -> Dec.list c Dec.varint) in
    Hashtbl.replace t.inputs p (ref bursts)
  done;
  t.syscall_order <- Dec.rev_list c Dec.tid_path;
  check_consumed c "input log";
  let c = { Dec.s = order_log; pos = 0 } in
  let nsync = Dec.varint c in
  for _ = 1 to nsync do
    let a = Dec.addr c in
    let ops =
      Dec.rev_list c (fun c ->
          let code = Dec.varint c in
          let op =
            if code < 0 || code > 6 then
              Dec.corrupt c "sync_op code %d" code
            else sync_op_of_code code
          in
          let p = Dec.tid_path c in
          (op, p))
    in
    Hashtbl.replace t.sync_order a (ref ops)
  done;
  let nweak = Dec.varint c in
  for _ = 1 to nweak do
    let w = Dec.weak_lock c in
    let ps =
      Dec.rev_list c (fun c ->
          let p = Dec.tid_path c in
          let claim =
            Dec.list c (fun c ->
                let o = Dec.origin c in
                let lo = Dec.varint c in
                let hi = Dec.varint c in
                let w = Dec.varint c in
                { sr_origin = o; sr_lo = lo; sr_hi = hi; sr_write = w <> 0 })
          in
          (p, claim))
    in
    Hashtbl.replace t.weak_order w (ref ps)
  done;
  t.forced <-
    Dec.rev_list c (fun c ->
        let owner = Dec.tid_path c in
        let steps = Dec.varint c in
        let acqs = Dec.varint c in
        let lock = Dec.weak_lock c in
        { fe_owner = owner; fe_steps = steps; fe_acqs = acqs; fe_lock = lock });
  t.sched <-
    Dec.rev_list c (fun c ->
        let core = Dec.varint c in
        let tid = Dec.tid_path c in
        let ticks = Dec.varint c in
        { sg_core = core; sg_tid = tid; sg_ticks = ticks });
  check_consumed c "order log";
  t
