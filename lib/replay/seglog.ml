(** Segmented on-disk recording: a directory of sealed, compressed,
    checksummed log segments plus a manifest, so a recording can outlive
    memory and replay can stream it segment by segment.

    Layout of a segment directory:

    - [manifest] — one text line per segment (index, tick range, event
      count, raw/compressed sizes, MD5 of each compressed blob, optional
      checkpoint pin), bracketed by the magic header
      ["chimera-log-segments/1"] and a trailing [end <count>] line so a
      truncated manifest is detected;
    - [seg-NNNN.seg] — the segment payload: the magic line
      ["chimera-log-segment/1"], the two blob sizes, then the
      {!Zcompress}ed {!Log.encode_input_log} and
      {!Log.encode_order_log} bytes. The in-segment format {e is} the
      historical single-blob encoding — golden ticks and record==replay
      stay the contract;
    - [ckpt-NNNN.bin] — when the recorder pinned a checkpoint at this
      seal: the marshalled engine snapshot, whose state digest and MD5
      live in the manifest entry.

    Every corruption — bad magic, size or checksum mismatch, truncation,
    trailing bytes — surfaces as the typed {!Log.Corrupt}, exactly like
    a damaged monolithic log; nothing in here crashes on garbage. *)

let magic = "chimera-log-segments/1"
let segment_magic = "chimera-log-segment/1"

type checkpoint = {
  ck_digest : string;  (** engine state digest at the seal (hex) *)
  ck_md5 : string;     (** MD5 of the snapshot bytes (hex) *)
}

type segment = {
  sg_index : int;
  sg_first_tick : int;
  sg_last_tick : int;
  sg_events : int;  (** gated events sealed into this segment *)
  sg_raw_input : int;
  sg_raw_order : int;
  sg_z_input : int;
  sg_z_order : int;
  sg_md5_input : string;
  sg_md5_order : string;
  sg_checkpoint : checkpoint option;
}

type manifest = { mf_segments : segment array }

let corrupt fmt = Fmt.kstr (fun m -> raise (Log.Corrupt m)) fmt

let segment_file idx = Fmt.str "seg-%04d.seg" idx
let checkpoint_file idx = Fmt.str "ckpt-%04d.bin" idx
let manifest_file = "manifest"

(* ------------------------------------------------------------------ *)
(* Small file helpers (stdlib only; no Unix dependency) *)

let read_file path =
  if not (Sys.file_exists path) then corrupt "missing file %s" path;
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Manifest serialization *)

let checkpoint_field = function
  | None -> "ckpt=-"
  | Some c -> Fmt.str "ckpt=%s,%s" c.ck_digest c.ck_md5

let segment_line (s : segment) =
  Fmt.str "segment %d first=%d last=%d events=%d raw=%d,%d z=%d,%d md5=%s,%s %s"
    s.sg_index s.sg_first_tick s.sg_last_tick s.sg_events s.sg_raw_input
    s.sg_raw_order s.sg_z_input s.sg_z_order s.sg_md5_input s.sg_md5_order
    (checkpoint_field s.sg_checkpoint)

let manifest_string (m : manifest) =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Array.iter
    (fun s ->
      Buffer.add_string b (segment_line s);
      Buffer.add_char b '\n')
    m.mf_segments;
  Buffer.add_string b (Fmt.str "end %d\n" (Array.length m.mf_segments));
  Buffer.contents b

let is_hex s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let parse_segment_line idx line =
  let s =
    try
      Scanf.sscanf line
        "segment %d first=%d last=%d events=%d raw=%d,%d z=%d,%d md5=%s@,%s@ ckpt=%s"
        (fun i ft lt ev ri ro zi zo mi mo ck ->
          let ckpt =
            match ck with
            | "-" -> None
            | _ -> (
                match String.index_opt ck ',' with
                | Some p ->
                    Some
                      {
                        ck_digest = String.sub ck 0 p;
                        ck_md5 =
                          String.sub ck (p + 1) (String.length ck - p - 1);
                      }
                | None -> corrupt "manifest line %d: bad checkpoint %S" idx ck)
          in
          {
            sg_index = i;
            sg_first_tick = ft;
            sg_last_tick = lt;
            sg_events = ev;
            sg_raw_input = ri;
            sg_raw_order = ro;
            sg_z_input = zi;
            sg_z_order = zo;
            sg_md5_input = mi;
            sg_md5_order = mo;
            sg_checkpoint = ckpt;
          })
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      corrupt "manifest line %d unparsable: %S" idx line
  in
  if s.sg_index <> idx - 1 then
    corrupt "manifest line %d: segment index %d out of order" idx s.sg_index;
  if not (is_hex s.sg_md5_input && is_hex s.sg_md5_order) then
    corrupt "manifest line %d: malformed checksum" idx;
  (match s.sg_checkpoint with
  | Some c when not (is_hex c.ck_digest && is_hex c.ck_md5) ->
      corrupt "manifest line %d: malformed checkpoint digest" idx
  | _ -> ());
  s

let manifest_of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when header = magic ->
      let segs = ref [] and closed = ref false and n = ref 0 in
      List.iteri
        (fun i line ->
          if line <> "" && not !closed then
            if String.length line >= 4 && String.sub line 0 4 = "end " then begin
              (match int_of_string_opt (String.sub line 4 (String.length line - 4)) with
              | Some k when k = !n -> closed := true
              | Some k -> corrupt "manifest end count %d, %d segments listed" k !n
              | None -> corrupt "manifest end line unparsable: %S" line)
            end
            else begin
              incr n;
              segs := parse_segment_line !n line :: !segs
            end
          else if line <> "" && !closed then
            corrupt "manifest line %d after end marker" (i + 1))
        rest;
      if not !closed then corrupt "manifest truncated (no end marker)";
      { mf_segments = Array.of_list (List.rev !segs) }
  | header :: _ -> corrupt "manifest magic %S (want %S)" header magic
  | [] -> corrupt "empty manifest"

let read_manifest ~dir =
  manifest_of_string (read_file (Filename.concat dir manifest_file))

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer_stats = {
  ws_segments : int;
  ws_events : int;           (** gated events across all sealed segments *)
  ws_peak_raw : int;         (** largest single-segment encoding — the
                                 resident-log-memory bound *)
  ws_total_raw : int;
  ws_total_z : int;
}

type writer = {
  w_dir : string;
  mutable w_segments : segment list;  (** newest first *)
  mutable w_closed : bool;
  mutable w_stats : writer_stats;
}

let writer_stats w = w.w_stats

let create_writer ~dir : writer =
  mkdir_p dir;
  (* a fresh recording owns the directory: stale segments from a longer
     previous recording must not shadow the new manifest *)
  Array.iter
    (fun f ->
      if
        Filename.check_suffix f ".seg"
        || Filename.check_suffix f ".bin"
        || f = manifest_file
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  {
    w_dir = dir;
    w_segments = [];
    w_closed = false;
    w_stats =
      { ws_segments = 0; ws_events = 0; ws_peak_raw = 0; ws_total_raw = 0;
        ws_total_z = 0 };
  }

let manifest_of_writer w =
  { mf_segments = Log.oldest_first w.w_segments }

let flush_manifest w =
  write_file
    (Filename.concat w.w_dir manifest_file)
    (manifest_string (manifest_of_writer w))

let append (w : writer) ?snapshot ~first_tick ~last_tick ~events
    (log : Log.t) =
  if w.w_closed then invalid_arg "Seglog.append: writer closed";
  let idx = w.w_stats.ws_segments in
  let raw_i = Log.encode_input_log log in
  let raw_o = Log.encode_order_log log in
  let z_i = Zcompress.compress raw_i in
  let z_o = Zcompress.compress raw_o in
  let b = Buffer.create (String.length z_i + String.length z_o + 64) in
  Buffer.add_string b segment_magic;
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Fmt.str "%d %d\n" (String.length z_i) (String.length z_o));
  Buffer.add_string b z_i;
  Buffer.add_string b z_o;
  write_file (Filename.concat w.w_dir (segment_file idx)) (Buffer.contents b);
  let ckpt =
    match snapshot with
    | None -> None
    | Some (digest, bytes) ->
        write_file (Filename.concat w.w_dir (checkpoint_file idx)) bytes;
        Some { ck_digest = digest; ck_md5 = Digest.to_hex (Digest.string bytes) }
  in
  let seg =
    {
      sg_index = idx;
      sg_first_tick = first_tick;
      sg_last_tick = last_tick;
      sg_events = events;
      sg_raw_input = String.length raw_i;
      sg_raw_order = String.length raw_o;
      sg_z_input = String.length z_i;
      sg_z_order = String.length z_o;
      sg_md5_input = Digest.to_hex (Digest.string z_i);
      sg_md5_order = Digest.to_hex (Digest.string z_o);
      sg_checkpoint = ckpt;
    }
  in
  w.w_segments <- seg :: w.w_segments;
  let st = w.w_stats in
  let raw = String.length raw_i + String.length raw_o in
  w.w_stats <-
    {
      ws_segments = st.ws_segments + 1;
      ws_events = st.ws_events + events;
      ws_peak_raw = max st.ws_peak_raw raw;
      ws_total_raw = st.ws_total_raw + raw;
      ws_total_z = st.ws_total_z + String.length z_i + String.length z_o;
    };
  (* rewrite the manifest at every seal so a crashed recording still
     leaves a readable prefix *)
  flush_manifest w

let close_writer (w : writer) : manifest =
  if not w.w_closed then begin
    w.w_closed <- true;
    flush_manifest w
  end;
  manifest_of_writer w

(* ------------------------------------------------------------------ *)
(* Reader *)

let load_segment ~dir (s : segment) : Log.t =
  let path = Filename.concat dir (segment_file s.sg_index) in
  let content = read_file path in
  let fail fmt = Fmt.kstr (fun m -> corrupt "%s: %s" path m) fmt in
  let nl1 =
    match String.index_opt content '\n' with
    | Some i -> i
    | None -> fail "truncated header"
  in
  if String.sub content 0 nl1 <> segment_magic then
    fail "segment magic %S (want %S)" (String.sub content 0 (min nl1 40))
      segment_magic;
  let nl2 =
    match String.index_from_opt content (nl1 + 1) '\n' with
    | Some i -> i
    | None -> fail "truncated size line"
  in
  let zi, zo =
    try
      Scanf.sscanf (String.sub content (nl1 + 1) (nl2 - nl1 - 1)) "%d %d"
        (fun a b -> (a, b))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "size line unparsable"
  in
  if zi <> s.sg_z_input || zo <> s.sg_z_order then
    fail "blob sizes %d/%d disagree with manifest %d/%d" zi zo s.sg_z_input
      s.sg_z_order;
  if zi < 0 || zo < 0 || String.length content - nl2 - 1 <> zi + zo then
    fail "payload is %d bytes, header promises %d"
      (String.length content - nl2 - 1)
      (zi + zo);
  let z_i = String.sub content (nl2 + 1) zi in
  let z_o = String.sub content (nl2 + 1 + zi) zo in
  if Digest.to_hex (Digest.string z_i) <> s.sg_md5_input then
    fail "input blob checksum mismatch";
  if Digest.to_hex (Digest.string z_o) <> s.sg_md5_order then
    fail "order blob checksum mismatch";
  let raw_i =
    try Zcompress.decompress z_i
    with _ -> fail "input blob does not decompress"
  in
  let raw_o =
    try Zcompress.decompress z_o
    with _ -> fail "order blob does not decompress"
  in
  if
    String.length raw_i <> s.sg_raw_input
    || String.length raw_o <> s.sg_raw_order
  then
    fail "decompressed sizes %d/%d disagree with manifest %d/%d"
      (String.length raw_i) (String.length raw_o) s.sg_raw_input
      s.sg_raw_order;
  Log.decode raw_i raw_o

(** The snapshot bytes pinned at this segment's seal, checksum-verified;
    [None] when the seal carried no checkpoint. *)
let load_snapshot ~dir (s : segment) : string option =
  match s.sg_checkpoint with
  | None -> None
  | Some c ->
      let path = Filename.concat dir (checkpoint_file s.sg_index) in
      let bytes = read_file path in
      if Digest.to_hex (Digest.string bytes) <> c.ck_md5 then
        corrupt "%s: snapshot checksum mismatch" path;
      Some bytes

(** Sequential pull over the directory's segments (decoded, verified),
    for {!Replayer.of_stream}. Segments load lazily — a windowed replay
    that halts early never touches the later files. *)
let stream ~dir : manifest * (unit -> Log.t option) =
  let m = read_manifest ~dir in
  let pos = ref 0 in
  ( m,
    fun () ->
      if !pos >= Array.length m.mf_segments then None
      else begin
        let s = m.mf_segments.(!pos) in
        incr pos;
        Some (load_segment ~dir s)
      end )

(** Index of the last segment needed to cover ticks [\[from, upto\]]:
    the first segment whose recorded tick range ends at or after [upto]
    (the last segment when the window runs past the recording). *)
let covering_segment (m : manifest) ~(upto : int) : int =
  let n = Array.length m.mf_segments in
  let rec go i =
    if i >= n - 1 then max 0 (n - 1)
    else if m.mf_segments.(i).sg_last_tick >= upto then i
    else go (i + 1)
  in
  go 0
