(** The replayer: cursors over a {!Log.t} the engine consults to gate
    execution. Data accesses are never gated — the instrumented program
    is race-free under its (weak-)lock synchronization, so the recorded
    orders of inputs, sync operations, and conflicting weak-lock
    acquisitions determine the execution. *)

open Runtime

type t

val of_log : Log.t -> t

(** Streaming replay over a sequence of segment logs (see {!Seglog}):
    [pull] yields the next segment, oldest first, [None] at the end.
    Only the current segment's cursors are resident; threads whose next
    event is missing from the current segment block until it drains, and
    the "beyond the log: unconstrained" escape applies only on the last
    segment. [of_log] is the one-segment special case. *)
val of_stream : (unit -> Log.t option) -> t

(** Is execution past the recording unconstrained — on the final
    segment and not halted? The engine's gates consult this instead of
    treating every missing entry as end-of-log. *)
val unconstrained : t -> bool

(** Windowed replay: stop once [last_segment] (0-based) drains. Once
    halted, no further segment loads, every gate blocks, and the engine
    exits its run loop cleanly. *)
val set_window : t -> last_segment:int -> unit

(** Has a {!set_window} bound been reached? *)
val halted : t -> bool

(** [f idx] fires the moment segment [idx] drains, before the next
    segment loads — an engine state digest captured here is comparable
    across full and windowed replays of the same recording. *)
val set_on_advance : t -> (int -> unit) -> unit

val segment_index : t -> int
(** Current (0-based) segment position of the stream. *)

val segments_loaded : t -> int
(** Segments pulled so far — a windowed replay of segments [0..m] loads
    exactly [m+1]. *)

(** Whose syscall comes next, globally? [None] past the end of the log
    (unconstrained). *)
val peek_syscall : t -> Key.tid_path option

val advance_syscall : t -> unit

val peek_sync : t -> Key.addr -> (Log.sync_op * Key.tid_path) option
val advance_sync : t -> Key.addr -> unit

(** May the thread perform its next recorded acquisition of the lock?
    True when no earlier unconsumed acquisition of the same lock
    conflicts with the thread's next recorded claim (disjoint-range
    holders legitimately overlap), or when the thread has no entry
    left. *)
val weak_turn : t -> Minic.Ast.weak_lock -> tp:Key.tid_path -> bool

type claim_mismatch = {
  cm_lock : Minic.Ast.weak_lock;
  cm_tp : Key.tid_path;
  cm_index : int;  (** position in the lock's recorded acquisition order *)
  cm_recorded : Log.sclaim;
  cm_served : Log.sclaim;
}
(** A served acquisition whose claim differs from the recorded one —
    instrumentation drift between the recording and replaying binaries. *)

(** Consume the thread's earliest remaining acquisition entry. [claim],
    when given, is the claim actually being served; it is validated
    against the recorded claim and any difference accumulates as a
    {!claim_mismatch} (replay proceeds regardless). *)
val consume_weak :
  t -> Minic.Ast.weak_lock -> tp:Key.tid_path -> ?claim:Log.sclaim -> unit ->
  unit

(** Mismatches accumulated so far, in consumption order. *)
val claim_mismatches : t -> claim_mismatch list

val pp_claim_mismatch : claim_mismatch Fmt.t

(** Pop the next recorded input burst for the thread. *)
val take_input : t -> Key.tid_path -> int list option

(** Forced release due for the owner at (or before) the given step and
    weak-acquisition counts; consumed only when [holds lock] — the owner
    may not have reacquired yet when the threshold is first crossed. *)
val pending_forced :
  t ->
  Key.tid_path ->
  steps:int ->
  acqs:int ->
  holds:(Minic.Ast.weak_lock -> bool) ->
  Minic.Ast.weak_lock option

(** Whether any forced-release event is still pending in the current
    segment, for any owner. Never consumes — an emptiness probe for
    gating the scheduler's forced-release maintenance pass. *)
val has_forced : t -> bool

(** Step count of the owner's next forced event, if any. *)
val peek_forced : t -> Key.tid_path -> int option

(** Human-readable first entries of every remaining cursor (deadlock
    diagnosis). *)
val dump_remaining : t -> string list
