(** Minimal JSON reader shared by the bench harnesses (no JSON dep
    in-tree). Parses the JSON subset the harness emits — objects,
    arrays, strings with simple escapes, numbers, booleans, null — and
    offers the few accessors the regression gates need. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad (Fmt.str "%s at byte %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Fmt.str "expected %c" c)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let lit word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (string_lit ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (elems [])
        end
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  v

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let num_exn what = function
  | Some (Num f) -> f
  | _ -> raise (Bad ("missing number " ^ what))

let str_exn what = function
  | Some (Str s) -> s
  | _ -> raise (Bad ("missing string " ^ what))

let list_exn what = function
  | Some (List l) -> l
  | _ -> raise (Bad ("missing array " ^ what))

(** [num_or default j] — tolerant numeric read for optional fields
    (e.g. fields added by a newer schema revision). *)
let num_or default = function Some (Num f) -> f | _ -> default

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Parse the JSON document at [path]. *)
let load_file path = parse (read_file path)
