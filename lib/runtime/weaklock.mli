(** The weak-lock manager (paper Section 2.3).

    Weak locks are the synchronization Chimera adds around potential
    data-races. Beyond a mutex:

    - {e range claims}: a loop-lock acquisition carries the address
      ranges (with read/write mode) the guarded loop will touch; two
      acquisitions of the same lock coexist iff every range pair is
      disjoint or read/read — disjoint radix workers and water's
      concurrent readers stay parallel;
    - {e timeouts}: a stalled waiter triggers {!force_release} of the
      conflicting owner, with FIFO handoff so the stalled thread gets
      the lock before the owner's reacquisition;
    - the single-conflicting-holder invariant always holds, so recording
      the per-lock order of conflicting acquisitions suffices for
      deterministic replay.

    Pure state machine: the engine owns thread states, wake-ups, timeout
    detection, and logging. *)

type tid = int

type range = { rg_block : int; rg_lo : int; rg_hi : int; rg_write : bool }
(** Run-local block coordinates; overlapping ranges conflict only when
    at least one side writes. *)

val pp_range : range Fmt.t

type claim = range list
(** Empty = total ("-INF to +INF" in Figure 4): conflicts with every
    other acquisition of the lock. *)

val ranges_disjoint : claim -> claim -> bool
(** Reference pairwise disjointness (the specification). *)

type nclaim
(** A claim in canonical form: sorted, coalesced, pairwise-disjoint
    interval arrays (full coverage + written cells). The admission path
    compares claims through this form with a merge scan. *)

val normalize : claim -> nclaim

val nclaim_disjoint : nclaim -> nclaim -> bool
(** Agrees with {!ranges_disjoint} on well-formed claims (every range
    with [rg_lo <= rg_hi] — all the engine ever emits). *)

module Wl_tbl : Hashtbl.S with type key = Minic.Ast.weak_lock

type lock_state

type t = {
  locks : lock_state Wl_tbl.t;
  mutable total_acquires : int;
  mutable total_releases : int;
  mutable total_timeouts : int;
  mutable total_handoff_served : int;
      (** preemption-time waiters that consumed their reservation *)
  mutable total_handoff_expired : int;
      (** reservations cleared before the reserved thread came back *)
}

val create : unit -> t

(** [`Blocked owners] reports the currently conflicting holders (for
    timeout-preemption targeting). *)
val acquire :
  t -> Minic.Ast.weak_lock -> tid:tid -> claim:claim ->
  [ `Acquired | `Blocked of tid list ]

(** Returns waiting threads to wake (they retry). Only waiters whose
    claims are compatible with the remaining holders (and not locked out
    by a handoff reservation) are woken; the rest keep their FIFO
    position. *)
val release : t -> Minic.Ast.weak_lock -> tid:tid -> tid list

(** Timeout-preemption: strip the owner's hold. With [handoff] (default,
    used when recording) the threads waiting at preemption time get FIFO
    priority over the owner's reacquisition. *)
val force_release :
  ?handoff:bool -> t -> Minic.Ast.weak_lock -> owner:tid -> tid list

(** Expire a stale handoff reservation. *)
val clear_pending : t -> Minic.Ast.weak_lock -> unit

val holds : t -> Minic.Ast.weak_lock -> tid:tid -> bool
val holders : t -> Minic.Ast.weak_lock -> tid list
val holder_claims : t -> Minic.Ast.weak_lock -> (tid * claim) list

val waiter_count : t -> Minic.Ast.weak_lock -> int
(** Threads currently queued on the lock. *)

val cancel_wait : t -> Minic.Ast.weak_lock -> tid:tid -> unit
(** Drops [tid] from the waiter queue {e and} from any handoff
    reservation — a reservation for a thread that never returns would
    wedge the lock forever. *)
