(** Schedule-independent identities for threads and memory objects.

    Record/replay logs must name threads and synchronization objects in a
    way that is stable across executions with different schedules (the
    replayer may run under a different scheduler seed than the recorder).
    Run-local thread ids and block ids are allocated in schedule-dependent
    order, so logs key on:

    - {e thread paths}: the root thread is [[]]; the k-th thread spawned
      by a thread with path [p] is [p @ [k]]. Per-thread spawn counters
      are deterministic given deterministic per-thread execution, which
      replay enforcement guarantees inductively.
    - {e object origins}: a global by name; a stack frame by (spawning
      thread path, per-thread frame counter); a heap block by (thread
      path, per-thread allocation counter). *)

type tid_path = int list

let pp_tid_path ppf p =
  if p = [] then Fmt.string ppf "T0"
  else Fmt.pf ppf "T0.%a" Fmt.(list ~sep:(any ".") int) p

type origin =
  | OGlobal of string
  | OFrame of tid_path * int  (** thread, per-thread frame sequence *)
  | OHeap of tid_path * int   (** thread, per-thread allocation sequence *)

let pp_origin ppf = function
  | OGlobal g -> Fmt.string ppf g
  | OFrame (p, n) -> Fmt.pf ppf "frame(%a,%d)" pp_tid_path p n
  | OHeap (p, n) -> Fmt.pf ppf "heap(%a,%d)" pp_tid_path p n

(** A stable memory address: origin + cell offset. *)
type addr = { a_origin : origin; a_off : int }

let pp_addr ppf a = Fmt.pf ppf "%a+%d" pp_origin a.a_origin a.a_off

(* The typed comparators below order exactly like [Stdlib.compare] on
   these types (constructor declaration order, then fields left to
   right), so switching a sort between them never reorders anything —
   but they never fall into the polymorphic-compare runtime. *)

let compare_tid_path (a : tid_path) (b : tid_path) : int =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
        if x < y then -1 else if x > y then 1 else go xs ys
  in
  go a b

let compare_origin (a : origin) (b : origin) : int =
  match (a, b) with
  | OGlobal x, OGlobal y -> String.compare x y
  | OGlobal _, _ -> -1
  | _, OGlobal _ -> 1
  | OFrame (p, n), OFrame (q, m) -> (
      match compare_tid_path p q with 0 -> Int.compare n m | c -> c)
  | OFrame _, _ -> -1
  | _, OFrame _ -> 1
  | OHeap (p, n), OHeap (q, m) -> (
      match compare_tid_path p q with 0 -> Int.compare n m | c -> c)

let compare_addr (a : addr) (b : addr) : int =
  match compare_origin a.a_origin b.a_origin with
  | 0 -> Int.compare a.a_off b.a_off
  | c -> c

module Addr_map = Map.Make (struct
  type t = addr
  let compare = compare_addr
end)

module Addr_tbl = Hashtbl.Make (struct
  type t = addr
  let equal = ( = )
  let hash = Hashtbl.hash
end)
