(** Small list helpers shared across the runtime, interpreter, and
    replayer. *)

(** [take n xs] is the first [n] elements of [xs], or [xs] itself (no
    copy) when it is no longer than [n] — replaces the
    [if List.length xs > n then List.filteri (fun i _ -> i < n) xs]
    idiom scattered through truncation sites. *)
let take n xs =
  let rec go n xs =
    match xs with [] -> [] | _ when n <= 0 -> [] | x :: rest -> x :: go (n - 1) rest
  in
  if n >= List.length xs then xs else go n xs
