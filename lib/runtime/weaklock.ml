(** The weak-lock manager (Section 2.3 of the paper).

    Weak locks are the synchronization Chimera adds around potential
    data-races. Differences from ordinary mutexes:

    - {e Ranges}: a loop-lock acquisition carries the address ranges the
      loop will touch (from the symbolic bounds analysis). Two holders of
      the {e same} weak lock coexist iff both carry ranges and every pair
      of ranges is disjoint — this is what lets radix's workers process
      disjoint array slices in parallel (Figure 4).
    - {e Region stacking}: when a thread enters an inner instrumented
      region, the runtime releases the outer region's weak locks first
      and reacquires them when the inner region exits (deadlock-freedom
      rule of Section 2.3). That logic lives in the engine's region
      stack; this module only tracks per-lock ownership.
    - {e Timeouts}: a thread stalled longer than a threshold triggers
      {!force_release} of the conflicting owner, which must reacquire
      before continuing. The single-owner-per-lock invariant (at most one
      holder per conflicting range) is never violated, so recording the
      per-lock acquisition order suffices for deterministic replay.

    The manager is a pure state machine: the engine owns thread states,
    wake-ups, timeout detection, and logging. *)

open Minic.Ast

type tid = int

(** An address range in run-local block coordinates, with an access mode:
    two overlapping ranges conflict only when at least one writes. A
    total claim (the empty range list) means "-INF to +INF" (Figure 4)
    and conflicts with everything. *)
type range = { rg_block : int; rg_lo : int; rg_hi : int; rg_write : bool }

let pp_range ppf r =
  Fmt.pf ppf "b%d[%d..%d]%s" r.rg_block r.rg_lo r.rg_hi
    (if r.rg_write then "w" else "r")

(** Ranges of one acquisition: empty list = total. *)
type claim = range list

(** Reference pairwise disjointness — the specification the normalized
    merge-scan below must agree with (a qcheck property pins this). *)
let ranges_disjoint (a : claim) (b : claim) : bool =
  match (a, b) with
  | [], _ | _, [] -> false (* a total claim conflicts with everything *)
  | _ ->
      List.for_all
        (fun ra ->
          List.for_all
            (fun rb ->
              (not (ra.rg_write || rb.rg_write))
              || ra.rg_block <> rb.rg_block
              || ra.rg_hi < rb.rg_lo || rb.rg_hi < ra.rg_lo)
            b)
        a

(* ------------------------------------------------------------------ *)
(* Normalized claims: the admission hot path compares claims through a
   canonical interval form instead of the pairwise product above. A
   claim becomes two sorted, coalesced, pairwise-disjoint interval
   arrays — all covered cells and the written cells — so disjointness of
   two claims is a merge scan: claims conflict iff one side's writes
   intersect the other side's coverage (equivalent to "some range pair
   overlaps with a writer", since any such pair yields a common cell
   written by one side, and vice versa). *)

type iv = { iv_block : int; iv_lo : int; iv_hi : int }

type nclaim = {
  nc_total : bool;          (* empty claim: conflicts with everything *)
  nc_all : iv array;        (* coalesced coverage, sorted (block, lo) *)
  nc_w : iv array;          (* coalesced written cells, sorted *)
}

(* sorted + coalesced union of [ivs]: adjacent or overlapping intervals
   of one block merge (integer cells, so [0..2]+[3..5] = [0..5]) *)
let coalesce (ivs : iv list) : iv array =
  match
    List.sort
      (fun a b ->
        match Int.compare a.iv_block b.iv_block with
        | 0 -> Int.compare a.iv_lo b.iv_lo
        | c -> c)
      ivs
  with
  | [] -> [||]
  | first :: rest ->
      let out = ref [] and cur = ref first in
      List.iter
        (fun v ->
          if
            v.iv_block = !cur.iv_block
            && v.iv_lo <= !cur.iv_hi + 1
          then begin
            if v.iv_hi > !cur.iv_hi then cur := { !cur with iv_hi = v.iv_hi }
          end
          else begin
            out := !cur :: !out;
            cur := v
          end)
        rest;
      out := !cur :: !out;
      let a = Array.of_list !out in
      let n = Array.length a in
      (* !out is newest-first: reverse back to ascending *)
      for i = 0 to (n / 2) - 1 do
        let t = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- t
      done;
      a

let normalize (c : claim) : nclaim =
  match c with
  | [] -> { nc_total = true; nc_all = [||]; nc_w = [||] }
  | _ ->
      let all =
        List.map
          (fun r -> { iv_block = r.rg_block; iv_lo = r.rg_lo; iv_hi = r.rg_hi })
          c
      in
      let w =
        List.filter_map
          (fun r ->
            if r.rg_write then
              Some { iv_block = r.rg_block; iv_lo = r.rg_lo; iv_hi = r.rg_hi }
            else None)
          c
      in
      { nc_total = false; nc_all = coalesce all; nc_w = coalesce w }

(* do two sorted disjoint interval arrays share a cell? merge scan *)
let ivs_intersect (a : iv array) (b : iv array) : bool =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and hit = ref false in
  while (not !hit) && !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x.iv_block < y.iv_block then incr i
    else if y.iv_block < x.iv_block then incr j
    else if x.iv_hi < y.iv_lo then incr i
    else if y.iv_hi < x.iv_lo then incr j
    else hit := true
  done;
  !hit

let nclaim_disjoint (a : nclaim) (b : nclaim) : bool =
  if a.nc_total || b.nc_total then false
  else
    (not (ivs_intersect a.nc_w b.nc_all))
    && not (ivs_intersect b.nc_w a.nc_all)

type holder = { h_tid : tid; h_claim : claim; h_norm : nclaim }

type waiter = { w_tid : tid; w_claim : claim; w_norm : nclaim }

type lock_state = {
  mutable holders : holder list;
  mutable waiters : waiter list;         (* FIFO *)
  waiter_ids : (tid, unit) Hashtbl.t;
      (* O(1) membership beside the FIFO queue: [acquire] re-enqueue
         checks and [cancel_wait] stop scanning the list *)
  mutable acq_count : int;               (* total acquisitions, for stats *)
  mutable pending : tid list;
      (* handoff after a timeout-preemption: while non-empty, only these
         threads may acquire — the paper's "allows the stalled thread to
         acquire the weak-lock and proceed" (Section 2.3) *)
}

module Wl_tbl = Hashtbl.Make (struct
  type t = weak_lock
  let equal = ( = )
  let hash = Hashtbl.hash
end)

type t = {
  locks : lock_state Wl_tbl.t;
  mutable total_acquires : int;
  mutable total_releases : int;
  mutable total_timeouts : int;
  mutable total_handoff_served : int;
      (* a preemption-time waiter consumed its reservation *)
  mutable total_handoff_expired : int;
      (* a reservation was cleared before the reserved thread came back *)
}

let create () =
  {
    locks = Wl_tbl.create 64;
    total_acquires = 0;
    total_releases = 0;
    total_timeouts = 0;
    total_handoff_served = 0;
    total_handoff_expired = 0;
  }

let get t (l : weak_lock) =
  match Wl_tbl.find_opt t.locks l with
  | Some s -> s
  | None ->
      let s =
        {
          holders = [];
          waiters = [];
          waiter_ids = Hashtbl.create 8;
          acq_count = 0;
          pending = [];
        }
      in
      Wl_tbl.add t.locks l s;
      s

let compatible (s : lock_state) (tid : tid) (c : nclaim) : bool =
  List.for_all
    (fun h -> h.h_tid = tid || nclaim_disjoint h.h_norm c)
    s.holders

(** Try to acquire [l] with [claim]. [`Blocked owners] reports the
    currently-conflicting owners (for timeout-preemption targeting). *)
let acquire t (l : weak_lock) ~tid ~(claim : claim) :
    [ `Acquired | `Blocked of tid list ] =
  let s = get t l in
  let norm = normalize claim in
  if
    compatible s tid norm
    && (match s.pending with [] -> true | h :: _ -> h = tid)
  then begin
    (match s.pending with
    | h :: rest when h = tid ->
        s.pending <- rest;
        t.total_handoff_served <- t.total_handoff_served + 1
    | _ -> ());
    s.holders <- { h_tid = tid; h_claim = claim; h_norm = norm } :: s.holders;
    s.acq_count <- s.acq_count + 1;
    t.total_acquires <- t.total_acquires + 1;
    `Acquired
  end
  else begin
    if not (Hashtbl.mem s.waiter_ids tid) then begin
      s.waiters <-
        s.waiters @ [ { w_tid = tid; w_claim = claim; w_norm = norm } ];
      Hashtbl.replace s.waiter_ids tid ()
    end;
    let conflicting =
      List.filter_map
        (fun h ->
          if h.h_tid <> tid && not (nclaim_disjoint h.h_norm norm) then
            Some h.h_tid
          else None)
        s.holders
    in
    `Blocked conflicting
  end

(** Release [tid]'s hold on [l]; returns waiting threads that may now be
    able to acquire (the engine wakes them; they retry).

    Only waiters whose claims are compatible with the remaining holders
    (and not locked out by a handoff reservation) are woken; the rest
    keep their FIFO queue position. Waking everybody — the old behavior
    — both stampeded threads that could not possibly acquire and, worse,
    discarded their arrival order: a retrying loser re-enqueued at the
    tail behind later arrivals, starving under contention. *)
let release t (l : weak_lock) ~tid : tid list =
  let s = get t l in
  let before = List.length s.holders in
  s.holders <- List.filter (fun h -> h.h_tid <> tid) s.holders;
  if List.length s.holders < before then
    t.total_releases <- t.total_releases + 1;
  let may_acquire w =
    compatible s w.w_tid w.w_norm
    && (match s.pending with [] -> true | h :: _ -> h = w.w_tid)
  in
  let woken, kept = List.partition may_acquire s.waiters in
  s.waiters <- kept;
  List.iter (fun w -> Hashtbl.remove s.waiter_ids w.w_tid) woken;
  List.map (fun w -> w.w_tid) woken

(** Forcibly strip [owner]'s hold on [l] (timeout-preemption). Returns the
    waiters to wake. The caller must arrange for [owner] to reacquire
    before it continues its region. With [handoff] (the default during
    recording), the threads waiting at preemption time get priority over
    the owner's reacquisition — otherwise the owner can immediately
    re-win the lock and the preemption resolves nothing. *)
let force_release ?(handoff = true) t (l : weak_lock) ~owner : tid list =
  t.total_timeouts <- t.total_timeouts + 1;
  let s = get t l in
  if handoff then
    s.pending <-
      List.filter_map
        (fun w -> if w.w_tid <> owner then Some w.w_tid else None)
        s.waiters;
  release t l ~tid:owner

(** Expire a stale handoff reservation (the reserved thread cannot come
    back for the lock soon — e.g. it is parked at a barrier the
    reservation itself prevents from tripping). *)
let clear_pending t (l : weak_lock) =
  let s = get t l in
  if s.pending <> [] then begin
    t.total_handoff_expired <- t.total_handoff_expired + 1;
    s.pending <- []
  end

let holds t (l : weak_lock) ~tid =
  List.exists (fun h -> h.h_tid = tid) (get t l).holders

let holders t (l : weak_lock) = List.map (fun h -> h.h_tid) (get t l).holders

(** Current holders with their claims (inspection / invariant checks). *)
let holder_claims t (l : weak_lock) : (tid * claim) list =
  List.map (fun h -> (h.h_tid, h.h_claim)) (get t l).holders

(** Number of threads queued on [l]. *)
let waiter_count t (l : weak_lock) = List.length (get t l).waiters

(** Drop [tid] from the waiter queue of [l] (used when a waiter is
    re-routed by the replayer or dies). Any handoff reservation [tid]
    held must go with it: a cancelled waiter never comes back for the
    lock, and a reservation for a thread that will never claim it blocks
    every other acquirer forever. *)
let cancel_wait t (l : weak_lock) ~tid =
  let s = get t l in
  if Hashtbl.mem s.waiter_ids tid then begin
    Hashtbl.remove s.waiter_ids tid;
    s.waiters <- List.filter (fun w -> w.w_tid <> tid) s.waiters
  end;
  if List.mem tid s.pending then
    s.pending <- List.filter (fun w -> w <> tid) s.pending
