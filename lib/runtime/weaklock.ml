(** The weak-lock manager (Section 2.3 of the paper).

    Weak locks are the synchronization Chimera adds around potential
    data-races. Differences from ordinary mutexes:

    - {e Ranges}: a loop-lock acquisition carries the address ranges the
      loop will touch (from the symbolic bounds analysis). Two holders of
      the {e same} weak lock coexist iff both carry ranges and every pair
      of ranges is disjoint — this is what lets radix's workers process
      disjoint array slices in parallel (Figure 4).
    - {e Region stacking}: when a thread enters an inner instrumented
      region, the runtime releases the outer region's weak locks first
      and reacquires them when the inner region exits (deadlock-freedom
      rule of Section 2.3). That logic lives in the engine's region
      stack; this module only tracks per-lock ownership.
    - {e Timeouts}: a thread stalled longer than a threshold triggers
      {!force_release} of the conflicting owner, which must reacquire
      before continuing. The single-owner-per-lock invariant (at most one
      holder per conflicting range) is never violated, so recording the
      per-lock acquisition order suffices for deterministic replay.

    The manager is a pure state machine: the engine owns thread states,
    wake-ups, timeout detection, and logging. *)

open Minic.Ast

type tid = int

(** An address range in run-local block coordinates, with an access mode:
    two overlapping ranges conflict only when at least one writes. A
    total claim (the empty range list) means "-INF to +INF" (Figure 4)
    and conflicts with everything. *)
type range = { rg_block : int; rg_lo : int; rg_hi : int; rg_write : bool }

let pp_range ppf r =
  Fmt.pf ppf "b%d[%d..%d]%s" r.rg_block r.rg_lo r.rg_hi
    (if r.rg_write then "w" else "r")

(** Ranges of one acquisition: empty list = total. *)
type claim = range list

let ranges_disjoint (a : claim) (b : claim) : bool =
  match (a, b) with
  | [], _ | _, [] -> false (* a total claim conflicts with everything *)
  | _ ->
      List.for_all
        (fun ra ->
          List.for_all
            (fun rb ->
              (not (ra.rg_write || rb.rg_write))
              || ra.rg_block <> rb.rg_block
              || ra.rg_hi < rb.rg_lo || rb.rg_hi < ra.rg_lo)
            b)
        a

type holder = { h_tid : tid; h_claim : claim }

type lock_state = {
  mutable holders : holder list;
  mutable waiters : (tid * claim) list;  (* FIFO *)
  mutable acq_count : int;               (* total acquisitions, for stats *)
  mutable pending : tid list;
      (* handoff after a timeout-preemption: while non-empty, only these
         threads may acquire — the paper's "allows the stalled thread to
         acquire the weak-lock and proceed" (Section 2.3) *)
}

module Wl_tbl = Hashtbl.Make (struct
  type t = weak_lock
  let equal = ( = )
  let hash = Hashtbl.hash
end)

type t = {
  locks : lock_state Wl_tbl.t;
  mutable total_acquires : int;
  mutable total_releases : int;
  mutable total_timeouts : int;
  mutable total_handoff_served : int;
      (* a preemption-time waiter consumed its reservation *)
  mutable total_handoff_expired : int;
      (* a reservation was cleared before the reserved thread came back *)
}

let create () =
  {
    locks = Wl_tbl.create 64;
    total_acquires = 0;
    total_releases = 0;
    total_timeouts = 0;
    total_handoff_served = 0;
    total_handoff_expired = 0;
  }

let get t (l : weak_lock) =
  match Wl_tbl.find_opt t.locks l with
  | Some s -> s
  | None ->
      let s = { holders = []; waiters = []; acq_count = 0; pending = [] } in
      Wl_tbl.add t.locks l s;
      s

let compatible (s : lock_state) (tid : tid) (c : claim) : bool =
  List.for_all
    (fun h -> h.h_tid = tid || ranges_disjoint h.h_claim c)
    s.holders

(** Try to acquire [l] with [claim]. [`Blocked owners] reports the
    currently-conflicting owners (for timeout-preemption targeting). *)
let acquire t (l : weak_lock) ~tid ~(claim : claim) :
    [ `Acquired | `Blocked of tid list ] =
  let s = get t l in
  if
    compatible s tid claim
    && (match s.pending with [] -> true | h :: _ -> h = tid)
  then begin
    (match s.pending with
    | h :: rest when h = tid ->
        s.pending <- rest;
        t.total_handoff_served <- t.total_handoff_served + 1
    | _ -> ());
    s.holders <- { h_tid = tid; h_claim = claim } :: s.holders;
    s.acq_count <- s.acq_count + 1;
    t.total_acquires <- t.total_acquires + 1;
    `Acquired
  end
  else begin
    if not (List.exists (fun (w, _) -> w = tid) s.waiters) then
      s.waiters <- s.waiters @ [ (tid, claim) ];
    let conflicting =
      List.filter_map
        (fun h ->
          if h.h_tid <> tid && not (ranges_disjoint h.h_claim claim) then
            Some h.h_tid
          else None)
        s.holders
    in
    `Blocked conflicting
  end

(** Release [tid]'s hold on [l]; returns waiting threads that may now be
    able to acquire (the engine wakes them; they retry).

    Only waiters whose claims are compatible with the remaining holders
    (and not locked out by a handoff reservation) are woken; the rest
    keep their FIFO queue position. Waking everybody — the old behavior
    — both stampeded threads that could not possibly acquire and, worse,
    discarded their arrival order: a retrying loser re-enqueued at the
    tail behind later arrivals, starving under contention. *)
let release t (l : weak_lock) ~tid : tid list =
  let s = get t l in
  let before = List.length s.holders in
  s.holders <- List.filter (fun h -> h.h_tid <> tid) s.holders;
  if List.length s.holders < before then
    t.total_releases <- t.total_releases + 1;
  let may_acquire (w, c) =
    compatible s w c
    && (match s.pending with [] -> true | h :: _ -> h = w)
  in
  let woken, kept = List.partition may_acquire s.waiters in
  s.waiters <- kept;
  List.map fst woken

(** Forcibly strip [owner]'s hold on [l] (timeout-preemption). Returns the
    waiters to wake. The caller must arrange for [owner] to reacquire
    before it continues its region. With [handoff] (the default during
    recording), the threads waiting at preemption time get priority over
    the owner's reacquisition — otherwise the owner can immediately
    re-win the lock and the preemption resolves nothing. *)
let force_release ?(handoff = true) t (l : weak_lock) ~owner : tid list =
  t.total_timeouts <- t.total_timeouts + 1;
  let s = get t l in
  if handoff then
    s.pending <-
      List.filter (fun w -> w <> owner) (List.map fst s.waiters);
  release t l ~tid:owner

(** Expire a stale handoff reservation (the reserved thread cannot come
    back for the lock soon — e.g. it is parked at a barrier the
    reservation itself prevents from tripping). *)
let clear_pending t (l : weak_lock) =
  let s = get t l in
  if s.pending <> [] then begin
    t.total_handoff_expired <- t.total_handoff_expired + 1;
    s.pending <- []
  end

let holds t (l : weak_lock) ~tid =
  List.exists (fun h -> h.h_tid = tid) (get t l).holders

let holders t (l : weak_lock) = List.map (fun h -> h.h_tid) (get t l).holders

(** Current holders with their claims (inspection / invariant checks). *)
let holder_claims t (l : weak_lock) : (tid * claim) list =
  List.map (fun h -> (h.h_tid, h.h_claim)) (get t l).holders

(** Number of threads queued on [l]. *)
let waiter_count t (l : weak_lock) = List.length (get t l).waiters

(** Drop [tid] from the waiter queue of [l] (used when a waiter is
    re-routed by the replayer or dies). Any handoff reservation [tid]
    held must go with it: a cancelled waiter never comes back for the
    lock, and a reservation for a thread that will never claim it blocks
    every other acquirer forever. *)
let cancel_wait t (l : weak_lock) ~tid =
  let s = get t l in
  s.waiters <- List.filter (fun (w, _) -> w <> tid) s.waiters;
  if List.mem tid s.pending then
    s.pending <- List.filter (fun w -> w <> tid) s.pending
