(** Schedule-independent identities for threads and memory objects.

    Logs must name threads and synchronization objects stably across
    executions with different schedules: threads by spawn-tree paths,
    objects by origins (global name, or (thread path, per-thread
    sequence) for frames and heap blocks). *)

type tid_path = int list
(** [[]] is the root thread; the k-th thread spawned by a thread with
    path [p] is [p @ [k]]. *)

val pp_tid_path : tid_path Fmt.t

type origin =
  | OGlobal of string
  | OFrame of tid_path * int  (** thread, per-thread frame sequence *)
  | OHeap of tid_path * int   (** thread, per-thread allocation sequence *)

val pp_origin : origin Fmt.t

type addr = { a_origin : origin; a_off : int }
(** A stable memory address: origin + cell offset. *)

val pp_addr : addr Fmt.t
val compare_tid_path : tid_path -> tid_path -> int
val compare_origin : origin -> origin -> int
val compare_addr : addr -> addr -> int

module Addr_map : Map.S with type key = addr
module Addr_tbl : Hashtbl.S with type key = addr
