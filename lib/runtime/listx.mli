(** Small list helpers shared across the runtime, interpreter, and
    replayer. *)

val take : int -> 'a list -> 'a list
(** [take n xs] is the first [n] elements of [xs], or [xs] itself when it
    is no longer than [n]. *)
