(** Corpus-driven plan refinement (the ROADMAP's replay-fed loop; the
    replay-based detection of Ronsse & De Bosschere turned into an
    optimizer). The paper's §4 profiling decides lock {e granularity}
    from a handful of profiling runs; this pass decides lock
    {e existence} from fleet evidence — every distinct recording of a
    stress corpus is replayed with the vector-clock detector attached
    and weak locks invisible to it, so a race report names exactly the
    pairs whose weak locks are load-bearing, and silence over enough
    distinct schedules licenses dropping the lock.

    Soundness is layered, never traded: dropped pairs stay in the RELAY
    report (refinement narrows instrumentation, not detection), and
    {!validate} re-records the corpus under the refined plan with weak
    locks {e counted} as synchronization — any dynamic race is a typed
    violation that rejects the plan. *)

open Interp
module Plan = Instrument.Plan

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let gran_name g = Fmt.str "%a" Minic.Ast.pp_granularity g

let gran_of_name = function
  | "func" -> Some Minic.Ast.Gfunc
  | "loop" -> Some Minic.Ast.Gloop
  | "bb" -> Some Minic.Ast.Gbb
  | "instr" -> Some Minic.Ast.Ginstr
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Corpus manifest *)

module Corpus = struct
  exception Bad of string

  type recording = {
    cr_seed : int;
    cr_strategy : Engine.strategy;
    cr_digest : string;
    cr_ticks : int;
    cr_input : string;
    cr_order : string;
  }

  type kind = Kbench | Ksrc

  type entry = {
    ce_name : string;
    ce_kind : kind;
    ce_source : string option;
    ce_io_seed : int;
    ce_cores : int;
    ce_plan_digest : string;
    ce_recordings : recording list;
  }

  type t = { co_dir : string; co_entries : entry list }

  let manifest = "corpus.json"
  let schema = "chimera-corpus/1"

  let to_json (t : t) : string =
    let b = Buffer.create 1024 in
    Buffer.add_string b (Fmt.str "{\n  \"schema\": \"%s\",\n  \"programs\": [" schema);
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Fmt.str
             "\n    {\n      \"name\": \"%s\",\n      \"kind\": \"%s\",\n      \
              \"source\": %s,\n      \"io_seed\": %d,\n      \"cores\": %d,\n      \
              \"plan_digest\": \"%s\",\n      \"recordings\": ["
             (json_escape e.ce_name)
             (match e.ce_kind with Kbench -> "bench" | Ksrc -> "src")
             (match e.ce_source with
             | None -> "null"
             | Some s -> Fmt.str "\"%s\"" (json_escape s))
             e.ce_io_seed e.ce_cores e.ce_plan_digest);
        List.iteri
          (fun j r ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Fmt.str
                 "\n        {\"seed\": %d, \"strategy\": \"%s\", \"digest\": \
                  \"%s\", \"ticks\": %d, \"input\": \"%s\", \"order\": \"%s\"}"
                 r.cr_seed
                 (Engine.strategy_name r.cr_strategy)
                 r.cr_digest r.cr_ticks (json_escape r.cr_input)
                 (json_escape r.cr_order)))
          e.ce_recordings;
        Buffer.add_string b "\n      ]\n    }")
      t.co_entries;
    Buffer.add_string b "\n  ]\n}\n";
    Buffer.contents b

  let save (t : t) =
    let doc = to_json t in
    (match Bjson.parse doc with
    | exception Bjson.Bad m ->
        Fmt.failwith "corpus manifest emitted invalid JSON: %s" m
    | _ -> ());
    write_file (Filename.concat t.co_dir manifest) doc

  let load ~dir : t =
    let path = Filename.concat dir manifest in
    let doc =
      match Bjson.load_file path with
      | j -> j
      | exception Sys_error m -> raise (Bad ("cannot read manifest: " ^ m))
      | exception Bjson.Bad m ->
          raise (Bad (Fmt.str "malformed manifest %s: %s" path m))
    in
    let field what get j =
      match get j with
      | v -> v
      | exception Bjson.Bad m ->
          raise (Bad (Fmt.str "malformed manifest %s: %s (%s)" path m what))
    in
    let s = field "schema" (fun j -> Bjson.str_exn "schema" (Bjson.mem "schema" j)) doc in
    if s <> schema then
      raise (Bad (Fmt.str "unsupported corpus schema %S (want %S)" s schema));
    let entry j =
      let str k = field k (fun j -> Bjson.str_exn k (Bjson.mem k j)) j in
      let num k = int_of_float (field k (fun j -> Bjson.num_exn k (Bjson.mem k j)) j) in
      let recording rj =
        let rstr k = field k (fun j -> Bjson.str_exn k (Bjson.mem k j)) rj in
        let rnum k =
          int_of_float (field k (fun j -> Bjson.num_exn k (Bjson.mem k j)) rj)
        in
        let sname = rstr "strategy" in
        let strategy =
          match Engine.strategy_of_string sname with
          | Some st -> st
          | None -> raise (Bad (Fmt.str "unknown strategy %S in manifest" sname))
        in
        {
          cr_seed = rnum "seed";
          cr_strategy = strategy;
          cr_digest = rstr "digest";
          cr_ticks = rnum "ticks";
          cr_input = rstr "input";
          cr_order = rstr "order";
        }
      in
      {
        ce_name = str "name";
        ce_kind =
          (match str "kind" with
          | "bench" -> Kbench
          | "src" -> Ksrc
          | k -> raise (Bad (Fmt.str "unknown program kind %S" k)));
        ce_source =
          (match Bjson.mem "source" j with
          | Some (Bjson.Str s) -> Some s
          | _ -> None);
        ce_io_seed = num "io_seed";
        ce_cores = num "cores";
        ce_plan_digest = str "plan_digest";
        ce_recordings =
          List.map recording
            (field "recordings" (fun j -> Bjson.list_exn "recordings" (Bjson.mem "recordings" j)) j);
      }
    in
    {
      co_dir = dir;
      co_entries =
        List.map entry
          (field "programs" (fun j -> Bjson.list_exn "programs" (Bjson.mem "programs" j)) doc);
    }

  let load_log (t : t) (e : entry) (r : recording) : Replay.Log.t =
    let read rel =
      let path = Filename.concat t.co_dir rel in
      match read_file path with
      | s -> s
      | exception Sys_error m ->
          raise (Bad (Fmt.str "cannot read corpus log %s: %s" path m))
    in
    let input = read r.cr_input and order = read r.cr_order in
    let log =
      match Replay.Log.decode input order with
      | l -> l
      | exception Replay.Log.Corrupt m ->
          raise (Bad (Fmt.str "corrupt corpus log %s/%s: %s" e.ce_name r.cr_input m))
    in
    let d = Chimera.Stress.log_digest log in
    if d <> r.cr_digest then
      raise
        (Bad
           (Fmt.str "corpus log %s/%s drifted from its content address" e.ce_name
              r.cr_input));
    log

  let rec mkdir_p d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end

  let of_stress ~dir ~cores ~meta (rp : Chimera.Stress.report) : t =
    mkdir_p dir;
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let live =
      List.filter
        (fun (jr : Chimera.Stress.job_result) ->
          (not jr.jr_recorded.Chimera.Runner.rc_outcome.Engine.o_timed_out)
          &&
          let key = jr.jr_job.jb_prog.sp_name ^ "/" ^ jr.jr_digest in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        rp.rp_results
    in
    let entries =
      List.filter_map
        (fun (name, (kind, source, io_seed, plan_digest)) ->
          let recs =
            List.filter_map
              (fun (jr : Chimera.Stress.job_result) ->
                let j = jr.jr_job in
                if j.jb_prog.sp_name <> name then None
                else begin
                  let base =
                    Fmt.str "%s.%s.%d" name
                      (Engine.strategy_name j.jb_strategy)
                      j.jb_seed
                  in
                  let input = base ^ ".input.log"
                  and order = base ^ ".order.log" in
                  let log = jr.jr_recorded.Chimera.Runner.rc_log in
                  write_file (Filename.concat dir input)
                    (Replay.Log.encode_input_log log);
                  write_file (Filename.concat dir order)
                    (Replay.Log.encode_order_log log);
                  Some
                    {
                      cr_seed = j.jb_seed;
                      cr_strategy = j.jb_strategy;
                      cr_digest = jr.jr_digest;
                      cr_ticks = jr.jr_ticks;
                      cr_input = input;
                      cr_order = order;
                    }
                end)
              live
          in
          if recs = [] then None
          else
            Some
              {
                ce_name = name;
                ce_kind = kind;
                ce_source = source;
                ce_io_seed = io_seed;
                ce_cores = cores;
                ce_plan_digest = plan_digest;
                ce_recordings = recs;
              })
        meta
    in
    { co_dir = dir; co_entries = entries }
end

(* ------------------------------------------------------------------ *)
(* Evidence *)

type witness = {
  wt_sid1 : int;
  wt_sid2 : int;
  wt_addr : string;
  wt_seed : int;
  wt_strategy : string;
  wt_exact : bool;
}

type pair_evidence = {
  pe_runs : int;
  pe_both : int;
  pe_overlap : int;
  pe_witness : witness option;
}

type observation = {
  ob_seed : int;
  ob_strategy : Engine.strategy;
  ob_races : Dynrace.race list;
  ob_reached : (int, unit) Hashtbl.t;
  ob_addrs : (int, (Runtime.Key.addr, unit) Hashtbl.t) Hashtbl.t;
  ob_checks : int;
}

(** Replay one recording with the detector attached and weak locks
    invisible to it ([track_weak:false]): the execution order is the
    recorded one, so a race in the report means the recorded order ran
    the pair concurrently with nothing but a weak lock between them —
    and silence means real synchronization ordered the pair in this
    schedule. The on_mem probe additionally tracks, per statically racy
    sid, whether it executed and which addresses it touched (the
    coverage half of the evidence lattice). *)
let observe ~(config : Engine.config) ~(io : Iomodel.t)
    ~(instrumented : Minic.Ast.program) ~(racy_sids : (int, unit) Hashtbl.t)
    ~seed ~strategy (log : Replay.Log.t) : observation =
  let det = Dynrace.create ~track_weak:false () in
  let hooks = Dynrace.attach det (Engine.no_hooks ()) in
  let reached : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let addrs : (int, (Runtime.Key.addr, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let det_mem =
    match hooks.Engine.on_mem with Some f -> f | None -> assert false
  in
  hooks.Engine.on_mem <-
    Some
      (fun tid addr ~write ~sid ->
        det_mem tid addr ~write ~sid;
        if Hashtbl.mem racy_sids sid then begin
          Hashtbl.replace reached sid ();
          let tbl =
            match Hashtbl.find_opt addrs sid with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 16 in
                Hashtbl.add addrs sid t;
                t
          in
          Hashtbl.replace tbl addr ()
        end);
  ignore (Chimera.Runner.replay ~config ~hooks ~io instrumented log);
  {
    ob_seed = seed;
    ob_strategy = strategy;
    ob_races = Dynrace.races det;
    ob_reached = reached;
    ob_addrs = addrs;
    ob_checks = Dynrace.n_checks det;
  }

let observe_recordings ?pool ?(replay_seed_delta = 7919) ~cores ~io
    ~instrumented ~racy_sids recs : observation list =
  Par.Pool.map_opt pool
    (fun ((seed, strategy), log) ->
      let config =
        {
          Engine.default_config with
          seed = seed + replay_seed_delta;
          cores;
          strategy;
        }
      in
      observe ~config ~io ~instrumented ~racy_sids ~seed ~strategy log)
    recs

let corpus_observations ?pool ?replay_seed_delta ~cores ~io ~instrumented
    ~racy_sids ~jobs () : observation list =
  let recorded =
    Par.Pool.map_opt pool
      (fun (seed, strategy) ->
        let config =
          { Engine.default_config with seed; cores; strategy }
        in
        let r = Chimera.Runner.record ~config ~io instrumented in
        ((seed, strategy), r.Chimera.Runner.rc_log))
      jobs
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun (_, log) ->
        let d = Chimera.Stress.log_digest log in
        if Hashtbl.mem seen d then false
        else begin
          Hashtbl.replace seen d ();
          true
        end)
      recorded
  in
  observe_recordings ?pool ?replay_seed_delta ~cores ~io ~instrumented
    ~racy_sids distinct

let observe_corpus ?pool ?replay_seed_delta ~io ~instrumented ~racy_sids
    (t : Corpus.t) (e : Corpus.entry) : observation list =
  let recs =
    List.map
      (fun (r : Corpus.recording) ->
        ((r.cr_seed, r.cr_strategy), Corpus.load_log t e r))
      e.ce_recordings
  in
  observe_recordings ?pool ?replay_seed_delta ~cores:e.ce_cores ~io
    ~instrumented ~racy_sids recs

(* ------------------------------------------------------------------ *)
(* Refinement *)

type prov = Dropped_never_racy | Kept_witnessed | Kept_unexercised | Kept_shared

let prov_name = function
  | Dropped_never_racy -> "dropped:never-racy"
  | Kept_witnessed -> "kept:witnessed"
  | Kept_unexercised -> "kept:unexercised"
  | Kept_shared -> "kept"

type pair_result = {
  pr_decision : Plan.pair_decision;
  pr_evidence : pair_evidence;
  pr_prov : prov;
}

let pp_pair_result ppf (pr : pair_result) =
  let pd = pr.pr_decision in
  let ev = pr.pr_evidence in
  Fmt.pf ppf "%a@.  lock %a  %s (both %d/%d, overlap %d%a)"
    Relay.Detect.pp_race_pair pd.pd_pair Minic.Ast.pp_weak_lock pd.pd_lock
    (prov_name pr.pr_prov) ev.pe_both ev.pe_runs ev.pe_overlap
    (fun ppf -> function
      | None -> ()
      | Some w ->
          Fmt.pf ppf ", witness %d/%d @@ %s seed=%d strategy=%s%s" w.wt_sid1
            w.wt_sid2 w.wt_addr w.wt_seed w.wt_strategy
            (if w.wt_exact then "" else " (one-sided)"))
    ev.pe_witness

type t = {
  rf_pairs : pair_result list;
  rf_dropped : Minic.Ast.weak_lock list;
  rf_plan : Plan.t;
  rf_min_coverage : int;
  rf_base_acqs : int;
  rf_refined_acqs : int;
}

let pair_sids (pd : Plan.pair_decision) =
  (pd.pd_pair.rp_s1.st_sid, pd.pd_pair.rp_s2.st_sid)

(** Aggregate observations into per-pair evidence, in [pl_decisions]
    order. A witness is the first race (in observation order, then race
    order) touching the pair; exact two-sided matches are preferred over
    one-sided ones. One race can witness several pairs — a race touching
    a sid disqualifies every pair that sid belongs to, conservatively. *)
let evidence ~(plan : Plan.t) (obs : observation list) :
    (Plan.pair_decision * pair_evidence) list =
  let runs = List.length obs in
  List.map
    (fun (pd : Plan.pair_decision) ->
      let s1, s2 = pair_sids pd in
      let both =
        List.length
          (List.filter
             (fun ob -> Hashtbl.mem ob.ob_reached s1 && Hashtbl.mem ob.ob_reached s2)
             obs)
      in
      let overlap =
        List.length
          (List.filter
             (fun ob ->
               match (Hashtbl.find_opt ob.ob_addrs s1, Hashtbl.find_opt ob.ob_addrs s2) with
               | Some a1, Some a2 ->
                   let small, big =
                     if Hashtbl.length a1 <= Hashtbl.length a2 then (a1, a2)
                     else (a2, a1)
                   in
                   Hashtbl.fold
                     (fun addr () acc -> acc || Hashtbl.mem big addr)
                     small false
               | _ -> false)
             obs)
      in
      let witness_in ~exact =
        List.find_map
          (fun ob ->
            List.find_map
              (fun (r : Dynrace.race) ->
                let hit =
                  if exact then
                    (r.dr_sid1 = s1 && r.dr_sid2 = s2)
                    || (r.dr_sid1 = s2 && r.dr_sid2 = s1)
                  else r.dr_sid1 = s1 || r.dr_sid1 = s2 || r.dr_sid2 = s1 || r.dr_sid2 = s2
                in
                if hit then
                  Some
                    {
                      wt_sid1 = r.dr_sid1;
                      wt_sid2 = r.dr_sid2;
                      wt_addr = Fmt.str "%a" Runtime.Key.pp_addr r.dr_addr;
                      wt_seed = ob.ob_seed;
                      wt_strategy = Engine.strategy_name ob.ob_strategy;
                      wt_exact = exact;
                    }
                else None)
              ob.ob_races)
          obs
      in
      let witness =
        match witness_in ~exact:true with
        | Some w -> Some w
        | None -> witness_in ~exact:false
      in
      (pd, { pe_runs = runs; pe_both = both; pe_overlap = overlap; pe_witness = witness }))
    plan.pl_decisions

(* lock identity: granularities allocate ids independently *)
let lock_key (l : Minic.Ast.weak_lock) =
  (Minic.Ast.granularity_rank l.wl_gran, l.wl_id)

let drop_locks (plan : Plan.t) (dropped : (int * int, unit) Hashtbl.t) : Plan.t =
  let filter_tbl :
      'k.
      ('k, Minic.Ast.weak_acq list) Hashtbl.t ->
      ('k, Minic.Ast.weak_acq list) Hashtbl.t =
   fun tbl ->
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter
      (fun k acqs ->
        match
          List.filter
            (fun (a : Minic.Ast.weak_acq) ->
              not (Hashtbl.mem dropped (lock_key a.wa_lock)))
            acqs
        with
        | [] -> ()
        | acqs -> Hashtbl.replace out k acqs)
      tbl;
    out
  in
  {
    plan with
    Plan.pl_func = filter_tbl plan.pl_func;
    pl_loop = filter_tbl plan.pl_loop;
    pl_run = filter_tbl plan.pl_run;
    pl_stmt = filter_tbl plan.pl_stmt;
  }

let refine ?(min_coverage = 2) ~(plan : Plan.t) (obs : observation list) : t =
  let ev = evidence ~plan obs in
  (* a pair qualifies for dropping on its own evidence; its lock drops
     only if every pair the lock guards qualifies (cliques and shared
     region-pair locks make one lock guard many pairs) *)
  let qualifies (_, e) = e.pe_witness = None && e.pe_both >= min_coverage in
  let lock_blocked : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((pd : Plan.pair_decision), _ as pe) ->
      if not (qualifies pe) then
        Hashtbl.replace lock_blocked (lock_key pd.pd_lock) ())
    ev;
  let dropped : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((pd : Plan.pair_decision), _ as pe) ->
      if qualifies pe && not (Hashtbl.mem lock_blocked (lock_key pd.pd_lock))
      then Hashtbl.replace dropped (lock_key pd.pd_lock) ())
    ev;
  let pairs =
    List.map
      (fun ((pd : Plan.pair_decision), e) ->
        let prov =
          match e.pe_witness with
          | Some _ -> Kept_witnessed
          | None ->
              if e.pe_both < min_coverage then Kept_unexercised
              else if Hashtbl.mem dropped (lock_key pd.pd_lock) then
                Dropped_never_racy
              else Kept_shared
        in
        { pr_decision = pd; pr_evidence = e; pr_prov = prov })
      ev
  in
  let dropped_locks =
    List.sort_uniq Minic.Ast.compare_weak_lock
      (List.filter_map
         (fun pr ->
           if pr.pr_prov = Dropped_never_racy then Some pr.pr_decision.pd_lock
           else None)
         pairs)
  in
  let refined = drop_locks plan dropped in
  {
    rf_pairs = pairs;
    rf_dropped = dropped_locks;
    rf_plan = refined;
    rf_min_coverage = min_coverage;
    rf_base_acqs = Plan.n_acquisitions plan;
    rf_refined_acqs = Plan.n_acquisitions refined;
  }

let pp_summary ppf (t : t) =
  let count p = List.length (List.filter (fun pr -> pr.pr_prov = p) t.rf_pairs) in
  Fmt.pf ppf
    "%d pairs: %d dropped (never-racy @@ coverage>=%d), %d witnessed, %d \
     unexercised, %d kept (shared lock); locks dropped %d; static \
     acquisitions %d -> %d"
    (List.length t.rf_pairs)
    (count Dropped_never_racy)
    t.rf_min_coverage (count Kept_witnessed) (count Kept_unexercised)
    (count Kept_shared)
    (List.length t.rf_dropped)
    t.rf_base_acqs t.rf_refined_acqs

(* ------------------------------------------------------------------ *)
(* Deployment plans *)

(** Order-independent content address of a plan's region tables: the
    four tables are folded to sorted association lists (hashtable
    iteration order must not leak into the digest) and hashed together
    with the lock count. *)
let plan_digest (p : Plan.t) : string =
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( sorted p.Plan.pl_func,
            sorted p.pl_loop,
            sorted p.pl_run,
            sorted p.pl_stmt,
            p.pl_n_locks )
          []))

exception Bad_plan of string

type deployment = {
  dp_program : string;
  dp_plan_digest : string;
  dp_min_coverage : int;
  dp_dropped : Minic.Ast.weak_lock list;
  dp_pairs : (int * int * string) list;
}

let deployment_schema = "chimera-refined-plan/1"

let deployment_of ~program ~(base : Plan.t) (t : t) : deployment =
  {
    dp_program = program;
    dp_plan_digest = plan_digest base;
    dp_min_coverage = t.rf_min_coverage;
    dp_dropped = t.rf_dropped;
    dp_pairs =
      List.map
        (fun pr ->
          let s1, s2 = pair_sids pr.pr_decision in
          (s1, s2, prov_name pr.pr_prov))
        t.rf_pairs;
  }

let deployment_json (d : deployment) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str
       "{\n  \"schema\": \"%s\",\n  \"program\": \"%s\",\n  \"plan_digest\": \
        \"%s\",\n  \"min_coverage\": %d,\n  \"dropped\": ["
       deployment_schema (json_escape d.dp_program) d.dp_plan_digest
       d.dp_min_coverage);
  List.iteri
    (fun i (l : Minic.Ast.weak_lock) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Fmt.str "{\"gran\": \"%s\", \"id\": %d}" (gran_name l.wl_gran) l.wl_id))
    d.dp_dropped;
  Buffer.add_string b "],\n  \"pairs\": [";
  List.iteri
    (fun i (s1, s2, prov) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str "\n    {\"sid1\": %d, \"sid2\": %d, \"prov\": \"%s\"}" s1 s2 prov))
    d.dp_pairs;
  Buffer.add_string b "\n  ]\n}\n";
  let doc = Buffer.contents b in
  (match Bjson.parse doc with
  | exception Bjson.Bad m ->
      Fmt.failwith "deployment emitted invalid JSON: %s" m
  | _ -> ());
  doc

let deployment_of_json (s : string) : deployment =
  let doc =
    match Bjson.parse s with
    | j -> j
    | exception Bjson.Bad m -> raise (Bad_plan ("malformed plan JSON: " ^ m))
  in
  let str k =
    match Bjson.str_exn k (Bjson.mem k doc) with
    | v -> v
    | exception Bjson.Bad m -> raise (Bad_plan m)
  in
  let sc = str "schema" in
  if sc <> deployment_schema then
    raise
      (Bad_plan (Fmt.str "unsupported plan schema %S (want %S)" sc deployment_schema));
  let lock j =
    match (Bjson.mem "gran" j, Bjson.mem "id" j) with
    | Some (Bjson.Str g), Some (Bjson.Num id) -> (
        match gran_of_name g with
        | Some gran -> { Minic.Ast.wl_id = int_of_float id; wl_gran = gran }
        | None -> raise (Bad_plan (Fmt.str "unknown granularity %S" g)))
    | _ -> raise (Bad_plan "malformed dropped-lock entry")
  in
  let pair j =
    match (Bjson.mem "sid1" j, Bjson.mem "sid2" j, Bjson.mem "prov" j) with
    | Some (Bjson.Num a), Some (Bjson.Num b), Some (Bjson.Str p) ->
        (int_of_float a, int_of_float b, p)
    | _ -> raise (Bad_plan "malformed pair entry")
  in
  let list k f =
    match Bjson.list_exn k (Bjson.mem k doc) with
    | l -> List.map f l
    | exception Bjson.Bad m -> raise (Bad_plan m)
  in
  {
    dp_program = str "program";
    dp_plan_digest = str "plan_digest";
    dp_min_coverage =
      (match Bjson.mem "min_coverage" doc with
      | Some (Bjson.Num f) -> int_of_float f
      | _ -> raise (Bad_plan "missing number min_coverage"));
    dp_dropped = list "dropped" lock;
    dp_pairs = list "pairs" pair;
  }

let load_deployment path : deployment =
  match read_file path with
  | s -> deployment_of_json s
  | exception Sys_error m -> raise (Bad_plan ("cannot read plan: " ^ m))

type deploy_error =
  | Digest_mismatch of { de_expected : string; de_got : string }
  | Unknown_lock of Minic.Ast.weak_lock

let pp_deploy_error ppf = function
  | Digest_mismatch { de_expected; de_got } ->
      Fmt.pf ppf
        "plan digest mismatch: deployment refines %s but the computed plan \
         is %s (stale corpus or different analysis options?)"
        de_expected de_got
  | Unknown_lock l ->
      Fmt.pf ppf "dropped lock %a does not exist in the plan"
        Minic.Ast.pp_weak_lock l

let plan_locks (p : Plan.t) : (int * int, unit) Hashtbl.t =
  let locks = Hashtbl.create 64 in
  let scan_tbl tbl =
    Hashtbl.iter
      (fun _ acqs ->
        List.iter
          (fun (a : Minic.Ast.weak_acq) ->
            Hashtbl.replace locks (lock_key a.wa_lock) ())
          acqs)
      tbl
  in
  scan_tbl p.Plan.pl_func;
  scan_tbl p.pl_loop;
  scan_tbl p.pl_run;
  scan_tbl p.pl_stmt;
  locks

let apply_deployment ~(plan : Plan.t) (d : deployment) :
    (Plan.t, deploy_error) result =
  let got = plan_digest plan in
  if got <> d.dp_plan_digest then
    Error (Digest_mismatch { de_expected = d.dp_plan_digest; de_got = got })
  else begin
    let known = plan_locks plan in
    match
      List.find_opt (fun l -> not (Hashtbl.mem known (lock_key l))) d.dp_dropped
    with
    | Some l -> Error (Unknown_lock l)
    | None ->
        let dropped = Hashtbl.create 16 in
        List.iter (fun l -> Hashtbl.replace dropped (lock_key l) ()) d.dp_dropped;
        Ok (drop_locks plan dropped)
  end

(* ------------------------------------------------------------------ *)
(* Safety valve *)

type violation =
  | Uncovered of { vu_seed : int; vu_strategy : string; vu_race : Dynrace.race }
  | Reintroduced of {
      vr_seed : int;
      vr_strategy : string;
      vr_race : Dynrace.race;
    }
  | Diverged of {
      vd_seed : int;
      vd_strategy : string;
      vd_div : Chimera.Runner.divergence;
    }

let pp_violation ppf = function
  | Uncovered { vu_seed; vu_strategy; vu_race } ->
      Fmt.pf ppf
        "UNCOVERED dynamic race (not in the static report) under refined \
         plan [seed=%d strategy=%s]: %a"
        vu_seed vu_strategy Dynrace.pp_race vu_race
  | Reintroduced { vr_seed; vr_strategy; vr_race } ->
      Fmt.pf ppf
        "reintroduced race (a dropped lock was load-bearing) under refined \
         plan [seed=%d strategy=%s]: %a"
        vr_seed vr_strategy Dynrace.pp_race vr_race
  | Diverged { vd_seed; vd_strategy; vd_div } ->
      Fmt.pf ppf "replay diverged under refined plan [seed=%d strategy=%s]: %a"
        vd_seed vd_strategy Chimera.Runner.pp_divergence vd_div

type validation = {
  va_jobs : int;
  va_races_checked : int;
  va_violations : violation list;
}

(** The proof obligation of a refined plan: re-record every corpus cell
    under the refined instrumentation with the detector counting weak
    locks as synchronization. Zero races means the refined program is
    still dynamically race-free on the corpus schedules — exactly the
    property record/replay determinism rests on. Each race is classified
    against the static report ([Uncovered] breaks the soundness floor;
    [Reintroduced] convicts a dropped lock), and each cell's recording
    must still replay to the same execution. *)
let validate ?pool ?(replay_seed_delta = 7919) ~cores ~(io : Iomodel.t)
    ~(report : Relay.Detect.report) ~(refined : Minic.Ast.program)
    ~(jobs : (int * Engine.strategy) list) () : validation =
  let cells =
    Par.Pool.map_opt pool
      (fun (seed, strategy) ->
        let config = { Engine.default_config with seed; cores; strategy } in
        let det = Dynrace.create ~track_weak:true () in
        let hooks = Dynrace.attach det (Engine.no_hooks ()) in
        let r = Chimera.Runner.record ~config ~hooks ~io refined in
        let sname = Engine.strategy_name strategy in
        let race_violations =
          List.map
            (fun (race : Dynrace.race) ->
              let covered =
                Hashtbl.mem report.racy_sids race.dr_sid1
                && Hashtbl.mem report.racy_sids race.dr_sid2
              in
              if covered then
                Reintroduced { vr_seed = seed; vr_strategy = sname; vr_race = race }
              else
                Uncovered { vu_seed = seed; vu_strategy = sname; vu_race = race })
            (Dynrace.races det)
        in
        let replay_violations =
          let o =
            Chimera.Runner.replay
              ~config:{ config with seed = seed + replay_seed_delta }
              ~io refined r.rc_log
          in
          match Chimera.Runner.same_execution r.rc_outcome o with
          | Ok () -> []
          | Error d ->
              [ Diverged { vd_seed = seed; vd_strategy = sname; vd_div = d } ]
        in
        (List.length (Dynrace.races det), race_violations @ replay_violations))
      jobs
  in
  {
    va_jobs = List.length jobs;
    va_races_checked = List.fold_left (fun acc (n, _) -> acc + n) 0 cells;
    va_violations = List.concat_map snd cells;
  }

let runtime_weak_acqs (o : Engine.outcome) : int =
  Array.fold_left ( + ) 0 o.o_stats.n_weak_acq
