(** Corpus-driven plan refinement: close the static → dynamic → static
    loop. Replay every distinct recording of a stress corpus with the
    vector-clock detector attached ({!Dynrace}, weak locks {e not}
    counted as synchronization, so races surface exactly where weak
    locks are load-bearing), aggregate per-static-pair evidence, and
    drop the weak locks guarding pairs proven never-racy above a
    coverage threshold.

    The evidence lattice per kept static pair is

    {v unexercised  <  exercised-never-racy  <  witnessed v}

    and only the middle point, at or above [min_coverage] distinct
    recordings, permits a drop. Refinement narrows {e instrumentation},
    never {e detection}: dropped pairs stay in the RELAY report, and
    {!validate} re-records the corpus cells under the refined plan with
    weak locks counted as synchronization — any dynamic race at all is a
    typed violation (an uncovered one breaks the static soundness floor;
    a covered one means a dropped lock was load-bearing). *)

open Interp

(* ------------------------------------------------------------------ *)
(* Corpus manifest *)

module Corpus : sig
  exception Bad of string
  (** Raised on a missing, malformed, or inconsistent manifest. *)

  type recording = {
    cr_seed : int;
    cr_strategy : Engine.strategy;
    cr_digest : string;  (** {!Chimera.Stress.log_digest} content address *)
    cr_ticks : int;      (** record-run ticks *)
    cr_input : string;   (** input-log path, relative to the corpus dir *)
    cr_order : string;   (** order-log path, relative to the corpus dir *)
  }

  type kind = Kbench | Ksrc

  type entry = {
    ce_name : string;
    ce_kind : kind;
    ce_source : string option;  (** source path for {!Ksrc} entries *)
    ce_io_seed : int;           (** input-model seed ({!Ksrc} entries) *)
    ce_cores : int;
    ce_plan_digest : string;
        (** {!plan_digest} of the plan the corpus was recorded under —
            refine rejects a corpus whose plan no longer matches *)
    ce_recordings : recording list;  (** distinct recordings, matrix order *)
  }

  type t = { co_dir : string; co_entries : entry list }

  val manifest : string
  (** Manifest file name within the corpus dir ([corpus.json]). *)

  val save : t -> unit
  (** Write [co_dir ^ "/" ^ manifest] (the log files are written by
      {!of_stress}). The emitted JSON is self-checked with {!Bjson}. *)

  val load : dir:string -> t
  (** @raise Bad on a missing or malformed manifest. *)

  val load_log : t -> entry -> recording -> Replay.Log.t
  (** Decode one recording's log pair, re-checking its content address.
      @raise Bad on a missing file, digest drift, or corrupt log. *)

  val of_stress :
    dir:string ->
    cores:int ->
    meta:(string * (kind * string option * int * string)) list ->
    Chimera.Stress.report ->
    t
  (** Build a corpus from a stress report: dedup the live recordings by
      content address per program (first cell per digest in matrix
      order), write each distinct log pair under [dir], and return the
      manifest. [meta] maps program name to
      [(kind, source, io_seed, plan_digest)]. *)
end

(* ------------------------------------------------------------------ *)
(* Evidence *)

type witness = {
  wt_sid1 : int;
  wt_sid2 : int;       (** the dynamically racing sids *)
  wt_addr : string;    (** pretty-printed raced-on address *)
  wt_seed : int;       (** recording that exposed the race *)
  wt_strategy : string;
  wt_exact : bool;
      (** the racing sids are exactly the pair's sids (false: the race
          touches one side only — still disqualifying) *)
}

type pair_evidence = {
  pe_runs : int;     (** distinct recordings replayed *)
  pe_both : int;     (** recordings in which both sids executed *)
  pe_overlap : int;  (** recordings where the sids touched a common address *)
  pe_witness : witness option;
}

(** One detector replay of one distinct recording. *)
type observation = {
  ob_seed : int;
  ob_strategy : Engine.strategy;
  ob_races : Dynrace.race list;
  ob_reached : (int, unit) Hashtbl.t;  (** racy sids that executed *)
  ob_addrs : (int, (Runtime.Key.addr, unit) Hashtbl.t) Hashtbl.t;
      (** racy sid → addresses it touched *)
  ob_checks : int;  (** detector memory operations examined *)
}

val observe :
  config:Engine.config ->
  io:Iomodel.t ->
  instrumented:Minic.Ast.program ->
  racy_sids:(int, unit) Hashtbl.t ->
  seed:int ->
  strategy:Engine.strategy ->
  Replay.Log.t ->
  observation
(** Replay one recording with the detector attached ([track_weak:false])
    plus a coverage probe over [racy_sids]. [config] should carry the
    recording's cores and strategy; its seed is free (replay is gated by
    the log). *)

val observe_recordings :
  ?pool:Par.Pool.t ->
  ?replay_seed_delta:int ->
  cores:int ->
  io:Iomodel.t ->
  instrumented:Minic.Ast.program ->
  racy_sids:(int, unit) Hashtbl.t ->
  ((int * Engine.strategy) * Replay.Log.t) list ->
  observation list
(** Fan {!observe} over already-deduped recordings (concurrently on
    [pool] when given; output identical at any pool size). *)

val corpus_observations :
  ?pool:Par.Pool.t ->
  ?replay_seed_delta:int ->
  cores:int ->
  io:Iomodel.t ->
  instrumented:Minic.Ast.program ->
  racy_sids:(int, unit) Hashtbl.t ->
  jobs:(int * Engine.strategy) list ->
  unit ->
  observation list
(** Record every [(seed, strategy)] cell, dedup by content address, and
    {!observe} each distinct recording — the in-memory corpus used by
    the bench harness and the golden-counters generator. *)

val observe_corpus :
  ?pool:Par.Pool.t ->
  ?replay_seed_delta:int ->
  io:Iomodel.t ->
  instrumented:Minic.Ast.program ->
  racy_sids:(int, unit) Hashtbl.t ->
  Corpus.t ->
  Corpus.entry ->
  observation list
(** {!observe} every recording of an on-disk corpus entry.
    @raise Corpus.Bad on log damage or digest drift. *)

(* ------------------------------------------------------------------ *)
(* Refinement *)

(** Per-pair provenance, in the style of [--explain-races] /
    [--explain-plan]. *)
type prov =
  | Dropped_never_racy
      (** exercised at or above the coverage threshold, never racy; its
          lock is dropped *)
  | Kept_witnessed  (** a dynamic race touched the pair — fast path *)
  | Kept_unexercised  (** coverage below the threshold *)
  | Kept_shared
      (** never-racy with enough coverage, but its lock also guards a
          pair that must stay *)

val prov_name : prov -> string
(** [kept] / [dropped:never-racy] / [kept:unexercised] /
    [kept:witnessed]. *)

type pair_result = {
  pr_decision : Instrument.Plan.pair_decision;
  pr_evidence : pair_evidence;
  pr_prov : prov;
}

val pp_pair_result : pair_result Fmt.t

type t = {
  rf_pairs : pair_result list;  (** in [pl_decisions] order *)
  rf_dropped : Minic.Ast.weak_lock list;  (** sorted *)
  rf_plan : Instrument.Plan.t;  (** refined plan *)
  rf_min_coverage : int;
  rf_base_acqs : int;     (** static acquisitions before refinement *)
  rf_refined_acqs : int;  (** static acquisitions after *)
}

val refine :
  ?min_coverage:int ->
  plan:Instrument.Plan.t ->
  observation list ->
  t
(** Aggregate evidence and drop every weak lock all of whose guarded
    pairs are exercised-never-racy at [min_coverage] (default 2) or more
    distinct recordings. A witnessed pair pins its lock regardless of
    coverage. *)

val pp_summary : t Fmt.t

(* ------------------------------------------------------------------ *)
(* Deployment plans *)

val plan_digest : Instrument.Plan.t -> string
(** Order-independent content address of a plan's region tables. *)

exception Bad_plan of string
(** Raised when a deployment file is unreadable or malformed. *)

type deployment = {
  dp_program : string;
  dp_plan_digest : string;  (** digest of the base plan refined from *)
  dp_min_coverage : int;
  dp_dropped : Minic.Ast.weak_lock list;
  dp_pairs : (int * int * string) list;  (** (sid1, sid2, provenance) *)
}

val deployment_of : program:string -> base:Instrument.Plan.t -> t -> deployment

val deployment_json : deployment -> string
(** Schema [chimera-refined-plan/1]; self-checked with {!Bjson}. *)

val deployment_of_json : string -> deployment
(** @raise Bad_plan on malformed input. *)

val load_deployment : string -> deployment
(** Read and parse a deployment file. @raise Bad_plan. *)

type deploy_error =
  | Digest_mismatch of { de_expected : string; de_got : string }
      (** the deployment refines a different plan than the one computed *)
  | Unknown_lock of Minic.Ast.weak_lock
      (** a dropped lock does not exist in the base plan *)

val pp_deploy_error : deploy_error Fmt.t

val apply_deployment :
  plan:Instrument.Plan.t -> deployment -> (Instrument.Plan.t, deploy_error) result
(** Re-derive the refined plan from a deployment: check the plan digest,
    then drop the listed locks. *)

(* ------------------------------------------------------------------ *)
(* Safety valve *)

type violation =
  | Uncovered of { vu_seed : int; vu_strategy : string; vu_race : Dynrace.race }
      (** a dynamic race under the refined plan is not statically
          covered — the soundness floor is broken *)
  | Reintroduced of {
      vr_seed : int;
      vr_strategy : string;
      vr_race : Dynrace.race;
    }
      (** a statically covered race became dynamic: a dropped lock was
          load-bearing *)
  | Diverged of { vd_seed : int; vd_strategy : string; vd_div : Chimera.Runner.divergence }
      (** record/replay broke under the refined plan *)

val pp_violation : violation Fmt.t

type validation = {
  va_jobs : int;           (** corpus cells re-recorded *)
  va_races_checked : int;  (** dynamic races examined *)
  va_violations : violation list;  (** empty iff the refined plan is safe *)
}

val validate :
  ?pool:Par.Pool.t ->
  ?replay_seed_delta:int ->
  cores:int ->
  io:Iomodel.t ->
  report:Relay.Detect.report ->
  refined:Minic.Ast.program ->
  jobs:(int * Engine.strategy) list ->
  unit ->
  validation
(** Re-record every corpus cell under the refined instrumentation with
    the detector attached ([track_weak:true] — weak locks count as
    synchronization, so a race-free result means the refined program
    still deterministically replays), classify every dynamic race, and
    check record==replay per cell. *)

val runtime_weak_acqs : Engine.outcome -> int
(** Runtime weak-lock acquisitions of a run, summed over granularities. *)
