(** Memoized size/offset queries over a program's struct declarations.

    [Minic.Ast.sizeof] and [Minic.Ast.field_offset] re-scan the struct
    list (and re-sum field sizes) on every call; the interpreter asks
    these questions on every array index and field access, so the engine
    keeps one of these tables per program and answers from hash tables
    after the first query. Struct declarations are immutable after
    parsing, so the cache never invalidates. *)

open Minic.Ast

type t = {
  structs : struct_decl list;
  sizes : (string, int) Hashtbl.t;  (** struct name -> size in cells *)
  offsets : (string * string, int * ty) Hashtbl.t;
      (** (struct, field) -> cell offset, field type *)
}

let create (structs : struct_decl list) : t =
  { structs; sizes = Hashtbl.create 16; offsets = Hashtbl.create 32 }

let rec sizeof (l : t) (ty : ty) : int =
  match ty with
  | Tvoid -> 0
  | Tint | Tptr _ | Tfun _ -> 1
  | Tarray (t, n) -> n * sizeof l t
  | Tstruct s -> (
      match Hashtbl.find_opt l.sizes s with
      | Some n -> n
      | None ->
          let n = Minic.Ast.sizeof l.structs ty in
          Hashtbl.replace l.sizes s n;
          n)

let field_offset (l : t) (sname : string) (fname : string) : int * ty =
  let key = (sname, fname) in
  match Hashtbl.find_opt l.offsets key with
  | Some r -> r
  | None ->
      let r = Minic.Ast.field_offset l.structs sname fname in
      Hashtbl.replace l.offsets key r;
      r
