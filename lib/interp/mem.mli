(** Simulated shared memory: blocks (globals, frames, heap allocations)
    of value cells. Every block carries a schedule-independent
    {!Runtime.Key.origin} so log events and the final-state hash are
    comparable across runs with different allocation orders. *)

type block = {
  b_id : int;
  b_origin : Runtime.Key.origin;
  cells : Value.t array;
  mutable b_freed : bool;
}

type t = {
  mutable blocks : block option array;  (** indexed by (dense) block id *)
  mutable next_id : int;
}

val create : unit -> t
val alloc : t -> Runtime.Key.origin -> int -> block
val free : t -> int -> unit

(** [None] on an unknown id; freed blocks are still returned. *)
val find_opt : t -> int -> block option

(** Raises {!Value.Fault} on a freed or unknown block. *)
val block : t -> int -> block

(** Bounds-checked; raise {!Value.Fault}. *)
val load : t -> Value.ptr -> Value.t

val store : t -> Value.ptr -> Value.t -> unit

(** Stable address for log keys. *)
val addr_key : t -> Value.ptr -> Runtime.Key.addr

(** Deterministic hash of live global + heap memory with pointers
    canonicalized through origins (the determinism-check state hash). *)
val state_hash : t -> int
