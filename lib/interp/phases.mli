(** Per-phase wall-clock attribution for a record run.

    A [Phases.t] handed to {!Engine.run} makes the engine bucket its
    host time into interpreter work, recorder (log-append) work,
    scheduler bookkeeping (maintenance + idle fast-forward), and
    weak-lock admission (timeout sweeps). Buckets are swap-free
    monotonic-clock spans around non-suspending sections only, so they
    never straddle a coroutine switch; interpreter time is what remains
    of the run total after the explicit buckets. With no [Phases.t]
    attached (the default) the engine reads no clocks at all.

    The clock is injected ([now], seconds) so this library needs no
    timer dependency; callers pass e.g. bechamel's monotonic clock. *)

type bucket = Recorder | Scheduler | Weaklock

type t

val create : now:(unit -> float) -> unit -> t

val now : t -> float

val add : t -> bucket -> float -> unit

(** Mark the start / end of the measured run (sets the total). *)
val start : t -> unit

val finish : t -> unit

(** Bucket totals, seconds. [interp_s] = total - recorder - scheduler -
    weaklock, clamped at 0. *)
val total_s : t -> float

val recorder_s : t -> float

val scheduler_s : t -> float

val weaklock_s : t -> float

val interp_s : t -> float
