(** Memoized [sizeof] / [field_offset] over a fixed struct-declaration
    list. Semantically identical to the [Minic.Ast] functions (including
    raised errors on unknown structs/fields), amortized O(1). *)

type t

val create : Minic.Ast.struct_decl list -> t
val sizeof : t -> Minic.Ast.ty -> int
val field_offset : t -> string -> string -> int * Minic.Ast.ty
