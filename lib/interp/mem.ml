(** Simulated shared memory: a table of blocks (globals, stack frames,
    heap allocations) of value cells.

    Every block carries a schedule-independent {!Runtime.Key.origin} so
    that log events and the final-state hash are comparable between a
    recording and a replay that allocated blocks in a different global
    order.

    Block ids are dense (allocated 1, 2, 3, ...), so the table is a
    growable array indexed by id rather than a hash table: every load and
    store resolves its block with a bounds check and an array read, which
    matters — the interpreter goes through here for each memory access of
    every simulated statement. *)

open Runtime

type block = {
  b_id : int;
  b_origin : Key.origin;
  cells : Value.t array;
  mutable b_freed : bool;
}

type t = {
  mutable blocks : block option array;  (** indexed by block id *)
  mutable next_id : int;
}

let create () = { blocks = Array.make 1024 None; next_id = 1 }

let find_opt (m : t) (id : int) : block option =
  if id >= 0 && id < Array.length m.blocks then Array.unsafe_get m.blocks id
  else None

let alloc (m : t) (origin : Key.origin) (size : int) : block =
  let b =
    {
      b_id = m.next_id;
      b_origin = origin;
      cells = Array.make (max size 0) Value.zero;
      b_freed = false;
    }
  in
  m.next_id <- m.next_id + 1;
  let n = Array.length m.blocks in
  if b.b_id >= n then begin
    let bigger = Array.make (max (2 * n) (b.b_id + 1)) None in
    Array.blit m.blocks 0 bigger 0 n;
    m.blocks <- bigger
  end;
  m.blocks.(b.b_id) <- Some b;
  b

let free (m : t) (id : int) =
  match find_opt m id with Some b -> b.b_freed <- true | None -> ()

let block (m : t) (id : int) : block =
  match find_opt m id with
  | Some b when not b.b_freed -> b
  | Some _ -> Value.fault "use of freed block b%d" id
  | None -> Value.fault "invalid block b%d" id

let load (m : t) (p : Value.ptr) : Value.t =
  let b = block m p.p_block in
  if p.p_off < 0 || p.p_off >= Array.length b.cells then
    Value.fault "out-of-bounds load at %a+%d (size %d)" Key.pp_origin
      b.b_origin p.p_off (Array.length b.cells)
  else Array.unsafe_get b.cells p.p_off

let store (m : t) (p : Value.ptr) (v : Value.t) : unit =
  let b = block m p.p_block in
  if p.p_off < 0 || p.p_off >= Array.length b.cells then
    Value.fault "out-of-bounds store at %a+%d (size %d)" Key.pp_origin
      b.b_origin p.p_off (Array.length b.cells)
  else Array.unsafe_set b.cells p.p_off v

(** Stable address of a pointer, for log keys. *)
let addr_key (m : t) (p : Value.ptr) : Key.addr =
  let b = block m p.p_block in
  { Key.a_origin = b.b_origin; a_off = p.p_off }

(** Deterministic hash of all live global and heap memory, with pointer
    values canonicalized through their origins. Frames are excluded (they
    belong to still-running threads only at non-quiescent points; at
    program end all frames are gone anyway). *)
let state_hash (m : t) : int =
  let canon_value (v : Value.t) =
    match v with
    | Value.VPtr p -> (
        match find_opt m p.p_block with
        | Some b -> Fmt.str "ptr(%a+%d)" Key.pp_origin b.b_origin p.p_off
        | None -> "ptr(dead)")
    | Value.VInt n -> string_of_int n
    | Value.VFun f -> "&" ^ f
  in
  let entries = ref [] in
  Array.iter
    (function
      | Some b -> (
          match b.b_origin with
          | Key.OGlobal _ | Key.OHeap _ when not b.b_freed ->
              entries :=
                Fmt.str "%a=%s" Key.pp_origin b.b_origin
                  (String.concat ","
                     (Array.to_list (Array.map canon_value b.cells)))
                :: !entries
          | _ -> ())
      | None -> ())
    m.blocks;
  Hashtbl.hash (List.sort compare !entries)
