(** The multiprocessor simulator: a MiniC interpreter whose threads run as
    OCaml effect-based coroutines over a tick-based multicore scheduler.

    This is the project's substitute for the paper's modified Linux
    kernel + pthreads runtime on an 8-core Xeon (Section 6.1). The
    simulator exposes the same phenomena the paper's system does:

    - instruction-granularity preemption: every statement (and the gap
      between a racy read and its write) is a scheduling point, so data
      races produce schedule-dependent outcomes;
    - parallel makespan on N cores with per-core run queues, quanta, and
      work stealing — simulated time (ticks) plays the role of wall-clock
      time in the evaluation;
    - a recording mode that logs nondeterministic inputs, the per-object
      synchronization order, the weak-lock acquisition order, and the
      per-core schedule, charging the cost model for every log append;
    - a replay mode that feeds back inputs and enforces the recorded
      orders (blocking threads whose operation is not next), without
      gating data accesses — deterministic replay therefore {e depends}
      on the program being data-race-free under its (weak-)lock
      synchronization, which is exactly Chimera's transformation
      guarantee;
    - the weak-lock runtime: ordered acquisition, release of outer
      regions around inner regions, range-claimed loop-locks, and
      timeout-preemption with forced release/reacquire (Section 2.3). *)

open Minic.Ast
module K = Runtime.Key
module WL = Runtime.Weaklock

(* ------------------------------------------------------------------ *)
(* Effects *)

type _ Effect.t +=
  | E_step : int -> unit Effect.t
      (** scheduling point; the argument is the tick cost *)
  | E_block : unit Effect.t
      (** the thread marked itself blocked; resumes when woken *)

let step cost = Effect.perform (E_step cost)
let block_here () = Effect.perform E_block

(* ------------------------------------------------------------------ *)
(* Threads *)

type block_reason =
  | BMutex of K.addr
  | BBarrier of K.addr
  | BCond of K.addr
  | BJoin of int
  | BWeak of weak_lock * WL.claim
  | BReacq  (** holds no locks; must reacquire [th.reacquire] to resume *)
  | BTurn of string  (** what turn we are waiting for (diagnostics) *)
  | BIO of int  (** wake tick *)

let pp_block_reason ppf = function
  | BMutex a -> Fmt.pf ppf "mutex %a" K.pp_addr a
  | BBarrier a -> Fmt.pf ppf "barrier %a" K.pp_addr a
  | BCond a -> Fmt.pf ppf "cond %a" K.pp_addr a
  | BJoin t -> Fmt.pf ppf "join %d" t
  | BWeak (w, _) -> Fmt.pf ppf "weak %a" pp_weak_lock w
  | BReacq -> Fmt.string ppf "forced-reacquire"
  | BTurn what -> Fmt.pf ppf "replay-turn for %s" what
  | BIO t -> Fmt.pf ppf "io until %d" t

type status = Runnable | Blocked of block_reason | Done

type region = { rg_acqs : (weak_lock * WL.claim) list }

type thread = {
  tid : int;  (** schedule-independent: encodes the tid path *)
  path : K.tid_path;
  mutable status : status;
  mutable resume : (unit, unit) Effect.Deep.continuation option;
  mutable body : (unit -> unit) option;  (** before first scheduling *)
  mutable steps : int;
  mutable weak_acqs : int;
      (** weak-lock acquisitions performed so far (including
          reacquisitions) — identical across record and replay, used to
          order forced events against this thread's own reacquisitions *)
  mutable stall : int;
  mutable core : int;
  mutable spawn_seq : int;
  mutable frame_seq : int;
  mutable alloc_seq : int;
  mutable io_seq : int;
  mutable call_stack : string list;
  mutable regions : region list;  (** innermost first *)
  mutable reacquire : (weak_lock * WL.claim) list;
      (** locks stripped by timeout-preemption, to reacquire before
          resuming *)
  mutable force_now : weak_lock list;
      (** forced releases to apply at this thread's next step *)
  mutable turn_check : (unit -> bool) option;
  mutable blocked_since : int;
  mutable fault : string option;
  mutable det_clock : int;
      (** deterministic logical time (Deterministic mode): advances with
          executed work and with deterministic retry bumps while
          contending, never with wall/scheduler time *)
  mutable det_excluded : bool;
      (** deterministically parked (cond/join/barrier/IO wait after a
          committed gate): not considered in the global-minimum rule *)
  mutable det_immune : weak_lock list;
      (** locks reacquired after a deterministic preemption: immune to
          further preemption until released, so the recovering owner can
          finish its region (prevents preemption ping-pong) *)
  mutable det_reacquiring : bool;  (** recursion guard for det_gate *)
  mutable det_doomed : weak_lock list;
      (** locks this thread must strip itself of at its next gate/park —
          a contender demanded them; self-stripping keeps the preemption
          point inside the owner's deterministic instruction stream *)
}

let stable_tid (path : K.tid_path) : int =
  List.fold_left (fun acc k -> (acc * 1024) + k + 1) 0 path

(* ------------------------------------------------------------------ *)
(* Hooks for profilers / dynamic analyses *)

type sync_event =
  | SyAcquire of K.addr
  | SyRelease of K.addr
  | SyBarrierArrive of K.addr
  | SyBarrier of K.addr
  | SyCondSignal of K.addr
  | SyCondWake of K.addr
  | SySpawn of int   (** child tid *)
  | SyThreadStart    (** first event in a spawned thread *)
  | SyJoin of int    (** joined child tid *)
  | SyWeakAcq of weak_lock
  | SyWeakRel of weak_lock

type hooks = {
  mutable on_enter_fun : (int -> string -> unit) option;
  mutable on_exit_fun : (int -> string -> unit) option;
  mutable on_mem : (int -> K.addr -> write:bool -> sid:int -> unit) option;
  mutable on_sync : (int -> sync_event -> unit) option;
  mutable on_loop_iter : (int -> int -> unit) option;  (** tid, lid *)
  mutable on_loop_enter : (int -> int -> unit) option; (** tid, lid *)
  mutable on_loop_exit : (int -> int -> unit) option;  (** tid, lid *)
  mutable on_stmt : (int -> int -> unit) option;       (** tid, sid *)
}

let no_hooks () =
  {
    on_enter_fun = None;
    on_exit_fun = None;
    on_mem = None;
    on_sync = None;
    on_loop_iter = None;
    on_loop_enter = None;
    on_loop_exit = None;
    on_stmt = None;
  }

(* ------------------------------------------------------------------ *)
(* Statistics *)

type stats = {
  mutable n_stmts : int;
  mutable n_mem_ops : int;
  mutable n_sync_ops : int;
  mutable n_syscalls : int;
  n_weak_acq : int array;          (** by granularity rank *)
  weak_block_ticks : int array;    (** contention, by granularity rank *)
  mutable n_forced : int;
  mutable n_handoff_served : int;
  mutable n_handoff_expired : int;
  mutable log_ticks_sync : int;
  mutable log_ticks_weak : int;
  mutable log_ticks_input : int;
  mutable weak_op_ticks : int;     (** acquire/release + range eval cost *)
}

let new_stats () =
  {
    n_stmts = 0;
    n_mem_ops = 0;
    n_sync_ops = 0;
    n_syscalls = 0;
    n_weak_acq = Array.make 4 0;
    weak_block_ticks = Array.make 4 0;
    n_forced = 0;
    n_handoff_served = 0;
    n_handoff_expired = 0;
    log_ticks_sync = 0;
    log_ticks_weak = 0;
    log_ticks_input = 0;
    weak_op_ticks = 0;
  }

(* ------------------------------------------------------------------ *)
(* Engine *)

type mode =
  | Native
  | Record
  | Replay of Replay.Log.t
  | Deterministic
      (** Kendo-style deterministic execution — the paper's future-work
          direction: since the Chimera-transformed program is
          data-race-free, arbitrating every synchronization operation by
          deterministic logical time makes the whole execution a function
          of the program and its inputs, independent of the scheduler, with
          no logging at all. *)

(** Schedule-exploration strategy of the tick scheduler. [Sdefault] is
    the seeded round-robin scheduler and consumes the rng stream exactly
    as it always has, so its tick counts stay pinned by the golden
    counters. The adversarial strategies only shape {e recordings} —
    replay is gated by the recorded per-object orders, so a log recorded
    under any strategy replays under any other. *)
type strategy =
  | Sdefault
      (** seeded quantum round-robin with work stealing (the pinned path) *)
  | Spct
      (** PCT-style: per-thread random priorities; the highest-priority
          runnable thread on each core runs, and at quantum-expiry change
          points the running thread's priority drops below every other *)
  | Sstorm
      (** weak-timeout storm: the forced-release timeout is slashed and
          swept an order of magnitude more often, driving weak locks
          toward forced expiry (the Section 2.3 escape hatch) *)

let strategy_name = function
  | Sdefault -> "default"
  | Spct -> "pct"
  | Sstorm -> "storm"

let strategy_of_string = function
  | "default" -> Some Sdefault
  | "pct" -> Some Spct
  | "storm" -> Some Sstorm
  | _ -> None

let all_strategies = [ Sdefault; Spct; Sstorm ]

type config = {
  cores : int;
  seed : int;
  quantum : int;
  weak_timeout : int;
  max_ticks : int;
  cost : Cost.t;
  strategy : strategy;
}

let default_config =
  {
    cores = 4;
    seed = 1;
    quantum = 50;
    weak_timeout = 100_000;
    max_ticks = 400_000_000;
    cost = Cost.default;
    strategy = Sdefault;
  }

exception Program_exit of int
exception Stuck of string

type frame = {
  fr_fd : fundec;
  fr_block : int;
  fr_offsets : (string, int * ty) Hashtbl.t;
  fr_env : Minic.Typecheck.env;
}

type t = {
  prog : program;
  tenv : Minic.Typecheck.env;
  layout : Layout.t;
  cfg : config;
  mode : mode;
  io : Iomodel.t;
  hooks : hooks;
  mem : Mem.t;
  mutexes : Runtime.Sync.Mutex.t;
  barriers : Runtime.Sync.Barrier.t;
  conds : Runtime.Sync.Cond.t;
  weak : WL.t;
  threads : (int, thread) Hashtbl.t;
  mutable thread_order : int list;  (** creation order, reversed *)
  queues : thread list ref array;   (** per-core run queues *)
  quanta : int array;
  globals : (string, int) Hashtbl.t;  (** global name -> block id *)
  recorder : Replay.Recorder.t option;
  replayer : Replay.Replayer.t option;
  sink : Trace.Sink.t option;
  stats : stats;
  mutable ticks : int;
  mutable outputs : (K.tid_path * int) list;  (** reversed *)
  mutable live : int;
  mutable exit_code : int option;
  mutable rng : int;
  mutable main_done : bool;
  prio : (int, int) Hashtbl.t;
      (** per-thread PCT priorities (tid -> priority); touched only under
          [Spct], so the default path never pays for it *)
  mutable pct_floor : int;
      (** strictly decreasing change-point floor: each demotion lands
          below every priority handed out so far *)
  fenvs : (string, Minic.Typecheck.env) Hashtbl.t;
      (** per-engine function-env cache; engines must not share mutable
          state so that runs on different domains stay independent *)
  flayouts : (string, (string, int * ty) Hashtbl.t * int) Hashtbl.t;
      (** per-function frame layout (offsets table, frame size): static
          per function, shared read-only by all its frames *)
  sid_sort_perm : (int, int array) Hashtbl.t;
      (** per-[WeakEnter] canonical acquisition order, as a permutation
          of the statement's acquisition list (the locks are static per
          statement, so the sort need only happen once) *)
  cbodies : (string, thread -> frame -> unit) Hashtbl.t;
      (** per-function staged bodies: each body is closure-compiled on
          its first call, with variable offsets, field offsets, element
          sizes, and static types resolved once instead of per access *)
  w_weak : Wheel.t;
      (** deadline wheel over [Blocked (BWeak _ | BReacq)] threads:
          each entry expires at [blocked_since + timeout + 1] (see
          [weak_deadline]); slot width = the strategy's sweep quantum *)
  w_io : Wheel.t;
      (** deadline wheel over [Blocked (BIO t)] threads (wake tick [t]);
          slot width = the 16-tick maintenance period *)
  mutable n_bturn : int;  (** threads currently [Blocked (BTurn _)] *)
  mutable n_breacq : int;  (** threads currently [Blocked BReacq] *)
  mutable n_reacq : int;  (** threads with a nonempty [reacquire] list *)
  mutable phases : Phases.t option;
      (** per-phase wall-clock attribution; [None] (the default) reads
          no clocks at all *)
}

let trace_enabled =
  match Sys.getenv_opt "CHIMERA_TRACE" with Some ("1" | "true") -> true | _ -> false

let trace eng fmt =
  if trace_enabled then
    Fmt.kstr (fun m -> Fmt.epr "[%d] %s@." eng.ticks m) fmt
  else Fmt.kstr (fun _ -> ()) fmt

(* Trace emission: timestamped with the thread's per-thread step count
   (the logical clock of DESIGN.md §10), and charging no simulated ticks
   — with no sink, and for every simulated timing with one, the engine
   behaves identically. *)
let emit_ev eng (th : thread) kind =
  match eng.sink with
  | Some s -> Trace.Sink.emit s th.path ~step:th.steps kind
  | None -> ()

let rng_next (eng : t) =
  let x = eng.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  eng.rng <- (if x = 0 then 0x2545F491 else x);
  eng.rng

(* ------------------------------------------------------------------ *)
(* Schedule strategies.

   Everything here is a no-op under [Sdefault]: the default path must
   neither consume extra rng draws nor reorder queues, because the
   golden tick counts pin it byte-for-byte. *)

(** Storm mode slashes the forced-release deadline; every other strategy
    uses the configured timeout. Used by the sweep and by the idle
    fast-forward deadline, so both agree on when a stall expires. *)
let effective_weak_timeout eng =
  match eng.cfg.strategy with
  | Sstorm -> max 64 (eng.cfg.weak_timeout / 64)
  | Sdefault | Spct -> eng.cfg.weak_timeout

(** Tick mask between weak-timeout sweeps: storm sweeps 8x as often so a
    slashed deadline is actually observed soon after it passes. *)
let weak_sweep_mask eng =
  match eng.cfg.strategy with Sstorm -> 31 | Sdefault | Spct -> 255

(* ------------------------------------------------------------------ *)
(* Scheduler wake index.

   Every status change goes through [set_status] so the deadline wheels
   and the blocked-population counters stay an exact mirror of the
   thread table: [w_weak] holds precisely the [BWeak]/[BReacq] threads
   (keyed by their timeout deadline), [w_io] precisely the [BIO]
   threads. The wheels replace only order-INSENSITIVE scans — minimum
   searches (timeout victim, idle fast-forward next-wake) and emptiness
   gates. Every pass whose [Hashtbl.iter] order feeds wake order (and
   through [enqueue] the golden tick counts) is kept textually intact
   and merely skipped when the index proves it a no-op. *)

(* cross-check mode (CHIMERA_SCHED_CHECK=1): recompute every wheel
   answer with the retired full-table scan and fail on any mismatch.
   Lazy so a harness can putenv before the first engine runs. *)
let sched_check_enabled =
  lazy
    (match Sys.getenv_opt "CHIMERA_SCHED_CHECK" with
    | Some ("1" | "true") -> true
    | _ -> false)

(** The tick at which a [BWeak]/[BReacq] stall becomes preemptible:
    [blocked_since + timeout] is the last tick of grace ([due] is a
    strict [>] comparison), so the deadline proper is one past it. *)
let weak_deadline eng (th : thread) =
  th.blocked_since + effective_weak_timeout eng + 1

let sched_deindex eng (th : thread) =
  match th.status with
  | Blocked BReacq ->
      Wheel.cancel eng.w_weak ~tid:th.tid;
      eng.n_breacq <- eng.n_breacq - 1
  | Blocked (BWeak _) -> Wheel.cancel eng.w_weak ~tid:th.tid
  | Blocked (BIO _) -> Wheel.cancel eng.w_io ~tid:th.tid
  | Blocked (BTurn _) -> eng.n_bturn <- eng.n_bturn - 1
  | Runnable | Done | Blocked (BMutex _ | BBarrier _ | BCond _ | BJoin _) -> ()

let sched_index eng (th : thread) =
  match th.status with
  | Blocked BReacq ->
      Wheel.add eng.w_weak ~tid:th.tid ~deadline:(weak_deadline eng th);
      eng.n_breacq <- eng.n_breacq + 1
  | Blocked (BWeak _) ->
      Wheel.add eng.w_weak ~tid:th.tid ~deadline:(weak_deadline eng th)
  | Blocked (BIO t) -> Wheel.add eng.w_io ~tid:th.tid ~deadline:t
  | Blocked (BTurn _) -> eng.n_bturn <- eng.n_bturn + 1
  | Runnable | Done | Blocked (BMutex _ | BBarrier _ | BCond _ | BJoin _) -> ()

let set_status eng (th : thread) (st : status) =
  sched_deindex eng th;
  th.status <- st;
  sched_index eng th

(** [blocked_since] moved while the thread stayed blocked (a timeout
    sweep restarting its clock): recompute the wheel deadline. *)
let resched eng (th : thread) =
  sched_deindex eng th;
  sched_index eng th

let set_reacquire eng (th : thread) v =
  (match (th.reacquire, v) with
  | [], _ :: _ -> eng.n_reacq <- eng.n_reacq + 1
  | _ :: _, [] -> eng.n_reacq <- eng.n_reacq - 1
  | _ -> ());
  th.reacquire <- v

(* ------------------------------------------------------------------ *)
(* Per-phase attribution (zero-cost when [eng.phases] is [None]) *)

let[@inline] ph_now eng =
  match eng.phases with Some p -> Phases.now p | None -> 0.

let[@inline] ph_add eng bucket t0 =
  match eng.phases with
  | Some p -> Phases.add p bucket (Phases.now p -. t0)
  | None -> ()

(** PCT priority of a thread, assigned deterministically from (seed,
    tid) on first sight — thread creation consumes no rng draw, so the
    recorded thread structure is independent of later scheduling. *)
let pct_prio eng (tid : int) =
  match Hashtbl.find_opt eng.prio tid with
  | Some p -> p
  | None ->
      let h = (tid + 1) * 0x9E3779B1 lxor (eng.cfg.seed * 0x85EBCA77) in
      let p = 1 + (h land 0x3FFFFFFF) in
      Hashtbl.replace eng.prio tid p;
      p

(** Change point: drop the thread below every priority seen so far. *)
let pct_demote eng (tid : int) =
  eng.pct_floor <- eng.pct_floor - 1;
  Hashtbl.replace eng.prio tid eng.pct_floor

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let on_mem eng (th : thread) (p : Value.ptr) ~write ~sid =
  eng.stats.n_mem_ops <- eng.stats.n_mem_ops + 1;
  match eng.hooks.on_mem with
  | Some f -> f th.tid (Mem.addr_key eng.mem p) ~write ~sid
  | None -> ()

(* Pairs the operand values of a compiled binary operation through a
   function application, so the operands evaluate in the same
   (right-to-left) order as the interpreted [binop eng op (eval a)
   (eval b)] call they replace. *)
let binop_args (va : Value.t) (vb : Value.t) = (va, vb)

(* The address computation also yields the lvalue's static type: the
   callers need it for array decay and pointer-arithmetic scaling, and
   computing it alongside the address avoids re-walking nested lvalues
   once per query (address, decay check, element size) as separate
   [type_of_lval] calls would. *)
let rec eval eng th fr ~sid (e : exp) : Value.t =
  match e with
  | Const n -> VInt n
  | Lval (Var v) -> (
      match Hashtbl.find_opt fr.fr_offsets v with
      | Some (off, ty) -> (
          let p = { Value.p_block = fr.fr_block; p_off = off } in
          match ty with
          | Tarray _ -> VPtr p
          | _ ->
              on_mem eng th p ~write:false ~sid;
              Mem.load eng.mem p)
      | None ->
          if Hashtbl.mem eng.tenv.funs v then VFun v
          else (
            match Hashtbl.find_opt eng.globals v with
            | Some bid -> (
                let p = { Value.p_block = bid; p_off = 0 } in
                match Hashtbl.find_opt eng.tenv.globals v with
                | Some (Tarray _) -> VPtr p
                | _ ->
                    on_mem eng th p ~write:false ~sid;
                    Mem.load eng.mem p)
            | None -> Value.fault "unbound variable %s" v))
  | Lval lv -> (
      (* arrays decay to their address in expression position *)
      match lval_addr_ty eng th fr ~sid lv with
      | p, Tarray _ -> VPtr p
      | p, _ ->
          on_mem eng th p ~write:false ~sid;
          Mem.load eng.mem p)
  | AddrOf (Var v) when (not (Hashtbl.mem fr.fr_offsets v))
                        && Hashtbl.mem eng.tenv.funs v ->
      VFun v
  | AddrOf lv -> VPtr (lval_addr eng th fr ~sid lv)
  | Unop (op, e) -> (
      let v = eval eng th fr ~sid e in
      match op with
      | Neg -> VInt (-Value.to_int v)
      | LNot -> VInt (if Value.truthy v then 0 else 1)
      | BNot -> VInt (lnot (Value.to_int v)))
  | Binop (LAnd, a, b) ->
      if Value.truthy (eval eng th fr ~sid a) then
        VInt (if Value.truthy (eval eng th fr ~sid b) then 1 else 0)
      else VInt 0
  | Binop (LOr, a, b) ->
      if Value.truthy (eval eng th fr ~sid a) then VInt 1
      else VInt (if Value.truthy (eval eng th fr ~sid b) then 1 else 0)
  | Binop (op, a, b) -> binop eng op (eval eng th fr ~sid a) (eval eng th fr ~sid b)

and binop eng op (va : Value.t) (vb : Value.t) : Value.t =
  ignore eng;
  let open Value in
  let bool b = VInt (if b then 1 else 0) in
  match (op, va, vb) with
  (* cell-granular pointer arithmetic *)
  | Add, VPtr p, VInt n | Add, VInt n, VPtr p ->
      VPtr { p with p_off = p.p_off + n }
  | Sub, VPtr p, VInt n -> VPtr { p with p_off = p.p_off - n }
  | Sub, VPtr a, VPtr b when a.p_block = b.p_block -> VInt (a.p_off - b.p_off)
  | Eq, a, b -> bool (equal_value a b)
  | Ne, a, b -> bool (not (equal_value a b))
  | Lt, VPtr a, VPtr b when a.p_block = b.p_block -> bool (a.p_off < b.p_off)
  | Le, VPtr a, VPtr b when a.p_block = b.p_block -> bool (a.p_off <= b.p_off)
  | Gt, VPtr a, VPtr b when a.p_block = b.p_block -> bool (a.p_off > b.p_off)
  | Ge, VPtr a, VPtr b when a.p_block = b.p_block -> bool (a.p_off >= b.p_off)
  | _, VInt x, VInt y -> (
      match op with
      | Add -> VInt (x + y)
      | Sub -> VInt (x - y)
      | Mul -> VInt (x * y)
      | Div -> if y = 0 then fault "division by zero" else VInt (x / y)
      | Mod -> if y = 0 then fault "modulo by zero" else VInt (x mod y)
      | BAnd -> VInt (x land y)
      | BOr -> VInt (x lor y)
      | BXor -> VInt (x lxor y)
      | Shl -> VInt (x lsl (y land 62))
      | Shr -> VInt (x asr (y land 62))
      | Lt -> bool (x < y)
      | Le -> bool (x <= y)
      | Gt -> bool (x > y)
      | Ge -> bool (x >= y)
      | Eq -> bool (x = y)
      | Ne -> bool (x <> y)
      | LAnd | LOr -> assert false)
  | _ -> Value.fault "ill-typed binary operation"

and lval_addr eng th fr ~sid (lv : lval) : Value.ptr =
  fst (lval_addr_ty eng th fr ~sid lv)

and lval_addr_ty eng th fr ~sid (lv : lval) : Value.ptr * ty =
  match lv with
  | Var v -> (
      match Hashtbl.find_opt fr.fr_offsets v with
      | Some (off, ty) -> ({ p_block = fr.fr_block; p_off = off }, ty)
      | None -> (
          match Hashtbl.find_opt eng.globals v with
          | Some bid ->
              let ty =
                match Hashtbl.find_opt eng.tenv.globals v with
                | Some t -> t
                | None -> Tint
              in
              ({ p_block = bid; p_off = 0 }, ty)
          | None -> Value.fault "unbound variable %s" v))
  | Deref e -> (
      match eval eng th fr ~sid e with
      | VPtr p ->
          let ty =
            match Minic.Typecheck.type_of_exp fr.fr_env e with
            | Tptr t | Tarray (t, _) -> t
            | _ -> Tint (* int treated as address of int cells; loose *)
          in
          (p, ty)
      | v -> Value.fault "dereference of non-pointer %a" Value.pp v)
  | Index (base, idx) ->
      let p, bty = lval_addr_ty eng th fr ~sid base in
      let p, ety =
        (* indexing through a pointer variable loads the pointer first *)
        match bty with
        | Tptr t -> (
            on_mem eng th p ~write:false ~sid;
            match Mem.load eng.mem p with
            | VPtr q -> (q, t)
            | v -> Value.fault "indexing non-pointer %a" Value.pp v)
        | Tarray (t, _) -> (p, t)
        | t -> (p, t)
      in
      let i = Value.to_int (eval eng th fr ~sid idx) in
      let es = Layout.sizeof eng.layout ety in
      ({ p with p_off = p.p_off + (i * es) }, ety)
  | Field (base, f) ->
      let p, bty = lval_addr_ty eng th fr ~sid base in
      let sname =
        match bty with
        | Tstruct s -> s
        | t -> Value.fault "field access on %a" Minic.Ast.pp_ty t
      in
      let off, fty = Layout.field_offset eng.layout sname f in
      ({ p with p_off = p.p_off + off }, fty)
  | Arrow (e, f) -> (
      match eval eng th fr ~sid e with
      | VPtr p ->
          let sname =
            match Minic.Typecheck.type_of_exp fr.fr_env e with
            | Tptr (Tstruct s) -> s
            | t -> Value.fault "-> on %a" Minic.Ast.pp_ty t
          in
          let off, fty = Layout.field_offset eng.layout sname f in
          ({ p with p_off = p.p_off + off }, fty)
      | v -> Value.fault "-> on non-pointer %a" Value.pp v)

(* ------------------------------------------------------------------ *)
(* Record / replay plumbing *)

let charge_log_sync eng =
  match eng.recorder with
  | Some _ ->
      eng.stats.log_ticks_sync <- eng.stats.log_ticks_sync + eng.cfg.cost.c_log_sync;
      eng.cfg.cost.c_log_sync
  | None -> 0

let charge_log_weak eng =
  match eng.recorder with
  | Some _ ->
      eng.stats.log_ticks_weak <- eng.stats.log_ticks_weak + eng.cfg.cost.c_log_weak;
      eng.cfg.cost.c_log_weak
  | None -> 0

let charge_log_input eng words =
  match eng.recorder with
  | Some _ ->
      (* c_log_input ticks per four words, at least one tick *)
      let c = max 1 (eng.cfg.cost.c_log_input * words / 4) in
      eng.stats.log_ticks_input <- eng.stats.log_ticks_input + c;
      c
  | None -> 0

(* Block this thread until [check] holds (replay-turn gating). *)
let wait_turn eng ~what (th : thread) (check : unit -> bool) =
  while not (check ()) do
    set_status eng th (Blocked (BTurn what));
    th.turn_check <- Some check;
    block_here ();
    th.turn_check <- None
  done

(* ------------------------------------------------------------------ *)
(* Deterministic-execution arbitration (Kendo-style; see the mode's doc) *)

let det_mode eng = eng.mode = Deterministic

(* [th] holds the deterministic turn iff its (det_clock, tid) is the
   strict global minimum among non-excluded live threads. At most one
   thread holds the turn, so gated operations commit in a total order
   that is a function of the deterministic logical clocks only. *)
let det_min eng (th : thread) =
  Hashtbl.fold
    (fun _ (th' : thread) acc ->
      acc
      && (th' == th || th'.status = Done || th'.det_excluded
         || (th.det_clock, th.tid) < (th'.det_clock, th'.tid)))
    eng.threads true

(* forward references, tied after their definitions below *)
let det_ensure_reacquired_ref : (t -> thread -> unit) ref =
  ref (fun _ _ -> ())

let det_ensure_reacquired_fwd eng th = !det_ensure_reacquired_ref eng th

let det_process_dooms_ref : (t -> thread -> unit) ref = ref (fun _ _ -> ())
let det_process_dooms_fwd eng th = !det_process_dooms_ref eng th

let det_gate ?(reacquire = true) eng (th : thread) =
  if det_mode eng then begin
    while not (det_min eng th) do
      set_status eng th (Blocked (BTurn "det"));
      th.turn_check <- Some (fun () -> det_min eng th);
      block_here ();
      th.turn_check <- None
    done;
    (* this thread now holds the strict-minimum turn; only here may it
       change lock state. Stripping doomed locks at gate *entry* instead
       would release them at an arbitrary physical moment inside the
       contenders' retry window, making the next owner a race on the
       host schedule. *)
    det_process_dooms_fwd eng th;
    (* a preemption can strip this thread's lock while it is parked at
       the gate; no thread leaves a gate without its locks, so plain
       code never runs unprotected. [reacquire:false] (a mutex spin)
       defers this: taking the locks back mid-spin would hand them
       straight back to a thread that cannot use them — the spinner's
       clock trails the bumped contender's, so it would win every turn
       and ping-pong the lock forever *)
    if reacquire && th.reacquire <> [] then
      det_ensure_reacquired_fwd eng th
  end

(* a failed acquisition attempt under the turn bumps the logical clock by
   a fixed amount and yields — the retry count, and hence the final
   clock, is a deterministic function of the contending clocks *)
let det_retry_bump eng (th : thread) =
  th.det_clock <- th.det_clock + eng.cfg.cost.c_sync;
  step 1

(* deterministically park / unpark a thread around an intrinsic wait
   (cond/join/barrier/IO): parked threads leave the global-minimum rule *)
let det_park (th : thread) = th.det_excluded <- true

let det_unpark (th : thread) = th.det_excluded <- false


(* Wait for my turn for a sync op on [obj] during replay; no-op otherwise. *)
let gate_sync eng th (obj : K.addr) (op : Replay.Log.sync_op) =
  match eng.replayer with
  | None -> ()
  | Some r ->
      wait_turn eng th
        ~what:(Fmt.str "sync %a %a" K.pp_addr obj Replay.Log.pp_sync_op op)
        (fun () ->
          match Replay.Replayer.peek_sync r obj with
          | Some (op', p) -> op' = op && p = th.path
          | None ->
              (* beyond the log: unconstrained — but only on the final
                 segment of a streamed recording; mid-stream the op is
                 recorded in a later segment and must wait for it *)
              Replay.Replayer.unconstrained r)

let record_sync eng th (obj : K.addr) (op : Replay.Log.sync_op) =
  eng.stats.n_sync_ops <- eng.stats.n_sync_ops + 1;
  emit_ev eng th (Trace.Sync (op, obj));
  (match eng.recorder with
  | Some rc ->
      let t0 = ph_now eng in
      Replay.Recorder.rec_sync rc ~obj ~op ~tp:th.path;
      Replay.Recorder.maybe_seal rc ~now:eng.ticks;
      ph_add eng Phases.Recorder t0
  | None -> ());
  match eng.replayer with
  | Some r -> Replay.Replayer.advance_sync r obj
  | None -> ()

let gate_weak eng th (lock : weak_lock) =
  match eng.replayer with
  | None -> ()
  | Some r ->
      wait_turn eng th
        ~what:(Fmt.str "weak %a" pp_weak_lock lock)
        (fun () -> Replay.Replayer.weak_turn r lock ~tp:th.path)

let record_weak eng th (lock : weak_lock) ~(claim : Replay.Log.sclaim) =
  th.weak_acqs <- th.weak_acqs + 1;
  let rank = granularity_rank lock.wl_gran in
  eng.stats.n_weak_acq.(rank) <- eng.stats.n_weak_acq.(rank) + 1;
  emit_ev eng th (Trace.Weak_acquire lock);
  (match eng.recorder with
  | Some rc ->
      let t0 = ph_now eng in
      Replay.Recorder.rec_weak rc ~lock ~tp:th.path ~claim;
      Replay.Recorder.maybe_seal rc ~now:eng.ticks;
      ph_add eng Phases.Recorder t0
  | None -> ());
  match eng.replayer with
  | Some r ->
      (* the served claim is validated against the recorded one: a
         difference means the replaying binary instruments differently
         than the recording one did (drift), reported in the outcome *)
      Replay.Replayer.consume_weak r lock ~tp:th.path ~claim ()
  | None -> ()

(** The schedule-independent (origin-space) view of a claim, for logs. *)
let stable_claim eng (claim : WL.claim) : Replay.Log.sclaim =
  List.filter_map
    (fun (r : WL.range) ->
      match Mem.find_opt eng.mem r.WL.rg_block with
      | Some b ->
          Some
            {
              Replay.Log.sr_origin = b.Mem.b_origin;
              sr_lo = r.WL.rg_lo;
              sr_hi = r.WL.rg_hi;
              sr_write = r.WL.rg_write;
            }
      | None -> None)
    claim

let gate_syscall eng th =
  det_ensure_reacquired_fwd eng th;
  det_gate eng th;
  match eng.replayer with
  | None -> ()
  | Some r ->
      wait_turn eng th ~what:"syscall" (fun () ->
          match Replay.Replayer.peek_syscall r with
          | Some p -> p = th.path
          | None -> Replay.Replayer.unconstrained r)

let record_syscall eng th (values : int list) =
  trace eng "%a syscall [%a]" K.pp_tid_path th.path
    Fmt.(list ~sep:comma int)
    (Runtime.Listx.take 4 values);
  eng.stats.n_syscalls <- eng.stats.n_syscalls + 1;
  emit_ev eng th Trace.Syscall;
  (match eng.recorder with
  | Some rc ->
      let t0 = ph_now eng in
      Replay.Recorder.rec_input rc ~tp:th.path values;
      Replay.Recorder.maybe_seal rc ~now:eng.ticks;
      ph_add eng Phases.Recorder t0
  | None -> ());
  match eng.replayer with
  | Some r -> Replay.Replayer.advance_syscall r
  | None -> ()

let fire_sync eng th ev =
  match eng.hooks.on_sync with Some f -> f th.tid ev | None -> ()

(* ------------------------------------------------------------------ *)
(* Wake management *)

let enqueue eng (th : thread) =
  (* shortest queue; ties broken by lowest core id *)
  let best = ref 0 in
  for c = 1 to eng.cfg.cores - 1 do
    if List.length !(eng.queues.(c)) < List.length !(eng.queues.(!best)) then
      best := c
  done;
  th.core <- !best;
  eng.queues.(!best) := !(eng.queues.(!best)) @ [ th ]

let wake eng (th : thread) =
  match th.status with
  | Blocked r ->
      (* accumulate weak-lock contention time *)
      (match r with
      | BWeak (l, _) ->
          let rank = granularity_rank l.wl_gran in
          eng.stats.weak_block_ticks.(rank) <-
            eng.stats.weak_block_ticks.(rank) + (eng.ticks - th.blocked_since);
          emit_ev eng th (Trace.Weak_wake l)
      | _ -> ());
      if th.reacquire <> [] && not (det_mode eng) then
        (* a preempted owner resumes only after reacquiring its lock; in
           deterministic mode the owner reacquires in its own execution
           stream (det_ensure_reacquired) so it wakes normally *)
        set_status eng th (Blocked BReacq)
      else begin
        set_status eng th Runnable;
        enqueue eng th
      end
  | _ -> ()

let wake_tid eng tid =
  match Hashtbl.find_opt eng.threads tid with
  | Some th -> wake eng th
  | None -> ()

let self_block eng (th : thread) (reason : block_reason) =
  (* [blocked_since] lands before the status so [sched_index] reads the
     final deadline *)
  th.blocked_since <- eng.ticks;
  set_status eng th (Blocked reason);
  block_here ()


(* ------------------------------------------------------------------ *)
(* Synchronization builtins *)

let ptr_of eng th fr ~sid e =
  match eval eng th fr ~sid e with
  | Value.VPtr p -> p
  | v -> Value.fault "expected pointer argument, got %a" Value.pp v

let rec mutex_lock ?(spin = false) eng th (key : K.addr) =
  gate_sync eng th key SMutexAcq;
  if not spin then det_ensure_reacquired_fwd eng th;
  det_gate ~reacquire:(not spin) eng th;
  match Runtime.Sync.Mutex.acquire eng.mutexes key ~tid:th.tid with
  | `Acquired ->
      (* if a preemption stripped our region locks mid-spin, take them
         back before the code behind the mutex touches shared state *)
      det_ensure_reacquired_fwd eng th;
      trace eng "%a acq-mutex %a" K.pp_tid_path th.path K.pp_addr key;
      record_sync eng th key SMutexAcq;
      fire_sync eng th (SyAcquire key)
  | `Blocked when det_mode eng ->
      (* deterministic bump-and-retry (never a wake-list wait); the spin
         defers reacquisition of stripped locks — a spinner cannot use
         them, and holding them here deadlocks against the mutex owner *)
      det_retry_bump eng th;
      mutex_lock ~spin:true eng th key
  | `Blocked ->
      self_block eng th (BMutex key);
      mutex_lock eng th key

let mutex_unlock eng th (key : K.addr) =
  gate_sync eng th key SMutexRel;
  (* the release must land under the deterministic turn, like every
     other lock-state change (see [weak_enter]) *)
  det_ensure_reacquired_fwd eng th;
  det_gate eng th;
  (match Runtime.Sync.Mutex.release eng.mutexes key ~tid:th.tid with
  | `Released waiters -> List.iter (wake_tid eng) waiters
  | `Not_owner -> () (* unlocking a free/foreign mutex: tolerated, as glibc *));
  trace eng "%a rel-mutex %a" K.pp_tid_path th.path K.pp_addr key;
  record_sync eng th key SMutexRel;
  fire_sync eng th (SyRelease key)

let barrier_wait eng th (key : K.addr) =
  gate_sync eng th key SBarrierWait;
  det_ensure_reacquired_fwd eng th;
  det_gate eng th;
  record_sync eng th key SBarrierWait;
  fire_sync eng th (SyBarrierArrive key);
  match Runtime.Sync.Barrier.wait eng.barriers key ~tid:th.tid with
  | `Released tids ->
      fire_sync eng th (SyBarrier key);
      List.iter
        (fun tid ->
          if tid <> th.tid then begin
            (match Hashtbl.find_opt eng.threads tid with
            | Some t' -> fire_sync eng t' (SyBarrier key)
            | None -> ());
            (match Hashtbl.find_opt eng.threads tid with
            | Some t' -> det_unpark t'
            | None -> ());
            wake_tid eng tid
          end)
        tids
  | `Blocked ->
      det_process_dooms_fwd eng th;
      det_park th;
      self_block eng th (BBarrier key);
      det_unpark th;
      det_ensure_reacquired_fwd eng th

let rec cond_wait eng th (ckey : K.addr) (mkey : K.addr) =
  gate_sync eng th ckey SCondWait;
  det_ensure_reacquired_fwd eng th;
  det_gate eng th;
  record_sync eng th ckey SCondWait;
  (* release the mutex *)
  (match Runtime.Sync.Mutex.release eng.mutexes mkey ~tid:th.tid with
  | `Released waiters -> List.iter (wake_tid eng) waiters
  | `Not_owner -> ());
  fire_sync eng th (SyRelease mkey);
  Runtime.Sync.Cond.wait eng.conds ckey ~tid:th.tid;
  det_process_dooms_fwd eng th;
  det_park th;
  self_block eng th (BCond ckey);
  det_unpark th;
  det_ensure_reacquired_fwd eng th;
  fire_sync eng th (SyCondWake ckey);
  (* reacquire the mutex (recorded as a mutex acquisition) *)
  mutex_relock eng th mkey

and mutex_relock ?(spin = false) eng th (key : K.addr) =
  gate_sync eng th key SMutexAcq;
  if not spin then det_ensure_reacquired_fwd eng th;
  det_gate ~reacquire:(not spin) eng th;
  match Runtime.Sync.Mutex.acquire eng.mutexes key ~tid:th.tid with
  | `Acquired ->
      det_ensure_reacquired_fwd eng th;
      record_sync eng th key SMutexAcq;
      fire_sync eng th (SyAcquire key)
  | `Blocked when det_mode eng ->
      det_retry_bump eng th;
      mutex_relock ~spin:true eng th key
  | `Blocked ->
      self_block eng th (BMutex key);
      mutex_relock eng th key

let cond_signal eng th (key : K.addr) ~broadcast =
  let op : Replay.Log.sync_op =
    if broadcast then SCondBroadcast else SCondSignal
  in
  gate_sync eng th key op;
  det_ensure_reacquired_fwd eng th;
  det_gate eng th;
  record_sync eng th key op;
  fire_sync eng th (SyCondSignal key);
  if broadcast then
    List.iter (wake_tid eng) (Runtime.Sync.Cond.broadcast eng.conds key)
  else
    match Runtime.Sync.Cond.signal eng.conds key with
    | Some tid -> wake_tid eng tid
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Weak-lock regions (Section 2.3) *)

let claim_of_ranges eng th fr ~sid (ranges : warange list) : WL.claim =
  (* single left-to-right pass; if any range fails to evaluate to a
     same-block pair, fall back to the total claim (sound). The
     evaluation side effects (mem-op hooks) of the remaining ranges still
     happen, exactly as in a full pass. *)
  let failed = ref false in
  let rs =
    List.map
      (fun (r : warange) ->
        match (eval eng th fr ~sid r.wr_lo, eval eng th fr ~sid r.wr_hi) with
        | Value.VPtr lo, Value.VPtr hi when lo.p_block = hi.p_block ->
            {
              WL.rg_block = lo.p_block;
              rg_lo = min lo.p_off hi.p_off;
              rg_hi = max lo.p_off hi.p_off;
              rg_write = r.wr_write;
            }
        | _ ->
            failed := true;
            { WL.rg_block = 0; rg_lo = 0; rg_hi = 0; rg_write = false })
      ranges
  in
  if !failed then [] else rs

(* forward reference: [apply_forced_release] is defined below but the
   deterministic acquire path needs to preempt conflicting owners *)
let forced_release_fwd : (t -> thread -> weak_lock -> unit) ref =
  ref (fun _ _ _ -> ())

(* Replay: before this thread changes weak-lock state, re-apply its own
   pending forced events that are already due (recorded at or before the
   current step count, lock currently held). The step-boundary check
   cannot cover these — a blocked acquisition retries without passing a
   new boundary, so a forced release recorded between a reacquisition and
   the next acquisition (same step count) would otherwise slide after the
   acquisition and reorder conflicting accesses. Each application parks
   the thread until maintenance has reacquired in recorded order. *)
let drain_own_forced eng (th : thread) =
  match eng.replayer with
  | None -> ()
  | Some r ->
      let rec go () =
        match
          Replay.Replayer.pending_forced r th.path ~steps:th.steps
            ~acqs:th.weak_acqs
            ~holds:(fun l -> WL.holds eng.weak l ~tid:th.tid)
        with
        | Some lock ->
            !forced_release_fwd eng th lock;
            (* [apply_forced_release] parked us as [BReacq]; yield until
               the maintenance pass has taken the lock back *)
            if th.status <> Runnable then block_here ();
            go ()
        | None -> ()
      in
      go ()

let rec weak_acquire_one ?(det_retries = 0) eng th (lock : weak_lock)
    (claim : WL.claim) =
  drain_own_forced eng th;
  gate_weak eng th lock;
  det_gate eng th;
  match WL.acquire eng.weak lock ~tid:th.tid ~claim with
  | `Acquired ->
      trace eng "%a acq %a clk=%d" K.pp_tid_path th.path pp_weak_lock lock
        th.det_clock;
      record_weak eng th lock ~claim:(stable_claim eng claim);
      fire_sync eng th (SyWeakAcq lock)
  | `Blocked owners when det_mode eng ->
      (* Deterministic bump-and-retry; after a fixed number of failed
         turns the conflicting owner is preempted — the deterministic
         analogue of the timeout of Section 2.3. A deterministically
         parked (excluded) owner is stripped immediately; a running or
         gate-parked one is "doomed" and strips itself at its next gate,
         keeping the preemption point inside the owner's own
         deterministic instruction stream. Immune (recovering) owners are
         left alone at first — but only up to a second, larger threshold:
         an immune owner that still holds the lock after that many turns
         is almost certainly blocked on program synchronization (a mutex)
         that this contender transitively holds, and will never release
         voluntarily — e.g. T1 holds m, wants L; T2 immune-holds L, spins
         on m. Breaking the immunity there restores liveness while still
         letting normal recoveries finish undisturbed. *)
      if det_retries >= 50 then
        List.iter
          (fun otid ->
            if otid <> th.tid then
              match Hashtbl.find_opt eng.threads otid with
              | Some owner ->
                  let immune = List.mem lock owner.det_immune in
                  if (not immune) || det_retries >= 300 then begin
                    if immune then
                      owner.det_immune <-
                        List.filter (fun l -> l <> lock) owner.det_immune;
                    if owner.det_excluded then
                      !forced_release_fwd eng owner lock
                    else if not (List.mem lock owner.det_doomed) then
                      owner.det_doomed <- lock :: owner.det_doomed
                  end
              | None -> ())
          owners;
      det_retry_bump eng th;
      weak_acquire_one ~det_retries:(det_retries + 1) eng th lock claim
  | `Blocked _owners ->
      trace eng "%a blocked-on %a" K.pp_tid_path th.path pp_weak_lock lock;
      emit_ev eng th
        (Trace.Weak_block (lock, WL.waiter_count eng.weak lock));
      self_block eng th (BWeak (lock, claim));
      weak_acquire_one eng th lock claim

(* Deterministic reacquisition in the owner's own execution stream: a
   preempted owner takes its lock back through the same turn-gated,
   retry-bumped protocol as any acquisition, so the whole recovery is a
   function of the logical clocks (never of wall ticks). Call on every
   det-mode resume path and before gated operations. *)
let det_ensure_reacquired eng th =
  (* the guard makes this reentrant-safe: the acquisition below passes a
     det gate whose exit would otherwise call back in here (the entry is
     still listed) and take the same lock a second time — a double hold
     under two claims that can then block against itself forever *)
  if det_mode eng && not th.det_reacquiring then begin
    th.det_reacquiring <- true;
    Fun.protect
      ~finally:(fun () -> th.det_reacquiring <- false)
      (fun () ->
        while th.reacquire <> [] do
          match th.reacquire with
          | [] -> ()
          | (lock, claim) :: rest ->
              if not (WL.holds eng.weak lock ~tid:th.tid) then
                weak_acquire_one eng th lock claim;
              th.det_immune <- lock :: th.det_immune;
              set_reacquire eng th rest
        done)
  end

let () = det_ensure_reacquired_ref := det_ensure_reacquired

(* [drop_immune:false] when the caller already swept the whole batch out
   of [det_immune] in one pass — the per-lock filter here would rescan
   the list once per released lock *)
let weak_release_one ?(drop_immune = true) eng th (lock : weak_lock) =
  trace eng "%a rel %a clk=%d" K.pp_tid_path th.path pp_weak_lock lock
    th.det_clock;
  if drop_immune && th.det_immune <> [] then
    th.det_immune <- List.filter (fun l -> l <> lock) th.det_immune;
  emit_ev eng th (Trace.Weak_release lock);
  List.iter (wake_tid eng) (WL.release eng.weak lock ~tid:th.tid);
  fire_sync eng th (SyWeakRel lock)

(* Release a batch of region locks: charge all step costs first, then
   perform the releases with no step in between. In deterministic mode
   the whole batch lands under one strict-minimum turn — a release that
   landed at an arbitrary physical point inside the contenders' retry
   window would hand the lock to whichever spinner's attempt physically
   follows it, a race on the host schedule. *)
(* membership index over a batch of locks: the reacquire-list filters
   below test each pending entry against the whole batch, so give the
   batch O(1) lookups instead of rescanning the list per entry *)
let lock_set_of (ls : weak_lock list) : (weak_lock, unit) Hashtbl.t =
  let s = Hashtbl.create (2 * List.length ls) in
  List.iter (fun l -> Hashtbl.replace s l ()) ls;
  s

let release_batch eng th (ls : weak_lock list) =
  let cost = eng.cfg.cost in
  List.iter
    (fun _ ->
      eng.stats.weak_op_ticks <- eng.stats.weak_op_ticks + cost.c_weak_op;
      step cost.c_weak_op)
    ls;
  if ls <> [] then begin
    det_gate ~reacquire:false eng th;
    let in_batch = lazy (lock_set_of ls) in
    (* a doom processed at this very gate may have stripped one of the
       locks we are about to release; cancel its reacquisition — we were
       freeing it anyway, and a stale entry would be reacquired at a
       later gate, outside the region, and then never released *)
    if th.reacquire <> [] then
      set_reacquire eng th
        (List.filter
           (fun (l, _) -> not (Hashtbl.mem (Lazy.force in_batch) l))
           th.reacquire);
    (* sweep the whole batch out of the immunity list in one pass rather
       than one rescan per released lock *)
    if th.det_immune <> [] then
      th.det_immune <-
        List.filter
          (fun l -> not (Hashtbl.mem (Lazy.force in_batch) l))
          th.det_immune;
    List.iter (fun l -> weak_release_one ~drop_immune:false eng th l) ls
  end

(* enter an instrumented region: suspend the enclosing region's locks,
   acquire ours in canonical order.

   The deterministic gate covers the *releases* (the suspension of the
   outer region), not just the acquisitions: in deterministic mode every
   lock-state change must land while its thread holds the strict
   global-minimum turn, or the winner of a freed lock becomes whichever
   spinner's retry physically follows the release — a race on the host
   schedule, not a function of the logical clocks. *)
let weak_enter eng th fr ~sid (acqs : weak_acq list) =
  let cost = eng.cfg.cost in
  (match th.regions with
  | { rg_acqs = _ :: _ } :: _ -> det_ensure_reacquired eng th
  | _ -> ());
  (* suspend outer region *)
  (match th.regions with
  | { rg_acqs } :: _ -> release_batch eng th (List.map fst rg_acqs)
  | [] -> ());
  (* claims are evaluated in source order (the hook-visible side effects
     must not move), then permuted into canonical lock order. The
     permutation depends only on the statement's static lock list, so it
     is computed once per sid. [List.sort] is stable, so the cached
     stable permutation reproduces it exactly. *)
  let resolved =
    List.map (fun a -> (a.wa_lock, claim_of_ranges eng th fr ~sid a.wa_ranges)) acqs
  in
  let resolved =
    match resolved with
    | [] | [ _ ] -> resolved
    | _ ->
        let arr = Array.of_list resolved in
        let n = Array.length arr in
        let perm =
          match Hashtbl.find_opt eng.sid_sort_perm sid with
          | Some p when Array.length p = n -> p
          | _ ->
              let idx = Array.init n Fun.id in
              let locks = Array.map fst arr in
              let sorted =
                List.stable_sort
                  (fun i j -> compare_weak_lock locks.(i) locks.(j))
                  (Array.to_list idx)
              in
              let p = Array.of_list sorted in
              Hashtbl.replace eng.sid_sort_perm sid p;
              p
        in
        Array.to_list (Array.map (fun i -> arr.(i)) perm)
  in
  List.iter
    (fun ((l : weak_lock), claim) ->
      let c =
        cost.c_weak_op + (List.length claim * cost.c_range) + charge_log_weak eng
      in
      eng.stats.weak_op_ticks <-
        eng.stats.weak_op_ticks + cost.c_weak_op
        + (List.length claim * cost.c_range);
      step c;
      weak_acquire_one eng th l claim)
    resolved;
  emit_ev eng th (Trace.Region_enter (List.length resolved));
  th.regions <- { rg_acqs = resolved } :: th.regions

(* exit a region: release our locks, reacquire the suspended outer ones.
   Gated for the same reason as [weak_enter]: the releases must happen
   under the deterministic turn. *)
let weak_exit eng th (locks : weak_lock list) =
  let cost = eng.cfg.cost in
  (* a lock stripped from the exiting region and not yet reacquired is
     no longer needed: drop the pending reacquisition rather than taking
     the lock back only to free it — a stale entry that survived the
     exit would later be reacquired outside any region and never
     released (strips only ever target held, i.e. innermost-region,
     locks, so membership in the exiting region is the precise test) *)
  (if th.reacquire <> [] then
     let exiting =
       match th.regions with
       | { rg_acqs } :: _ -> lock_set_of (List.map fst rg_acqs)
       | [] -> lock_set_of locks
     in
     set_reacquire eng th
       (List.filter
          (fun (l, _) -> not (Hashtbl.mem exiting l))
          th.reacquire));
  det_ensure_reacquired eng th;
  emit_ev eng th
    (Trace.Region_exit
       (match th.regions with
       | { rg_acqs } :: _ -> List.length rg_acqs
       | [] -> List.length locks));
  (match th.regions with
  | { rg_acqs } :: rest ->
      release_batch eng th (List.map fst rg_acqs);
      th.regions <- rest;
      (* reacquire the now-innermost region's locks *)
      (match th.regions with
      | { rg_acqs } :: _ ->
          List.iter
            (fun (l, claim) ->
              let c = cost.c_weak_op + charge_log_weak eng in
              eng.stats.weak_op_ticks <- eng.stats.weak_op_ticks + cost.c_weak_op;
              step c;
              weak_acquire_one eng th l claim)
            rg_acqs
      | [] -> ())
  | [] ->
      (* unbalanced exit: tolerate (can happen via break/return paths if
         the instrumenter missed a path; release defensively) *)
      if locks <> [] then begin
        det_gate ~reacquire:false eng th;
        (if th.det_immune <> [] then
           let in_batch = lock_set_of locks in
           th.det_immune <-
             List.filter
               (fun l -> not (Hashtbl.mem in_batch l))
               th.det_immune);
        List.iter (fun l -> weak_release_one ~drop_immune:false eng th l) locks
      end)

(* Forced release (timeout-preemption or replayed forced event), applied
   engine-side: strip [lock] from [owner], remember it for reacquisition. *)
let apply_forced_release eng (owner : thread) (lock : weak_lock) =
  if WL.holds eng.weak lock ~tid:owner.tid then begin
    trace eng "forced-release %a from %a at steps=%d" pp_weak_lock lock
      K.pp_tid_path owner.path owner.steps;
    eng.stats.n_forced <- eng.stats.n_forced + 1;
    emit_ev eng owner (Trace.Weak_forced lock);
    (match eng.recorder with
    | Some rc ->
        let t0 = ph_now eng in
        Replay.Recorder.rec_forced rc ~owner:owner.path ~steps:owner.steps
          ~acqs:owner.weak_acqs ~lock;
        Replay.Recorder.maybe_seal rc ~now:eng.ticks;
        ph_add eng Phases.Recorder t0
    | None -> ());
    (* the stripped owner's work so far happens-before the next
       acquisition: emit the release edge for dynamic analyses *)
    fire_sync eng owner (SyWeakRel lock);
    let woken =
      (* handoff orders recovery while recording; replay follows the log
         and deterministic mode follows the global-minimum turn instead *)
      WL.force_release
        ~handoff:(eng.replayer = None && not (det_mode eng))
        eng.weak lock ~owner:owner.tid
    in
    (* find the claim in the owner's regions so reacquisition matches *)
    let claim =
      List.fold_left
        (fun acc r ->
          match acc with
          | Some _ -> acc
          | None ->
              List.find_opt (fun (l, _) -> l = lock) r.rg_acqs
              |> Option.map snd)
        None owner.regions
      |> Option.value ~default:[]
    in
    if not (List.exists (fun (l, _) -> l = lock) owner.reacquire) then
      set_reacquire eng owner (owner.reacquire @ [ (lock, claim) ]);
    (* a running owner parks until it has the lock back; one blocked on
       program synchronization keeps waiting there and reacquires when
       woken (see [wake]). In deterministic mode the owner stripped
       itself at one of its own gates and reacquires at that gate's exit
       — parking it here would orphan it (no maintenance path wakes a
       det-mode BReacq). *)
    if owner.status = Runnable && not (det_mode eng) then begin
      owner.blocked_since <- eng.ticks;
      set_status eng owner (Blocked BReacq)
    end;
    List.iter (wake_tid eng) woken
  end

let () = forced_release_fwd := apply_forced_release

(* self-strip doomed locks at a deterministic point in this thread's own
   instruction stream (det_gate entry / park); the gate-exit
   reacquisition then restores them with immunity *)
let det_process_dooms eng (th : thread) =
  if th.det_doomed <> [] then begin
    let dooms = th.det_doomed in
    th.det_doomed <- [];
    List.iter
      (fun lock ->
        if
          WL.holds eng.weak lock ~tid:th.tid
          && not (List.mem lock th.det_immune)
        then apply_forced_release eng th lock)
      dooms
  end

let () = det_process_dooms_ref := det_process_dooms


(* ------------------------------------------------------------------ *)
(* System calls *)

exception Return_value of Value.t
exception Brk
exception Cnt

let next_io_req (th : thread) ~max =
  let seq = th.io_seq in
  th.io_seq <- seq + 1;
  { Iomodel.rq_tid_path = th.path; rq_seq = seq; rq_max = max }

(* [input()] *)
let sys_input eng th : Value.t =
  gate_syscall eng th;
  let v =
    match eng.replayer with
    | Some r -> (
        match Replay.Replayer.take_input r th.path with
        | Some [ v ] -> v
        | Some _ | None ->
            emit_ev eng th Trace.Replay_miss;
            eng.io.io_input (next_io_req th ~max:0))
    | None -> eng.io.io_input (next_io_req th ~max:0)
  in
  record_syscall eng th [ v ];
  step (eng.cfg.cost.c_syscall + charge_log_input eng 1);
  VInt v

(* [output(v)] *)
let sys_output eng th (v : int) : unit =
  gate_syscall eng th;
  (* every syscall records one burst (empty for output) — replay must
     consume it to keep the per-thread input stream aligned *)
  (match eng.replayer with
  | Some r -> ignore (Replay.Replayer.take_input r th.path)
  | None -> ());
  record_syscall eng th [];
  eng.outputs <- (th.path, v) :: eng.outputs;
  step (eng.cfg.cost.c_syscall + charge_log_input eng 0)

(* [net_read(buf, max)] / [file_read(buf, max)] *)
let sys_read eng th fr ~sid ~(net : bool) (buf_e : exp) (max_e : exp) : Value.t
    =
  let buf = ptr_of eng th fr ~sid buf_e in
  let maxn = Value.to_int (eval eng th fr ~sid max_e) in
  (* latency: only when not replaying (replay feeds input directly) *)
  let latency = if net then eng.cfg.cost.l_net else eng.cfg.cost.l_file in
  (* Latency is wall-time emulation: replay feeds recorded input
     directly, and deterministic execution must not let real time
     influence gate ordering (a thread parked in I/O leaves the
     global-minimum rule, so its return must not race the clock). *)
  (if eng.replayer = None && not (det_mode eng) then begin
     (* [blocked_since] deliberately untouched: IO parks never fed the
        weak-timeout clock, and the wheel must mirror that *)
     set_status eng th (Blocked (BIO (eng.ticks + latency)));
     block_here ()
   end);
  gate_syscall eng th;
  let bytes =
    match eng.replayer with
    | Some r -> (
        match Replay.Replayer.take_input r th.path with
        | Some vs -> vs
        | None ->
            emit_ev eng th Trace.Replay_miss;
            [])
    | None -> eng.io.io_read (next_io_req th ~max:maxn)
  in
  let bytes = Runtime.Listx.take maxn bytes in
  record_syscall eng th bytes;
  step (eng.cfg.cost.c_syscall + charge_log_input eng (List.length bytes));
  List.iteri
    (fun i b ->
      let p = { buf with Value.p_off = buf.Value.p_off + i } in
      on_mem eng th p ~write:true ~sid;
      Mem.store eng.mem p (VInt b))
    bytes;
  VInt (List.length bytes)

(* ------------------------------------------------------------------ *)
(* Function & statement execution *)

let layout_of (eng : t) (fd : fundec) :
    (string, int * ty) Hashtbl.t * int =
  match Hashtbl.find_opt eng.flayouts fd.f_name with
  | Some l -> l
  | None ->
      let offsets = Hashtbl.create 8 in
      let off = ref 0 in
      List.iter
        (fun (v : var_decl) ->
          Hashtbl.replace offsets v.v_name (!off, v.v_ty);
          off := !off + max 1 (Layout.sizeof eng.layout v.v_ty))
        (fd.f_params @ fd.f_locals);
      let l = (offsets, !off) in
      Hashtbl.replace eng.flayouts fd.f_name l;
      l

let fun_env_of eng (fd : fundec) =
  match Hashtbl.find_opt eng.fenvs fd.f_name with
  | Some e -> e
  | None ->
      let e = Minic.Typecheck.fun_env eng.tenv fd in
      Hashtbl.replace eng.fenvs fd.f_name e;
      e

let rec exec_fun eng th (fname : string) (args : Value.t list) : Value.t =
  let fd =
    match Hashtbl.find_opt eng.tenv.funs fname with
    | Some fd -> fd
    | None -> Value.fault "call to undefined function %s" fname
  in
  (match eng.hooks.on_enter_fun with Some f -> f th.tid fname | None -> ());
  th.call_stack <- fname :: th.call_stack;
  let offsets, size = layout_of eng fd in
  let origin = K.OFrame (th.path, th.frame_seq) in
  th.frame_seq <- th.frame_seq + 1;
  let blk = Mem.alloc eng.mem origin size in
  let fr =
    { fr_fd = fd; fr_block = blk.Mem.b_id; fr_offsets = offsets;
      fr_env = fun_env_of eng fd }
  in
  List.iteri
    (fun i (p : var_decl) ->
      match (List.nth_opt args i, Hashtbl.find_opt offsets p.v_name) with
      | Some v, Some (off, _) ->
          Mem.store eng.mem { Value.p_block = blk.Mem.b_id; p_off = off } v
      | _ -> ())
    fd.f_params;
  let region_depth = List.length th.regions in
  let ret =
    try
      compiled_body eng fd th fr;
      Value.zero
    with Return_value v -> v
  in
  (* unwind instrumented regions opened in this frame (a [return] inside a
     weak-lock region skips the WeakExit statements): release the
     innermost region's locks, drop this frame's regions, and restore the
     caller's suspended region if any was uncovered *)
  if List.length th.regions > region_depth then begin
    (match th.regions with
    | { rg_acqs } :: _ ->
        List.iter (fun (l, _) -> weak_release_one eng th l) rg_acqs
    | [] -> ());
    let rec drop rs =
      if List.length rs > region_depth then drop (List.tl rs) else rs
    in
    th.regions <- drop th.regions;
    match th.regions with
    | { rg_acqs } :: _ ->
        List.iter
          (fun (l, claim) ->
            let c = eng.cfg.cost.c_weak_op + charge_log_weak eng in
            eng.stats.weak_op_ticks <-
              eng.stats.weak_op_ticks + eng.cfg.cost.c_weak_op;
            step c;
            weak_acquire_one eng th l claim)
          rg_acqs
    | [] -> ()
  end;
  Mem.free eng.mem blk.Mem.b_id;
  th.call_stack <- List.tl th.call_stack;
  (match eng.hooks.on_exit_fun with Some f -> f th.tid fname | None -> ());
  ret

and exec_block eng th fr (b : block) : unit =
  List.iter (exec_stmt eng th fr) b

and exec_stmt eng th fr (s : stmt) : unit =
  let cost = eng.cfg.cost in
  (match eng.hooks.on_stmt with Some f -> f th.tid s.sid | None -> ());
  match s.skind with
  | Assign (lv, e) ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      step cost.c_stmt;
      let v = eval eng th fr ~sid:s.sid e in
      (* separate scheduling point between the read(s) and the write: this
         is what makes load-store races observable *)
      step 1;
      let p = lval_addr eng th fr ~sid:s.sid lv in
      on_mem eng th p ~write:true ~sid:s.sid;
      Mem.store eng.mem p v
  | Call (ret, tgt, args) ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      step cost.c_stmt;
      let fname =
        match tgt with
        | Direct f -> f
        | ViaPtr e -> (
            match eval eng th fr ~sid:s.sid e with
            | Value.VFun f -> f
            | Value.VPtr _ | Value.VInt _ ->
                Value.fault "indirect call through non-function value")
      in
      let argv = List.map (eval eng th fr ~sid:s.sid) args in
      let v = exec_fun eng th fname argv in
      Option.iter
        (fun lv ->
          let p = lval_addr eng th fr ~sid:s.sid lv in
          on_mem eng th p ~write:true ~sid:s.sid;
          Mem.store eng.mem p v)
        ret
  | Builtin (ret, b, args) ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      exec_builtin eng th fr s ret b args
  | If (c, b1, b2) ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      step cost.c_stmt;
      if Value.truthy (eval eng th fr ~sid:s.sid c) then
        exec_block eng th fr b1
      else exec_block eng th fr b2
  | While (c, body, li) ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      (match eng.hooks.on_loop_enter with
      | Some f -> f th.tid li.lid
      | None -> ());
      (try
         while
           step cost.c_stmt;
           Value.truthy (eval eng th fr ~sid:s.sid c)
         do
           (match eng.hooks.on_loop_iter with
           | Some f -> f th.tid li.lid
           | None -> ());
           try exec_block eng th fr body
           with Cnt ->
             (* continue in a for-loop still executes the increment *)
             Option.iter (exec_stmt eng th fr) li.l_step
         done
       with Brk -> ());
      (match eng.hooks.on_loop_exit with
      | Some f -> f th.tid li.lid
      | None -> ())
  | Return e ->
      eng.stats.n_stmts <- eng.stats.n_stmts + 1;
      step cost.c_stmt;
      let v =
        match e with
        | Some e -> eval eng th fr ~sid:s.sid e
        | None -> Value.zero
      in
      (* leaving the function must close any open instrumented regions
         belonging to this frame; the instrumenter guards returns, but be
         defensive about regions opened in this frame *)
      raise (Return_value v)
  | Break -> step 1; raise Brk
  | Continue -> step 1; raise Cnt
  | WeakEnter acqs -> weak_enter eng th fr ~sid:s.sid acqs
  | WeakExit locks -> weak_exit eng th locks

and exec_builtin eng th fr (s : stmt) ret (b : builtin) (args : exp list) :
    unit =
  let cost = eng.cfg.cost in
  let sid = s.sid in
  let store_ret v =
    Option.iter
      (fun lv ->
        let p = lval_addr eng th fr ~sid lv in
        on_mem eng th p ~write:true ~sid;
        Mem.store eng.mem p v)
      ret
  in
  let sync_key e = Mem.addr_key eng.mem (ptr_of eng th fr ~sid e) in
  match (b, args) with
  | Spawn, target :: rest ->
      step cost.l_spawn;
      let fname =
        match eval eng th fr ~sid target with
        | Value.VFun f -> f
        | _ -> Value.fault "spawn of non-function"
      in
      let argv = List.map (eval eng th fr ~sid) rest in
      let child_path = th.path @ [ th.spawn_seq ] in
      th.spawn_seq <- th.spawn_seq + 1;
      let child = new_thread eng child_path in
      child.det_clock <- th.det_clock;
      child.body <-
        Some
          (fun () ->
            fire_sync eng child SyThreadStart;
            ignore (exec_fun eng child fname argv));
      fire_sync eng th (SySpawn child.tid);
      enqueue eng child;
      store_ret (VInt child.tid)
  | Join, [ e ] ->
      step cost.c_sync;
      let target = Value.to_int (eval eng th fr ~sid e) in
      let rec wait () =
        match Hashtbl.find_opt eng.threads target with
        | Some t' when t'.status <> Done ->
            det_process_dooms_fwd eng th;
            det_park th;
            self_block eng th (BJoin target);
            det_unpark th;
            det_ensure_reacquired_fwd eng th;
            wait ()
        | _ -> ()
      in
      wait ();
      fire_sync eng th (SyJoin target)
  | MutexLock, [ e ] ->
      step (cost.c_sync + charge_log_sync eng);
      mutex_lock eng th (sync_key e)
  | MutexUnlock, [ e ] ->
      step (cost.c_sync + charge_log_sync eng);
      mutex_unlock eng th (sync_key e)
  | BarrierInit, [ e; n ] ->
      step (cost.c_sync + charge_log_sync eng);
      let key = sync_key e in
      gate_sync eng th key SBarrierInit;
      record_sync eng th key SBarrierInit;
      Runtime.Sync.Barrier.init eng.barriers key
        ~count:(Value.to_int (eval eng th fr ~sid n))
  | BarrierWait, [ e ] ->
      step (cost.c_sync + charge_log_sync eng);
      barrier_wait eng th (sync_key e)
  | CondWait, [ c; m ] ->
      step (cost.c_sync + charge_log_sync eng);
      cond_wait eng th (sync_key c) (sync_key m)
  | CondSignal, [ c ] ->
      step (cost.c_sync + charge_log_sync eng);
      cond_signal eng th (sync_key c) ~broadcast:false
  | CondBroadcast, [ c ] ->
      step (cost.c_sync + charge_log_sync eng);
      cond_signal eng th (sync_key c) ~broadcast:true
  | Input, [] -> store_ret (sys_input eng th)
  | Output, [ e ] ->
      let v = Value.to_int (eval eng th fr ~sid e) in
      sys_output eng th v
  | NetRead, [ buf; maxn ] ->
      store_ret (sys_read eng th fr ~sid ~net:true buf maxn)
  | FileRead, [ buf; maxn ] ->
      store_ret (sys_read eng th fr ~sid ~net:false buf maxn)
  | Malloc, [ n ] ->
      step cost.c_stmt;
      let size = Value.to_int (eval eng th fr ~sid n) in
      let origin = K.OHeap (th.path, th.alloc_seq) in
      th.alloc_seq <- th.alloc_seq + 1;
      let blk = Mem.alloc eng.mem origin (max 1 size) in
      store_ret (VPtr { Value.p_block = blk.Mem.b_id; p_off = 0 })
  | Free, [ e ] ->
      step cost.c_stmt;
      (match eval eng th fr ~sid e with
      | Value.VPtr p -> Mem.free eng.mem p.Value.p_block
      | _ -> ())
  | Yield, [] -> step 1
  | Exit, [ e ] ->
      step cost.c_stmt;
      raise (Program_exit (Value.to_int (eval eng th fr ~sid e)))
  | _ ->
      Value.fault "builtin %s: bad arity" (builtin_name b)

(* ------------------------------------------------------------------ *)
(* Closure compilation.

   Each function body is staged once, on its first call, into a tree of
   closures with variable offsets, field offsets, element sizes, and
   static lvalue types resolved at compile time. The compiled code
   performs exactly the same [step] effects, memory-hook events, loads,
   stores, and faults in exactly the same order as the interpreted
   [exec_stmt]/[eval] above — it only skips the repeated AST dispatch
   and the per-access string-keyed table lookups, which dominate the
   per-statement cost of the tree walker. Any node the compiler cannot
   resolve statically falls back to the interpreted evaluator for that
   node, so compilation never changes observable behavior (the golden
   tick pins and the record/replay determinism suites hold the two
   implementations to the same trace). *)

and compiled_body eng (fd : fundec) : thread -> frame -> unit =
  match Hashtbl.find_opt eng.cbodies fd.f_name with
  | Some cb -> cb
  | None ->
      let cb = compile_block eng fd fd.f_body in
      Hashtbl.replace eng.cbodies fd.f_name cb;
      cb

and compile_block eng fd (b : block) : thread -> frame -> unit =
  match List.map (compile_stmt eng fd) b with
  | [] -> fun _ _ -> ()
  | [ c ] -> c
  | cs -> fun th fr -> List.iter (fun c -> c th fr) cs

and compile_stmt eng fd (s : stmt) : thread -> frame -> unit =
  match compile_stmt_unsafe eng fd s with
  | c -> c
  | exception _ -> fun th fr -> exec_stmt eng th fr s

and compile_stmt_unsafe eng fd (s : stmt) : thread -> frame -> unit =
  let offsets, _ = layout_of eng fd in
  let env = fun_env_of eng fd in
  let sid = s.sid in
  let cost = eng.cfg.cost in
  let on_stmt th =
    match eng.hooks.on_stmt with Some f -> f th.tid sid | None -> ()
  in
  match s.skind with
  | Assign (lv, e) ->
      let ce = compile_exp eng ~offsets ~env ~sid e in
      let caddr, _ = compile_lval eng ~offsets ~env ~sid lv in
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        step cost.c_stmt;
        let v = ce th fr in
        (* separate scheduling point between the read(s) and the write,
           as in [exec_stmt] *)
        step 1;
        let p = caddr th fr in
        on_mem eng th p ~write:true ~sid;
        Mem.store eng.mem p v
  | Call (ret, tgt, args) ->
      let ctgt =
        match tgt with
        | Direct f -> Either.Left f
        | ViaPtr e -> Either.Right (compile_exp eng ~offsets ~env ~sid e)
      in
      let cargs = List.map (compile_exp eng ~offsets ~env ~sid) args in
      let cret =
        Option.map
          (fun lv -> fst (compile_lval eng ~offsets ~env ~sid lv))
          ret
      in
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        step cost.c_stmt;
        let fname =
          match ctgt with
          | Either.Left f -> f
          | Either.Right ce -> (
              match ce th fr with
              | Value.VFun f -> f
              | Value.VPtr _ | Value.VInt _ ->
                  Value.fault "indirect call through non-function value")
        in
        let argv = List.map (fun c -> c th fr) cargs in
        let v = exec_fun eng th fname argv in
        (match cret with
        | Some caddr ->
            let p = caddr th fr in
            on_mem eng th p ~write:true ~sid;
            Mem.store eng.mem p v
        | None -> ())
  | Builtin (ret, b, args) ->
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        exec_builtin eng th fr s ret b args
  | If (c, b1, b2) ->
      let cc = compile_exp eng ~offsets ~env ~sid c in
      let cb1 = compile_block eng fd b1 in
      let cb2 = compile_block eng fd b2 in
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        step cost.c_stmt;
        if Value.truthy (cc th fr) then cb1 th fr else cb2 th fr
  | While (c, body, li) ->
      let cc = compile_exp eng ~offsets ~env ~sid c in
      let cbody = compile_block eng fd body in
      let cstep = Option.map (compile_stmt eng fd) li.l_step in
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        (match eng.hooks.on_loop_enter with
        | Some f -> f th.tid li.lid
        | None -> ());
        (try
           while
             step cost.c_stmt;
             Value.truthy (cc th fr)
           do
             (match eng.hooks.on_loop_iter with
             | Some f -> f th.tid li.lid
             | None -> ());
             try cbody th fr
             with Cnt ->
               (* continue in a for-loop still executes the increment *)
               Option.iter (fun c -> c th fr) cstep
           done
         with Brk -> ());
        (match eng.hooks.on_loop_exit with
        | Some f -> f th.tid li.lid
        | None -> ())
  | Return e ->
      let ce = Option.map (compile_exp eng ~offsets ~env ~sid) e in
      fun th fr ->
        on_stmt th;
        eng.stats.n_stmts <- eng.stats.n_stmts + 1;
        step cost.c_stmt;
        let v = match ce with Some c -> c th fr | None -> Value.zero in
        raise (Return_value v)
  | Break ->
      fun th _fr ->
        on_stmt th;
        step 1;
        raise Brk
  | Continue ->
      fun th _fr ->
        on_stmt th;
        step 1;
        raise Cnt
  | WeakEnter acqs ->
      fun th fr ->
        on_stmt th;
        weak_enter eng th fr ~sid acqs
  | WeakExit locks ->
      fun th _fr ->
        on_stmt th;
        weak_exit eng th locks

and compile_exp eng ~offsets ~env ~sid (e : exp) : thread -> frame -> Value.t
    =
  match compile_exp_unsafe eng ~offsets ~env ~sid e with
  | c -> c
  | exception _ -> fun th fr -> eval eng th fr ~sid e

and compile_exp_unsafe eng ~offsets ~env ~sid (e : exp) :
    thread -> frame -> Value.t =
  match e with
  | Const n ->
      let v = Value.VInt n in
      fun _ _ -> v
  | Lval (Var v) -> (
      match Hashtbl.find_opt offsets v with
      | Some (off, Tarray _) ->
          fun _ fr -> VPtr { Value.p_block = fr.fr_block; p_off = off }
      | Some (off, _) ->
          fun th fr ->
            let p = { Value.p_block = fr.fr_block; p_off = off } in
            on_mem eng th p ~write:false ~sid;
            Mem.load eng.mem p
      | None ->
          if Hashtbl.mem eng.tenv.funs v then (
            let r = Value.VFun v in
            fun _ _ -> r)
          else (
            match Hashtbl.find_opt eng.globals v with
            | Some bid -> (
                match Hashtbl.find_opt eng.tenv.globals v with
                | Some (Tarray _) ->
                    let r = Value.VPtr { Value.p_block = bid; p_off = 0 } in
                    fun _ _ -> r
                | _ ->
                    let p = { Value.p_block = bid; p_off = 0 } in
                    fun th _ ->
                      on_mem eng th p ~write:false ~sid;
                      Mem.load eng.mem p)
            | None -> fun _ _ -> Value.fault "unbound variable %s" v))
  | Lval lv -> (
      (* arrays decay to their address in expression position *)
      let caddr, ty = compile_lval eng ~offsets ~env ~sid lv in
      match ty with
      | Tarray _ -> fun th fr -> VPtr (caddr th fr)
      | _ ->
          fun th fr ->
            let p = caddr th fr in
            on_mem eng th p ~write:false ~sid;
            Mem.load eng.mem p)
  | AddrOf (Var v)
    when (not (Hashtbl.mem offsets v)) && Hashtbl.mem eng.tenv.funs v ->
      let r = Value.VFun v in
      fun _ _ -> r
  | AddrOf lv ->
      let caddr, _ = compile_lval eng ~offsets ~env ~sid lv in
      fun th fr -> VPtr (caddr th fr)
  | Unop (op, e) -> (
      let ce = compile_exp eng ~offsets ~env ~sid e in
      match op with
      | Neg -> fun th fr -> VInt (-Value.to_int (ce th fr))
      | LNot -> fun th fr -> VInt (if Value.truthy (ce th fr) then 0 else 1)
      | BNot -> fun th fr -> VInt (lnot (Value.to_int (ce th fr))))
  | Binop (LAnd, a, b) ->
      let ca = compile_exp eng ~offsets ~env ~sid a in
      let cb = compile_exp eng ~offsets ~env ~sid b in
      fun th fr ->
        if Value.truthy (ca th fr) then
          VInt (if Value.truthy (cb th fr) then 1 else 0)
        else VInt 0
  | Binop (LOr, a, b) ->
      let ca = compile_exp eng ~offsets ~env ~sid a in
      let cb = compile_exp eng ~offsets ~env ~sid b in
      fun th fr ->
        if Value.truthy (ca th fr) then VInt 1
        else VInt (if Value.truthy (cb th fr) then 1 else 0)
  | Binop (op, a, b) -> (
      let ca = compile_exp eng ~offsets ~env ~sid a in
      let cb = compile_exp eng ~offsets ~env ~sid b in
      (* the operator is matched once here; each specialized closure
         keeps the interpreted [binop]'s value-shape dispatch (pointer
         arithmetic / comparisons first, then the int case, then the
         ill-typed fault) and its right-to-left argument order *)
      let general op' = fun th fr -> binop eng op' (ca th fr) (cb th fr) in
      let int_cmp cmp =
        fun th fr ->
          match binop_args (ca th fr) (cb th fr) with
          | Value.VInt x, Value.VInt y ->
              Value.VInt (if cmp x y then 1 else 0)
          | va, vb -> binop eng op va vb
      in
      match op with
      | Add ->
          fun th fr -> (
            match binop_args (ca th fr) (cb th fr) with
            | Value.VInt x, Value.VInt y -> Value.VInt (x + y)
            | va, vb -> binop eng Add va vb)
      | Sub ->
          fun th fr -> (
            match binop_args (ca th fr) (cb th fr) with
            | Value.VInt x, Value.VInt y -> Value.VInt (x - y)
            | va, vb -> binop eng Sub va vb)
      | Mul ->
          fun th fr -> (
            match binop_args (ca th fr) (cb th fr) with
            | Value.VInt x, Value.VInt y -> Value.VInt (x * y)
            | va, vb -> binop eng Mul va vb)
      | Lt -> int_cmp ( < )
      | Le -> int_cmp ( <= )
      | Gt -> int_cmp ( > )
      | Ge -> int_cmp ( >= )
      | Eq -> int_cmp ( = )
      | Ne -> int_cmp ( <> )
      | op -> general op)

and compile_lval eng ~offsets ~env ~sid (lv : lval) :
    (thread -> frame -> Value.ptr) * ty =
  match lv with
  | Var v -> (
      match Hashtbl.find_opt offsets v with
      | Some (off, ty) ->
          ((fun _ fr -> { Value.p_block = fr.fr_block; p_off = off }), ty)
      | None -> (
          match Hashtbl.find_opt eng.globals v with
          | Some bid ->
              let ty =
                match Hashtbl.find_opt eng.tenv.globals v with
                | Some t -> t
                | None -> Tint
              in
              let p = { Value.p_block = bid; p_off = 0 } in
              ((fun _ _ -> p), ty)
          | None ->
              ((fun _ _ -> Value.fault "unbound variable %s" v), Tint)))
  | Deref e ->
      let ce = compile_exp eng ~offsets ~env ~sid e in
      let ty =
        match Minic.Typecheck.type_of_exp env e with
        | Tptr t | Tarray (t, _) -> t
        | _ -> Tint (* int treated as address of int cells; loose *)
      in
      ( (fun th fr ->
          match ce th fr with
          | Value.VPtr p -> p
          | v -> Value.fault "dereference of non-pointer %a" Value.pp v),
        ty )
  | Index (base, idx) ->
      let cbase, bty = compile_lval eng ~offsets ~env ~sid base in
      let cidx = compile_exp eng ~offsets ~env ~sid idx in
      let ety =
        match bty with Tptr t -> t | Tarray (t, _) -> t | t -> t
      in
      let es = Layout.sizeof eng.layout ety in
      let celem =
        (* indexing through a pointer variable loads the pointer first *)
        match bty with
        | Tptr _ ->
            fun th fr ->
              let p = cbase th fr in
              on_mem eng th p ~write:false ~sid;
              (match Mem.load eng.mem p with
              | Value.VPtr q -> q
              | v -> Value.fault "indexing non-pointer %a" Value.pp v)
        | _ -> cbase
      in
      ( (fun th fr ->
          let q = celem th fr in
          let i = Value.to_int (cidx th fr) in
          { q with p_off = q.p_off + (i * es) }),
        ety )
  | Field (base, f) ->
      let cbase, bty = compile_lval eng ~offsets ~env ~sid base in
      let sname =
        match bty with
        | Tstruct s -> s
        | t -> Value.fault "field access on %a" Minic.Ast.pp_ty t
      in
      let off, fty = Layout.field_offset eng.layout sname f in
      ( (fun th fr ->
          let p = cbase th fr in
          { p with p_off = p.p_off + off }),
        fty )
  | Arrow (e, f) ->
      let ce = compile_exp eng ~offsets ~env ~sid e in
      let sname =
        match Minic.Typecheck.type_of_exp env e with
        | Tptr (Tstruct s) -> s
        | t -> Value.fault "-> on %a" Minic.Ast.pp_ty t
      in
      let off, fty = Layout.field_offset eng.layout sname f in
      ( (fun th fr ->
          match ce th fr with
          | Value.VPtr p -> { p with p_off = p.p_off + off }
          | v -> Value.fault "-> on non-pointer %a" Value.pp v),
        fty )

(* ------------------------------------------------------------------ *)
(* Thread lifecycle *)

and new_thread eng (path : K.tid_path) : thread =
  let th =
    {
      tid = stable_tid path;
      path;
      status = Runnable;
      resume = None;
      body = None;
      steps = 0;
      weak_acqs = 0;
      stall = 0;
      core = 0;
      spawn_seq = 0;
      frame_seq = 0;
      alloc_seq = 0;
      io_seq = 0;
      call_stack = [];
      regions = [];
      reacquire = [];
      force_now = [];
      turn_check = None;
      blocked_since = 0;
      fault = None;
      det_clock = 0;
      det_excluded = false;
      det_immune = [];
      det_reacquiring = false;
      det_doomed = [];
    }
  in
  Hashtbl.replace eng.threads th.tid th;
  eng.thread_order <- th.tid :: eng.thread_order;
  eng.live <- eng.live + 1;
  th

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let finish_thread eng (th : thread) =
  (* release anything still held *)
  List.iter
    (fun r -> List.iter (fun (l, _) -> weak_release_one eng th l) r.rg_acqs)
    th.regions;
  th.regions <- [];
  set_status eng th Done;
  eng.live <- eng.live - 1;
  if th.path = [] then eng.main_done <- true;
  (* wake joiners *)
  Hashtbl.iter
    (fun _ (t' : thread) ->
      match t'.status with
      | Blocked (BJoin target) when target = th.tid -> wake eng t'
      | _ -> ())
    eng.threads

(* Run (or resume) one micro-op of [th]. Returns after the thread performs
   its next effect, blocks, or terminates. *)
(* The handler is installed once per fiber ([match_with] on first start);
   resuming via [continue] runs under that same installed handler, so it
   is only built on the [body] path — not once per resume. *)
let start_thread eng (th : thread) (body : unit -> unit) =
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finish_thread eng th);
      exnc =
        (fun e ->
          (match e with
          | Program_exit code -> eng.exit_code <- Some code
          | Value.Fault msg -> th.fault <- Some msg
          | Stuck msg -> th.fault <- Some msg
          (* a corrupt log pulled mid-replay (a streamed segment failing
             its checksum) is the caller's typed error, not a thread
             fault: re-raise out of the scheduler *)
          | Replay.Log.Corrupt _ -> raise e
          | e -> th.fault <- Some (Printexc.to_string e));
          finish_thread eng th);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_step cost ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  th.steps <- th.steps + 1;
                  if det_mode eng then
                    th.det_clock <- th.det_clock + cost;
                  th.stall <- max 0 (cost - 1);
                  th.resume <- Some k;
                  (* apply pending forced releases at this step boundary *)
                  List.iter (fun l -> apply_forced_release eng th l) th.force_now;
                  th.force_now <- [];
                  (* replayed forced events keyed by step count *)
                  (match eng.replayer with
                  | Some r -> (
                      match
                        Replay.Replayer.pending_forced r th.path
                          ~steps:th.steps ~acqs:th.weak_acqs
                          ~holds:(fun l -> WL.holds eng.weak l ~tid:th.tid)
                      with
                      | Some lock -> apply_forced_release eng th lock
                      | None -> ())
                  | None -> ()))
          | E_block ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  th.resume <- Some k)
          | _ -> None);
    }
  in
  Effect.Deep.match_with body () handler

let resume_thread eng (th : thread) =
  match th.resume with
  | Some k ->
      th.resume <- None;
      Effect.Deep.continue k ()
  | None -> (
      match th.body with
      | Some body ->
          th.body <- None;
          start_thread eng th body
      | None -> ())

(* Periodic maintenance: IO wakeups, replay-turn checks, replayed forced
   releases for blocked owners, forced reacquisitions.

   Each pass iterates the thread table in [Hashtbl.iter] order, and that
   order is load-bearing: wake order feeds [enqueue]'s shortest-queue
   choice and hence the golden tick counts. The wake index therefore
   only GATES the passes — a pass is skipped exactly when it can be
   proved a no-op (no due IO deadline on the wheel, no parked turn
   waiter, no pending reacquisition, no forced event left in the log) —
   and never reorders them. *)
let maintenance eng =
  if
    Wheel.next_deadline eng.w_io <= eng.ticks
    || eng.n_bturn > 0 || eng.n_breacq > 0
  then
    Hashtbl.iter
      (fun _ (th : thread) ->
        match th.status with
        | Blocked (BIO t) when eng.ticks >= t -> wake eng th
        | Blocked (BTurn _) -> (
            (* a recording-mode thread with a pending reacquisition stays
               parked (maintenance reacquires on its behalf); in
               deterministic mode the gate-exit path reacquires, so it must
               be woken normally *)
            match th.turn_check with
            | Some check when (th.reacquire = [] || det_mode eng) && check ()
              ->
                wake eng th
            | _ -> ())
        | Blocked BReacq when th.reacquire = [] ->
            set_status eng th Runnable;
            enqueue eng th
        | _ -> ())
      eng.threads;
  (* replayed forced events can target an owner that is blocked on
     program synchronization (and therefore passes no step boundary) *)
  (match eng.replayer with
  | Some r when Replay.Replayer.has_forced r ->
      Hashtbl.iter
        (fun _ (th : thread) ->
          match th.status with
          | Blocked _ -> (
              (* the owner may be parked on program sync or on a replay
                 gate; either way it passes no step boundary of its own *)
              match
                Replay.Replayer.pending_forced r th.path ~steps:th.steps
                  ~acqs:th.weak_acqs
                  ~holds:(fun l -> WL.holds eng.weak l ~tid:th.tid)
              with
              | Some lock -> apply_forced_release eng th lock
              | None -> ())
          | _ -> ())
        eng.threads
  | Some _ | None -> ());
  (* forced-reacquire: threads whose lock was stripped must get it back
     before doing anything else; try on their behalf. Under replay the
     reacquisition is an acquisition like any other and must wait for its
     recorded turn. *)
  if eng.n_reacq > 0 && not (det_mode eng) then
  Hashtbl.iter
    (fun _ (th : thread) ->
      (* During recording, reacquire only for threads parked in BReacq: a
         preempted owner still blocked on program synchronization must
         not take the lock back while it cannot make progress — that
         would recreate the very deadlock the timeout broke. During
         replay the recorded acquisition order is feasible by
         construction, so the reacquisition (itself a recorded event) is
         performed as soon as its turn comes, wherever the owner is
         parked. *)
      let eligible =
        (* deterministic mode reacquires in the owner's own execution
           stream (det_ensure_reacquired), never here *)
        (not (det_mode eng))
        &&
        match th.status with
        | Blocked BReacq -> true
        | Blocked _ -> eng.replayer <> None
        | _ -> false
      in
      if th.reacquire <> [] && eligible then begin
        let my_turn lock =
          match eng.replayer with
          | None -> true
          | Some r -> Replay.Replayer.weak_turn r lock ~tp:th.path
        in
        let rec go () =
          (* between two reacquisitions the recording may carry another
             forced release (same step count, next acquisition count);
             re-apply it first or this thread's acquisitions slide ahead
             of it and conflicting accesses reorder. The thread is
             parked, so the application cannot park it again — it only
             extends [reacquire]. *)
          (match eng.replayer with
          | Some r ->
              let rec drain () =
                match
                  Replay.Replayer.pending_forced r th.path ~steps:th.steps
                    ~acqs:th.weak_acqs
                    ~holds:(fun l -> WL.holds eng.weak l ~tid:th.tid)
                with
                | Some l ->
                    apply_forced_release eng th l;
                    drain ()
                | None -> ()
              in
              drain ()
          | None -> ());
          match th.reacquire with
          | [] -> ()
          | (lock, claim) :: rest ->
              if my_turn lock then
                match WL.acquire eng.weak lock ~tid:th.tid ~claim with
                | `Acquired ->
                    trace eng "%a reacq %a" K.pp_tid_path th.path
                      pp_weak_lock lock;
                    record_weak eng th lock ~claim:(stable_claim eng claim);
                    fire_sync eng th (SyWeakAcq lock);
                    if det_mode eng then
                      th.det_immune <- lock :: th.det_immune;
                    set_reacquire eng th rest;
                    go ()
                | `Blocked owners ->
                    trace eng "%a reacq-blocked %a holders=%a claim=%a"
                      K.pp_tid_path th.path pp_weak_lock lock
                      Fmt.(list ~sep:comma int) owners
                      Fmt.(list ~sep:comma Runtime.Weaklock.pp_range) claim
              else trace eng "%a reacq-not-my-turn %a" K.pp_tid_path th.path pp_weak_lock lock
        in
        go ();
        if th.reacquire = [] then begin
          set_status eng th Runnable;
          enqueue eng th
        end
      end)
    eng.threads

(* The retired full-table victim scan, kept as the cross-check oracle
   (CHIMERA_SCHED_CHECK=1) for the wheel-driven selection below. *)
let sweep_victim eng : thread option =
  Hashtbl.fold
    (fun _ (th : thread) acc ->
      match th.status with
      | Blocked (BWeak _ | BReacq)
        when eng.ticks - th.blocked_since > effective_weak_timeout eng -> (
          match acc with
          | Some (best : thread)
            when (best.blocked_since, best.tid) <= (th.blocked_since, th.tid)
            ->
              acc
          | _ -> Some th)
      | _ -> acc)
    eng.threads None

(* Weak-lock timeout: preempt the conflicting owner of the longest-stalled
   waiter (Section 2.3). During replay, timeouts never initiate
   preemption — forced releases are re-applied from the log instead. *)
let check_weak_timeouts eng =
  (* replay re-applies forced releases from the log; deterministic mode
     preempts by retry-count dooming — a wall-tick timeout would make
     the preemption point a function of the host schedule *)
  if eng.replayer <> None || det_mode eng then ()
  else begin
    (* one victim per pass: the longest-stalled expired waiter (lowest
       tid on ties). Preempting on behalf of every expired waiter at
       once is what the text of Section 2.3 forbids, and for good
       reason: two threads contending for overlapping lock sets whose
       deadlines fall in the same sweep would strip each other
       symmetrically and swap their sets forever — a timeout-sustained
       livelock. Serving only the longest-stalled waiter breaks the
       symmetry; the loser's clock keeps running and it gets the next
       pass.

       The wheel orders its entries by (deadline, tid) with deadline =
       blocked_since + timeout + 1 — a constant offset per run — so its
       due minimum IS the fold's (blocked_since, tid) minimum, and
       "due" (deadline <= ticks) is exactly the fold's strict
       ticks - blocked_since > timeout. *)
    let victim =
      match Wheel.min_due eng.w_weak ~now:eng.ticks with
      | Some (tid, _) -> Hashtbl.find_opt eng.threads tid
      | None -> None
    in
    (if Lazy.force sched_check_enabled then
       match (sweep_victim eng, victim) with
       | Some a, Some b when a == b -> ()
       | None, None -> ()
       | a, b ->
           Fmt.failwith
             "sched-check: wheel victim %a <> sweep victim %a at tick %d"
             Fmt.(option ~none:(any "none") int)
             (Option.map (fun (th : thread) -> th.tid) b)
             Fmt.(option ~none:(any "none") int)
             (Option.map (fun (th : thread) -> th.tid) a)
             eng.ticks);
    match victim with
    | None -> ()
    | Some th -> (
        match th.status with
        | Blocked BReacq ->
            (* a reacquiring thread stalled this long means the handoff
               reservation is stale (its beneficiary is parked elsewhere)
               or the lock is held by another stuck owner: expire
               reservations and preempt holders *)
            List.iter
              (fun ((lock : weak_lock), _) ->
                WL.clear_pending eng.weak lock;
                List.iter
                  (fun otid ->
                    if otid <> th.tid then
                      match Hashtbl.find_opt eng.threads otid with
                      | Some owner -> apply_forced_release eng owner lock
                      | None -> ())
                  (WL.holders eng.weak lock))
              th.reacquire;
            (* …and hand the freed locks to the victim right here, as one
               unit. Leaving the reacquisition to the next maintenance
               pass lets whichever stalled reacquirer iterates first (or
               heads the waiter queue the strip just promoted to a
               handoff reservation) grab single locks out of the set —
               with several threads needing overlapping multi-lock sets,
               that rotation reassembles a full set for no one and the
               timeouts sustain a livelock. *)
            set_reacquire eng th
              (List.filter
                 (fun ((lock : weak_lock), claim) ->
                   WL.clear_pending eng.weak lock;
                   if WL.holds eng.weak lock ~tid:th.tid then false
                   else
                     match WL.acquire eng.weak lock ~tid:th.tid ~claim with
                     | `Acquired ->
                         trace eng "%a timeout-reacq %a" K.pp_tid_path th.path
                           pp_weak_lock lock;
                         record_weak eng th lock
                           ~claim:(stable_claim eng claim);
                         fire_sync eng th (SyWeakAcq lock);
                         false
                     | `Blocked _ -> true)
                 th.reacquire);
            if th.reacquire = [] then begin
              set_status eng th Runnable;
              enqueue eng th
            end
            else begin
              th.blocked_since <- eng.ticks;
              resched eng th
            end
        | Blocked (BWeak (lock, _claim)) ->
            let owners = WL.holders eng.weak lock in
            (* no holders at all: the waiter is fenced out purely by a
               stale handoff reservation (e.g. its beneficiary was
               cancelled or parked) — expire it and let the waiter retry *)
            if owners = [] then begin
              WL.clear_pending eng.weak lock;
              wake eng th
            end;
            List.iter
              (fun otid ->
                if otid <> th.tid then
                  match Hashtbl.find_opt eng.threads otid with
                  | Some owner -> (
                      match owner.status with
                      | Blocked _ ->
                          (* owner is itself parked — on program
                             synchronization, or on the weak layer (BWeak /
                             BReacq, a hold-wait cycle through several weak
                             locks): it passes no step boundary while
                             blocked, so deferring the release would leave
                             the cycle standing forever. Apply it now. *)
                          apply_forced_release eng owner lock
                      | Runnable ->
                          (* preempt at the owner's next step boundary *)
                          if not (List.mem lock owner.force_now) then
                            owner.force_now <- owner.force_now @ [ lock ]
                      | Done -> ())
                  | None -> ())
              owners;
            th.blocked_since <- eng.ticks (* restart the clock *);
            resched eng th
        | _ -> ())
  end

let can_run (th : thread) = th.status = Runnable

(* one scheduling tick for core [c] *)
let tick_core eng c =
  let q = eng.queues.(c) in
  (* PCT: bring the highest-priority runnable thread to the head before
     the head is cleaned and run. Ties break to queue order, so the pass
     is deterministic; [Sdefault]/[Sstorm] skip it entirely. *)
  (if eng.cfg.strategy = Spct then
     match !q with
     | [] | [ _ ] -> ()
     | ts -> (
         let best =
           List.fold_left
             (fun acc (t : thread) ->
               if not (can_run t) then acc
               else
                 match acc with
                 | None -> Some t
                 | Some (b : thread) ->
                     if pct_prio eng t.tid > pct_prio eng b.tid then Some t
                     else acc)
             None ts
         in
         match best with
         | Some b when List.hd ts != b ->
             q := b :: List.filter (fun t -> t != b) ts
         | _ -> ()));
  (* drop finished/blocked threads from the head *)
  let rec clean () =
    match !q with
    | th :: rest ->
        if can_run th then Some th
        else begin
          (* done or blocked: remove; a blocked thread is re-enqueued on
             wake *)
          q := rest;
          clean ()
        end
    | [] -> None
  in
  match clean () with
  | None ->
      (* work stealing: take from the longest other queue *)
      let best = ref (-1) and best_len = ref 1 in
      for c' = 0 to eng.cfg.cores - 1 do
        if c' <> c then begin
          let len = List.length !(eng.queues.(c')) in
          if len > !best_len then begin
            best := c';
            best_len := len
          end
        end
      done;
      if !best >= 0 then begin
        match !(eng.queues.(!best)) with
        | x :: rest ->
            (* steal the tail element to keep the victim's head running *)
            let stolen = List.nth (x :: rest) (List.length rest) in
            eng.queues.(!best) <-
              ref (List.filter (fun t -> t != stolen) (x :: rest));
            stolen.core <- c;
            q := [ stolen ]
        | [] -> ()
      end
  | Some th ->
      if th.stall > 0 then th.stall <- th.stall - 1
      else begin
        (match eng.recorder with
        | Some rc ->
            let t0 = ph_now eng in
            Replay.Recorder.rec_sched rc ~core:c ~tp:th.path ~ticks:1;
            ph_add eng Phases.Recorder t0
        | None -> ());
        resume_thread eng th
      end;
      (* quantum accounting *)
      eng.quanta.(c) <- eng.quanta.(c) - 1;
      if eng.quanta.(c) <= 0 then begin
        (* storm shortens the quantum so preemption points (and thus
           timeout-exposed interleavings) come much more often; the
           refill consumes exactly one rng draw in every strategy *)
        let quantum =
          match eng.cfg.strategy with
          | Sstorm -> max 4 (eng.cfg.quantum / 8)
          | Sdefault | Spct -> eng.cfg.quantum
        in
        eng.quanta.(c) <- (quantum / 2) + (rng_next eng mod quantum);
        (* PCT change point: the expiring thread drops below everyone,
           so the next selection pass prefers any other runnable thread *)
        (if eng.cfg.strategy = Spct then
           match !q with
           | head :: _ -> pct_demote eng head.tid
           | [] -> ());
        match !q with
        | head :: rest when rest <> [] -> q := rest @ [ head ]
        | _ -> ()
      end

(* ------------------------------------------------------------------ *)
(* Checkpoints: the marshallable slice of engine state.

   Effect continuations ([thread.resume]) cannot be marshalled, so a
   checkpoint is not a resumable image — it is a {e pin}: the digest of
   everything deterministic about the execution at a seal point
   (memory, outputs, per-thread progress, scheduler rng). Two runs that
   agree on every pinned digest took the same execution through those
   points; re-recording determinism and windowed-vs-full replay
   equivalence are both checked against these digests. The snapshot
   bytes additionally carry the full memory image for offline
   inspection. *)

type snapshot = {
  sn_ticks : int;
  sn_rng : int;
  sn_live : int;
  sn_outputs : (K.tid_path * int) list;  (** oldest first *)
  sn_mem_hash : int;
  sn_blocks : (int * K.origin * Value.t array * bool) list;
      (** (id, origin, cells, freed), live blocks in id order *)
  sn_threads : (K.tid_path * int * int * int) list;
      (** (path, steps, weak_acqs, status code 0=runnable 1=done
          2=blocked), spawn order *)
}

let status_code = function Runnable -> 0 | Done -> 1 | Blocked _ -> 2

let make_snapshot (eng : t) : snapshot =
  let blocks = ref [] in
  for i = Array.length eng.mem.Mem.blocks - 1 downto 0 do
    match eng.mem.Mem.blocks.(i) with
    | Some b ->
        blocks :=
          (b.Mem.b_id, b.Mem.b_origin, Array.copy b.Mem.cells, b.Mem.b_freed)
          :: !blocks
    | None -> ()
  done;
  let threads =
    List.rev_map
      (fun tid ->
        let th = Hashtbl.find eng.threads tid in
        (th.path, th.steps, th.weak_acqs, status_code th.status))
      eng.thread_order
  in
  {
    sn_ticks = eng.ticks;
    sn_rng = eng.rng;
    sn_live = eng.live;
    sn_outputs = List.rev eng.outputs;
    sn_mem_hash = Mem.state_hash eng.mem;
    sn_blocks = !blocks;
    sn_threads = threads;
  }

let snapshot_bytes (eng : t) : string =
  Marshal.to_string (make_snapshot eng) []

(** Deterministic hex digest of the engine's pinned state. Comparable
    only between runs at the same logical point: seal-time digests pin
    re-recording determinism; replay-side digests captured at a segment
    drain pin windowed replay against full streamed replay. *)
let state_digest (eng : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Fmt.str "mem=%d ticks=%d rng=%d live=%d" (Mem.state_hash eng.mem)
       eng.ticks eng.rng eng.live);
  List.iter
    (fun (p, v) -> Buffer.add_string b (Fmt.str " o:%a=%d" K.pp_tid_path p v))
    (List.rev eng.outputs);
  List.iter
    (fun tid ->
      let th = Hashtbl.find eng.threads tid in
      Buffer.add_string b
        (Fmt.str " t:%a=%d,%d,%d" K.pp_tid_path th.path th.steps th.weak_acqs
           (status_code th.status)))
    (List.rev eng.thread_order);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Entry point *)

type outcome = {
  o_outputs : (K.tid_path * int) list;
  o_final_hash : int;
  o_ticks : int;
  o_steps : (K.tid_path * int) list;
  o_faults : (K.tid_path * string) list;
  o_exit : int option;
  o_stats : stats;
  o_recorder : Replay.Recorder.t option;
  o_timed_out : bool;
  o_stuck : string list;
      (** per-thread status dump when the run timed out / deadlocked *)
  o_claim_mismatches : Replay.Replayer.claim_mismatch list;
      (** replay only: served weak-lock claims that differ from the
          recorded ones (instrumentation drift); always [] otherwise *)
}

let make_engine ?(config = default_config) ?(hooks = no_hooks ()) ?sink
    ?replayer ?phases ~mode ~io (prog : program) : t =
  let recorder =
    match mode with Record -> Some (Replay.Recorder.create ()) | _ -> None
  in
  (* an explicit [replayer] (a segment stream, possibly windowed)
     overrides the one a [Replay log] mode would build *)
  let replayer =
    match (replayer, mode) with
    | (Some _ as r), _ -> r
    | None, Replay log -> Some (Replay.Replayer.of_log log)
    | None, _ -> None
  in
  let eng =
    {
      prog;
      tenv = Minic.Typecheck.env_of_program prog;
      layout = Layout.create prog.p_structs;
      cfg = config;
      mode;
      io;
      hooks;
      mem = Mem.create ();
      mutexes = Runtime.Sync.Mutex.create ();
      barriers = Runtime.Sync.Barrier.create ();
      conds = Runtime.Sync.Cond.create ();
      weak = WL.create ();
      threads = Hashtbl.create 16;
      thread_order = [];
      queues = Array.init config.cores (fun _ -> ref []);
      quanta = Array.make config.cores config.quantum;
      globals = Hashtbl.create 64;
      recorder;
      replayer;
      sink;
      stats = new_stats ();
      ticks = 0;
      outputs = [];
      live = 0;
      exit_code = None;
      rng = (config.seed * 2) + 1;
      main_done = false;
      prio = Hashtbl.create 16;
      pct_floor = 0;
      fenvs = Hashtbl.create 64;
      flayouts = Hashtbl.create 64;
      sid_sort_perm = Hashtbl.create 64;
      cbodies = Hashtbl.create 64;
      (* wheel slot width = the strategy's sweep quantum (storm sweeps at
         a 32-tick mask, default/pct at 256), so one slot covers exactly
         one sweep window *)
      w_weak =
        Wheel.create
          ~gran_bits:(match config.strategy with Sstorm -> 5 | _ -> 8)
          ();
      (* IO wakes are polled by the 16-tick maintenance pass *)
      w_io = Wheel.create ~gran_bits:4 ();
      n_bturn = 0;
      n_breacq = 0;
      n_reacq = 0;
      phases;
    }
  in
  (* allocate and initialize globals *)
  List.iter
    (fun (g : global) ->
      let size = max 1 (Layout.sizeof eng.layout g.g_ty) in
      let blk = Mem.alloc eng.mem (K.OGlobal g.g_name) size in
      (match g.g_init with
      | Some vals ->
          List.iteri
            (fun i v ->
              if i < size then
                Mem.store eng.mem
                  { Value.p_block = blk.Mem.b_id; p_off = i }
                  (VInt v))
            vals
      | None -> ());
      Hashtbl.replace eng.globals g.g_name blk.Mem.b_id)
    prog.p_globals;
  eng

(* a windowed replayer that reached its bound: the run stops cleanly *)
let replay_halted eng =
  match eng.replayer with
  | Some r -> Replay.Replayer.halted r
  | None -> false

let run_engine (eng : t) : outcome =
  (match eng.phases with Some p -> Phases.start p | None -> ());
  (* main thread *)
  let main = new_thread eng [] in
  main.body <- Some (fun () -> ignore (exec_fun eng main "main" []));
  enqueue eng main;
  let timed_out = ref false in
  (* consecutive idle fast-forwards where the wake-up resolved nothing;
     unwinding a hold-wait cycle through several weak locks takes one
     forced release per timeout deadline, so a single fruitless round is
     not yet a deadlock *)
  let stuck_rounds = ref 0 in
  (try
     while
       eng.live > 0 && eng.exit_code = None && not eng.main_done
       && not (replay_halted eng)
     do
       eng.ticks <- eng.ticks + 1;
       if eng.ticks >= eng.cfg.max_ticks then begin
         timed_out := true;
         raise Exit
       end;
       if eng.ticks land 15 = 0 then begin
         let t0 = ph_now eng in
         maintenance eng;
         ph_add eng Phases.Scheduler t0
       end;
       (* The sweep stays gated to the masked tick — it serves one victim
          per window, and firing off-boundary would move every later
          preemption — but the per-window poll is now O(1): the wheel's
          quantized next-fire tick instead of a full-table scan. At a
          masked tick, next_fire <= ticks iff the earliest deadline is
          due, i.e. iff the retired scan would have found a victim. *)
       let wsm = weak_sweep_mask eng in
       if eng.ticks land wsm = 0 then
         if Wheel.next_fire eng.w_weak ~mask:wsm <= eng.ticks then begin
           let t0 = ph_now eng in
           check_weak_timeouts eng;
           ph_add eng Phases.Weaklock t0
         end
         else if
           Lazy.force sched_check_enabled
           && eng.replayer = None
           && not (det_mode eng)
           && sweep_victim eng <> None
         then
           Fmt.failwith
             "sched-check: wheel skipped a sweep with a due victim at tick %d"
             eng.ticks;
       (* rotate the starting core each tick to vary cross-core order *)
       let start = rng_next eng mod eng.cfg.cores in
       for i = 0 to eng.cfg.cores - 1 do
         tick_core eng ((start + i) mod eng.cfg.cores)
       done;
       (* fast-forward idle periods (everything blocked on IO/turn) *)
       if
         Array.for_all (fun q -> !q = []) eng.queues
         && eng.live > 0
       then begin
         let t0 = ph_now eng in
         maintenance eng;
         if Array.for_all (fun q -> !q = []) eng.queues then begin
           (* all blocked: jump to the next wake-up — an IO completion or
              a weak-lock timeout deadline (the escape hatch that resolves
              weak-lock-vs-program-sync deadlocks, Section 2.3). The two
              wheels index exactly the BIO and BWeak/BReacq populations
              with those unquantized deadlines, so their min replaces the
              whole-table scan. *)
           let next_wake =
             min (Wheel.next_deadline eng.w_io) (Wheel.next_deadline eng.w_weak)
           in
           if Lazy.force sched_check_enabled then begin
             (* oracle: the retired scan, kept verbatim *)
             let scan_wake = ref max_int in
             Hashtbl.iter
               (fun _ (th : thread) ->
                 match th.status with
                 | Blocked (BIO t) -> if t < !scan_wake then scan_wake := t
                 | Blocked (BWeak _ | BReacq) ->
                     (* both resolve through the weak-lock timeout *)
                     let deadline =
                       th.blocked_since + effective_weak_timeout eng + 1
                     in
                     if deadline < !scan_wake then scan_wake := deadline
                 | _ -> ())
               eng.threads;
             if !scan_wake <> next_wake then
               Fmt.failwith
                 "sched-check: wheel next-wake %d <> scan next-wake %d at \
                  tick %d"
                 next_wake !scan_wake eng.ticks
           end;
           ph_add eng Phases.Scheduler t0;
           if next_wake < max_int then begin
             if next_wake > eng.ticks then eng.ticks <- next_wake;
             let t0 = ph_now eng in
             check_weak_timeouts eng;
             ph_add eng Phases.Weaklock t0;
             maintenance eng;
             if Array.for_all (fun q -> !q = []) eng.queues then begin
               (* nothing woke this round. Each round expires only the
                  earliest deadline and restarts that thread's clock, so
                  breaking an N-lock cycle needs up to N rounds of forced
                  releases; only a sustained run of fruitless rounds means
                  genuinely stuck. *)
               incr stuck_rounds;
               if !stuck_rounds > 8 * (eng.live + 1) then begin
                 timed_out := true;
                 raise Exit
               end
             end
             else stuck_rounds := 0
           end
           else if
             (* counters stand in for the retired per-thread fold: any
                pending reacquisition list or turn-gated thread *)
             det_mode eng
             && (eng.n_reacq > 0 || eng.n_bturn > 0)
           then begin
             (* deterministic arbitration progresses through repeated
                maintenance passes (cede bumps, gated reacquisitions);
                advance time and keep going — max_ticks bounds a true
                livelock *)
             eng.ticks <- eng.ticks + 16;
             maintenance eng
           end
           else begin
             (* deadlock or replay stall — unless a windowed replay just
                reached its bound, which parks every gated thread by
                design and is a clean halt, not a timeout *)
             let t0 = ph_now eng in
             check_weak_timeouts eng;
             ph_add eng Phases.Weaklock t0;
             maintenance eng;
             if Array.for_all (fun q -> !q = []) eng.queues then begin
               if not (replay_halted eng) then timed_out := true;
               raise Exit
             end
           end
         end
       end
     done
   with Exit -> ());
  let paths_steps =
    List.rev_map
      (fun tid ->
        let th = Hashtbl.find eng.threads tid in
        (th.path, th.steps))
      eng.thread_order
    |> List.sort compare
  in
  let faults =
    List.filter_map
      (fun tid ->
        let th = Hashtbl.find eng.threads tid in
        Option.map (fun m -> (th.path, m)) th.fault)
      eng.thread_order
    |> List.sort compare
  in
  let stuck =
    if not !timed_out then []
    else
      (match eng.replayer with
       | Some r -> Replay.Replayer.dump_remaining r
       | None -> [])
      @
      List.rev_map
        (fun tid ->
          let th = Hashtbl.find eng.threads tid in
          let status =
            match th.status with
            | Runnable -> "runnable"
            | Done -> "done"
            | Blocked r -> Fmt.str "blocked on %a" pp_block_reason r
          in
          let queued =
            Array.exists
              (fun q -> List.exists (fun (t : thread) -> t.tid = th.tid) !q)
              eng.queues
          in
          Fmt.str "%a: %s, steps=%d, stall=%d, regions=%d, queued=%b, \
                   has-cont=%b, reacquire=[%s]"
            K.pp_tid_path th.path status th.steps th.stall
            (List.length th.regions) queued
            (th.resume <> None || th.body <> None)
            (String.concat ","
               (List.map
                  (fun (l, _) -> Fmt.str "%a" pp_weak_lock l)
                  th.reacquire)))
        eng.thread_order
  in
  eng.stats.n_handoff_served <- eng.weak.WL.total_handoff_served;
  eng.stats.n_handoff_expired <- eng.weak.WL.total_handoff_expired;
  (match eng.phases with Some p -> Phases.finish p | None -> ());
  {
    o_outputs = List.rev eng.outputs;
    o_final_hash = Mem.state_hash eng.mem;
    o_ticks = eng.ticks;
    o_steps = paths_steps;
    o_faults = faults;
    o_exit = eng.exit_code;
    o_stats = eng.stats;
    o_recorder = eng.recorder;
    o_timed_out = !timed_out;
    o_stuck = stuck;
    o_claim_mismatches =
      (match eng.replayer with
      | Some r -> Replay.Replayer.claim_mismatches r
      | None -> []);
  }

(** Run [prog] to completion under [mode]. [sink], when given, receives
    the execution's trace events (see {!Trace}); it never affects the
    simulated execution. *)
let run ?config ?hooks ?sink ?replayer ?phases ~mode ~io (prog : program) :
    outcome =
  let eng = make_engine ?config ?hooks ?sink ?replayer ?phases ~mode ~io prog in
  run_engine eng
