(** Hierarchical deadline event-wheel for the tick scheduler.

    Threads parked with a known wake deadline (weak-lock timeout
    expiries, IO completions) register here so the scheduler can answer
    "who expires next?" in O(1) instead of scanning the whole thread
    table. Level 0 buckets deadlines into slots of the wheel's
    granularity (the sweep quantum: one slot per [mask + 1] ticks);
    above it a lazy min-heap of slot indices orders the occupied slots.
    Each tid holds at most one registration — re-adding replaces, and
    cancellation is O(1) (entries die in place and are skimmed off
    lazily when a minimum is recomputed).

    The wheel orders entries by [(deadline, tid)]: for weak-lock
    timeouts the deadline is [blocked_since + timeout + 1] — a constant
    offset per run — so this is exactly the old sweep's
    longest-stalled-then-lowest-tid victim order. *)

type t

(** [create ~gran_bits ()] makes an empty wheel whose level-0 slots span
    [2^gran_bits] ticks (default 8: the 256-tick default sweep quantum). *)
val create : ?gran_bits:int -> unit -> t

(** Register [tid] to expire at [deadline], replacing any previous
    registration for the same tid. *)
val add : t -> tid:int -> deadline:int -> unit

(** Drop [tid]'s registration, if any. O(1). *)
val cancel : t -> tid:int -> unit

(** Number of live registrations. *)
val size : t -> int

(** [deadline] of [tid]'s live registration, if any. *)
val deadline_of : t -> tid:int -> int option

(** Earliest live deadline; [max_int] when the wheel is empty (the
    sentinel compares greater than every reachable tick). *)
val next_deadline : t -> int

(** The minimum live [(tid, deadline)] by [(deadline, tid)] order,
    provided its deadline is due ([<= now]); [None] when nothing is due.
    The lexicographic global minimum is the due minimum whenever any
    entry is due, so this is the old sweep's victim. *)
val min_due : t -> now:int -> (int * int) option

(** First tick at which a sweep gated to [ticks land mask = 0] would
    observe the earliest deadline: the next multiple of [mask + 1] at or
    after it. [max_int] when the wheel is empty or the quantization
    would overflow (the sentinel never fires). *)
val next_fire : t -> mask:int -> int

(** Live [(tid, deadline)] pairs, unordered — for tests and debugging. *)
val entries : t -> (int * int) list
