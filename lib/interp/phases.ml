type bucket = Recorder | Scheduler | Weaklock

type t = {
  clock : unit -> float;
  mutable t0 : float;
  mutable total : float;
  mutable recorder : float;
  mutable scheduler : float;
  mutable weaklock : float;
}

let create ~now () =
  { clock = now; t0 = 0.; total = 0.; recorder = 0.; scheduler = 0.; weaklock = 0. }

let now t = t.clock ()

let add t bucket dt =
  match bucket with
  | Recorder -> t.recorder <- t.recorder +. dt
  | Scheduler -> t.scheduler <- t.scheduler +. dt
  | Weaklock -> t.weaklock <- t.weaklock +. dt

let start t = t.t0 <- t.clock ()

let finish t = t.total <- t.total +. (t.clock () -. t.t0)

let total_s t = t.total

let recorder_s t = t.recorder

let scheduler_s t = t.scheduler

let weaklock_s t = t.weaklock

let interp_s t =
  Float.max 0. (t.total -. t.recorder -. t.scheduler -. t.weaklock)
