(* Bucketed deadline wheel: level 0 groups deadlines into slots of
   2^gran_bits ticks; a binary min-heap of slot indices orders occupied
   slots. Cancellation marks entries dead by dropping them from the
   [by_tid] map — slot lists keep the stale pair until a minimum
   recomputation skims it off, so cancel stays O(1). The exact current
   minimum (deadline, tid) is cached and invalidated only when the
   cached entry itself dies. *)

type slot = {
  mutable entries : (int * int) list;  (* (deadline, tid); may hold stale pairs *)
  mutable live : int;
}

type t = {
  gran_bits : int;
  by_tid : (int, int) Hashtbl.t;  (* tid -> live deadline *)
  slots : (int, slot) Hashtbl.t;  (* slot index -> bucket *)
  mutable heap : int array;       (* min-heap of occupied slot indices *)
  mutable heap_len : int;
  mutable size : int;
  mutable cached_min : (int * int) option;
      (* (deadline, tid): exact global minimum when [Some]; [None] means
         stale — recompute on demand (also [None] when empty) *)
}

let create ?(gran_bits = 8) () =
  {
    gran_bits;
    by_tid = Hashtbl.create 16;
    slots = Hashtbl.create 16;
    heap = Array.make 16 0;
    heap_len = 0;
    size = 0;
    cached_min = None;
  }

let size t = t.size

let deadline_of t ~tid = Hashtbl.find_opt t.by_tid tid

(* ---- slot-index heap ---- *)

let heap_push t s =
  if t.heap_len = Array.length t.heap then begin
    let bigger = Array.make (2 * Array.length t.heap) 0 in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  t.heap.(t.heap_len) <- s;
  t.heap_len <- t.heap_len + 1;
  let i = ref (t.heap_len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    t.heap.(p) > t.heap.(!i)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let heap_pop t =
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_len && t.heap.(l) < t.heap.(!smallest) then smallest := l;
    if r < t.heap_len && t.heap.(r) < t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!i) in
      t.heap.(!i) <- t.heap.(!smallest);
      t.heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

(* ---- core ops ---- *)

let cancel t ~tid =
  match Hashtbl.find_opt t.by_tid tid with
  | None -> ()
  | Some d ->
      Hashtbl.remove t.by_tid tid;
      t.size <- t.size - 1;
      (match Hashtbl.find_opt t.slots (d lsr t.gran_bits) with
      | Some slot -> slot.live <- slot.live - 1
      | None -> ());
      (match t.cached_min with
      | Some (dm, tm) when dm = d && tm = tid -> t.cached_min <- None
      | _ -> ())

let add t ~tid ~deadline =
  cancel t ~tid;
  Hashtbl.replace t.by_tid tid deadline;
  t.size <- t.size + 1;
  let s = deadline lsr t.gran_bits in
  (match Hashtbl.find_opt t.slots s with
  | Some slot ->
      slot.entries <- (deadline, tid) :: slot.entries;
      slot.live <- slot.live + 1
  | None ->
      Hashtbl.replace t.slots s { entries = [ (deadline, tid) ]; live = 1 };
      heap_push t s);
  match t.cached_min with
  | Some m when m <= (deadline, tid) -> ()
  | Some _ -> t.cached_min <- Some (deadline, tid)
  | None -> ()
  (* None = stale: a fresh entry cannot restore exactness, leave it for
     the next recomputation *)

(* Walk the heap to the first slot with live entries, skim the stale
   pairs out of its bucket, and return its minimum — the global minimum:
   the earliest deadline lives in the earliest occupied slot, and all
   deadlines tied for earliest share that slot. *)
let recompute_min t : (int * int) option =
  if t.size = 0 then None
  else begin
    let result = ref None in
    while !result = None do
      let s = t.heap.(0) in
      match Hashtbl.find_opt t.slots s with
      | None -> heap_pop t
      | Some slot when slot.live <= 0 ->
          Hashtbl.remove t.slots s;
          heap_pop t
      | Some slot ->
          (* skim: keep each tid's current registration only (a re-add
             at the same deadline can leave an identical stale twin) *)
          let seen = Hashtbl.create (2 * slot.live) in
          let alive =
            List.filter
              (fun (d, tid) ->
                (not (Hashtbl.mem seen tid))
                && Hashtbl.find_opt t.by_tid tid = Some d
                &&
                (Hashtbl.add seen tid ();
                 true))
              slot.entries
          in
          slot.entries <- alive;
          slot.live <- List.length alive;
          if slot.live = 0 then begin
            Hashtbl.remove t.slots s;
            heap_pop t
          end
          else
            result :=
              Some
                (List.fold_left
                   (fun acc e -> if e < acc then e else acc)
                   (List.hd alive) (List.tl alive))
    done;
    !result
  end

let min_entry t =
  match t.cached_min with
  | Some _ as m -> m
  | None ->
      let m = recompute_min t in
      t.cached_min <- m;
      m

let next_deadline t =
  match min_entry t with Some (d, _) -> d | None -> max_int

let min_due t ~now =
  match min_entry t with
  | Some (d, tid) when d <= now -> Some (tid, d)
  | _ -> None

let next_fire t ~mask =
  let d = next_deadline t in
  if d >= max_int - mask then max_int else (d + mask) land lnot mask

let entries t = Hashtbl.fold (fun tid d acc -> (tid, d) :: acc) t.by_tid []
