(** May-happen-in-parallel analysis. See the interface for the model.

    Soundness invariant maintained throughout: a spawn site's state is in
    {Unspawned, Joined} only if no un-joined thread spawned at that site
    can exist at that program point, on every execution reaching it. All
    transfers that cannot maintain the invariant go to LiveMany. *)

open Minic.Ast
module A = Pointer.Absloc
module SS = Set.Make (String)

type liveness = Unspawned | LiveOne | LiveMany | Joined

let pp_liveness ppf l =
  Fmt.string ppf
    (match l with
    | Unspawned -> "unspawned"
    | LiveOne -> "live1"
    | LiveMany -> "live*"
    | Joined -> "joined")

(** Pointwise lattice join. [Unspawned] and [Joined] both mean "no live
    thread from this site", so their mix stays provably-not-live; any mix
    involving a live state must go to top ([LiveMany]) because a later
    [join] may only clear [LiveOne] when the handle is exact. *)
let lub a b =
  match (a, b) with
  | x, y when x = y -> x
  | Unspawned, Joined | Joined, Unspawned -> Joined
  | _ -> LiveMany

let not_live = function Unspawned | Joined -> true | LiveOne | LiveMany -> false

(* ------------------------------------------------------------------ *)
(* Handle shapes: how a spawn stores, and a join reads, a thread id *)

type hform =
  | Hscalar  (** [t = spawn(...)] *)
  | Hconst of int  (** [t[3] = spawn(...)] *)
  | Hvar of string  (** [t[i] = spawn(...)] inside a for-loop over [i] *)

(** One spawn site of a spawner's universe. *)
type usite = {
  us_idx : int;  (** index into state vectors *)
  us_site : Minic.Callgraph.spawn_site;
  us_handle : (A.t * hform) option;  (** handle absloc + shape, if parsed *)
}

(** How joins can retire a handle group (sites sharing a handle absloc). *)
type jmode =
  | Jscalar of int  (** singleton scalar site: [join(t)] retires it *)
  | Jconst of (int * int) list  (** distinct consts: [join(t[k])] *)
  | Jloop of int * induction  (** singleton loop site + its induction *)

type group = { gr_loc : A.t; gr_mode : jmode }

type universe = {
  u_root : string;
  u_funs : SS.t;  (** functions exclusive to this root *)
  u_sites : usite array;
  u_sid_idx : (int, int) Hashtbl.t;  (** spawn sid -> state index *)
  u_groups : group list;
  u_phase : (int, liveness array) Hashtbl.t;  (** stmt sid -> pre-state *)
  mutable u_poisoned : SS.t;  (** funs whose walk hit recursion *)
}

type t = {
  prog : program;
  cg : Minic.Callgraph.t;
  universes : universe list;
  fun_roots : (string, string list) Hashtbl.t;
  stmt_fun : (int, string) Hashtbl.t;  (** sid -> containing function *)
}

let spawner_roots t = List.map (fun u -> u.u_root) t.universes

(* ------------------------------------------------------------------ *)
(* Prescan: universes, handle groups, join-loop candidates *)

let stmt_fun_index (p : program) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (fd : fundec) ->
      iter_stmts (fun s -> Hashtbl.replace tbl s.sid fd.f_name) fd.f_body)
    p.p_funs;
  tbl

(** Functions reachable (by calls) from exactly this root and no other. *)
let exclusive_funs (cg : Minic.Callgraph.t) fun_roots r =
  List.filter
    (fun f -> Hashtbl.find_opt fun_roots f = Some [ r ])
    (Minic.Callgraph.reachable_from cg r)
  |> SS.of_list

(** Thread roots with provably at most one live instance over the whole
    execution, whose body we can therefore flow-analyze as a single
    thread: [main], plus roots spawned at exactly one site that sits
    directly in [main] outside any loop. *)
let single_instance_roots (cg : Minic.Callgraph.t) =
  "main"
  :: List.filter_map
       (fun r ->
         if r = "main" then None
         else
           match
             List.filter
               (fun (sp : Minic.Callgraph.spawn_site) ->
                 List.mem r sp.sp_targets)
               cg.cg_spawns
           with
           | [ sp ]
             when sp.sp_caller = "main" && (not sp.sp_in_loop)
                  && not (Minic.Callgraph.root_multiply_spawned cg r) ->
               Some r
           | _ -> None)
       cg.cg_roots

(** Parse the destination a spawn writes its thread id to. *)
let handle_of_ret (pa : Pointer.Analysis.t) fname (ret : lval option) :
    (A.t * hform) option =
  match ret with
  | Some (Var v) -> Some (Pointer.Analysis.var_loc pa fname v, Hscalar)
  | Some (Index (Var v, Const k)) ->
      Some (Pointer.Analysis.var_loc pa fname v, Hconst k)
  | Some (Index (Var v, Lval (Var i))) ->
      Some (Pointer.Analysis.var_loc pa fname v, Hvar i)
  | _ -> None

(** Is [loc] written by any statement outside [allowed] (a set of sids)?
    Uses the points-to solution on every write destination, so writes
    through pointers count. *)
let written_outside (p : program) (pa : Pointer.Analysis.t) stmt_fun loc
    allowed =
  let hit = ref false in
  iter_program_stmts
    (fun s ->
      if not (List.mem s.sid allowed) then
        let dest =
          match s.skind with
          | Assign (lv, _) | Call (Some lv, _, _) | Builtin (Some lv, _, _) ->
              Some lv
          | _ -> None
        in
        match dest with
        | None -> ()
        | Some lv -> (
            match Hashtbl.find_opt stmt_fun s.sid with
            | None -> ()
            | Some f ->
                if A.Set.mem loc (Pointer.Analysis.lval_objects pa f lv) then
                  hit := true))
    p;
  !hit

(** No [Break]/[Continue] anywhere in the block (conservative: even ones
    targeting a nested loop disqualify a matched spawn/join loop). *)
let rec no_break_continue (b : block) =
  List.for_all
    (fun s ->
      match s.skind with
      | Break | Continue -> false
      | If (_, b1, b2) -> no_break_continue b1 && no_break_continue b2
      | While (_, body, _) -> no_break_continue body
      | _ -> true)
    b

(** Does any statement of [b] other than [except] assign variable [v]
    directly? (Address-taken aliasing is covered separately by the
    single-writer check on the handle; the induction variable of a
    matchable loop must additionally never have its address taken.) *)
let assigns_var_outside (b : block) (v : string) (except : int option) =
  let hit = ref false in
  iter_stmts
    (fun s ->
      if Some s.sid <> except then
        match s.skind with
        | Assign (Var x, _) | Call (Some (Var x), _, _)
        | Builtin (Some (Var x), _, _) ->
            if x = v then hit := true
        | _ -> ())
    b;
  !hit

let addr_taken_anywhere (p : program) (v : string) =
  let hit = ref false in
  let rec scan_exp = function
    | Const _ -> ()
    | Lval lv -> scan_lval lv
    | AddrOf (Var x) -> if x = v then hit := true
    | AddrOf lv -> scan_lval lv
    | Unop (_, e) -> scan_exp e
    | Binop (_, a, b) -> scan_exp a; scan_exp b
  and scan_lval = function
    | Var _ -> ()
    | Deref e -> scan_exp e
    | Index (lv, e) -> scan_lval lv; scan_exp e
    | Field (lv, _) -> scan_lval lv
    | Arrow (e, _) -> scan_exp e
  in
  iter_program_stmts
    (fun s ->
      match s.skind with
      | Assign (lv, e) -> scan_lval lv; scan_exp e
      | Call (r, tgt, args) ->
          Option.iter scan_lval r;
          (match tgt with ViaPtr e -> scan_exp e | Direct _ -> ());
          List.iter scan_exp args
      | Builtin (r, _, args) -> Option.iter scan_lval r; List.iter scan_exp args
      | If (e, _, _) | While (e, _, _) -> scan_exp e
      | Return (Some e) -> scan_exp e
      | _ -> ())
    p;
  !hit

let const_exp = function Const _ -> true | _ -> false

let pos_const_exp = function Const k -> k > 0 | _ -> false

(** A well-behaved counted loop: constant bounds and positive constant
    step, induction variable written only by the step statement and never
    address-taken, no break/continue. Such a loop visits exactly the
    index sequence its {!induction} record describes. *)
let counted_loop (p : program) (body : block) (li : loop_info) =
  match (li.l_induction, li.l_step) with
  | Some ind, Some step ->
      const_exp ind.iv_init && const_exp ind.iv_limit
      && pos_const_exp ind.iv_step && no_break_continue body
      && (not (assigns_var_outside body ind.iv_var (Some step.sid)))
      && not (addr_taken_anywhere p ind.iv_var)
  | _ -> false

let same_range (a : induction) (b : induction) =
  a.iv_init = b.iv_init && a.iv_limit = b.iv_limit
  && a.iv_strict = b.iv_strict && a.iv_step = b.iv_step

(** The spawn-loop validity for a [t[i] = spawn(...)] site: the site is a
    direct child of a counted loop over [i], so every iteration spawns
    exactly once and records the thread id at a distinct index. Returns
    the loop's induction. *)
let spawn_loop_induction (p : program) fname sid ivar : induction option =
  match find_fun p fname with
  | None -> None
  | Some fd ->
      let found = ref None in
      let rec walk (b : block) =
        List.iter
          (fun s ->
            match s.skind with
            | If (_, b1, b2) -> walk b1; walk b2
            | While (_, body, li) ->
                if List.exists (fun c -> c.sid = sid) body then begin
                  match li.l_induction with
                  | Some ind
                    when ind.iv_var = ivar && counted_loop p body li ->
                      found := Some ind
                  | _ -> ()
                end
                else walk body
            | _ -> ())
          b
      in
      walk fd.f_body;
      !found

(** Group universe spawn sites by handle absloc and decide how joins can
    retire each group. A group is trackable only if the handle location
    is written by nothing but the group's own spawns (single-writer), and
    its shape is uniform: one scalar site, distinct constant indices, or
    one loop-indexed site under a valid counted spawn loop. *)
let build_groups (p : program) (pa : Pointer.Analysis.t) stmt_fun
    (sites : usite array) : group list =
  let by_loc : (A.t, usite list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun us ->
      match us.us_handle with
      | None -> ()
      | Some (loc, _) ->
          let cur = Option.value (Hashtbl.find_opt by_loc loc) ~default:[] in
          Hashtbl.replace by_loc loc (us :: cur))
    sites;
  Hashtbl.fold
    (fun loc members acc ->
      let sids = List.map (fun us -> us.us_site.sp_sid) members in
      if written_outside p pa stmt_fun loc sids then acc
      else
        let mode =
          match members with
          | [ ({ us_handle = Some (_, Hscalar); _ } as us) ] ->
              Some (Jscalar us.us_idx)
          | [ ({ us_handle = Some (_, Hvar iv); _ } as us) ] -> (
              match
                spawn_loop_induction p us.us_site.sp_caller us.us_site.sp_sid
                  iv
              with
              | Some ind -> Some (Jloop (us.us_idx, ind))
              | None -> None)
          | _ -> (
              let consts =
                List.filter_map
                  (fun us ->
                    match us.us_handle with
                    | Some (_, Hconst k) -> Some (k, us.us_idx)
                    | _ -> None)
                  members
              in
              if
                List.length consts = List.length members
                && List.length (List.sort_uniq compare (List.map fst consts))
                   = List.length consts
              then Some (Jconst consts)
              else None)
        in
        match mode with
        | None -> acc
        | Some gr_mode -> { gr_loc = loc; gr_mode } :: acc)
    by_loc []

(* ------------------------------------------------------------------ *)
(* Flow walker over one spawner's universe *)

(** Dataflow value: one liveness per universe spawn site, or [None] for
    unreachable flow (after [exit], or joined from nothing). *)
type st = liveness array option

let st_join (a : st) (b : st) : st =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Array.map2 lub a b)

let st_equal (a : st) (b : st) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Array.for_all2 ( = ) a b
  | _ -> false

(** Control-flow split of a block's outcome. *)
type flow = { norm : st; brk : st; cont : st; ret : st }

let dead_flow = { norm = None; brk = None; cont = None; ret = None }

let flow_join a b =
  {
    norm = st_join a.norm b.norm;
    brk = st_join a.brk b.brk;
    cont = st_join a.cont b.cont;
    ret = st_join a.ret b.ret;
  }

(** Record the pre-state of a statement, lub-merged across every context
    the walk visits it in. *)
let record (u : universe) (sid : int) (s : st) =
  match s with
  | None -> ()
  | Some arr -> (
      match Hashtbl.find_opt u.u_phase sid with
      | None -> Hashtbl.replace u.u_phase sid (Array.copy arr)
      | Some old -> Hashtbl.replace u.u_phase sid (Array.map2 lub old arr))

(** Effect of executing a tracked spawn site. *)
let spawn_effect cur =
  match cur with Unspawned | Joined -> LiveOne | LiveOne | LiveMany -> LiveMany

(** Effect of [join(arg)] evaluated in [fname]: retire the matching
    handle group's site when the handle is exact, else no-op (joins can
    only improve precision, never lose soundness by being ignored). *)
let join_effect (u : universe) (pa : Pointer.Analysis.t) fname (arg : exp)
    (arr : liveness array) =
  let retire idx = if arr.(idx) = LiveOne then arr.(idx) <- Joined in
  let lookup v = Pointer.Analysis.var_loc pa fname v in
  match arg with
  | Lval (Var v) ->
      let loc = lookup v in
      List.iter
        (fun g ->
          if A.equal g.gr_loc loc then
            match g.gr_mode with Jscalar idx -> retire idx | _ -> ())
        u.u_groups
  | Lval (Index (Var v, Const k)) ->
      let loc = lookup v in
      List.iter
        (fun g ->
          if A.equal g.gr_loc loc then
            match g.gr_mode with
            | Jconst consts -> (
                match List.assoc_opt k consts with
                | Some idx -> retire idx
                | None -> ())
            | _ -> ())
        u.u_groups
  | _ -> ()

(** Does [While (cond, body, li)] in [fname] match a spawn loop's handle
    group as its retiring join loop? Pattern: a counted loop whose body is
    exactly [join(t[i]); step] over the same constant index range as the
    spawn loop. Every thread the spawn loop created is then joined, so the
    site drops to [Joined] no matter how high its state. *)
let join_loop_match (u : universe) (p : program) (pa : Pointer.Analysis.t)
    fname (body : block) (li : loop_info) : int option =
  match (li.l_induction, li.l_step) with
  | Some ind, Some step when counted_loop p body li -> (
      let non_step = List.filter (fun s -> s.sid <> step.sid) body in
      match non_step with
      | [ { skind = Builtin (None, Join, [ Lval (Index (Var v, Lval (Var i))) ]); _ } ]
        when i = ind.iv_var -> (
          let loc = Pointer.Analysis.var_loc pa fname v in
          let found = ref None in
          List.iter
            (fun g ->
              if A.equal g.gr_loc loc then
                match g.gr_mode with
                | Jloop (idx, sp_ind) when same_range sp_ind ind ->
                    found := Some idx
                | _ -> ())
            u.u_groups;
          !found)
      | _ -> None)
  | _ -> None

exception Recursion of string

(** Walk a block. [vstack] is the inlining stack (function names);
    recursion raises {!Recursion} to the driver, which poisons the
    universe. Calls to functions outside the universe are identity
    transfers: a non-exclusive function cannot call an exclusive one
    (exclusivity is closed under callers), so it can neither execute a
    universe spawn site nor a join that retires one — and ignoring joins
    is conservative. *)
let rec walk_block (u : universe) (p : program) (pa : Pointer.Analysis.t)
    (vstack : string list) fname (b : block) (s : st) : flow =
  List.fold_left
    (fun (fl : flow) (stmt : stmt) ->
      match fl.norm with
      | None -> fl
      | Some _ ->
          let after = walk_stmt u p pa vstack fname stmt fl.norm in
          { after with
            brk = st_join fl.brk after.brk;
            cont = st_join fl.cont after.cont;
            ret = st_join fl.ret after.ret;
          })
    { dead_flow with norm = s }
    b

and walk_stmt (u : universe) (p : program) (pa : Pointer.Analysis.t)
    (vstack : string list) fname (stmt : stmt) (s : st) : flow =
  record u stmt.sid s;
  let id = { dead_flow with norm = s } in
  match stmt.skind with
  | Assign _ | WeakEnter _ | WeakExit _ -> id
  | Break -> { dead_flow with brk = s }
  | Continue -> { dead_flow with cont = s }
  | Return _ -> { dead_flow with ret = s }
  | Builtin (_, Exit, _) -> dead_flow
  | Builtin (_, Spawn, _) -> (
      match (Hashtbl.find_opt u.u_sid_idx stmt.sid, s) with
      | Some idx, Some arr ->
          let arr = Array.copy arr in
          arr.(idx) <- spawn_effect arr.(idx);
          { dead_flow with norm = Some arr }
      | _ -> id)
  | Builtin (_, Join, [ arg ]) -> (
      match s with
      | Some arr ->
          let arr = Array.copy arr in
          join_effect u pa fname arg arr;
          { dead_flow with norm = Some arr }
      | None -> id)
  | Builtin _ -> id
  | If (_, b1, b2) ->
      let f1 = walk_block u p pa vstack fname b1 s in
      let f2 = walk_block u p pa vstack fname b2 s in
      flow_join f1 f2
  | While (_, body, li) ->
      let head = ref s in
      let brks = ref None and rets = ref None in
      let fixed = ref false in
      while not !fixed do
        let fl = walk_block u p pa vstack fname body !head in
        brks := st_join !brks fl.brk;
        rets := st_join !rets fl.ret;
        let head' = st_join !head (st_join fl.norm fl.cont) in
        if st_equal head' !head then fixed := true else head := head'
      done;
      (* the loop may run zero times, so the exit includes the head *)
      let exit = st_join !head !brks in
      let exit =
        match (join_loop_match u p pa fname body li, exit) with
        | Some idx, Some arr ->
            let arr = Array.copy arr in
            arr.(idx) <- Joined;
            Some arr
        | _ -> exit
      in
      { dead_flow with norm = exit; ret = !rets }
  | Call (_, tgt, _) ->
      let targets =
        match tgt with
        | Direct g -> [ g ]
        | ViaPtr e -> Pointer.Analysis.resolve_funptr pa fname e
      in
      let transfer g =
        if not (SS.mem g u.u_funs) then id
        else if List.mem g vstack then raise (Recursion g)
        else
          match find_fun p g with
          | None -> id
          | Some fd ->
              let fl =
                walk_block u p pa (g :: vstack) g fd.f_body s
              in
              (* function exit = normal fall-through joined with returns;
                 break/continue cannot escape a function body *)
              { dead_flow with norm = st_join fl.norm fl.ret }
      in
      List.fold_left
        (fun acc g -> flow_join acc (transfer g))
        dead_flow targets

(* ------------------------------------------------------------------ *)
(* Driver *)

let analyze_spawner (p : program) (pa : Pointer.Analysis.t)
    (cg : Minic.Callgraph.t) fun_roots stmt_fun (r : string) :
    universe option =
  match find_fun p r with
  | None -> None
  | Some fd ->
      let u_funs = exclusive_funs cg fun_roots r in
      let sites =
        List.filter
          (fun (sp : Minic.Callgraph.spawn_site) -> SS.mem sp.sp_caller u_funs)
          cg.cg_spawns
        |> List.mapi (fun i (sp : Minic.Callgraph.spawn_site) ->
               let handle =
                 let ret =
                   let found = ref None in
                   iter_program_stmts
                     (fun s ->
                       if s.sid = sp.sp_sid then
                         match s.skind with
                         | Builtin (ret, Spawn, _) -> found := Some ret
                         | _ -> ())
                     p;
                   Option.value !found ~default:None
                 in
                 handle_of_ret pa sp.sp_caller ret
               in
               { us_idx = i; us_site = sp; us_handle = handle })
        |> Array.of_list
      in
      let u_sid_idx = Hashtbl.create 8 in
      Array.iter
        (fun us -> Hashtbl.replace u_sid_idx us.us_site.sp_sid us.us_idx)
        sites;
      let u =
        {
          u_root = r;
          u_funs;
          u_sites = sites;
          u_sid_idx;
          u_groups = build_groups p pa stmt_fun sites;
          u_phase = Hashtbl.create 64;
          u_poisoned = SS.empty;
        }
      in
      let entry = Some (Array.make (Array.length sites) Unspawned) in
      (try ignore (walk_block u p pa [ r ] r fd.f_body entry)
       with Recursion g ->
         (* everything the cycle can reach may execute in contexts the
            walk did not record: poison it all *)
         u.u_poisoned <-
           SS.inter u_funs
             (SS.of_list (Minic.Callgraph.reachable_from cg g)));
      Some u

let analyze (p : program) (pa : Pointer.Analysis.t) (cg : Minic.Callgraph.t) :
    t =
  let fun_roots = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          let cur = Option.value (Hashtbl.find_opt fun_roots f) ~default:[] in
          if not (List.mem r cur) then Hashtbl.replace fun_roots f (r :: cur))
        (Minic.Callgraph.reachable_from cg r))
    cg.cg_roots;
  let stmt_fun = stmt_fun_index p in
  let universes =
    List.filter_map
      (analyze_spawner p pa cg fun_roots stmt_fun)
      (single_instance_roots cg)
  in
  { prog = p; cg; universes; fun_roots; stmt_fun }

(* ------------------------------------------------------------------ *)
(* Queries *)

let roots_of (t : t) f =
  Option.value (Hashtbl.find_opt t.fun_roots f) ~default:[]

(** The universe whose phases cover every execution of [fname]: [fname]
    exclusive to the universe's root and not poisoned. *)
let covering_universe (t : t) fname =
  match roots_of t fname with
  | [ r ] ->
      List.find_opt
        (fun u ->
          u.u_root = r && SS.mem fname u.u_funs
          && not (SS.mem fname u.u_poisoned))
        t.universes
  | _ -> None

let sites_targeting (t : t) root =
  List.filter
    (fun (sp : Minic.Callgraph.spawn_site) -> List.mem root sp.sp_targets)
    t.cg.Minic.Callgraph.cg_spawns

let not_live_at (t : t) ~root ~fname ~sid =
  root <> "main"
  &&
  match covering_universe t fname with
  | None -> false
  | Some u -> (
      (* code of [fname] runs in [u.u_root]'s own thread *)
      root <> u.u_root
      &&
      match Hashtbl.find_opt u.u_phase sid with
      | None -> false
      | Some arr ->
          let sites = sites_targeting t root in
          sites <> []
          && List.for_all
               (fun (sp : Minic.Callgraph.spawn_site) ->
                 match Hashtbl.find_opt u.u_sid_idx sp.sp_sid with
                 | Some idx ->
                     (not (SS.mem sp.sp_caller u.u_poisoned))
                     && not_live arr.(idx)
                 | None -> false)
               sites)

(** Are roots [ra] and [rb] never simultaneously live? Both directions of
    the phase check are required: each root's every spawn must occur at a
    moment when no thread of the other root is live. If two live
    intervals overlapped, one of the two births would land inside the
    other root's live interval and fail its direction. *)
let sibling_serialized (t : t) ra rb =
  ra <> rb && ra <> "main" && rb <> "main"
  && List.exists
       (fun u ->
         let ok_site (sp : Minic.Callgraph.spawn_site) =
           Hashtbl.mem u.u_sid_idx sp.sp_sid
           && not (SS.mem sp.sp_caller u.u_poisoned)
         in
         let sa = sites_targeting t ra and sb = sites_targeting t rb in
         let others_dead_at (sp : Minic.Callgraph.spawn_site) others =
           match Hashtbl.find_opt u.u_phase sp.sp_sid with
           | None -> false
           | Some arr ->
               List.for_all
                 (fun (o : Minic.Callgraph.spawn_site) ->
                   match Hashtbl.find_opt u.u_sid_idx o.sp_sid with
                   | Some idx -> not_live arr.(idx)
                   | None -> false)
                 others
         in
         sa <> [] && sb <> []
         && List.for_all ok_site sa && List.for_all ok_site sb
         && List.for_all (fun sp -> others_dead_at sp sb) sa
         && List.for_all (fun sp -> others_dead_at sp sa) sb)
       t.universes

let multiply (t : t) r = Minic.Callgraph.root_multiply_spawned t.cg r

let pair_serialized (t : t) ~f1 ~sid1 ~f2 ~sid2 =
  let r1 = roots_of t f1 and r2 = roots_of t f2 in
  List.for_all
    (fun ra ->
      List.for_all
        (fun rb ->
          (ra = rb && not (multiply t ra))
          || not_live_at t ~root:rb ~fname:f1 ~sid:sid1
          || not_live_at t ~root:ra ~fname:f2 ~sid:sid2
          || sibling_serialized t ra rb)
        r2)
    r1

let phase_at (t : t) ~fname ~sid =
  match covering_universe t fname with
  | None -> None
  | Some u -> (
      match Hashtbl.find_opt u.u_phase sid with
      | None -> None
      | Some arr ->
          Some
            (Array.to_list
               (Array.mapi
                  (fun i l -> (u.u_sites.(i).us_site.sp_sid, l))
                  arr)))
