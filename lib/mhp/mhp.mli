(** May-happen-in-parallel (MHP) analysis over thread roots and program
    points.

    RELAY deliberately ignores fork/join ordering (paper Section 3), so
    e.g. initialization code in [main] is reported as racing with every
    spawned worker. This pass recovers the fork/join ordering that is
    statically evident — a sound under-approximation of "cannot run
    concurrently" — so {!Relay.Detect} can drop race pairs that program
    structure already serializes before they cost a weak-lock.

    The analysis runs one flow-sensitive {e phase} computation per
    {e spawner root} (a thread root that provably has at most one live
    instance: [main], plus roots spawned exactly once directly from
    [main]'s body outside any loop). The abstract state maps each spawn
    site in the spawner's {e universe} (the functions exclusive to that
    root) to a liveness value:

    {v Unspawned < LiveOne, Joined < LiveMany v}

    - [Unspawned]: the site has not executed; no thread from it exists.
    - [LiveOne]: at most one un-joined thread from the site exists, and
      its id is the last value written to the site's handle.
    - [LiveMany]: any number of un-joined threads may exist (top).
    - [Joined]: the site has executed, and every thread it spawned has
      been joined.

    A [join] lowers [LiveOne] to [Joined] only when the joined handle is
    {e single-writer} (no statement other than the spawn writes its
    abstract location, per the points-to solution) and matches the spawn's
    handle shape: a scalar [t], a constant index [t[k]], or a spawn
    loop / join loop pair over syntactically identical constant induction
    ranges. Everything else conservatively stays live.

    Recursion through a universe poisons the involved functions (their
    statements execute in contexts the walk did not record), and any
    statement without a recorded phase answers "may be live". *)

type liveness = Unspawned | LiveOne | LiveMany | Joined

val pp_liveness : liveness Fmt.t

type t

(** Run the analysis. [cg] must be the pointer-resolved call graph of
    [pa] (as built by {!Pointer.Analysis.callgraph}), so spawn targets
    seen here agree with the ones race detection uses. *)
val analyze : Minic.Ast.program -> Pointer.Analysis.t -> Minic.Callgraph.t -> t

(** The spawner roots that were analyzed (each owns a phase universe). *)
val spawner_roots : t -> string list

(** [not_live_at t ~root ~fname ~sid]: is it guaranteed that {e no}
    thread rooted at [root] is live whenever statement [sid] of function
    [fname] executes? Requires [fname] to be exclusive to an analyzed
    spawner whose universe contains every spawn site that can target
    [root]; answers [false] whenever it cannot prove the claim. *)
val not_live_at : t -> root:string -> fname:string -> sid:int -> bool

(** [pair_serialized t ~f1 ~sid1 ~f2 ~sid2]: can the two statements never
    execute concurrently? True only if {e every} pair of thread roots the
    two functions can run under is serialized — by being the same
    single-instance root, by one side executing only while the other root
    is provably not live, or by the two roots' spawn sites never
    overlapping in time (sibling serialization). *)
val pair_serialized :
  t -> f1:string -> sid1:int -> f2:string -> sid2:int -> bool

(** Debug/report view: the phase state recorded at a statement of an
    analyzed spawner's universe — each universe spawn site's sid with its
    liveness — or [None] if the statement was never reached by the walk. *)
val phase_at : t -> fname:string -> sid:int -> (int * liveness) list option
