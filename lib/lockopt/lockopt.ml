(** Interprocedural must-held weak-lockset analysis and redundant-
    acquisition elision (DESIGN.md §9).

    The pass answers one question per plan region: is every lock
    acquisition the region performs already guaranteed — with a subsuming
    claim — at every point the region can be entered? If so the region is
    deleted from the plan wholesale. Elision must be all-or-nothing per
    region because the engine's region stack {e suspends} the enclosing
    region's locks on entry: removing one acquisition from a region that
    keeps others would drop the removed lock's protection exactly while
    the region runs. Deleting the whole region instead means no
    enter/exit is emitted, so the covering (outer or caller-side) locks
    simply stay held across the region's extent, and every interleaving
    the weak locks serialize is serialized identically — record/replay
    digests are unchanged.

    The dataflow fact mirrors the engine: a stack of region levels,
    innermost on top, whose base level is the interprocedural context
    (what every call site of the function must hold). Only the top level
    is actually held at run time (outer levels are suspended), so
    coverage is always judged against the stack top. The analysis runs on
    the {e instrumented} program (via {!Instrument.Transform.apply_mapped},
    which labels each [WeakEnter] with its originating plan regions), so
    region entries are ordinary statements in the CFG. *)

open Minic.Ast
module Plan = Instrument.Plan
module Cfg = Minic.Cfg
module Cg = Minic.Callgraph
module Linexp = Symbolic.Linexp

type prov = Kept | Elided_dominated | Elided_callsite

let pp_prov ppf = function
  | Kept -> Fmt.string ppf "kept"
  | Elided_dominated -> Fmt.string ppf "elided:dominated"
  | Elided_callsite -> Fmt.string ppf "elided:callsite"

type entry = { e_region : Plan.region; e_acq : weak_acq; e_prov : prov }

type report = {
  lo_enabled : bool;
  lo_plan_acqs : int;
  lo_elided_acqs : int;
  lo_regions_elided : int;
  lo_entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* Affine range comparison *)

(* Address expressions as affine forms; [&v] becomes the pseudo-symbol
   ["&v"] (a frame constant), so identical bases cancel in differences. *)
let rec lin_of_exp (e : exp) : Linexp.t option =
  match e with
  | Const c -> Some (Linexp.const c)
  | Lval (Var v) -> Some (Linexp.var v)
  | AddrOf (Var v) -> Some (Linexp.var ("&" ^ v))
  | Unop (Neg, e) -> Option.map Linexp.neg (lin_of_exp e)
  | Binop (Add, a, b) -> (
      match (lin_of_exp a, lin_of_exp b) with
      | Some la, Some lb -> Some (Linexp.add la lb)
      | _ -> None)
  | Binop (Sub, a, b) -> (
      match (lin_of_exp a, lin_of_exp b) with
      | Some la, Some lb -> Some (Linexp.sub la lb)
      | _ -> None)
  | Binop (Mul, a, b) -> (
      match (lin_of_exp a, lin_of_exp b) with
      | Some la, Some lb -> Linexp.mul la lb
      | _ -> None)
  | _ -> None

let const_exp (e : exp) : bool =
  match lin_of_exp e with Some l -> Linexp.is_const l | None -> false

(** Symbols whose value provably cannot change while the function runs:
    address pseudo-symbols (frame constants), and parameters/locals that
    are never (re)assigned and whose address is never taken. Only for
    such symbols is a static range comparison meaningful — the covering
    claim was evaluated at the covering region's entry, the covered claim
    would have been evaluated later, and an unstable symbol could change
    value in between. *)
let stable_pred (fd : fundec) : string -> bool =
  let names = Hashtbl.create 16 in
  List.iter
    (fun (v : var_decl) -> Hashtbl.replace names v.v_name ())
    (fd.f_params @ fd.f_locals);
  let bad = Hashtbl.create 16 in
  let rec exp_scan (e : exp) =
    match e with
    | Const _ -> ()
    | Lval lv -> lval_scan lv
    | AddrOf (Var v) -> Hashtbl.replace bad v ()
    | AddrOf lv -> lval_scan lv
    | Unop (_, e) -> exp_scan e
    | Binop (_, a, b) ->
        exp_scan a;
        exp_scan b
  and lval_scan = function
    | Var _ -> ()
    | Deref e -> exp_scan e
    | Index (lv, e) ->
        lval_scan lv;
        exp_scan e
    | Field (lv, _) -> lval_scan lv
    | Arrow (e, _) -> exp_scan e
  in
  let assign_target = function
    | Var v -> Hashtbl.replace bad v ()
    | lv -> lval_scan lv
  in
  iter_stmts
    (fun s ->
      match s.skind with
      | Assign (lv, e) ->
          assign_target lv;
          exp_scan e
      | Call (ret, tgt, args) ->
          Option.iter assign_target ret;
          (match tgt with ViaPtr e -> exp_scan e | Direct _ -> ());
          List.iter exp_scan args
      | Builtin (ret, _, args) ->
          Option.iter assign_target ret;
          List.iter exp_scan args
      | If (c, _, _) | While (c, _, _) -> exp_scan c
      | Return (Some e) -> exp_scan e
      | Return None | Break | Continue | WeakEnter _ | WeakExit _ -> ())
    fd.f_body;
  fun v ->
    (String.length v > 0 && v.[0] = '&')
    || (Hashtbl.mem names v && not (Hashtbl.mem bad v))

(* provable [a <= b], with every symbol stable *)
let lin_le stable (a : exp) (b : exp) : bool =
  match (lin_of_exp a, lin_of_exp b) with
  | Some la, Some lb -> (
      match Linexp.const_value (Linexp.sub lb la) with
      | Some d ->
          d >= 0
          && List.for_all stable (Linexp.symbols la)
          && List.for_all stable (Linexp.symbols lb)
      | None -> false)
  | _ -> false

(* A held range protects a needed range when it includes it and its
   access mode conflicts with at least everything the needed mode would
   conflict with: a write claim excludes readers and writers, a read
   claim only writers — so a held read range cannot stand in for a write
   claim. *)
let range_covers stable (h : warange) (r : warange) : bool =
  (h.wr_write || not r.wr_write)
  && lin_le stable h.wr_lo r.wr_lo
  && lin_le stable r.wr_hi h.wr_hi

(* held claim subsumes needed claim; [] = total (conflicts with every
   other acquisition of the lock, so it covers anything — but a partial
   held claim never covers a total need) *)
let claim_covers stable (held : warange list) (need : warange list) : bool =
  held = []
  || need <> []
     && List.for_all
          (fun r -> List.exists (fun h -> range_covers stable h r) held)
          need

let acq_covered stable (held : weak_acq list) (a : weak_acq) : bool =
  List.exists
    (fun h ->
      h.wa_lock = a.wa_lock && claim_covers stable h.wa_ranges a.wa_ranges)
    held

(* ------------------------------------------------------------------ *)
(* The must-held dataflow *)

(* One active-region level. [lv_node] identifies the pushing [WeakEnter]:
   the CFG node containing it, [-1] for the interprocedural base context,
   [-2] when a join merged distinct pushers (rejected for coverage — a
   unique covering entry is what the dominator check certifies). *)
type level = { lv_acqs : weak_acq list; lv_node : int }

type state =
  | Bot  (** unreachable *)
  | Poison  (** unbalanced or unknown region stack *)
  | Stack of level list  (** innermost first; last = base context *)

let meet_acqs (a : weak_acq list) (b : weak_acq list) : weak_acq list =
  List.filter (fun x -> List.mem x b) a

let meet_level a b =
  {
    lv_acqs = meet_acqs a.lv_acqs b.lv_acqs;
    lv_node = (if a.lv_node = b.lv_node then a.lv_node else -2);
  }

let meet s1 s2 =
  match (s1, s2) with
  | Bot, s | s, Bot -> s
  | Poison, _ | _, Poison -> Poison
  | Stack a, Stack b ->
      if List.length a <> List.length b then Poison
      else Stack (List.map2 meet_level a b)

(* transfer of one statement: region entries push, exits pop; everything
   else (including calls — the callee's own region churn is balanced by
   its return) leaves the stack unchanged *)
let step stmt_of node_id st sid =
  match st with
  | Bot | Poison -> st
  | Stack levels -> (
      match (Hashtbl.find stmt_of sid).skind with
      | WeakEnter acqs -> Stack ({ lv_acqs = acqs; lv_node = node_id } :: levels)
      | WeakExit _ -> (
          match levels with
          | _ :: (_ :: _ as rest) -> Stack rest
          | _ -> Poison (* would pop the base context: unbalanced path *))
      | _ -> st)

(* Facts from different frames are only comparable when value-free:
   keep total claims and claims with fully constant ranges. *)
let ctx_sanitize (acqs : weak_acq list) : weak_acq list =
  List.filter
    (fun a ->
      a.wa_ranges = []
      || List.for_all
           (fun r -> const_exp r.wr_lo && const_exp r.wr_hi)
           a.wa_ranges)
    acqs

(** Run the dataflow over one instrumented function under entry context
    [ctx]; report every region-entry instance to [record_enter] and the
    must-held top at every direct call to [record_call]. *)
let analyze_fun ~record_enter ~record_call (fd : fundec)
    (ctx : weak_acq list) : unit =
  let cfg = Cfg.build fd in
  let idom = Cfg.idom cfg in
  let stmt_of : (int, stmt) Hashtbl.t = Hashtbl.create 64 in
  iter_stmts (fun s -> Hashtbl.replace stmt_of s.sid s) fd.f_body;
  let n = Array.length cfg.Cfg.c_nodes in
  let input = Array.make n Bot in
  let output = Array.make n Bot in
  let entry_st = Stack [ { lv_acqs = ctx; lv_node = -1 } ] in
  let transfer i st =
    List.fold_left (step stmt_of i) st cfg.Cfg.c_nodes.(i).n_stmts
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let node = cfg.Cfg.c_nodes.(i) in
      let in_st =
        if i = cfg.Cfg.c_entry then entry_st
        else
          List.fold_left (fun acc pr -> meet acc output.(pr)) Bot node.n_preds
      in
      if in_st <> input.(i) then begin
        input.(i) <- in_st;
        changed := true
      end;
      let out_st = transfer i in_st in
      if out_st <> output.(i) then begin
        output.(i) <- out_st;
        changed := true
      end
    done
  done;
  (* stable states: walk each reachable node once, reporting the held
     top (the only level actually held at run time) before each region
     entry and at each direct call *)
  for i = 0 to n - 1 do
    match input.(i) with
    | Bot -> ()
    | st0 ->
        ignore
          (List.fold_left
             (fun st sid ->
               let top =
                 match st with Stack (t :: _) -> Some t | _ -> None
               in
               (match (Hashtbl.find stmt_of sid).skind with
               | WeakEnter acqs ->
                   record_enter ~idom ~node:i ~sid ~top acqs
               | Call (_, Direct g, _) -> record_call g top
               | _ -> ());
               step stmt_of i st sid)
             st0 cfg.Cfg.c_nodes.(i).n_stmts)
  done

(* ------------------------------------------------------------------ *)
(* The pass *)

let region_key = function
  | Plan.RFunc f -> `F f
  | Plan.RLoop (_, lid) -> `L lid
  | Plan.RRun (_, head) -> `R head
  | Plan.RStmt sid -> `S sid

let disabled (plan : Plan.t) : report =
  {
    lo_enabled = false;
    lo_plan_acqs = Plan.n_acquisitions plan;
    lo_elided_acqs = 0;
    lo_regions_elided = 0;
    lo_entries = [];
  }

(* every (region, acq) of [plan], provenance looked up in [elided] *)
let entries_of (p : program) (plan : Plan.t)
    (elided : (Plan.region, prov) Hashtbl.t) : entry list =
  let fname_of_sid = Hashtbl.create 256 in
  let fname_of_lid = Hashtbl.create 32 in
  List.iter
    (fun (fd : fundec) ->
      iter_stmts
        (fun s ->
          Hashtbl.replace fname_of_sid s.sid fd.f_name;
          match s.skind with
          | While (_, _, li) -> Hashtbl.replace fname_of_lid li.lid fd.f_name
          | _ -> ())
        fd.f_body)
    p.p_funs;
  let fname tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:"?" in
  let collect tbl mk acc =
    Hashtbl.fold
      (fun k acqs acc ->
        let r = mk k in
        let prv =
          Option.value (Hashtbl.find_opt elided r) ~default:Kept
        in
        List.fold_left
          (fun acc a -> { e_region = r; e_acq = a; e_prov = prv } :: acc)
          acc acqs)
      tbl acc
  in
  []
  |> collect plan.Plan.pl_func (fun f -> Plan.RFunc f)
  |> collect plan.Plan.pl_loop (fun lid ->
         Plan.RLoop (fname fname_of_lid lid, lid))
  |> collect plan.Plan.pl_run (fun head ->
         Plan.RRun (fname fname_of_sid head, head))
  |> collect plan.Plan.pl_stmt (fun sid -> Plan.RStmt sid)
  |> List.sort (fun a b ->
         compare
           (a.e_region, a.e_acq.wa_lock)
           (b.e_region, b.e_acq.wa_lock))

(* what one function's dataflow reports back: region-entry coverage
   verdicts and per-call-site must-held contexts, in CFG traversal
   order. Pure data, so functions can be analyzed concurrently and
   their events replayed serially. *)
type fn_events = {
  ev_enters : (Plan.region list * bool * prov) list;
  ev_calls : (string * weak_acq list) list;
}

let optimize ?(pool : Par.Pool.t option) (p : program) (plan : Plan.t)
    (cg : Cg.t) : Plan.t * report =
  let prog_i, origin = Instrument.Transform.apply_mapped p plan in
  (* functions whose entry context is pinned to "nothing held": thread
     roots (main + spawn targets), address-taken functions (indirect
     call sites are not enumerable), and anything on a call-graph cycle *)
  let poisoned = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace poisoned f ()) cg.Cg.cg_roots;
  List.iter (fun f -> Hashtbl.replace poisoned f ()) (Cg.address_taken_funs p);
  List.iter
    (fun (fd : fundec) ->
      if
        List.exists
          (fun g -> List.mem fd.f_name (Cg.reachable_from cg g))
          (Cg.callees cg fd.f_name)
      then Hashtbl.replace poisoned fd.f_name ())
    p.p_funs;
  (* per-region entry instances: (covered, provenance) per instance *)
  let insts : (Plan.region, (bool * prov) list) Hashtbl.t =
    Hashtbl.create 32
  in
  (* per-callee sanitized must-held sets, one per live call site *)
  let call_ctx : (string, weak_acq list list) Hashtbl.t = Hashtbl.create 32 in
  let processed = Hashtbl.create 16 in
  (* the caller-context dataflow is scheduled over the top-down
     condensation of the call graph: a function's callers all sit in
     strictly earlier levels (cycle members are poisoned anyway), so
     every entry context within a level is fixed at level start and the
     level's functions can run concurrently. Their events replay into
     [insts]/[call_ctx] serially, in level order; all downstream
     consumers intersect or quantify over these lists, so the resulting
     plan and report are identical to a serial run. *)
  let run_fn (f, fd_i, ctx) =
    let stable = stable_pred fd_i in
    let enters = ref [] in
    let calls = ref [] in
    let record_enter ~idom ~node ~sid ~top acqs =
      match Hashtbl.find_opt origin sid with
      | None | Some [] -> ()
      | Some regions ->
          let covered, prv =
            match top with
            | None -> (false, Kept)
            | Some t ->
                let usable, prv =
                  if t.lv_node = -1 then (true, Elided_callsite)
                  else if t.lv_node >= 0 && Cfg.dominates idom t.lv_node node
                  then (true, Elided_dominated)
                  else (false, Kept)
                in
                if
                  usable && acqs <> []
                  && List.for_all (acq_covered stable t.lv_acqs) acqs
                then (true, prv)
                else (false, Kept)
          in
          enters := (regions, covered, prv) :: !enters
    in
    let record_call g top =
      let acqs =
        match top with
        | Some (t : level) -> ctx_sanitize t.lv_acqs
        | None -> []
      in
      calls := (g, acqs) :: !calls
    in
    analyze_fun ~record_enter ~record_call fd_i ctx;
    (f, { ev_enters = List.rev !enters; ev_calls = List.rev !calls })
  in
  List.iter
    (fun level ->
      let tasks =
        List.concat level
        |> List.filter_map (fun f ->
               match find_fun prog_i f with
               | None -> None
               | Some fd_i ->
                   let ctx =
                     if Hashtbl.mem poisoned f then []
                     else
                       let callers =
                         Option.value
                           (Hashtbl.find_opt cg.Cg.cg_callers f)
                           ~default:[]
                       in
                       if
                         callers = []
                         || List.exists
                              (fun c -> not (Hashtbl.mem processed c))
                              callers
                       then []
                       else
                         match Hashtbl.find_opt call_ctx f with
                         | None | Some [] -> [] (* no live call site *)
                         | Some (first :: rest) ->
                             List.fold_left meet_acqs first rest
                   in
                   Some (f, fd_i, ctx))
      in
      Par.Pool.map_opt pool run_fn tasks
      |> List.iter (fun (f, ev) ->
             List.iter
               (fun (regions, covered, prv) ->
                 List.iter
                   (fun r ->
                     let cur =
                       Option.value (Hashtbl.find_opt insts r) ~default:[]
                     in
                     Hashtbl.replace insts r ((covered, prv) :: cur))
                   regions)
               ev.ev_enters;
             List.iter
               (fun (g, acqs) ->
                 let cur =
                   Option.value (Hashtbl.find_opt call_ctx g) ~default:[]
                 in
                 Hashtbl.replace call_ctx g (acqs :: cur))
               ev.ev_calls;
             Hashtbl.replace processed f ()))
    (Cg.scc_levels ~down:true cg p);
  (* a region is elided only when every one of its entry instances is
     fully covered — including the acquisitions of any region sharing
     the same [WeakEnter] (the enter's acq list is their merge, and all
     merged regions share exactly the same instances) *)
  let elided : (Plan.region, prov) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun r is ->
      if is <> [] && List.for_all fst is then begin
        let prv =
          if List.for_all (fun (_, p) -> p = Elided_callsite) is then
            Elided_callsite
          else Elided_dominated
        in
        Hashtbl.replace elided r prv
      end)
    insts;
  let plan' =
    let func = Hashtbl.copy plan.Plan.pl_func in
    let loop = Hashtbl.copy plan.Plan.pl_loop in
    let run = Hashtbl.copy plan.Plan.pl_run in
    let stmt = Hashtbl.copy plan.Plan.pl_stmt in
    Hashtbl.iter
      (fun r _ ->
        match region_key r with
        | `F f -> Hashtbl.remove func f
        | `L lid -> Hashtbl.remove loop lid
        | `R head -> Hashtbl.remove run head
        | `S sid -> Hashtbl.remove stmt sid)
      elided;
    { plan with Plan.pl_func = func; pl_loop = loop; pl_run = run; pl_stmt = stmt }
  in
  let plan_acqs = Plan.n_acquisitions plan in
  let report =
    {
      lo_enabled = true;
      lo_plan_acqs = plan_acqs;
      lo_elided_acqs = plan_acqs - Plan.n_acquisitions plan';
      lo_regions_elided = Hashtbl.length elided;
      lo_entries = entries_of p plan elided;
    }
  in
  (plan', report)

(* ------------------------------------------------------------------ *)

let pp_report ppf (r : report) =
  Fmt.pf ppf "lockopt: %d/%d acquisitions elided (%d regions)%s"
    r.lo_elided_acqs r.lo_plan_acqs r.lo_regions_elided
    (if r.lo_enabled then "" else " [disabled]")

let pp_range ppf (r : warange) =
  Fmt.pf ppf "[%a..%a]%s" Minic.Pretty.pp_exp r.wr_lo Minic.Pretty.pp_exp
    r.wr_hi
    (if r.wr_write then "w" else "r")

let pp_ranges ppf = function
  | [] -> Fmt.string ppf "total"
  | rs -> Fmt.(list ~sep:comma) pp_range ppf rs

let pp_explain ppf (r : report) =
  Fmt.pf ppf "@[<v>%a" pp_report r;
  List.iter
    (fun e ->
      Fmt.pf ppf "@,  %a: lock %a claim=%a -- %a" Plan.pp_region e.e_region
        pp_weak_lock e.e_acq.wa_lock pp_ranges e.e_acq.wa_ranges pp_prov
        e.e_prov)
    r.lo_entries;
  Fmt.pf ppf "@]"
