(** Interprocedural must-held weak-lockset analysis and redundant-
    acquisition elision (DESIGN.md §9).

    A weak-lock acquisition is redundant when the same lock is already
    held — with a claim subsuming the acquisition's address ranges — at
    every point the acquiring region can be entered. The pass runs a
    forward must-dataflow over each function's {!Minic.Cfg} (the fact is
    the stack of active region levels, innermost on top, mirroring the
    engine's region stack), propagates held-sets across calls by
    intersecting the facts of all call sites bottom-up over
    {!Minic.Callgraph} (recursion, thread roots and address-taken
    functions poison to "nothing held"), and then deletes {e whole}
    regions from the plan.

    Elision is all-or-nothing per region: entering a region suspends the
    enclosing region's locks, so removing one acquisition from a region
    that keeps others would leave its statements unprotected by the
    removed lock while the region runs. A region disappears only when
    every acquisition it performs is covered at every one of its entry
    instances (and likewise for any region sharing those entries), in
    which case no enter/exit is emitted at all and the covering locks
    simply stay held across its extent. *)

(** Per-acquisition provenance, analogous to {!Relay.Detect.provenance}. *)
type prov =
  | Kept
  | Elided_dominated
      (** covered by a region entry that dominates this one in the same
          function's CFG *)
  | Elided_callsite
      (** covered by the intersected must-held set of every call site of
          the enclosing function *)

val pp_prov : prov Fmt.t

type entry = {
  e_region : Instrument.Plan.region;
  e_acq : Minic.Ast.weak_acq;
  e_prov : prov;
}

type report = {
  lo_enabled : bool;
  lo_plan_acqs : int;  (** acquisitions in the incoming (raw) plan *)
  lo_elided_acqs : int;  (** acquisitions removed by the pass *)
  lo_regions_elided : int;
  lo_entries : entry list;  (** one per raw-plan acquisition, sorted *)
}

(** The report of a disabled pass: everything kept, nothing elided. *)
val disabled : Instrument.Plan.t -> report

(** [optimize prog plan cg] returns the elided plan plus the report.
    [cg] should be the pointer-resolved call graph (the pipeline passes
    [Relay.Summary.t.cg]). [prog] is the {e uninstrumented} program the
    plan was computed for. With [pool], functions at the same top-down
    call-graph condensation depth are analyzed concurrently; the output
    is identical to the serial run. *)
val optimize :
  ?pool:Par.Pool.t ->
  Minic.Ast.program ->
  Instrument.Plan.t ->
  Minic.Callgraph.t ->
  Instrument.Plan.t * report

val pp_report : report Fmt.t

(** One line per raw-plan acquisition: region, lock, ranges, provenance
    (the [--explain-plan] payload). *)
val pp_explain : report Fmt.t
