(** Granularity selection: turning RELAY race pairs plus profile and
    symbolic-bounds information into a weak-lock instrumentation plan
    (Sections 2.2, 4, 5.3 of the paper).

    For each race pair, each side gets a region:

    - if the two containing functions were never concurrent in any
      profile run: both sides use the {e function} region, sharing the
      clique's function-lock;
    - else if the side's statement is inside a loop: the {e outermost}
      enclosing loop with precise symbolic bounds becomes a loop region
      with the derived address ranges; with no precise loop, a small loop
      body (below the loop-body threshold, measured by profiling) is
      serialized whole (total-claim loop-lock), and a large one falls
      back to the basic-block level;
    - else the {e basic block} (maximal run of simple statements); if the
      run contains a function call, the single {e statement}.

    Each non-function-lock pair gets one fresh weak lock shared by both
    sides; its granularity class is the coarser of the two sides (lock
    ordering classes: func < loop < bb < instr). Finally, every lock a
    statement needs is attached to the {e innermost} instrumented region
    containing that statement — inner regions suspend outer locks, so
    attaching to an outer region only would leave the access unprotected
    while a nested region runs. *)

open Minic.Ast

(* ------------------------------------------------------------------ *)
(* Program index: where every statement lives *)

type site_info = {
  si_fname : string;
  si_loops : stmt list;  (** enclosing While statements, outermost first *)
  si_run : int;          (** head sid of the enclosing simple-stmt run *)
  si_run_call : bool;    (** the run contains a function call *)
}

type index = {
  ix_sites : (int, site_info) Hashtbl.t;
  ix_loop_stmt : (int, string * stmt list) Hashtbl.t;
      (** lid -> fname, loop chain ending at that loop *)
}

let build_index (p : program) : index =
  let ix =
    { ix_sites = Hashtbl.create 256; ix_loop_stmt = Hashtbl.create 32 }
  in
  (* Runs (our basic blocks) contain only plain assignments: calls,
     builtins (pthread/syscall surface) and control flow end a block, as
     calls do in CIL. A call/builtin statement forms its own
     single-statement region. *)
  let is_simple (s : stmt) =
    match s.skind with Assign _ -> true | _ -> false
  in
  List.iter
    (fun (fd : fundec) ->
      let rec walk (loops : stmt list) (b : block) =
        (* split into runs of simple statements *)
        let rec runs acc cur = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | s :: rest ->
              if is_simple s then runs acc (s :: cur) rest
              else
                let acc = if cur = [] then acc else List.rev cur :: acc in
                runs ([ s ] :: acc) [] rest
        in
        List.iter
          (fun run ->
            match run with
            | [] -> ()
            | first :: _ ->
                if is_simple first then begin
                  let has_call =
                    List.exists
                      (fun s ->
                        match s.skind with Call _ -> true | _ -> false)
                      run
                  in
                  List.iter
                    (fun (s : stmt) ->
                      Hashtbl.replace ix.ix_sites s.sid
                        {
                          si_fname = fd.f_name;
                          si_loops = List.rev loops;
                          si_run = first.sid;
                          si_run_call = has_call;
                        })
                    run
                end
                else
                  List.iter
                    (fun (s : stmt) ->
                      Hashtbl.replace ix.ix_sites s.sid
                        {
                          si_fname = fd.f_name;
                          si_loops = List.rev loops;
                          si_run = s.sid;
                          si_run_call =
                            (match s.skind with Call _ -> true | _ -> false);
                        };
                      match s.skind with
                      | If (_, b1, b2) -> walk loops b1; walk loops b2
                      | While (_, body, li) ->
                          Hashtbl.replace ix.ix_loop_stmt li.lid
                            (fd.f_name, List.rev (s :: loops));
                          walk (s :: loops) body
                      | _ -> ())
                    run)
          (runs [] [] b)
      in
      walk [] fd.f_body)
    p.p_funs;
  ix

(* ------------------------------------------------------------------ *)
(* Regions and decisions *)

type region =
  | RFunc of string
  | RLoop of string * int          (** fname, lid *)
  | RRun of string * int           (** fname, head sid *)
  | RStmt of int                   (** sid *)

let region_gran = function
  | RFunc _ -> Gfunc
  | RLoop _ -> Gloop
  | RRun _ -> Gbb
  | RStmt _ -> Ginstr

let pp_region ppf = function
  | RFunc f -> Fmt.pf ppf "func(%s)" f
  | RLoop (f, l) -> Fmt.pf ppf "loop(%s,%d)" f l
  | RRun (f, s) -> Fmt.pf ppf "bb(%s,%d)" f s
  | RStmt s -> Fmt.pf ppf "stmt(%d)" s

type side_decision = {
  sd_region : region;
  sd_ranges : warange list;  (** loop-lock ranges; empty = total *)
  sd_reason : string;        (** human-readable justification *)
}

type pair_decision = {
  pd_pair : Relay.Detect.race_pair;
  pd_lock : weak_lock;
  pd_s1 : side_decision;
  pd_s2 : side_decision;
}

type t = {
  pl_func : (string, weak_acq list) Hashtbl.t;
  pl_loop : (int, weak_acq list) Hashtbl.t;
  pl_run : (int, weak_acq list) Hashtbl.t;   (** keyed by run-head sid *)
  pl_stmt : (int, weak_acq list) Hashtbl.t;
  pl_decisions : pair_decision list;
  pl_cliques : Clique.t;
  pl_n_locks : int;
  pl_static_pairs : int;  (** RELAY candidate pairs before MHP pruning *)
  pl_pruned_pairs : int;  (** pairs the MHP pass removed statically *)
}

type options = {
  opt_funcs : bool;   (** enable profile-guided function-locks (Section 4) *)
  opt_loops : bool;   (** enable symbolic-bounds loop-locks (Section 5) *)
  opt_bb : bool;      (** enable basic-block coarsening *)
  opt_masks : bool;
      (** extension beyond the paper: model [e & c] as the range [0, c]
          in the bounds analysis (the paper treats bitwise masks as
          unsupported — Section 5.2 — yielding -INF..+INF loop-locks);
          used by the ablation benchmark *)
  loop_body_threshold : float;
}

let all_opts =
  {
    opt_funcs = true;
    opt_loops = true;
    opt_bb = true;
    opt_masks = false;
    loop_body_threshold = 40.;
  }

(** The extension configuration: everything plus mask ranges. *)
let with_masks = { all_opts with opt_masks = true }

(** The paper's Figure 5 configurations. *)
let naive = { all_opts with opt_funcs = false; opt_loops = false; opt_bb = false }
let funcs_only = { naive with opt_funcs = true }
let loops_only = { naive with opt_loops = true }

(* ------------------------------------------------------------------ *)

let decide_side (p : program) (ix : index) (prof : Profiling.Profile.t)
    (opts : options) (site : Relay.Detect.site) : side_decision =
  let info =
    match Hashtbl.find_opt ix.ix_sites site.st_sid with
    | Some i -> i
    | None ->
        {
          si_fname = site.st_fname;
          si_loops = [];
          si_run = site.st_sid;
          si_run_call = false;
        }
  in
  let fd = Option.get (Minic.Ast.find_fun p info.si_fname) in
  let bb_or_instr reason =
    if opts.opt_bb && not info.si_run_call then
      { sd_region = RRun (info.si_fname, info.si_run); sd_ranges = []; sd_reason = reason ^ "; bb" }
    else
      { sd_region = RStmt site.st_sid; sd_ranges = []; sd_reason = reason ^ "; instr" }
  in
  if not (opts.opt_loops && info.si_loops <> []) then
    bb_or_instr (if info.si_loops = [] then "straight-line" else "loops-disabled")
  else begin
    (* outermost enclosing loop with precise bounds (Section 5.3) *)
    let rec try_target k =
      if k >= List.length info.si_loops then None
      else
        match
          Symbolic.Bounds.analyze_loop p fd ~target_idx:k
            ~allow_masks:opts.opt_masks ~enclosing:info.si_loops
            ~racy_sids:[ site.st_sid ] ()
        with
        | Symbolic.Bounds.Precise ranges ->
            let target = List.nth info.si_loops k in
            let lid =
              match target.skind with
              | While (_, _, li) -> li.lid
              | _ -> assert false
            in
            Some (lid, ranges)
        | Symbolic.Bounds.Imprecise _ -> try_target (k + 1)
    in
    match try_target 0 with
    | Some (lid, ranges) ->
        {
          sd_region = RLoop (info.si_fname, lid);
          sd_ranges = ranges;
          sd_reason = "precise symbolic bounds";
        }
    | None -> (
        (* imprecise everywhere: loop-body-threshold decision on the
           innermost loop — but never serialize a loop whose body performs
           calls or blocking operations (a loop-lock held across a
           blocking call invites timeouts) *)
        let innermost = List.nth info.si_loops (List.length info.si_loops - 1) in
        let body, lid =
          match innermost.skind with
          | While (_, b, li) -> (b, li.lid)
          | _ -> assert false
        in
        let has_call = ref false in
        iter_stmts
          (fun s ->
            match s.skind with
            | Call _ | Builtin _ -> has_call := true
            | _ -> ())
          body;
        if !has_call then bb_or_instr "imprecise bounds, loop has calls"
        else
          match Profiling.Profile.avg_loop_body prof lid with
          | Some avg when avg >= opts.loop_body_threshold ->
              bb_or_instr "imprecise bounds, large body"
          | _ ->
              (* small (or never-profiled) body: serialize the whole loop *)
              {
                sd_region = RLoop (info.si_fname, lid);
                sd_ranges = [];
                sd_reason = "imprecise bounds, small body: total loop lock";
              })
  end

(** Compute the instrumentation plan. *)
let compute ?(opts = all_opts) (p : program) (report : Relay.Detect.report)
    (prof : Profiling.Profile.t) : t =
  let ix = build_index p in
  (* 1. cliques over non-concurrent racy function pairs *)
  let racy_fun_pairs = report.racy_fun_pairs in
  (* a function-lock serializes every live instance of its functions, so
     clique members must also be non-concurrent with *themselves* (a
     worker spawned in N threads must not carry a function-lock) *)
  let self_ok f = not (Profiling.Profile.concurrent prof f f) in
  let non_concurrent =
    List.filter
      (fun (f, g) ->
        (not (Profiling.Profile.concurrent prof f g)) && self_ok f && self_ok g)
      racy_fun_pairs
  in
  let cliques =
    if opts.opt_funcs then
      Clique.compute ~non_concurrent ~racy:racy_fun_pairs
    else Clique.compute ~non_concurrent:[] ~racy:[]
  in
  (* 2. per-pair decisions *)
  let next_id = ref (Clique.n_cliques cliques) in
  let pair_locks : (region * region, weak_lock) Hashtbl.t = Hashtbl.create 64 in
  let decisions =
    List.map
      (fun (rp : Relay.Detect.race_pair) ->
        let f1 = rp.rp_s1.st_fname and f2 = rp.rp_s2.st_fname in
        let use_func_lock =
          opts.opt_funcs
          && Clique.clique_of cliques (f1, f2) <> None
        in
        if use_func_lock then begin
          let ci = Option.get (Clique.clique_of cliques (f1, f2)) in
          let lock = { wl_id = ci; wl_gran = Gfunc } in
          let mk f =
            {
              sd_region = RFunc f;
              sd_ranges = [];
              sd_reason = Fmt.str "non-concurrent functions; clique %d" ci;
            }
          in
          { pd_pair = rp; pd_lock = lock; pd_s1 = mk f1; pd_s2 = mk f2 }
        end
        else begin
          let s1 = decide_side p ix prof opts rp.rp_s1 in
          let s2 = decide_side p ix prof opts rp.rp_s2 in
          let key =
            if compare s1.sd_region s2.sd_region <= 0 then
              (s1.sd_region, s2.sd_region)
            else (s2.sd_region, s1.sd_region)
          in
          let lock =
            match Hashtbl.find_opt pair_locks key with
            | Some l -> l
            | None ->
                let gran =
                  (* coarser side classifies the lock *)
                  let g1 = region_gran s1.sd_region
                  and g2 = region_gran s2.sd_region in
                  if granularity_rank g1 <= granularity_rank g2 then g1 else g2
                in
                let l = { wl_id = !next_id; wl_gran = gran } in
                incr next_id;
                Hashtbl.replace pair_locks key l;
                l
          in
          { pd_pair = rp; pd_lock = lock; pd_s1 = s1; pd_s2 = s2 }
        end)
      report.races
  in
  (* 3. attach acquisitions to regions; remember (sid, acq, region) *)
  let func : (string, weak_acq list) Hashtbl.t = Hashtbl.create 16 in
  let loop : (int, weak_acq list) Hashtbl.t = Hashtbl.create 16 in
  let run : (int, weak_acq list) Hashtbl.t = Hashtbl.create 16 in
  let stmt : (int, weak_acq list) Hashtbl.t = Hashtbl.create 16 in
  (* the same lock may be attached to one region by several race pairs,
     each bringing the ranges of its own racy statement: claims must
     MERGE (a total claim absorbs everything) or an access protected by a
     dropped range would escape the lock's mutual exclusion *)
  let attach_tbl tbl key (acq : weak_acq) =
    let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    match List.partition (fun a -> a.wa_lock = acq.wa_lock) cur with
    | [], _ -> Hashtbl.replace tbl key (acq :: cur)
    | existing :: _, rest ->
        let merged =
          if existing.wa_ranges = [] || acq.wa_ranges = [] then []
          else
            List.sort_uniq compare (existing.wa_ranges @ acq.wa_ranges)
        in
        Hashtbl.replace tbl key
          ({ wa_lock = acq.wa_lock; wa_ranges = merged } :: rest)
  in
  let attach (r : region) (acq : weak_acq) =
    match r with
    | RFunc f -> attach_tbl func f acq
    | RLoop (_, lid) -> attach_tbl loop lid acq
    | RRun (_, head) -> attach_tbl run head acq
    | RStmt sid -> attach_tbl stmt sid acq
  in
  let per_sid : (int, (region * weak_acq) list) Hashtbl.t = Hashtbl.create 64 in
  let note sid r acq =
    let cur = Option.value (Hashtbl.find_opt per_sid sid) ~default:[] in
    Hashtbl.replace per_sid sid ((r, acq) :: cur)
  in
  List.iter
    (fun pd ->
      let acq1 = { wa_lock = pd.pd_lock; wa_ranges = pd.pd_s1.sd_ranges } in
      let acq2 = { wa_lock = pd.pd_lock; wa_ranges = pd.pd_s2.sd_ranges } in
      attach pd.pd_s1.sd_region acq1;
      attach pd.pd_s2.sd_region acq2;
      note pd.pd_pair.rp_s1.st_sid pd.pd_s1.sd_region acq1;
      note pd.pd_pair.rp_s2.st_sid pd.pd_s2.sd_region acq2)
    decisions;
  (* 4. innermost-region correction: if a sid's lock is attached to an
     outer region but a finer instrumented region contains the sid, the
     inner region must also acquire the lock (inner regions suspend outer
     ones) *)
  let innermost_of sid : region option =
    match Hashtbl.find_opt ix.ix_sites sid with
    | None -> None
    | Some info ->
        if Hashtbl.mem stmt sid then Some (RStmt sid)
        else if Hashtbl.mem run info.si_run then
          Some (RRun (info.si_fname, info.si_run))
        else
          let rec from_inner = function
            | [] -> None
            | (l : stmt) :: rest -> (
                match l.skind with
                | While (_, _, li) when Hashtbl.mem loop li.lid ->
                    Some (RLoop (info.si_fname, li.lid))
                | _ -> from_inner rest)
          in
          let r = from_inner (List.rev info.si_loops) in
          if r <> None then r
          else if Hashtbl.mem func info.si_fname then Some (RFunc info.si_fname)
          else None
  in
  Hashtbl.iter
    (fun sid attached ->
      match innermost_of sid with
      | None -> ()
      | Some inner ->
          List.iter
            (fun (r, acq) -> if r <> inner then attach inner acq)
            attached)
    per_sid;
  (* canonical ordering inside each region *)
  let sort_tbl tbl =
    Hashtbl.iter
      (fun k v ->
        Hashtbl.replace tbl k
          (List.sort (fun a b -> compare_weak_lock a.wa_lock b.wa_lock) v))
      tbl
  in
  (* Hashtbl.iter + replace on the same table is unsafe; snapshot first *)
  let snapshot_sort tbl =
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    List.iter
      (fun (k, v) ->
        Hashtbl.replace tbl k
          (List.sort (fun a b -> compare_weak_lock a.wa_lock b.wa_lock) v))
      entries
  in
  ignore sort_tbl;
  snapshot_sort func;
  snapshot_sort loop;
  snapshot_sort run;
  snapshot_sort stmt;
  {
    pl_func = func;
    pl_loop = loop;
    pl_run = run;
    pl_stmt = stmt;
    pl_decisions = decisions;
    pl_cliques = cliques;
    pl_n_locks = !next_id;
    pl_static_pairs = report.Relay.Detect.n_candidates;
    pl_pruned_pairs = List.length report.Relay.Detect.pruned;
  }

(** Total number of lock acquisitions the plan's regions perform (static
    count over all region tables; the quantity the {!Lockopt} pass
    shrinks). *)
let n_acquisitions (t : t) : int =
  let sum tbl = Hashtbl.fold (fun _ acqs acc -> acc + List.length acqs) tbl 0 in
  sum t.pl_func + sum t.pl_loop + sum t.pl_run + sum t.pl_stmt

let pp_summary ppf (t : t) =
  let count tbl = Hashtbl.length tbl in
  Fmt.pf ppf
    "plan: %d locks, %d func regions, %d loop regions, %d bb regions, %d \
     instr regions (%d static pairs, %d pruned)"
    t.pl_n_locks (count t.pl_func) (count t.pl_loop) (count t.pl_run)
    (count t.pl_stmt) t.pl_static_pairs t.pl_pruned_pairs
