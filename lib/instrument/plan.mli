(** Granularity selection (paper Sections 2.2, 4, 5.3): turn RELAY race
    pairs plus profile and symbolic-bounds information into a weak-lock
    instrumentation plan — which function / loop / basic-block /
    statement regions exist and which lock acquisitions (with address
    ranges) each performs. *)

open Minic.Ast

type site_info = {
  si_fname : string;
  si_loops : stmt list;  (** enclosing While statements, outermost first *)
  si_run : int;          (** head sid of the enclosing simple-stmt run *)
  si_run_call : bool;    (** the run contains a function call *)
}

type index = {
  ix_sites : (int, site_info) Hashtbl.t;
  ix_loop_stmt : (int, string * stmt list) Hashtbl.t;
}

val build_index : program -> index

type region =
  | RFunc of string
  | RLoop of string * int  (** fname, lid *)
  | RRun of string * int   (** fname, head sid *)
  | RStmt of int

val region_gran : region -> granularity
val pp_region : region Fmt.t

type side_decision = {
  sd_region : region;
  sd_ranges : warange list;  (** loop-lock ranges; empty = total *)
  sd_reason : string;
}

type pair_decision = {
  pd_pair : Relay.Detect.race_pair;
  pd_lock : weak_lock;  (** shared by both sides *)
  pd_s1 : side_decision;
  pd_s2 : side_decision;
}

type t = {
  pl_func : (string, weak_acq list) Hashtbl.t;
  pl_loop : (int, weak_acq list) Hashtbl.t;
  pl_run : (int, weak_acq list) Hashtbl.t;
  pl_stmt : (int, weak_acq list) Hashtbl.t;
  pl_decisions : pair_decision list;
  pl_cliques : Clique.t;
  pl_n_locks : int;
  pl_static_pairs : int;  (** RELAY candidate pairs before MHP pruning *)
  pl_pruned_pairs : int;  (** pairs the MHP pass removed statically *)
}

type options = {
  opt_funcs : bool;  (** profile-guided function-locks (Section 4) *)
  opt_loops : bool;  (** symbolic-bounds loop-locks (Section 5) *)
  opt_bb : bool;     (** basic-block coarsening *)
  opt_masks : bool;  (** extension: model [e & c] as [0, c] (ablation) *)
  loop_body_threshold : float;
}

val all_opts : options
val with_masks : options

(** Figure 5's configurations. *)
val naive : options

val funcs_only : options
val loops_only : options

val compute :
  ?opts:options -> program -> Relay.Detect.report -> Profiling.Profile.t -> t

(** Total lock acquisitions across all region tables (static count). *)
val n_acquisitions : t -> int

val pp_summary : t Fmt.t
