(** Source-to-source weak-lock instrumentation (the CIL pass of Section
    6.1): rewrite the program so that every region in the plan is
    bracketed by [WeakEnter]/[WeakExit] statements.

    Nesting is structural: statement regions sit inside basic-block
    regions inside loop regions inside function regions; at run time the
    engine's region stack suspends outer locks around inner regions and
    reacquires them on exit (Section 2.3), and unwinds regions on
    [return].

    Call statements need care: the racy memory operations of a call are
    its argument loads and its return-value store — in CIL's
    three-address form these are separate instructions around the call.
    Wrapping the whole call statement would hold the weak lock across the
    entire callee (which may block on barriers or I/O), so the racy
    argument reads are hoisted into fresh temporaries guarded by the
    region, the call itself runs unguarded, and a guarded epilogue stores
    the hoisted return value. *)

open Minic.Ast

let locks_of (acqs : weak_acq list) : weak_lock list =
  List.map (fun a -> a.wa_lock) acqs

(* must mirror the run definition in {!Plan.build_index}: only plain
   assignments form multi-statement basic blocks *)
let is_simple (s : stmt) =
  match s.skind with Assign _ -> true | _ -> false

let merge_acqs (a : weak_acq list) (b : weak_acq list) : weak_acq list =
  let extra =
    List.filter
      (fun x -> not (List.exists (fun y -> y.wa_lock = x.wa_lock) a))
      b
  in
  List.sort (fun x y -> compare_weak_lock x.wa_lock y.wa_lock) (a @ extra)

type fctx = {
  fenv : Minic.Typecheck.env;
  mutable new_locals : var_decl list;
  mutable tmp : int;
}

let fresh_tmp (fx : fctx) (ty : ty) : string =
  fx.tmp <- fx.tmp + 1;
  let name = Fmt.str "__wt%d" fx.tmp in
  fx.new_locals <- { v_name = name; v_ty = ty; v_loc = dummy_loc } :: fx.new_locals;
  name

(* does evaluating [e] read memory at all (so that guarding it matters)? *)
let rec reads_memory (e : exp) : bool =
  match e with
  | Const _ -> false
  | Lval _ -> true
  | AddrOf lv -> addr_reads lv
  | Unop (_, e) -> reads_memory e
  | Binop (_, a, b) -> reads_memory a || reads_memory b

and addr_reads (lv : lval) : bool =
  match lv with
  | Var _ -> false
  | Deref e -> reads_memory e
  | Index (lv, e) -> addr_reads lv || reads_memory e
  | Field (lv, _) -> addr_reads lv
  | Arrow (e, _) -> reads_memory e

(* is [e] a direct function reference (spawn targets must stay
   syntactic)? *)
let is_fun_ref env (e : exp) : bool =
  match e with
  | Lval (Var v) | AddrOf (Var v) -> (
      match Minic.Typecheck.lookup_var env v with
      | Some (Tfun _) -> true
      | _ -> false)
  | _ -> false

(** Rewrite a call/builtin statement guarded by [acqs] into hoisted form.
    Returns the replacement statement list. [tag] is applied to every
    emitted [WeakEnter] (provenance recording for {!apply_mapped}). *)
let hoist_call ?(tag = fun (s : stmt) -> s) (fx : fctx) (s : stmt)
    (acqs : weak_acq list) : stmt list =
  let loc = s.sloc in
  let enter () = tag (Fresh.stmt ~loc (WeakEnter acqs)) in
  let exit_ () = Fresh.stmt ~loc (WeakExit (locks_of acqs)) in
  let hoist_args args =
    let pre = ref [] in
    let args' =
      List.map
        (fun a ->
          if reads_memory a && not (is_fun_ref fx.fenv a) then begin
            let ty =
              try Minic.Typecheck.type_of_exp fx.fenv a with _ -> Tint
            in
            match ty with
            | Tfun _ -> a
            | _ ->
                let name = fresh_tmp fx ty in
                pre := Fresh.stmt ~loc (Assign (Var name, a)) :: !pre;
                Lval (Var name)
          end
          else a)
        args
    in
    (List.rev !pre, args')
  in
  let hoist_ret ret =
    match ret with
    | None -> (None, [])
    | Some (Var v) when not (addr_reads (Var v)) ->
        (* writing a plain variable: the write itself is the access; keep
           it as the hoisted store target *)
        let ty =
          try Minic.Typecheck.type_of_lval fx.fenv (Var v) with _ -> Tint
        in
        let name = fresh_tmp fx ty in
        (Some (Var name), [ Fresh.stmt ~loc (Assign (Var v, Lval (Var name))) ])
    | Some lv ->
        let ty = try Minic.Typecheck.type_of_lval fx.fenv lv with _ -> Tint in
        let name = fresh_tmp fx ty in
        (Some (Var name), [ Fresh.stmt ~loc (Assign (lv, Lval (Var name))) ])
  in
  match s.skind with
  | Call (ret, tgt, args) ->
      let pre, args' = hoist_args args in
      let tgt', pre =
        match tgt with
        | Direct f -> (Direct f, pre)
        | ViaPtr e ->
            if reads_memory e then begin
              let ty =
                try Minic.Typecheck.type_of_exp fx.fenv e with _ -> Tint
              in
              let name = fresh_tmp fx ty in
              (ViaPtr (Lval (Var name)),
               pre @ [ Fresh.stmt ~loc (Assign (Var name, e)) ])
            end
            else (ViaPtr e, pre)
      in
      let ret', post = hoist_ret ret in
      let call = { s with skind = Call (ret', tgt', args') } in
      (if pre = [] then []
       else (enter () :: pre) @ [ exit_ () ])
      @ [ call ]
      @ (if post = [] then [] else (enter () :: post) @ [ exit_ () ])
  | Builtin (ret, b, args) ->
      (* keep spawn's target argument syntactic *)
      let pre, args' =
        match (b, args) with
        | Spawn, target :: rest ->
            let pre, rest' = hoist_args rest in
            (pre, target :: rest')
        | _ -> hoist_args args
      in
      let ret', post = hoist_ret ret in
      let call = { s with skind = Builtin (ret', b, args') } in
      (if pre = [] then [] else (enter () :: pre) @ [ exit_ () ])
      @ [ call ]
      @ (if post = [] then [] else (enter () :: post) @ [ exit_ () ])
  | _ -> assert false

(** Instrument [p] according to [plan], also returning a map from each
    emitted [WeakEnter]'s sid to the plan region(s) whose acquisitions it
    performs (two regions when a statement- and a run-level region share
    one enter). Fresh statement ids continue after the highest existing
    id. *)
let apply_mapped (p : program) (plan : Plan.t) :
    program * (int, Plan.region list) Hashtbl.t =
  Fresh.reset_from p;
  let origin : (int, Plan.region list) Hashtbl.t = Hashtbl.create 64 in
  let tag_with regions (s : stmt) =
    if regions <> [] then Hashtbl.replace origin s.sid regions;
    s
  in
  let tenv = Minic.Typecheck.env_of_program p in
  let enter ?(loc = dummy_loc) ~regions acqs =
    tag_with regions (Fresh.stmt ~loc (WeakEnter acqs))
  in
  let exit_ ?(loc = dummy_loc) acqs =
    Fresh.stmt ~loc (WeakExit (locks_of acqs))
  in
  let rewrite_fun (fd : fundec) : fundec =
    let fx =
      { fenv = Minic.Typecheck.fun_env tenv fd; new_locals = []; tmp = 0 }
    in
    let rec rewrite_block (b : block) : block =
      let groups =
        let rec go acc cur = function
          | [] -> List.rev (if cur = [] then acc else `Run (List.rev cur) :: acc)
          | s :: rest ->
              if is_simple s then go acc (s :: cur) rest
              else
                let acc = if cur = [] then acc else `Run (List.rev cur) :: acc in
                go (`Ctrl s :: acc) [] rest
        in
        go [] [] b
      in
      List.concat_map
        (fun group ->
          match group with
          | `Run (stmts : stmt list) -> (
              let head = (List.hd stmts).sid in
              (* per-statement (instr) regions first *)
              let inner =
                List.concat_map
                  (fun (s : stmt) ->
                    match Hashtbl.find_opt plan.Plan.pl_stmt s.sid with
                    | Some acqs when acqs <> [] ->
                        [
                          enter ~loc:s.sloc ~regions:[ Plan.RStmt s.sid ] acqs;
                          s;
                          exit_ ~loc:s.sloc acqs;
                        ]
                    | _ -> [ s ])
                  stmts
              in
              match Hashtbl.find_opt plan.Plan.pl_run head with
              | Some acqs when acqs <> [] ->
                  let loc = (List.hd stmts).sloc in
                  (enter ~loc ~regions:[ Plan.RRun (fd.f_name, head) ] acqs
                  :: inner)
                  @ [ exit_ ~loc acqs ]
              | _ -> inner)
          | `Ctrl s -> (
              let s =
                match s.skind with
                | If (c, b1, b2) ->
                    { s with skind = If (c, rewrite_block b1, rewrite_block b2) }
                | While (c, body, li) ->
                    { s with skind = While (c, rewrite_block body, li) }
                | _ -> s
              in
              (* regions targeting this statement: merge the statement- and
                 run-level assignments *)
              let own_acqs =
                merge_acqs
                  (Option.value (Hashtbl.find_opt plan.Plan.pl_stmt s.sid)
                     ~default:[])
                  (Option.value (Hashtbl.find_opt plan.Plan.pl_run s.sid)
                     ~default:[])
              in
              let own_regions =
                (match Hashtbl.find_opt plan.Plan.pl_stmt s.sid with
                | Some a when a <> [] -> [ Plan.RStmt s.sid ]
                | _ -> [])
                @
                match Hashtbl.find_opt plan.Plan.pl_run s.sid with
                | Some a when a <> [] -> [ Plan.RRun (fd.f_name, s.sid) ]
                | _ -> []
              in
              match s.skind with
              | While (cond, body, li) -> (
                  let wrap_loop inner =
                    match Hashtbl.find_opt plan.Plan.pl_loop li.lid with
                    | Some acqs when acqs <> [] ->
                        (enter ~loc:s.sloc
                           ~regions:[ Plan.RLoop (fd.f_name, li.lid) ]
                           acqs
                        :: inner)
                        @ [ exit_ ~loc:s.sloc acqs ]
                    | _ -> inner
                  in
                  match own_acqs with
                  | [] -> wrap_loop [ s ]
                  | acqs ->
                      (* A racy loop condition. Guarding the whole [while]
                         would hold the lock across every iteration
                         (including blocking operations in the body), so
                         restructure: evaluate the condition into a guarded
                         temporary at the top of each iteration.
                           while (1) {
                             [enter] t = cond; [exit]
                             if (!t) break;
                             body (original step still last, so continue
                                   increments and re-tests)
                           } *)
                      let loc = s.sloc in
                      let t = fresh_tmp fx Tint in
                      let eval_cond =
                        [
                          enter ~loc ~regions:own_regions acqs;
                          Fresh.stmt ~loc (Assign (Var t, cond));
                          exit_ ~loc acqs;
                          Fresh.stmt ~loc
                            (If (Unop (LNot, Lval (Var t)), [ Fresh.stmt ~loc Break ], []));
                        ]
                      in
                      let li' =
                        {
                          lid = li.lid;
                          l_induction = None;
                          l_step = li.l_step;
                        }
                      in
                      let s' =
                        { s with skind = While (Const 1, eval_cond @ body, li') }
                      in
                      wrap_loop [ s' ])
              | Call _ | Builtin _ when own_acqs <> [] ->
                  hoist_call ~tag:(tag_with own_regions) fx s own_acqs
              | If (c, b1, b2) when own_acqs <> [] ->
                  (* A racy branch condition: wrapping the whole [if] would
                     nest around any regions inside the branches (suspend /
                     reacquire churn); hoist the condition instead. *)
                  let loc = s.sloc in
                  let t = fresh_tmp fx Tint in
                  [
                    enter ~loc ~regions:own_regions own_acqs;
                    Fresh.stmt ~loc (Assign (Var t, c));
                    exit_ ~loc own_acqs;
                    { s with skind = If (Lval (Var t), b1, b2) };
                  ]
              | _ when own_acqs <> [] ->
                  (enter ~loc:s.sloc ~regions:own_regions own_acqs :: [ s ])
                  @ [ exit_ ~loc:s.sloc own_acqs ]
              | _ -> [ s ]))
        groups
    in
    let body = rewrite_block fd.f_body in
    let body =
      match Hashtbl.find_opt plan.Plan.pl_func fd.f_name with
      | Some acqs when acqs <> [] ->
          (enter ~loc:fd.f_loc ~regions:[ Plan.RFunc fd.f_name ] acqs :: body)
          @ [ exit_ ~loc:fd.f_loc acqs ]
      | _ -> body
    in
    { fd with f_body = body; f_locals = fd.f_locals @ List.rev fx.new_locals }
  in
  ({ p with p_funs = List.map rewrite_fun p.p_funs }, origin)

(** Instrument [p] according to [plan]. Fresh statement ids continue after
    the highest existing id. *)
let apply (p : program) (plan : Plan.t) : program = fst (apply_mapped p plan)

(** Count instrumentation sites by granularity (static, for reporting). *)
let site_counts (plan : Plan.t) : int * int * int * int =
  ( Hashtbl.length plan.Plan.pl_func,
    Hashtbl.length plan.Plan.pl_loop,
    Hashtbl.length plan.Plan.pl_run,
    Hashtbl.length plan.Plan.pl_stmt )
