(** Source-to-source weak-lock instrumentation (the CIL pass of paper
    Section 6.1): bracket every planned region with
    [WeakEnter]/[WeakExit]. Racy call arguments / return values and racy
    while/if conditions are hoisted into guarded temporaries so no weak
    lock is held across a call, a loop body, or a branch (see DESIGN.md
    §6). *)

(** Instrument the program; fresh statement ids continue after the
    highest existing id, fresh temporaries join the functions' locals. *)
val apply : Minic.Ast.program -> Plan.t -> Minic.Ast.program

(** Like {!apply}, also returning a map from each emitted [WeakEnter]'s
    sid to the plan region(s) whose acquisitions that enter performs (two
    regions when a statement- and a run-level region share one enter —
    the [`Ctrl] merge). Consumed by the {!Lockopt} elision pass, which
    needs to know which static region every region-entry instance in the
    instrumented program came from. *)
val apply_mapped :
  Minic.Ast.program ->
  Plan.t ->
  Minic.Ast.program * (int, Plan.region list) Hashtbl.t

(** Static instrumentation sites per granularity:
    (func, loop, bb, instr). *)
val site_counts : Plan.t -> int * int * int * int
