(** Fleet-mode stress harness: batch recording of a
    (program x seed x strategy) matrix under adversarial schedules,
    content-addressed log dedup, replay validation of every distinct
    recording, and systematic log fault injection.

    The harness asks two questions the single-trial drivers cannot:

    - {e breadth}: does record==replay hold across many seeds and across
      schedule strategies engineered to be hostile (PCT priority
      schedules, weak-timeout storms), not just the default scheduler at
      a handful of seeds?
    - {e robustness}: does a damaged log — truncated at any record
      boundary, or with any byte corrupted — always produce a typed
      {!Replay.Log.Corrupt} rejection or a clean divergence report,
      never a crash, hang, or silent success?

    Everything here is deterministic: jobs are pure functions of their
    (program, seed, strategy) triple, so the matrix report is identical
    at any pool size. *)

open Interp

(* ------------------------------------------------------------------ *)
(* Matrix *)

type prog_spec = {
  sp_name : string;
  sp_instrumented : Minic.Ast.program;
  sp_io : Iomodel.t;
  sp_golden_ticks : int option;
}

type job = {
  jb_prog : prog_spec;
  jb_seed : int;
  jb_strategy : Engine.strategy;
}

let pp_job ppf (j : job) =
  Fmt.pf ppf "%s seed=%d strategy=%s" j.jb_prog.sp_name j.jb_seed
    (Engine.strategy_name j.jb_strategy)

type job_result = {
  jr_job : job;
  jr_digest : string;
  jr_ticks : int;
  jr_recorded : Runner.recorded;
}

type issue =
  | Diverged of job * Runner.divergence
  | Claim_drift of job * Replay.Replayer.claim_mismatch list
  | Stuck of job * string list
  | Golden_mismatch of job * int * int  (** expected, actual ticks *)

let pp_issue ppf = function
  | Diverged (j, d) ->
      Fmt.pf ppf "[%a] replay diverged: %a" pp_job j Runner.pp_divergence d
  | Claim_drift (j, ms) ->
      Fmt.pf ppf "[%a] %d claim mismatch(es); first: %a" pp_job j
        (List.length ms)
        Fmt.(option ~none:(any "?") Replay.Replayer.pp_claim_mismatch)
        (match ms with m :: _ -> Some m | [] -> None)
  | Stuck (j, st) ->
      Fmt.pf ppf "[%a] recording timed out / deadlocked (%d threads stuck)"
        pp_job j (List.length st)
  | Golden_mismatch (j, want, got) ->
      Fmt.pf ppf "[%a] golden ticks mismatch: expected %d, got %d" pp_job j
        want got

type report = {
  rp_jobs : int;      (** matrix size: recordings attempted *)
  rp_distinct : int;  (** distinct logs after content-addressed dedup *)
  rp_replayed : int;  (** distinct logs replayed and checked *)
  rp_results : job_result list;  (** in matrix order *)
  rp_issues : issue list;
}

(** Content address of a recording: the input and order encodings are
    digested separately and hex-concatenated, so two logs whose
    concatenations collide at a section boundary still get distinct
    addresses. *)
let log_digest (log : Replay.Log.t) : string =
  Digest.to_hex (Digest.string (Replay.Log.encode_input_log log))
  ^ Digest.to_hex (Digest.string (Replay.Log.encode_order_log log))

(** The matrix cell pinned by [sp_golden_ticks]: default strategy at
    seed 1, matching the golden-counters generator. *)
let golden_seed = 1

let job_config ~cores (j : job) : Engine.config =
  {
    Engine.default_config with
    seed = j.jb_seed;
    cores;
    strategy = j.jb_strategy;
  }

(** Record the full (program x strategy x seed) matrix — concurrently on
    [pool] when given — then dedup the encoded logs by content address
    (per program) and replay each distinct recording once under a
    shifted scheduler seed with the same strategy, checking strong
    observable equality plus the absence of served-claim drift. Jobs
    whose recording times out are reported [Stuck] and not replayed.
    When a program carries [sp_golden_ticks], its default-strategy
    seed-{!golden_seed} cell is additionally pinned to that tick count
    ([cores] must match the golden generator's for the pin to be
    meaningful). *)
let run_matrix ?(pool : Par.Pool.t option) ?(cores = 4)
    ?(replay_seed_delta = 7919) ~(seeds : int list)
    ~(strategies : Engine.strategy list) ~(progs : prog_spec list) () :
    report =
  let jobs =
    List.concat_map
      (fun sp ->
        List.concat_map
          (fun st ->
            List.map
              (fun seed -> { jb_prog = sp; jb_seed = seed; jb_strategy = st })
              seeds)
          strategies)
      progs
  in
  (* phase 1: record everything *)
  let results =
    Par.Pool.map_opt pool
      (fun j ->
        let r =
          Runner.record ~config:(job_config ~cores j) ~io:j.jb_prog.sp_io
            j.jb_prog.sp_instrumented
        in
        {
          jr_job = j;
          jr_digest = log_digest r.rc_log;
          jr_ticks = r.rc_outcome.Engine.o_ticks;
          jr_recorded = r;
        })
      jobs
  in
  let stuck, live =
    List.partition (fun jr -> jr.jr_recorded.Runner.rc_outcome.Engine.o_timed_out) results
  in
  (* phase 2: content-addressed dedup, keeping the first job per (program,
     digest) in matrix order *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun jr ->
        let key = jr.jr_job.jb_prog.sp_name ^ "/" ^ jr.jr_digest in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      live
  in
  (* phase 3: replay each distinct recording and check *)
  let replay_issues =
    Par.Pool.map_opt pool
      (fun jr ->
        let j = jr.jr_job in
        let config = job_config ~cores j in
        let o =
          Runner.replay
            ~config:
              { config with Engine.seed = config.Engine.seed + replay_seed_delta }
            ~io:j.jb_prog.sp_io j.jb_prog.sp_instrumented
            jr.jr_recorded.Runner.rc_log
        in
        let div =
          match Runner.same_execution jr.jr_recorded.Runner.rc_outcome o with
          | Ok () -> []
          | Error d -> [ Diverged (j, d) ]
        in
        let drift =
          match o.Engine.o_claim_mismatches with
          | [] -> []
          | ms -> [ Claim_drift (j, ms) ]
        in
        div @ drift)
      distinct
    |> List.concat
  in
  let golden_issues =
    List.filter_map
      (fun jr ->
        let j = jr.jr_job in
        match (j.jb_prog.sp_golden_ticks, j.jb_strategy, j.jb_seed) with
        | Some want, Engine.Sdefault, s
          when s = golden_seed && jr.jr_ticks <> want ->
            Some (Golden_mismatch (j, want, jr.jr_ticks))
        | _ -> None)
      live
  in
  let stuck_issues =
    List.map
      (fun jr ->
        Stuck (jr.jr_job, jr.jr_recorded.Runner.rc_outcome.Engine.o_stuck))
      stuck
  in
  {
    rp_jobs = List.length jobs;
    rp_distinct = List.length distinct;
    rp_replayed = List.length distinct;
    rp_results = results;
    rp_issues = stuck_issues @ golden_issues @ replay_issues;
  }

(* ------------------------------------------------------------------ *)
(* Fault injection *)

(** What a damaged log did. The contract is that only the first three
    may occur: typed rejection at decode, a replay that still matches
    the original execution (possible when the damage lands in bytes the
    replayer never consults), or a clean divergence report. A [Crash] —
    any exception other than {!Replay.Log.Corrupt}, or a replay that
    escapes with an exception — is a harness failure. *)
type fault_outcome =
  | Rejected   (** decode raised typed [Corrupt] *)
  | Benign     (** decoded; replay matched the original *)
  | Divergent  (** decoded; replay reported a divergence or claim drift *)
  | Crash of string  (** untyped exception — contract violation *)

type fault_report = {
  fi_truncations : int;
  fi_flips : int;
  fi_appends : int;
  fi_rejected : int;
  fi_benign : int;
  fi_divergent : int;
  fi_crashes : (string * string) list;
      (** (mutant description, exception) — empty iff the contract holds *)
}

let fault_total (f : fault_report) =
  f.fi_truncations + f.fi_flips + f.fi_appends

(** Evenly sample at most [cap] of [n] candidate indices (all of them
    when [n <= cap]), preserving order. *)
let sample_indices ~cap n =
  if n <= cap then List.init n Fun.id
  else List.init cap (fun i -> i * n / cap)

let flip_masks = [| 0x01; 0x80; 0xFF |]

(** Systematic log damage on one fresh recording of [instrumented]:
    truncate each encoded log at every record boundary (the marked
    offsets of {!Replay.Log.encode_input_log_marked} /
    [encode_order_log_marked], evenly sampled down to
    [max_truncations] per log when there are more), and corrupt single
    bytes at [max_flips] evenly spaced offsets per log, cycling xor
    masks 0x01 / 0x80 / 0xFF. Every mutant is pushed through decode and
    — when decode accepts it — a full replay bounded by a tick budget
    derived from the baseline run, and classified per
    {!fault_outcome}. *)
let fault_injection ?(pool : Par.Pool.t option) ?(max_truncations = 512)
    ?(max_flips = 128) ?(config = Engine.default_config) ~(io : Iomodel.t)
    ~(instrumented : Minic.Ast.program) () : fault_report =
  let baseline = Runner.record ~config ~io instrumented in
  let input_s, input_marks =
    Replay.Log.encode_input_log_marked baseline.rc_log
  in
  let order_s, order_marks =
    Replay.Log.encode_order_log_marked baseline.rc_log
  in
  (* a damaged log must not be able to hang the harness: cap replay at a
     generous multiple of the undamaged run *)
  let budget =
    min config.Engine.max_ticks
      (max 1_000_000 (8 * baseline.rc_outcome.Engine.o_ticks))
  in
  let replay_config = { config with Engine.max_ticks = budget } in
  let classify (input_m : string) (order_m : string) : fault_outcome =
    match Replay.Log.decode input_m order_m with
    | exception Replay.Log.Corrupt _ -> Rejected
    | exception e -> Crash (Printexc.to_string e)
    | mlog -> (
        match Runner.replay ~config:replay_config ~io instrumented mlog with
        | exception e -> Crash (Printexc.to_string e)
        | o -> (
            match Runner.same_execution baseline.rc_outcome o with
            | Ok () when o.Engine.o_claim_mismatches = [] -> Benign
            | Ok () | Error _ -> Divergent))
  in
  let truncs side marks =
    List.map
      (fun i ->
        let off = marks.(i) in
        (Fmt.str "%s truncated at byte %d" side off, side, `Trunc off))
      (sample_indices ~cap:max_truncations (Array.length marks))
  in
  let flips side s =
    let n = String.length s in
    if n = 0 then []
    else
      List.mapi
        (fun k off ->
          let mask = flip_masks.(k mod Array.length flip_masks) in
          ( Fmt.str "%s byte %d xor 0x%02x" side off mask,
            side,
            `Flip (off, mask) ))
        (sample_indices ~cap:(min max_flips n) n)
  in
  (* trailing-garbage mutants: a decoder that stops at the last record it
     understands would accept every one of these — the end-of-input check
     in [Log.decode] must reject them typed *)
  let appends side =
    List.map
      (fun suffix ->
        ( Fmt.str "%s + %d trailing byte(s) (0x%02x..)" side
            (String.length suffix)
            (Char.code suffix.[0]),
          side,
          `Append suffix ))
      [ "\x00"; "\x01"; "\xff"; String.make 64 '\x00' ]
  in
  let mutants =
    truncs "input-log" input_marks
    @ truncs "order-log" order_marks
    @ flips "input-log" input_s
    @ flips "order-log" order_s
    @ appends "input-log"
    @ appends "order-log"
  in
  let n_of p = List.length (List.filter (fun (_, _, m) -> p m) mutants) in
  let n_truncs = n_of (function `Trunc _ -> true | _ -> false) in
  let n_appends = n_of (function `Append _ -> true | _ -> false) in
  let apply side damage =
    let base = if side = "input-log" then input_s else order_s in
    let m =
      match damage with
      | `Trunc off -> String.sub base 0 off
      | `Flip (off, mask) ->
          let b = Bytes.of_string base in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask));
          Bytes.to_string b
      | `Append suffix -> base ^ suffix
    in
    if side = "input-log" then (m, order_s) else (input_s, m)
  in
  let outcomes =
    Par.Pool.map_opt pool
      (fun (what, side, damage) ->
        let input_m, order_m = apply side damage in
        (what, classify input_m order_m))
      mutants
  in
  let count p = List.length (List.filter (fun (_, o) -> p o) outcomes) in
  {
    fi_truncations = n_truncs;
    fi_flips = List.length mutants - n_truncs - n_appends;
    fi_appends = n_appends;
    fi_rejected = count (function Rejected -> true | _ -> false);
    fi_benign = count (function Benign -> true | _ -> false);
    fi_divergent = count (function Divergent -> true | _ -> false);
    fi_crashes =
      List.filter_map
        (fun (what, o) ->
          match o with Crash e -> Some (what, e) | _ -> None)
        outcomes;
  }

let pp_fault_report ppf (f : fault_report) =
  Fmt.pf ppf
    "%d mutants (%d truncations, %d byte flips, %d appends): %d rejected \
     typed, %d benign, %d divergent (reported), %d crashes"
    (fault_total f) f.fi_truncations f.fi_flips f.fi_appends f.fi_rejected
    f.fi_benign f.fi_divergent
    (List.length f.fi_crashes)
