(** Execution drivers: native / record / replay runs, log-size
    accounting, determinism checking, and overhead measurement
    (record-run ticks on the instrumented program over native ticks on
    the original, with identical inputs). *)

open Interp

type recorded = {
  rc_outcome : Engine.outcome;
  rc_log : Replay.Log.t;
  rc_input_log_raw : int;
  rc_order_log_raw : int;
  rc_input_log_z : int;   (** compressed bytes *)
  rc_order_log_z : int;
}

(** All drivers accept an optional trace [sink] (see {!Trace}); events
    are emitted into it as the run executes, with zero effect on the
    simulated execution. *)

val native :
  ?config:Engine.config ->
  ?sink:Trace.Sink.t ->
  io:Iomodel.t ->
  Minic.Ast.program ->
  Engine.outcome

(** Run under deterministic (Kendo-style logical-time) arbitration: on a
    Chimera-transformed (hence data-race-free) program the outcome —
    outputs, final memory, per-thread instruction counts — is identical
    for every scheduler seed, with no recording (the paper's future-work
    direction; see DESIGN.md). *)
val deterministic :
  ?config:Engine.config ->
  ?sink:Trace.Sink.t ->
  io:Iomodel.t ->
  Minic.Ast.program ->
  Engine.outcome

(** [phases], when given, receives the record run's per-phase wall-clock
    attribution (interpreter / recorder / scheduler / weak-lock
    admission); see {!Interp.Phases}. Attribution never affects the
    simulated execution. *)
val record :
  ?config:Engine.config ->
  ?hooks:Engine.hooks ->
  ?sink:Trace.Sink.t ->
  ?phases:Phases.t ->
  io:Iomodel.t ->
  Minic.Ast.program ->
  recorded

val replay :
  ?config:Engine.config ->
  ?hooks:Engine.hooks ->
  ?sink:Trace.Sink.t ->
  io:Iomodel.t ->
  Minic.Ast.program ->
  Replay.Log.t ->
  Engine.outcome

type seg_recorded = {
  sr_outcome : Engine.outcome;
  sr_manifest : Replay.Seglog.manifest;
  sr_stats : Replay.Seglog.writer_stats;
  sr_dir : string;
}

(** Record with a segmented, spilling log: the recorder seals the open
    segment every [events_per_segment] gated events and spills it —
    compressed and checksummed — to [dir] (see {!Replay.Seglog}), so the
    resident log never exceeds one segment
    ({!Replay.Seglog.writer_stats.ws_peak_raw}). Every
    [checkpoint_every]-th seal also pins an engine checkpoint (state
    digest + marshalled snapshot); [checkpoint_every = 0] disables
    checkpoints. Spilling charges no simulated ticks and seal points
    depend only on the recorded event counts, so the execution — ticks,
    outputs, golden counters — is identical to a monolithic recording. *)
val record_segmented :
  ?config:Engine.config ->
  ?hooks:Engine.hooks ->
  ?sink:Trace.Sink.t ->
  io:Iomodel.t ->
  dir:string ->
  ?events_per_segment:int ->
  ?checkpoint_every:int ->
  Minic.Ast.program ->
  seg_recorded

type streamed_replay = {
  st_outcome : Engine.outcome;
  st_segments_loaded : int;
  st_halted : bool;  (** window bound reached (windowed replays only) *)
  st_digests : (int * string) list;
      (** (segment index, engine state digest at that segment's drain),
          oldest first — the replay-side pins a windowed replay's halt
          digest is compared against *)
}

(** Stream a segmented recording out of [dir] and replay it. Without
    [upto_tick] the whole log is replayed (equivalent to a monolithic
    replay of the concatenated segments). With [upto_tick] the replay is
    windowed: it streams from tick 0 but halts cleanly once the last
    segment covering that tick has drained, never reading the later
    segment files. A windowed replay's halt digest equals the full
    replay's digest at the same segment drain, and equals the recorder's
    pinned checkpoint digest for that seal.
    @raise Replay.Log.Corrupt on any manifest / segment corruption. *)
val replay_streamed :
  ?config:Engine.config ->
  ?hooks:Engine.hooks ->
  ?sink:Trace.Sink.t ->
  io:Iomodel.t ->
  ?upto_tick:int ->
  dir:string ->
  Minic.Ast.program ->
  streamed_replay

type divergence =
  | Outputs of
      (Runtime.Key.tid_path * int) list * (Runtime.Key.tid_path * int) list
  | Final_state of int * int
  | Steps of
      (Runtime.Key.tid_path * int) list * (Runtime.Key.tid_path * int) list
  | Faults of
      (Runtime.Key.tid_path * string) list
      * (Runtime.Key.tid_path * string) list
  | Timed_out

val pp_divergence : divergence Fmt.t

(** Strong observable equality: output trace, faults, final
    shared-memory hash, per-thread instruction counts. *)
val same_execution :
  Engine.outcome -> Engine.outcome -> (unit, divergence) result

(** Record, then replay under a different scheduler seed, and compare. *)
val record_replay_check :
  ?config:Engine.config ->
  io:Iomodel.t ->
  ?replay_seed_delta:int ->
  Minic.Ast.program ->
  (recorded * Engine.outcome, divergence) result

(** Replay-divergence diagnostic: re-record [instrumented] with tracing
    on, replay [log] traced under a shifted seed, and diff the stable
    per-thread event streams. [Some d] names the first diverging event
    with thread/step/lock context; [None] means the streams agree (no
    divergence, or a data-only one). *)
val first_trace_divergence :
  ?config:Engine.config ->
  ?replay_seed_delta:int ->
  io:Iomodel.t ->
  Minic.Ast.program ->
  Replay.Log.t ->
  Trace.divergence option

(** One native + record + replay trial (replay already checked against
    the recording). *)
type trial = {
  tr_native : Engine.outcome;
  tr_recorded : recorded;
  tr_replay : Engine.outcome;
}

type trial_failure = {
  tf_trial : int;
  tf_seed : int;
  tf_strategy : Engine.strategy;
  tf_divergence : divergence;
  tf_first_event : Trace.divergence option;
}
(** A diverged trial: index, scheduler seed, strategy, outcome-level
    divergence, and the first diverging trace event when one exists —
    enough to reproduce the failure from the message alone. *)

exception Trial_diverged of trial_failure

val pp_trial_failure : trial_failure Fmt.t

(** [run_trials ~trials ~config_of ~io_of ~original ~instrumented ()]
    runs [trials] independent native/record/replay trials — concurrently
    across [pool]'s domains when given — returning them in trial order
    (1..trials). Each trial is a pure function of its index, so the
    result list is schedule-independent. Raises [Trial_diverged] on
    replay divergence. *)
val run_trials :
  ?pool:Par.Pool.t ->
  ?replay_seed_delta:int ->
  trials:int ->
  config_of:(int -> Engine.config) ->
  io_of:(int -> Iomodel.t) ->
  original:Minic.Ast.program ->
  instrumented:Minic.Ast.program ->
  unit ->
  trial list

type overhead = {
  ov_native_ticks : int;
  ov_record_ticks : int;
  ov_replay_ticks : int;
  ov_record : float;
  ov_replay : float;
}

val measure :
  ?config:Engine.config ->
  io:Iomodel.t ->
  original:Minic.Ast.program ->
  instrumented:Minic.Ast.program ->
  unit ->
  overhead * recorded
