(** The end-to-end Chimera pipeline (Figure 1 of the paper):

    source → RELAY static race detection → off-line profiling →
    clique + symbolic-bounds granularity planning → weak-lock
    instrumentation → record / replay.

    {!analyze} runs the static and profiling stages and produces the
    instrumented program; {!Runner} (sibling module) executes programs in
    native/record/replay modes and checks replay determinism. *)

open Minic.Ast

type analysis = {
  an_prog : program;              (** original program, type-checked *)
  an_summaries : Relay.Summary.t;
  an_report : Relay.Detect.report;
  an_profile : Profiling.Profile.t;
  an_plan_raw : Instrument.Plan.t;  (** plan before lockopt elision *)
  an_plan : Instrument.Plan.t;      (** plan actually instrumented *)
  an_lockopt : Lockopt.report;
  an_instrumented : program;      (** the data-race-free transformed program *)
  an_plan_refined : Instrument.Plan.t option;
      (** corpus-refined plan (third plan stage); [None] until a
          refinement is installed with {!with_refined} *)
  an_instr_refined : program option;
      (** program instrumented under [an_plan_refined] *)
}

let default_profile_io i = Interp.Iomodel.random ~seed:(1000 + (i * 37))

(** Everything the cached analysis result depends on, except the
    [profile_io] closure — that one is not digestible, so callers
    supplying a non-default io model must pass a distinguishing
    [cache_tag] (the CLI's default io keeps the default tag). *)
let cache_key ~opts ~profile_runs ~profile_config ~mhp ~lockopt ~cache_tag
    (prog : program) : string =
  Ancache.key_of_parts
    [
      Ancache.tool_version;
      Marshal.to_string prog [];
      Marshal.to_string (opts : Instrument.Plan.options) [];
      string_of_int profile_runs;
      Marshal.to_string (profile_config : Interp.Engine.config) [];
      string_of_bool mhp;
      string_of_bool lockopt;
      cache_tag;
    ]

(** Run the full static + profiling pipeline.

    [profile_runs] defaults to 20 (as in the paper, Section 7.1);
    [profile_io] supplies per-run input models (profiling inputs should
    differ from evaluation inputs); [opts] selects the optimization set
    (Figure 5's configurations live in {!Instrument.Plan}); [lockopt]
    (default on) elides acquisitions the must-lockset analysis proves
    redundant (see {!Lockopt}); [pool] fans out the profile runs, the
    SCC-scheduled summary computation, the per-object race scans and the
    per-function lockopt dataflow — all observationally identical to the
    serial run.

    [cache] consults/updates a persistent {!Ancache} store keyed on the
    program + options + tool version (+ [cache_tag], which must cover
    any custom [profile_io]); a hit skips every stage. Damaged entries
    fall back to recomputation and are overwritten. [stage_sink] gets a
    [(stage, seconds)] call per timed stage (["pointer"], ["relay"],
    ["mhp"], ["profile"], ["plan"], ["lockopt"]); [cache_log] gets
    one-line diagnostics about cache hits/misses. *)
let analyze ?(opts = Instrument.Plan.all_opts) ?(profile_runs = 20)
    ?(profile_io = default_profile_io)
    ?(profile_config = Interp.Engine.default_config) ?(mhp = true)
    ?(lockopt = true) ?pool ?(cache : Ancache.t option)
    ?(cache_tag = "default") ?(stage_sink : (string -> float -> unit) option)
    ?(cache_log : (string -> unit) option) (prog : program) : analysis =
  let prog = Minic.Typecheck.check prog in
  let log fmt = Fmt.kstr (fun s -> Option.iter (fun k -> k s) cache_log) fmt in
  let key =
    match cache with
    | None -> ""
    | Some _ ->
        cache_key ~opts ~profile_runs ~profile_config ~mhp ~lockopt ~cache_tag
          prog
  in
  let cached : analysis option =
    match cache with
    | None -> None
    | Some c -> (
        match Ancache.find c ~key with
        | Ok payload -> (
            match (Marshal.from_string payload 0 : analysis) with
            | an ->
                log "analysis cache hit (key %s)" key;
                Some an
            | exception _ ->
                log
                  "warning: analysis cache entry %s undecodable; recomputing"
                  key;
                None)
        | Error Ancache.Absent ->
            log "analysis cache miss (key %s)" key;
            None
        | Error reason ->
            log "warning: analysis cache entry %s: %a; recomputing" key
              Ancache.pp_miss reason;
            None)
  in
  match cached with
  | Some an -> an
  | None ->
      let now = Unix.gettimeofday in
      let emit name dt = Option.iter (fun k -> k name dt) stage_sink in
      let t0 = now () in
      let pa = Pointer.Analysis.run prog in
      emit "pointer" (now () -. t0);
      let t0 = now () in
      let summaries = Relay.Summary.compute ?pool prog pa in
      let t_relay = now () -. t0 in
      let precomputed_mhp =
        if not mhp then None
        else begin
          let t0 = now () in
          let m = Mhp.analyze prog pa summaries.Relay.Summary.cg in
          emit "mhp" (now () -. t0);
          Some m
        end
      in
      let t0 = now () in
      let report = Relay.Detect.detect ~mhp ?precomputed_mhp ?pool summaries in
      emit "relay" (t_relay +. (now () -. t0));
      let t0 = now () in
      let profile =
        Profiling.Profile.profile_many ~config:profile_config ?pool
          ~io_of:profile_io ~runs:profile_runs prog
      in
      emit "profile" (now () -. t0);
      let t0 = now () in
      let plan_raw = Instrument.Plan.compute ~opts prog report profile in
      emit "plan" (now () -. t0);
      let t0 = now () in
      let plan, lockopt_report =
        if lockopt then
          Lockopt.optimize ?pool prog plan_raw summaries.Relay.Summary.cg
        else (plan_raw, Lockopt.disabled plan_raw)
      in
      emit "lockopt" (now () -. t0);
      let instrumented = Instrument.Transform.apply prog plan in
      let an =
        {
          an_prog = prog;
          an_summaries = summaries;
          an_report = report;
          an_profile = profile;
          an_plan_raw = plan_raw;
          an_plan = plan;
          an_lockopt = lockopt_report;
          an_instrumented = instrumented;
          an_plan_refined = None;
          an_instr_refined = None;
        }
      in
      (match cache with
      | None -> ()
      | Some c ->
          if not (Ancache.put c ~key (Marshal.to_string an [])) then
            log "warning: could not write analysis cache entry %s" key);
      an

(** Install a corpus-refined plan as the analysis's third plan stage and
    instrument the program under it. Refinement only ever narrows the
    lockopt plan, so the static report and profile stay untouched. *)
let with_refined (an : analysis) (plan : Instrument.Plan.t) : analysis =
  {
    an with
    an_plan_refined = Some plan;
    an_instr_refined = Some (Instrument.Transform.apply an.an_prog plan);
  }

(** Convenience: parse, check, analyze. *)
let analyze_source ?opts ?profile_runs ?profile_io ?profile_config ?mhp
    ?lockopt ?pool ?cache ?cache_tag ?stage_sink ?cache_log ?file src =
  analyze ?opts ?profile_runs ?profile_io ?profile_config ?mhp ?lockopt ?pool
    ?cache ?cache_tag ?stage_sink ?cache_log
    (Minic.Parser.parse ?file src)
