(** The end-to-end Chimera pipeline (Figure 1 of the paper):

    source → RELAY static race detection → off-line profiling →
    clique + symbolic-bounds granularity planning → weak-lock
    instrumentation → record / replay.

    {!analyze} runs the static and profiling stages and produces the
    instrumented program; {!Runner} (sibling module) executes programs in
    native/record/replay modes and checks replay determinism. *)

open Minic.Ast

type analysis = {
  an_prog : program;              (** original program, type-checked *)
  an_summaries : Relay.Summary.t;
  an_report : Relay.Detect.report;
  an_profile : Profiling.Profile.t;
  an_plan_raw : Instrument.Plan.t;  (** plan before lockopt elision *)
  an_plan : Instrument.Plan.t;      (** plan actually instrumented *)
  an_lockopt : Lockopt.report;
  an_instrumented : program;      (** the data-race-free transformed program *)
}

let default_profile_io i = Interp.Iomodel.random ~seed:(1000 + (i * 37))

(** Run the full static + profiling pipeline.

    [profile_runs] defaults to 20 (as in the paper, Section 7.1);
    [profile_io] supplies per-run input models (profiling inputs should
    differ from evaluation inputs); [opts] selects the optimization set
    (Figure 5's configurations live in {!Instrument.Plan}); [lockopt]
    (default on) elides acquisitions the must-lockset analysis proves
    redundant (see {!Lockopt}); [pool] runs the profile runs concurrently
    on its domains — the aggregate profile, and hence the whole analysis,
    is identical to the serial one. *)
let analyze ?(opts = Instrument.Plan.all_opts) ?(profile_runs = 20)
    ?(profile_io = default_profile_io)
    ?(profile_config = Interp.Engine.default_config) ?mhp ?(lockopt = true)
    ?pool (prog : program) : analysis =
  let prog = Minic.Typecheck.check prog in
  let summaries, report = Relay.Detect.analyze ?mhp prog in
  let profile =
    Profiling.Profile.profile_many ~config:profile_config ?pool
      ~io_of:profile_io ~runs:profile_runs prog
  in
  let plan_raw = Instrument.Plan.compute ~opts prog report profile in
  let plan, lockopt_report =
    if lockopt then Lockopt.optimize prog plan_raw summaries.Relay.Summary.cg
    else (plan_raw, Lockopt.disabled plan_raw)
  in
  let instrumented = Instrument.Transform.apply prog plan in
  {
    an_prog = prog;
    an_summaries = summaries;
    an_report = report;
    an_profile = profile;
    an_plan_raw = plan_raw;
    an_plan = plan;
    an_lockopt = lockopt_report;
    an_instrumented = instrumented;
  }

(** Convenience: parse, check, analyze. *)
let analyze_source ?opts ?profile_runs ?profile_io ?profile_config ?mhp
    ?lockopt ?pool ?file src =
  analyze ?opts ?profile_runs ?profile_io ?profile_config ?mhp ?lockopt ?pool
    (Minic.Parser.parse ?file src)
