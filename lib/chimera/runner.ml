(** Execution drivers: native / record / replay runs, log-size accounting,
    and the determinism check used throughout the tests and benchmarks.

    Overheads are ratios of simulated makespan (ticks): the paper's
    "recording overhead" is record-run ticks on the {e instrumented}
    program over native ticks on the {e original} program with the same
    inputs and thread count. *)

open Interp

type recorded = {
  rc_outcome : Engine.outcome;
  rc_log : Replay.Log.t;
  rc_input_log_raw : int;     (** bytes before compression *)
  rc_order_log_raw : int;
  rc_input_log_z : int;       (** compressed bytes *)
  rc_order_log_z : int;
}

let native ?(config = Engine.default_config) ?sink ~io prog : Engine.outcome =
  Engine.run ~config ?sink ~mode:Engine.Native ~io prog

let deterministic ?(config = Engine.default_config) ?sink ~io prog :
    Engine.outcome =
  Engine.run ~config ?sink ~mode:Engine.Deterministic ~io prog

let record ?(config = Engine.default_config) ?hooks ?sink ?phases ~io prog :
    recorded =
  let outcome =
    Engine.run ~config ?hooks ?sink ?phases ~mode:Engine.Record ~io prog
  in
  let rc =
    match outcome.Engine.o_recorder with
    | Some rc -> rc
    | None -> invalid_arg "record: engine returned no recorder"
  in
  let log = rc.Replay.Recorder.log in
  let input_raw = Replay.Log.encode_input_log log in
  let order_raw = Replay.Log.encode_order_log log in
  {
    rc_outcome = outcome;
    rc_log = log;
    rc_input_log_raw = String.length input_raw;
    rc_order_log_raw = String.length order_raw;
    rc_input_log_z = Zcompress.compressed_size input_raw;
    rc_order_log_z = Zcompress.compressed_size order_raw;
  }

let replay ?(config = Engine.default_config) ?hooks ?sink ~io prog
    (log : Replay.Log.t) : Engine.outcome =
  Engine.run ~config ?hooks ?sink ~mode:(Engine.Replay log) ~io prog

(* ------------------------------------------------------------------ *)
(* Segmented (spilling) recording and streamed / windowed replay *)

type seg_recorded = {
  sr_outcome : Engine.outcome;
  sr_manifest : Replay.Seglog.manifest;
  sr_stats : Replay.Seglog.writer_stats;
  sr_dir : string;
}

let record_segmented ?(config = Engine.default_config) ?hooks ?sink ~io ~dir
    ?(events_per_segment = 4096) ?(checkpoint_every = 1) prog : seg_recorded =
  let w = Replay.Seglog.create_writer ~dir in
  let eng = Engine.make_engine ~config ?hooks ?sink ~mode:Engine.Record ~io prog in
  let rc =
    match eng.Engine.recorder with
    | Some rc -> rc
    | None -> invalid_arg "record_segmented: engine has no recorder"
  in
  let seals = ref 0 in
  let flush ~log ~first_tick ~last_tick ~events =
    (* the snapshot is taken at the seal instant, so the pinned digest is
       exactly the engine state every replay must pass through when it
       drains this segment *)
    let snapshot =
      if checkpoint_every > 0 && !seals mod checkpoint_every = 0 then
        Some (Engine.state_digest eng, Engine.snapshot_bytes eng)
      else None
    in
    incr seals;
    Replay.Seglog.append w ?snapshot ~first_tick ~last_tick ~events log
  in
  Replay.Recorder.set_spill rc ~events_per_segment ~flush;
  let outcome = Engine.run_engine eng in
  Replay.Recorder.finish rc ~now:eng.Engine.ticks;
  let stats = Replay.Seglog.writer_stats w in
  let manifest = Replay.Seglog.close_writer w in
  { sr_outcome = outcome; sr_manifest = manifest; sr_stats = stats; sr_dir = dir }

type streamed_replay = {
  st_outcome : Engine.outcome;
  st_segments_loaded : int;
  st_halted : bool;
  st_digests : (int * string) list;
      (* (segment index, replay-side state digest at its drain),
         oldest first *)
}

let replay_streamed ?(config = Engine.default_config) ?hooks ?sink ~io
    ?upto_tick ~dir prog : streamed_replay =
  let manifest, pull = Replay.Seglog.stream ~dir in
  let r = Replay.Replayer.of_stream pull in
  (match upto_tick with
  | Some upto ->
      Replay.Replayer.set_window r
        ~last_segment:(Replay.Seglog.covering_segment manifest ~upto)
  | None -> ());
  let eng =
    Engine.make_engine ~config ?hooks ?sink ~replayer:r
      ~mode:(Engine.Replay (Replay.Log.create ())) ~io prog
  in
  let digests = ref [] in
  Replay.Replayer.set_on_advance r (fun idx ->
      digests := (idx, Engine.state_digest eng) :: !digests);
  let outcome = Engine.run_engine eng in
  {
    st_outcome = outcome;
    st_segments_loaded = Replay.Replayer.segments_loaded r;
    st_halted = Replay.Replayer.halted r;
    st_digests = List.rev !digests;
  }

(* ------------------------------------------------------------------ *)
(* Determinism comparison *)

type divergence =
  | Outputs of (Runtime.Key.tid_path * int) list * (Runtime.Key.tid_path * int) list
  | Final_state of int * int
  | Steps of (Runtime.Key.tid_path * int) list * (Runtime.Key.tid_path * int) list
  | Faults of (Runtime.Key.tid_path * string) list * (Runtime.Key.tid_path * string) list
  | Timed_out

let pp_divergence ppf = function
  | Outputs (a, b) ->
      Fmt.pf ppf "outputs differ: [%a] vs [%a]"
        Fmt.(list ~sep:comma int)
        (List.map snd a)
        Fmt.(list ~sep:comma int)
        (List.map snd b)
  | Final_state (a, b) -> Fmt.pf ppf "final memory differs: %d vs %d" a b
  | Steps (a, b) ->
      Fmt.pf ppf "per-thread step counts differ: [%a] vs [%a]"
        Fmt.(list ~sep:comma int)
        (List.map snd a)
        Fmt.(list ~sep:comma int)
        (List.map snd b)
  | Faults (a, b) ->
      Fmt.pf ppf "faults differ: %d vs %d" (List.length a) (List.length b)
  | Timed_out -> Fmt.string ppf "a run timed out / deadlocked"

(** Is [b] the same execution as [a]? Compares the output trace, the
    final shared-memory hash, per-thread instruction counts, and faults —
    the strongest observable-equality check the simulator offers. *)
let same_execution (a : Engine.outcome) (b : Engine.outcome) :
    (unit, divergence) result =
  if a.o_timed_out || b.o_timed_out then Error Timed_out
  else if a.o_outputs <> b.o_outputs then Error (Outputs (a.o_outputs, b.o_outputs))
  else if a.o_faults <> b.o_faults then Error (Faults (a.o_faults, b.o_faults))
  else if a.o_final_hash <> b.o_final_hash then
    Error (Final_state (a.o_final_hash, b.o_final_hash))
  else if a.o_steps <> b.o_steps then Error (Steps (a.o_steps, b.o_steps))
  else Ok ()

(** Record the instrumented program with [record_seed], then replay it
    under a different scheduler seed and check the executions match. *)
let record_replay_check ?(config = Engine.default_config) ~io
    ?(replay_seed_delta = 7919) (instrumented : Minic.Ast.program) :
    (recorded * Engine.outcome, divergence) result =
  let r = record ~config ~io instrumented in
  let replay_config =
    { config with Engine.seed = config.Engine.seed + replay_seed_delta }
  in
  let o = replay ~config:replay_config ~io instrumented r.rc_log in
  match same_execution r.rc_outcome o with
  | Ok () -> Ok (r, o)
  | Error d -> Error d

(* ------------------------------------------------------------------ *)
(* Replay-divergence diagnosis *)

(** When a replay of [log] diverges from what [config] records, locate
    the first diverging trace event: re-record with tracing on (the
    ground truth this configuration produces), replay [log] traced, and
    diff the stable per-thread streams. [None] means the streams agree —
    the divergence, if any, is data-only (same control flow and
    synchronization, different values). *)
let first_trace_divergence ?(config = Engine.default_config)
    ?(replay_seed_delta = 7919) ~io (instrumented : Minic.Ast.program)
    (log : Replay.Log.t) : Trace.divergence option =
  let rec_sink = Trace.Sink.create () in
  ignore (record ~config ~sink:rec_sink ~io instrumented);
  let rep_sink = Trace.Sink.create () in
  let replay_config =
    { config with Engine.seed = config.Engine.seed + replay_seed_delta }
  in
  ignore (replay ~config:replay_config ~sink:rep_sink ~io instrumented log);
  Trace.first_divergence
    ~recorded:(Trace.Sink.events rec_sink)
    ~replayed:(Trace.Sink.events rep_sink)

(* ------------------------------------------------------------------ *)
(* Overhead measurement *)

type overhead = {
  ov_native_ticks : int;
  ov_record_ticks : int;
  ov_replay_ticks : int;
  ov_record : float;  (** record / native *)
  ov_replay : float;
}

(** One full trial — native run of [original], record + replay of
    [instrumented] (replay under a shifted scheduler seed) — plus the
    divergence check. Each trial builds its own engines, io models come in
    per-trial, and nothing is shared, so trials are safe to run on
    separate domains. *)
type trial = {
  tr_native : Engine.outcome;
  tr_recorded : recorded;
  tr_replay : Engine.outcome;
}

(** A diverged trial, with everything needed to reproduce it from the
    message alone: the trial index, the exact scheduler seed and
    strategy it recorded under, the outcome-level divergence, and (when
    the trace diff localizes one) the first diverging event. *)
type trial_failure = {
  tf_trial : int;
  tf_seed : int;
  tf_strategy : Engine.strategy;
  tf_divergence : divergence;
  tf_first_event : Trace.divergence option;
}

exception Trial_diverged of trial_failure

let pp_trial_failure ppf (tf : trial_failure) =
  Fmt.pf ppf
    "trial %d (seed %d, strategy %s): replay diverged: %a; first diverging \
     event: %a"
    tf.tf_trial tf.tf_seed
    (Engine.strategy_name tf.tf_strategy)
    pp_divergence tf.tf_divergence
    Fmt.(option ~none:(any "none (data-only)") Trace.pp_divergence)
    tf.tf_first_event

let () =
  Printexc.register_printer (function
    | Trial_diverged tf -> Some (Fmt.str "Trial_diverged: %a" pp_trial_failure tf)
    | _ -> None)

(** Run [trials] independent trials, concurrently when [pool] is given.
    [config_of t] and [io_of t] (t = 1..trials) fix each trial's scheduler
    seed and inputs, so every trial's result is a function of its index
    alone: the returned list (in trial order) is identical however the
    trials are scheduled. Raises [Trial_diverged] — carrying the trial
    index, seed, strategy, and first diverging trace event — if any
    trial's replay diverges from its recording. *)
let run_trials ?(pool : Par.Pool.t option) ?(replay_seed_delta = 7919)
    ~trials ~(config_of : int -> Engine.config) ~(io_of : int -> Iomodel.t)
    ~(original : Minic.Ast.program) ~(instrumented : Minic.Ast.program) () :
    trial list =
  let one t =
    let config = config_of t in
    let io = io_of t in
    let nat = native ~config ~io original in
    let r = record ~config ~io instrumented in
    let rp =
      replay
        ~config:{ config with Engine.seed = config.Engine.seed + replay_seed_delta }
        ~io instrumented r.rc_log
    in
    (match same_execution r.rc_outcome rp with
    | Ok () -> ()
    | Error d ->
        (* the trace diff re-records, so pay for it only on failure *)
        let first =
          first_trace_divergence ~config ~replay_seed_delta ~io instrumented
            r.rc_log
        in
        raise
          (Trial_diverged
             {
               tf_trial = t;
               tf_seed = config.Engine.seed;
               tf_strategy = config.Engine.strategy;
               tf_divergence = d;
               tf_first_event = first;
             }));
    { tr_native = nat; tr_recorded = r; tr_replay = rp }
  in
  let indices = List.init trials (fun t -> t + 1) in
  match pool with
  | Some p when Par.Pool.size p > 1 -> Par.Pool.map_list p one indices
  | _ -> List.map one indices

(** Measure recording and replay overhead of [instrumented] against the
    native run of [original], with identical inputs and configuration. *)
let measure ?(config = Engine.default_config) ~io
    ~(original : Minic.Ast.program) ~(instrumented : Minic.Ast.program) () :
    overhead * recorded =
  let n = native ~config ~io original in
  let r = record ~config ~io instrumented in
  let rp = replay ~config ~io instrumented r.rc_log in
  let ratio a b = float_of_int a /. float_of_int (max 1 b) in
  ( {
      ov_native_ticks = n.o_ticks;
      ov_record_ticks = r.rc_outcome.o_ticks;
      ov_replay_ticks = rp.o_ticks;
      ov_record = ratio r.rc_outcome.o_ticks n.o_ticks;
      ov_replay = ratio rp.o_ticks n.o_ticks;
    },
    r )
