(** Fleet-mode stress harness: batch recording of a
    (program x seed x strategy) matrix, content-addressed log dedup,
    replay validation of every distinct recording, and systematic log
    fault injection (truncation at every record boundary + byte
    corruption sweeps).

    Matrix contract: every distinct recording replays to the same
    execution with no served-claim drift; default-strategy seed-1 cells
    may additionally be pinned to golden tick counts.

    Fault contract: every damaged log yields a typed
    {!Replay.Log.Corrupt} rejection, a benign replay, or a clean
    divergence report — never a crash or a hang. *)

open Interp

(* ------------------------------------------------------------------ *)
(* Matrix *)

type prog_spec = {
  sp_name : string;
  sp_instrumented : Minic.Ast.program;
  sp_io : Iomodel.t;
  sp_golden_ticks : int option;
      (** expected record ticks for the default-strategy
          seed-{!golden_seed} cell, if pinned *)
}

type job = {
  jb_prog : prog_spec;
  jb_seed : int;
  jb_strategy : Engine.strategy;
}

val pp_job : job Fmt.t

type job_result = {
  jr_job : job;
  jr_digest : string;  (** content address of the encoded log pair *)
  jr_ticks : int;      (** record-run ticks *)
  jr_recorded : Runner.recorded;
}

type issue =
  | Diverged of job * Runner.divergence
  | Claim_drift of job * Replay.Replayer.claim_mismatch list
  | Stuck of job * string list
  | Golden_mismatch of job * int * int  (** expected, actual ticks *)

val pp_issue : issue Fmt.t

type report = {
  rp_jobs : int;      (** matrix size: recordings attempted *)
  rp_distinct : int;  (** distinct logs after content-addressed dedup *)
  rp_replayed : int;  (** distinct logs replayed and checked *)
  rp_results : job_result list;  (** in matrix order *)
  rp_issues : issue list;  (** empty iff the matrix is clean *)
}

val log_digest : Replay.Log.t -> string
(** Content address of a recording: MD5 of the input encoding and of the
    order encoding, hex-concatenated. *)

val golden_seed : int
(** The seed of the matrix cell [sp_golden_ticks] pins (1, matching the
    golden-counters generator). *)

val run_matrix :
  ?pool:Par.Pool.t ->
  ?cores:int ->
  ?replay_seed_delta:int ->
  seeds:int list ->
  strategies:Engine.strategy list ->
  progs:prog_spec list ->
  unit ->
  report
(** Record the full matrix (concurrently on [pool] when given), dedup
    the logs by content address per program, replay each distinct
    recording once under a shifted seed with the same strategy, and
    collect issues. Deterministic at any pool size. *)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

type fault_outcome =
  | Rejected   (** decode raised typed [Corrupt] *)
  | Benign     (** decoded; replay matched the original *)
  | Divergent  (** decoded; replay reported a divergence or claim drift *)
  | Crash of string  (** untyped exception — contract violation *)

type fault_report = {
  fi_truncations : int;
  fi_flips : int;
  fi_appends : int;  (** trailing-garbage mutants *)
  fi_rejected : int;
  fi_benign : int;
  fi_divergent : int;
  fi_crashes : (string * string) list;
      (** (mutant description, exception) — empty iff the contract
          holds *)
}

val fault_total : fault_report -> int

val fault_injection :
  ?pool:Par.Pool.t ->
  ?max_truncations:int ->
  ?max_flips:int ->
  ?config:Engine.config ->
  io:Iomodel.t ->
  instrumented:Minic.Ast.program ->
  unit ->
  fault_report
(** Record [instrumented] once, then damage the encoded logs
    systematically: truncate at every record boundary (evenly sampled
    down to [max_truncations] per log), xor single bytes at [max_flips]
    evenly spaced offsets per log (masks 0x01/0x80/0xFF), and append
    trailing garbage (1 and 64 bytes, several leading values) to each
    log — the mutants a decoder without an end-of-input check would
    silently accept. Each mutant is decoded and, when accepted, replayed
    under a tick budget derived from the baseline run, then
    classified. *)

val pp_fault_report : fault_report Fmt.t
