(** The end-to-end Chimera pipeline (paper Figure 1): source → RELAY →
    profiling → clique + bounds planning → weak-lock instrumentation.
    Execution lives in {!Runner}. *)

type analysis = {
  an_prog : Minic.Ast.program;       (** original, type-checked *)
  an_summaries : Relay.Summary.t;
  an_report : Relay.Detect.report;
  an_profile : Profiling.Profile.t;
  an_plan_raw : Instrument.Plan.t;
      (** plan as computed, before lockopt elision *)
  an_plan : Instrument.Plan.t;  (** plan actually instrumented *)
  an_lockopt : Lockopt.report;
  an_instrumented : Minic.Ast.program;
      (** the data-race-free transformed program *)
  an_plan_refined : Instrument.Plan.t option;
      (** corpus-refined plan (third plan stage beside [an_plan_raw] /
          [an_plan]); [None] until installed with {!with_refined} *)
  an_instr_refined : Minic.Ast.program option;
      (** program instrumented under [an_plan_refined] *)
}

(** Install a corpus-refined plan (see {!Refine} in [chimera.refine])
    as the third plan stage and instrument the program under it. *)
val with_refined : analysis -> Instrument.Plan.t -> analysis

(** The cache key {!analyze} uses for a program under the given options
    (exposed for tests and cache tooling). [cache_tag] must cover any
    non-default [profile_io]. *)
val cache_key :
  opts:Instrument.Plan.options ->
  profile_runs:int ->
  profile_config:Interp.Engine.config ->
  mhp:bool ->
  lockopt:bool ->
  cache_tag:string ->
  Minic.Ast.program ->
  string

(** Run the static + profiling pipeline. [profile_runs] defaults to 20
    (paper Section 7.1); [profile_io] supplies per-run input models
    (profiling inputs should differ from evaluation inputs); [opts]
    selects the optimization set (Figure 5's configurations live in
    {!Instrument.Plan}); [mhp] (default on) statically prunes race pairs
    that fork/join ordering serializes (see {!Mhp}); [lockopt] (default
    on) elides acquisitions the interprocedural must-lockset analysis
    proves redundant (see {!Lockopt}); [pool] fans out the profile runs,
    the SCC-scheduled summaries, the per-object race scans and the
    per-function lockopt dataflow (all observationally identical to
    serial).

    [cache] consults/updates a persistent {!Ancache} store: a hit skips
    every stage; damaged entries fall back to recomputation and are
    overwritten; [cache_tag] (default ["default"]) must distinguish any
    custom [profile_io]. [stage_sink] receives [(stage, seconds)] per
    timed stage (["pointer"], ["relay"], ["mhp"], ["profile"], ["plan"],
    ["lockopt"]); [cache_log] receives one-line cache diagnostics. *)
val analyze :
  ?opts:Instrument.Plan.options ->
  ?profile_runs:int ->
  ?profile_io:(int -> Interp.Iomodel.t) ->
  ?profile_config:Interp.Engine.config ->
  ?mhp:bool ->
  ?lockopt:bool ->
  ?pool:Par.Pool.t ->
  ?cache:Ancache.t ->
  ?cache_tag:string ->
  ?stage_sink:(string -> float -> unit) ->
  ?cache_log:(string -> unit) ->
  Minic.Ast.program ->
  analysis

val analyze_source :
  ?opts:Instrument.Plan.options ->
  ?profile_runs:int ->
  ?profile_io:(int -> Interp.Iomodel.t) ->
  ?profile_config:Interp.Engine.config ->
  ?mhp:bool ->
  ?lockopt:bool ->
  ?pool:Par.Pool.t ->
  ?cache:Ancache.t ->
  ?cache_tag:string ->
  ?stage_sink:(string -> float -> unit) ->
  ?cache_log:(string -> unit) ->
  ?file:string ->
  string ->
  analysis
