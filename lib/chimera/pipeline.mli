(** The end-to-end Chimera pipeline (paper Figure 1): source → RELAY →
    profiling → clique + bounds planning → weak-lock instrumentation.
    Execution lives in {!Runner}. *)

type analysis = {
  an_prog : Minic.Ast.program;       (** original, type-checked *)
  an_summaries : Relay.Summary.t;
  an_report : Relay.Detect.report;
  an_profile : Profiling.Profile.t;
  an_plan_raw : Instrument.Plan.t;
      (** plan as computed, before lockopt elision *)
  an_plan : Instrument.Plan.t;  (** plan actually instrumented *)
  an_lockopt : Lockopt.report;
  an_instrumented : Minic.Ast.program;
      (** the data-race-free transformed program *)
}

(** Run the static + profiling pipeline. [profile_runs] defaults to 20
    (paper Section 7.1); [profile_io] supplies per-run input models
    (profiling inputs should differ from evaluation inputs); [opts]
    selects the optimization set (Figure 5's configurations live in
    {!Instrument.Plan}); [mhp] (default on) statically prunes race pairs
    that fork/join ordering serializes (see {!Mhp}); [lockopt] (default
    on) elides acquisitions the interprocedural must-lockset analysis
    proves redundant (see {!Lockopt}); [pool] fans the profile runs out
    across domains (observationally identical to serial). *)
val analyze :
  ?opts:Instrument.Plan.options ->
  ?profile_runs:int ->
  ?profile_io:(int -> Interp.Iomodel.t) ->
  ?profile_config:Interp.Engine.config ->
  ?mhp:bool ->
  ?lockopt:bool ->
  ?pool:Par.Pool.t ->
  Minic.Ast.program ->
  analysis

val analyze_source :
  ?opts:Instrument.Plan.options ->
  ?profile_runs:int ->
  ?profile_io:(int -> Interp.Iomodel.t) ->
  ?profile_config:Interp.Engine.config ->
  ?mhp:bool ->
  ?lockopt:bool ->
  ?pool:Par.Pool.t ->
  ?file:string ->
  string ->
  analysis
