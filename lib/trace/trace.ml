(** Runtime observability: deterministic event tracing and contention
    metrics. See trace.mli / DESIGN.md §10 for the model; the one rule
    that matters everywhere below is that timestamps are per-thread step
    counts (logical clocks), so the stable part of a thread's stream is
    identical between a recording and its replay. *)

open Runtime

type kind =
  | Weak_acquire of Minic.Ast.weak_lock
  | Weak_block of Minic.Ast.weak_lock * int
  | Weak_wake of Minic.Ast.weak_lock
  | Weak_release of Minic.Ast.weak_lock
  | Weak_forced of Minic.Ast.weak_lock
  | Region_enter of int
  | Region_exit of int
  | Sync of Replay.Log.sync_op * Key.addr
  | Syscall
  | Replay_miss

type event = { ev_tp : Key.tid_path; ev_step : int; ev_kind : kind }

let pp_kind ppf = function
  | Weak_acquire l -> Fmt.pf ppf "acquire %a" Minic.Ast.pp_weak_lock l
  | Weak_block (l, d) ->
      Fmt.pf ppf "block %a (queue %d)" Minic.Ast.pp_weak_lock l d
  | Weak_wake l -> Fmt.pf ppf "wake %a" Minic.Ast.pp_weak_lock l
  | Weak_release l -> Fmt.pf ppf "release %a" Minic.Ast.pp_weak_lock l
  | Weak_forced l ->
      Fmt.pf ppf "forced-release %a" Minic.Ast.pp_weak_lock l
  | Region_enter n -> Fmt.pf ppf "region-enter (%d locks)" n
  | Region_exit n -> Fmt.pf ppf "region-exit (%d locks)" n
  | Sync (op, a) ->
      Fmt.pf ppf "%a %a" Replay.Log.pp_sync_op op Key.pp_addr a
  | Syscall -> Fmt.string ppf "syscall"
  | Replay_miss -> Fmt.string ppf "syscall beyond input log"

let pp_event ppf e =
  Fmt.pf ppf "%a@%d %a" Key.pp_tid_path e.ev_tp e.ev_step pp_kind e.ev_kind

(* Blocking and waking depend on who else was scheduled when — a replay
   legitimately blocks at different points (or not at all) while still
   reproducing the recorded execution. Everything that reflects what the
   thread *did* is stable. *)
let stable = function
  | Weak_block _ | Weak_wake _ | Replay_miss -> false
  | Weak_acquire _ | Weak_release _ | Weak_forced _ | Region_enter _
  | Region_exit _ | Sync _ | Syscall ->
      true

(* ------------------------------------------------------------------ *)
(* Sink: per-thread bounded rings *)

module Sink = struct
  (* (step, kind) cells; the tid_path is the buffer key. Buffers start
     small and double up to the capacity, then wrap, dropping oldest. *)
  type buf = {
    mutable arr : (int * kind) array;
    mutable head : int;  (* index of oldest retained cell *)
    mutable len : int;
    mutable dropped : int;
  }

  type t = { cap : int; bufs : (Key.tid_path, buf) Hashtbl.t }

  let create ?(capacity = 65536) () =
    { cap = max 1 capacity; bufs = Hashtbl.create 16 }

  let filler = (0, Syscall)

  let buf_of t tp =
    match Hashtbl.find_opt t.bufs tp with
    | Some b -> b
    | None ->
        let b =
          { arr = Array.make (min 64 t.cap) filler;
            head = 0; len = 0; dropped = 0 }
        in
        Hashtbl.add t.bufs tp b;
        b

  let emit t tp ~step kind =
    let b = buf_of t tp in
    let n = Array.length b.arr in
    if b.len = n && n < t.cap then begin
      (* grow: unroll the ring into a doubled flat array *)
      let arr' = Array.make (min t.cap (2 * n)) filler in
      for i = 0 to b.len - 1 do
        arr'.(i) <- b.arr.((b.head + i) mod n)
      done;
      b.arr <- arr';
      b.head <- 0
    end;
    let n = Array.length b.arr in
    if b.len < n then begin
      b.arr.((b.head + b.len) mod n) <- (step, kind);
      b.len <- b.len + 1
    end
    else begin
      (* full at capacity: overwrite the oldest *)
      b.arr.(b.head) <- (step, kind);
      b.head <- (b.head + 1) mod n;
      b.dropped <- b.dropped + 1
    end

  let buf_events tp b =
    List.init b.len (fun i ->
        let step, kind = b.arr.((b.head + i) mod Array.length b.arr) in
        { ev_tp = tp; ev_step = step; ev_kind = kind })

  let threads t =
    Hashtbl.fold (fun tp _ acc -> tp :: acc) t.bufs [] |> List.sort compare

  let thread_events t tp =
    match Hashtbl.find_opt t.bufs tp with
    | None -> []
    | Some b -> buf_events tp b

  let events t =
    List.concat_map (fun tp -> thread_events t tp) (threads t)

  let dropped t = Hashtbl.fold (fun _ b acc -> acc + b.dropped) t.bufs 0

  (* threads that actually overflowed, in stable thread order — the
     summary surfaces these so a sustained-load run can't pass off a
     truncated per-thread stream as complete *)
  let dropped_by_thread t =
    Hashtbl.fold
      (fun tp b acc -> if b.dropped > 0 then (tp, b.dropped) :: acc else acc)
      t.bufs []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type lock_metrics = {
  lm_lock : Minic.Ast.weak_lock;
  lm_acq : int;
  lm_blocks : int;
  lm_queue_sum : int;
  lm_forced : int;
  lm_wakes : int;
}

let mean_queue_depth lm =
  if lm.lm_blocks = 0 then 0.
  else float_of_int lm.lm_queue_sum /. float_of_int lm.lm_blocks

type gran_metrics = { gm_acq : int; gm_blocks : int; gm_forced : int }

type summary = {
  su_locks : lock_metrics list;
  su_gran : gran_metrics array;
  su_sync : int;
  su_syscalls : int;
  su_replay_miss : int;
  su_regions : int;
  su_events : int;
  su_dropped : int;
  su_dropped_by_thread : (Key.tid_path * int) list;
      (** threads whose ring overflowed (their oldest events are gone),
          stable thread order; [] iff [su_dropped = 0] when wired from
          {!Sink.dropped_by_thread} *)
}

type lock_acc = {
  mutable a_acq : int;
  mutable a_blocks : int;
  mutable a_queue_sum : int;
  mutable a_forced : int;
  mutable a_wakes : int;
}

let summarize ?(dropped = 0) ?(dropped_by_thread = []) events =
  let locks = Hashtbl.create 16 in
  let acc l =
    match Hashtbl.find_opt locks l with
    | Some a -> a
    | None ->
        let a =
          { a_acq = 0; a_blocks = 0; a_queue_sum = 0; a_forced = 0;
            a_wakes = 0 }
        in
        Hashtbl.add locks l a;
        a
  in
  let sync = ref 0 and syscalls = ref 0 and miss = ref 0 in
  let regions = ref 0 and n = ref 0 in
  List.iter
    (fun e ->
      incr n;
      match e.ev_kind with
      | Weak_acquire l -> (acc l).a_acq <- (acc l).a_acq + 1
      | Weak_block (l, d) ->
          let a = acc l in
          a.a_blocks <- a.a_blocks + 1;
          a.a_queue_sum <- a.a_queue_sum + d
      | Weak_wake l -> (acc l).a_wakes <- (acc l).a_wakes + 1
      | Weak_release _ -> ()
      | Weak_forced l -> (acc l).a_forced <- (acc l).a_forced + 1
      | Region_enter _ -> incr regions
      | Region_exit _ -> ()
      | Sync _ -> incr sync
      | Syscall -> incr syscalls
      | Replay_miss -> incr miss)
    events;
  let su_locks =
    Hashtbl.fold
      (fun l a out ->
        { lm_lock = l; lm_acq = a.a_acq; lm_blocks = a.a_blocks;
          lm_queue_sum = a.a_queue_sum; lm_forced = a.a_forced;
          lm_wakes = a.a_wakes }
        :: out)
      locks []
    |> List.sort (fun a b ->
           match compare b.lm_blocks a.lm_blocks with
           | 0 -> (
               match compare b.lm_acq a.lm_acq with
               | 0 -> Minic.Ast.compare_weak_lock a.lm_lock b.lm_lock
               | c -> c)
           | c -> c)
  in
  let su_gran =
    Array.init 4 (fun _ -> { gm_acq = 0; gm_blocks = 0; gm_forced = 0 })
  in
  List.iter
    (fun lm ->
      let r = Minic.Ast.granularity_rank lm.lm_lock.Minic.Ast.wl_gran in
      let g = su_gran.(r) in
      su_gran.(r) <-
        { gm_acq = g.gm_acq + lm.lm_acq;
          gm_blocks = g.gm_blocks + lm.lm_blocks;
          gm_forced = g.gm_forced + lm.lm_forced })
    su_locks;
  { su_locks; su_gran; su_sync = !sync; su_syscalls = !syscalls;
    su_replay_miss = !miss; su_regions = !regions; su_events = !n;
    su_dropped = dropped; su_dropped_by_thread = dropped_by_thread }

let pp_report ?(top = 10) ppf su =
  Fmt.pf ppf "trace: %d events (%d dropped), %d regions, %d sync ops, %d syscalls"
    su.su_events su.su_dropped su.su_regions su.su_sync su.su_syscalls;
  if su.su_dropped_by_thread <> [] then begin
    Fmt.pf ppf "@,ring overflow (oldest events lost):";
    List.iter
      (fun (tp, d) -> Fmt.pf ppf " %a:%d" Key.pp_tid_path tp d)
      su.su_dropped_by_thread
  end;
  if su.su_replay_miss > 0 then
    Fmt.pf ppf ", %d syscalls beyond input log" su.su_replay_miss;
  Fmt.pf ppf "@,granularity mix:";
  Array.iteri
    (fun r g ->
      if g.gm_acq > 0 || g.gm_blocks > 0 then
        Fmt.pf ppf " %a %d acq/%d blk%s" Minic.Ast.pp_granularity
          (match r with
          | 0 -> Minic.Ast.Gfunc
          | 1 -> Gloop
          | 2 -> Gbb
          | _ -> Ginstr)
          g.gm_acq g.gm_blocks
          (if g.gm_forced > 0 then Fmt.str "/%d forced" g.gm_forced else ""))
    su.su_gran;
  match su.su_locks with
  | [] -> Fmt.pf ppf "@,no weak-lock activity"
  | locks ->
      Fmt.pf ppf "@,%-8s %6s %6s %10s %6s %6s" "lock" "acq" "blocks"
        "mean-queue" "forced" "wakes";
      List.iteri
        (fun i lm ->
          if i < top then
            Fmt.pf ppf "@,%-8s %6d %6d %10.2f %6d %6d"
              (Fmt.str "%a" Minic.Ast.pp_weak_lock lm.lm_lock)
              lm.lm_acq lm.lm_blocks (mean_queue_depth lm) lm.lm_forced
              lm.lm_wakes)
        locks;
      if List.length locks > top then
        Fmt.pf ppf "@,... %d more locks" (List.length locks - top)

(* ------------------------------------------------------------------ *)
(* Chrome-trace export *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let obj fields =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Fmt.str "\"%s\":%s" k v))
      fields;
    Buffer.add_string b "}"
  in
  let str s = Fmt.str "\"%s\"" (json_escape s) in
  (* assign each thread a numeric chrome tid by tid_path order *)
  let tps =
    List.sort_uniq compare (List.map (fun e -> e.ev_tp) events)
  in
  List.iteri
    (fun i tp ->
      obj
        [ ("name", str "thread_name"); ("ph", str "M"); ("pid", "0");
          ("tid", string_of_int i);
          ("args",
           Fmt.str "{\"name\":%s}" (str (Fmt.str "%a" Key.pp_tid_path tp)))
        ])
    tps;
  (* index once: every event pays a lookup, and big traces have many
     events per thread *)
  let tid_index = Hashtbl.create 16 in
  List.iteri (fun i tp -> Hashtbl.replace tid_index tp i) tps;
  let tid_of tp =
    match Hashtbl.find_opt tid_index tp with Some i -> i | None -> 0
  in
  let cat = function
    | Weak_acquire _ | Weak_block _ | Weak_wake _ | Weak_release _
    | Weak_forced _ ->
        "weak"
    | Region_enter _ | Region_exit _ -> "region"
    | Sync _ -> "sync"
    | Syscall | Replay_miss -> "syscall"
  in
  List.iter
    (fun e ->
      let tid = string_of_int (tid_of e.ev_tp) in
      let ts = string_of_int e.ev_step in
      let base name ph =
        [ ("name", str name); ("cat", str (cat e.ev_kind)); ("ph", str ph);
          ("pid", "0"); ("tid", tid); ("ts", ts) ]
      in
      match e.ev_kind with
      | Region_enter n ->
          obj (base (Fmt.str "region (%d locks)" n) "B")
      | Region_exit _ -> obj (base "region" "E")
      | k -> obj (base (Fmt.str "%a" pp_kind k) "i" @ [ ("s", str "t") ]))
    events;
  Buffer.add_string b "]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Replay-divergence diagnosis *)

type divergence = {
  dv_tp : Key.tid_path;
  dv_index : int;
  dv_recorded : event option;
  dv_replayed : event option;
}

let stable_streams events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if stable e.ev_kind then
        let prev =
          match Hashtbl.find_opt tbl e.ev_tp with Some l -> l | None -> []
        in
        Hashtbl.replace tbl e.ev_tp (e :: prev))
    events;
  Hashtbl.fold (fun tp l acc -> (tp, List.rev l) :: acc) tbl []
  |> List.sort compare

let first_divergence ~recorded ~replayed =
  let rec_streams = stable_streams recorded in
  let rep_streams = stable_streams replayed in
  (* key the streams by trace point once; the per-thread probe below
     would otherwise rescan the assoc list for every thread *)
  let keyed ss =
    let tbl = Hashtbl.create (2 * List.length ss) in
    List.iter (fun (tp, l) -> Hashtbl.replace tbl tp l) ss;
    tbl
  in
  let rec_tbl = keyed rec_streams and rep_tbl = keyed rep_streams in
  let stream tbl tp =
    match Hashtbl.find_opt tbl tp with Some l -> l | None -> []
  in
  let tps =
    List.sort_uniq compare (List.map fst rec_streams @ List.map fst rep_streams)
  in
  (* earliest per-thread mismatch, then the globally earliest of those
     (by logical step, ties by thread id) *)
  let diverge tp =
    let rec go i a b =
      match (a, b) with
      | [], [] -> None
      | x :: a', y :: b' ->
          if x.ev_step = y.ev_step && x.ev_kind = y.ev_kind then
            go (i + 1) a' b'
          else
            Some
              { dv_tp = tp; dv_index = i; dv_recorded = Some x;
                dv_replayed = Some y }
      | x :: _, [] ->
          Some
            { dv_tp = tp; dv_index = i; dv_recorded = Some x;
              dv_replayed = None }
      | [], y :: _ ->
          Some
            { dv_tp = tp; dv_index = i; dv_recorded = None;
              dv_replayed = Some y }
    in
    go 0 (stream rec_tbl tp) (stream rep_tbl tp)
  in
  let step_of d =
    match (d.dv_recorded, d.dv_replayed) with
    | Some a, Some b -> min a.ev_step b.ev_step
    | Some a, None -> a.ev_step
    | None, Some b -> b.ev_step
    | None, None -> max_int
  in
  List.filter_map diverge tps
  |> List.sort (fun a b ->
         match compare (step_of a) (step_of b) with
         | 0 -> compare a.dv_tp b.dv_tp
         | c -> c)
  |> function
  | [] -> None
  | d :: _ -> Some d

let pp_divergence ppf d =
  let side ppf = function
    | Some e -> Fmt.pf ppf "%a at step %d" pp_kind e.ev_kind e.ev_step
    | None -> Fmt.string ppf "stream ended"
  in
  Fmt.pf ppf
    "thread %a diverges at stable event #%d: recorded %a, replayed %a"
    Key.pp_tid_path d.dv_tp d.dv_index side d.dv_recorded side d.dv_replayed
