(** Runtime observability: deterministic event tracing and contention
    metrics (DESIGN.md §10).

    The engine emits events into a {!Sink} — per-thread bounded ring
    buffers keyed by schedule-independent {!Runtime.Key.tid_path}s.
    Timestamps are {e logical clocks}: the emitting thread's per-thread
    step count, never wall-clock ticks. Step counts advance only when a
    thread executes a statement (blocking does not step), so the stable
    subset of a thread's stream is identical between a recording and its
    replay — which is what makes traces diffable for divergence
    diagnosis, and what a wall clock would destroy.

    Emission charges no simulated ticks: with no sink installed the
    engine behaves identically, and with one installed every simulated
    timing and output is unchanged. *)

open Runtime

(** What happened. [Weak_block]'s payload is the waiter-queue depth at
    the moment of blocking (the blocked thread included). *)
type kind =
  | Weak_acquire of Minic.Ast.weak_lock
  | Weak_block of Minic.Ast.weak_lock * int
  | Weak_wake of Minic.Ast.weak_lock
  | Weak_release of Minic.Ast.weak_lock
  | Weak_forced of Minic.Ast.weak_lock  (** timeout-preemption stripped it *)
  | Region_enter of int  (** locks acquired for the region *)
  | Region_exit of int  (** locks released *)
  | Sync of Replay.Log.sync_op * Key.addr
  | Syscall
  | Replay_miss  (** a replayed syscall ran past the recorded input log *)

type event = {
  ev_tp : Key.tid_path;
  ev_step : int;  (** the thread's step count at emission (logical clock) *)
  ev_kind : kind;
}

val pp_kind : kind Fmt.t
val pp_event : event Fmt.t

(** [stable k] is true for events whose per-thread position and step are
    invariant between a recording and its replay: acquisitions, releases,
    forced releases, region boundaries, sync ops, syscalls. Block/wake
    and replay-miss events depend on the schedule and are excluded from
    stream comparison (they remain useful as contention diagnostics). *)
val stable : kind -> bool

(** Per-thread bounded ring buffers. Within a thread, events are kept in
    emission order; when a buffer fills, the oldest events are dropped
    (and counted). Not thread-safe — the simulator is single-domain. *)
module Sink : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] bounds each per-thread buffer (default 65536 events). *)

  val emit : t -> Key.tid_path -> step:int -> kind -> unit

  val events : t -> event list
  (** All retained events, threads in [tid_path] order, each thread's
      events in emission order — a deterministic order independent of
      hashing or scheduling. *)

  val thread_events : t -> Key.tid_path -> event list

  val threads : t -> Key.tid_path list
  (** Sorted. *)

  val dropped : t -> int
  (** Total events lost to ring overflow. *)

  val dropped_by_thread : t -> (Key.tid_path * int) list
  (** Per-thread overflow losses, threads that lost events only, sorted
      by [tid_path] — the breakdown {!summarize} surfaces so truncated
      per-thread streams are visible in reports. *)
end

(* ------------------------------------------------------------------ *)
(** {1 Aggregation} *)

type lock_metrics = {
  lm_lock : Minic.Ast.weak_lock;
  lm_acq : int;  (** acquisitions *)
  lm_blocks : int;  (** block events *)
  lm_queue_sum : int;  (** sum of queue depths over block events *)
  lm_forced : int;  (** timeout-preemptions *)
  lm_wakes : int;
}

val mean_queue_depth : lock_metrics -> float
(** Mean waiter-queue depth observed at block time (0 if never blocked). *)

type gran_metrics = { gm_acq : int; gm_blocks : int; gm_forced : int }

type summary = {
  su_locks : lock_metrics list;
      (** most-contended first: blocks, then acquisitions, then lock *)
  su_gran : gran_metrics array;  (** indexed by {!Minic.Ast.granularity_rank} *)
  su_sync : int;
  su_syscalls : int;
  su_replay_miss : int;
  su_regions : int;  (** region entries *)
  su_events : int;  (** events aggregated *)
  su_dropped : int;  (** ring-overflow losses (from the sink) *)
  su_dropped_by_thread : (Key.tid_path * int) list;
      (** which threads lost events (from {!Sink.dropped_by_thread});
          a non-empty list marks every aggregate above as a lower bound *)
}

val summarize :
  ?dropped:int ->
  ?dropped_by_thread:(Key.tid_path * int) list ->
  event list ->
  summary

val pp_report : ?top:int -> summary Fmt.t
(** Compact text report: totals, per-granularity mix, top-N locks by
    contention (default top 10). *)

(* ------------------------------------------------------------------ *)
(** {1 Chrome-trace export} *)

val to_chrome : event list -> string
(** A [chrome://tracing] / Perfetto JSON array. Each simulated thread is
    a trace row ([tid] = its rank, named by a [thread_name] metadata
    event); [ts] is the logical step count in microseconds. Regions
    become duration ("B"/"E") events, everything else instants. *)

(* ------------------------------------------------------------------ *)
(** {1 Replay-divergence diagnosis} *)

type divergence = {
  dv_tp : Key.tid_path;  (** thread whose streams first part ways *)
  dv_index : int;  (** index into that thread's stable stream *)
  dv_recorded : event option;  (** [None] = recorded stream ended early *)
  dv_replayed : event option;  (** [None] = replayed stream ended early *)
}

val first_divergence :
  recorded:event list -> replayed:event list -> divergence option
(** Compare the stable per-thread streams of a recording and a replay
    and locate the earliest diverging event (smallest logical step, ties
    broken by thread id). [None] means the stable streams agree — either
    the runs match, or the divergence is data-only (different values
    computed, identical control flow and synchronization). *)

val pp_divergence : divergence Fmt.t
