(** Persistent on-disk analysis cache (DESIGN.md §11).

    One entry per file, content-addressed: the file name is the cache
    key, a hex digest of everything the analysis result depends on
    (marshalled input program, analysis options, profiling
    configuration, a caller-supplied tag covering non-digestible inputs
    such as the profiling io-model, and the tool version). The payload
    is an opaque byte string — the pipeline stores one [Marshal] blob of
    the whole analysis record.

    Entry format (all header fields in text, then raw payload bytes):

    {v
    CHIMERA-ANCACHE/1\n
    <key>\n
    <payload-length-decimal>\n
    <payload-md5-hex>\n
    <payload bytes>
    v}

    Robustness contract: a lookup {e never} raises on a damaged store.
    Truncated, checksum-corrupt, version-mismatched or unreadable
    entries report a typed {!miss} so the caller can fall back to
    recomputation (and overwrite the bad entry); writes go through a
    temp file + atomic rename so a crashed writer can only ever leave a
    stray temp file, not a half-written entry. *)

let magic = "CHIMERA-ANCACHE/1"

(** Bump when the serialized analysis payload changes meaning (new
    analysis semantics, changed types). Part of every cache key, so a
    new tool version simply misses old entries. *)
let tool_version = "chimera-7"

type t = { dir : string }

type miss =
  | Absent  (** no entry under this key *)
  | Truncated  (** file shorter than its header claims *)
  | Checksum_mismatch  (** payload bytes fail their MD5 *)
  | Version_mismatch  (** entry written by a different format version *)
  | Unreadable of string  (** I/O or header-parse failure *)

let pp_miss ppf = function
  | Absent -> Fmt.string ppf "absent"
  | Truncated -> Fmt.string ppf "truncated entry"
  | Checksum_mismatch -> Fmt.string ppf "checksum mismatch"
  | Version_mismatch -> Fmt.string ppf "format-version mismatch"
  | Unreadable e -> Fmt.pf ppf "unreadable (%s)" e

let default_dir () =
  match Sys.getenv_opt "CHIMERA_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      let base =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" -> Filename.concat h ".cache"
            | _ -> Filename.concat (Filename.get_temp_dir_name ()) "cache")
      in
      Filename.concat base "chimera")

let create ?dir () =
  { dir = (match dir with Some d -> d | None -> default_dir ()) }

let dir t = t.dir

(** Build a cache key from the strings the result depends on. *)
let key_of_parts (parts : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let path_of t key = Filename.concat t.dir (key ^ ".anc")

(* tolerate only fs-safe keys (we only ever generate hex digests, but a
   caller-supplied key must not escape the cache dir) *)
let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || c = '-' || c = '_')
       key

let find (t : t) ~(key : string) : (string, miss) result =
  if not (valid_key key) then Error (Unreadable "invalid key")
  else
    let path = path_of t key in
    if not (Sys.file_exists path) then Error Absent
    else
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let line () = try Some (input_line ic) with End_of_file -> None in
            match line () with
            | None -> Error Truncated
            | Some m when m <> magic -> Error Version_mismatch
            | Some _ -> (
                match (line (), line (), line ()) with
                | Some k, Some len_s, Some sum -> (
                    if k <> key then Error (Unreadable "key mismatch")
                    else
                      match int_of_string_opt len_s with
                      | None -> Error (Unreadable "bad length field")
                      | Some len when len < 0 ->
                          Error (Unreadable "bad length field")
                      | Some len when len > in_channel_length ic - pos_in ic ->
                          Error Truncated
                      | Some len -> (
                          match really_input_string ic len with
                          | payload ->
                              if Digest.to_hex (Digest.string payload) <> sum
                              then Error Checksum_mismatch
                              else Ok payload
                          | exception End_of_file -> Error Truncated))
                | _ -> Error Truncated))
      with Sys_error e -> Error (Unreadable e)

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(** Store [payload] under [key], atomically (temp file + rename). A
    cache-write failure must never fail the analysis: returns [false]
    instead of raising. *)
let put (t : t) ~(key : string) (payload : string) : bool =
  valid_key key
  &&
  try
    mkdir_p t.dir;
    let tmp =
      Filename.temp_file ~temp_dir:t.dir ("." ^ key) ".tmp"
    in
    let ok =
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Printf.fprintf oc "%s\n%s\n%d\n%s\n" magic key
              (String.length payload)
              (Digest.to_hex (Digest.string payload));
            output_string oc payload);
        Sys.rename tmp (path_of t key);
        true
      with Sys_error _ ->
        (try Sys.remove tmp with Sys_error _ -> ());
        false
    in
    ok
  with Sys_error _ -> false

let entries (t : t) : string list =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".anc")
      |> List.sort compare

(* a writer that crashed between [Filename.temp_file] and the rename in
   {!put} leaves a dot-prefixed [.<key><rand>.tmp] behind; they are
   invisible to {!entries} but accumulate forever unless swept *)
let stray_tmp_files (t : t) : string list =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f ->
             String.length f > 0
             && f.[0] = '.'
             && Filename.check_suffix f ".tmp")
      |> List.sort compare

type stats = { st_entries : int; st_bytes : int; st_tmp : int }

let stats (t : t) : stats =
  let base =
    List.fold_left
      (fun acc f ->
        let sz =
          try (Unix.stat (Filename.concat t.dir f)).Unix.st_size
          with Unix.Unix_error _ | Sys_error _ -> 0
        in
        { acc with st_entries = acc.st_entries + 1; st_bytes = acc.st_bytes + sz })
      { st_entries = 0; st_bytes = 0; st_tmp = 0 }
      (entries t)
  in
  { base with st_tmp = List.length (stray_tmp_files t) }

(** Delete every cache entry and stray writer temp file; returns how
    many entries were removed (temp files don't count — they were never
    entries). Leaves other files (and the directory) alone. *)
let clear (t : t) : int =
  List.iter
    (fun f -> try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
    (stray_tmp_files t);
  List.fold_left
    (fun n f ->
      match Sys.remove (Filename.concat t.dir f) with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (entries t)
