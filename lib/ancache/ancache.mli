(** Persistent on-disk analysis cache: one content-addressed entry per
    file, with a per-entry checksum and typed miss reasons so damaged
    stores degrade to recomputation, never to a crash (DESIGN.md §11). *)

type t

(** Entry-format magic, first line of every entry. *)
val magic : string

(** Analysis-semantics version; callers fold it into every key so a new
    tool version misses (rather than misreads) old entries. *)
val tool_version : string

type miss =
  | Absent
  | Truncated
  | Checksum_mismatch
  | Version_mismatch
  | Unreadable of string

val pp_miss : miss Fmt.t

(** [$CHIMERA_CACHE_DIR], else [$XDG_CACHE_HOME/chimera], else
    [$HOME/.cache/chimera]. *)
val default_dir : unit -> string

(** [create ?dir ()] — nothing touches the filesystem until the first
    {!find}/{!put}. [dir] defaults to {!default_dir}. *)
val create : ?dir:string -> unit -> t

val dir : t -> string

(** Hex digest of the given strings — the canonical way to build a key. *)
val key_of_parts : string list -> string

(** Never raises on a damaged store: every failure mode is a {!miss}. *)
val find : t -> key:string -> (string, miss) result

(** Atomic (temp + rename) best-effort store; [false] on I/O failure —
    a cache write must never fail the analysis. *)
val put : t -> key:string -> string -> bool

(** Stray writer temp files ([.<key>…tmp], left by a {!put} that crashed
    before its atomic rename), sorted. Invisible to {!entries}. *)
val stray_tmp_files : t -> string list

type stats = { st_entries : int; st_bytes : int; st_tmp : int }

val stats : t -> stats

(** Delete all entries and sweep stray writer temp files; returns the
    number of entries removed. *)
val clear : t -> int
