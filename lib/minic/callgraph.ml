(** Call graph for MiniC programs.

    Direct calls resolve trivially. Calls and [spawn]s through function
    pointers resolve via a caller-supplied [resolve] oracle (in the full
    pipeline this is Andersen's points-to analysis; the sound default
    returns every address-taken function). The graph also records thread
    entry points ([spawn] targets) and whether each spawn site can execute
    more than once (inside a loop or in a function called more than once),
    which the race detector needs to decide if a single thread root can
    race with itself. *)

open Ast

type spawn_site = {
  sp_sid : int;
  sp_caller : string;
  sp_targets : string list;
  sp_in_loop : bool;
}

type t = {
  cg_calls : (string, string list) Hashtbl.t;  (** caller -> callees *)
  cg_callers : (string, string list) Hashtbl.t;
  cg_spawns : spawn_site list;
  cg_roots : string list;  (** thread entry points: main + spawn targets *)
}

let add_multi tbl k v =
  let cur = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
  if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)

(** Functions whose address is taken anywhere in the program (the sound
    default resolution set for indirect calls). *)
let address_taken_funs (p : program) : string list =
  let fnames = List.map (fun f -> f.f_name) p.p_funs in
  let taken = Hashtbl.create 8 in
  let rec scan_exp = function
    | Const _ -> ()
    | Lval lv -> scan_lval lv
    | AddrOf (Var v) when List.mem v fnames -> Hashtbl.replace taken v ()
    | AddrOf lv -> scan_lval lv
    | Unop (_, e) -> scan_exp e
    | Binop (_, a, b) -> scan_exp a; scan_exp b
  and scan_lval = function
    | Var v -> if List.mem v fnames then Hashtbl.replace taken v ()
    | Deref e -> scan_exp e
    | Index (lv, e) -> scan_lval lv; scan_exp e
    | Field (lv, _) -> scan_lval lv
    | Arrow (e, _) -> scan_exp e
  in
  iter_program_stmts
    (fun s ->
      match s.skind with
      | Assign (_, e) -> scan_exp e
      | Call (_, tgt, args) ->
          (match tgt with ViaPtr e -> scan_exp e | Direct _ -> ());
          List.iter scan_exp args
      | Builtin (_, _, args) -> List.iter scan_exp args
      | If (e, _, _) | While (e, _, _) -> scan_exp e
      | Return (Some e) -> scan_exp e
      | _ -> ())
    p;
  List.of_seq (Hashtbl.to_seq_keys taken)

(** Extract the function names an expression used as a spawn/call target can
    denote, syntactically (direct name or address-of). *)
let syntactic_targets (p : program) (e : exp) : string list option =
  match e with
  | Lval (Var v) | AddrOf (Var v) ->
      if find_fun p v <> None then Some [ v ] else None
  | _ -> None

(** Build the call graph. [resolve] maps a function-pointer expression
    (evaluated in [caller]) to candidate function names. *)
let build ?(resolve : (string -> exp -> string list) option) (p : program) : t
    =
  let default_targets = address_taken_funs p in
  let resolve caller e =
    match resolve with
    | Some r -> r caller e
    | None -> (
        match syntactic_targets p e with
        | Some ts -> ts
        | None -> default_targets)
  in
  let calls = Hashtbl.create 64 in
  let callers = Hashtbl.create 64 in
  let spawns = ref [] in
  List.iter
    (fun (f : fundec) ->
      (* ensure every function has an entry *)
      if not (Hashtbl.mem calls f.f_name) then Hashtbl.replace calls f.f_name [];
      (* track loop nesting while walking *)
      let rec walk in_loop (b : block) =
        List.iter
          (fun s ->
            match s.skind with
            | Call (_, Direct g, _) ->
                add_multi calls f.f_name g;
                add_multi callers g f.f_name
            | Call (_, ViaPtr e, _) ->
                List.iter
                  (fun g ->
                    add_multi calls f.f_name g;
                    add_multi callers g f.f_name)
                  (resolve f.f_name e)
            | Builtin (_, Spawn, target :: _) ->
                let tgts =
                  match syntactic_targets p target with
                  | Some ts -> ts
                  | None -> resolve f.f_name target
                in
                spawns :=
                  {
                    sp_sid = s.sid;
                    sp_caller = f.f_name;
                    sp_targets = tgts;
                    sp_in_loop = in_loop;
                  }
                  :: !spawns
            | If (_, b1, b2) -> walk in_loop b1; walk in_loop b2
            | While (_, body, _) -> walk true body
            | _ -> ())
          b
      in
      walk false f.f_body)
    p.p_funs;
  let roots =
    "main"
    :: List.concat_map (fun sp -> sp.sp_targets) !spawns
    |> List.sort_uniq compare
  in
  { cg_calls = calls; cg_callers = callers; cg_spawns = !spawns; cg_roots = roots }

let callees (cg : t) f = Option.value (Hashtbl.find_opt cg.cg_calls f) ~default:[]

(** Transitive closure of callees from [f], including [f]. *)
let reachable_from (cg : t) (f : string) : string list =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      List.iter go (callees cg f)
    end
  in
  go f;
  List.sort compare (List.of_seq (Hashtbl.to_seq_keys seen))

(** Bottom-up order: callees before callers. Cycles (recursion) are broken
    arbitrarily; the summary computation iterates to a fixpoint anyway. *)
let bottom_up_order (cg : t) (p : program) : string list =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit f =
    if not (Hashtbl.mem visited f) then begin
      Hashtbl.replace visited f ();
      List.iter
        (fun g -> if find_fun p g <> None then visit g)
        (callees cg f);
      order := f :: !order
    end
  in
  List.iter (fun (f : fundec) -> visit f.f_name) p.p_funs;
  List.rev !order

(** Strongly connected components of the call graph restricted to the
    functions defined in [p], in bottom-up order: every SCC is listed
    after all SCCs it calls into. Tarjan's algorithm, seeded from the
    functions in program order, which makes both the SCC list and the
    member order within each SCC deterministic for a given program. *)
let sccs (cg : t) (p : Ast.program) : string list list =
  let defined = Hashtbl.create 64 in
  List.iter (fun (f : Ast.fundec) -> Hashtbl.replace defined f.f_name ()) p.p_funs;
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  let rec strongconnect f =
    Hashtbl.replace index f !next;
    Hashtbl.replace lowlink f !next;
    incr next;
    stack := f :: !stack;
    Hashtbl.replace on_stack f ();
    List.iter
      (fun g ->
        if Hashtbl.mem defined g then
          if not (Hashtbl.mem index g) then begin
            strongconnect g;
            Hashtbl.replace lowlink f
              (min (Hashtbl.find lowlink f) (Hashtbl.find lowlink g))
          end
          else if Hashtbl.mem on_stack g then
            Hashtbl.replace lowlink f
              (min (Hashtbl.find lowlink f) (Hashtbl.find index g)))
      (callees cg f);
    if Hashtbl.find lowlink f = Hashtbl.find index f then begin
      (* pop the component; reverse the pop order so members appear in
         visit order (deterministic) *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | g :: rest ->
            stack := rest;
            Hashtbl.remove on_stack g;
            if g = f then g :: acc else pop (g :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter
    (fun (fd : Ast.fundec) ->
      if not (Hashtbl.mem index fd.f_name) then strongconnect fd.f_name)
    p.p_funs;
  (* Tarjan emits callee-side components first: [!out] is top-down, so
     reverse for bottom-up *)
  List.rev !out

(** SCCs grouped into dependency levels. With [down = false] (the
    default) levels are bottom-up: a component's callees outside itself
    all sit in strictly earlier levels, so every component within one
    level can be analyzed concurrently once the previous levels are
    done. With [down = true] levels are top-down: a component's
    {e callers} all sit in earlier levels (the schedule for
    caller-context dataflow). Level contents and member order are
    deterministic. *)
let scc_levels ?(down = false) (cg : t) (p : Ast.program) :
    string list list list =
  let comps = sccs cg p in
  let comps = if down then List.rev comps else comps in
  let comp_of = Hashtbl.create 64 in
  List.iteri
    (fun i comp -> List.iter (fun f -> Hashtbl.replace comp_of f i) comp)
    comps;
  let n = List.length comps in
  let depth = Array.make n 0 in
  let arr = Array.of_list comps in
  (* edges to satisfy: for bottom-up, callees must be deeper-first; for
     top-down, callers must be. Walk comps in their (already
     topological) order and take max over in-edges from earlier comps. *)
  Array.iteri
    (fun i comp ->
      let preds =
        List.concat_map
          (fun f ->
            let ns =
              if down then
                Option.value (Hashtbl.find_opt cg.cg_callers f) ~default:[]
              else callees cg f
            in
            List.filter_map (Hashtbl.find_opt comp_of) ns)
          comp
      in
      List.iter
        (fun j -> if j <> i then depth.(i) <- max depth.(i) (depth.(j) + 1))
        preds)
    arr;
  let max_d = Array.fold_left max 0 depth in
  List.init (max_d + 1) (fun d ->
      List.filteri (fun i _ -> depth.(i) = d) (Array.to_list arr))

(** Can two dynamic instances of root [r] exist concurrently? True if some
    spawn site targeting [r] sits in a loop, appears more than once, or is
    in a function reachable from multiple spawn sites. Conservative. *)
let root_multiply_spawned (cg : t) (r : string) : bool =
  let sites = List.filter (fun sp -> List.mem r sp.sp_targets) cg.cg_spawns in
  match sites with
  | [] -> false
  | [ sp ] ->
      sp.sp_in_loop
      || (* the spawning function itself runs in several threads *)
      List.exists
        (fun root ->
          root <> "main" && List.mem sp.sp_caller (reachable_from cg root))
        cg.cg_roots
  | _ -> true
