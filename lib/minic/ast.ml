(** Abstract syntax for MiniC, the C-like language Chimera analyzes and
    instruments.

    MiniC plays the role CIL plays in the paper: a structured intermediate
    representation of C with functions, loops, lvalues, and enough of the
    pthread/syscall surface (spawn/join, mutexes, barriers, condition
    variables, nondeterministic input) to express the paper's benchmarks.
    Statements carry unique ids ([sid]) which serve as the "static memory
    instruction" identity used by the race detector and the instrumenter. *)

(** Source location, used in diagnostics and race reports. *)
type loc = { file : string; line : int }

let dummy_loc = { file = "<builtin>"; line = 0 }

let pp_loc ppf { file; line } = Fmt.pf ppf "%s:%d" file line

(** Types. Arrays have a static element count; structs are named and
    resolved against the program's struct table. *)
type ty =
  | Tvoid
  | Tint
  | Tptr of ty
  | Tarray of ty * int
  | Tstruct of string
  | Tfun of ty * ty list

let rec pp_ty ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint -> Fmt.string ppf "int"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tfun (r, args) ->
      Fmt.pf ppf "%a(%a)" pp_ty r Fmt.(list ~sep:comma pp_ty) args

let rec equal_ty a b =
  match (a, b) with
  | Tvoid, Tvoid | Tint, Tint -> true
  | Tptr a, Tptr b -> equal_ty a b
  | Tarray (a, n), Tarray (b, m) -> n = m && equal_ty a b
  | Tstruct a, Tstruct b -> String.equal a b
  | Tfun (r1, a1), Tfun (r2, a2) ->
      equal_ty r1 r2
      && List.length a1 = List.length a2
      && List.for_all2 equal_ty a1 a2
  | _ -> false

type unop = Neg | LNot | BNot

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

(** Expressions are side-effect free; calls are statements. *)
type exp =
  | Const of int
  | Lval of lval
  | AddrOf of lval
  | Unop of unop * exp
  | Binop of binop * exp * exp

(** Lvalues. [Index] applies to an array or pointer base; [Arrow] is
    [p->f]; [Field] is [s.f]. *)
and lval =
  | Var of string
  | Deref of exp
  | Index of lval * exp
  | Field of lval * string
  | Arrow of exp * string

(** Builtin operations with runtime/synchronization semantics. These are the
    "library calls" that RELAY's lockset analysis and the recorder treat
    specially. *)
type builtin =
  | Spawn            (** [t = spawn(f, arg)]: create a thread *)
  | Join             (** [join(t)] *)
  | MutexLock        (** [lock(&m)] *)
  | MutexUnlock      (** [unlock(&m)] *)
  | BarrierInit      (** [barrier_init(&b, n)] *)
  | BarrierWait      (** [barrier_wait(&b)] *)
  | CondWait         (** [cond_wait(&c, &m)] *)
  | CondSignal       (** [cond_signal(&c)] *)
  | CondBroadcast    (** [cond_broadcast(&c)] *)
  | Input            (** [x = input()]: nondeterministic int (recorded) *)
  | Output           (** [output(x)]: append to program output *)
  | NetRead          (** [n = net_read(buf, max)]: blocking, high-latency
                         nondeterministic read (recorded) *)
  | FileRead         (** [n = file_read(buf, max)]: low-latency
                         nondeterministic read (recorded) *)
  | Malloc           (** [p = malloc(n)]: n cells *)
  | Free             (** [free(p)] *)
  | Yield            (** scheduling hint *)
  | Exit             (** terminate the whole program *)

let builtin_name = function
  | Spawn -> "spawn" | Join -> "join"
  | MutexLock -> "lock" | MutexUnlock -> "unlock"
  | BarrierInit -> "barrier_init" | BarrierWait -> "barrier_wait"
  | CondWait -> "cond_wait" | CondSignal -> "cond_signal"
  | CondBroadcast -> "cond_broadcast"
  | Input -> "input" | Output -> "output"
  | NetRead -> "net_read" | FileRead -> "file_read"
  | Malloc -> "malloc" | Free -> "free"
  | Yield -> "yield" | Exit -> "exit"

let builtin_of_name = function
  | "spawn" -> Some Spawn | "join" -> Some Join
  | "lock" -> Some MutexLock | "unlock" -> Some MutexUnlock
  | "barrier_init" -> Some BarrierInit | "barrier_wait" -> Some BarrierWait
  | "cond_wait" -> Some CondWait | "cond_signal" -> Some CondSignal
  | "cond_broadcast" -> Some CondBroadcast
  | "input" -> Some Input | "output" -> Some Output
  | "net_read" -> Some NetRead | "file_read" -> Some FileRead
  | "malloc" -> Some Malloc | "free" -> Some Free
  | "yield" -> Some Yield | "exit" -> Some Exit
  | _ -> None

(** Weak-lock region granularities, ordered coarse to fine. The runtime
    acquires function-locks before loop-locks before basic-block locks
    before instruction-locks (Section 2.3 of the paper). *)
type granularity = Gfunc | Gloop | Gbb | Ginstr

let pp_granularity ppf g =
  Fmt.string ppf
    (match g with
    | Gfunc -> "func" | Gloop -> "loop" | Gbb -> "bb" | Ginstr -> "instr")

let granularity_rank = function Gfunc -> 0 | Gloop -> 1 | Gbb -> 2 | Ginstr -> 3

(** A weak-lock identity. [wl_gran] determines acquisition order class. *)
type weak_lock = { wl_id : int; wl_gran : granularity }

let compare_weak_lock a b =
  match compare (granularity_rank a.wl_gran) (granularity_rank b.wl_gran) with
  | 0 -> compare a.wl_id b.wl_id
  | c -> c

let pp_weak_lock ppf w = Fmt.pf ppf "%a%d" pp_granularity w.wl_gran w.wl_id

(** One symbolic address range of a weak-lock acquisition: inclusive
    bounds plus whether the guarded code {e writes} in the range. Two
    ranges conflict only if they overlap and at least one side writes —
    concurrent readers of the same data (water's [interf] reading all
    positions) must not serialize each other. *)
type warange = { wr_lo : exp; wr_hi : exp; wr_write : bool }

(** One weak-lock acquisition request: the lock plus the symbolic address
    ranges it protects (loop-locks). Range expressions are evaluated at
    region entry. The empty list means the lock protects everything it
    guards — equivalent to the range [-inf, +inf] in Figure 4 of the
    paper, conflicting with every other acquisition of the lock. *)
type weak_acq = { wa_lock : weak_lock; wa_ranges : warange list }

type stmt = { sid : int; skind : stmt_kind; sloc : loc }

and stmt_kind =
  | Assign of lval * exp
  | Call of lval option * call_target * exp list
  | Builtin of lval option * builtin * exp list
  | If of exp * block * block
  | While of exp * block * loop_info
  | Return of exp option
  | Break
  | Continue
  (* Inserted by the instrumenter: *)
  | WeakEnter of weak_acq list  (** acquire, in canonical order *)
  | WeakExit of weak_lock list  (** release *)

and call_target = Direct of string | ViaPtr of exp

(** Loop metadata kept from the surface syntax to aid the symbolic bounds
    analysis: if the loop came from a [for], we remember the induction
    pattern. [lid] is unique per program. *)
and loop_info = {
  lid : int;
  l_induction : induction option;
  l_step : stmt option;
      (** for-loops: the increment statement (also the last statement of
          the body); [continue] must execute it before re-testing *)
}

and induction = {
  iv_var : string;   (** induction variable *)
  iv_init : exp;     (** initial value *)
  iv_limit : exp;    (** loop condition is iv < limit (or <=, per strictness) *)
  iv_strict : bool;  (** true for <, false for <= *)
  iv_step : exp;     (** increment per iteration (added) *)
}

and block = stmt list

type var_decl = { v_name : string; v_ty : ty; v_loc : loc }

type fundec = {
  f_name : string;
  f_ret : ty;
  f_params : var_decl list;
  f_locals : var_decl list;
  f_body : block;
  f_loc : loc;
}

type struct_decl = { s_name : string; s_fields : (string * ty) list }

type global = {
  g_name : string;
  g_ty : ty;
  g_init : int list option;  (** flat cell initializer *)
  g_loc : loc;
}

type program = {
  p_structs : struct_decl list;
  p_globals : global list;
  p_funs : fundec list;
}

(* ------------------------------------------------------------------ *)
(* Helpers *)

let find_fun p name = List.find_opt (fun f -> String.equal f.f_name name) p.p_funs

let find_struct p name =
  List.find_opt (fun s -> String.equal s.s_name name) p.p_structs

let find_global p name =
  List.find_opt (fun g -> String.equal g.g_name name) p.p_globals

(** Size of a type in memory cells. Ints and pointers occupy one cell. *)
let rec sizeof structs = function
  | Tvoid -> 0
  | Tint | Tptr _ | Tfun _ -> 1
  | Tarray (t, n) -> n * sizeof structs t
  | Tstruct s -> (
      match List.find_opt (fun d -> String.equal d.s_name s) structs with
      | None -> Fmt.invalid_arg "sizeof: unknown struct %s" s
      | Some d ->
          List.fold_left (fun acc (_, t) -> acc + sizeof structs t) 0 d.s_fields)

(** Cell offset of a field within its struct. *)
let field_offset structs sname fname =
  match List.find_opt (fun d -> String.equal d.s_name sname) structs with
  | None -> Fmt.invalid_arg "field_offset: unknown struct %s" sname
  | Some d ->
      let rec go off = function
        | [] -> Fmt.invalid_arg "field_offset: no field %s in %s" fname sname
        | (f, t) :: rest ->
            if String.equal f fname then (off, t)
            else go (off + sizeof structs t) rest
      in
      go 0 d.s_fields

(** Iterate over every statement in a block, recursing into nested blocks. *)
let rec iter_stmts f (b : block) =
  List.iter
    (fun s ->
      f s;
      match s.skind with
      | If (_, b1, b2) ->
          iter_stmts f b1;
          iter_stmts f b2
      | While (_, body, _) -> iter_stmts f body
      | _ -> ())
    b

let iter_program_stmts f (p : program) =
  List.iter (fun fd -> iter_stmts f fd.f_body) p.p_funs

(** Map over every statement bottom-up (children first). *)
let rec map_stmts f (b : block) : block =
  List.map
    (fun s ->
      let skind =
        match s.skind with
        | If (e, b1, b2) -> If (e, map_stmts f b1, map_stmts f b2)
        | While (e, body, li) -> While (e, map_stmts f body, li)
        | k -> k
      in
      f { s with skind })
    b

(** Rewrite each statement into a list of statements, bottom-up. Used by the
    instrumenter to wrap statements in weak-lock regions. *)
let rec concat_map_stmts (f : stmt -> stmt list) (b : block) : block =
  List.concat_map
    (fun s ->
      let skind =
        match s.skind with
        | If (e, b1, b2) -> If (e, concat_map_stmts f b1, concat_map_stmts f b2)
        | While (e, body, li) -> While (e, concat_map_stmts f body, li)
        | k -> k
      in
      f { s with skind })
    b

(** All variables read by an expression. *)
let rec exp_vars = function
  | Const _ -> []
  | Lval lv | AddrOf lv -> lval_vars lv
  | Unop (_, e) -> exp_vars e
  | Binop (_, a, b) -> exp_vars a @ exp_vars b

and lval_vars = function
  | Var v -> [ v ]
  | Deref e -> exp_vars e
  | Index (lv, e) -> lval_vars lv @ exp_vars e
  | Field (lv, _) -> lval_vars lv
  | Arrow (e, _) -> exp_vars e

(** Statement-id and loop-id generators used by the parser and the
    instrumenter. A fresh program starts its counters after the highest id
    present, via {!Fresh.reset_from}.

    The counters are {e domain-local}: a parse or instrumentation pass runs
    entirely within one domain, and per-domain counters make the ids it
    assigns a function of the source alone — concurrent pipelines on other
    domains (see [Par.Pool]) cannot perturb them. With a single domain the
    behavior is identical to the former global counters. *)
module Fresh = struct
  let counters : (int ref * int ref) Domain.DLS.key =
    Domain.DLS.new_key (fun () -> (ref 0, ref 0))

  let sid () = fst (Domain.DLS.get counters)
  let lid () = snd (Domain.DLS.get counters)
  let next_sid () = let r = sid () in incr r; !r
  let next_lid () = let r = lid () in incr r; !r

  let reset () = sid () := 0; lid () := 0

  let reset_from (p : program) =
    let max_sid = ref 0 and max_lid = ref 0 in
    iter_program_stmts
      (fun s ->
        if s.sid > !max_sid then max_sid := s.sid;
        match s.skind with
        | While (_, _, li) -> if li.lid > !max_lid then max_lid := li.lid
        | _ -> ())
      p;
    sid () := !max_sid;
    lid () := !max_lid

  let stmt ?(loc = dummy_loc) skind = { sid = next_sid (); skind; sloc = loc }
end
