(** Call graph for MiniC programs, with thread-root bookkeeping.

    Indirect calls and [spawn] targets resolve through a caller-supplied
    oracle (the full pipeline passes Andersen's points-to); the sound
    default is every address-taken function. *)

type spawn_site = {
  sp_sid : int;
  sp_caller : string;
  sp_targets : string list;
  sp_in_loop : bool;
}

type t = {
  cg_calls : (string, string list) Hashtbl.t;
  cg_callers : (string, string list) Hashtbl.t;
  cg_spawns : spawn_site list;
  cg_roots : string list;  (** thread entry points: main + spawn targets *)
}

(** Functions whose address is taken anywhere (the default resolution
    set for indirect calls). *)
val address_taken_funs : Ast.program -> string list

(** Function names an expression used as a call/spawn target denotes
    syntactically, if it does. *)
val syntactic_targets : Ast.program -> Ast.exp -> string list option

val build :
  ?resolve:(string -> Ast.exp -> string list) -> Ast.program -> t

val callees : t -> string -> string list

(** Transitive callees, including the function itself. *)
val reachable_from : t -> string -> string list

(** Callees before callers; recursion broken arbitrarily. *)
val bottom_up_order : t -> Ast.program -> string list

(** Strongly connected components restricted to defined functions, in
    bottom-up order (every SCC after the SCCs it calls). Deterministic
    for a given program. *)
val sccs : t -> Ast.program -> string list list

(** SCCs grouped into dependency levels: components within one level
    are mutually independent and may be analyzed concurrently.
    [down = false] (default) orders levels bottom-up (callees first);
    [down = true] orders them top-down (callers first). *)
val scc_levels : ?down:bool -> t -> Ast.program -> string list list list

(** Can two dynamic instances of this thread root exist concurrently
    (spawned in a loop / at several sites / from a spawned thread)? *)
val root_multiply_spawned : t -> string -> bool
