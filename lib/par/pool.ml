(** Work-stealing domain pool. See pool.mli for the contract.

    Layout: one FIFO [Queue.t] per worker domain, all guarded by a single
    pool mutex — tasks here are coarse (a whole pipeline stage or
    benchmark run), so queue operations are never the bottleneck and one
    lock keeps the steal path free of lost-wakeup subtleties. Workers pop
    the front of their own queue first and steal the front of a sibling's
    queue otherwise. Submissions from a worker land on that worker's own
    queue (preserving FIFO order of its spawned sub-tasks); submissions
    from outside are spread round-robin. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable f_state : 'a state;
}

type task = unit -> unit

type t = {
  total : int;  (** total parallelism: workers + the submitting domain *)
  lk : Mutex.t;
  nonempty : Condition.t;
  queues : task Queue.t array;  (** one FIFO per worker; empty if inline *)
  mutable closed : bool;
  rr : int Atomic.t;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Which worker queue the current domain owns, if any. Guarded by a
   range check at use sites so a worker of pool A submitting into an
   unrelated pool B cannot index out of bounds. *)
let my_index : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let size t = t.total

(* Pop the front of queue [me], else steal the front of the first
   non-empty sibling queue. Caller holds [t.lk]. *)
let take_locked t ~me : task option =
  let n = Array.length t.queues in
  let rec scan i =
    if i = n then None
    else
      let q = t.queues.((me + i) mod n) in
      if Queue.is_empty q then scan (i + 1) else Some (Queue.pop q)
  in
  if n = 0 then None else scan 0

let resolve fut st =
  Mutex.lock fut.fm;
  fut.f_state <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let make_task f fut : task =
 fun () ->
  match f () with
  | v -> resolve fut (Done v)
  | exception e -> resolve fut (Failed (e, Printexc.get_raw_backtrace ()))

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); f_state = Pending } in
  let task = make_task f fut in
  let workers = Array.length t.queues in
  if workers = 0 then begin
    Mutex.lock t.lk;
    let closed = t.closed in
    Mutex.unlock t.lk;
    if closed then invalid_arg "Par.Pool.submit: pool is shut down";
    task ()
  end
  else begin
    let ix =
      match Domain.DLS.get my_index with
      | Some i when i < workers -> i
      | _ -> Atomic.fetch_and_add t.rr 1 mod workers
    in
    Mutex.lock t.lk;
    if t.closed then begin
      Mutex.unlock t.lk;
      invalid_arg "Par.Pool.submit: pool is shut down"
    end;
    Queue.push task t.queues.(ix);
    Condition.signal t.nonempty;
    Mutex.unlock t.lk
  end;
  fut

(* Run one queued task if there is one; used by awaiting domains to help. *)
let try_run_one t : bool =
  let workers = Array.length t.queues in
  if workers = 0 then false
  else begin
    let me =
      match Domain.DLS.get my_index with
      | Some i when i < workers -> i
      | _ -> 0
    in
    Mutex.lock t.lk;
    let task = take_locked t ~me in
    Mutex.unlock t.lk;
    match task with
    | Some task -> task (); true
    | None -> false
  end

let rec await t fut =
  Mutex.lock fut.fm;
  let st = fut.f_state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
      if not (try_run_one t) then begin
        (* nothing to help with: every in-flight task is running on some
           domain, so this future is making progress — block on it (and
           re-check under the lock to close the completion race) *)
        Mutex.lock fut.fm;
        (match fut.f_state with
        | Pending -> Condition.wait fut.fc fut.fm
        | _ -> ());
        Mutex.unlock fut.fm
      end;
      await t fut

let run t f = await t (submit t f)

let mapi_list t f xs =
  let futs = List.mapi (fun i x -> submit t (fun () -> f i x)) xs in
  List.map (await t) futs

let map_list t f xs = mapi_list t (fun _ x -> f x) xs

let map_opt pool f xs =
  match pool with
  | Some t when size t > 1 -> map_list t f xs
  | _ -> List.map f xs

let worker_body t ix () =
  Domain.DLS.set my_index (Some ix);
  Mutex.lock t.lk;
  let rec loop () =
    match take_locked t ~me:ix with
    | Some task ->
        Mutex.unlock t.lk;
        task ();
        Mutex.lock t.lk;
        loop ()
    | None ->
        if t.closed then Mutex.unlock t.lk
        else begin
          Condition.wait t.nonempty t.lk;
          loop ()
        end
  in
  loop ()

let create ?(clamp = true) ?domains () =
  let requested = max 1 (Option.value domains ~default:(default_jobs ())) in
  (* Oversubscribing CPU-bound deterministic work buys nothing and costs
     real time: every extra domain joins the stop-the-world minor-GC
     barrier, so on a machine with fewer cores than [-j] the surplus
     domains only add synchronization overhead. Results are identical at
     any pool size (see the determinism contract), so by default the pool
     spawns no more domains than the hardware offers. *)
  let total = if clamp then min requested (default_jobs ()) else requested in
  let workers = total - 1 in
  let t =
    {
      total;
      lk = Mutex.create ();
      nonempty = Condition.create ();
      queues = Array.init workers (fun _ -> Queue.create ());
      closed = false;
      rr = Atomic.make 0;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun ix -> Domain.spawn (worker_body t ix));
  t

let shutdown t =
  Mutex.lock t.lk;
  let already = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lk;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?clamp ?domains f =
  let t = create ?clamp ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
