(** A small work-stealing domain pool for the bench/analysis pipeline.

    A pool owns a fixed set of worker domains, each with a FIFO task
    queue; idle workers steal from their siblings. {!submit} returns a
    future; {!await} blocks until the task finished, {e helping} — running
    other queued tasks while it waits — so tasks may freely submit and
    await sub-tasks without deadlocking the pool.

    Determinism contract: results are delivered by {!await} in whatever
    order the caller awaits, and {!map_list} awaits in submission order —
    the output list order (and the first exception raised, if any) depends
    only on the input list, never on the interleaving of the workers.
    Exceptions raised by a task are captured with their backtrace and
    re-raised at {!await}.

    A pool of total size 1 (or 0) runs every task inline at {!submit}:
    [-j 1] is {e literally} the serial execution. *)

type t
type 'a future

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default. *)

val create : ?clamp:bool -> ?domains:int -> unit -> t
(** [create ~domains:j] builds a pool of total parallelism [j]: [j - 1]
    worker domains plus the calling domain, which participates by helping
    during {!await}. [j <= 1] creates an inline (serial) pool. [domains]
    defaults to {!default_jobs}.

    By default the pool is {e clamped} to the hardware: it never spawns
    more domains than {!default_jobs} reports, because oversubscribing
    CPU-bound work only adds domain-GC synchronization overhead while the
    results are identical at any pool size. Pass [~clamp:false] to force
    the requested domain count — the cross-domain determinism tests do, so
    that [-j 4] is exercised with four real domains even on small
    machines. *)

val size : t -> int
(** Total parallelism of the pool ([j] as passed to {!create}, min 1,
    after clamping). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. On an inline pool the task runs immediately. *)

val await : t -> 'a future -> 'a
(** Wait for a task's result, running other queued tasks meanwhile.
    Re-raises the task's exception (with its original backtrace) if it
    failed. *)

val run : t -> (unit -> 'a) -> 'a
(** [run p f] = [await p (submit p f)]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with deterministic output ordering: element [i] of
    the result is [f] applied to element [i] of the input, and the first
    exception (in input order) is the one re-raised. *)

val mapi_list : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Indexed {!map_list}. *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_list} when given a pool of size > 1; plain [List.map]
    otherwise. The convenience form for [?pool] parameters threaded
    through the analysis pipeline. *)

val shutdown : t -> unit
(** Finish all queued tasks, then join the worker domains. The pool
    cannot be used afterwards. Idempotent. *)

val with_pool : ?clamp:bool -> ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, runs [f], and shuts the pool down
    (also on exception). [clamp] as in {!create}. *)
