(** Off-line profiling (Section 4 of the paper).

    Chimera runs the program over a set of representative inputs and
    observes:

    - which {e function pairs ever execute concurrently}: a pair (f, g)
      is concurrent if an invocation of f in one thread overlaps in time
      with an invocation of g in another (either function may be anywhere
      on its thread's call stack). Racy function pairs never observed
      concurrent become candidates for coarse function-locks;
    - the {e average instructions per iteration} of each loop, used by
      the instrumenter to decide whether an imprecisely-bounded racy loop
      is cheap enough to serialize whole (Section 5.3's
      loop-body-threshold).

    Profiles from multiple runs aggregate by union / weighted mean. *)

module Pairset = Set.Make (struct
  type t = string * string
  let compare = compare
end)

type t = {
  mutable concurrent_pairs : Pairset.t;
  loop_iters : (int, int ref) Hashtbl.t;  (** lid -> total iterations *)
  loop_insns : (int, int ref) Hashtbl.t;
      (** lid -> total statements executed. Counters are refs so the
          per-statement hot path increments in place instead of paying a
          lookup + reinsert per event. *)
  mutable runs : int;
}

let create () =
  {
    concurrent_pairs = Pairset.empty;
    loop_iters = Hashtbl.create 32;
    loop_insns = Hashtbl.create 32;
    runs = 0;
  }

(* one entry of a thread's dynamic loop stack *)
type loop_slot = { s_lid : int; mutable s_ctr : int ref option }

let norm_pair f g = if f <= g then (f, g) else (g, f)

let concurrent (t : t) f g = Pairset.mem (norm_pair f g) t.concurrent_pairs

let counter (tbl : (int, int ref) Hashtbl.t) (k : int) : int ref =
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl k r;
      r

(** Average executed statements per iteration of loop [lid]; [None] if the
    loop never ran in any profile run. *)
let avg_loop_body (t : t) (lid : int) : float option =
  match (Hashtbl.find_opt t.loop_insns lid, Hashtbl.find_opt t.loop_iters lid) with
  | Some insns, Some iters when !iters > 0 ->
      Some (float_of_int !insns /. float_of_int !iters)
  | _ -> None

(** Instrument [hooks] so that one engine run feeds this profile. Returns
    the hooks for convenience. *)
let attach (t : t) (hooks : Interp.Engine.hooks) : Interp.Engine.hooks =
  (* per-thread call stacks as multisets (recursion-safe) *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace stacks tid r;
        r
  in
  (* Per-thread loop stacks for statement attribution. A stack slot
     caches its loop's statement counter once resolved — resolved
     lazily, on the first statement of that loop entry, so a loop that
     iterates without executing a statement still leaves no
     [loop_insns] entry (exactly as before). The last-queried thread is
     memoized: the scheduler runs one thread for a whole quantum, so
     the per-statement path is usually a single int compare. *)
  let loop_stacks : (int, loop_slot list ref) Hashtbl.t = Hashtbl.create 16 in
  let last_tid = ref min_int in
  let last_stack = ref (ref []) in
  let loop_stack tid =
    if tid = !last_tid then !last_stack
    else begin
      let r =
        match Hashtbl.find_opt loop_stacks tid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace loop_stacks tid r;
            r
      in
      last_tid := tid;
      last_stack := r;
      r
    end
  in
  hooks.on_enter_fun <-
    Some
      (fun tid f ->
        (* every function live on any *other* thread's stack overlaps the
           new invocation of f *)
        Hashtbl.iter
          (fun tid' st ->
            if tid' <> tid then
              List.iter
                (fun g ->
                  t.concurrent_pairs <-
                    Pairset.add (norm_pair f g) t.concurrent_pairs)
                (List.sort_uniq compare !st))
          stacks;
        let st = stack tid in
        st := f :: !st);
  hooks.on_exit_fun <-
    Some
      (fun tid _f ->
        let st = stack tid in
        match !st with [] -> () | _ :: rest -> st := rest);
  hooks.on_loop_enter <-
    Some
      (fun tid lid ->
        let ls = loop_stack tid in
        ls := { s_lid = lid; s_ctr = None } :: !ls);
  hooks.on_loop_exit <-
    Some
      (fun tid _lid ->
        let ls = loop_stack tid in
        match !ls with [] -> () | _ :: rest -> ls := rest);
  hooks.on_loop_iter <-
    Some (fun _tid lid -> incr (counter t.loop_iters lid));
  hooks.on_stmt <-
    Some
      (fun tid _sid ->
        match !(loop_stack tid) with
        | slot :: _ -> (
            match slot.s_ctr with
            | Some r -> incr r
            | None ->
                let r = counter t.loop_insns slot.s_lid in
                slot.s_ctr <- Some r;
                incr r)
        | [] -> ());
  hooks

(** Profile [prog] once under the given seed/io. *)
let profile_run ?(config = Interp.Engine.default_config) ~io (t : t)
    (prog : Minic.Ast.program) : Interp.Engine.outcome =
  let hooks = attach t (Interp.Engine.no_hooks ()) in
  t.runs <- t.runs + 1;
  Interp.Engine.run ~config ~hooks ~mode:Interp.Engine.Native ~io prog

(** Merge [src] into [dst]: union of concurrent pairs, summed loop
    counters, summed run counts. Merging per-run profiles in any order
    yields the same profile as accumulating the runs serially into one
    [t] — unions and sums are commutative — which is what makes parallel
    profiling observationally identical to serial. *)
let merge ~(into : t) (src : t) : unit =
  into.concurrent_pairs <- Pairset.union into.concurrent_pairs src.concurrent_pairs;
  let add_into tbl k v =
    let r = counter tbl k in
    r := !r + !v
  in
  Hashtbl.iter (add_into into.loop_iters) src.loop_iters;
  Hashtbl.iter (add_into into.loop_insns) src.loop_insns;
  into.runs <- into.runs + src.runs

(** Profile over [runs] seeds (the paper uses 20 runs with varied inputs;
    inputs vary through the io-model seed here). With [pool], the runs
    execute concurrently — each into its own fresh profile, merged in run
    order — and produce the identical aggregate profile. *)
let profile_many ?(config = Interp.Engine.default_config) ?(pool : Par.Pool.t option)
    ~(io_of : int -> Interp.Iomodel.t) ?(runs = 20) (prog : Minic.Ast.program) : t =
  let run_one i =
    let t = create () in
    let config =
      { config with Interp.Engine.seed = config.Interp.Engine.seed + (i * 7919) }
    in
    ignore (profile_run ~config ~io:(io_of i) t prog);
    t
  in
  let indices = List.init runs (fun i -> i + 1) in
  let per_run =
    match pool with
    | Some p when Par.Pool.size p > 1 -> Par.Pool.map_list p run_one indices
    | _ -> List.map run_one indices
  in
  let acc = create () in
  List.iter (fun t -> merge ~into:acc t) per_run;
  acc

let n_concurrent_pairs t = Pairset.cardinal t.concurrent_pairs

let pp ppf (t : t) =
  Fmt.pf ppf "profile: %d runs, %d concurrent pairs" t.runs
    (Pairset.cardinal t.concurrent_pairs)
