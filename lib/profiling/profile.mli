(** Off-line profiling (paper Section 4): which function pairs ever
    execute concurrently (an invocation of one overlapping an invocation
    of the other in another thread — either may be anywhere on its
    thread's stack), and the average statements per loop iteration (the
    loop-body-threshold input of Section 5.3). Profiles union across
    runs. *)

module Pairset : Set.S with type elt = string * string

type t = {
  mutable concurrent_pairs : Pairset.t;
  loop_iters : (int, int ref) Hashtbl.t;
  loop_insns : (int, int ref) Hashtbl.t;
  mutable runs : int;
}

val create : unit -> t

(** Were the two functions (order-insensitive) ever observed
    concurrent? *)
val concurrent : t -> string -> string -> bool

(** Average executed statements per iteration; [None] if never run. *)
val avg_loop_body : t -> int -> float option

(** Wire the profiler into engine hooks (returns them). *)
val attach : t -> Interp.Engine.hooks -> Interp.Engine.hooks

(** One profiled native run. *)
val profile_run :
  ?config:Interp.Engine.config ->
  io:Interp.Iomodel.t ->
  t ->
  Minic.Ast.program ->
  Interp.Engine.outcome

(** Merge [src] into [into] (pair union, counter sums) — order-independent,
    so parallel per-run profiles aggregate to the serial result. *)
val merge : into:t -> t -> unit

(** [runs] profiled runs with per-run input models (the paper uses 20
    runs with varied inputs). With [pool], runs execute on the pool's
    domains and merge in run order; the aggregate profile is identical to
    the serial one. *)
val profile_many :
  ?config:Interp.Engine.config ->
  ?pool:Par.Pool.t ->
  io_of:(int -> Interp.Iomodel.t) ->
  ?runs:int ->
  Minic.Ast.program ->
  t

val n_concurrent_pairs : t -> int
val pp : t Fmt.t
