# Tier-1 verification plus the MHP soundness cross-check. The cross-check
# is part of the test suite: the fuzz/e2e properties run dynrace over
# instrumented programs (zero races allowed) and assert that statically
# pruned pairs are never observed racing dynamically.
.PHONY: all build test check bench-json clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build && dune runtest

# machine-readable pruning counters (static_pairs / pruned_pairs /
# runtime_acquisitions per benchmark)
bench-json:
	dune exec bench/main.exe -- json

clean:
	dune clean
