# Tier-1 verification plus the MHP soundness cross-check. The cross-check
# is part of the test suite: the fuzz/e2e properties run dynrace over
# instrumented programs (zero races allowed) and assert that statically
# pruned pairs are never observed racing dynamically.
#
# J controls the domain count of the parallel targets (bench -j flag /
# the sharded test runner); it defaults to all cores.
.PHONY: all build test test-par check bench-json bench-wall bench-regress \
	par-check lockopt-check trace-check analyze-check stress-check \
	refine-check log-check sched-check bench-sustained clean

J ?= 0
# wall-clock harness knobs: repetitions per phase, regression tolerance,
# domain count for the analyze phase (the committed baseline was measured
# at -j 4, so the gate re-measures at the same parallelism), and minimum
# aggregate warm-cache speedup over cold analysis
REPS ?= 3
TOL ?= 2.0
WALLJ ?= 4
WARMX ?= 10
SCHEDSHARE ?= 0.35

# expands to "-j $(J)" only when J was overridden
JFLAG = $(if $(filter-out 0,$(J)),-j $(J),)

all: build

build:
	dune build

test:
	dune runtest

# just the domain-sharded runner (dune runtest already includes it)
test-par:
	dune exec test/par_runner.exe -- $(JFLAG)

check:
	dune build && dune runtest

# machine-readable pruning counters (static_pairs / pruned_pairs /
# runtime_acquisitions per benchmark); J=4 fans it across 4 domains
bench-json:
	dune exec bench/main.exe -- json $(JFLAG)

# parallel == serial smoke check: the bench JSON must be byte-identical
# at -j 1 and -j $(J) (defaults to -j 2 when J is unset)
par-check:
	dune build bench/main.exe
	./_build/default/bench/main.exe json -j 1 > /tmp/chimera-json-j1.out
	./_build/default/bench/main.exe json $(if $(filter-out 0,$(J)),-j $(J),-j 2) > /tmp/chimera-json-jN.out
	cmp /tmp/chimera-json-j1.out /tmp/chimera-json-jN.out
	@echo "parallel output is byte-identical to serial"

# wall-clock phase timings of the pipeline (analyze cold + warm-cache /
# instrument / record / replay) per benchmark, JSON on stdout
# (schema chimera-wall-bench/2, methodology in EXPERIMENTS.md)
bench-wall:
	dune exec bench/main.exe -- wall --reps $(REPS) -j $(WALLJ)

# wall-clock regression gate: re-measure and fail if any benchmark's
# record+replay or analyze mean exceeds TOL x the committed baseline,
# the aggregate warm-cache analyze speedup drops below WARMX, or the
# scheduler+weak-lock share of attributed record time exceeds SCHEDSHARE
bench-regress:
	dune build bench/main.exe
	./_build/default/bench/main.exe wall --reps $(REPS) -j $(WALLJ) > /tmp/chimera-wall-fresh.json
	./_build/default/bench/main.exe wallcmp --max-ratio $(TOL) \
		--min-warm-speedup $(WARMX) --max-sched-share $(SCHEDSHARE) \
		bench/wall_baseline.json /tmp/chimera-wall-fresh.json

# scheduler gate: record every benchmark with the wheel-vs-sweep
# cross-check oracle enabled (each sweep and fast-forward recomputes the
# retired full-table scans and fails on any disagreement), pin the
# default-strategy ticks to the golden counters, and require record ==
# replay under all three schedule strategies. JSON report lands in
# /tmp/chimera-sched.json.
sched-check:
	dune build test/sched_check.exe
	./_build/default/test/sched_check.exe \
		--golden test/golden/golden_counters.expected \
		--json /tmp/chimera-sched.json

# must-lockset elision gate: every benchmark records and replays
# identically with the pass on and off, and elision strictly reduces
# runtime weak-lock acquisitions wherever it removed a static one
lockopt-check:
	dune exec bench/main.exe -- lockopt $(JFLAG)

# observability gate: traced record/replay stable event streams are
# byte-identical, tracing never perturbs the run, the Chrome export is
# well-formed JSON, corrupt logs fail typed, and the divergence
# diagnostic pinpoints a first diverging event on a damaged log
trace-check:
	dune exec test/trace_check.exe

# adversarial stress gate: batch-record the pfscan/fft/ocean x seeds
# 1..8 x {default,pct,storm} matrix across domains, dedup the logs by
# content address, replay every distinct recording (record == replay,
# served claims == recorded claims), pin default-strategy seed-1 ticks
# to the golden counters, and fault-inject the encoded logs (truncation
# at every record boundary + byte corruption) asserting typed rejection
# or a clean divergence report — never a crash. JSON report lands in
# /tmp/chimera-stress.json.
stress-check:
	dune build bin/chimera_cli.exe
	./_build/default/bin/chimera_cli.exe stress \
		pfscan fft ocean --seeds 1..8 \
		--golden test/golden/golden_counters.expected \
		--json /tmp/chimera-stress.json $(JFLAG)

# refinement gate: stress-corpus the pfscan/fft/ocean trio, refine the
# lockopt plan on its evidence, require the safety valve clean (every
# cell re-recorded with the detector attached, zero violations), pin
# record == replay under both the lockopt and refined plans with strict
# runtime-acquisition drops on >= 2 apps, and drive the CLI loop end to
# end: stress --corpus materialises a manifest, refine emits deployment
# JSON, a hand-corrupted plan digest exits with the typed issue status.
# JSON report lands in /tmp/chimera-refine.json.
refine-check:
	dune build bin/chimera_cli.exe test/refine_check.exe
	CHIMERA_CLI=./_build/default/bin/chimera_cli.exe \
		./_build/default/test/refine_check.exe

# segmented-log gate: record knot's sustained load (20k requests)
# through the spilling recorder with a small segment threshold, measure
# that the peak resident segment stays a fraction of the raw log total,
# stream the segments back (full replay == recording, windowed replay
# halts on the digest the full replay computed), roundtrip every pinned
# checkpoint, and drive the CLI --segment-dir loop end to end — a
# hand-corrupted segment checksum must exit with the typed status 3.
# JSON report lands in /tmp/chimera-log.json.
log-check:
	dune build bin/chimera_cli.exe test/log_check.exe
	CHIMERA_CLI=./_build/default/bin/chimera_cli.exe \
		./_build/default/test/log_check.exe

# sustained-load segmented recording experiment: serve 20k requests
# through each server benchmark under the spilling recorder, verify
# streamed + windowed replay, and emit the chimera-sustained-log JSON
# (residency ratios) on stdout
bench-sustained:
	dune exec bench/main.exe -- sustained

# analysis gate: a -j 4 analyze digest is byte-identical to serial, a
# warm cache hit reproduces the cold analysis, every damaged-entry shape
# falls back to recomputation with a diagnostic, and the per-stage
# timing sink covers the whole pipeline
analyze-check:
	dune exec test/analyze_check.exe

clean:
	dune clean
