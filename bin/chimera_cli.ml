(** The chimera command-line tool.

    Subcommands mirror the pipeline stages:

    - [races FILE]      — run RELAY and print the static race report
    - [plan FILE]       — print the weak-lock instrumentation plan
    - [instrument FILE] — print the instrumented program
    - [run FILE]        — execute natively (prints outputs)
    - [record FILE]     — analyze, instrument, record; write logs
    - [replay FILE]     — replay from recorded logs and verify determinism
    - [trace FILE]      — record + replay with event tracing; contention
                          report and stream-divergence diagnosis
    - [bench NAME]      — the same pipeline on a built-in benchmark

    MiniC sources are C-subset files (see README); built-in benchmark
    names: aget pfscan pbzip2 knot apache ocean water fft radix. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = Minic.Typecheck.parse_and_check ~file:path (read_file path)

let write_file name s =
  let oc = open_out_bin name in
  output_string oc s;
  close_out oc

let config_of ?(strategy = Interp.Engine.Sdefault) seed cores =
  { Interp.Engine.default_config with seed; cores; strategy }

(* --trace-out support: a sink is created only when requested, so the
   default path runs with tracing fully disabled *)
let sink_for trace_out =
  Option.map (fun _ -> Trace.Sink.create ()) trace_out

let dump_trace trace_out sink =
  match (trace_out, sink) with
  | Some path, Some s ->
      let evs = Trace.Sink.events s in
      write_file path (Trace.to_chrome evs);
      Fmt.epr "[trace: %d events (%d dropped) -> %s]@." (List.length evs)
        (Trace.Sink.dropped s) path
  | _ -> ()

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed")

let cores_arg =
  Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Simulated cores")

let strategy_conv =
  Arg.enum
    (List.map
       (fun s -> (Interp.Engine.strategy_name s, s))
       Interp.Engine.all_strategies)

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Interp.Engine.Sdefault
    & info [ "strategy" ]
        ~doc:
          "Schedule strategy: $(b,default) (seeded round-robin with work \
           stealing), $(b,pct) (PCT-style priority schedule with a \
           change point at each quantum expiry), or $(b,storm) \
           (weak-timeout storm: slashed timeouts, dense expiry sweeps, \
           short quanta). Replay is gated by recorded per-object orders, \
           so a log recorded under any strategy replays under any other.")

(* a seed range for sweep modes: "A..B" inclusive, or a single seed "N" *)
let seeds_conv : (int * int) Arg.conv =
  let parse s =
    let fail () =
      Error (`Msg (Fmt.str "invalid seed range %S (expected A..B or N)" s))
    in
    match String.split_on_char '.' s with
    | [ a; ""; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a <= b -> Ok (a, b)
        | _ -> fail ())
    | [ n ] -> (
        match int_of_string_opt n with Some v -> Ok (v, v) | None -> fail ())
    | _ -> fail ()
  in
  let print ppf (a, b) = Fmt.pf ppf "%d..%d" a b in
  Arg.conv (parse, print)

let seeds_arg =
  Arg.(
    value
    & opt (some seeds_conv) None
    & info [ "seeds" ] ~docv:"A..B"
        ~doc:
          "Sweep scheduler seeds $(docv) (inclusive) instead of a single \
           $(b,--seed)")

let seeds_list (a, b) = List.init (b - a + 1) (fun i -> a + i)

let io_seed_arg =
  Arg.(value & opt int 42 & info [ "io-seed" ] ~doc:"Input-model seed")

let profile_runs_arg =
  Arg.(value & opt int 8 & info [ "profile-runs" ] ~doc:"Profiling runs")

let opts_arg =
  let opts_conv =
    Arg.enum
      [
        ("all", Instrument.Plan.all_opts);
        ("naive", Instrument.Plan.naive);
        ("func", Instrument.Plan.funcs_only);
        ("loop", Instrument.Plan.loops_only);
      ]
  in
  Arg.(value & opt opts_conv Instrument.Plan.all_opts
       & info [ "opts" ] ~doc:"Optimization set: all | naive | func | loop")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Trace the run and write a Chrome-trace (chrome://tracing) \
           JSON array of its events to $(docv). Timestamps are logical \
           per-thread step counts, so traces are replay-stable.")

let no_lockopt_arg =
  Arg.(
    value & flag
    & info [ "no-lockopt" ]
        ~doc:
          "Disable the interprocedural must-lockset elision and \
           instrument the raw plan")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the analysis out over $(docv) domains (SCC-scheduled \
           summaries, race scans, profiling runs, lockopt dataflow). \
           Output is byte-identical to $(b,-j 1).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Bypass the persistent analysis cache (neither read nor write)")

let cache_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Analysis cache directory. Defaults to \\$CHIMERA_CACHE_DIR, \
           else \\$XDG_CACHE_HOME/chimera, else ~/.cache/chimera.")

let cache_of ~no_cache ~cache_dir =
  if no_cache then None else Some (Ancache.create ?dir:cache_dir ())

(* damaged-entry diagnostics go to stderr in the same style as the
   corrupt-replay-log message; routine hit/miss lines stay quiet *)
let cli_cache_log msg =
  if String.length msg >= 8 && String.sub msg 0 8 = "warning:" then
    Fmt.epr "chimera: %s@." msg

let with_jobs jobs f =
  if jobs <= 1 then f None
  else Par.Pool.with_pool ~domains:jobs (fun p -> f (Some p))

let analyze_file ?opts ?mhp ?(profile_runs = 8) ?(no_lockopt = false)
    ~jobs ~no_cache ~cache_dir path =
  with_jobs jobs (fun pool ->
      Chimera.Pipeline.analyze ?opts ?mhp ~profile_runs
        ~lockopt:(not no_lockopt) ?pool
        ?cache:(cache_of ~no_cache ~cache_dir)
        ~cache_log:cli_cache_log
        (Minic.Parser.parse ~file:path (read_file path)))

(* ------------------------------------------------------------------ *)

(* exit code for surfaced correctness issues: stress-matrix divergence,
   a dynamic race outside the static report, a refined-plan digest
   mismatch, or a safety-valve violation *)
let issue_exit = 2

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let refine_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "refine" ] ~docv:"PLAN"
        ~doc:
          "Run under the corpus-refined deployment plan in $(docv) \
           (written by $(b,chimera refine)). The plan embeds a digest of \
           the base plan it refines; a mismatch with the plan computed \
           here — or a dropped lock the base plan does not contain — \
           exits 2, so a stale deployment can never silently drop the \
           wrong locks.")

(* Resolve the program to execute: the lockopt-instrumented one, or —
   under --refine — the re-derived refined instrumentation *)
let refined_program (an : Chimera.Pipeline.analysis) = function
  | None -> an.Chimera.Pipeline.an_instrumented
  | Some path -> (
      let dp =
        try Refine.load_deployment path
        with Refine.Bad_plan msg ->
          Fmt.epr "chimera: refined plan %s: %s@." path msg;
          exit issue_exit
      in
      match Refine.apply_deployment ~plan:an.an_plan dp with
      | Error e ->
          Fmt.epr "chimera: refined plan %s: %a@." path
            Refine.pp_deploy_error e;
          exit issue_exit
      | Ok plan' ->
          Fmt.epr "[refined plan: %d lock(s) dropped, %d -> %d static \
                   acquisitions]@."
            (List.length dp.Refine.dp_dropped)
            (Instrument.Plan.n_acquisitions an.an_plan)
            (Instrument.Plan.n_acquisitions plan');
          let an = Chimera.Pipeline.with_refined an plan' in
          Option.get an.an_instr_refined)

let races_cmd =
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain-races" ]
          ~doc:
            "List every candidate pair with its provenance: kept, \
             pruned:mhp (sites can never run concurrently), or \
             pruned:escape (every raced-on object is confined by \
             fork/join ordering)")
  in
  let no_mhp_arg =
    Arg.(
      value & flag
      & info [ "no-mhp" ]
          ~doc:"Disable MHP pruning and print raw RELAY output")
  in
  let run file explain no_mhp jobs no_cache cache_dir =
    (* the report is profile-independent, so the cached pipeline entry is
       keyed with zero profiling runs and shared across repeated calls *)
    let an =
      analyze_file ~mhp:(not no_mhp) ~profile_runs:0 ~jobs ~no_cache
        ~cache_dir file
    in
    let report = an.Chimera.Pipeline.an_report in
    if explain then Fmt.pr "%a@." Relay.Detect.pp_report_explain report
    else Fmt.pr "%a@." Relay.Detect.pp_report report
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Static data-race report (RELAY + MHP fork/join pruning)")
    Term.(
      const run $ file_arg $ explain_arg $ no_mhp_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg)

let plan_cmd =
  let explain_plan_arg =
    Arg.(
      value & flag
      & info [ "explain-plan" ]
          ~doc:
            "List every weak-lock acquisition with its region, claimed \
             ranges, and lockopt provenance: kept, elided:dominated (a \
             dominating enclosing region already holds the lock), or \
             elided:callsite (every call site of the function holds it)")
  in
  let run file profile_runs opts no_lockopt jobs no_cache cache_dir
      explain_plan =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    if explain_plan then Fmt.pr "%a@." Lockopt.pp_explain an.an_lockopt
    else begin
      Fmt.pr "%a@." Instrument.Plan.pp_summary an.an_plan;
      Fmt.pr "%a@.@." Lockopt.pp_report an.an_lockopt;
      List.iter
        (fun (pd : Instrument.Plan.pair_decision) ->
          Fmt.pr "%a@.  lock %a@.  side1 %a (%s)@.  side2 %a (%s)@."
            Relay.Detect.pp_race_pair pd.pd_pair Minic.Ast.pp_weak_lock pd.pd_lock
            Instrument.Plan.pp_region pd.pd_s1.sd_region pd.pd_s1.sd_reason
            Instrument.Plan.pp_region pd.pd_s2.sd_region pd.pd_s2.sd_reason)
        an.an_plan.pl_decisions
    end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Weak-lock granularity plan (profiling + bounds)")
    Term.(
      const run $ file_arg $ profile_runs_arg $ opts_arg $ no_lockopt_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg $ explain_plan_arg)

let instrument_cmd =
  let run file profile_runs opts no_lockopt jobs no_cache cache_dir =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    print_string (Minic.Pretty.program_to_string an.an_instrumented)
  in
  Cmd.v (Cmd.info "instrument" ~doc:"Print the weak-lock-instrumented program")
    Term.(
      const run $ file_arg $ profile_runs_arg $ opts_arg $ no_lockopt_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg)

let print_outcome (o : Interp.Engine.outcome) =
  List.iter (fun (_, v) -> Fmt.pr "%d@." v) o.o_outputs;
  List.iter
    (fun (p, m) -> Fmt.epr "fault in %a: %s@." Runtime.Key.pp_tid_path p m)
    o.o_faults;
  Fmt.epr "[%d simulated ticks, %d statements, %d threads]@." o.o_ticks
    o.o_stats.n_stmts
    (List.length o.o_steps)

let run_cmd =
  let run file seed cores io_seed strategy seeds trace_out =
    let prog = load file in
    let io = Interp.Iomodel.random ~seed:io_seed in
    match seeds with
    | None ->
        let sink = sink_for trace_out in
        let o =
          Chimera.Runner.native ~config:(config_of ~strategy seed cores) ?sink
            ~io prog
        in
        print_outcome o;
        dump_trace trace_out sink
    | Some range ->
        (* seed sweep: one native run per seed, no tracing *)
        List.iter
          (fun s ->
            Fmt.pr "-- seed %d --@." s;
            print_outcome
              (Chimera.Runner.native ~config:(config_of ~strategy s cores) ~io
                 prog))
          (seeds_list range)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program natively")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ strategy_arg $ seeds_arg $ trace_out_arg)

let det_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let o =
      Chimera.Runner.deterministic ~config:(config_of seed cores)
        ~io:(Interp.Iomodel.random ~seed:io_seed) an.an_instrumented
    in
    print_outcome o
  in
  Cmd.v
    (Cmd.info "det"
       ~doc:
         "Instrument and run under deterministic logical-time arbitration \
          (same output for every --seed, no logs)")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg)

let segment_dir_arg ~doc =
  Arg.(value & opt (some string) None & info [ "segment-dir" ] ~doc)

let record_cmd =
  let run file seed cores io_seed strategy seeds profile_runs opts no_lockopt
      jobs no_cache cache_dir out trace_out refine segment_dir segment_events
      checkpoint_every =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let prog = refined_program an refine in
    let io = Interp.Iomodel.random ~seed:io_seed in
    let record_one ?sink ~prefix s =
      let r =
        Chimera.Runner.record ~config:(config_of ~strategy s cores) ?sink ~io
          prog
      in
      write_file (prefix ^ ".input.log") (Replay.Log.encode_input_log r.rc_log);
      write_file (prefix ^ ".order.log") (Replay.Log.encode_order_log r.rc_log);
      Fmt.epr "[logs: input %dB (%dB gz), order %dB (%dB gz) -> %s.*.log]@."
        r.rc_input_log_raw r.rc_input_log_z r.rc_order_log_raw
        r.rc_order_log_z prefix;
      r
    in
    let record_seg_one ?sink ~dir s =
      let sr =
        Chimera.Runner.record_segmented ~config:(config_of ~strategy s cores)
          ?sink ~io ~dir ~events_per_segment:segment_events ~checkpoint_every
          prog
      in
      let st = sr.Chimera.Runner.sr_stats in
      Fmt.epr
        "[segments: %d sealed, %d events, peak raw %dB (resident bound), \
         total raw %dB, %dB gz -> %s]@."
        st.Replay.Seglog.ws_segments st.ws_events st.ws_peak_raw
        st.ws_total_raw st.ws_total_z dir;
      sr
    in
    match (seeds, segment_dir) with
    | None, None ->
        let sink = sink_for trace_out in
        let r = record_one ?sink ~prefix:out seed in
        print_outcome r.rc_outcome;
        dump_trace trace_out sink
    | None, Some dir ->
        let sink = sink_for trace_out in
        let sr = record_seg_one ?sink ~dir seed in
        print_outcome sr.sr_outcome;
        dump_trace trace_out sink
    | Some range, None ->
        (* one recording per seed, logs under per-seed prefixes, with a
           content-addressed dedup summary across the sweep *)
        let digests =
          List.map
            (fun s ->
              let r = record_one ~prefix:(Fmt.str "%s.%d" out s) s in
              Chimera.Stress.log_digest r.rc_log)
            (seeds_list range)
        in
        Fmt.pr "recorded %d seeds, %d distinct logs@." (List.length digests)
          (List.length (List.sort_uniq compare digests))
    | Some range, Some dir ->
        (* per-seed segment directories; dedup on the segment checksums *)
        let digests =
          List.map
            (fun s ->
              let sr = record_seg_one ~dir:(Fmt.str "%s.%d" dir s) s in
              Array.to_list sr.sr_manifest.Replay.Seglog.mf_segments
              |> List.concat_map (fun (sg : Replay.Seglog.segment) ->
                     [ sg.sg_md5_input; sg.sg_md5_order ])
              |> String.concat ","
              |> fun m -> Digest.to_hex (Digest.string m))
            (seeds_list range)
        in
        Fmt.pr "recorded %d seeds, %d distinct logs@." (List.length digests)
          (List.length (List.sort_uniq compare digests))
  in
  let out_arg =
    Arg.(value & opt string "chimera" & info [ "o" ] ~doc:"Log file prefix")
  in
  let segment_events_arg =
    Arg.(
      value & opt int 4096
      & info [ "segment-events" ]
          ~doc:
            "With --segment-dir: gated events per sealed segment (the \
             resident-log-memory bound)")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ]
          ~doc:
            "With --segment-dir: pin an engine checkpoint every K-th seal \
             (0 disables checkpoints)")
  in
  Cmd.v (Cmd.info "record" ~doc:"Instrument and record an execution")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ strategy_arg $ seeds_arg $ profile_runs_arg $ opts_arg
      $ no_lockopt_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ out_arg
      $ trace_out_arg $ refine_arg
      $ segment_dir_arg
          ~doc:
            "Record with a segmented, spilling log: seal, compress, \
             checksum and spill bounded segments to this directory instead \
             of one monolithic log pair"
      $ segment_events_arg $ checkpoint_every_arg)

(* exit code for a log that fails to decode (distinct from cmdliner's
   reserved 123-125 range and from program exit codes) *)
let corrupt_log_exit = 3


let replay_cmd =
  let run file seed cores io_seed strategy seeds profile_runs opts no_lockopt
      jobs no_cache cache_dir logs trace_out refine segment_dir from_tick
      window =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let prog = refined_program an refine in
    let io = Interp.Iomodel.random ~seed:io_seed in
    (* the determinism sweep: one and the same execution under every seed *)
    let sweep_check outcomes =
      let first = snd (List.hd outcomes) in
      print_outcome first;
      let bad =
        List.filter
          (fun (_, o) -> Chimera.Runner.same_execution first o <> Ok ())
          outcomes
      in
      if bad = [] then
        Fmt.pr "replay under %d seeds: IDENTICAL@." (List.length outcomes)
      else begin
        List.iter
          (fun (s, o) ->
            match Chimera.Runner.same_execution first o with
            | Ok () -> ()
            | Error d ->
                Fmt.pr "seed %d: DIVERGED: %a@." s
                  Chimera.Runner.pp_divergence d)
          bad;
        exit 1
      end
    in
    match segment_dir with
    | Some dir ->
        (* streamed (and possibly windowed) replay of a segment directory *)
        let upto_tick = Option.map (fun w -> from_tick + w) window in
        let stream_one ?sink s =
          try
            Chimera.Runner.replay_streamed
              ~config:(config_of ~strategy s cores)
              ?sink ~io ?upto_tick ~dir prog
          with Replay.Log.Corrupt msg ->
            Fmt.epr "chimera: corrupt replay log: %s@." msg;
            exit corrupt_log_exit
        in
        let report (sr : Chimera.Runner.streamed_replay) =
          Fmt.epr "[stream: %d segment(s) loaded%s]@." sr.st_segments_loaded
            (if sr.st_halted then
               Fmt.str ", halted at window bound [%d,+%d] (digest %s)"
                 from_tick
                 (Option.value window ~default:0)
                 (match List.rev sr.st_digests with
                 | (_, d) :: _ -> d
                 | [] -> "-")
             else "")
        in
        (match seeds with
        | None ->
            let sink = sink_for trace_out in
            let sr = stream_one ?sink seed in
            print_outcome sr.st_outcome;
            report sr;
            dump_trace trace_out sink
        | Some range ->
            let outcomes =
              List.map
                (fun s ->
                  let sr = stream_one s in
                  report sr;
                  (s, sr.Chimera.Runner.st_outcome))
                (seeds_list range)
            in
            sweep_check outcomes)
    | None -> (
        let log =
          try
            Replay.Log.decode
              (read_file (logs ^ ".input.log"))
              (read_file (logs ^ ".order.log"))
          with Replay.Log.Corrupt msg ->
            Fmt.epr "chimera: corrupt replay log: %s@." msg;
            exit corrupt_log_exit
        in
        match seeds with
        | None ->
            let sink = sink_for trace_out in
            let o =
              Chimera.Runner.replay ~config:(config_of ~strategy seed cores)
                ?sink ~io prog log
            in
            print_outcome o;
            dump_trace trace_out sink
        | Some range ->
            let outcomes =
              List.map
                (fun s ->
                  ( s,
                    Chimera.Runner.replay
                      ~config:(config_of ~strategy s cores)
                      ~io prog log ))
                (seeds_list range)
            in
            sweep_check outcomes)
  in
  let logs_arg =
    Arg.(value & opt string "chimera" & info [ "logs" ] ~doc:"Log file prefix")
  in
  let from_tick_arg =
    Arg.(
      value & opt int 0
      & info [ "from-tick" ]
          ~doc:"With --segment-dir and --window: start of the replay window")
  in
  let window_arg =
    Arg.(
      value & opt (some int) None
      & info [ "window" ]
          ~doc:
            "With --segment-dir: replay only the window of $(b,--from-tick) \
             to $(b,--from-tick)+$(i,W) ticks — streaming halts cleanly \
             after the last segment covering the window drains, never \
             reading the later segment files")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a recorded execution"
       ~exits:
         (Cmd.Exit.info corrupt_log_exit
            ~doc:"the recorded logs are truncated or corrupt"
         :: Cmd.Exit.defaults))
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ strategy_arg $ seeds_arg $ profile_runs_arg $ opts_arg
      $ no_lockopt_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ logs_arg
      $ trace_out_arg $ refine_arg
      $ segment_dir_arg
          ~doc:
            "Stream the replay out of this segment directory (written by \
             $(b,record --segment-dir)) instead of monolithic log files"
      $ from_tick_arg $ window_arg)

let trace_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir top trace_out =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let config = config_of seed cores in
    let io = Interp.Iomodel.random ~seed:io_seed in
    let rec_sink = Trace.Sink.create () in
    let r =
      Chimera.Runner.record ~config ~sink:rec_sink ~io an.an_instrumented
    in
    let rep_sink = Trace.Sink.create () in
    let o =
      Chimera.Runner.replay
        ~config:{ config with seed = config.seed + 7919 }
        ~sink:rep_sink ~io an.an_instrumented r.rc_log
    in
    let rec_events = Trace.Sink.events rec_sink in
    Fmt.pr "@[<v>%a@]@."
      (Trace.pp_report ~top)
      (Trace.summarize ~dropped:(Trace.Sink.dropped rec_sink) rec_events);
    let st = r.rc_outcome.o_stats in
    Fmt.pr "timeout preemptions: %d | handoffs served: %d, expired: %d@."
      st.n_forced st.n_handoff_served st.n_handoff_expired;
    (match trace_out with
    | Some path ->
        write_file path (Trace.to_chrome rec_events);
        Fmt.epr "[trace: %d events -> %s]@." (List.length rec_events) path
    | None -> ());
    let stream_div () =
      Trace.first_divergence ~recorded:rec_events
        ~replayed:(Trace.Sink.events rep_sink)
    in
    match Chimera.Runner.same_execution r.rc_outcome o with
    | Ok () -> (
        match stream_div () with
        | None ->
            Fmt.pr "record and replay stable event streams: IDENTICAL@."
        | Some d ->
            Fmt.pr "event streams diverge: %a@." Trace.pp_divergence d;
            exit 1)
    | Error d -> (
        Fmt.pr "replay DIVERGED: %a@." Chimera.Runner.pp_divergence d;
        (match stream_div () with
        | Some dv -> Fmt.pr "first diverging event: %a@." Trace.pp_divergence dv
        | None ->
            Fmt.pr
              "no diverging trace event (data-only divergence: same \
               control flow and synchronization, different values)@.");
        exit 1)
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Locks to list in the contention report")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record with event tracing, replay under a shifted scheduler \
          seed, print per-lock/per-granularity contention metrics, and \
          verify the stable event streams match")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg $ top_arg $ trace_out_arg)

let bench_cmd =
  let run name seed cores workers strategy seeds no_lockopt jobs no_cache
      cache_dir refine =
    let b = Bench_progs.Registry.by_name name in
    let src = b.b_source ~workers ~scale:b.b_eval_scale in
    (* under --refine the analysis mirrors the stress/corpus pipeline
       (profile_runs 6, stress cache tag) so the deployment's base-plan
       digest can match the plan computed here *)
    let profile_runs, tag =
      match refine with
      | None -> (8, "bench:" ^ name)
      | Some _ -> (6, "stress:" ^ name)
    in
    let an =
      with_jobs jobs (fun pool ->
          Chimera.Pipeline.analyze ~profile_runs ~lockopt:(not no_lockopt)
            ~profile_io:(fun i ->
              b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
            ?pool
            ?cache:(cache_of ~no_cache ~cache_dir)
            ~cache_tag:tag
            ~cache_log:cli_cache_log
            (Minic.Parser.parse ~file:name src))
    in
    let instrumented = refined_program an refine in
    let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
    let config = config_of ~strategy seed cores in
    let ov, r = Chimera.Runner.measure ~config ~io ~original:an.an_prog
        ~instrumented () in
    Fmt.pr "%s: %d races, %a@." name
      (List.length an.an_report.races)
      Instrument.Plan.pp_summary an.an_plan;
    Fmt.pr "%a@." Lockopt.pp_report an.an_lockopt;
    Fmt.pr "native %d ticks | record %d ticks (%.2fx) | replay %d ticks (%.2fx)@."
      ov.ov_native_ticks ov.ov_record_ticks ov.ov_record ov.ov_replay_ticks
      ov.ov_replay;
    Fmt.pr "logs: input %dB gz | order %dB gz@." r.rc_input_log_z r.rc_order_log_z;
    Fmt.pr "runtime weak acquisitions (record): %d@."
      (Refine.runtime_weak_acqs r.rc_outcome);
    (match
       Chimera.Runner.same_execution r.rc_outcome
         (Chimera.Runner.replay
            ~config:{ config with seed = config.seed + 7919 }
            ~io instrumented r.rc_log)
     with
    | Ok () -> Fmt.pr "replay (different scheduler seed): DETERMINISTIC@."
    | Error d -> (
        Fmt.pr "replay DIVERGED: %a@." Chimera.Runner.pp_divergence d;
        (* localize it: diff the recorded vs replayed event streams *)
        match
          Chimera.Runner.first_trace_divergence ~config ~io
            instrumented r.rc_log
        with
        | Some dv ->
            Fmt.pr "first diverging event: %a@." Trace.pp_divergence dv
        | None -> Fmt.pr "no diverging trace event (data-only)@."));
    match seeds with
    | None -> ()
    | Some range ->
        (* record/replay determinism across a full seed sweep *)
        let bad = ref 0 in
        List.iter
          (fun s ->
            match
              Chimera.Runner.record_replay_check
                ~config:{ config with seed = s } ~io instrumented
            with
            | Ok _ -> ()
            | Error d ->
                incr bad;
                Fmt.pr "seed %d: DIVERGED: %a@." s
                  Chimera.Runner.pp_divergence d)
          (seeds_list range);
        let a, b = range in
        Fmt.pr "seed sweep %d..%d: %s@." a b
          (if !bad = 0 then "DETERMINISTIC" else Fmt.str "%d DIVERGED" !bad);
        if !bad > 0 then exit 1
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (Arg.enum (List.map (fun n -> (n, n)) Bench_progs.Registry.names))) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker threads")
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run the full pipeline on a built-in benchmark")
    Term.(
      const run $ name_arg $ seed_arg $ cores_arg $ workers_arg
      $ strategy_arg $ seeds_arg $ no_lockopt_arg $ jobs_arg $ no_cache_arg
      $ cache_dir_arg $ refine_arg)

(* ------------------------------------------------------------------ *)
(* stress: batch matrix recording + fault injection *)

(* exit code for a matrix with divergences / claim drift / golden
   mismatches / stuck recordings (exit 3, shared with corrupt-log, covers
   fault-injection contract violations) *)
let stress_issue_exit = 2

(** Parse a golden-counters table (the [test/golden] snapshot format):
    whitespace-separated columns, benchmark name first, tick count last;
    lines whose last field is not an integer (the header) are skipped. *)
let parse_golden path =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      with
      | name :: (_ :: _ as rest) -> (
          match int_of_string_opt (List.nth rest (List.length rest - 1)) with
          | Some ticks -> Hashtbl.replace tbl name ticks
          | None -> ())
      | _ -> ())
    (String.split_on_char '\n' (read_file path));
  tbl

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stress_json (rp : Chimera.Stress.report)
    (fault : Chimera.Stress.fault_report option) : string =
  let b = Buffer.create 1024 in
  let strings xs =
    String.concat ", "
      (List.map (fun s -> Fmt.str "\"%s\"" (json_escape s)) xs)
  in
  Buffer.add_string b
    (Fmt.str
       "{\n  \"jobs\": %d,\n  \"distinct\": %d,\n  \"replayed\": %d,\n  \
        \"issues\": [%s]"
       rp.rp_jobs rp.rp_distinct rp.rp_replayed
       (strings
          (List.map (Fmt.str "%a" Chimera.Stress.pp_issue) rp.rp_issues)));
  (match fault with
  | None -> ()
  | Some f ->
      Buffer.add_string b
        (Fmt.str
           ",\n  \"fault\": {\n    \"mutants\": %d,\n    \"truncations\": \
            %d,\n    \"flips\": %d,\n    \"appends\": %d,\n    \
            \"rejected\": %d,\n    \"benign\": %d,\n    \"divergent\": \
            %d,\n    \"crashes\": [%s]\n  }"
           (Chimera.Stress.fault_total f)
           f.fi_truncations f.fi_flips f.fi_appends f.fi_rejected f.fi_benign
           f.fi_divergent
           (strings
              (List.map (fun (w, e) -> w ^ ": " ^ e) f.fi_crashes))));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let stress_cmd =
  let run benches srcs raw seeds strategies cores io_seed jobs no_cache
      cache_dir golden json_out fault_logs no_fault_inject max_truncations
      max_flips corpus =
    (* a raw (uninstrumented) matrix is a negative control; its
       recordings are useless as refinement evidence *)
    if raw && corpus <> None then begin
      Fmt.epr "chimera: stress: --corpus cannot be combined with --raw@.";
      exit Cmd.Exit.cli_error
    end;
    (* a corrupt on-disk log pair is rejected up front, before any
       recording work *)
    (match fault_logs with
    | None -> ()
    | Some prefix -> (
        match
          Replay.Log.decode
            (read_file (prefix ^ ".input.log"))
            (read_file (prefix ^ ".order.log"))
        with
        | exception Replay.Log.Corrupt msg ->
            Fmt.epr "chimera: corrupt replay log: %s@." msg;
            exit corrupt_log_exit
        | _ -> Fmt.pr "logs %s.*.log: decode OK@." prefix));
    let golden_tbl =
      match golden with Some p -> parse_golden p | None -> Hashtbl.create 1
    in
    (* the built-in trio is a default, not an addition: naming benches or
       sources explicitly replaces it *)
    let benches =
      if benches = [] && srcs = [] then [ "pfscan"; "fft"; "ocean" ]
      else benches
    in
    let seeds = seeds_list seeds in
    with_jobs jobs (fun pool ->
        let cache = cache_of ~no_cache ~cache_dir in
        (* benchmark analysis mirrors the golden-counters generator
           (profile_runs 6, profile-io seeds 100+i, 4 workers, io seed 42
           at eval scale) so --golden pins are directly comparable *)
        let bench_spec name :
            Chimera.Stress.prog_spec
            * (string * (Refine.Corpus.kind * string option * int * string)) =
          let b = Bench_progs.Registry.by_name name in
          let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
          let an =
            Chimera.Pipeline.analyze ~profile_runs:6
              ~profile_io:(fun i ->
                b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
              ?pool ?cache
              ~cache_tag:("stress:" ^ name)
              ~cache_log:cli_cache_log
              (Minic.Parser.parse ~file:name src)
          in
          ( {
              sp_name = name;
              sp_instrumented =
                (if raw then an.an_prog else an.an_instrumented);
              sp_io = b.b_io ~seed:42 ~scale:b.b_eval_scale;
              sp_golden_ticks =
                (if raw then None else Hashtbl.find_opt golden_tbl name);
            },
            ( name,
              (Refine.Corpus.Kbench, None, 42, Refine.plan_digest an.an_plan)
            ) )
        in
        let src_spec path :
            Chimera.Stress.prog_spec
            * (string * (Refine.Corpus.kind * string option * int * string)) =
          let an =
            Chimera.Pipeline.analyze ~profile_runs:6 ?pool ?cache
              ~cache_log:cli_cache_log
              (Minic.Parser.parse ~file:path (read_file path))
          in
          ( {
              sp_name = Filename.basename path;
              sp_instrumented =
                (if raw then an.an_prog else an.an_instrumented);
              sp_io = Interp.Iomodel.random ~seed:io_seed;
              sp_golden_ticks = None;
            },
            ( Filename.basename path,
              ( Refine.Corpus.Ksrc,
                Some path,
                io_seed,
                Refine.plan_digest an.an_plan ) ) )
        in
        let specs =
          List.map bench_spec benches @ List.map src_spec srcs
        in
        let progs = List.map fst specs and meta = List.map snd specs in
        if progs = [] then begin
          Fmt.epr "chimera: stress: no programs given@.";
          exit Cmd.Exit.cli_error
        end;
        Fmt.pr "stress matrix: %d program(s) x %d seed(s) x %d strateg%s@."
          (List.length progs) (List.length seeds) (List.length strategies)
          (if List.length strategies = 1 then "y" else "ies");
        let rp =
          Chimera.Stress.run_matrix ?pool ~cores ~seeds ~strategies ~progs ()
        in
        Fmt.pr
          "recorded %d jobs, %d distinct logs (%d duplicates); replayed %d@."
          rp.rp_jobs rp.rp_distinct (rp.rp_jobs - rp.rp_distinct)
          rp.rp_replayed;
        List.iter (fun i -> Fmt.pr "%a@." Chimera.Stress.pp_issue i) rp.rp_issues;
        (match corpus with
        | None -> ()
        | Some dir ->
            let c = Refine.Corpus.of_stress ~dir ~cores ~meta rp in
            Refine.Corpus.save c;
            Fmt.epr "[corpus: %d program(s), %d distinct recording(s) -> %s]@."
              (List.length c.co_entries)
              (List.fold_left
                 (fun acc (e : Refine.Corpus.entry) ->
                   acc + List.length e.ce_recordings)
                 0 c.co_entries)
              dir);
        let fault =
          if no_fault_inject then None
          else begin
            let sp = List.hd progs in
            let f =
              Chimera.Stress.fault_injection ?pool
                ~max_truncations ~max_flips
                ~config:{ Interp.Engine.default_config with cores }
                ~io:sp.Chimera.Stress.sp_io
                ~instrumented:sp.Chimera.Stress.sp_instrumented ()
            in
            Fmt.pr "fault injection on %s: %a@." sp.Chimera.Stress.sp_name
              Chimera.Stress.pp_fault_report f;
            List.iter
              (fun (what, e) -> Fmt.pr "  CRASH: %s: %s@." what e)
              f.fi_crashes;
            Some f
          end
        in
        (match json_out with
        | None -> ()
        | Some path ->
            let doc = stress_json rp fault in
            (match Bjson.parse doc with
            | exception Bjson.Bad m ->
                Fmt.failwith "stress emitted invalid JSON: %s" m
            | _ -> ());
            write_file path doc;
            Fmt.epr "[stress report -> %s]@." path);
        let crashes =
          match fault with Some f -> f.fi_crashes <> [] | None -> false
        in
        if crashes then begin
          Fmt.pr "stress: FAULT-INJECTION CONTRACT VIOLATED@.";
          exit corrupt_log_exit
        end;
        if rp.rp_issues <> [] then begin
          Fmt.pr "stress: %d issue(s)@." (List.length rp.rp_issues);
          exit stress_issue_exit
        end;
        Fmt.pr "stress: OK@.")
  in
  let benches_arg =
    Arg.(
      value
      & pos_all
          (Arg.enum
             (List.map (fun n -> (n, n)) Bench_progs.Registry.names))
          []
      & info [] ~docv:"BENCH"
          ~doc:
            "Built-in benchmarks to stress (default, when no $(docv) or \
             $(b,--src) is given: pfscan fft ocean)")
  in
  let srcs_arg =
    Arg.(
      value & opt_all file []
      & info [ "src" ] ~docv:"FILE"
          ~doc:"Also stress a MiniC source file (repeatable)")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Record the $(b,uninstrumented) programs — a negative control: \
             their data races are expected to make replay diverge, \
             exercising the exit-2 path")
  in
  let stress_seeds_arg =
    Arg.(
      value
      & opt seeds_conv (1, 8)
      & info [ "seeds" ] ~docv:"A..B" ~doc:"Seed range (default 1..8)")
  in
  let strategies_arg =
    Arg.(
      value
      & opt (list strategy_conv) Interp.Engine.all_strategies
      & info [ "strategies" ] ~docv:"S,..."
          ~doc:"Strategies to sweep (default: default,pct,storm)")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "golden" ] ~docv:"FILE"
          ~doc:
            "Pin default-strategy seed-1 record ticks to the golden \
             counters table in $(docv) (requires --cores 4, the golden \
             generator's configuration)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write a JSON report to $(docv)")
  in
  let fault_logs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-logs" ] ~docv:"PREFIX"
          ~doc:
            "Decode-validate the on-disk log pair $(docv).input.log / \
             $(docv).order.log before stressing; a corrupt pair exits 3")
  in
  let no_fault_inject_arg =
    Arg.(
      value & flag
      & info [ "no-fault-inject" ] ~doc:"Skip the log fault-injection phase")
  in
  let max_truncations_arg =
    Arg.(
      value & opt int 256
      & info [ "max-truncations" ]
          ~doc:"Truncation-point cap per log (evenly sampled beyond it)")
  in
  let max_flips_arg =
    Arg.(
      value & opt int 64
      & info [ "max-flips" ] ~doc:"Byte-corruption cap per log")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Save the matrix's distinct recordings and a $(b,corpus.json) \
             manifest (with per-program base-plan digests) under $(docv), \
             for later $(b,chimera refine) runs")
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Batch-record a (program x seed x strategy) matrix under \
          adversarial schedules, dedup the logs by content address, \
          replay every distinct recording, and fault-inject the encoded \
          logs (truncation at every record boundary + byte corruption), \
          asserting typed rejection or a clean divergence report"
       ~exits:
         (Cmd.Exit.info stress_issue_exit
            ~doc:
              "the matrix surfaced issues: replay divergence, served-claim \
               drift, a stuck recording, or a golden-ticks mismatch"
         :: Cmd.Exit.info corrupt_log_exit
              ~doc:
                "a $(b,--fault-logs) pair failed to decode, or fault \
                 injection crashed the decoder/replayer (contract \
                 violation)"
         :: Cmd.Exit.defaults))
    Term.(
      const run $ benches_arg $ srcs_arg $ raw_arg $ stress_seeds_arg
      $ strategies_arg $ cores_arg $ io_seed_arg $ jobs_arg $ no_cache_arg
      $ cache_dir_arg $ golden_arg $ json_arg $ fault_logs_arg
      $ no_fault_inject_arg $ max_truncations_arg $ max_flips_arg
      $ corpus_arg)

(* ------------------------------------------------------------------ *)
(* dynrace: dynamic detector runs with static cross-checking *)

let dynrace_cmd =
  let track_weak_arg =
    Arg.(
      value & flag
      & info [ "track-weak" ]
          ~doc:
            "Run the $(b,instrumented) program with weak locks counted \
             as synchronization — the transformed-program race-freedom \
             check (any race exits 2). Without this flag the \
             $(b,original) program runs with weak locks ignored and \
             every dynamic race is cross-checked against the static \
             report (an uncovered race exits 2).")
  in
  let run file seed cores io_seed strategy seeds track_weak profile_runs
      opts no_lockopt jobs no_cache cache_dir =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let io = Interp.Iomodel.random ~seed:io_seed in
    let seeds = match seeds with None -> [ seed ] | Some r -> seeds_list r in
    let prog = if track_weak then an.an_instrumented else an.an_prog in
    let races = ref 0 and uncovered = ref 0 and checks = ref 0 in
    List.iter
      (fun s ->
        let det = Dynrace.create ~track_weak () in
        let hooks = Dynrace.attach det (Interp.Engine.no_hooks ()) in
        let (_ : Interp.Engine.outcome) =
          Interp.Engine.run
            ~config:(config_of ~strategy s cores)
            ~hooks ~mode:Interp.Engine.Native ~io prog
        in
        checks := !checks + Dynrace.n_checks det;
        List.iter
          (fun (r : Dynrace.race) ->
            incr races;
            let covered =
              Hashtbl.mem an.an_report.racy_sids r.dr_sid1
              && Hashtbl.mem an.an_report.racy_sids r.dr_sid2
            in
            if not covered then incr uncovered;
            Fmt.pr "seed %d: %a [%s]@." s Dynrace.pp_race r
              (if covered then "covered" else "UNCOVERED"))
          (Dynrace.races det))
      seeds;
    Fmt.pr "%d run(s): %d dynamic race(s), %d uncovered, %d memory \
            operation(s) checked@."
      (List.length seeds) !races !uncovered !checks;
    if track_weak && !races > 0 then begin
      Fmt.pr "dynrace: instrumented program races with weak locks counted \
              as synchronization@.";
      exit issue_exit
    end;
    if !uncovered > 0 then begin
      Fmt.pr "dynrace: a dynamic race escapes the static report@.";
      exit issue_exit
    end;
    Fmt.pr "dynrace: OK@."
  in
  Cmd.v
    (Cmd.info "dynrace"
       ~doc:
         "Run the vector-clock dynamic race detector and cross-check \
          every dynamic race against RELAY's static report (the paper's \
          coverage oracle); with $(b,--track-weak), check the \
          instrumented program race-free under weak-lock synchronization"
       ~exits:
         (Cmd.Exit.info issue_exit
            ~doc:
              "a dynamic race is not statically covered, or (with \
               $(b,--track-weak)) the instrumented program raced"
         :: Cmd.Exit.defaults))
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ strategy_arg $ seeds_arg $ track_weak_arg $ profile_runs_arg
      $ opts_arg $ no_lockopt_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg)

(* ------------------------------------------------------------------ *)
(* refine: corpus-driven plan refinement *)

let refine_cmd =
  let corpus_arg =
    Arg.(
      required
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Corpus directory written by $(b,chimera stress --corpus)")
  in
  let min_coverage_arg =
    Arg.(
      value & opt int 2
      & info [ "min-coverage" ] ~docv:"N"
          ~doc:
            "Distinct recordings that must exercise both sides of a pair \
             before its never-racy evidence licenses a drop")
  in
  let out_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "o"; "out-dir" ] ~docv:"DIR"
          ~doc:"Directory for the $(i,NAME).refined.json deployment plans")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "List every static pair with its evidence and provenance: \
             dropped:never-racy, kept:witnessed, kept:unexercised, or \
             kept (shared lock)")
  in
  let no_validate_arg =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:
            "Skip the safety valve (re-recording every corpus cell under \
             the refined plan with the detector attached)")
  in
  let run corpus_dir min_coverage out_dir explain no_validate jobs no_cache
      cache_dir =
    let corpus =
      try Refine.Corpus.load ~dir:corpus_dir
      with Refine.Corpus.Bad msg ->
        Fmt.epr "chimera: corpus %s: %s@." corpus_dir msg;
        exit issue_exit
    in
    with_jobs jobs (fun pool ->
        let cache = cache_of ~no_cache ~cache_dir in
        let issues = ref 0 in
        List.iter
          (fun (e : Refine.Corpus.entry) ->
            (* reconstruct the analysis exactly as `stress` built it, so
               the plan digest recorded in the manifest can match *)
            let an, io =
              match e.ce_kind with
              | Refine.Corpus.Kbench ->
                  let b = Bench_progs.Registry.by_name e.ce_name in
                  let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
                  ( Chimera.Pipeline.analyze ~profile_runs:6
                      ~profile_io:(fun i ->
                        b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
                      ?pool ?cache
                      ~cache_tag:("stress:" ^ e.ce_name)
                      ~cache_log:cli_cache_log
                      (Minic.Parser.parse ~file:e.ce_name src),
                    b.b_io ~seed:42 ~scale:b.b_eval_scale )
              | Refine.Corpus.Ksrc ->
                  let path =
                    match e.ce_source with
                    | Some p -> p
                    | None ->
                        Fmt.epr
                          "chimera: corpus entry %s: source entry without \
                           a source path@."
                          e.ce_name;
                        exit issue_exit
                  in
                  ( Chimera.Pipeline.analyze ~profile_runs:6 ?pool ?cache
                      ~cache_log:cli_cache_log
                      (Minic.Parser.parse ~file:path (read_file path)),
                    Interp.Iomodel.random ~seed:e.ce_io_seed )
            in
            let digest = Refine.plan_digest an.an_plan in
            if digest <> e.ce_plan_digest then begin
              Fmt.epr
                "chimera: %s: corpus plan digest mismatch (recorded under \
                 %s, computed %s) — re-record the corpus@."
                e.ce_name e.ce_plan_digest digest;
              incr issues
            end
            else begin
              let obs =
                try
                  Refine.observe_corpus ?pool ~io
                    ~instrumented:an.an_instrumented
                    ~racy_sids:an.an_report.racy_sids corpus e
                with Refine.Corpus.Bad msg ->
                  Fmt.epr "chimera: corpus %s: %s@." e.ce_name msg;
                  exit issue_exit
              in
              let rf = Refine.refine ~min_coverage ~plan:an.an_plan obs in
              Fmt.pr "%s: %a@." e.ce_name Refine.pp_summary rf;
              if explain then
                List.iter
                  (fun pr -> Fmt.pr "  %a@." Refine.pp_pair_result pr)
                  rf.rf_pairs;
              mkdir_p out_dir;
              let path =
                Filename.concat out_dir (e.ce_name ^ ".refined.json")
              in
              write_file path
                (Refine.deployment_json
                   (Refine.deployment_of ~program:e.ce_name ~base:an.an_plan
                      rf));
              Fmt.epr "[refined plan -> %s]@." path;
              if not no_validate then begin
                let refined =
                  Instrument.Transform.apply an.an_prog rf.rf_plan
                in
                let jobs =
                  List.map
                    (fun (r : Refine.Corpus.recording) ->
                      (r.cr_seed, r.cr_strategy))
                    e.ce_recordings
                in
                let va =
                  Refine.validate ?pool ~cores:e.ce_cores ~io
                    ~report:an.an_report ~refined ~jobs ()
                in
                if va.va_violations <> [] then begin
                  List.iter
                    (fun v -> Fmt.pr "  %a@." Refine.pp_violation v)
                    va.va_violations;
                  incr issues
                end
                else
                  Fmt.pr
                    "  validate: %d cell(s) re-recorded, %d race(s) \
                     checked, clean@."
                    va.va_jobs va.va_races_checked
              end
            end)
          corpus.co_entries;
        if !issues > 0 then begin
          Fmt.pr "refine: %d issue(s)@." !issues;
          exit issue_exit
        end;
        Fmt.pr "refine: OK@.")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Close the static/dynamic loop: replay a stress corpus with the \
          race detector attached, aggregate per-pair evidence, drop the \
          weak locks proven never-racy at the coverage threshold, write \
          deployment plans, and validate the refined plans by \
          re-recording every corpus cell (any violation exits 2)"
       ~exits:
         (Cmd.Exit.info issue_exit
            ~doc:
              "a plan digest mismatch, damaged corpus, or safety-valve \
               violation (an uncovered or reintroduced race, or replay \
               divergence under the refined plan)"
         :: Cmd.Exit.defaults))
    Term.(
      const run $ corpus_arg $ min_coverage_arg $ out_dir_arg $ explain_arg
      $ no_validate_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg)

let cache_cmd =
  let stats_cmd =
    let run cache_dir =
      let c = Ancache.create ?dir:cache_dir () in
      let s = Ancache.stats c in
      Fmt.pr "dir: %s@.entries: %d@.bytes: %d@.stray tmp files: %d@."
        (Ancache.dir c) s.Ancache.st_entries s.Ancache.st_bytes
        s.Ancache.st_tmp
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print the cache directory, entry count, size, and the number \
            of stray writer temp files (crashed atomic writes)")
      Term.(const run $ cache_dir_arg)
  in
  let clear_cmd =
    let run cache_dir =
      let c = Ancache.create ?dir:cache_dir () in
      let tmp = List.length (Ancache.stray_tmp_files c) in
      let n = Ancache.clear c in
      Fmt.pr "removed %d entr%s%s from %s@." n
        (if n = 1 then "y" else "ies")
        (if tmp > 0 then Fmt.str " and %d stray tmp file(s)" tmp else "")
        (Ancache.dir c)
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:
           "Delete every entry in the analysis cache and sweep stray \
            writer temp files")
      Term.(const run $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the persistent analysis cache used by the \
          analyze-consuming subcommands")
    [ stats_cmd; clear_cmd ]

let () =
  let doc = "Chimera: hybrid program analysis for deterministic replay" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "chimera" ~version:"1.0.0" ~doc)
          [ races_cmd; plan_cmd; instrument_cmd; run_cmd; det_cmd;
            record_cmd; replay_cmd; trace_cmd; bench_cmd; dynrace_cmd;
            stress_cmd; refine_cmd; cache_cmd ]))
