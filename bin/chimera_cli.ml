(** The chimera command-line tool.

    Subcommands mirror the pipeline stages:

    - [races FILE]      — run RELAY and print the static race report
    - [plan FILE]       — print the weak-lock instrumentation plan
    - [instrument FILE] — print the instrumented program
    - [run FILE]        — execute natively (prints outputs)
    - [record FILE]     — analyze, instrument, record; write logs
    - [replay FILE]     — replay from recorded logs and verify determinism
    - [trace FILE]      — record + replay with event tracing; contention
                          report and stream-divergence diagnosis
    - [bench NAME]      — the same pipeline on a built-in benchmark

    MiniC sources are C-subset files (see README); built-in benchmark
    names: aget pfscan pbzip2 knot apache ocean water fft radix. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = Minic.Typecheck.parse_and_check ~file:path (read_file path)

let write_file name s =
  let oc = open_out_bin name in
  output_string oc s;
  close_out oc

let config_of seed cores =
  { Interp.Engine.default_config with seed; cores }

(* --trace-out support: a sink is created only when requested, so the
   default path runs with tracing fully disabled *)
let sink_for trace_out =
  Option.map (fun _ -> Trace.Sink.create ()) trace_out

let dump_trace trace_out sink =
  match (trace_out, sink) with
  | Some path, Some s ->
      let evs = Trace.Sink.events s in
      write_file path (Trace.to_chrome evs);
      Fmt.epr "[trace: %d events (%d dropped) -> %s]@." (List.length evs)
        (Trace.Sink.dropped s) path
  | _ -> ()

(* common args *)
let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed")

let cores_arg =
  Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Simulated cores")

let io_seed_arg =
  Arg.(value & opt int 42 & info [ "io-seed" ] ~doc:"Input-model seed")

let profile_runs_arg =
  Arg.(value & opt int 8 & info [ "profile-runs" ] ~doc:"Profiling runs")

let opts_arg =
  let opts_conv =
    Arg.enum
      [
        ("all", Instrument.Plan.all_opts);
        ("naive", Instrument.Plan.naive);
        ("func", Instrument.Plan.funcs_only);
        ("loop", Instrument.Plan.loops_only);
      ]
  in
  Arg.(value & opt opts_conv Instrument.Plan.all_opts
       & info [ "opts" ] ~doc:"Optimization set: all | naive | func | loop")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Trace the run and write a Chrome-trace (chrome://tracing) \
           JSON array of its events to $(docv). Timestamps are logical \
           per-thread step counts, so traces are replay-stable.")

let no_lockopt_arg =
  Arg.(
    value & flag
    & info [ "no-lockopt" ]
        ~doc:
          "Disable the interprocedural must-lockset elision and \
           instrument the raw plan")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the analysis out over $(docv) domains (SCC-scheduled \
           summaries, race scans, profiling runs, lockopt dataflow). \
           Output is byte-identical to $(b,-j 1).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Bypass the persistent analysis cache (neither read nor write)")

let cache_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Analysis cache directory. Defaults to \\$CHIMERA_CACHE_DIR, \
           else \\$XDG_CACHE_HOME/chimera, else ~/.cache/chimera.")

let cache_of ~no_cache ~cache_dir =
  if no_cache then None else Some (Ancache.create ?dir:cache_dir ())

(* damaged-entry diagnostics go to stderr in the same style as the
   corrupt-replay-log message; routine hit/miss lines stay quiet *)
let cli_cache_log msg =
  if String.length msg >= 8 && String.sub msg 0 8 = "warning:" then
    Fmt.epr "chimera: %s@." msg

let with_jobs jobs f =
  if jobs <= 1 then f None
  else Par.Pool.with_pool ~domains:jobs (fun p -> f (Some p))

let analyze_file ?opts ?mhp ?(profile_runs = 8) ?(no_lockopt = false)
    ~jobs ~no_cache ~cache_dir path =
  with_jobs jobs (fun pool ->
      Chimera.Pipeline.analyze ?opts ?mhp ~profile_runs
        ~lockopt:(not no_lockopt) ?pool
        ?cache:(cache_of ~no_cache ~cache_dir)
        ~cache_log:cli_cache_log
        (Minic.Parser.parse ~file:path (read_file path)))

(* ------------------------------------------------------------------ *)

let races_cmd =
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain-races" ]
          ~doc:
            "List every candidate pair with its provenance: kept, \
             pruned:mhp (sites can never run concurrently), or \
             pruned:escape (every raced-on object is confined by \
             fork/join ordering)")
  in
  let no_mhp_arg =
    Arg.(
      value & flag
      & info [ "no-mhp" ]
          ~doc:"Disable MHP pruning and print raw RELAY output")
  in
  let run file explain no_mhp jobs no_cache cache_dir =
    (* the report is profile-independent, so the cached pipeline entry is
       keyed with zero profiling runs and shared across repeated calls *)
    let an =
      analyze_file ~mhp:(not no_mhp) ~profile_runs:0 ~jobs ~no_cache
        ~cache_dir file
    in
    let report = an.Chimera.Pipeline.an_report in
    if explain then Fmt.pr "%a@." Relay.Detect.pp_report_explain report
    else Fmt.pr "%a@." Relay.Detect.pp_report report
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Static data-race report (RELAY + MHP fork/join pruning)")
    Term.(
      const run $ file_arg $ explain_arg $ no_mhp_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg)

let plan_cmd =
  let explain_plan_arg =
    Arg.(
      value & flag
      & info [ "explain-plan" ]
          ~doc:
            "List every weak-lock acquisition with its region, claimed \
             ranges, and lockopt provenance: kept, elided:dominated (a \
             dominating enclosing region already holds the lock), or \
             elided:callsite (every call site of the function holds it)")
  in
  let run file profile_runs opts no_lockopt jobs no_cache cache_dir
      explain_plan =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    if explain_plan then Fmt.pr "%a@." Lockopt.pp_explain an.an_lockopt
    else begin
      Fmt.pr "%a@." Instrument.Plan.pp_summary an.an_plan;
      Fmt.pr "%a@.@." Lockopt.pp_report an.an_lockopt;
      List.iter
        (fun (pd : Instrument.Plan.pair_decision) ->
          Fmt.pr "%a@.  lock %a@.  side1 %a (%s)@.  side2 %a (%s)@."
            Relay.Detect.pp_race_pair pd.pd_pair Minic.Ast.pp_weak_lock pd.pd_lock
            Instrument.Plan.pp_region pd.pd_s1.sd_region pd.pd_s1.sd_reason
            Instrument.Plan.pp_region pd.pd_s2.sd_region pd.pd_s2.sd_reason)
        an.an_plan.pl_decisions
    end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Weak-lock granularity plan (profiling + bounds)")
    Term.(
      const run $ file_arg $ profile_runs_arg $ opts_arg $ no_lockopt_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg $ explain_plan_arg)

let instrument_cmd =
  let run file profile_runs opts no_lockopt jobs no_cache cache_dir =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    print_string (Minic.Pretty.program_to_string an.an_instrumented)
  in
  Cmd.v (Cmd.info "instrument" ~doc:"Print the weak-lock-instrumented program")
    Term.(
      const run $ file_arg $ profile_runs_arg $ opts_arg $ no_lockopt_arg
      $ jobs_arg $ no_cache_arg $ cache_dir_arg)

let print_outcome (o : Interp.Engine.outcome) =
  List.iter (fun (_, v) -> Fmt.pr "%d@." v) o.o_outputs;
  List.iter
    (fun (p, m) -> Fmt.epr "fault in %a: %s@." Runtime.Key.pp_tid_path p m)
    o.o_faults;
  Fmt.epr "[%d simulated ticks, %d statements, %d threads]@." o.o_ticks
    o.o_stats.n_stmts
    (List.length o.o_steps)

let run_cmd =
  let run file seed cores io_seed trace_out =
    let sink = sink_for trace_out in
    let o =
      Chimera.Runner.native ~config:(config_of seed cores) ?sink
        ~io:(Interp.Iomodel.random ~seed:io_seed) (load file)
    in
    print_outcome o;
    dump_trace trace_out sink
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a MiniC program natively")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ trace_out_arg)

let det_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let o =
      Chimera.Runner.deterministic ~config:(config_of seed cores)
        ~io:(Interp.Iomodel.random ~seed:io_seed) an.an_instrumented
    in
    print_outcome o
  in
  Cmd.v
    (Cmd.info "det"
       ~doc:
         "Instrument and run under deterministic logical-time arbitration \
          (same output for every --seed, no logs)")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg)

let record_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir out trace_out =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let sink = sink_for trace_out in
    let r =
      Chimera.Runner.record ~config:(config_of seed cores) ?sink
        ~io:(Interp.Iomodel.random ~seed:io_seed) an.an_instrumented
    in
    print_outcome r.rc_outcome;
    write_file (out ^ ".input.log") (Replay.Log.encode_input_log r.rc_log);
    write_file (out ^ ".order.log") (Replay.Log.encode_order_log r.rc_log);
    Fmt.epr "[logs: input %dB (%dB gz), order %dB (%dB gz)]@."
      r.rc_input_log_raw r.rc_input_log_z r.rc_order_log_raw r.rc_order_log_z;
    dump_trace trace_out sink
  in
  let out_arg =
    Arg.(value & opt string "chimera" & info [ "o" ] ~doc:"Log file prefix")
  in
  Cmd.v (Cmd.info "record" ~doc:"Instrument and record an execution")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg $ out_arg $ trace_out_arg)

(* exit code for a log that fails to decode (distinct from cmdliner's
   reserved 123-125 range and from program exit codes) *)
let corrupt_log_exit = 3

let replay_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir logs trace_out =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let log =
      try
        Replay.Log.decode
          (read_file (logs ^ ".input.log"))
          (read_file (logs ^ ".order.log"))
      with Replay.Log.Corrupt msg ->
        Fmt.epr "chimera: corrupt replay log: %s@." msg;
        exit corrupt_log_exit
    in
    let sink = sink_for trace_out in
    let o =
      Chimera.Runner.replay ~config:(config_of seed cores) ?sink
        ~io:(Interp.Iomodel.random ~seed:io_seed) an.an_instrumented log
    in
    print_outcome o;
    dump_trace trace_out sink
  in
  let logs_arg =
    Arg.(value & opt string "chimera" & info [ "logs" ] ~doc:"Log file prefix")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a recorded execution"
       ~exits:
         (Cmd.Exit.info corrupt_log_exit
            ~doc:"the recorded logs are truncated or corrupt"
         :: Cmd.Exit.defaults))
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg $ logs_arg $ trace_out_arg)

let trace_cmd =
  let run file seed cores io_seed profile_runs opts no_lockopt jobs no_cache
      cache_dir top trace_out =
    let an =
      analyze_file ~opts ~profile_runs ~no_lockopt ~jobs ~no_cache ~cache_dir
        file
    in
    let config = config_of seed cores in
    let io = Interp.Iomodel.random ~seed:io_seed in
    let rec_sink = Trace.Sink.create () in
    let r =
      Chimera.Runner.record ~config ~sink:rec_sink ~io an.an_instrumented
    in
    let rep_sink = Trace.Sink.create () in
    let o =
      Chimera.Runner.replay
        ~config:{ config with seed = config.seed + 7919 }
        ~sink:rep_sink ~io an.an_instrumented r.rc_log
    in
    let rec_events = Trace.Sink.events rec_sink in
    Fmt.pr "@[<v>%a@]@."
      (Trace.pp_report ~top)
      (Trace.summarize ~dropped:(Trace.Sink.dropped rec_sink) rec_events);
    let st = r.rc_outcome.o_stats in
    Fmt.pr "timeout preemptions: %d | handoffs served: %d, expired: %d@."
      st.n_forced st.n_handoff_served st.n_handoff_expired;
    (match trace_out with
    | Some path ->
        write_file path (Trace.to_chrome rec_events);
        Fmt.epr "[trace: %d events -> %s]@." (List.length rec_events) path
    | None -> ());
    let stream_div () =
      Trace.first_divergence ~recorded:rec_events
        ~replayed:(Trace.Sink.events rep_sink)
    in
    match Chimera.Runner.same_execution r.rc_outcome o with
    | Ok () -> (
        match stream_div () with
        | None ->
            Fmt.pr "record and replay stable event streams: IDENTICAL@."
        | Some d ->
            Fmt.pr "event streams diverge: %a@." Trace.pp_divergence d;
            exit 1)
    | Error d -> (
        Fmt.pr "replay DIVERGED: %a@." Chimera.Runner.pp_divergence d;
        (match stream_div () with
        | Some dv -> Fmt.pr "first diverging event: %a@." Trace.pp_divergence dv
        | None ->
            Fmt.pr
              "no diverging trace event (data-only divergence: same \
               control flow and synchronization, different values)@.");
        exit 1)
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Locks to list in the contention report")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record with event tracing, replay under a shifted scheduler \
          seed, print per-lock/per-granularity contention metrics, and \
          verify the stable event streams match")
    Term.(
      const run $ file_arg $ seed_arg $ cores_arg $ io_seed_arg
      $ profile_runs_arg $ opts_arg $ no_lockopt_arg $ jobs_arg
      $ no_cache_arg $ cache_dir_arg $ top_arg $ trace_out_arg)

let bench_cmd =
  let run name seed cores workers no_lockopt jobs no_cache cache_dir =
    let b = Bench_progs.Registry.by_name name in
    let src = b.b_source ~workers ~scale:b.b_eval_scale in
    let an =
      with_jobs jobs (fun pool ->
          Chimera.Pipeline.analyze ~profile_runs:8 ~lockopt:(not no_lockopt)
            ~profile_io:(fun i ->
              b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
            ?pool
            ?cache:(cache_of ~no_cache ~cache_dir)
            ~cache_tag:("bench:" ^ name)
            ~cache_log:cli_cache_log
            (Minic.Parser.parse ~file:name src))
    in
    let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
    let config = config_of seed cores in
    let ov, r = Chimera.Runner.measure ~config ~io ~original:an.an_prog
        ~instrumented:an.an_instrumented () in
    Fmt.pr "%s: %d races, %a@." name
      (List.length an.an_report.races)
      Instrument.Plan.pp_summary an.an_plan;
    Fmt.pr "%a@." Lockopt.pp_report an.an_lockopt;
    Fmt.pr "native %d ticks | record %d ticks (%.2fx) | replay %d ticks (%.2fx)@."
      ov.ov_native_ticks ov.ov_record_ticks ov.ov_record ov.ov_replay_ticks
      ov.ov_replay;
    Fmt.pr "logs: input %dB gz | order %dB gz@." r.rc_input_log_z r.rc_order_log_z;
    match
      Chimera.Runner.same_execution r.rc_outcome
        (Chimera.Runner.replay
           ~config:{ config with seed = config.seed + 7919 }
           ~io an.an_instrumented r.rc_log)
    with
    | Ok () -> Fmt.pr "replay (different scheduler seed): DETERMINISTIC@."
    | Error d -> (
        Fmt.pr "replay DIVERGED: %a@." Chimera.Runner.pp_divergence d;
        (* localize it: diff the recorded vs replayed event streams *)
        match
          Chimera.Runner.first_trace_divergence ~config ~io
            an.an_instrumented r.rc_log
        with
        | Some dv ->
            Fmt.pr "first diverging event: %a@." Trace.pp_divergence dv
        | None -> Fmt.pr "no diverging trace event (data-only)@.")
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (Arg.enum (List.map (fun n -> (n, n)) Bench_progs.Registry.names))) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker threads")
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run the full pipeline on a built-in benchmark")
    Term.(
      const run $ name_arg $ seed_arg $ cores_arg $ workers_arg
      $ no_lockopt_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg)

let cache_cmd =
  let stats_cmd =
    let run cache_dir =
      let c = Ancache.create ?dir:cache_dir () in
      let s = Ancache.stats c in
      Fmt.pr "dir: %s@.entries: %d@.bytes: %d@." (Ancache.dir c)
        s.Ancache.st_entries s.Ancache.st_bytes
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print the cache directory, entry count and size")
      Term.(const run $ cache_dir_arg)
  in
  let clear_cmd =
    let run cache_dir =
      let c = Ancache.create ?dir:cache_dir () in
      let n = Ancache.clear c in
      Fmt.pr "removed %d entr%s from %s@." n
        (if n = 1 then "y" else "ies")
        (Ancache.dir c)
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete every entry in the analysis cache")
      Term.(const run $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the persistent analysis cache used by the \
          analyze-consuming subcommands")
    [ stats_cmd; clear_cmd ]

let () =
  let doc = "Chimera: hybrid program analysis for deterministic replay" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "chimera" ~version:"1.0.0" ~doc)
          [ races_cmd; plan_cmd; instrument_cmd; run_cmd; det_cmd;
            record_cmd; replay_cmd; trace_cmd; bench_cmd; cache_cmd ]))
