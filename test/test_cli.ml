(** Smoke tests for [bin/chimera_cli]: every subcommand runs end-to-end
    on a small racy program, with exit codes and the key output lines
    checked. The tests shell out to the built executable (dune injects
    it as a dependency; [CHIMERA_CLI] overrides the path), write all
    artifacts under [Filename.temp_file] names, and so are safe to run
    concurrently with other suites. *)

let exe_path () =
  match Sys.getenv_opt "CHIMERA_CLI" with
  | Some p -> Some p
  | None ->
      List.find_opt Sys.file_exists
        [
          (* cwd under dune runtest is _build/default/test *)
          Filename.concat Filename.parent_dir_name "bin/chimera_cli.exe";
          (* cwd under `dune exec test/par_runner.exe` is the project root *)
          "_build/default/bin/chimera_cli.exe";
        ]

let with_exe f =
  match exe_path () with
  | Some exe -> f exe
  | None -> Alcotest.skip () (* not built: e.g. ran outside dune *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* every invocation gets a private throwaway cache dir (analysis caching
   defaults on), so the tests never read or pollute the user's real cache
   and runs stay independent unless a test opts into sharing *)
let fresh_cache_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-cli-test-cache-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(** Run [exe args], returning (exit code, stdout, stderr). *)
let run_cli ?cache_dir exe args =
  let out = Filename.temp_file "chimera_cli" ".out" in
  let err = Filename.temp_file "chimera_cli" ".err" in
  let cdir = match cache_dir with Some d -> d | None -> fresh_cache_dir () in
  let cmd =
    Fmt.str "CHIMERA_CACHE_DIR=%s %s %s > %s 2> %s" (Filename.quote cdir)
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let o = read_file out and e = read_file err in
  Sys.remove out;
  Sys.remove err;
  if cache_dir = None then rm_rf cdir;
  (code, o, e)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Fmt.str "%s contains %S" what needle)
    true (contains hay needle)

(* the canonical racy program: two threads increment a shared counter
   through a read-modify-write, under no lock *)
let racy_src =
  "int counter = 0;\n\
   void w(int *u) {\n\
  \  int i; int tmp;\n\
  \  for (i = 0; i < 40; i++) { tmp = counter; counter = tmp + 1; }\n\
   }\n\
   int main() { int t1; int t2;\n\
  \  t1 = spawn(w, &counter); t2 = spawn(w, &counter);\n\
  \  join(t1); join(t2);\n\
  \  output(counter);\n\
  \  return 0; }\n"

let with_src f =
  let mc = Filename.temp_file "chimera_cli" ".mc" in
  Out_channel.with_open_bin mc (fun oc -> output_string oc racy_src);
  Fun.protect ~finally:(fun () -> Sys.remove mc) (fun () -> f mc)

(* ------------------------------------------------------------------ *)

let test_races () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let code, out, _ = run_cli exe [ "races"; mc ] in
  Alcotest.(check int) "races exit code" 0 code;
  check_contains "races stdout" out "race pairs";
  check_contains "races stdout" out "roots:";
  (* with MHP off the candidate count must still be reported *)
  let code, out_raw, _ = run_cli exe [ "races"; mc; "--no-mhp" ] in
  Alcotest.(check int) "races --no-mhp exit code" 0 code;
  check_contains "races --no-mhp stdout" out_raw "race pairs";
  (* explain mode lists provenance per candidate *)
  let code, out_ex, _ = run_cli exe [ "races"; mc; "--explain-races" ] in
  Alcotest.(check int) "races --explain-races exit code" 0 code;
  check_contains "explain stdout" out_ex "candidate pairs";
  check_contains "explain stdout" out_ex "[kept]"

let test_plan_instrument () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let code, out, _ = run_cli exe [ "plan"; mc; "--profile-runs"; "4" ] in
  Alcotest.(check int) "plan exit code" 0 code;
  check_contains "plan stdout" out "lock";
  let code, out, _ = run_cli exe [ "instrument"; mc; "--profile-runs"; "4" ] in
  Alcotest.(check int) "instrument exit code" 0 code;
  check_contains "instrument stdout" out "__weak_enter";
  check_contains "instrument stdout" out "int main"

let test_run () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let code, out, err = run_cli exe [ "run"; mc ] in
  Alcotest.(check int) "run exit code" 0 code;
  Alcotest.(check bool) "run printed the counter" true (String.trim out <> "");
  check_contains "run stderr" err "simulated ticks"

let test_record_replay () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let prefix = Filename.temp_file "chimera_cli" ".logs" in
  let input_log = prefix ^ ".input.log" and order_log = prefix ^ ".order.log" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ prefix; input_log; order_log ])
  @@ fun () ->
  let code, rec_out, rec_err =
    run_cli exe
      [ "record"; mc; "--seed"; "5"; "--profile-runs"; "4"; "-o"; prefix ]
  in
  Alcotest.(check int) "record exit code" 0 code;
  Alcotest.(check bool) "input log written" true (Sys.file_exists input_log);
  Alcotest.(check bool) "order log written" true (Sys.file_exists order_log);
  check_contains "record stderr" rec_err "logs:";
  (* replay under a different scheduler seed must reproduce the
     recorded outputs exactly *)
  let code, rep_out, _ =
    run_cli exe
      [ "replay"; mc; "--seed"; "12"; "--profile-runs"; "4"; "--logs"; prefix ]
  in
  Alcotest.(check int) "replay exit code" 0 code;
  Alcotest.(check string) "replay outputs == recorded outputs" rec_out rep_out

let test_det () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let det seed =
    let code, out, _ =
      run_cli exe [ "det"; mc; "--profile-runs"; "4"; "--seed"; seed ]
    in
    Alcotest.(check int) (Fmt.str "det --seed %s exit code" seed) 0 code;
    out
  in
  Alcotest.(check string)
    "det output is seed-independent" (det "1") (det "23")

let test_trace () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let out_json = Filename.temp_file "chimera_cli" ".trace.json" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists out_json then Sys.remove out_json)
  @@ fun () ->
  let code, out, _ =
    run_cli exe
      [ "trace"; mc; "--profile-runs"; "4"; "--trace-out"; out_json ]
  in
  Alcotest.(check int) "trace exit code" 0 code;
  check_contains "trace stdout" out "events";
  check_contains "trace stdout" out "handoffs served";
  check_contains "trace stdout" out
    "record and replay stable event streams: IDENTICAL";
  let j = read_file out_json in
  Alcotest.(check bool) "chrome JSON written" true
    (String.length j > 0 && j.[0] = '[');
  check_contains "chrome JSON" j "thread_name"

let test_replay_corrupt_log () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let prefix = Filename.temp_file "chimera_cli" ".logs" in
  let input_log = prefix ^ ".input.log" and order_log = prefix ^ ".order.log" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ prefix; input_log; order_log ])
  @@ fun () ->
  let code, _, _ =
    run_cli exe [ "record"; mc; "--profile-runs"; "4"; "-o"; prefix ]
  in
  Alcotest.(check int) "record exit code" 0 code;
  (* smash the order log: an unterminated over-long varint *)
  Out_channel.with_open_bin order_log (fun oc ->
      output_string oc (String.make 10 '\xff'));
  let code, _, err =
    run_cli exe [ "replay"; mc; "--profile-runs"; "4"; "--logs"; prefix ]
  in
  Alcotest.(check int) "corrupt log exit code" 3 code;
  check_contains "replay stderr" err "corrupt"

let test_bad_file () =
  with_exe @@ fun exe ->
  let code, _, _ = run_cli exe [ "races"; "/nonexistent/no-such.mc" ] in
  Alcotest.(check bool) "missing file is an error" true (code <> 0)

let test_cache_subcommand () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let cdir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> rm_rf cdir) @@ fun () ->
  (* cold run populates the cache; the warm run must print the same plan *)
  let args = [ "plan"; mc; "--profile-runs"; "4"; "--cache-dir"; cdir ] in
  let code, cold_out, _ = run_cli ~cache_dir:cdir exe args in
  Alcotest.(check int) "cold plan exit code" 0 code;
  let code, warm_out, warm_err = run_cli ~cache_dir:cdir exe args in
  Alcotest.(check int) "warm plan exit code" 0 code;
  Alcotest.(check string) "warm plan == cold plan" cold_out warm_out;
  Alcotest.(check string) "warm run is quiet on stderr" "" warm_err;
  let code, stats_out, _ =
    run_cli ~cache_dir:cdir exe [ "cache"; "stats"; "--cache-dir"; cdir ]
  in
  Alcotest.(check int) "cache stats exit code" 0 code;
  check_contains "cache stats stdout" stats_out "entries: 1";
  (* a damaged entry degrades to recomputation: same stdout, a one-line
     warning on stderr, exit 0 *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".anc" then
        Out_channel.with_open_bin (Filename.concat cdir f) (fun oc ->
            output_string oc "CHIMERA-ANCACHE/1\ntrunca"))
    (Sys.readdir cdir);
  let code, out, err = run_cli ~cache_dir:cdir exe args in
  Alcotest.(check int) "damaged-entry exit code" 0 code;
  Alcotest.(check string) "damaged entry recomputes the same plan"
    cold_out out;
  check_contains "damaged-entry stderr" err "warning:";
  (* --no-cache bypasses the store entirely *)
  let code, out, _ =
    run_cli ~cache_dir:cdir exe
      [ "plan"; mc; "--profile-runs"; "4"; "--no-cache" ]
  in
  Alcotest.(check int) "--no-cache exit code" 0 code;
  Alcotest.(check string) "--no-cache plan matches" cold_out out;
  let code, clear_out, _ =
    run_cli ~cache_dir:cdir exe [ "cache"; "clear"; "--cache-dir"; cdir ]
  in
  Alcotest.(check int) "cache clear exit code" 0 code;
  check_contains "cache clear stdout" clear_out "removed";
  let code, stats_out, _ =
    run_cli ~cache_dir:cdir exe [ "cache"; "stats"; "--cache-dir"; cdir ]
  in
  Alcotest.(check int) "cache stats after clear exit code" 0 code;
  check_contains "cache stats after clear" stats_out "entries: 0"

let test_jobs_identical () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let run j =
    let code, out, _ =
      run_cli exe
        [ "plan"; mc; "--profile-runs"; "4"; "--no-cache"; "-j"; j ]
    in
    Alcotest.(check int) (Fmt.str "plan -j %s exit code" j) 0 code;
    out
  in
  Alcotest.(check string) "-j 4 plan is byte-identical to -j 1" (run "1")
    (run "4")

let test_record_replay_sweep () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let prefix = Filename.temp_file "chimera_cli" ".logs" in
  let seed_files =
    List.concat_map
      (fun s ->
        [
          Fmt.str "%s.%d.input.log" prefix s; Fmt.str "%s.%d.order.log" prefix s;
        ])
      [ 1; 2; 3 ]
  in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        (prefix :: seed_files))
  @@ fun () ->
  (* a --seeds sweep records one log pair per seed under per-seed
     prefixes, with a content-addressed dedup summary *)
  let code, out, _ =
    run_cli exe
      [
        "record"; mc; "--profile-runs"; "4"; "--seeds"; "1..3"; "--strategy";
        "storm"; "-o"; prefix;
      ]
  in
  Alcotest.(check int) "record sweep exit code" 0 code;
  check_contains "record sweep stdout" out "recorded 3 seeds";
  List.iter
    (fun f ->
      Alcotest.(check bool) (Fmt.str "%s written" f) true (Sys.file_exists f))
    seed_files;
  (* the same log replayed under every seed in a range must be one and
     the same execution, even across a record/replay strategy change *)
  let code, out, _ =
    run_cli exe
      [
        "replay"; mc; "--profile-runs"; "4"; "--logs"; prefix ^ ".2";
        "--seeds"; "5..8";
      ]
  in
  Alcotest.(check int) "replay sweep exit code" 0 code;
  check_contains "replay sweep stdout" out "replay under 4 seeds: IDENTICAL"

let test_stress_matrix () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let json = Filename.temp_file "chimera_cli" ".stress.json" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists json then Sys.remove json)
  @@ fun () ->
  (* instrumented source: every distinct recording must replay clean,
     and fault injection must never crash the decoder/replayer *)
  let code, out, _ =
    run_cli exe
      [
        "stress"; "--src"; mc; "--seeds"; "1..2"; "--max-truncations"; "8";
        "--max-flips"; "4"; "--json"; json;
      ]
  in
  Alcotest.(check int) "stress exit code" 0 code;
  check_contains "stress stdout" out
    "stress matrix: 1 program(s) x 2 seed(s) x 3 strategies";
  check_contains "stress stdout" out "distinct logs";
  check_contains "stress stdout" out "fault injection";
  check_contains "stress stdout" out "stress: OK";
  let j = read_file json in
  check_contains "stress JSON" j "\"jobs\": 6";
  check_contains "stress JSON" j "\"crashes\": []"

let test_stress_raw_divergence () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  (* --raw records the uninstrumented racy program: the negative control
     whose replays are expected to diverge, driving the exit-2 path *)
  let code, out, _ =
    run_cli exe
      [ "stress"; "--src"; mc; "--raw"; "--seeds"; "1..4"; "--no-fault-inject" ]
  in
  Alcotest.(check int) "raw stress exit code" 2 code;
  check_contains "raw stress stdout" out "replay diverged";
  check_contains "raw stress stdout" out "issue(s)"

let test_stress_fault_logs () =
  with_exe @@ fun exe ->
  with_src @@ fun mc ->
  let prefix = Filename.temp_file "chimera_cli" ".logs" in
  let input_log = prefix ^ ".input.log" and order_log = prefix ^ ".order.log" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ prefix; input_log; order_log ])
  @@ fun () ->
  let code, _, _ =
    run_cli exe [ "record"; mc; "--profile-runs"; "4"; "-o"; prefix ]
  in
  Alcotest.(check int) "record exit code" 0 code;
  (* a valid pair decode-validates up front, then the matrix runs *)
  let code, out, _ =
    run_cli exe
      [
        "stress"; "--fault-logs"; prefix; "--src"; mc; "--seeds"; "1..1";
        "--strategies"; "storm"; "--no-fault-inject";
      ]
  in
  Alcotest.(check int) "valid --fault-logs exit code" 0 code;
  check_contains "stress stdout" out "decode OK";
  check_contains "stress stdout" out "x 1 strategy";
  check_contains "stress stdout" out "stress: OK";
  (* a truncated pair is rejected before any recording work: exit 3 *)
  Out_channel.with_open_bin order_log (fun oc ->
      output_string oc (String.make 10 '\xff'));
  let code, _, err = run_cli exe [ "stress"; "--fault-logs"; prefix ] in
  Alcotest.(check int) "corrupt --fault-logs exit code" 3 code;
  check_contains "stress stderr" err "corrupt replay log"

let suite =
  [
    Alcotest.test_case "races / --no-mhp / --explain-races" `Quick test_races;
    Alcotest.test_case "plan + instrument" `Quick test_plan_instrument;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "record + replay" `Quick test_record_replay;
    Alcotest.test_case "det (seed-independent)" `Quick test_det;
    Alcotest.test_case "trace + --trace-out" `Quick test_trace;
    Alcotest.test_case "replay rejects corrupt log" `Quick
      test_replay_corrupt_log;
    Alcotest.test_case "bad input file" `Quick test_bad_file;
    Alcotest.test_case "cache subcommand + damaged-entry fallback" `Quick
      test_cache_subcommand;
    Alcotest.test_case "-j N output identical to -j 1" `Quick
      test_jobs_identical;
    Alcotest.test_case "record --seeds sweep + replay-seed sweep" `Quick
      test_record_replay_sweep;
    Alcotest.test_case "stress matrix + fault injection + --json" `Quick
      test_stress_matrix;
    Alcotest.test_case "stress --raw negative control exits 2" `Quick
      test_stress_raw_divergence;
    Alcotest.test_case "stress --fault-logs valid / corrupt" `Quick
      test_stress_fault_logs;
  ]
