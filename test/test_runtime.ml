(** Tests for the runtime substrate: sync primitive state machines, the
    weak-lock manager (range compatibility, single-conflicting-holder
    invariant, timeout handoff), and qcheck properties over random
    acquisition sequences. *)

open Runtime
open Minic.Ast

let addr name = { Key.a_origin = Key.OGlobal name; a_off = 0 }

(* ------------------------------------------------------------------ *)
(* Mutex / barrier / cond *)

let test_mutex_basic () =
  let m = Sync.Mutex.create () in
  let k = addr "m" in
  Alcotest.(check bool) "acquire free" true
    (Sync.Mutex.acquire m k ~tid:1 = `Acquired);
  Alcotest.(check bool) "second blocks" true
    (Sync.Mutex.acquire m k ~tid:2 = `Blocked);
  (match Sync.Mutex.release m k ~tid:1 with
  | `Released [ 2 ] -> ()
  | _ -> Alcotest.fail "waiter not returned");
  Alcotest.(check bool) "waiter acquires" true
    (Sync.Mutex.acquire m k ~tid:2 = `Acquired)

let test_mutex_not_owner () =
  let m = Sync.Mutex.create () in
  let k = addr "m" in
  ignore (Sync.Mutex.acquire m k ~tid:1);
  Alcotest.(check bool) "foreign release rejected" true
    (Sync.Mutex.release m k ~tid:2 = `Not_owner)

let test_barrier_trip () =
  let b = Sync.Barrier.create () in
  let k = addr "b" in
  Sync.Barrier.init b k ~count:3;
  Alcotest.(check bool) "1st blocks" true (Sync.Barrier.wait b k ~tid:1 = `Blocked);
  Alcotest.(check bool) "2nd blocks" true (Sync.Barrier.wait b k ~tid:2 = `Blocked);
  (match Sync.Barrier.wait b k ~tid:3 with
  | `Released tids ->
      Alcotest.(check (list int)) "all released" [ 1; 2; 3 ] (List.sort compare tids)
  | `Blocked -> Alcotest.fail "barrier failed to trip");
  (* next generation starts fresh *)
  Alcotest.(check bool) "gen 2 blocks again" true
    (Sync.Barrier.wait b k ~tid:1 = `Blocked)

let test_cond_fifo () =
  let c = Sync.Cond.create () in
  let k = addr "c" in
  Sync.Cond.wait c k ~tid:5;
  Sync.Cond.wait c k ~tid:6;
  Alcotest.(check (option int)) "signal wakes FIFO head" (Some 5)
    (Sync.Cond.signal c k);
  Alcotest.(check (list int)) "broadcast drains" [ 6 ] (Sync.Cond.broadcast c k);
  Alcotest.(check (option int)) "empty signal" None (Sync.Cond.signal c k)

(* ------------------------------------------------------------------ *)
(* Weak locks *)

let wl id = { wl_id = id; wl_gran = Gloop }
let range ?(write = true) b lo hi =
  { Weaklock.rg_block = b; rg_lo = lo; rg_hi = hi; rg_write = write }

let test_weak_total_excludes () =
  let t = Weaklock.create () in
  Alcotest.(check bool) "t1 total acquires" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] = `Acquired);
  (match Weaklock.acquire t (wl 1) ~tid:2 ~claim:[] with
  | `Blocked [ 1 ] -> ()
  | _ -> Alcotest.fail "total claims must conflict");
  ignore (Weaklock.release t (wl 1) ~tid:1);
  Alcotest.(check bool) "after release" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[] = `Acquired)

let test_weak_disjoint_ranges_parallel () =
  let t = Weaklock.create () in
  Alcotest.(check bool) "t1 [0..7]" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[ range 1 0 7 ] = `Acquired);
  Alcotest.(check bool) "t2 [8..15] concurrent" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[ range 1 8 15 ] = `Acquired);
  Alcotest.(check bool) "t3 [4..9] conflicts with both" true
    (match Weaklock.acquire t (wl 1) ~tid:3 ~claim:[ range 1 4 9 ] with
    | `Blocked owners -> List.sort compare owners = [ 1; 2 ]
    | `Acquired -> false)

let test_weak_ranges_different_blocks () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[ range 1 0 100 ]);
  Alcotest.(check bool) "other block is disjoint" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[ range 2 0 100 ] = `Acquired)

let test_weak_readers_share () =
  let t = Weaklock.create () in
  Alcotest.(check bool) "reader 1" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[ range ~write:false 1 0 50 ]
    = `Acquired);
  Alcotest.(check bool) "overlapping reader 2 shares" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[ range ~write:false 1 10 60 ]
    = `Acquired);
  Alcotest.(check bool) "overlapping writer blocks" true
    (match Weaklock.acquire t (wl 1) ~tid:3 ~claim:[ range 1 20 30 ] with
    | `Blocked _ -> true
    | `Acquired -> false);
  Alcotest.(check bool) "disjoint writer shares" true
    (Weaklock.acquire t (wl 1) ~tid:4 ~claim:[ range 1 70 80 ] = `Acquired)

let test_weak_total_vs_range () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[ range 1 0 7 ]);
  Alcotest.(check bool) "total conflicts with any range" true
    (match Weaklock.acquire t (wl 1) ~tid:2 ~claim:[] with
    | `Blocked _ -> true
    | `Acquired -> false)

let test_weak_force_release_handoff () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]) |> ignore;
  (* tid 2 is waiting; preempt tid 1 with handoff *)
  let woken = Weaklock.force_release t (wl 1) ~owner:1 in
  Alcotest.(check (list int)) "waiter woken" [ 2 ] woken;
  (* the preempted owner must NOT re-win before the waiter *)
  Alcotest.(check bool) "owner blocked by handoff" true
    (match Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] with
    | `Blocked _ -> true
    | `Acquired -> false);
  Alcotest.(check bool) "waiter acquires" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[] = `Acquired);
  ignore (Weaklock.release t (wl 1) ~tid:2);
  Alcotest.(check bool) "owner reacquires after handoff served" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] = `Acquired)

let test_weak_clear_pending () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  ignore (Weaklock.force_release t (wl 1) ~owner:1);
  Weaklock.clear_pending t (wl 1);
  Alcotest.(check bool) "reservation expired" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] = `Acquired)

let test_weak_force_release_no_handoff () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  let woken = Weaklock.force_release ~handoff:false t (wl 1) ~owner:1 in
  Alcotest.(check (list int)) "waiter woken" [ 2 ] woken;
  (* no reservation was left: the preempted owner may re-win the race *)
  Alcotest.(check bool) "owner reacquires without a fence" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] = `Acquired)

let test_weak_cancel_clears_reservation () =
  (* regression: cancel_wait used to drop the tid from the waiter queue
     but leave its handoff reservation, wedging the lock forever *)
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  ignore (Weaklock.force_release t (wl 1) ~owner:1);
  Weaklock.cancel_wait t (wl 1) ~tid:2;
  Alcotest.(check int) "queue drained" 0 (Weaklock.waiter_count t (wl 1));
  Alcotest.(check bool) "stale reservation does not wedge the lock" true
    (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[] = `Acquired)

let test_weak_selective_wake () =
  (* regression: release used to wake the whole queue (thundering herd);
     it must wake only waiters compatible with the remaining holders and
     keep the rest in FIFO order *)
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[ range 1 0 4 ]);
  ignore (Weaklock.acquire t (wl 1) ~tid:5 ~claim:[ range 1 10 14 ]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[ range 1 0 4 ]);
  ignore (Weaklock.acquire t (wl 1) ~tid:3 ~claim:[ range 1 10 14 ]);
  ignore (Weaklock.acquire t (wl 1) ~tid:4 ~claim:[ range 1 2 3 ]);
  let woken = Weaklock.release t (wl 1) ~tid:1 in
  (* t3 still conflicts with holder t5: it must stay queued *)
  Alcotest.(check (list int)) "only compatible waiters woken" [ 2; 4 ] woken;
  Alcotest.(check int) "incompatible waiter kept" 1
    (Weaklock.waiter_count t (wl 1));
  Alcotest.(check bool) "woken waiter acquires" true
    (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[ range 1 0 4 ] = `Acquired);
  let woken = Weaklock.release t (wl 1) ~tid:5 in
  Alcotest.(check (list int)) "kept waiter woken on its conflict" [ 3 ] woken

let test_weak_handoff_counters () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  ignore (Weaklock.force_release t (wl 1) ~owner:1);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  Alcotest.(check int) "reservation consumed" 1 t.Weaklock.total_handoff_served;
  ignore (Weaklock.release t (wl 1) ~tid:2);
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.acquire t (wl 1) ~tid:2 ~claim:[]);
  ignore (Weaklock.force_release t (wl 1) ~owner:1);
  Weaklock.clear_pending t (wl 1);
  Alcotest.(check int) "reservation expired" 1 t.Weaklock.total_handoff_expired;
  Alcotest.(check int) "served unchanged" 1 t.Weaklock.total_handoff_served

let test_weak_stats () =
  let t = Weaklock.create () in
  ignore (Weaklock.acquire t (wl 1) ~tid:1 ~claim:[]);
  ignore (Weaklock.release t (wl 1) ~tid:1);
  ignore (Weaklock.acquire t (wl 2) ~tid:1 ~claim:[]);
  Alcotest.(check int) "acquires" 2 t.Weaklock.total_acquires;
  Alcotest.(check int) "releases" 1 t.Weaklock.total_releases

(* property: after any random sequence of acquire/release, the holders of
   every lock are pairwise compatible (no two conflicting holders) *)
let prop_weak_no_conflicting_holders =
  let open QCheck in
  let gen_op =
    Gen.(
      oneof
        [
          map3
            (fun tid lo len -> `Acq (tid, [ range 1 lo (lo + len) ]))
            (Gen.int_range 1 4) (Gen.int_range 0 20) (Gen.int_range 0 10);
          map (fun tid -> `Acq (tid, [])) (Gen.int_range 1 4);
          map (fun tid -> `Rel tid) (Gen.int_range 1 4);
        ])
  in
  Test.make ~name:"weak locks: holders pairwise compatible" ~count:300
    (make Gen.(list_size (int_range 1 40) gen_op))
    (fun ops ->
      let t = Weaklock.create () in
      let l = wl 9 in
      List.iter
        (fun op ->
          match op with
          | `Acq (tid, claim) -> ignore (Weaklock.acquire t l ~tid ~claim)
          | `Rel tid -> ignore (Weaklock.release t l ~tid))
        ops;
      (* holders of different threads must be pairwise range-disjoint *)
      let hs = Weaklock.holder_claims t l in
      List.for_all
        (fun (tid1, c1) ->
          List.for_all
            (fun (tid2, c2) ->
              tid1 = tid2 || Weaklock.ranges_disjoint c1 c2)
            hs)
        hs)

(* property: release/force_release only ever wake threads that were
   actually queued as waiters (the thundering-herd fix must not start
   inventing wake-ups), tracked as a multiset since a thread can block
   again after being woken *)
let prop_weak_woken_were_waiters =
  let open QCheck in
  let gen_op =
    Gen.(
      oneof
        [
          map3
            (fun tid lo len -> `Acq (tid, [ range 1 lo (lo + len) ]))
            (Gen.int_range 1 4) (Gen.int_range 0 20) (Gen.int_range 0 10);
          map (fun tid -> `Acq (tid, [])) (Gen.int_range 1 4);
          map (fun tid -> `Rel tid) (Gen.int_range 1 4);
          map (fun tid -> `Force tid) (Gen.int_range 1 4);
          map (fun tid -> `Cancel tid) (Gen.int_range 1 4);
        ])
  in
  Test.make ~name:"weak locks: every woken tid was a queued waiter"
    ~count:300
    (make Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      let t = Weaklock.create () in
      let l = wl 9 in
      let blocked : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let queued tid = match Hashtbl.find_opt blocked tid with
        | Some n -> n > 0
        | None -> false
      in
      let consume tid =
        Hashtbl.replace blocked tid (Option.value ~default:1
          (Hashtbl.find_opt blocked tid) - 1)
      in
      List.for_all
        (fun op ->
          match op with
          | `Acq (tid, claim) -> (
              match Weaklock.acquire t l ~tid ~claim with
              | `Acquired -> true
              | `Blocked _ ->
                  Hashtbl.replace blocked tid
                    (1 + Option.value ~default:0 (Hashtbl.find_opt blocked tid));
                  true)
          | `Rel tid ->
              List.for_all
                (fun w -> let ok = queued w in consume w; ok)
                (Weaklock.release t l ~tid)
          | `Force tid ->
              List.for_all
                (fun w -> let ok = queued w in consume w; ok)
                (Weaklock.force_release t l ~owner:tid)
          | `Cancel tid ->
              Weaklock.cancel_wait t l ~tid;
              Hashtbl.remove blocked tid;
              true)
        ops)

(* ------------------------------------------------------------------ *)
(* Keys *)

(* property: the normalized merge-scan disjointness the admission path
   uses agrees with the reference pairwise implementation on every pair
   of well-formed claims — including claims whose own ranges overlap
   each other, nest, mix read/write on the same cells, or are total *)
let prop_nclaim_agrees_with_pairwise =
  let open QCheck in
  let gen_range =
    Gen.(
      map3
        (fun b lo len -> fun write -> range ~write b lo (lo + len))
        (int_range 1 3) (int_range 0 40) (int_range 0 15)
      >>= fun mk -> map mk bool)
  in
  let gen_claim =
    Gen.(
      oneof
        [ return []; list_size (int_range 1 6) gen_range ])
  in
  Test.make ~name:"weak locks: normalized disjointness = pairwise"
    ~count:2000
    (make Gen.(pair gen_claim gen_claim))
    (fun (a, b) ->
      Weaklock.nclaim_disjoint (Weaklock.normalize a) (Weaklock.normalize b)
      = Weaklock.ranges_disjoint a b)

let test_key_paths () =
  Alcotest.(check string) "root" "T0" (Fmt.str "%a" Key.pp_tid_path []);
  Alcotest.(check string) "child" "T0.0.2"
    (Fmt.str "%a" Key.pp_tid_path [ 0; 2 ])

let suite =
  [
    Alcotest.test_case "mutex: basic" `Quick test_mutex_basic;
    Alcotest.test_case "mutex: not owner" `Quick test_mutex_not_owner;
    Alcotest.test_case "barrier: trip + generations" `Quick test_barrier_trip;
    Alcotest.test_case "cond: FIFO" `Quick test_cond_fifo;
    Alcotest.test_case "weak: total excludes" `Quick test_weak_total_excludes;
    Alcotest.test_case "weak: disjoint ranges parallel" `Quick
      test_weak_disjoint_ranges_parallel;
    Alcotest.test_case "weak: blocks distinguish" `Quick
      test_weak_ranges_different_blocks;
    Alcotest.test_case "weak: readers share" `Quick test_weak_readers_share;
    Alcotest.test_case "weak: total vs range" `Quick test_weak_total_vs_range;
    Alcotest.test_case "weak: handoff" `Quick test_weak_force_release_handoff;
    Alcotest.test_case "weak: clear pending" `Quick test_weak_clear_pending;
    Alcotest.test_case "weak: preempt without handoff" `Quick
      test_weak_force_release_no_handoff;
    Alcotest.test_case "weak: cancel_wait clears reservation" `Quick
      test_weak_cancel_clears_reservation;
    Alcotest.test_case "weak: selective wake" `Quick test_weak_selective_wake;
    Alcotest.test_case "weak: handoff counters" `Quick
      test_weak_handoff_counters;
    Alcotest.test_case "weak: stats" `Quick test_weak_stats;
    QCheck_alcotest.to_alcotest prop_weak_no_conflicting_holders;
    QCheck_alcotest.to_alcotest prop_weak_woken_were_waiters;
    QCheck_alcotest.to_alcotest prop_nclaim_agrees_with_pairwise;
    Alcotest.test_case "key: tid paths" `Quick test_key_paths;
  ]
