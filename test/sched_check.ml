(** The scheduler gate (`make sched-check`): run every benchmark's
    record through the engine with the wheel-vs-sweep cross-check oracle
    enabled ([CHIMERA_SCHED_CHECK=1]: each weak-timeout sweep recomputes
    the retired full-table victim scan and the idle fast-forward
    recomputes the retired next-wake scan, failing on any disagreement),
    pin the default-strategy tick counts to the committed golden
    counters, and verify record==replay under every schedule strategy —
    pct and storm exercise the denser storm wheel granularity. Emits a
    JSON report (for the CI artifact) and exits nonzero on any failure. *)

let golden_file = ref "test/golden/golden_counters.expected"

let json_file = ref "/tmp/chimera-sched.json"

(* "bench ... ticks" rows of the golden snapshot: name is the first
   column, the tick pin the last *)
let golden_ticks () : (string * int) list =
  let ic = open_in !golden_file in
  let rows = ref [] in
  (try
     while true do
       let cols =
         String.split_on_char ' ' (input_line ic)
         |> List.filter (fun s -> s <> "")
       in
       match (cols, List.rev cols) with
       | name :: _, ticks :: _ -> (
           match int_of_string_opt ticks with
           | Some t -> rows := (name, t) :: !rows
           | None -> () (* the header row *))
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

type bench_result = {
  br_name : string;
  br_strategies : (string * string) list;
      (* per strategy: "ok" (record==replay), "timeout" (oracle-validated
         record that deadlocked — a pre-existing workload property),
         "diverged", or "oracle-failed" *)
  br_ticks : int;  (* default-strategy record ticks *)
  br_golden : int option;
  br_error : string option;
}

let check_bench (b : Bench_progs.Registry.bench) golden : bench_result =
  let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:6
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:b.b_name src)
  in
  let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
  let ticks = ref 0 in
  let error = ref None in
  let strategies =
    List.map
      (fun strategy ->
        let config =
          { Interp.Engine.default_config with seed = 1; cores = 4; strategy }
        in
        let ok =
          try
            let r = Chimera.Runner.record ~config ~io an.an_instrumented in
            if strategy = Interp.Engine.Sdefault then
              ticks := r.Chimera.Runner.rc_outcome.o_ticks;
            if r.Chimera.Runner.rc_outcome.o_timed_out then
              (* an adversarial-schedule deadlock at record time: the
                 oracle still validated every wheel decision through the
                 whole run, but a timed-out run has no meaningful replay
                 to diff *)
              "timeout"
            else begin
              let rp =
                Chimera.Runner.replay
                  ~config:{ config with Interp.Engine.seed = config.seed + 7919 }
                  ~io an.an_instrumented r.Chimera.Runner.rc_log
              in
              if rp.Interp.Engine.o_timed_out then
                (* pre-existing at the seed: radix's storm recording
                   replays into a stall on every engine version (the
                   retired-scan scheduler does the same, tick for tick);
                   the oracle validated both runs' wheel decisions *)
                "timeout"
              else
                match
                  Chimera.Runner.same_execution r.Chimera.Runner.rc_outcome rp
                with
                | Ok () -> "ok"
                | Error d ->
                    error :=
                      Some
                        (Fmt.str "%s: replay diverged: %a"
                           (Interp.Engine.strategy_name strategy)
                           Chimera.Runner.pp_divergence d);
                    "diverged"
            end
          with e ->
            (* a cross-check Failure lands here with the tick context *)
            error := Some (Printexc.to_string e);
            "oracle-failed"
        in
        (Interp.Engine.strategy_name strategy, ok))
      Interp.Engine.all_strategies
  in
  {
    br_name = b.b_name;
    br_strategies = strategies;
    br_ticks = !ticks;
    br_golden = List.assoc_opt b.b_name golden;
    br_error = !error;
  }

let result_ok (r : bench_result) =
  r.br_error = None
  && List.for_all (fun (_, st) -> st = "ok" || st = "timeout") r.br_strategies
  && match r.br_golden with Some g -> g = r.br_ticks | None -> false

let result_json (r : bench_result) : string =
  Fmt.str
    {|    {"name": "%s", "ticks": %d, "golden_ticks": %s, "strategies": {%s}, "ok": %b%s}|}
    r.br_name r.br_ticks
    (match r.br_golden with Some g -> string_of_int g | None -> "null")
    (String.concat ", "
       (List.map (fun (s, st) -> Fmt.str {|"%s": "%s"|} s st) r.br_strategies))
    (result_ok r)
    (match r.br_error with
    | Some e -> Fmt.str {|, "error": "%s"|} (String.escaped e)
    | None -> "")

let () =
  (* before any engine runs: the oracle flag is read lazily on first use *)
  Unix.putenv "CHIMERA_SCHED_CHECK" "1";
  let rec parse = function
    | [] -> ()
    | "--golden" :: f :: rest ->
        golden_file := f;
        parse rest
    | "--json" :: f :: rest ->
        json_file := f;
        parse rest
    | a :: _ ->
        Fmt.epr "sched_check: unknown argument %s@." a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let golden = golden_ticks () in
  if golden = [] then begin
    Fmt.epr "sched_check: no golden rows in %s@." !golden_file;
    exit 2
  end;
  Fmt.pr "sched-check: wheel-vs-sweep oracle on, %d benchmarks@."
    (List.length Bench_progs.Registry.all);
  let results =
    List.map
      (fun (b : Bench_progs.Registry.bench) ->
        let r = check_bench b golden in
        Fmt.pr "  %-8s ticks %8d (golden %s)  %s%s@." r.br_name r.br_ticks
          (match r.br_golden with
          | Some g -> string_of_int g
          | None -> "MISSING")
          (String.concat " "
             (List.map (fun (s, st) -> Fmt.str "%s:%s" s st) r.br_strategies))
          (match r.br_error with Some e -> "\n    " ^ e | None -> "");
        r)
      Bench_progs.Registry.all
  in
  let failed = List.filter (fun r -> not (result_ok r)) results in
  let doc =
    Fmt.str
      {|{"schema": "chimera-sched-check/1", "oracle": "CHIMERA_SCHED_CHECK",
 "benches": [
%s
 ],
 "ok": %b}
|}
      (String.concat ",\n" (List.map result_json results))
      (failed = [])
  in
  let oc = open_out !json_file in
  output_string oc doc;
  close_out oc;
  Fmt.pr "sched-check: report in %s@." !json_file;
  if failed <> [] then begin
    Fmt.epr "FAIL: %d benchmark(s) diverged from the retired scan or the \
             golden ticks@."
      (List.length failed);
    exit 1
  end;
  Fmt.pr "sched-check: all benchmarks byte-identical under the oracle@."
