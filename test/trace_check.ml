(** Standalone gate for the observability layer (`make trace-check`).

    Exercises, end-to-end on real programs and without Alcotest:

    - a traced record followed by a traced replay yields byte-identical
      stable event streams (the determinism pin, on two programs);
    - tracing is free: a traced record matches an untraced one tick for
      tick, log byte for log byte;
    - the Chrome-trace export parses as well-formed JSON (checked with a
      small recursive-descent parser, no JSON library involved);
    - byte-corrupted logs raise [Replay.Log.Corrupt] — never a raw
      string-primitive exception;
    - the replay-divergence diagnostic pinpoints a concrete first
      diverging event on a structurally damaged log.

    Exits 0 when every check passes, 1 otherwise. *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "  ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "  FAIL: %s@." what
  end

(* ------------------------------------------------------------------ *)
(* a minimal JSON well-formedness parser (objects, arrays, strings,
   numbers, literals — enough to validate the Chrome-trace export) *)

exception Bad_json of string

let validate_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Fmt.str "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %c" c)
  in
  let literal lit =
    String.iter expect lit
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value");
    skip_ws ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* ------------------------------------------------------------------ *)

let racy_src =
  "int counter = 0;\n\
   void w(int *u) {\n\
  \  int i; int tmp;\n\
  \  for (i = 0; i < 60; i++) { tmp = counter; counter = tmp + 1; }\n\
   }\n\
   int main() { int t1; int t2; int t3;\n\
  \  t1 = spawn(w, &counter); t2 = spawn(w, &counter);\n\
  \  t3 = spawn(w, &counter);\n\
  \  join(t1); join(t2); join(t3);\n\
  \  output(counter);\n\
  \  return 0; }\n"

let input_driven_src =
  "int main() { int n; int i; int s; int x;\n\
  \  s = 0;\n\
  \  n = input();\n\
  \  for (i = 0; i < n; i++) { x = input(); s = s + x; }\n\
  \  output(s);\n\
  \  return 0; }\n"

let analyze name src =
  Chimera.Pipeline.analyze_source ~profile_runs:4
    ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(100 + i))
    ~file:name src

let config seed = { Interp.Engine.default_config with seed; cores = 4 }

let stable_stream evs =
  List.filter (fun e -> Trace.stable e.Trace.ev_kind) evs

let check_pin name (an : Chimera.Pipeline.analysis) ~io =
  Fmt.pr "[%s]@." name;
  let rec_sink = Trace.Sink.create () in
  let r =
    Chimera.Runner.record ~config:(config 1) ~sink:rec_sink ~io
      an.an_instrumented
  in
  let rep_sink = Trace.Sink.create () in
  let o =
    Chimera.Runner.replay ~config:(config 42) ~sink:rep_sink ~io
      an.an_instrumented r.rc_log
  in
  check "replay reproduces the recording"
    (Chimera.Runner.same_execution r.rc_outcome o = Ok ());
  let recorded = Trace.Sink.events rec_sink in
  let replayed = Trace.Sink.events rep_sink in
  check "trace is nonempty" (recorded <> []);
  check "no diagnostic divergence"
    (Trace.first_divergence ~recorded ~replayed = None);
  check "stable streams byte-identical"
    (stable_stream recorded = stable_stream replayed);
  (* tracing is free *)
  let plain =
    Chimera.Runner.record ~config:(config 1) ~io an.an_instrumented
  in
  check "tracing is free (ticks)"
    (plain.rc_outcome.o_ticks = r.rc_outcome.o_ticks);
  check "tracing is free (logs)"
    (Replay.Log.encode_order_log plain.rc_log
     = Replay.Log.encode_order_log r.rc_log
    && Replay.Log.encode_input_log plain.rc_log
       = Replay.Log.encode_input_log r.rc_log);
  (* export *)
  let chrome = Trace.to_chrome recorded in
  (match validate_json chrome with
  | () -> check "chrome export is well-formed JSON" true
  | exception Bad_json msg ->
      check (Fmt.str "chrome export is well-formed JSON (%s)" msg) false);
  (* and the text report renders *)
  let su =
    Trace.summarize ~dropped:(Trace.Sink.dropped rec_sink) recorded
  in
  check "text report renders"
    (String.length (Fmt.str "@[<v>%a@]" (Trace.pp_report ~top:5) su) > 0);
  r

let check_corrupt (r : Chimera.Runner.recorded) =
  Fmt.pr "[corrupt logs]@.";
  let i = Replay.Log.encode_input_log r.rc_log in
  let o = Replay.Log.encode_order_log r.rc_log in
  let clean i o =
    match Replay.Log.decode i o with
    | _ -> true
    | exception Replay.Log.Corrupt _ -> true
    | exception _ -> false
  in
  let all_clean = ref true in
  for n = 0 to String.length i - 1 do
    if not (clean (String.sub i 0 n) o) then all_clean := false
  done;
  for n = 0 to String.length o - 1 do
    if not (clean i (String.sub o 0 n)) then all_clean := false
  done;
  check "every truncation: Ok or Corrupt, never a raw exception" !all_clean;
  check "over-long varint raises Corrupt"
    (match Replay.Log.decode (String.make 10 '\xff') "" with
    | _ -> false
    | exception Replay.Log.Corrupt _ -> true
    | exception _ -> false)

let check_diagnostic () =
  Fmt.pr "[divergence diagnostic]@.";
  let an = analyze "inputs.mc" input_driven_src in
  let io =
    Interp.Iomodel.stream ~seed:9 ~chunks:2 ~chunk_size:4 ~input_range:6
  in
  let r =
    Chimera.Runner.record ~config:(config 2) ~io an.an_instrumented
  in
  check "intact log: streams agree"
    (Chimera.Runner.first_trace_divergence ~config:(config 2) ~io
       an.an_instrumented r.rc_log
    = None);
  let log = r.rc_log in
  Hashtbl.iter
    (fun _ bursts -> bursts := List.map (List.map (fun v -> v + 1)) !bursts)
    log.inputs;
  match
    Chimera.Runner.first_trace_divergence ~config:(config 2) ~io
      an.an_instrumented log
  with
  | None -> check "damaged log: first diverging event found" false
  | Some d ->
      check "damaged log: first diverging event found" true;
      Fmt.pr "  diagnostic: %a@." Trace.pp_divergence d

let () =
  let an = analyze "racy.mc" racy_src in
  let r = check_pin "racy counter" an ~io:(Interp.Iomodel.random ~seed:7) in
  let an2 = analyze "inputs.mc" input_driven_src in
  ignore
    (check_pin "input-driven" an2
       ~io:
         (Interp.Iomodel.stream ~seed:3 ~chunks:2 ~chunk_size:4 ~input_range:6));
  check_corrupt r;
  check_diagnostic ();
  if !failures = 0 then Fmt.pr "trace-check: all checks passed@."
  else begin
    Fmt.pr "trace-check: %d check(s) FAILED@." !failures;
    exit 1
  end
