(** Serial test runner: aggregates all suites (see {!Suites}). The
    domain-sharded runner over the same suites is [par_runner.ml]. *)

let () = Alcotest.run "chimera" Test_suites.Suites.all
