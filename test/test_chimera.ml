(** Test runner: aggregates all suites. *)

let () =
  Alcotest.run "chimera"
    [
      ("minic", Test_minic.suite);
      ("pointer", Test_pointer.suite);
      ("relay", Test_relay.suite);
      ("mhp", Test_mhp.suite);
      ("symbolic", Test_symbolic.suite);
      ("runtime", Test_runtime.suite);
      ("replay-log", Test_replay_log.suite);
      ("zcompress", Test_zcompress.suite);
      ("interp", Test_interp.suite);
      ("dynrace", Test_dynrace.suite);
      ("profiling", Test_profiling.suite);
      ("instrument", Test_instrument.suite);
      ("fuzz", Test_fuzz.suite);
      ("detexec", Test_detexec.suite);
      ("e2e", Test_e2e.suite);
    ]
