(** Scheduler event-wheel: directed unit tests of the wheel's contract
    (register / cancel / pop-min, sweep-boundary quantization, the
    [max_int] empty sentinel), a qcheck equivalence property pinning the
    wheel's firing decisions to the reference scan it replaced, and
    per-strategy record==replay pins on contended generated programs —
    the default strategy shares the golden-counter pin with the rest of
    the suite; pct and storm exercise the denser sweep granularity. *)

open Interp

let check = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ---- directed wheel units ---- *)

let test_register_pop () =
  let w = Wheel.create ~gran_bits:8 () in
  checki "empty size" 0 (Wheel.size w);
  checki "empty sentinel" max_int (Wheel.next_deadline w);
  check "empty min_due" true (Wheel.min_due w ~now:max_int = None);
  Wheel.add w ~tid:3 ~deadline:500;
  Wheel.add w ~tid:1 ~deadline:700;
  Wheel.add w ~tid:2 ~deadline:300;
  checki "size 3" 3 (Wheel.size w);
  checki "min deadline" 300 (Wheel.next_deadline w);
  check "nothing due yet" true (Wheel.min_due w ~now:299 = None);
  check "earliest due" true (Wheel.min_due w ~now:300 = Some (2, 300));
  check "still the minimum when all due" true
    (Wheel.min_due w ~now:10_000 = Some (2, 300))

let test_tie_breaks_on_tid () =
  let w = Wheel.create ~gran_bits:8 () in
  Wheel.add w ~tid:9 ~deadline:400;
  Wheel.add w ~tid:4 ~deadline:400;
  Wheel.add w ~tid:7 ~deadline:400;
  (* equal deadlines: the old sweep picked the lowest tid *)
  check "lowest tid wins the tie" true (Wheel.min_due w ~now:400 = Some (4, 400))

let test_cancel_and_replace () =
  let w = Wheel.create ~gran_bits:8 () in
  Wheel.add w ~tid:1 ~deadline:100;
  Wheel.add w ~tid:2 ~deadline:200;
  Wheel.cancel w ~tid:1;
  checki "cancel shrinks" 1 (Wheel.size w);
  checki "min moves past the cancelled entry" 200 (Wheel.next_deadline w);
  Wheel.cancel w ~tid:1;
  checki "double cancel is a no-op" 1 (Wheel.size w);
  (* re-add replaces: one registration per tid *)
  Wheel.add w ~tid:2 ~deadline:50;
  checki "re-add keeps size" 1 (Wheel.size w);
  checki "re-add moves the min" 50 (Wheel.next_deadline w);
  check "deadline_of sees the replacement" true
    (Wheel.deadline_of w ~tid:2 = Some 50);
  (* a stale same-deadline twin must not survive the skim *)
  Wheel.add w ~tid:2 ~deadline:50;
  Wheel.cancel w ~tid:2;
  checki "empty after cancel" 0 (Wheel.size w);
  checki "sentinel restored" max_int (Wheel.next_deadline w)

let test_quantization_boundaries () =
  let w = Wheel.create ~gran_bits:8 () in
  let mask = 255 in
  checki "empty never fires" max_int (Wheel.next_fire w ~mask);
  (* a masked-tick sweep observes deadline d at the next multiple of
     mask+1 at or after d *)
  List.iter
    (fun (d, expect) ->
      Wheel.add w ~tid:1 ~deadline:d;
      checki (Fmt.str "deadline %d fires at %d" d expect) expect
        (Wheel.next_fire w ~mask);
      Wheel.cancel w ~tid:1)
    [ (1, 256); (255, 256); (256, 256); (257, 512); (512, 512); (513, 768) ];
  (* storm granularity: 32-tick windows *)
  let ws = Wheel.create ~gran_bits:5 () in
  Wheel.add ws ~tid:1 ~deadline:33;
  checki "storm window" 64 (Wheel.next_fire ws ~mask:31)

let test_max_int_sentinel () =
  let w = Wheel.create ~gran_bits:8 () in
  (* quantizing a deadline near max_int must not wrap negative *)
  Wheel.add w ~tid:1 ~deadline:(max_int - 10);
  checki "overflow guard" max_int (Wheel.next_fire w ~mask:255);
  checki "deadline itself survives" (max_int - 10) (Wheel.next_deadline w)

(* ---- wheel == sweep equivalence, qcheck ---- *)

(* An operation script against both the wheel and a reference
   association-list model of the retired scan. *)
type op = Add of int * int | Cancel of int | Probe of int

let arbitrary_ops : op list QCheck.arbitrary =
  let open QCheck.Gen in
  let tid = int_range 0 15 in
  let deadline = int_range 0 2000 in
  let op =
    frequency
      [
        (4, map2 (fun t d -> Add (t, d)) tid deadline);
        (2, map (fun t -> Cancel t) tid);
        (3, map (fun now -> Probe now) (int_range 0 2500));
      ]
  in
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Add (t, d) -> Fmt.str "add %d@%d" t d
             | Cancel t -> Fmt.str "cancel %d" t
             | Probe n -> Fmt.str "probe %d" n)
           ops))
    (list_size (int_range 1 60) op)

let prop_wheel_eq_sweep =
  QCheck.Test.make
    ~name:"sched: wheel firing decisions == reference sweep" ~count:300
    arbitrary_ops (fun ops ->
      let w = Wheel.create ~gran_bits:5 () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let mask = 31 in
      List.for_all
        (function
          | Add (t, d) ->
              Wheel.add w ~tid:t ~deadline:d;
              Hashtbl.replace model t d;
              true
          | Cancel t ->
              Wheel.cancel w ~tid:t;
              Hashtbl.remove model t;
              true
          | Probe now ->
              (* the sweep's answers, from the model *)
              let entries =
                Hashtbl.fold (fun t d acc -> (d, t) :: acc) model []
              in
              let m_min =
                List.fold_left
                  (fun acc e -> match acc with
                    | Some m when m <= e -> acc
                    | _ -> Some e)
                  None entries
              in
              let m_victim =
                match m_min with
                | Some (d, t) when d <= now -> Some (t, d)
                | _ -> None
              in
              let m_next = match m_min with Some (d, _) -> d | None -> max_int in
              let m_fire =
                if m_next = max_int then max_int
                else (m_next + mask) land lnot mask
              in
              Wheel.size w = Hashtbl.length model
              && Wheel.next_deadline w = m_next
              && Wheel.min_due w ~now = m_victim
              && Wheel.next_fire w ~mask = m_fire
              || QCheck.Test.fail_reportf
                   "probe %d: wheel (size %d, next %d) disagrees with model \
                    (size %d, next %d)"
                   now (Wheel.size w) (Wheel.next_deadline w)
                   (Hashtbl.length model) m_next)
        ops)

(* ---- per-strategy record == replay on contended programs ---- *)

let io = Iomodel.random ~seed:33

let analyze src =
  Chimera.Pipeline.analyze ~profile_runs:3
    ~profile_io:(fun i -> Iomodel.random ~seed:(500 + i))
    (Minic.Parser.parse ~file:"sched.mc" src)

(* Each strategy runs the sweep at its own wheel granularity (storm:
   32-tick windows over the shortened timeout); divergence under any of
   them means the wheel moved a preemption. *)
let prop_strategy strategy =
  QCheck.Test.make
    ~name:
      (Fmt.str "sched: record==replay under %s on contended programs"
         (Engine.strategy_name strategy))
    ~count:6 Proggen.arbitrary_contended (fun src ->
      let an = analyze src in
      List.for_all
        (fun seed ->
          let config =
            { Engine.default_config with seed; cores = 4; strategy }
          in
          match
            Chimera.Runner.record_replay_check ~config ~io an.an_instrumented
          with
          | Ok _ -> true
          | Error d ->
              Out_channel.with_open_bin "/tmp/sched_fail.mc" (fun oc ->
                  output_string oc src);
              QCheck.Test.fail_reportf "seed %d diverged: %a" seed
                Chimera.Runner.pp_divergence d)
        [ 4; 17 ])

let rand () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Random.State.make [| int_of_string s |]
  | None -> Random.State.make [| 0x5C4ED |]

let suite =
  [
    Alcotest.test_case "wheel: register / pop-min" `Quick test_register_pop;
    Alcotest.test_case "wheel: deadline ties break on tid" `Quick
      test_tie_breaks_on_tid;
    Alcotest.test_case "wheel: cancel and replace" `Quick
      test_cancel_and_replace;
    Alcotest.test_case "wheel: sweep-boundary quantization" `Quick
      test_quantization_boundaries;
    Alcotest.test_case "wheel: max_int sentinel" `Quick test_max_int_sentinel;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_wheel_eq_sweep;
  ]
  @ List.map
      (fun s -> QCheck_alcotest.to_alcotest ~rand:(rand ()) (prop_strategy s))
      Engine.all_strategies
