(** Tests for the may-happen-in-parallel pass: the liveness lattice's
    directed edge cases (spawn-in-loop, join-in-branch, nested spawners,
    function-pointer targets, handle overwrites), the pruning provenance
    it feeds {!Relay.Detect}, and a proggen-based soundness property:
    a pruned pair is never observed racing by the dynamic detector. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"mhp.mc" src

let report src = snd (Relay.Detect.analyze (parse src))

let kept_between (r : Relay.Detect.report) f g =
  List.exists
    (fun (rp : Relay.Detect.race_pair) ->
      (rp.rp_s1.st_fname = f && rp.rp_s2.st_fname = g)
      || (rp.rp_s1.st_fname = g && rp.rp_s2.st_fname = f))
    r.races

let pruned_between ?prov (r : Relay.Detect.report) f g =
  List.exists
    (fun ((rp : Relay.Detect.race_pair), pv) ->
      ((rp.rp_s1.st_fname = f && rp.rp_s2.st_fname = g)
      || (rp.rp_s1.st_fname = g && rp.rp_s2.st_fname = f))
      && match prov with None -> true | Some p -> p = pv)
    r.pruned

(* ------------------------------------------------------------------ *)
(* Directed lattice tests *)

let test_spawn_loop_matched_join_loop () =
  (* the benchmark idiom: spawn loop + identically-ranged join loop.
     Code after the join loop cannot overlap any worker, despite the
     site's LiveMany state inside the loop. *)
  let r =
    report
      {|int acc[4]; int total;
        void w(int *slot) { *slot = *slot + 1; }
        void finish() { int i;
          for (i = 0; i < 4; i++) { total = total + acc[i]; } }
        int main() { int t[4]; int i;
          for (i = 0; i < 4; i++) { t[i] = spawn(w, &acc[i]); }
          for (i = 0; i < 4; i++) { join(t[i]); }
          finish();
          return total; }|}
  in
  Alcotest.(check bool) "post-join reader pruned against workers" false
    (kept_between r "finish" "w");
  Alcotest.(check bool) "recorded as pruned" true (pruned_between r "finish" "w")

let test_spawn_loop_unmatched_join_loop () =
  (* join loop over a DIFFERENT range must not retire the site *)
  let r =
    report
      {|int acc[4]; int total;
        void w(int *slot) { *slot = *slot + 1; }
        void finish() { int i;
          for (i = 0; i < 4; i++) { total = total + acc[i]; } }
        int main() { int t[4]; int i;
          for (i = 0; i < 4; i++) { t[i] = spawn(w, &acc[i]); }
          for (i = 0; i < 3; i++) { join(t[i]); }
          finish();
          return total; }|}
  in
  Alcotest.(check bool) "partial join loop keeps the pair" true
    (kept_between r "finish" "w")

let test_join_in_branch () =
  (* a conditional join cannot prove the thread dead afterwards *)
  let r =
    report
      {|int g;
        void w(int *u) { g = g + 1; }
        void after() { g = g * 2; }
        int main() { int t; int c;
          c = input();
          t = spawn(w, &g);
          if (c) { join(t); }
          after();
          return g; }|}
  in
  Alcotest.(check bool) "join under a branch keeps the pair" true
    (kept_between r "after" "w")

let test_spawn_in_branch_join_outside () =
  (* spawn under a branch: the site state merges Unspawned with LiveOne
     (-> LiveMany), so the unconditional join cannot retire it *)
  let r =
    report
      {|int g;
        void w(int *u) { g = g + 1; }
        void after() { g = g * 2; }
        int main() { int t; int c;
          c = input();
          t = 0;
          if (c) { t = spawn(w, &g); }
          join(t);
          after();
          return g; }|}
  in
  Alcotest.(check bool) "conditional spawn keeps the pair" true
    (kept_between r "after" "w")

let test_nested_spawner () =
  (* a single-instance secondary spawner gets its own phase universe:
     its post-join code is serialized against its child, but code in
     main concurrent with the whole sub-lifetime is not *)
  let r =
    report
      {|int g; int h;
        void leaf(int *u) { g = g + 1; }
        void coordpost() { g = g * 2; }
        void coord(int *u) { int s;
          s = spawn(leaf, &g);
          join(s);
          coordpost(); }
        void mainwork() { h = g; }
        int main() { int t;
          t = spawn(coord, &g);
          mainwork();
          join(t);
          return g + h; }|}
  in
  Alcotest.(check bool) "nested spawner's post-join pruned vs leaf" false
    (kept_between r "coordpost" "leaf");
  Alcotest.(check bool) "main's mid-lifetime code kept vs leaf" true
    (kept_between r "mainwork" "leaf")

let test_funptr_spawn_target () =
  (* the spawn target flows through a function pointer; the pointer
     analysis still resolves the root and the scalar join retires it *)
  let r =
    report
      {|int g;
        void w(int *u) { g = g + 1; }
        int main() { int t; void (*fp)(int*);
          g = 5;
          fp = &w;
          t = spawn(fp, &g);
          join(t);
          return g; }|}
  in
  Alcotest.(check bool) "funptr-spawned pair pruned" false
    (kept_between r "main" "w");
  Alcotest.(check bool) "funptr-spawned pair recorded pruned" true
    (pruned_between r "main" "w")

let test_handle_overwrite () =
  (* two spawns into one scalar handle: joining it retires only the
     second thread, so the first stays live past the join *)
  let r =
    report
      {|int g;
        void w1(int *u) { g = g + 1; }
        void w2(int *u) { g = g + 2; }
        void after() { g = g * 2; }
        int main() { int t;
          t = spawn(w1, &g);
          t = spawn(w2, &g);
          join(t);
          after();
          return g; }|}
  in
  Alcotest.(check bool) "overwritten handle keeps w1 live" true
    (kept_between r "after" "w1")

let test_const_indexed_handles () =
  (* proggen's idiom: distinct constant indices, joined one by one *)
  let r =
    report
      {|int g;
        void w(int *u) { g = g + 1; }
        void after() { g = g * 2; }
        int main() { int t[2];
          t[0] = spawn(w, &g);
          t[1] = spawn(w, &g);
          join(t[0]);
          join(t[1]);
          after();
          return g; }|}
  in
  Alcotest.(check bool) "const-indexed joins retire both sites" false
    (kept_between r "after" "w");
  (* the two workers still race with each other *)
  Alcotest.(check bool) "worker self-pairs kept" true (kept_between r "w" "w")

let test_escape_provenance () =
  (* init-before-spawn: every access to the object is serialized, so the
     pair carries the stronger object-level provenance *)
  let r =
    report
      {|int data;
        void w(int *u) { data = data + 1; }
        int main() { int t;
          data = 5;
          t = spawn(w, &data);
          join(t);
          return data; }|}
  in
  Alcotest.(check bool) "confined object pruned as escape" true
    (pruned_between ~prov:Relay.Detect.Pruned_escape r "main" "w")

let test_mhp_queries () =
  (* direct phase queries: before the spawn the worker is not live, in
     between it is (unprovable), after the join it is not *)
  let p =
    parse
      {|int g;
        void w(int *u) { g = g + 1; }
        int main() { int t;
          g = 1;
          t = spawn(w, &g);
          g = 2;
          join(t);
          g = 3;
          return g; }|}
  in
  let pa = Pointer.Analysis.run p in
  let cg = Pointer.Analysis.callgraph pa in
  let m = Mhp.analyze p pa cg in
  Alcotest.(check bool) "main is a spawner root" true
    (List.mem "main" (Mhp.spawner_roots m));
  (* fish out the sids of main's three assignments to g *)
  let sids = ref [] in
  Minic.Ast.iter_program_stmts
    (fun s ->
      match s.skind with
      | Minic.Ast.Assign (Minic.Ast.Var "g", Minic.Ast.Const k) ->
          sids := (k, s.sid) :: !sids
      | _ -> ())
    p;
  let sid_of k = List.assoc k !sids in
  let q sid = Mhp.not_live_at m ~root:"w" ~fname:"main" ~sid in
  Alcotest.(check bool) "not live before spawn" true (q (sid_of 1));
  Alcotest.(check bool) "maybe live between spawn and join" false
    (q (sid_of 2));
  Alcotest.(check bool) "not live after join" true (q (sid_of 3));
  Alcotest.(check bool) "main itself is always live" false
    (Mhp.not_live_at m ~root:"main" ~fname:"main" ~sid:(sid_of 1))

let test_recursion_poisons () =
  (* a recursive helper in the spawner's universe must disable claims
     about its statements (they run in unrecorded contexts) *)
  let r =
    report
      {|int g;
        void w(int *u) { g = g + 1; }
        void rec_touch(int n) { g = g * 2; if (n) { rec_touch(n - 1); } }
        int main() { int t;
          t = spawn(w, &g);
          join(t);
          rec_touch(3);
          return g; }|}
  in
  Alcotest.(check bool) "recursive function's accesses stay kept" true
    (kept_between r "rec_touch" "w")

(* ------------------------------------------------------------------ *)
(* Fuzz property: a pruned pair is never observed racing dynamically *)

let prop_pruned_never_races =
  QCheck.Test.make
    ~name:"fuzz: pruned pair => dynrace never observes it racing" ~count:25
    Proggen.arbitrary_program (fun src ->
      let p = Minic.Typecheck.parse_and_check ~file:"fuzz.mc" src in
      let _, r = Relay.Detect.analyze p in
      let pruned_pairs = Hashtbl.create 16 in
      List.iter
        (fun ((rp : Relay.Detect.race_pair), _) ->
          Hashtbl.replace pruned_pairs
            (rp.rp_s1.Relay.Detect.st_sid, rp.rp_s2.Relay.Detect.st_sid)
            ())
        r.pruned;
      List.for_all
        (fun seed ->
          let dr = Dynrace.create ~track_weak:false () in
          let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
          let config = { Interp.Engine.default_config with seed; cores = 4 } in
          let io = Interp.Iomodel.random ~seed:(700 + seed) in
          let _ = Interp.Engine.run ~config ~hooks ~mode:Native ~io p in
          List.for_all
            (fun (race : Dynrace.race) ->
              let key =
                if race.dr_sid1 <= race.dr_sid2 then
                  (race.dr_sid1, race.dr_sid2)
                else (race.dr_sid2, race.dr_sid1)
              in
              if Hashtbl.mem pruned_pairs key then
                QCheck.Test.fail_reportf
                  "pruned pair (sid %d, sid %d) raced dynamically on %a"
                  race.dr_sid1 race.dr_sid2 Runtime.Key.pp_addr race.dr_addr
              else true)
            (Dynrace.races dr))
        [ 3; 11 ])

let rand () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Random.State.make [| int_of_string s |]
  | None -> Random.State.make [| 0xC41A3A5 |]

let suite =
  [
    Alcotest.test_case "spawn loop + matched join loop" `Quick
      test_spawn_loop_matched_join_loop;
    Alcotest.test_case "spawn loop + unmatched join loop" `Quick
      test_spawn_loop_unmatched_join_loop;
    Alcotest.test_case "join in branch" `Quick test_join_in_branch;
    Alcotest.test_case "spawn in branch" `Quick
      test_spawn_in_branch_join_outside;
    Alcotest.test_case "nested spawner" `Quick test_nested_spawner;
    Alcotest.test_case "funptr spawn target" `Quick test_funptr_spawn_target;
    Alcotest.test_case "handle overwrite" `Quick test_handle_overwrite;
    Alcotest.test_case "const-indexed handles" `Quick
      test_const_indexed_handles;
    Alcotest.test_case "escape provenance" `Quick test_escape_provenance;
    Alcotest.test_case "phase queries" `Quick test_mhp_queries;
    Alcotest.test_case "recursion poisons" `Quick test_recursion_poisons;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_pruned_never_races;
  ]
