(** Standalone gate for the segmented spilling log (`make log-check`).

    Library leg, on knot at its sustained-load scale (20k requests)
    with a deliberately small segment threshold so the recorder seals
    and spills dozens of times:

    - the spilling recorder's peak resident segment must be a small
      fraction of the raw log total — bounded log memory {e measured}
      on a sustained run, not asserted;
    - a full streamed replay of the segment directory must reproduce
      the recording (same outputs, same faults, same ticks) with every
      segment loaded;
    - a windowed replay to a mid-run tick must halt early, read only
      the covering prefix of segment files, and land on the same state
      digest the full replay computed at that segment's drain;
    - every checkpoint pinned in the manifest must load, checksum-clean,
      and unmarshal to a snapshot whose tick lies in its segment.

    CLI leg, end to end through the installed subcommands:

    - [chimera record --segment-dir] spills a segment directory and
      [chimera replay --segment-dir] streams it back with identical
      stdout;
    - a windowed [--from-tick/--window] replay reports an early halt;
    - flipping one byte in a sealed segment makes the streamed replay
      exit with the typed corrupt-log status (3) — never a crash, and
      never a silent success.

    A machine-readable report lands in /tmp/chimera-log.json (schema
    chimera-log-check/1), validated by the shared {!Bjson} reader
    before it is written. Exits 0 when every check passes, 1
    otherwise. *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "  ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "  FAIL: %s@." what
  end

let cli =
  try Sys.getenv "CHIMERA_CLI"
  with Not_found -> "./_build/default/bin/chimera_cli.exe"

let rm_rf dir = ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let fresh_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-logcheck-%d-%s" (Unix.getpid ()) tag)
  in
  rm_rf d;
  d

(* ------------------------------------------------------------------ *)
(* library leg: sustained knot through the spilling recorder *)

type lib_results = {
  lr_requests : int;
  lr_segments : int;
  lr_peak_raw : int;
  lr_total_raw : int;
  lr_total_z : int;
  lr_checkpoints : int;
  lr_window_segments : int;
}

let run_library () : lib_results =
  let b = Bench_progs.Registry.by_name "knot" in
  let scale = b.b_sustained_scale in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:6
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:"knot" (b.b_source ~workers:4 ~scale))
  in
  let io = b.b_io ~seed:42 ~scale in
  let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
  let dir = fresh_dir "lib" in
  let sr =
    Chimera.Runner.record_segmented ~config ~io ~dir ~events_per_segment:2048
      ~checkpoint_every:4 an.an_instrumented
  in
  let st = sr.Chimera.Runner.sr_stats in
  let requests = sr.sr_outcome.o_stats.n_syscalls in
  check "sustained load (>= 20k syscalls recorded)" (requests >= 20_000);
  check
    (Fmt.str "spilled recording (%d segments sealed)" st.Replay.Seglog.ws_segments)
    (st.Replay.Seglog.ws_segments >= 16);
  check
    (Fmt.str "bounded residency (peak segment %dB, raw total %dB)"
       st.Replay.Seglog.ws_peak_raw st.Replay.Seglog.ws_total_raw)
    (st.Replay.Seglog.ws_peak_raw * 4 <= st.Replay.Seglog.ws_total_raw);
  (* full streamed replay == recording *)
  let full = Chimera.Runner.replay_streamed ~config ~io ~dir an.an_instrumented in
  check "streamed replay reproduces the recording"
    (Chimera.Runner.same_execution sr.sr_outcome full.st_outcome = Ok ());
  check "streamed replay read every segment"
    (full.Chimera.Runner.st_segments_loaded = st.Replay.Seglog.ws_segments
    && not full.st_halted);
  (* windowed replay: halt mid-run on the digest the full replay saw *)
  let mf = sr.Chimera.Runner.sr_manifest in
  let nseg = Array.length mf.Replay.Seglog.mf_segments in
  let mid = mf.Replay.Seglog.mf_segments.(nseg / 2).Replay.Seglog.sg_last_tick in
  let cover = Replay.Seglog.covering_segment mf ~upto:mid in
  let win =
    Chimera.Runner.replay_streamed ~config ~io ~upto_tick:mid ~dir
      an.an_instrumented
  in
  check "windowed replay halts early"
    (win.Chimera.Runner.st_halted
    && win.st_segments_loaded < st.Replay.Seglog.ws_segments);
  check "window reads only the covering segment prefix"
    (win.Chimera.Runner.st_segments_loaded = cover + 1);
  let digest_at (sr : Chimera.Runner.streamed_replay) idx =
    List.assoc_opt idx sr.Chimera.Runner.st_digests
  in
  check "windowed digest == full-replay digest at the halt segment"
    (match (digest_at full cover, digest_at win cover) with
    | Some df, Some dw -> df = dw
    | _ -> false);
  (* checkpoint roundtrip: every pinned snapshot loads and unmarshals *)
  let pinned =
    Array.to_list mf.Replay.Seglog.mf_segments
    |> List.filter (fun (s : Replay.Seglog.segment) -> s.sg_checkpoint <> None)
  in
  check
    (Fmt.str "checkpoints pinned at every 4th seal (%d)" (List.length pinned))
    (List.length pinned >= st.Replay.Seglog.ws_segments / 4);
  check "every pinned checkpoint loads and unmarshals in its segment"
    (List.for_all
       (fun (s : Replay.Seglog.segment) ->
         match Replay.Seglog.load_snapshot ~dir s with
         | None -> false
         | Some bytes ->
             let sn : Interp.Engine.snapshot = Marshal.from_string bytes 0 in
             sn.Interp.Engine.sn_ticks >= s.sg_first_tick
             && sn.sn_ticks <= s.sg_last_tick
         | exception Replay.Log.Corrupt _ -> false)
       pinned);
  rm_rf dir;
  {
    lr_requests = requests;
    lr_segments = st.Replay.Seglog.ws_segments;
    lr_peak_raw = st.Replay.Seglog.ws_peak_raw;
    lr_total_raw = st.Replay.Seglog.ws_total_raw;
    lr_total_z = st.Replay.Seglog.ws_total_z;
    lr_checkpoints = List.length pinned;
    lr_window_segments = win.Chimera.Runner.st_segments_loaded;
  }

(* ------------------------------------------------------------------ *)
(* CLI leg *)

(** Run [cmd], capturing stdout; (exit code, stdout lines). *)
let run_cmd cmd : int * string list =
  let out = Filename.temp_file "chimera-logcheck" ".out" in
  let code = Sys.command (Fmt.str "%s > %s 2>/dev/null" cmd (Filename.quote out)) in
  let ic = open_in out in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out;
  (code, List.rev !lines)

let run_cli () =
  (* a small sustained server: knot at a reduced scale keeps the gate
     quick while still sealing dozens of segments under the small
     threshold (the CLI drives io from --io-seed's random model) *)
  let src =
    Bench_progs.Server.knot ~workers:4
      ~scale:(Bench_progs.Server.knot_sustained_scale / 10)
  in
  let mc = Filename.temp_file "chimera-logcheck" ".mc" in
  let oc = open_out mc in
  output_string oc src;
  close_out oc;
  let dir = fresh_dir "cli" in
  let common = "--profile-runs 2 --no-cache --seed 1 --cores 4 --io-seed 7" in
  let rec_code, rec_out =
    run_cmd
      (Fmt.str "%s record %s %s --segment-dir %s --segment-events 1024"
         (Filename.quote cli) (Filename.quote mc) common (Filename.quote dir))
  in
  check "cli: segmented record exits 0" (rec_code = 0);
  check "cli: manifest + segments on disk"
    (Sys.file_exists (Filename.concat dir "manifest")
    && Sys.file_exists (Filename.concat dir "seg-0000.seg"));
  let rep_code, rep_out =
    run_cmd
      (Fmt.str "%s replay %s %s --segment-dir %s" (Filename.quote cli)
         (Filename.quote mc) common (Filename.quote dir))
  in
  check "cli: streamed replay exits 0" (rep_code = 0);
  check "cli: streamed replay stdout == record stdout" (rep_out = rec_out);
  let win_code, win_out =
    run_cmd
      (Fmt.str "%s replay %s %s --segment-dir %s --from-tick 0 --window 100000"
         (Filename.quote cli) (Filename.quote mc) common (Filename.quote dir))
  in
  check "cli: windowed replay exits 0" (win_code = 0);
  check "cli: windowed replay is a prefix of the full outputs"
    (List.length win_out < List.length rep_out
    && win_out
       = List.filteri (fun i _ -> i < List.length win_out) rep_out);
  (* corrupt one sealed segment: flip a byte in the compressed payload
     (past the header), then expect the typed corrupt-log exit *)
  let seg = Filename.concat dir "seg-0002.seg" in
  let ic = open_in_bin seg in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string bytes in
  Bytes.set b (n - 4) (Char.chr (Char.code (Bytes.get b (n - 4)) lxor 0xff));
  let oc = open_out_bin seg in
  output_bytes oc b;
  close_out oc;
  let bad_code, _ =
    run_cmd
      (Fmt.str "%s replay %s %s --segment-dir %s" (Filename.quote cli)
         (Filename.quote mc) common (Filename.quote dir))
  in
  check "cli: corrupted segment checksum exits with the typed status 3"
    (bad_code = 3);
  rm_rf dir;
  Sys.remove mc

(* ------------------------------------------------------------------ *)

let report_json (lr : lib_results) =
  let doc =
    Fmt.str
      {|{"schema": "chimera-log-check/1",
 "bench": "knot", "requests": %d,
 "segments": %d, "checkpoints": %d,
 "peak_raw_bytes": %d, "total_raw_bytes": %d, "total_z_bytes": %d,
 "residency_ratio": %.2f,
 "window_segments": %d,
 "failures": %d}
|}
      lr.lr_requests lr.lr_segments lr.lr_checkpoints lr.lr_peak_raw
      lr.lr_total_raw lr.lr_total_z
      (float_of_int lr.lr_total_raw /. float_of_int (max 1 lr.lr_peak_raw))
      lr.lr_window_segments !failures
  in
  (match Bjson.parse doc with
  | exception Bjson.Bad m -> check (Fmt.str "report JSON parses (%s)" m) false
  | _ -> ());
  let oc = open_out "/tmp/chimera-log.json" in
  output_string oc doc;
  close_out oc;
  Fmt.pr "report: /tmp/chimera-log.json@."

let () =
  Fmt.pr "segmented-log gate: sustained spill / stream / checkpoint@.";
  let lr = run_library () in
  Fmt.pr "segmented-log gate: CLI record/replay/window/corrupt loop@.";
  run_cli ();
  report_json lr;
  if !failures > 0 then begin
    Fmt.pr "%d check(s) FAILED@." !failures;
    exit 1
  end;
  Fmt.pr "all checks passed@."
