(** A generator of random concurrent MiniC programs, used to fuzz the
    whole Chimera pipeline (test_fuzz.ml).

    Generated programs are well-formed by construction:
    - they terminate: every loop has a constant bound, and barriers are
      balanced (a globally chosen number of phases, identical across all
      worker functions);
    - they never fault: array indices are loop variables bounded by the
      array size or mask expressions [e & (size-1)] over power-of-two
      sizes, and there is no division;
    - locks are block-scoped (lock/unlock always paired);
    - they are aggressively racy: unprotected accesses to shared scalars
      and arrays from several worker threads, mixed with properly locked
      and barrier-phased accesses — exactly the input mix Chimera must
      order. *)

module G = QCheck.Gen

type cfg = {
  n_scalars : int;          (* shared int globals *)
  arrays : int list;        (* power-of-two sizes *)
  n_mutexes : int;
  n_workers : int;          (* worker function count *)
  n_threads : int;          (* spawned threads, round-robin over workers *)
  n_phases : int;           (* barrier-separated phases per worker *)
}

let gen_cfg : cfg G.t =
  let open G in
  let* n_scalars = int_range 1 3 in
  let* n_arrays = int_range 1 2 in
  let* arrays = flatten_l (List.init n_arrays (fun _ -> oneofl [ 8; 16 ])) in
  let* n_mutexes = int_range 1 2 in
  let* n_workers = int_range 1 2 in
  let* n_threads = int_range 2 3 in
  let* n_phases = int_range 1 2 in
  return { n_scalars; arrays; n_mutexes; n_workers; n_threads; n_phases }

(* expression over: locals t0/t1, id, loop vars in scope, shared scalars,
   shared array reads with safe indices *)
let rec gen_expr cfg ~loops ~depth : string G.t =
  let open G in
  let atom =
    oneof
      ([
         map string_of_int (int_range 0 9);
         oneofl [ "t0"; "t1"; "id" ];
         map (fun k -> Fmt.str "g%d" k) (int_range 0 (cfg.n_scalars - 1));
       ]
      @ (if loops = [] then [] else [ oneofl loops ])
      @ [ gen_array_read cfg ~loops ])
  in
  if depth <= 0 then atom
  else
    frequency
      [
        (3, atom);
        ( 2,
          let* a = gen_expr cfg ~loops ~depth:(depth - 1) in
          let* b = gen_expr cfg ~loops ~depth:(depth - 1) in
          let* op = oneofl [ "+"; "-"; "|" ] in
          return (Fmt.str "(%s %s %s)" a op b) );
        ( 1,
          let* a = gen_expr cfg ~loops ~depth:(depth - 1) in
          let* c = int_range 2 5 in
          return (Fmt.str "(%s * %d)" a c) );
      ]

and gen_index cfg ~loops k : string G.t =
  let open G in
  let size = List.nth cfg.arrays k in
  let bounded_loops =
    (* loop vars are generated with bounds <= 8 <= min array size *)
    loops
  in
  oneof
    ([
       map string_of_int (int_range 0 (size - 1));
       map (fun v -> Fmt.str "(%s & %d)" v (size - 1)) (oneofl [ "t0"; "t1"; "id" ]);
     ]
    @ if bounded_loops = [] then [] else [ oneofl bounded_loops ])

and gen_array_read cfg ~loops : string G.t =
  let open G in
  let* k = int_range 0 (List.length cfg.arrays - 1) in
  let* idx = gen_index cfg ~loops k in
  return (Fmt.str "a%d[%s]" k idx)

(* statements; [loops] = loop variables in scope, [depth] bounds nesting;
   [in_lock] forbids further lock statements — nested locks in random
   order would let the *generated program* deadlock by lock-order
   inversion, which is not the property under test *)
let rec gen_stmts cfg ~loops ~depth ?(in_lock = false) ~n () : string list G.t
    =
  let open G in
  flatten_l (List.init n (fun _ -> gen_stmt cfg ~loops ~depth ~in_lock))

and gen_stmt cfg ~loops ~depth ~in_lock : string G.t =
  let open G in
  let assign_local =
    let* e = gen_expr cfg ~loops ~depth:2 in
    let* t = oneofl [ "t0"; "t1" ] in
    return (Fmt.str "%s = %s;" t e)
  in
  let assign_scalar =
    let* k = int_range 0 (cfg.n_scalars - 1) in
    let* e = gen_expr cfg ~loops ~depth:2 in
    return (Fmt.str "g%d = %s;" k e)
  in
  let assign_array =
    let* k = int_range 0 (List.length cfg.arrays - 1) in
    let* idx = gen_index cfg ~loops k in
    let* e = gen_expr cfg ~loops ~depth:1 in
    return (Fmt.str "a%d[%s] = %s;" k idx e)
  in
  let locked_block =
    let* m = int_range 0 (cfg.n_mutexes - 1) in
    let* body = gen_stmts cfg ~loops ~depth:0 ~in_lock:true ~n:2 () in
    return
      (Fmt.str "lock(&m%d); %s unlock(&m%d);" m (String.concat " " body) m)
  in
  let for_loop =
    let v = Fmt.str "i%d" (List.length loops) in
    let* bound = int_range 2 8 in
    let* n = int_range 1 3 in
    let* body =
      gen_stmts cfg ~loops:(v :: loops) ~depth:(depth - 1) ~in_lock ~n ()
    in
    return
      (Fmt.str "for (%s = 0; %s < %d; %s++) { %s }" v v bound v
         (String.concat " " body))
  in
  let if_stmt =
    let* c = gen_expr cfg ~loops ~depth:1 in
    let* body = gen_stmts cfg ~loops ~depth:0 ~in_lock ~n:1 () in
    return (Fmt.str "if ((%s & 1) == 1) { %s }" c (String.concat " " body))
  in
  let base =
    [ (3, assign_local); (3, assign_scalar); (3, assign_array) ]
  in
  let with_lock =
    if in_lock then [] else [ ((if depth <= 0 then 1 else 2), locked_block) ]
  in
  if depth <= 0 then frequency (base @ with_lock)
  else
    frequency
      (base @ with_lock @ [ (2, for_loop); (1, if_stmt) ])

let gen_worker cfg ~name : string G.t =
  let open G in
  let* phases =
    flatten_l
      (List.init cfg.n_phases (fun _ ->
           let* n = int_range 2 4 in
           let* stmts = gen_stmts cfg ~loops:[] ~depth:2 ~n () in
           return (String.concat "\n  " stmts)))
  in
  let body =
    String.concat "\n  barrier_wait(&bar);\n  " phases
  in
  return
    (Fmt.str
       {|void %s(int *idp) {
  int t0; int t1; int id; int i0; int i1; int i2;
  id = *idp;
  %s
}|}
       name body)

(** Generate a complete program as source text. *)
let gen_program : string G.t =
  let open G in
  let* cfg = gen_cfg in
  let* workers =
    flatten_l
      (List.init cfg.n_workers (fun k -> gen_worker cfg ~name:(Fmt.str "w%d" k)))
  in
  let globals =
    String.concat "\n"
      (List.init cfg.n_scalars (fun k -> Fmt.str "int g%d;" k)
      @ List.mapi (fun k size -> Fmt.str "int a%d[%d];" k size) cfg.arrays
      @ List.init cfg.n_mutexes (fun k -> Fmt.str "int m%d;" k)
      @ [ "int bar;"; Fmt.str "int ids[%d];" cfg.n_threads ])
  in
  (* main: init arrays, spawn round-robin, join, output checksums *)
  let init =
    String.concat "\n  "
      (List.mapi
         (fun k size ->
           Fmt.str "for (i0 = 0; i0 < %d; i0++) { a%d[i0] = i0 * %d; }" size k
             (k + 3))
         cfg.arrays)
  in
  let spawns =
    String.concat "\n  "
      (List.init cfg.n_threads (fun k ->
           Fmt.str "ids[%d] = %d; t[%d] = spawn(w%d, &ids[%d]);" k (k + 1) k
             (k mod cfg.n_workers) k))
  in
  let joins =
    String.concat "\n  "
      (List.init cfg.n_threads (fun k -> Fmt.str "join(t[%d]);" k))
  in
  let outputs =
    String.concat "\n  "
      (List.init cfg.n_scalars (fun k -> Fmt.str "output(g%d);" k)
      @ List.mapi
          (fun k size ->
            Fmt.str
              "t0 = 0; for (i0 = 0; i0 < %d; i0++) { t0 = t0 + a%d[i0]; } \
               output(t0);"
              size k)
          cfg.arrays)
  in
  return
    (Fmt.str
       {|%s

%s

int main() {
  int t[%d]; int i0; int t0;
  %s
  barrier_init(&bar, %d);
  %s
  %s
  %s
  return 0;
}|}
       globals
       (String.concat "\n\n" workers)
       cfg.n_threads init cfg.n_threads spawns joins outputs)

let arbitrary_program =
  QCheck.make ~print:(fun s -> s) gen_program

(* ------------------------------------------------------------------ *)
(* Contended shapes for the stress matrix: programs engineered to make
   the instrumented run weak-lock-heavy — every thread hammers the same
   shared scalars through read-modify-writes in tight loops (contended
   claims on one object), sweeps overlapping array ranges (contended
   range claims), and crosses extra barrier phases (cliques where every
   thread re-synchronizes). Long hot loops make lock holders outlast
   weak timeouts, exercising forced-release handoffs — the storm
   strategy then squeezes the timeouts further. *)

let gen_contended_cfg : cfg G.t =
  let open G in
  let* n_scalars = int_range 1 2 in
  let* arrays = flatten_l [ oneofl [ 8; 16 ] ] in
  let* n_workers = int_range 1 2 in
  let* n_threads = int_range 3 4 in
  let* n_phases = int_range 2 3 in
  return { n_scalars; arrays; n_mutexes = 1; n_workers; n_threads; n_phases }

(* one hot block: a tight RMW loop over a shared scalar interleaved with
   an overlapping-range array sweep, from every thread at once *)
let gen_hot_block cfg ~loop_var : string G.t =
  let open G in
  let* k = int_range 0 (cfg.n_scalars - 1) in
  let size = List.hd cfg.arrays in
  let* bound = int_range 6 12 in
  let* stride = oneofl [ 1; 2; 3 ] in
  return
    (Fmt.str
       "for (%s = 0; %s < %d; %s++) { g%d = g%d + a0[(%s * %d) & %d]; \
        a0[(%s + id) & %d] = g%d; }"
       loop_var loop_var bound loop_var k k loop_var stride (size - 1)
       loop_var (size - 1) k)

let gen_contended_worker cfg ~name : string G.t =
  let open G in
  let* phases =
    flatten_l
      (List.init cfg.n_phases (fun _ ->
           let* hot = gen_hot_block cfg ~loop_var:"i1" in
           let* n = int_range 1 2 in
           let* filler = gen_stmts cfg ~loops:[] ~depth:1 ~n () in
           return (String.concat "\n  " (hot :: filler))))
  in
  let body = String.concat "\n  barrier_wait(&bar);\n  " phases in
  return
    (Fmt.str
       {|void %s(int *idp) {
  int t0; int t1; int id; int i0; int i1; int i2;
  id = *idp;
  %s
}|}
       name body)

(** A complete contended program: the stress-matrix input mix. *)
let gen_contended_program : string G.t =
  let open G in
  let* cfg = gen_contended_cfg in
  let* workers =
    flatten_l
      (List.init cfg.n_workers (fun k ->
           gen_contended_worker cfg ~name:(Fmt.str "w%d" k)))
  in
  let globals =
    String.concat "\n"
      (List.init cfg.n_scalars (fun k -> Fmt.str "int g%d;" k)
      @ List.mapi (fun k size -> Fmt.str "int a%d[%d];" k size) cfg.arrays
      @ List.init cfg.n_mutexes (fun k -> Fmt.str "int m%d;" k)
      @ [ "int bar;"; Fmt.str "int ids[%d];" cfg.n_threads ])
  in
  let init =
    String.concat "\n  "
      (List.mapi
         (fun k size ->
           Fmt.str "for (i0 = 0; i0 < %d; i0++) { a%d[i0] = i0 * %d; }" size k
             (k + 3))
         cfg.arrays)
  in
  let spawns =
    String.concat "\n  "
      (List.init cfg.n_threads (fun k ->
           Fmt.str "ids[%d] = %d; t[%d] = spawn(w%d, &ids[%d]);" k (k + 1) k
             (k mod cfg.n_workers) k))
  in
  let joins =
    String.concat "\n  "
      (List.init cfg.n_threads (fun k -> Fmt.str "join(t[%d]);" k))
  in
  let outputs =
    String.concat "\n  "
      (List.init cfg.n_scalars (fun k -> Fmt.str "output(g%d);" k)
      @ List.mapi
          (fun k size ->
            Fmt.str
              "t0 = 0; for (i0 = 0; i0 < %d; i0++) { t0 = t0 + a%d[i0]; } \
               output(t0);"
              size k)
          cfg.arrays)
  in
  return
    (Fmt.str
       {|%s

%s

int main() {
  int t[%d]; int i0; int t0;
  %s
  barrier_init(&bar, %d);
  %s
  %s
  %s
  return 0;
}|}
       globals
       (String.concat "\n\n" workers)
       cfg.n_threads init cfg.n_threads spawns joins outputs)

let arbitrary_contended =
  QCheck.make ~print:(fun s -> s) gen_contended_program
