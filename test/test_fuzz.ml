(** Pipeline fuzzing: the paper's guarantees must hold on {e arbitrary}
    racy programs, not just the nine benchmarks. {!Proggen} builds random
    terminating, fault-free, aggressively racy concurrent programs; each
    property runs the relevant slice of the pipeline. On failure qcheck
    prints the offending program source. *)

let config seed = { Interp.Engine.default_config with seed; cores = 4 }

let io = Interp.Iomodel.random ~seed:33

let parse src =
  try Ok (Minic.Typecheck.parse_and_check ~file:"fuzz.mc" src)
  with e -> Error (Printexc.to_string e)

let analyze src =
  Chimera.Pipeline.analyze ~profile_runs:3
    ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(500 + i))
    (Minic.Parser.parse ~file:"fuzz.mc" src)

(* 1. generated programs are well-formed and run cleanly *)
let prop_wellformed =
  QCheck.Test.make ~name:"fuzz: programs parse, run, terminate, don't fault"
    ~count:60 Proggen.arbitrary_program (fun src ->
      match parse src with
      | Error e -> QCheck.Test.fail_reportf "front-end rejected: %s" e
      | Ok p ->
          let o = Interp.Engine.run ~config:(config 1) ~mode:Native ~io p in
          (not o.o_timed_out) && o.o_faults = [])

(* 2. end-to-end determinism: record the instrumented program, replay
   under a different scheduler *)
let prop_determinism =
  QCheck.Test.make
    ~name:"fuzz: instrumented record/replay is deterministic" ~count:25
    Proggen.arbitrary_program (fun src ->
      let an = analyze src in
      List.for_all
        (fun seed ->
          match
            Chimera.Runner.record_replay_check ~config:(config seed) ~io
              an.an_instrumented
          with
          | Ok _ -> true
          | Error d ->
              (* keep the exact failing source for offline debugging *)
              Out_channel.with_open_bin "/tmp/det_fail.mc" (fun oc ->
                  output_string oc src);
              QCheck.Test.fail_reportf "seed %d diverged: %a" seed
                Chimera.Runner.pp_divergence d)
        [ 2; 9 ])

(* 3. the transformed program is data-race-free under weak-lock sync *)
let prop_transformed_drf =
  QCheck.Test.make ~name:"fuzz: transformed programs are DRF" ~count:25
    Proggen.arbitrary_program (fun src ->
      let an = analyze src in
      let dr = Dynrace.create ~track_weak:true () in
      let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
      let o =
        Interp.Engine.run ~config:(config 5) ~hooks ~mode:Native ~io
          an.an_instrumented
      in
      if o.o_timed_out then QCheck.Test.fail_reportf "instrumented run stuck"
      else
        match Dynrace.races dr with
        | [] -> true
        | r :: _ ->
            QCheck.Test.fail_reportf "transformed program races: %a"
              Dynrace.pp_race r)

(* 4. RELAY soundness: every dynamic race of the original program is
   covered by the static report *)
let prop_relay_sound =
  QCheck.Test.make ~name:"fuzz: RELAY covers all dynamic races" ~count:25
    Proggen.arbitrary_program (fun src ->
      let an = analyze src in
      List.for_all
        (fun seed ->
          let dr = Dynrace.create ~track_weak:false () in
          let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
          let _ =
            Interp.Engine.run ~config:(config seed) ~hooks ~mode:Native ~io
              an.an_prog
          in
          List.for_all
            (fun (r : Dynrace.race) ->
              if
                Hashtbl.mem an.an_report.racy_sids r.dr_sid1
                && Hashtbl.mem an.an_report.racy_sids r.dr_sid2
              then true
              else
                QCheck.Test.fail_reportf
                  "dynamic race (sid %d, sid %d) on %a missed by RELAY"
                  r.dr_sid1 r.dr_sid2 Runtime.Key.pp_addr r.dr_addr)
            (Dynrace.races dr))
        [ 3; 11 ])

(* 5. the pretty-printer round-trips generated programs *)
let prop_roundtrip =
  QCheck.Test.make ~name:"fuzz: parse/print roundtrip" ~count:60
    Proggen.arbitrary_program (fun src ->
      match parse src with
      | Error e -> QCheck.Test.fail_reportf "front-end rejected: %s" e
      | Ok p ->
          let printed = Minic.Pretty.program_to_string p in
          let p2 = Minic.Typecheck.parse_and_check ~file:"rt" printed in
          Minic.Pretty.program_to_string p2 = printed)

(* 6. the stress matrix in miniature: on contended weak-lock-heavy
   shapes (tight RMW loops, overlapping range claims, barrier cliques),
   record==replay must hold across a seed sweep under every schedule
   strategy — the adversarial ones (pct, storm) included *)
let prop_stress_matrix =
  QCheck.Test.make
    ~name:"fuzz: contended shapes, record/replay across seeds x strategies"
    ~count:10 Proggen.arbitrary_contended (fun src ->
      let an = analyze src in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun seed ->
              match
                Chimera.Runner.record_replay_check
                  ~config:{ (config seed) with strategy }
                  ~io an.an_instrumented
              with
              | Ok _ -> true
              | Error d ->
                  Out_channel.with_open_bin "/tmp/stress_fail.mc" (fun oc ->
                      output_string oc src);
                  QCheck.Test.fail_reportf "seed %d strategy %s diverged: %a"
                    seed
                    (Interp.Engine.strategy_name strategy)
                    Chimera.Runner.pp_divergence d)
            [ 2; 9 ])
        Interp.Engine.all_strategies)

(* a fixed generator state keeps the suite reproducible; set QCHECK_SEED
   (or use scratch stress loops) to explore other programs *)
let rand () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Random.State.make [| int_of_string s |]
  | None -> Random.State.make [| 0xC41A3A5 |]

let suite =
  [
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_wellformed;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_roundtrip;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_determinism;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_transformed_drf;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_relay_sound;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_stress_matrix;
  ]
