(** Corpus-driven refinement ({!Refine}): the evidence lattice drives
    per-pair provenance, the deployment format round-trips with typed
    rejection of drift, and the safety valve catches a hand-corrupted
    plan that drops a load-bearing lock.

    The directed programs pin each provenance point:

    - {!adv_src} — a guarded racy read whose race surfaces only under
      the storm strategy at specific seeds (verified against the engine's
      spawn-stall/quantum mechanics): a default-only corpus proves the
      pair never-racy and drops its lock; adding the storm cells
      witnesses the race and pins it. This is the paper's core
      soundness-vs-coverage tradeoff in miniature.
    - {!shared_src} — two pairs on one clique lock, one fully covered
      and never racy (disjoint array slots), one statically real but
      dynamically unreachable: the unexercised sibling blocks the drop
      ([kept] vs [kept:unexercised]), deterministically. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"refine.mc" src

let analyze src = Chimera.Pipeline.analyze ~profile_runs:4 (parse src)

let io = Interp.Iomodel.random ~seed:42

(* Scheduler-sensitive race: the reader observes the unsynchronized
   flag [f] and only then reads [g] through [rg]; at cores=1 the
   default strategy never interleaves the guarded read with [wg], but
   storm quanta do at seeds 5 and 6. [main]'s post-join [rg] call keeps
   the g-pair's sids covered in every cell. Cell choices verified by a
   seed sweep; see the w/r loop-length grid in DESIGN.md section 13. *)
let adv_src =
  {|int g = 0;
    int f = 0;
    void wg(int v) { g = v; }
    int rg() { int t; t = g; return t; }
    void writer(int *u) {
      int k; int x;
      x = 0;
      for (k = 0; k < 25; k++) { x = x + k; }
      wg(1);
      f = 1;
    }
    void reader(int *u) {
      int k; int x; int ff; int t;
      x = 0;
      for (k = 0; k < 65; k++) { x = x + k; }
      ff = f;
      if (ff == 1) { t = rg(); output(t); }
    }
    int main() { int r; int w; int i;
      w = spawn(writer, &g); r = spawn(reader, &g);
      join(w); join(r);
      i = rg(); output(i);
      return 0; }|}

let adv_seeds = [ 1; 5; 6; 7 ]
let adv_default = List.map (fun s -> (s, Interp.Engine.Sdefault)) adv_seeds

let adv_storm =
  adv_default @ List.map (fun s -> (s, Interp.Engine.Sstorm)) adv_seeds

let observe_adv an jobs =
  Refine.corpus_observations ~cores:1 ~io
    ~instrumented:an.Chimera.Pipeline.an_instrumented
    ~racy_sids:an.an_report.racy_sids ~jobs ()

let prov_of (rf : Refine.t) ~obj =
  List.find_map
    (fun (pr : Refine.pair_result) ->
      let p = pr.pr_decision.pd_pair in
      if List.exists (fun o -> Pointer.Absloc.to_string o = obj) p.rp_objs
      then Some pr
      else None)
    rf.rf_pairs
  |> Option.get

let check_prov what expected (pr : Refine.pair_result) =
  Alcotest.(check string) what expected (Refine.prov_name pr.pr_prov)

(* 1. default-only corpus: the storm-only race is invisible, the g-pair
   is exercised-never-racy at full coverage, its lock drops; the f-pair
   is witnessed and pinned *)
let test_drop_never_racy () =
  let an = analyze adv_src in
  let rf = Refine.refine ~plan:an.an_plan (observe_adv an adv_default) in
  check_prov "g-pair dropped" "dropped:never-racy" (prov_of rf ~obj:"g");
  check_prov "f-pair witnessed" "kept:witnessed" (prov_of rf ~obj:"f");
  Alcotest.(check int) "one lock dropped" 1 (List.length rf.rf_dropped);
  Alcotest.(check bool) "static acquisitions shrink" true
    (rf.rf_refined_acqs < rf.rf_base_acqs);
  let g = prov_of rf ~obj:"g" in
  Alcotest.(check bool) "g-pair fully covered" true
    (g.pr_evidence.pe_both >= 2 && g.pr_evidence.pe_overlap >= 2)

(* 2. the safety side of the same corpus: once the storm cells are in,
   the race is witnessed and nothing drops — a pair racy only under an
   adversarial strategy survives exactly when the corpus exercises it *)
let test_witness_pins_lock () =
  let an = analyze adv_src in
  let rf = Refine.refine ~plan:an.an_plan (observe_adv an adv_storm) in
  check_prov "g-pair witnessed under storm" "kept:witnessed"
    (prov_of rf ~obj:"g");
  Alcotest.(check int) "nothing dropped" 0 (List.length rf.rf_dropped);
  Alcotest.(check int) "plan unchanged" rf.rf_base_acqs rf.rf_refined_acqs

(* 3. witness fast path: a witness disqualifies regardless of how low
   the coverage bar is set *)
let test_witness_beats_threshold () =
  let an = analyze adv_src in
  let rf =
    Refine.refine ~min_coverage:1 ~plan:an.an_plan (observe_adv an adv_storm)
  in
  check_prov "witness pins even at min_coverage 1" "kept:witnessed"
    (prov_of rf ~obj:"g")

(* 4. validation of the legitimately refined plan: with weak locks
   counted as synchronization the f-lock handoff orders the guarded
   read after [wg], so dropping the g-lock is genuinely safe — zero
   violations across both corpora *)
let test_validate_refined_clean () =
  let an = analyze adv_src in
  let rf = Refine.refine ~plan:an.an_plan (observe_adv an adv_default) in
  let refined = Instrument.Transform.apply an.an_prog rf.rf_plan in
  let va =
    Refine.validate ~cores:1 ~io ~report:an.an_report ~refined ~jobs:adv_storm
      ()
  in
  Alcotest.(check int) "all cells re-recorded" (List.length adv_storm)
    va.va_jobs;
  Alcotest.(check int) "no violations" 0 (List.length va.va_violations)

(* 5. safety valve: hand-corrupt the deployment to also drop the
   load-bearing f-lock; validation must flag the now-dynamic races as
   Reintroduced (they are statically covered, so never Uncovered) *)
let test_validate_rejects_corrupt_plan () =
  let an = analyze adv_src in
  let rf = Refine.refine ~plan:an.an_plan (observe_adv an adv_default) in
  let dp = Refine.deployment_of ~program:"adv" ~base:an.an_plan rf in
  let f_lock = (prov_of rf ~obj:"f").pr_decision.pd_lock in
  let bad = { dp with Refine.dp_dropped = f_lock :: dp.Refine.dp_dropped } in
  let plan' =
    match Refine.apply_deployment ~plan:an.an_plan bad with
    | Ok p -> p
    | Error e -> Alcotest.failf "corrupt plan rejected early: %a"
                   Refine.pp_deploy_error e
  in
  let refined = Instrument.Transform.apply an.an_prog plan' in
  let va =
    Refine.validate ~cores:1 ~io ~report:an.an_report ~refined
      ~jobs:adv_default ()
  in
  Alcotest.(check bool) "violations found" true (va.va_violations <> []);
  Alcotest.(check bool) "all violations are Reintroduced" true
    (List.for_all
       (function Refine.Reintroduced _ -> true | _ -> false)
       va.va_violations)

(* Deterministic shared-lock program: reader/writer form a
   non-concurrent clique, so both pairs share one function lock. The
   b-pair is exercised every run and never races (disjoint slots of
   [b]); the c-pair's sids sit in dynamically dead branches. *)
let shared_src =
  {|int b[2];
    int c = 0;
    void reader(int *u) {
      int t;
      t = b[1];
      output(t);
      if (t == 12345) { t = c; output(t); }
    }
    void writer(int *u) {
      b[0] = 7;
      if (b[0] == 12345) { c = 1; }
    }
    int main() { int r; int w;
      r = spawn(reader, &b[0]);
      w = spawn(writer, &b[0]);
      join(r); join(w);
      return 0; }|}

let observe_shared an jobs =
  Refine.corpus_observations ~cores:2 ~io
    ~instrumented:an.Chimera.Pipeline.an_instrumented
    ~racy_sids:an.an_report.racy_sids ~jobs ()

(* 6. shared-lock blocking: the covered never-racy pair may not drop
   because its clique lock also guards the unexercised pair *)
let test_kept_shared () =
  let an = analyze shared_src in
  let jobs = List.map (fun s -> (s, Interp.Engine.Sdefault)) [ 1; 2; 3; 4 ] in
  let rf = Refine.refine ~plan:an.an_plan (observe_shared an jobs) in
  let b = prov_of rf ~obj:"b" and c = prov_of rf ~obj:"c" in
  check_prov "b-pair kept via shared lock" "kept" b;
  check_prov "c-pair unexercised" "kept:unexercised" c;
  Alcotest.(check bool) "b-pair itself qualifies" true
    (b.pr_evidence.pe_witness = None && b.pr_evidence.pe_both >= 2);
  Alcotest.(check int) "c-pair never both-executed" 0 c.pr_evidence.pe_both;
  Alcotest.(check bool) "same lock" true
    (b.pr_decision.pd_lock = c.pr_decision.pd_lock);
  Alcotest.(check int) "nothing dropped" 0 (List.length rf.rf_dropped)

(* 7. coverage threshold: one distinct recording is below the default
   bar of 2, so even the qualifying pair stays as unexercised *)
let test_unexercised_threshold () =
  let an = analyze shared_src in
  let jobs = [ (1, Interp.Engine.Sdefault) ] in
  let rf = Refine.refine ~plan:an.an_plan (observe_shared an jobs) in
  check_prov "below threshold" "kept:unexercised" (prov_of rf ~obj:"b");
  (* the same evidence clears a bar of 1 — and with the sibling still
     unexercised the pair lands on the shared-lock point, not a drop *)
  let rf1 =
    Refine.refine ~min_coverage:1 ~plan:an.an_plan (observe_shared an jobs)
  in
  check_prov "threshold 1 qualifies, sibling still blocks" "kept"
    (prov_of rf1 ~obj:"b")

(* 8. deployment format: roundtrip, digest pinning, unknown locks,
   malformed input *)
let test_deployment_roundtrip () =
  let an = analyze adv_src in
  let rf = Refine.refine ~plan:an.an_plan (observe_adv an adv_default) in
  let dp = Refine.deployment_of ~program:"adv" ~base:an.an_plan rf in
  let dp2 = Refine.deployment_of_json (Refine.deployment_json dp) in
  Alcotest.(check bool) "json roundtrip" true (dp = dp2);
  (match Refine.apply_deployment ~plan:an.an_plan dp with
  | Ok p ->
      Alcotest.(check string) "re-derived plan matches refined plan"
        (Refine.plan_digest rf.rf_plan)
        (Refine.plan_digest p)
  | Error e -> Alcotest.failf "clean deployment rejected: %a"
                 Refine.pp_deploy_error e);
  (match
     Refine.apply_deployment ~plan:an.an_plan
       { dp with Refine.dp_plan_digest = "0000" }
   with
  | Error (Refine.Digest_mismatch _) -> ()
  | _ -> Alcotest.fail "digest drift not rejected");
  (match
     Refine.apply_deployment ~plan:an.an_plan
       {
         dp with
         Refine.dp_dropped =
           [ { Minic.Ast.wl_id = 9999; wl_gran = Minic.Ast.Ginstr } ];
       }
   with
  | Error (Refine.Unknown_lock _) -> ()
  | _ -> Alcotest.fail "unknown lock not rejected");
  match Refine.deployment_of_json "{ not json" with
  | exception Refine.Bad_plan _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* 9. on-disk corpus roundtrip: stress matrix -> of_stress -> save ->
   load -> observe_corpus must agree with the in-memory observations *)
let test_corpus_roundtrip () =
  let an = analyze shared_src in
  let dir = Filename.temp_file "chimera-corpus" "" in
  Sys.remove dir;
  let spec =
    {
      Chimera.Stress.sp_name = "shared";
      sp_instrumented = an.an_instrumented;
      sp_io = io;
      sp_golden_ticks = None;
    }
  in
  let report =
    Chimera.Stress.run_matrix ~cores:2 ~seeds:[ 1; 2; 3; 4 ]
      ~strategies:[ Interp.Engine.Sdefault ] ~progs:[ spec ] ()
  in
  Alcotest.(check (list string)) "clean matrix" []
    (List.map (Fmt.str "%a" Chimera.Stress.pp_issue) report.rp_issues);
  let digest = Refine.plan_digest an.an_plan in
  let corpus =
    Refine.Corpus.of_stress ~dir ~cores:2
      ~meta:[ ("shared", (Refine.Corpus.Ksrc, None, 42, digest)) ]
      report
  in
  Refine.Corpus.save corpus;
  let corpus' = Refine.Corpus.load ~dir in
  let entry = List.hd corpus'.co_entries in
  Alcotest.(check string) "plan digest survives" digest entry.ce_plan_digest;
  let obs =
    Refine.observe_corpus ~io ~instrumented:an.an_instrumented
      ~racy_sids:an.an_report.racy_sids corpus' entry
  in
  let jobs = List.map (fun s -> (s, Interp.Engine.Sdefault)) [ 1; 2; 3; 4 ] in
  let obs_mem = observe_shared an jobs in
  Alcotest.(check int) "same distinct recordings" (List.length obs_mem)
    (List.length obs);
  let rf = Refine.refine ~plan:an.an_plan obs in
  check_prov "same provenance from disk" "kept" (prov_of rf ~obj:"b")

(* 10. the paper's soundness floor as a fuzz property: on arbitrary
   contended programs, a corpus-refined plan validated over its own
   cells never admits a dynamic race that RELAY does not cover *)
let prop_refined_sound =
  QCheck.Test.make
    ~name:"fuzz: refined plan admits no statically uncovered race"
    ~count:6 Proggen.arbitrary_contended (fun src ->
      let an =
        Chimera.Pipeline.analyze ~profile_runs:3
          ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(500 + i))
          (Minic.Parser.parse ~file:"fuzz.mc" src)
      in
      let jobs =
        [
          (2, Interp.Engine.Sdefault);
          (9, Interp.Engine.Sdefault);
          (2, Interp.Engine.Sstorm);
          (9, Interp.Engine.Sstorm);
        ]
      in
      let io = Interp.Iomodel.random ~seed:33 in
      let obs =
        Refine.corpus_observations ~cores:4 ~io
          ~instrumented:an.an_instrumented ~racy_sids:an.an_report.racy_sids
          ~jobs ()
      in
      let rf = Refine.refine ~plan:an.an_plan obs in
      if rf.rf_refined_acqs > rf.rf_base_acqs then
        QCheck.Test.fail_reportf "refinement grew the plan: %d -> %d"
          rf.rf_base_acqs rf.rf_refined_acqs;
      let refined = Instrument.Transform.apply an.an_prog rf.rf_plan in
      let va =
        Refine.validate ~cores:4 ~io ~report:an.an_report ~refined ~jobs ()
      in
      match
        List.find_opt
          (function Refine.Uncovered _ -> true | _ -> false)
          va.va_violations
      with
      | Some v ->
          QCheck.Test.fail_reportf "uncovered race under refined plan: %a"
            Refine.pp_violation v
      | None -> true)

let rand () =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> Random.State.make [| int_of_string s |]
  | None -> Random.State.make [| 0xC41A3A5 |]

let suite =
  [
    Alcotest.test_case "default corpus drops never-racy lock" `Slow
      test_drop_never_racy;
    Alcotest.test_case "storm corpus witnesses and pins" `Slow
      test_witness_pins_lock;
    Alcotest.test_case "witness beats any threshold" `Slow
      test_witness_beats_threshold;
    Alcotest.test_case "refined plan validates clean" `Slow
      test_validate_refined_clean;
    Alcotest.test_case "corrupted plan trips the safety valve" `Slow
      test_validate_rejects_corrupt_plan;
    Alcotest.test_case "shared lock blocks the drop" `Quick test_kept_shared;
    Alcotest.test_case "coverage threshold" `Quick test_unexercised_threshold;
    Alcotest.test_case "deployment roundtrip and rejection" `Slow
      test_deployment_roundtrip;
    Alcotest.test_case "on-disk corpus roundtrip" `Quick test_corpus_roundtrip;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_refined_sound;
  ]
