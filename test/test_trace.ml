(** Tests for the runtime observability layer ([lib/trace]): sink ring
    buffers, metric aggregation, Chrome-trace export, the stable-stream
    divergence diagnostic, and the end-to-end pin that a traced record
    and its traced replay emit identical stable event streams. *)

open Runtime

let wl ?(gran = Minic.Ast.Gloop) id = { Minic.Ast.wl_id = id; wl_gran = gran }
let addr name = { Key.a_origin = Key.OGlobal name; a_off = 0 }

let ev ?(tp = []) step kind = { Trace.ev_tp = tp; ev_step = step; ev_kind = kind }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Fmt.str "%s contains %S" what needle)
    true (contains hay needle)

(* ------------------------------------------------------------------ *)
(* Sink *)

let test_sink_order () =
  let s = Trace.Sink.create () in
  Trace.Sink.emit s [ 1 ] ~step:3 Trace.Syscall;
  Trace.Sink.emit s [] ~step:1 (Trace.Weak_acquire (wl 0));
  Trace.Sink.emit s [ 0 ] ~step:2 Trace.Syscall;
  Trace.Sink.emit s [ 1 ] ~step:5 (Trace.Weak_release (wl 0));
  Alcotest.(check (list (list int)))
    "threads sorted" [ []; [ 0 ]; [ 1 ] ] (Trace.Sink.threads s);
  (* events: threads in tid_path order, emission order within a thread *)
  let steps = List.map (fun e -> e.Trace.ev_step) (Trace.Sink.events s) in
  Alcotest.(check (list int)) "grouped + ordered" [ 1; 2; 3; 5 ] steps;
  Alcotest.(check int) "thread_events" 2
    (List.length (Trace.Sink.thread_events s [ 1 ]));
  Alcotest.(check int) "nothing dropped" 0 (Trace.Sink.dropped s)

let test_sink_overflow () =
  let s = Trace.Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.Sink.emit s [] ~step:i Trace.Syscall
  done;
  let steps = List.map (fun e -> e.Trace.ev_step) (Trace.Sink.events s) in
  Alcotest.(check (list int)) "oldest dropped, newest kept" [ 7; 8; 9; 10 ] steps;
  Alcotest.(check int) "drop count" 6 (Trace.Sink.dropped s)

(* A sink losing events must say which threads lost them, and a summary
   built from it must carry the breakdown into reports: a sustained-load
   run with overflowing rings can never pass as a complete trace. *)
let test_sink_overflow_by_thread () =
  let s = Trace.Sink.create ~capacity:4 () in
  (* thread [0] overflows by 6, thread [1] stays within capacity *)
  for i = 1 to 10 do
    Trace.Sink.emit s [ 0 ] ~step:i Trace.Syscall
  done;
  for i = 1 to 3 do
    Trace.Sink.emit s [ 1 ] ~step:i Trace.Syscall
  done;
  Alcotest.(check (list (pair (list int) int)))
    "only the overflowing thread listed"
    [ ([ 0 ], 6) ]
    (Trace.Sink.dropped_by_thread s);
  let su =
    Trace.summarize ~dropped:(Trace.Sink.dropped s)
      ~dropped_by_thread:(Trace.Sink.dropped_by_thread s)
      (Trace.Sink.events s)
  in
  Alcotest.(check int) "summary total" 6 su.Trace.su_dropped;
  Alcotest.(check (list (pair (list int) int)))
    "summary breakdown" [ ([ 0 ], 6) ] su.Trace.su_dropped_by_thread;
  let report = Fmt.str "@[<v>%a@]" (Trace.pp_report ~top:10) su in
  check_contains "report" report "ring overflow";
  check_contains "report" report "T0.0:6";
  (* a sink that kept everything stays silent: no overflow line *)
  let quiet = Trace.summarize [ ev 1 Trace.Syscall ] in
  Alcotest.(check (list (pair (list int) int)))
    "no losses, no breakdown" [] quiet.Trace.su_dropped_by_thread;
  Alcotest.(check bool) "no overflow line" false
    (contains
       (Fmt.str "@[<v>%a@]" (Trace.pp_report ~top:10) quiet)
       "ring overflow")

(* ------------------------------------------------------------------ *)
(* Aggregation *)

let sample_events =
  [
    ev 1 (Trace.Region_enter 2);
    ev 2 (Trace.Weak_acquire (wl 7));
    ev 2 (Trace.Weak_block (wl 7, 2));
    ev 3 (Trace.Weak_block (wl 7, 4));
    ev 4 (Trace.Weak_wake (wl 7));
    ev 5 (Trace.Weak_acquire (wl 7));
    ev 6 (Trace.Weak_forced (wl 7));
    ev 7 (Trace.Weak_acquire (wl ~gran:Minic.Ast.Gfunc 0));
    ev 8 (Trace.Sync (Replay.Log.SMutexAcq, addr "m"));
    ev 9 Trace.Syscall;
    ev 10 Trace.Syscall;
    ev 11 Trace.Replay_miss;
    ev 12 (Trace.Region_exit 2);
  ]

let test_summarize () =
  let su = Trace.summarize ~dropped:3 sample_events in
  Alcotest.(check int) "events" (List.length sample_events) su.Trace.su_events;
  Alcotest.(check int) "dropped" 3 su.Trace.su_dropped;
  Alcotest.(check int) "sync" 1 su.Trace.su_sync;
  Alcotest.(check int) "syscalls" 2 su.Trace.su_syscalls;
  Alcotest.(check int) "replay misses" 1 su.Trace.su_replay_miss;
  Alcotest.(check int) "regions" 1 su.Trace.su_regions;
  (match su.Trace.su_locks with
  | lm :: _ ->
      (* loop7 has the block events, so it sorts first *)
      Alcotest.(check int) "top lock id" 7 lm.Trace.lm_lock.Minic.Ast.wl_id;
      Alcotest.(check int) "acquisitions" 2 lm.Trace.lm_acq;
      Alcotest.(check int) "blocks" 2 lm.Trace.lm_blocks;
      Alcotest.(check int) "queue sum" 6 lm.Trace.lm_queue_sum;
      Alcotest.(check int) "forced" 1 lm.Trace.lm_forced;
      Alcotest.(check int) "wakes" 1 lm.Trace.lm_wakes;
      Alcotest.(check (float 1e-9)) "mean queue depth" 3.0
        (Trace.mean_queue_depth lm)
  | [] -> Alcotest.fail "no lock metrics");
  Alcotest.(check int) "two locks" 2 (List.length su.Trace.su_locks);
  (* per-granularity mix: Gfunc rank 0, Gloop rank 1 *)
  Alcotest.(check int) "func acqs" 1 su.Trace.su_gran.(0).Trace.gm_acq;
  Alcotest.(check int) "loop acqs" 2 su.Trace.su_gran.(1).Trace.gm_acq;
  Alcotest.(check int) "loop blocks" 2 su.Trace.su_gran.(1).Trace.gm_blocks;
  Alcotest.(check int) "loop forced" 1 su.Trace.su_gran.(1).Trace.gm_forced

let test_report () =
  let su = Trace.summarize sample_events in
  let s = Fmt.str "@[<v>%a@]" (Trace.pp_report ~top:1) su in
  check_contains "report" s "events";
  check_contains "report" s "loop7";
  (* top 1: the second lock (func0) must be elided from the table *)
  Alcotest.(check bool) "top-N truncates" false (contains s "func0")

let test_chrome_export () =
  let s = Trace.to_chrome sample_events in
  Alcotest.(check bool) "array open" true (String.length s > 2 && s.[0] = '[');
  Alcotest.(check string) "array close" "]" (String.sub (String.trim s)
    (String.length (String.trim s) - 1) 1);
  check_contains "chrome" s "\"thread_name\"";
  check_contains "chrome" s "\"ph\":\"B\"";
  check_contains "chrome" s "\"ph\":\"E\"";
  check_contains "chrome" s "\"ph\":\"i\"";
  check_contains "chrome" s "\"cat\":\"weak\"";
  check_contains "chrome" s "\"ts\":9"

(* ------------------------------------------------------------------ *)
(* Divergence diagnosis *)

let stable_stream =
  [
    ev ~tp:[] 1 (Trace.Weak_acquire (wl 1));
    ev ~tp:[] 4 (Trace.Weak_release (wl 1));
    ev ~tp:[ 0 ] 2 Trace.Syscall;
    ev ~tp:[ 0 ] 6 (Trace.Sync (Replay.Log.SMutexAcq, addr "m"));
  ]

let test_divergence_none () =
  Alcotest.(check bool) "identical streams agree" true
    (Trace.first_divergence ~recorded:stable_stream ~replayed:stable_stream
    = None)

let test_divergence_unstable_insensitive () =
  (* block/wake/replay-miss events are schedule noise: inserting them
     into one side must not register as divergence *)
  let noisy =
    ev ~tp:[ 0 ] 2 (Trace.Weak_block (wl 1, 3))
    :: ev ~tp:[ 0 ] 2 (Trace.Weak_wake (wl 1))
    :: ev ~tp:[] 3 Trace.Replay_miss :: stable_stream
  in
  Alcotest.(check bool) "unstable events ignored" true
    (Trace.first_divergence ~recorded:stable_stream ~replayed:noisy = None)

let test_divergence_located () =
  let replayed =
    List.map
      (fun e ->
        if e.Trace.ev_tp = [ 0 ] && e.Trace.ev_step = 6 then
          { e with Trace.ev_kind = Trace.Syscall }
        else e)
      stable_stream
  in
  match Trace.first_divergence ~recorded:stable_stream ~replayed with
  | None -> Alcotest.fail "divergence missed"
  | Some d ->
      Alcotest.(check (list int)) "thread" [ 0 ] d.Trace.dv_tp;
      Alcotest.(check int) "index in stable stream" 1 d.Trace.dv_index;
      Alcotest.(check bool) "both sides reported" true
        (d.Trace.dv_recorded <> None && d.Trace.dv_replayed <> None)

let test_divergence_truncated () =
  (* the replayed stream of T0.0 ends early: report the missing event *)
  let replayed =
    List.filter (fun e -> e.Trace.ev_tp <> [ 0 ] || e.Trace.ev_step < 6)
      stable_stream
  in
  match Trace.first_divergence ~recorded:stable_stream ~replayed with
  | None -> Alcotest.fail "truncation missed"
  | Some d ->
      Alcotest.(check (list int)) "thread" [ 0 ] d.Trace.dv_tp;
      Alcotest.(check bool) "recorded side present" true
        (d.Trace.dv_recorded <> None);
      Alcotest.(check bool) "replayed side ended" true
        (d.Trace.dv_replayed = None)

let test_divergence_earliest () =
  (* two threads diverge; the report must name the smaller logical step *)
  let recorded =
    [
      ev ~tp:[ 0 ] 10 Trace.Syscall;
      ev ~tp:[ 1 ] 3 Trace.Syscall;
    ]
  in
  let replayed =
    [
      ev ~tp:[ 0 ] 10 (Trace.Weak_acquire (wl 1));
      ev ~tp:[ 1 ] 3 (Trace.Weak_acquire (wl 1));
    ]
  in
  match Trace.first_divergence ~recorded ~replayed with
  | None -> Alcotest.fail "divergence missed"
  | Some d -> Alcotest.(check (list int)) "earliest step wins" [ 1 ] d.Trace.dv_tp

(* ------------------------------------------------------------------ *)
(* End-to-end: traced execution *)

let racy_src =
  "int counter = 0;\n\
   void w(int *u) {\n\
  \  int i; int tmp;\n\
  \  for (i = 0; i < 40; i++) { tmp = counter; counter = tmp + 1; }\n\
   }\n\
   int main() { int t1; int t2;\n\
  \  t1 = spawn(w, &counter); t2 = spawn(w, &counter);\n\
  \  join(t1); join(t2);\n\
  \  output(counter);\n\
  \  return 0; }\n"

let analysis = lazy (
  Chimera.Pipeline.analyze_source ~profile_runs:4
    ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(100 + i))
    ~file:"racy.mc" racy_src)

let eval_config seed = { Interp.Engine.default_config with seed; cores = 4 }
let io = Interp.Iomodel.random ~seed:42

(* the acceptance pin: with tracing enabled, record and replay of the
   same run produce identical stable event streams *)
let test_record_replay_streams_identical () =
  let an = Lazy.force analysis in
  let rec_sink = Trace.Sink.create () in
  let r =
    Chimera.Runner.record ~config:(eval_config 1) ~sink:rec_sink ~io
      an.Chimera.Pipeline.an_instrumented
  in
  let rep_sink = Trace.Sink.create () in
  let o =
    Chimera.Runner.replay ~config:(eval_config 23) ~sink:rep_sink ~io
      an.Chimera.Pipeline.an_instrumented r.rc_log
  in
  (match Chimera.Runner.same_execution r.rc_outcome o with
  | Ok () -> ()
  | Error d -> Alcotest.failf "replay diverged: %a" Chimera.Runner.pp_divergence d);
  let recorded = Trace.Sink.events rec_sink in
  let replayed = Trace.Sink.events rep_sink in
  Alcotest.(check bool) "trace nonempty" true (recorded <> []);
  Alcotest.(check bool) "weak activity traced" true
    (List.exists
       (fun e ->
         match e.Trace.ev_kind with Trace.Weak_acquire _ -> true | _ -> false)
       recorded);
  (match Trace.first_divergence ~recorded ~replayed with
  | None -> ()
  | Some d ->
      Alcotest.failf "stable streams diverged: %a" Trace.pp_divergence d);
  (* stronger than first_divergence = None: the stable streams are
     elementwise equal *)
  let stable evs = List.filter (fun e -> Trace.stable e.Trace.ev_kind) evs in
  Alcotest.(check bool) "stable streams elementwise equal" true
    (stable recorded = stable replayed)

(* tracing must be free: a traced record is byte-identical to an
   untraced one (same outcome, ticks included, same logs) *)
let test_tracing_is_free () =
  let an = Lazy.force analysis in
  let plain =
    Chimera.Runner.record ~config:(eval_config 5) ~io
      an.Chimera.Pipeline.an_instrumented
  in
  let traced =
    Chimera.Runner.record ~config:(eval_config 5) ~sink:(Trace.Sink.create ())
      ~io an.Chimera.Pipeline.an_instrumented
  in
  (match Chimera.Runner.same_execution plain.rc_outcome traced.rc_outcome with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "tracing perturbed the run: %a"
        Chimera.Runner.pp_divergence d);
  Alcotest.(check int) "identical ticks" plain.rc_outcome.o_ticks
    traced.rc_outcome.o_ticks;
  Alcotest.(check string) "identical order log"
    (Replay.Log.encode_order_log plain.rc_log)
    (Replay.Log.encode_order_log traced.rc_log)

(* the divergence diagnostic on a damaged log: record an input-driven
   program, corrupt the recorded input values, and require the
   diagnostic to name a concrete first diverging event *)
let input_driven_src =
  "int main() { int n; int i; int s; int x;\n\
  \  s = 0;\n\
  \  n = input();\n\
  \  for (i = 0; i < n; i++) { x = input(); s = s + x; }\n\
  \  output(s);\n\
  \  return 0; }\n"

let test_diagnostic_on_corrupt_log () =
  let an =
    Chimera.Pipeline.analyze_source ~profile_runs:2
      ~profile_io:(fun i ->
        Interp.Iomodel.stream ~seed:(100 + i) ~chunks:2 ~chunk_size:4
          ~input_range:6)
      ~file:"inputs.mc" input_driven_src
  in
  let io =
    Interp.Iomodel.stream ~seed:9 ~chunks:2 ~chunk_size:4 ~input_range:6
  in
  let r =
    Chimera.Runner.record ~config:(eval_config 2) ~io
      an.Chimera.Pipeline.an_instrumented
  in
  (* sanity: on the intact log the diagnostic reports agreement *)
  Alcotest.(check bool) "intact log: streams agree" true
    (Chimera.Runner.first_trace_divergence ~config:(eval_config 2) ~io
       an.Chimera.Pipeline.an_instrumented r.rc_log
    = None);
  (* damage every recorded input value: the replayed main thread now
     runs the loop a different number of times, so its stable stream
     (syscall steps) parts ways with the recording *)
  let log = r.rc_log in
  Hashtbl.iter
    (fun _ bursts -> bursts := List.map (List.map (fun v -> v + 1)) !bursts)
    log.inputs;
  match
    Chimera.Runner.first_trace_divergence ~config:(eval_config 2) ~io
      an.Chimera.Pipeline.an_instrumented log
  with
  | None -> Alcotest.fail "diagnostic missed the corrupted log"
  | Some d ->
      Alcotest.(check bool) "names a concrete event" true
        (d.Trace.dv_recorded <> None || d.Trace.dv_replayed <> None);
      (* exercised for coverage: the report must render *)
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Trace.pp_divergence d) > 0)

let suite =
  [
    Alcotest.test_case "sink: emission order + thread grouping" `Quick
      test_sink_order;
    Alcotest.test_case "sink: ring overflow drops oldest" `Quick
      test_sink_overflow;
    Alcotest.test_case "sink: per-thread drops surface in summaries" `Quick
      test_sink_overflow_by_thread;
    Alcotest.test_case "summarize: lock + granularity metrics" `Quick
      test_summarize;
    Alcotest.test_case "report: totals + top-N" `Quick test_report;
    Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export;
    Alcotest.test_case "divergence: identical -> None" `Quick
      test_divergence_none;
    Alcotest.test_case "divergence: unstable events ignored" `Quick
      test_divergence_unstable_insensitive;
    Alcotest.test_case "divergence: located by thread + index" `Quick
      test_divergence_located;
    Alcotest.test_case "divergence: truncated stream" `Quick
      test_divergence_truncated;
    Alcotest.test_case "divergence: earliest step wins" `Quick
      test_divergence_earliest;
    Alcotest.test_case "record == replay stable streams (pin)" `Quick
      test_record_replay_streams_identical;
    Alcotest.test_case "tracing is observation-free" `Quick
      test_tracing_is_free;
    Alcotest.test_case "diagnostic names first diverging event" `Quick
      test_diagnostic_on_corrupt_log;
  ]
