(** Domain-sharded test runner: runs the same suite registry as the
    serial Alcotest binary ({!Suites.all}), but fans whole suites out
    across a {!Par.Pool}. Sharding is at {e suite} granularity — cases
    within a suite run serially, in declaration order — because suites
    may keep private mutable state (e.g. [Test_e2e]'s analysis cache)
    that their cases share.

    The report is deterministic: suites print in registry order with no
    timings, so two runs at any [-j] produce identical output (modulo
    failure backtraces). Exit status is non-zero iff any case failed.

    Usage: [par_runner.exe [-j N]]; [CHIMERA_TEST_JOBS] also sets the
    domain count (the flag wins). *)

type status = Pass | Skipped | Fail of string

type case_result = { cr_name : string; cr_status : status }

(* Alcotest doesn't export its Skip exception; classify by its
   constructor name. *)
let is_skip e =
  let s = Printexc.to_string_default e in
  String.length s >= 4 && String.sub s (String.length s - 4) 4 = "Skip"

let run_case (name, _speed, f) =
  let status =
    try
      f ();
      Pass
    with
    | e when is_skip e -> Skipped
    | e ->
        let bt = Printexc.get_backtrace () in
        Fail
          (if bt = "" then Printexc.to_string e
           else Fmt.str "%s@.%s" (Printexc.to_string e) (String.trim bt))
  in
  { cr_name = name; cr_status = status }

let run_suite (sname, cases) = (sname, List.map run_case cases)

let jobs () =
  let from_env () =
    match Sys.getenv_opt "CHIMERA_TEST_JOBS" with
    | Some s -> int_of_string_opt s
    | None -> None
  in
  let rec from_argv i =
    if i >= Array.length Sys.argv then None
    else
      match Sys.argv.(i) with
      | "-j" when i + 1 < Array.length Sys.argv ->
          int_of_string_opt Sys.argv.(i + 1)
      | s when String.length s > 2 && String.sub s 0 2 = "-j" ->
          int_of_string_opt (String.sub s 2 (String.length s - 2))
      | _ -> from_argv (i + 1)
  in
  match from_argv 1 with
  | Some j when j > 0 -> j
  | _ -> (
      match from_env () with
      | Some j when j > 0 -> j
      | _ -> Par.Pool.default_jobs ())

let () =
  Printexc.record_backtrace true;
  let j = jobs () in
  let results =
    Par.Pool.with_pool ~clamp:false ~domains:j (fun p ->
        Par.Pool.map_list p run_suite Test_suites.Suites.all)
  in
  let total = ref 0 and skipped = ref 0 and failed = ref 0 in
  List.iter
    (fun (sname, crs) ->
      let ok, skip, fail =
        List.fold_left
          (fun (ok, skip, fail) cr ->
            match cr.cr_status with
            | Pass -> (ok + 1, skip, fail)
            | Skipped -> (ok, skip + 1, fail)
            | Fail _ -> (ok, skip, fail + 1))
          (0, 0, 0) crs
      in
      total := !total + List.length crs;
      skipped := !skipped + skip;
      failed := !failed + fail;
      Fmt.pr "%-12s %3d ok%s%s@." sname ok
        (if skip > 0 then Fmt.str ", %d skipped" skip else "")
        (if fail > 0 then Fmt.str ", %d FAILED" fail else "");
      List.iter
        (fun cr ->
          match cr.cr_status with
          | Fail msg -> Fmt.pr "  FAIL [%s > %s]@.    %s@." sname cr.cr_name msg
          | Pass | Skipped -> ())
        crs)
    results;
  Fmt.pr "@.%d tests: %d failed, %d skipped@." !total !failed !skipped;
  if !failed > 0 then exit 1
