(** Tests for log serialization (roundtrip, including a qcheck property),
    the recorder counters, replayer cursors, and the conflicting-order
    gating rule for range-claimed weak locks. *)

open Runtime

let wl id gran = { Minic.Ast.wl_id = id; wl_gran = gran }

let addr name off = { Key.a_origin = Key.OGlobal name; a_off = off }

let sr ?(write = true) name lo hi =
  { Replay.Log.sr_origin = Key.OGlobal name; sr_lo = lo; sr_hi = hi;
    sr_write = write }

(* ------------------------------------------------------------------ *)

let build_sample () =
  let rc = Replay.Recorder.create () in
  Replay.Recorder.rec_input rc ~tp:[] [ 1; 2; 3 ];
  Replay.Recorder.rec_input rc ~tp:[ 0 ] [];
  Replay.Recorder.rec_input rc ~tp:[] [ 42 ];
  Replay.Recorder.rec_sync rc ~obj:(addr "m" 0) ~op:Replay.Log.SMutexAcq ~tp:[ 0 ];
  Replay.Recorder.rec_sync rc ~obj:(addr "m" 0) ~op:Replay.Log.SMutexRel ~tp:[ 0 ];
  Replay.Recorder.rec_sync rc ~obj:(addr "b" 2) ~op:Replay.Log.SBarrierWait ~tp:[ 1 ];
  Replay.Recorder.rec_weak rc ~lock:(wl 3 Gloop) ~tp:[ 0 ]
    ~claim:[ sr "rank" 0 7 ];
  Replay.Recorder.rec_weak rc ~lock:(wl 3 Gloop) ~tp:[ 1 ]
    ~claim:[ sr "rank" 8 15 ];
  Replay.Recorder.rec_weak rc ~lock:(wl 0 Gfunc) ~tp:[] ~claim:[];
  Replay.Recorder.rec_forced rc ~owner:[ 1 ] ~steps:777 ~acqs:3
    ~lock:(wl 3 Gloop);
  Replay.Recorder.rec_sched rc ~core:0 ~tp:[] ~ticks:5;
  Replay.Recorder.rec_sched rc ~core:0 ~tp:[] ~ticks:3;
  Replay.Recorder.rec_sched rc ~core:1 ~tp:[ 0 ] ~ticks:2;
  rc

let test_roundtrip () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  let log' = Replay.Log.decode i o in
  let i' = Replay.Log.encode_input_log log' in
  let o' = Replay.Log.encode_order_log log' in
  Alcotest.(check string) "input log stable" i i';
  Alcotest.(check string) "order log stable" o o'

let test_counters () =
  let rc = build_sample () in
  Alcotest.(check int) "syscalls" 3 rc.Replay.Recorder.n_syscalls;
  Alcotest.(check int) "sync ops" 3 rc.Replay.Recorder.n_sync_ops;
  let f, l, b, i = Replay.Recorder.weak_counts rc in
  Alcotest.(check (list int)) "weak by gran" [ 1; 2; 0; 0 ] [ f; l; b; i ];
  Alcotest.(check int) "forced" 1 rc.Replay.Recorder.n_forced

let test_sched_merge () =
  let rc = build_sample () in
  Alcotest.(check int) "adjacent same-core segments merged" 2
    (List.length rc.Replay.Recorder.log.sched)

let test_replayer_inputs () =
  let rc = build_sample () in
  let r = Replay.Replayer.of_log rc.Replay.Recorder.log in
  Alcotest.(check (option (list int))) "first burst" (Some [ 1; 2; 3 ])
    (Replay.Replayer.take_input r []);
  Alcotest.(check (option (list int))) "second burst" (Some [ 42 ])
    (Replay.Replayer.take_input r []);
  Alcotest.(check (option (list int))) "exhausted" None
    (Replay.Replayer.take_input r []);
  Alcotest.(check (option (list int))) "other thread empty burst" (Some [])
    (Replay.Replayer.take_input r [ 0 ])

let test_replayer_sync_order () =
  let rc = build_sample () in
  let r = Replay.Replayer.of_log rc.Replay.Recorder.log in
  (match Replay.Replayer.peek_sync r (addr "m" 0) with
  | Some (Replay.Log.SMutexAcq, [ 0 ]) -> ()
  | _ -> Alcotest.fail "wrong head");
  Replay.Replayer.advance_sync r (addr "m" 0);
  (match Replay.Replayer.peek_sync r (addr "m" 0) with
  | Some (Replay.Log.SMutexRel, [ 0 ]) -> ()
  | _ -> Alcotest.fail "wrong second");
  Alcotest.(check bool) "unknown object unconstrained" true
    (Replay.Replayer.peek_sync r (addr "zzz" 0) = None)

let test_weak_turn_conflict_rules () =
  let rc = Replay.Recorder.create () in
  let l = wl 5 Gloop in
  (* order: A[0..7], B[8..15], C total, A[0..7] *)
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 0 ] ~claim:[ sr "a" 0 7 ];
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 1 ] ~claim:[ sr "a" 8 15 ];
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 2 ] ~claim:[];
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 0 ] ~claim:[ sr "a" 0 7 ];
  let r = Replay.Replayer.of_log rc.Replay.Recorder.log in
  (* B's disjoint-range acquisition may proceed before A's *)
  Alcotest.(check bool) "B allowed out of order" true
    (Replay.Replayer.weak_turn r l ~tp:[ 1 ]);
  (* C's total claim conflicts with both A and B: blocked *)
  Alcotest.(check bool) "C blocked" false (Replay.Replayer.weak_turn r l ~tp:[ 2 ]);
  Alcotest.(check bool) "A allowed" true (Replay.Replayer.weak_turn r l ~tp:[ 0 ]);
  (* consume A and B; C unblocks *)
  Replay.Replayer.consume_weak r l ~tp:[ 0 ] ();
  Replay.Replayer.consume_weak r l ~tp:[ 1 ] ();
  Alcotest.(check bool) "C allowed after A,B" true
    (Replay.Replayer.weak_turn r l ~tp:[ 2 ]);
  (* A's second acquisition is behind C: blocked until C consumed *)
  Alcotest.(check bool) "A2 blocked behind C" false
    (Replay.Replayer.weak_turn r l ~tp:[ 0 ]);
  Replay.Replayer.consume_weak r l ~tp:[ 2 ] ();
  Alcotest.(check bool) "A2 allowed" true (Replay.Replayer.weak_turn r l ~tp:[ 0 ])

let test_forced_pop_requires_holding () =
  let rc = Replay.Recorder.create () in
  Replay.Recorder.rec_forced rc ~owner:[ 1 ] ~steps:10 ~acqs:1
    ~lock:(wl 7 Gbb);
  Replay.Recorder.rec_forced rc ~owner:[ 1 ] ~steps:10 ~acqs:2
    ~lock:(wl 7 Gbb);
  let r = Replay.Replayer.of_log rc.Replay.Recorder.log in
  Alcotest.(check bool) "not popped when not holding" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:50 ~acqs:9
       ~holds:(fun _ -> false)
    = None);
  Alcotest.(check bool) "not popped before steps" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:5 ~acqs:9
       ~holds:(fun _ -> true)
    = None);
  Alcotest.(check bool) "not popped before enough acquisitions" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:10 ~acqs:0
       ~holds:(fun _ -> true)
    = None);
  Alcotest.(check bool) "popped when due and holding" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:10 ~acqs:1
       ~holds:(fun _ -> true)
    <> None);
  Alcotest.(check bool) "second event gated on its own acq count" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:10 ~acqs:1
       ~holds:(fun _ -> true)
    = None);
  Alcotest.(check bool) "second event still there" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:10 ~acqs:2
       ~holds:(fun _ -> true)
    <> None);
  Alcotest.(check bool) "then drained" true
    (Replay.Replayer.pending_forced r [ 1 ] ~steps:99 ~acqs:9
       ~holds:(fun _ -> true)
    = None)

(* ------------------------------------------------------------------ *)
(* corrupt logs: decode must fail with the typed [Corrupt] exception,
   never a raw [Invalid_argument] from a string primitive (and never an
   attempt to allocate an impossible list) *)

let decodes_cleanly i o =
  match Replay.Log.decode i o with
  | _ -> true (* a prefix can happen to be a complete, valid log *)
  | exception Replay.Log.Corrupt _ -> true
  | exception e ->
      Alcotest.failf "decode escaped with %s" (Printexc.to_string e)

let is_corrupt i o =
  match Replay.Log.decode i o with
  | _ -> false
  | exception Replay.Log.Corrupt _ -> true

let test_corrupt_truncated () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  (* every proper prefix decodes cleanly: Ok or Corrupt, nothing else *)
  for n = 0 to String.length i - 1 do
    ignore (decodes_cleanly (String.sub i 0 n) o)
  done;
  for n = 0 to String.length o - 1 do
    ignore (decodes_cleanly i (String.sub o 0 n))
  done;
  (* chopping the last byte leaves the trailing record half-written *)
  Alcotest.(check bool) "truncated input log detected" true
    (is_corrupt (String.sub i 0 (String.length i - 1)) o);
  Alcotest.(check bool) "truncated order log detected" true
    (is_corrupt i (String.sub o 0 (String.length o - 1)))

let test_corrupt_garbage () =
  (* ten 0xff bytes: an unterminated varint past the 62-bit limit *)
  let overflow = String.make 10 '\xff' in
  Alcotest.(check bool) "varint overflow detected" true
    (is_corrupt overflow "");
  Alcotest.(check bool) "garbage order log detected" true
    (is_corrupt "" overflow);
  (* a huge element count with no elements behind it must raise, not
     try to build the list *)
  let bogus_count = "\xff\xff\xff\xff\x07" in
  Alcotest.(check bool) "impossible list length detected" true
    (is_corrupt bogus_count "")

(* exhaustive single-byte bit-flip sweep: every byte of both encodings,
   every bit. Decode must return a log or raise typed [Corrupt] carrying
   a byte offset — never any other exception. (A flipped log that still
   decodes is fine at this layer; the stress harness then replays it and
   demands a clean divergence report.) *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let corrupt_has_offset f =
  match f () with
  | _ -> true
  | exception Replay.Log.Corrupt msg ->
      if contains_sub msg "(byte " then true
      else Alcotest.failf "Corrupt without byte offset: %s" msg
  | exception e ->
      Alcotest.failf "decode escaped with %s" (Printexc.to_string e)

let flip s i bit =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.to_string b

(* trailing garbage: bytes appended after a complete, well-formed log
   must be rejected typed, not silently ignored — an "intact" recording
   could otherwise carry arbitrary unparsed bytes *)
let test_corrupt_trailing_garbage () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  List.iter
    (fun garbage ->
      Alcotest.(check bool)
        (Fmt.str "input log + %d trailing bytes rejected"
           (String.length garbage))
        true
        (is_corrupt (i ^ garbage) o);
      Alcotest.(check bool)
        (Fmt.str "order log + %d trailing bytes rejected"
           (String.length garbage))
        true
        (is_corrupt i (o ^ garbage));
      ignore
        (corrupt_has_offset (fun () -> Replay.Log.decode (i ^ garbage) o));
      ignore
        (corrupt_has_offset (fun () -> Replay.Log.decode i (o ^ garbage))))
    [ "\x00"; "\x01"; "\xff"; String.make 64 '\x00'; i; o ]

let test_bitflip_sweep () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  for pos = 0 to String.length i - 1 do
    for bit = 0 to 7 do
      ignore (corrupt_has_offset (fun () -> Replay.Log.decode (flip i pos bit) o))
    done
  done;
  for pos = 0 to String.length o - 1 do
    for bit = 0 to 7 do
      ignore (corrupt_has_offset (fun () -> Replay.Log.decode i (flip o pos bit)))
    done
  done

(* every truncation rejection must carry its byte offset too *)
let test_truncation_offsets () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  for n = 0 to String.length i - 1 do
    ignore (corrupt_has_offset (fun () -> Replay.Log.decode (String.sub i 0 n) o))
  done;
  for n = 0 to String.length o - 1 do
    ignore (corrupt_has_offset (fun () -> Replay.Log.decode i (String.sub o 0 n)))
  done

(* the boundary-marked encoders must produce byte-identical encodings,
   strictly interior ascending marks, and prefixes cut at a mark must
   decode cleanly (Ok or typed Corrupt — a cut at a record boundary can
   leave a shorter but self-consistent log) *)
let test_marked_encoders () =
  let rc = build_sample () in
  let log = rc.Replay.Recorder.log in
  let check_side name plain marked marks other ~decode =
    Alcotest.(check string) (name ^ " marked bytes identical") plain marked;
    let sorted = List.sort_uniq compare (Array.to_list marks) in
    Alcotest.(check int)
      (name ^ " marks unique and sorted")
      (Array.length marks) (List.length sorted);
    Array.iter
      (fun off ->
        if off <= 0 || off >= String.length plain then
          Alcotest.failf "%s mark %d not strictly interior" name off)
      marks;
    Array.iter
      (fun off ->
        ignore
          (corrupt_has_offset (fun () -> decode (String.sub marked 0 off) other)))
      marks
  in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  let im, imarks = Replay.Log.encode_input_log_marked log in
  let om, omarks = Replay.Log.encode_order_log_marked log in
  check_side "input" i im imarks o ~decode:Replay.Log.decode;
  check_side "order" o om omarks i ~decode:(fun trunc other ->
      Replay.Log.decode other trunc)

(* replay-side claim validation: a served claim differing from the
   recorded one is accumulated as a typed mismatch — and replay
   proceeds, it does not wedge *)
let test_claim_validation () =
  let rc = Replay.Recorder.create () in
  let l = wl 4 Gloop in
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 0 ] ~claim:[ sr "a" 0 7 ];
  Replay.Recorder.rec_weak rc ~lock:l ~tp:[ 1 ] ~claim:[ sr "a" 8 15 ];
  let r = Replay.Replayer.of_log rc.Replay.Recorder.log in
  (* matching claim: no mismatch *)
  Replay.Replayer.consume_weak r l ~tp:[ 0 ] ~claim:[ sr "a" 0 7 ] ();
  Alcotest.(check int) "matching claim accepted" 0
    (List.length (Replay.Replayer.claim_mismatches r));
  (* drifted claim: one typed mismatch, consumption still advances *)
  Replay.Replayer.consume_weak r l ~tp:[ 1 ] ~claim:[ sr "a" 8 12 ] ();
  match Replay.Replayer.claim_mismatches r with
  | [ m ] ->
      Alcotest.(check int) "mismatch index" 1 m.Replay.Replayer.cm_index;
      Alcotest.(check bool) "recorded claim kept" true
        (m.Replay.Replayer.cm_recorded = [ sr "a" 8 15 ]);
      Alcotest.(check bool) "served claim kept" true
        (m.Replay.Replayer.cm_served = [ sr "a" 8 12 ]);
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Replay.Replayer.pp_claim_mismatch m) > 0)
  | ms -> Alcotest.failf "expected one mismatch, got %d" (List.length ms)

(* a decoded sequence must come back in recorded order even when it is
   far too long for any non-tail-recursive or evaluation-order-dependent
   reader ([Dec.list] once relied on [List.init]'s argument evaluation
   order, which the language does not specify) *)
let test_decode_large_sequences () =
  let n = 12_000 in
  let rc = Replay.Recorder.create () in
  (* one burst of n values, then n single-value bursts *)
  Replay.Recorder.rec_input rc ~tp:[] (List.init n Fun.id);
  for i = 0 to n - 1 do
    Replay.Recorder.rec_input rc ~tp:[ 0 ] [ i ]
  done;
  let log = rc.Replay.Recorder.log in
  let i = Replay.Log.encode_input_log log in
  let o = Replay.Log.encode_order_log log in
  let log' = Replay.Log.decode i o in
  (match Hashtbl.find_opt log'.Replay.Log.inputs [] with
  | Some bursts -> (
      match !bursts with
      | [ vs ] ->
          Alcotest.(check int) "burst length" n (List.length vs);
          Alcotest.(check bool) "burst in recorded order" true
            (List.mapi (fun j v -> v = j) vs |> List.for_all Fun.id)
      | _ -> Alcotest.fail "expected a single burst")
  | None -> Alcotest.fail "thread missing");
  let r = Replay.Replayer.of_log log' in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Replay.Replayer.take_input r [ 0 ] <> Some [ i ] then ok := false
  done;
  Alcotest.(check bool) "bursts replay in recorded order" true !ok;
  Alcotest.(check string) "re-encode stable" i
    (Replay.Log.encode_input_log log')

(* qcheck: encode/decode roundtrip over random logs *)
let prop_log_roundtrip =
  let open QCheck in
  let gen_path = Gen.(list_size (int_range 0 2) (int_range 0 3)) in
  let gen_burst = Gen.(list_size (int_range 0 5) (int_range (-300) 300)) in
  let gen =
    Gen.(
      list_size (int_range 0 30)
        (oneof
           [
             map2 (fun p b -> `Input (p, b)) gen_path gen_burst;
             map2
               (fun p o -> `Sync (p, o))
               gen_path (int_range 0 6);
             map3
               (fun p id lo -> `Weak (p, id, lo))
               gen_path (int_range 0 5) (int_range 0 50);
           ]))
  in
  Test.make ~name:"log encode/decode roundtrip" ~count:100 (make gen)
    (fun events ->
      let rc = Replay.Recorder.create () in
      List.iter
        (fun ev ->
          match ev with
          | `Input (p, b) -> Replay.Recorder.rec_input rc ~tp:p b
          | `Sync (p, o) ->
              Replay.Recorder.rec_sync rc ~obj:(addr "x" o)
                ~op:(Replay.Log.sync_op_of_code o) ~tp:p
          | `Weak (p, id, lo) ->
              Replay.Recorder.rec_weak rc ~lock:(wl id Gbb) ~tp:p
                ~claim:[ sr "y" lo (lo + 3) ])
        events;
      let log = rc.Replay.Recorder.log in
      let i = Replay.Log.encode_input_log log in
      let o = Replay.Log.encode_order_log log in
      let log' = Replay.Log.decode i o in
      Replay.Log.encode_input_log log' = i
      && Replay.Log.encode_order_log log' = o)

(* same property at streaming scale: thousands of events per log, so
   the single-buffer encoder and the loop-based decoder are exercised
   well past any small-list special case *)
let prop_log_roundtrip_large =
  let open QCheck in
  let gen_path = Gen.(list_size (int_range 0 3) (int_range 0 4)) in
  let gen_event =
    Gen.(
      oneof
        [
          map2
            (fun p b -> `Input (p, b))
            gen_path (list_size (int_range 0 8) (int_range (-1000) 1000));
          map2 (fun p o -> `Sync (p, o)) gen_path (int_range 0 6);
          map3
            (fun p id lo -> `Weak (p, id, lo))
            gen_path (int_range 0 9) (int_range 0 5000);
        ])
  in
  let gen = Gen.(list_size (int_range 2_000 6_000) gen_event) in
  Test.make ~name:"log roundtrip on large random logs" ~count:10 (make gen)
    (fun events ->
      let rc = Replay.Recorder.create () in
      List.iter
        (fun ev ->
          match ev with
          | `Input (p, b) -> Replay.Recorder.rec_input rc ~tp:p b
          | `Sync (p, o) ->
              Replay.Recorder.rec_sync rc ~obj:(addr "x" o)
                ~op:(Replay.Log.sync_op_of_code o) ~tp:p
          | `Weak (p, id, lo) ->
              Replay.Recorder.rec_weak rc ~lock:(wl id Gbb) ~tp:p
                ~claim:[ sr "y" lo (lo + 3) ])
        events;
      let log = rc.Replay.Recorder.log in
      let i = Replay.Log.encode_input_log log in
      let o = Replay.Log.encode_order_log log in
      let log' = Replay.Log.decode i o in
      Replay.Log.encode_input_log log' = i
      && Replay.Log.encode_order_log log' = o)

let suite =
  [
    Alcotest.test_case "log roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "recorder counters" `Quick test_counters;
    Alcotest.test_case "sched segments merge" `Quick test_sched_merge;
    Alcotest.test_case "replayer inputs" `Quick test_replayer_inputs;
    Alcotest.test_case "replayer sync order" `Quick test_replayer_sync_order;
    Alcotest.test_case "weak turn conflict rules" `Quick
      test_weak_turn_conflict_rules;
    Alcotest.test_case "forced pop discipline" `Quick
      test_forced_pop_requires_holding;
    Alcotest.test_case "corrupt: truncated logs" `Quick test_corrupt_truncated;
    Alcotest.test_case "corrupt: garbage logs" `Quick test_corrupt_garbage;
    Alcotest.test_case "corrupt: trailing garbage" `Quick
      test_corrupt_trailing_garbage;
    Alcotest.test_case "corrupt: exhaustive bit-flip sweep" `Quick
      test_bitflip_sweep;
    Alcotest.test_case "corrupt: truncation offsets typed" `Quick
      test_truncation_offsets;
    Alcotest.test_case "marked encoders" `Quick test_marked_encoders;
    Alcotest.test_case "claim validation" `Quick test_claim_validation;
    Alcotest.test_case "decode large sequences in order" `Quick
      test_decode_large_sequences;
    QCheck_alcotest.to_alcotest prop_log_roundtrip;
    QCheck_alcotest.to_alcotest prop_log_roundtrip_large;
  ]
