(** Segmented spilling recordings ({!Replay.Seglog}) end to end: spilled
    recordings charge no ticks and match monolithic ones, streamed
    replay reproduces the execution segment by segment, windowed replay
    halts at the covering segment with the same state digest the full
    replay (and the recorder's pinned checkpoint) has there, and every
    kind of on-disk damage — segment payloads, checkpoints, the manifest
    — surfaces as the typed [Replay.Log.Corrupt], never a crash. *)

open Interp

let parse src = Minic.Typecheck.parse_and_check ~file:"seglog.mc" src

(* a DRF program with inputs, outputs, and mutex traffic: enough gated
   events (~400) to spill into many segments at a small threshold *)
let prog =
  parse
    {|int counter = 0; int m;
      void w(int *u) {
        int i; int v;
        for (i = 0; i < 40; i++) {
          lock(&m);
          v = input();
          counter = counter + (v & 7);
          unlock(&m);
        }
      }
      int main() { int t1; int t2; int i;
        t1 = spawn(w, &counter); t2 = spawn(w, &counter);
        for (i = 0; i < 20; i++) { lock(&m); output(counter); unlock(&m); }
        join(t1); join(t2);
        output(counter);
        return 0; }|}

let config seed = { Engine.default_config with seed; cores = 4 }
let io seed = Iomodel.random ~seed

let temp_seg_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-seglog-test-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_seg_dir f =
  let dir = temp_seg_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let record_seg ?(events_per_segment = 32) ?(checkpoint_every = 1) ~dir () =
  Chimera.Runner.record_segmented ~config:(config 1) ~io:(io 42) ~dir
    ~events_per_segment ~checkpoint_every prog

(* ------------------------------------------------------------------ *)

let test_spill_matches_monolithic () =
  with_seg_dir @@ fun dir ->
  let mono = Chimera.Runner.record ~config:(config 1) ~io:(io 42) prog in
  let seg = record_seg ~dir () in
  (match
     Chimera.Runner.same_execution mono.rc_outcome seg.sr_outcome
   with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "segmented recording diverged: %a"
        Chimera.Runner.pp_divergence d);
  (* spilling charges no simulated time *)
  Alcotest.(check int)
    "golden ticks unchanged" mono.rc_outcome.o_ticks seg.sr_outcome.o_ticks;
  let st = seg.sr_stats in
  Alcotest.(check bool) "actually spilled" true (st.ws_segments > 3);
  Alcotest.(check bool)
    "resident log bounded below the whole log" true
    (st.ws_peak_raw < st.ws_total_raw);
  Alcotest.(check int)
    "manifest agrees with writer" st.ws_segments
    (Array.length seg.sr_manifest.mf_segments)

let test_streamed_replay_matches_recording () =
  with_seg_dir @@ fun dir ->
  let seg = record_seg ~dir () in
  let full =
    (* different scheduler seed: the log alone must reproduce the run *)
    Chimera.Runner.replay_streamed ~config:(config 7920) ~io:(io 42) ~dir prog
  in
  (match Chimera.Runner.same_execution seg.sr_outcome full.st_outcome with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "streamed replay diverged: %a"
        Chimera.Runner.pp_divergence d);
  Alcotest.(check bool) "full replay is not halted" false full.st_halted;
  Alcotest.(check int) "every segment streamed"
    (Array.length seg.sr_manifest.mf_segments)
    full.st_segments_loaded;
  Alcotest.(check int) "one digest per segment drain"
    (Array.length seg.sr_manifest.mf_segments)
    (List.length full.st_digests)

let test_windowed_replay_halts_with_matching_digest () =
  with_seg_dir @@ fun dir ->
  let seg = record_seg ~dir () in
  let m = seg.sr_manifest in
  let nseg = Array.length m.mf_segments in
  Alcotest.(check bool) "enough segments to window" true (nseg >= 4);
  (* a window ending mid-recording: covered by roughly half the segments *)
  let mid = m.mf_segments.(nseg / 2).Replay.Seglog.sg_last_tick in
  let cover = Replay.Seglog.covering_segment m ~upto:mid in
  let full =
    Chimera.Runner.replay_streamed ~config:(config 7920) ~io:(io 42) ~dir prog
  in
  let win =
    Chimera.Runner.replay_streamed ~config:(config 7920) ~io:(io 42)
      ~upto_tick:mid ~dir prog
  in
  Alcotest.(check bool) "windowed replay halted" true win.st_halted;
  Alcotest.(check bool) "windowed replay skipped the tail" true
    (win.st_segments_loaded < nseg);
  Alcotest.(check int) "loaded exactly the covering prefix" (cover + 1)
    win.st_segments_loaded;
  (* the halt digest is the full replay's digest at the same drain: a
     windowed replay is a prefix of the full one, instant for instant *)
  let digest_at digests idx =
    match List.assoc_opt idx digests with
    | Some d -> d
    | None -> Alcotest.failf "no digest at segment %d drain" idx
  in
  Alcotest.(check string)
    "halt digest matches full replay at the covering drain"
    (digest_at full.st_digests cover)
    (digest_at win.st_digests cover)

let test_checkpoints_pin_rerecordings () =
  with_seg_dir @@ fun dir1 ->
  with_seg_dir @@ fun dir2 ->
  let a = record_seg ~dir:dir1 () in
  let b = record_seg ~dir:dir2 () in
  let ck (m : Replay.Seglog.manifest) =
    Array.to_list m.mf_segments
    |> List.map (fun (s : Replay.Seglog.segment) ->
           match s.sg_checkpoint with
           | Some c -> c.Replay.Seglog.ck_digest
           | None -> "-")
  in
  (* seal points are functions of the gated event counts, and the
     execution is deterministic given seed+inputs, so re-recordings pin
     identical checkpoint digests at identical seals *)
  Alcotest.(check (list string))
    "re-recording pins the same digests" (ck a.sr_manifest) (ck b.sr_manifest);
  (* and the segment payloads themselves are byte-identical *)
  let md5s (m : Replay.Seglog.manifest) =
    Array.to_list m.mf_segments
    |> List.map (fun (s : Replay.Seglog.segment) ->
           (s.Replay.Seglog.sg_md5_input, s.sg_md5_order))
  in
  Alcotest.(check bool)
    "segment checksums identical" true
    (md5s a.sr_manifest = md5s b.sr_manifest)

let test_snapshots_load_and_unmarshal () =
  with_seg_dir @@ fun dir ->
  let seg = record_seg ~checkpoint_every:2 ~dir () in
  let m = seg.sr_manifest in
  let some = ref 0 and none = ref 0 in
  Array.iter
    (fun (s : Replay.Seglog.segment) ->
      match Replay.Seglog.load_snapshot ~dir s with
      | Some bytes ->
          incr some;
          Alcotest.(check bool) "snapshot non-empty" true (String.length bytes > 0);
          (* checkpoint bytes are a marshalled engine snapshot *)
          let sn : Engine.snapshot = Marshal.from_string bytes 0 in
          Alcotest.(check bool) "snapshot ticks within segment range" true
            (sn.Engine.sn_ticks >= s.sg_first_tick)
      | None -> incr none)
    m.mf_segments;
  Alcotest.(check bool) "checkpoint_every=2 leaves gaps" true
    (!some > 0 && !none > 0)

(* ------------------------------------------------------------------ *)
(* Corruption: typed errors, never crashes *)

let is_corrupt f =
  match f () with
  | exception Replay.Log.Corrupt _ -> true
  | exception e ->
      Alcotest.failf "expected Log.Corrupt, got %s" (Printexc.to_string e)
  | _ -> false

let replay_dir dir =
  Chimera.Runner.replay_streamed ~config:(config 7920) ~io:(io 42) ~dir prog

let clobber path f =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let s' = f s in
  let oc = open_out_bin path in
  output_string oc s';
  close_out oc

let test_corrupt_segment_payload () =
  with_seg_dir @@ fun dir ->
  let seg = record_seg ~dir () in
  let victim =
    Filename.concat dir
      (Replay.Seglog.segment_file
         (Array.length seg.sr_manifest.mf_segments / 2))
  in
  clobber victim (fun s ->
      let b = Bytes.of_string s in
      let i = Bytes.length b - 4 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      Bytes.to_string b);
  Alcotest.(check bool) "flipped payload byte is typed" true
    (is_corrupt (fun () -> replay_dir dir))

let test_corrupt_segment_magic () =
  with_seg_dir @@ fun dir ->
  let _ = record_seg ~dir () in
  clobber
    (Filename.concat dir (Replay.Seglog.segment_file 0))
    (fun s -> "not-a-segment\n" ^ s);
  Alcotest.(check bool) "bad segment magic is typed" true
    (is_corrupt (fun () -> replay_dir dir))

let test_corrupt_manifest () =
  with_seg_dir @@ fun dir ->
  let _ = record_seg ~dir () in
  let manifest = Filename.concat dir Replay.Seglog.manifest_file in
  (* truncation: drop the end marker and the last entry *)
  clobber manifest (fun s ->
      match String.rindex_opt (String.trim s) '\n' with
      | Some i -> String.sub s 0 i
      | None -> "");
  Alcotest.(check bool) "truncated manifest is typed" true
    (is_corrupt (fun () -> replay_dir dir));
  (* and a missing manifest *)
  Sys.remove manifest;
  Alcotest.(check bool) "missing manifest is typed" true
    (is_corrupt (fun () -> replay_dir dir))

let test_corrupt_checkpoint () =
  with_seg_dir @@ fun dir ->
  let seg = record_seg ~dir () in
  let s0 = seg.sr_manifest.mf_segments.(0) in
  Alcotest.(check bool) "first seal has a checkpoint" true
    (s0.Replay.Seglog.sg_checkpoint <> None);
  clobber
    (Filename.concat dir (Replay.Seglog.checkpoint_file 0))
    (fun s -> s ^ "\x00garbage");
  Alcotest.(check bool) "damaged snapshot is typed" true
    (is_corrupt (fun () -> Replay.Seglog.load_snapshot ~dir s0))

let suite =
  [
    Alcotest.test_case "spill matches monolithic recording" `Quick
      test_spill_matches_monolithic;
    Alcotest.test_case "streamed replay matches recording" `Quick
      test_streamed_replay_matches_recording;
    Alcotest.test_case "windowed replay halts with matching digest" `Quick
      test_windowed_replay_halts_with_matching_digest;
    Alcotest.test_case "checkpoints pin re-recordings" `Quick
      test_checkpoints_pin_rerecordings;
    Alcotest.test_case "snapshots load and unmarshal" `Quick
      test_snapshots_load_and_unmarshal;
    Alcotest.test_case "corrupt: segment payload" `Quick
      test_corrupt_segment_payload;
    Alcotest.test_case "corrupt: segment magic" `Quick
      test_corrupt_segment_magic;
    Alcotest.test_case "corrupt: manifest" `Quick test_corrupt_manifest;
    Alcotest.test_case "corrupt: checkpoint" `Quick test_corrupt_checkpoint;
  ]
