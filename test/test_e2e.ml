(** End-to-end properties of the full Chimera pipeline — the paper's core
    claims, checked on all nine benchmarks:

    - {e replay determinism}: record the instrumented program, replay
      under a different scheduler seed, and require the identical
      execution (outputs, final memory, per-thread instruction counts);
    - {e transformed programs are data-race-free} when weak locks count
      as synchronization (Section 2's transformation guarantee);
    - {e RELAY soundness}: every dynamically observed race of the
      original program is covered by a static race pair;
    - the {e motivating negative}: for racy programs, sync-only logs are
      NOT sufficient — replaying the uninstrumented program can diverge. *)

let analyze_bench ?opts (b : Bench_progs.Registry.bench) ~workers ~scale =
  Chimera.Pipeline.analyze ?opts ~profile_runs:6
    ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
    (Minic.Parser.parse ~file:b.b_name (b.b_source ~workers ~scale))

let eval_config seed = { Interp.Engine.default_config with seed; cores = 4 }

(* cache analyses: several tests reuse them *)
let analysis_cache : (string, Chimera.Pipeline.analysis) Hashtbl.t =
  Hashtbl.create 16

let analysis_of (b : Bench_progs.Registry.bench) =
  match Hashtbl.find_opt analysis_cache b.b_name with
  | Some an -> an
  | None ->
      let an = analyze_bench b ~workers:4 ~scale:b.b_profile_scale in
      Hashtbl.replace analysis_cache b.b_name an;
      an

let test_record_replay_determinism () =
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an = analysis_of b in
      let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
      List.iter
        (fun seed ->
          match
            Chimera.Runner.record_replay_check ~config:(eval_config seed) ~io
              an.an_instrumented
          with
          | Ok _ -> ()
          | Error d ->
              Alcotest.failf "%s (seed %d) diverged: %a" b.b_name seed
                Chimera.Runner.pp_divergence d)
        [ 1; 2 ])
    Bench_progs.Registry.all

let test_transformed_is_drf () =
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an = analysis_of b in
      let dr = Dynrace.create ~track_weak:true () in
      let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
      let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
      let o =
        Interp.Engine.run ~config:(eval_config 3) ~hooks
          ~mode:Interp.Engine.Native ~io an.an_instrumented
      in
      Alcotest.(check bool) (b.b_name ^ ": run completed") false o.o_timed_out;
      match Dynrace.races dr with
      | [] -> ()
      | r :: _ ->
          Alcotest.failf "%s: transformed program races: %a" b.b_name
            Dynrace.pp_race r)
    Bench_progs.Registry.all

let test_relay_soundness_oracle () =
  (* every dynamic race of the ORIGINAL program appears among the static
     race pairs (RELAY is sound); checked over several schedules *)
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an = analysis_of b in
      let static = an.an_report.racy_sids in
      List.iter
        (fun seed ->
          let dr = Dynrace.create ~track_weak:false () in
          let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
          let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
          let _ =
            Interp.Engine.run ~config:(eval_config seed) ~hooks
              ~mode:Interp.Engine.Native ~io an.an_prog
          in
          List.iter
            (fun (r : Dynrace.race) ->
              let covered =
                Hashtbl.mem static r.dr_sid1 && Hashtbl.mem static r.dr_sid2
              in
              if not covered then
                Alcotest.failf
                  "%s: dynamic race (sid %d, sid %d on %a) missed by RELAY"
                  b.b_name r.dr_sid1 r.dr_sid2 Runtime.Key.pp_addr r.dr_addr)
            (Dynrace.races dr))
        [ 1; 5 ])
    Bench_progs.Registry.all

let test_naive_configuration_also_deterministic () =
  (* Figure 5's baseline configuration (every race at instruction
     granularity) must also replay correctly — it is slow, not wrong *)
  let b = Bench_progs.Registry.by_name "radix" in
  let an = analyze_bench ~opts:Instrument.Plan.naive b ~workers:2 ~scale:2 in
  let io = b.b_io ~seed:42 ~scale:2 in
  match
    Chimera.Runner.record_replay_check ~config:(eval_config 1) ~io
      an.an_instrumented
  with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "naive radix diverged: %a" Chimera.Runner.pp_divergence d

let test_racy_program_can_diverge_without_chimera () =
  (* the motivating experiment: replaying the ORIGINAL racy program from
     sync-only logs diverges for some recording seed *)
  let src =
    {|int counter = 0;
      void w(int *u) {
        int i; int tmp;
        for (i = 0; i < 40; i++) { tmp = counter; counter = tmp + 1; }
      }
      int main() { int t1; int t2;
        t1 = spawn(w, &counter); t2 = spawn(w, &counter);
        join(t1); join(t2);
        output(counter);
        return 0; }|}
  in
  let p = Minic.Typecheck.parse_and_check src in
  let io = Interp.Iomodel.random ~seed:9 in
  let diverged = ref false in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun seed ->
      if not !diverged then
        let r = Chimera.Runner.record ~config:(eval_config seed) ~io p in
        let o =
          Chimera.Runner.replay
            ~config:(eval_config (seed + 7919))
            ~io p r.rc_log
        in
        match Chimera.Runner.same_execution r.rc_outcome o with
        | Error _ -> diverged := true
        | Ok () -> ())
    seeds;
  Alcotest.(check bool)
    "sync-only replay of a racy program diverges for some schedule" true
    !diverged

let test_range_claims_sound () =
  (* loop-lock range soundness: while a thread holds a range-claimed weak
     lock, every access it makes to a block covered by one of its claims
     stays inside the claimed ranges *)
  let b = Bench_progs.Registry.by_name "radix" in
  let an = analysis_of b in
  let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
  let config = eval_config 4 in
  let eng =
    Interp.Engine.make_engine ~config ~mode:Interp.Engine.Native ~io
      an.an_instrumented
  in
  let violations = ref [] in
  eng.hooks.on_mem <-
    Some
      (fun tid addr ~write:_ ~sid ->
        (* collect the claims this thread currently holds, via the engine's
           weak-lock manager *)
        match Hashtbl.find_opt eng.threads tid with
        | None -> ()
        | Some th -> (
            match th.regions with
            | [] -> ()
            | { rg_acqs } :: _ ->
                List.iter
                  (fun ((_ : Minic.Ast.weak_lock), claim) ->
                    List.iter
                      (fun (r : Runtime.Weaklock.range) ->
                        match Interp.Mem.find_opt eng.mem r.rg_block with
                        | Some blk
                          when blk.Interp.Mem.b_origin = addr.Runtime.Key.a_origin
                          ->
                            (* access to a claimed block must be within
                               SOME claimed range of that block *)
                            let covered =
                              List.exists
                                (fun (r' : Runtime.Weaklock.range) ->
                                  (match
                                     Interp.Mem.find_opt eng.mem
                                       r'.rg_block
                                   with
                                  | Some b' ->
                                      b'.Interp.Mem.b_origin
                                      = addr.Runtime.Key.a_origin
                                  | None -> false)
                                  && r'.rg_lo <= addr.a_off
                                  && addr.a_off <= r'.rg_hi)
                                claim
                            in
                            if not covered then
                              violations := (sid, addr) :: !violations
                        | _ -> ())
                      claim)
                  rg_acqs))
  (* NB: only accesses to blocks that appear in the claim are checked —
     accesses to unclaimed objects are governed by other locks *);
  let o = Interp.Engine.run_engine eng in
  Alcotest.(check bool) "radix completed" false o.o_timed_out;
  match !violations with
  | [] -> ()
  | (sid, addr) :: _ ->
      Alcotest.failf "access outside claimed range: sid %d at %a" sid
        Runtime.Key.pp_addr addr

let test_log_sizes_nonzero () =
  let b = Bench_progs.Registry.by_name "pfscan" in
  let an = analysis_of b in
  let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
  let r = Chimera.Runner.record ~config:(eval_config 1) ~io an.an_instrumented in
  Alcotest.(check bool) "input log nonempty" true (r.rc_input_log_raw > 0);
  Alcotest.(check bool) "order log nonempty" true (r.rc_order_log_raw > 0);
  Alcotest.(check bool) "compression shrinks order log" true
    (r.rc_order_log_z < r.rc_order_log_raw);
  (* decode the encoded logs and replay from the decoded copy *)
  let log' =
    Replay.Log.decode
      (Replay.Log.encode_input_log r.rc_log)
      (Replay.Log.encode_order_log r.rc_log)
  in
  let o = Chimera.Runner.replay ~config:(eval_config 77) ~io an.an_instrumented log' in
  match Chimera.Runner.same_execution r.rc_outcome o with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "replay from decoded log diverged: %a"
        Chimera.Runner.pp_divergence d

let test_thread_scaling () =
  (* the instrumented pipeline works at 2 and 8 workers too (Figure 8) *)
  let b = Bench_progs.Registry.by_name "fft" in
  List.iter
    (fun workers ->
      let an = analyze_bench b ~workers ~scale:2 in
      let io = b.b_io ~seed:42 ~scale:2 in
      let config = { (eval_config 1) with cores = workers } in
      match Chimera.Runner.record_replay_check ~config ~io an.an_instrumented with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "fft x%d diverged: %a" workers
            Chimera.Runner.pp_divergence d)
    [ 2; 8 ]

let suite =
  [
    Alcotest.test_case "record/replay determinism (all benchmarks)" `Slow
      test_record_replay_determinism;
    Alcotest.test_case "transformed programs are DRF" `Slow
      test_transformed_is_drf;
    Alcotest.test_case "RELAY soundness vs dynamic oracle" `Slow
      test_relay_soundness_oracle;
    Alcotest.test_case "naive config also deterministic" `Quick
      test_naive_configuration_also_deterministic;
    Alcotest.test_case "racy replay diverges without Chimera" `Quick
      test_racy_program_can_diverge_without_chimera;
    Alcotest.test_case "loop-lock range claims sound" `Quick
      test_range_claims_sound;
    Alcotest.test_case "log sizes + decoded replay" `Quick test_log_sizes_nonzero;
    Alcotest.test_case "thread scaling 2/8" `Slow test_thread_scaling;
  ]
