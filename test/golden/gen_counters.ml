(** Golden-counter generator: the static analysis counters for all nine
    benchmarks — RELAY candidate pairs, MHP-pruned pairs, kept pairs,
    plan acquisitions before lockopt, and acquisitions the must-lockset
    pass elided — printed as a stable table. [dune runtest] diffs the
    output against [golden_counters.expected]; after an intentional
    analysis change, refresh the snapshot with [dune promote]. *)

let () =
  Fmt.pr "%-8s %8s %8s %8s %8s %8s@." "bench" "static" "pruned" "kept"
    "plan" "elided";
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
      let an =
        Chimera.Pipeline.analyze ~profile_runs:6
          ~profile_io:(fun i ->
            b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse ~file:b.b_name src)
      in
      Fmt.pr "%-8s %8d %8d %8d %8d %8d@." b.b_name
        an.an_report.n_candidates
        (List.length an.an_report.pruned)
        (List.length an.an_report.races)
        an.an_lockopt.Lockopt.lo_plan_acqs
        an.an_lockopt.Lockopt.lo_elided_acqs)
    Bench_progs.Registry.all
