(** Golden-counter generator: per-benchmark counters that must not move
    unintentionally — the static analysis side (RELAY candidate pairs,
    MHP-pruned pairs, kept pairs, plan acquisitions before lockopt,
    acquisitions the must-lockset pass elided) and the dynamic side (the
    logical tick count of a seeded 4-core record run, which pins every
    cost-model charge and scheduling decision: a host-performance change
    that perturbs deterministic execution moves this column). The
    [refined]/[dropped] columns pin the corpus-driven refinement pass:
    the seed-1 recording doubles as a one-cell corpus
    ([observe_recordings], [min_coverage:1]), so these columns move when
    the detector's evidence or the lock-dropping rule changes. [dune
    runtest] diffs the output against [golden_counters.expected]; after
    an intentional analysis or cost-model change, refresh the snapshot
    with [dune promote]. *)

let () =
  Fmt.pr "%-8s %8s %8s %8s %8s %8s %8s %8s %10s@." "bench" "static" "pruned"
    "kept" "plan" "elided" "refined" "dropped" "ticks";
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
      let an =
        Chimera.Pipeline.analyze ~profile_runs:6
          ~profile_io:(fun i ->
            b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse ~file:b.b_name src)
      in
      let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
      let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
      let r = Chimera.Runner.record ~config ~io an.an_instrumented in
      let obs =
        Refine.observe_recordings ~cores:4 ~io
          ~instrumented:an.an_instrumented ~racy_sids:an.an_report.racy_sids
          [ ((1, Interp.Engine.Sdefault), r.Chimera.Runner.rc_log) ]
      in
      let rf = Refine.refine ~min_coverage:1 ~plan:an.an_plan obs in
      Fmt.pr "%-8s %8d %8d %8d %8d %8d %8d %8d %10d@." b.b_name
        an.an_report.n_candidates
        (List.length an.an_report.pruned)
        (List.length an.an_report.races)
        an.an_lockopt.Lockopt.lo_plan_acqs
        an.an_lockopt.Lockopt.lo_elided_acqs rf.Refine.rf_refined_acqs
        (List.length rf.Refine.rf_dropped)
        r.Chimera.Runner.rc_outcome.o_ticks)
    Bench_progs.Registry.all
