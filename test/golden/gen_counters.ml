(** Golden-counter generator: the static race-analysis counters for all
    nine benchmarks — RELAY candidate pairs, MHP-pruned pairs, and kept
    pairs — printed as a stable table. [dune runtest] diffs the output
    against [golden_counters.expected]; after an intentional analysis
    change, refresh the snapshot with [dune promote]. *)

let () =
  Fmt.pr "%-8s %8s %8s %8s@." "bench" "static" "pruned" "kept";
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let src = b.b_source ~workers:4 ~scale:b.b_eval_scale in
      let prog = Minic.Typecheck.parse_and_check ~file:b.b_name src in
      let _, report = Relay.Detect.analyze prog in
      Fmt.pr "%-8s %8d %8d %8d@." b.b_name report.n_candidates
        (List.length report.pruned)
        (List.length report.races))
    Bench_progs.Registry.all
