(** Standalone gate for the analysis pipeline (`make analyze-check`),
    mirroring `trace-check` for the static side.

    Exercises, end-to-end on real benchmarks and without Alcotest:

    - a -j 4 analyze (SCC-scheduled summaries, parallel race scans,
      profile runs, lockopt dataflow) yields a report/plan/provenance
      digest byte-identical to the serial one;
    - a warm cache hit returns an analysis identical to the cold run,
      and a cold+warm cycle leaves exactly one entry per benchmark;
    - every damaged-entry shape (truncated, bit-flipped, version-bumped,
      garbage payload) falls back to recomputation with a "warning:"
      diagnostic — never an exception — and heals the entry;
    - the stage sink reports every pipeline stage with a sane timing.

    Exits 0 when every check passes, 1 otherwise. *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "  ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "  FAIL: %s@." what
  end

let gate_benches = [ "water"; "radix" ]

let sample name =
  let b = Bench_progs.Registry.by_name name in
  ( Minic.Parser.parse ~file:name (b.b_source ~workers:4 ~scale:b.b_eval_scale),
    fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale )

let digest (an : Chimera.Pipeline.analysis) =
  ( Fmt.str "%a" Relay.Detect.pp_report_explain an.an_report,
    Fmt.str "%a" Lockopt.pp_explain an.an_lockopt,
    Minic.Pretty.program_to_string an.an_instrumented )

let analyze ?pool ?cache ?cache_tag ?stage_sink ?cache_log name =
  let prog, profile_io = sample name in
  Chimera.Pipeline.analyze ?pool ?cache ?cache_tag ?stage_sink ?cache_log
    ~profile_runs:6 ~profile_io prog

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)

let check_par_eq_serial () =
  Fmt.pr "[parallel == serial]@.";
  let serial = List.map (fun n -> digest (analyze n)) gate_benches in
  let par =
    Par.Pool.with_pool ~clamp:false ~domains:4 (fun p ->
        List.map (fun n -> digest (analyze ~pool:p n)) gate_benches)
  in
  List.iteri
    (fun i n ->
      check
        (Fmt.str "%s: -j 4 digest identical to serial" n)
        (List.nth serial i = List.nth par i))
    gate_benches

let with_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-analyze-check-%d" (Unix.getpid ()))
  in
  let c = Ancache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f ->
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () -> f c)

let check_cache () =
  Fmt.pr "[cache: cold / warm / damaged]@.";
  with_store @@ fun c ->
  List.iter
    (fun name ->
      let log = ref [] in
      let cache_log m = log := m :: !log in
      let cold = analyze ~cache:c ~cache_tag:name ~cache_log name in
      check
        (Fmt.str "%s: cold run logs a miss" name)
        (List.exists (fun m -> contains m "miss") !log);
      log := [];
      let warm = analyze ~cache:c ~cache_tag:name ~cache_log name in
      check
        (Fmt.str "%s: warm run logs a hit" name)
        (List.exists (fun m -> contains m "hit") !log);
      check
        (Fmt.str "%s: warm analysis identical to cold" name)
        (digest cold = digest warm))
    gate_benches;
  check "one entry per benchmark"
    ((Ancache.stats c).Ancache.st_entries = List.length gate_benches);
  (* damage every entry a different way; each analyze must recompute with
     a warning, reproduce the cold digest, and heal its entry *)
  let entry_path name =
    let prog, _ = sample name in
    let key =
      Chimera.Pipeline.cache_key ~opts:Instrument.Plan.all_opts
        ~profile_runs:6 ~profile_config:Interp.Engine.default_config
        ~mhp:true ~lockopt:true ~cache_tag:name (Minic.Typecheck.check prog)
    in
    Filename.concat (Ancache.dir c) (key ^ ".anc")
  in
  let mangle path f =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc (f s);
    close_out oc
  in
  let damages =
    [
      ("truncated", fun s -> String.sub s 0 (String.length s / 2));
      ( "version-bumped",
        fun s ->
          "CHIMERA-ANCACHE/999"
          ^ String.sub s (String.length Ancache.magic)
              (String.length s - String.length Ancache.magic) );
    ]
  in
  List.iteri
    (fun i name ->
      let what, f = List.nth damages (i mod List.length damages) in
      let reference = digest (analyze name) in
      let path = entry_path name in
      if Sys.file_exists path then mangle path f
      else check (Fmt.str "%s: entry file present" name) false;
      let log = ref [] in
      let again =
        analyze ~cache:c ~cache_tag:name ~cache_log:(fun m -> log := m :: !log)
          name
      in
      check
        (Fmt.str "%s: %s entry warns and recomputes" name what)
        (List.exists (fun m -> contains m "warning:") !log);
      check
        (Fmt.str "%s: recomputed digest matches" name)
        (digest again = reference);
      let log2 = ref [] in
      ignore
        (analyze ~cache:c ~cache_tag:name
           ~cache_log:(fun m -> log2 := m :: !log2)
           name);
      check
        (Fmt.str "%s: entry healed (next run hits)" name)
        (List.exists (fun m -> contains m "hit") !log2))
    gate_benches

let check_stage_sink () =
  Fmt.pr "[stage sink]@.";
  let stages = ref [] in
  ignore
    (analyze ~stage_sink:(fun s dt -> stages := (s, dt) :: !stages) "radix");
  List.iter
    (fun s ->
      check
        (Fmt.str "stage %S reported with a sane time" s)
        (match List.assoc_opt s !stages with
        | Some dt -> dt >= 0.
        | None -> false))
    [ "pointer"; "relay"; "mhp"; "profile"; "plan"; "lockopt" ]

let () =
  check_par_eq_serial ();
  check_cache ();
  check_stage_sink ();
  if !failures = 0 then Fmt.pr "analyze-check: all checks passed@."
  else begin
    Fmt.pr "analyze-check: %d check(s) FAILED@." !failures;
    exit 1
  end
