(** Tests for the instrumentation side: clique analysis, granularity
    planning (function / loop / bb / instruction decisions on crafted
    programs reproducing the paper's Figures 2–4), and well-formedness of
    the transformed AST. *)

open Minic.Ast

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

(* ------------------------------------------------------------------ *)
(* Clique analysis *)

let test_clique_figure3 () =
  (* Figure 3: alice–bob and alice–carol racy and non-concurrent;
     bob–carol non-concurrent but race-free; all three mutually
     non-concurrent -> one clique, one shared lock *)
  let t =
    Instrument.Clique.compute
      ~non_concurrent:
        [ ("alice", "bob"); ("alice", "carol"); ("bob", "carol") ]
      ~racy:[ ("alice", "bob"); ("alice", "carol") ]
  in
  let c1 = Instrument.Clique.clique_of t ("alice", "bob") in
  let c2 = Instrument.Clique.clique_of t ("alice", "carol") in
  Alcotest.(check bool) "both pairs covered" true (c1 <> None && c2 <> None);
  Alcotest.(check (option int)) "shared clique (single lock for alice)" c1 c2

let test_clique_concurrent_pair_uncovered () =
  (* bob–dave race but run concurrently: no function lock *)
  let t =
    Instrument.Clique.compute
      ~non_concurrent:[ ("alice", "bob") ]
      ~racy:[ ("alice", "bob"); ("bob", "dave") ]
  in
  Alcotest.(check bool) "non-concurrent pair covered" true
    (Instrument.Clique.clique_of t ("alice", "bob") <> None);
  Alcotest.(check (option int)) "concurrent pair uncovered" None
    (Instrument.Clique.clique_of t ("bob", "dave"))

let test_clique_prefers_larger () =
  (* a pair in two cliques takes the one with the most racy pairs *)
  let t =
    Instrument.Clique.compute
      ~non_concurrent:
        [
          ("a", "b"); ("b", "c"); ("a", "c");  (* triangle {a,b,c} *)
          ("c", "d");                          (* edge {c,d} *)
        ]
      ~racy:[ ("a", "b"); ("b", "c"); ("a", "c"); ("c", "d") ]
  in
  let tri = Instrument.Clique.clique_of t ("a", "c") in
  Alcotest.(check bool) "triangle covered" true (tri <> None);
  let members = Instrument.Clique.members t (Option.get tri) in
  Alcotest.(check int) "triangle clique size" 3 (List.length members)

let test_clique_self_pair () =
  let t =
    Instrument.Clique.compute
      ~non_concurrent:[ ("f", "f") ]
      ~racy:[ ("f", "f") ]
  in
  Alcotest.(check bool) "self-race in non-concurrent function covered" true
    (Instrument.Clique.clique_of t ("f", "f") <> None)

(* ------------------------------------------------------------------ *)
(* Planning *)

let analyze ?(opts = Instrument.Plan.all_opts) ?(profile_runs = 6) ?mhp src =
  Chimera.Pipeline.analyze ~opts ~profile_runs ?mhp (Minic.Parser.parse src)

let test_plan_radix_loop_ranges () =
  (* Figure 4: the rank-zeroing loop gets a loop-lock with precise
     per-thread ranges. MHP pruning is off: it statically removes the
     main-vs-worker pair that exercises the cross-thread range machinery
     in this reduced kernel (the worker self-pair remains and takes the
     profile-guided clique path instead). *)
  let an =
    analyze ~mhp:false
      {|int rank[32];
        int ids[4];
        void w(int *idp) {
          int j; int base;
          base = *idp * 8;
          for (j = 0; j < 8; j++) { rank[base + j] = 0; }
        }
        int main() { int t[4]; int i;
          for (i = 0; i < 4; i++) { ids[i] = i; t[i] = spawn(w, &ids[i]); }
          for (i = 0; i < 4; i++) { join(t[i]); }
          return rank[0]; }|}
  in
  let loop_regions = Hashtbl.length an.an_plan.Instrument.Plan.pl_loop in
  Alcotest.(check bool) "at least one loop region" true (loop_regions > 0);
  let has_ranged_acq =
    Hashtbl.fold
      (fun _ acqs acc ->
        acc || List.exists (fun a -> a.wa_ranges <> []) acqs)
      an.an_plan.Instrument.Plan.pl_loop false
  in
  Alcotest.(check bool) "loop-lock carries symbolic ranges" true has_ranged_acq

let test_plan_function_lock_for_fork_ordered () =
  (* init-vs-reader: never concurrent (fork-ordered); reader runs in a
     single thread -> function lock. MHP pruning off: it proves the pair
     serialized before planning even sees it (checked below). *)
  let src =
      {|int table[16];
        int sum = 0;
        void reader(int *u) {
          int i;
          for (i = 0; i < 16; i++) { sum = sum + table[i]; }
        }
        void init() {
          int i;
          for (i = 0; i < 16; i++) { table[i] = i; }
        }
        int main() { int t;
          init();
          t = spawn(reader, &sum);
          join(t);
          return sum; }|}
  in
  let an = analyze ~mhp:false src in
  Alcotest.(check bool) "function regions exist" true
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_func > 0);
  (* with MHP on, the fork-ordered pairs are pruned statically: no race
     pairs survive, so the plan needs no locks at all *)
  let an' = analyze src in
  Alcotest.(check int) "MHP leaves nothing to lock" 0
    (List.length an'.an_report.Relay.Detect.races);
  Alcotest.(check bool) "pruning recorded in the plan" true
    (an'.an_plan.Instrument.Plan.pl_pruned_pairs
    = an'.an_plan.Instrument.Plan.pl_static_pairs
    && an'.an_plan.Instrument.Plan.pl_static_pairs > 0)

let test_plan_no_func_lock_for_self_concurrent () =
  (* a worker spawned twice is concurrent with itself: no function lock
     even though main-vs-worker races are fork-ordered *)
  let an =
    analyze
      {|int g;
        void w(int *u) {
          int i;
          for (i = 0; i < 60; i++) { g = g + 1; }
        }
        int main() { int t1; int t2;
          g = 1;
          t1 = spawn(w, &g); t2 = spawn(w, &g);
          join(t1); join(t2);
          return g; }|}
  in
  Alcotest.(check int) "no function regions" 0
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_func)

let test_plan_figure5_config_naive () =
  (* the naive configuration uses only instruction/bb-free regions *)
  let src =
    {|int g;
      void w(int *u) { int i; for (i = 0; i < 4; i++) { g = g + 1; } }
      int main() { int t1; int t2;
        t1 = spawn(w, &g); t2 = spawn(w, &g);
        join(t1); join(t2); return g; }|}
  in
  let an = analyze ~opts:Instrument.Plan.naive src in
  Alcotest.(check int) "naive: no func regions" 0
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_func);
  Alcotest.(check int) "naive: no loop regions" 0
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_loop);
  Alcotest.(check int) "naive: no bb regions" 0
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_run);
  Alcotest.(check bool) "naive: instruction regions" true
    (Hashtbl.length an.an_plan.Instrument.Plan.pl_stmt > 0)

let test_plan_pair_shares_lock () =
  let an =
    analyze
      {|int g;
        void a(int *u) { g = g + 1; }
        void b(int *u) { g = g * 2; }
        int main() { int t1; int t2;
          t1 = spawn(a, &g); t2 = spawn(b, &g);
          join(t1); join(t2); return g; }|}
  in
  List.iter
    (fun (pd : Instrument.Plan.pair_decision) ->
      ignore pd.pd_lock (* same lock object by construction *))
    an.an_plan.Instrument.Plan.pl_decisions;
  (* a-vs-b pair: both sides' acquisitions reference the same lock id *)
  let pairs =
    List.filter
      (fun (pd : Instrument.Plan.pair_decision) ->
        pd.pd_pair.rp_s1.st_fname <> pd.pd_pair.rp_s2.st_fname)
      an.an_plan.Instrument.Plan.pl_decisions
  in
  Alcotest.(check bool) "cross-function pairs exist" true (pairs <> [])

(* ------------------------------------------------------------------ *)
(* Transform well-formedness *)

let enters_and_exits (p : program) =
  let enters = ref 0 and exits = ref 0 in
  iter_program_stmts
    (fun s ->
      match s.skind with
      | WeakEnter _ -> incr enters
      | WeakExit _ -> incr exits
      | _ -> ())
    p;
  (!enters, !exits)

let test_transform_balanced () =
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an =
        Chimera.Pipeline.analyze ~profile_runs:4
          ~profile_io:(fun i -> b.b_io ~seed:(50 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse (b.b_source ~workers:3 ~scale:2))
      in
      let e, x = enters_and_exits an.an_instrumented in
      Alcotest.(check int) (b.b_name ^ ": enter/exit balance") e x)
    Bench_progs.Registry.all

let test_transform_sorted_acquisitions () =
  (* every WeakEnter lists its locks in canonical order *)
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an =
        Chimera.Pipeline.analyze ~profile_runs:4
          ~profile_io:(fun i -> b.b_io ~seed:(50 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse (b.b_source ~workers:3 ~scale:2))
      in
      iter_program_stmts
        (fun s ->
          match s.skind with
          | WeakEnter acqs ->
              let locks = List.map (fun a -> a.wa_lock) acqs in
              let sorted = List.sort compare_weak_lock locks in
              Alcotest.(check bool)
                (b.b_name ^ ": acquisitions sorted")
                true (locks = sorted)
          | _ -> ())
        an.an_instrumented)
    Bench_progs.Registry.all

let test_transform_instrumented_reexecutes () =
  (* the instrumented program still computes the same DRF results *)
  let src =
    {|int a[16]; int total = 0; int m;
      int ids[2];
      void w(int *idp) {
        int i; int id; int local;
        id = *idp; local = 0;
        for (i = id * 8; i < id * 8 + 8; i++) { a[i] = i; local = local + i; }
        lock(&m); total = total + local; unlock(&m);
      }
      int main() { int t[2]; int i;
        for (i = 0; i < 2; i++) { ids[i] = i; t[i] = spawn(w, &ids[i]); }
        for (i = 0; i < 2; i++) { join(t[i]); }
        output(total);
        return 0; }|}
  in
  let an = analyze src in
  let io = Interp.Iomodel.random ~seed:1 in
  let config = { Interp.Engine.default_config with seed = 2; cores = 4 } in
  let o1 = Interp.Engine.run ~config ~mode:Interp.Engine.Native ~io an.an_prog in
  let o2 =
    Interp.Engine.run ~config ~mode:Interp.Engine.Native ~io an.an_instrumented
  in
  Alcotest.(check (list int)) "same output" (List.map snd o1.o_outputs)
    (List.map snd o2.o_outputs);
  Alcotest.(check int) "sum of 0..15" 120 (List.hd (List.map snd o2.o_outputs))

let test_hoisted_calls_have_no_guarded_calls () =
  (* after instrumentation, no WeakEnter region may bracket a call
     statement directly (arguments are hoisted instead) *)
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let an =
        Chimera.Pipeline.analyze ~profile_runs:4
          ~profile_io:(fun i -> b.b_io ~seed:(50 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse (b.b_source ~workers:3 ~scale:2))
      in
      (* scan every block: between WeakEnter and its matching WeakExit at
         the same nesting depth, no Call/Builtin that can block. Function
         regions are exempt: function-locks legitimately span blocking
         operations (that is what the timeout of Section 2.3 is for). *)
      let is_func_only locks =
        List.for_all (fun (l : weak_lock) -> l.wl_gran = Gfunc) locks
      in
      let rec scan_block (blk : block) =
        let depth = ref 0 in
        List.iter
          (fun (s : stmt) ->
            (match s.skind with
            | WeakEnter acqs
              when not (is_func_only (List.map (fun a -> a.wa_lock) acqs)) ->
                incr depth
            | WeakEnter _ -> ()
            | WeakExit locks when not (is_func_only locks) -> decr depth
            | WeakExit _ -> ()
            | Call _ when !depth > 0 ->
                Alcotest.failf "%s: call guarded by weak region" b.b_name
            | Builtin (_, (MutexLock | MutexUnlock | BarrierWait | CondWait
                          | Join | NetRead | FileRead), _)
              when !depth > 0 ->
                Alcotest.failf "%s: blocking builtin guarded by weak region"
                  b.b_name
            | _ -> ());
            match s.skind with
            | If (_, b1, b2) -> scan_block b1; scan_block b2
            | While (_, body, _) -> scan_block body
            | _ -> ())
          blk
      in
      List.iter (fun (fd : fundec) -> scan_block fd.f_body) an.an_instrumented.p_funs)
    Bench_progs.Registry.all

let suite =
  [
    Alcotest.test_case "clique: Figure 3" `Quick test_clique_figure3;
    Alcotest.test_case "clique: concurrent uncovered" `Quick
      test_clique_concurrent_pair_uncovered;
    Alcotest.test_case "clique: prefers larger" `Quick test_clique_prefers_larger;
    Alcotest.test_case "clique: self pair" `Quick test_clique_self_pair;
    Alcotest.test_case "plan: radix loop ranges (Fig 4)" `Quick
      test_plan_radix_loop_ranges;
    Alcotest.test_case "plan: function lock for fork-ordered" `Quick
      test_plan_function_lock_for_fork_ordered;
    Alcotest.test_case "plan: no func lock when self-concurrent" `Quick
      test_plan_no_func_lock_for_self_concurrent;
    Alcotest.test_case "plan: naive config" `Quick test_plan_figure5_config_naive;
    Alcotest.test_case "plan: pairs share locks" `Quick test_plan_pair_shares_lock;
    Alcotest.test_case "transform: enter/exit balanced" `Slow
      test_transform_balanced;
    Alcotest.test_case "transform: sorted acquisitions" `Slow
      test_transform_sorted_acquisitions;
    Alcotest.test_case "transform: reexecutes correctly" `Quick
      test_transform_instrumented_reexecutes;
    Alcotest.test_case "transform: no guarded blocking ops" `Slow
      test_hoisted_calls_have_no_guarded_calls;
  ]
