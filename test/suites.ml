(** The full test-suite registry, shared by the serial Alcotest runner
    ([test_chimera.ml]) and the domain-sharded runner ([par_runner.ml]).

    Suites must be self-contained: any mutable state a suite keeps (e.g.
    [Test_e2e]'s analysis cache) is touched only by its own cases, so the
    parallel runner may run distinct suites concurrently — cases within
    one suite always run serially, in order. *)

let all : (string * unit Alcotest.test_case list) list =
  [
    ("minic", Test_minic.suite);
    ("pointer", Test_pointer.suite);
    ("relay", Test_relay.suite);
    ("mhp", Test_mhp.suite);
    ("symbolic", Test_symbolic.suite);
    ("runtime", Test_runtime.suite);
    ("replay-log", Test_replay_log.suite);
    ("trace", Test_trace.suite);
    ("zcompress", Test_zcompress.suite);
    ("interp", Test_interp.suite);
    ("sched", Test_sched.suite);
    ("dynrace", Test_dynrace.suite);
    ("profiling", Test_profiling.suite);
    ("instrument", Test_instrument.suite);
    ("lockopt", Test_lockopt.suite);
    ("par", Test_par.suite);
    ("ancache", Test_ancache.suite);
    ("cli", Test_cli.suite);
    ("fuzz", Test_fuzz.suite);
    ("detexec", Test_detexec.suite);
    ("seglog", Test_seglog.suite);
    ("e2e", Test_e2e.suite);
    ("refine", Test_refine.suite);
  ]
