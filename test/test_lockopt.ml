(** The interprocedural must-lockset elision (lib/lockopt): directed
    units on hand-built plans (dominated coverage, one-path-held joins,
    recursive poisoning, call-site intersection), a fuzz property that
    elision only ever {e removes} acquisitions, and the tier-1 replay
    pin: every benchmark records and replays identically with the pass
    on and off, and elision strictly reduces runtime acquisitions
    wherever it removed a static one. *)

open Minic.Ast
module Plan = Instrument.Plan

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

(* ------------------------------------------------------------------ *)
(* hand-built plans *)

let lock = { wl_id = 0; wl_gran = Gfunc }
let total = { wa_lock = lock; wa_ranges = [] }

(* a plan with exactly the given region -> acquisitions entries *)
let plan_of ~funcs ~stmts : Plan.t =
  let tbl kvs =
    let h = Hashtbl.create 8 in
    List.iter (fun (k, v) -> Hashtbl.replace h k v) kvs;
    h
  in
  {
    Plan.pl_func = tbl funcs;
    pl_loop = tbl [];
    pl_run = tbl [];
    pl_stmt = tbl stmts;
    pl_decisions = [];
    pl_cliques = Instrument.Clique.compute ~non_concurrent:[] ~racy:[];
    pl_n_locks = 1;
    pl_static_pairs = 0;
    pl_pruned_pairs = 0;
  }

let optimize p plan = Lockopt.optimize p plan (Minic.Callgraph.build p)

(* sids of [Assign (Var v, _)] statements, in program order *)
let assign_sids p v =
  let acc = ref [] in
  List.iter
    (fun (fd : fundec) ->
      iter_stmts
        (fun s ->
          match s.skind with
          | Assign (Var w, _) when w = v -> acc := s.sid :: !acc
          | _ -> ())
        fd.f_body)
    p.p_funs;
  List.rev !acc

let prov_of (r : Lockopt.report) (region : Plan.region) : Lockopt.prov =
  match
    List.find_opt
      (fun (e : Lockopt.entry) -> e.e_region = region)
      r.lo_entries
  with
  | Some e -> e.e_prov
  | None -> Alcotest.failf "no report entry for %a" Plan.pp_region region

let prov = Alcotest.testable Lockopt.pp_prov ( = )

let test_dominated_elided () =
  (* the statement region sits under the function region's lock: the
     function's WeakEnter dominates every node of the body, so the inner
     (same-lock, total-claim) acquisition is redundant *)
  let p =
    parse
      {|int x = 0;
        void f() { x = 1; }
        int main() { f(); return x; }|}
  in
  let sid = List.hd (assign_sids p "x") in
  let plan = plan_of ~funcs:[ ("f", [ total ]) ] ~stmts:[ (sid, [ total ]) ] in
  let plan', r = optimize p plan in
  Alcotest.(check int) "one acquisition elided" 1 r.lo_elided_acqs;
  Alcotest.check prov "stmt region dominated" Lockopt.Elided_dominated
    (prov_of r (Plan.RStmt sid));
  Alcotest.check prov "func region kept" Lockopt.Kept
    (prov_of r (Plan.RFunc "f"));
  Alcotest.(check int) "stmt table emptied" 0
    (Hashtbl.length plan'.Plan.pl_stmt);
  Alcotest.(check int) "func table intact" 1
    (Hashtbl.length plan'.Plan.pl_func)

let test_one_path_not_elided () =
  (* the lock is acquired on the then-path only; at the join the must-
     analysis meets "held" with "not held", so the region after the If
     keeps its acquisition *)
  let p =
    parse
      {|int x = 0;
        void f(int c) {
          if (c > 0) { x = 1; } else { c = 0; }
          x = 3;
        }
        int main() { f(1); return x; }|}
  in
  let sids = assign_sids p "x" in
  let branch_sid = List.nth sids 0 and after_sid = List.nth sids 1 in
  let plan =
    plan_of ~funcs:[]
      ~stmts:[ (branch_sid, [ total ]); (after_sid, [ total ]) ]
  in
  let _, r = optimize p plan in
  Alcotest.(check int) "nothing elided" 0 r.lo_elided_acqs;
  Alcotest.check prov "post-join region kept" Lockopt.Kept
    (prov_of r (Plan.RStmt after_sid))

let test_recursive_callee_poisoned () =
  (* the only external call site of [r] runs under main's function lock,
     but [r] sits on a call-graph cycle: its entry context is poisoned to
     "nothing held" (the recursive call site cannot be trusted before [r]
     itself is analyzed), so the body acquisition stays *)
  let p =
    parse
      {|int x = 0;
        void r(int n) {
          x = n;
          if (n > 0) { r(n - 1); }
        }
        int main() { r(3); return x; }|}
  in
  let body_sid = List.hd (assign_sids p "x") in
  let plan =
    plan_of
      ~funcs:[ ("main", [ total ]) ]
      ~stmts:[ (body_sid, [ total ]) ]
  in
  let _, r = optimize p plan in
  Alcotest.(check int) "nothing elided" 0 r.lo_elided_acqs;
  Alcotest.check prov "recursive callee's region kept" Lockopt.Kept
    (prov_of r (Plan.RStmt body_sid))

let test_callsite_elided () =
  (* the only call site of [g] runs under main's function lock (a weak
     lock stays held across a plain call — only a region entry suspends
     it): g's base context must-holds it, so g's body acquisition is
     elided *)
  let p =
    parse
      {|int x = 0;
        void g() { x = 1; }
        int main() { g(); return x; }|}
  in
  let body_sid = List.hd (assign_sids p "x") in
  let plan =
    plan_of
      ~funcs:[ ("main", [ total ]) ]
      ~stmts:[ (body_sid, [ total ]) ]
  in
  let plan', r = optimize p plan in
  Alcotest.(check int) "one acquisition elided" 1 r.lo_elided_acqs;
  Alcotest.check prov "callee region covered by call sites"
    Lockopt.Elided_callsite
    (prov_of r (Plan.RStmt body_sid));
  Alcotest.check prov "main's own region kept" Lockopt.Kept
    (prov_of r (Plan.RFunc "main"));
  Alcotest.(check bool) "callee's stmt gone from the plan" false
    (Hashtbl.mem plan'.Plan.pl_stmt body_sid)

let test_unlocked_caller_kept () =
  (* same callee, but a second caller — a spawned thread root, whose
     entry context is pinned to "nothing held" — calls [g] without the
     lock: the call-site intersection is empty and the body acquisition
     survives *)
  let p =
    parse
      {|int x = 0;
        void g() { x = 1; }
        void h(int *u) { g(); }
        int main() { int t;
          t = spawn(h, &x);
          join(t);
          g();
          return x; }|}
  in
  let body_sid = List.hd (assign_sids p "x") in
  let plan =
    plan_of
      ~funcs:[ ("main", [ total ]) ]
      ~stmts:[ (body_sid, [ total ]) ]
  in
  let _, r = optimize p plan in
  Alcotest.(check int) "nothing elided" 0 r.lo_elided_acqs;
  Alcotest.check prov "one unlocked call site keeps the region"
    Lockopt.Kept
    (prov_of r (Plan.RStmt body_sid))

(* ------------------------------------------------------------------ *)
(* fuzz: elision only removes acquisitions *)

(* every (region, acquisition) of a plan, as a sorted multiset *)
let acq_multiset (pl : Plan.t) =
  let collect tbl mk acc =
    Hashtbl.fold
      (fun k acqs acc ->
        List.fold_left (fun acc a -> (mk k, a) :: acc) acc acqs)
      tbl acc
  in
  []
  |> collect pl.Plan.pl_func (fun f -> `F f)
  |> collect pl.Plan.pl_loop (fun l -> `L l)
  |> collect pl.Plan.pl_run (fun h -> `R h)
  |> collect pl.Plan.pl_stmt (fun s -> `S s)
  |> List.sort compare

let rec sub_multiset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
      if x = y then sub_multiset xs' ys'
      else if compare y x < 0 then sub_multiset xs ys'
      else false

let test_fuzz_subset () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:8 ~name:"elided plan is a sub-multiset"
       (QCheck.make Proggen.gen_program) (fun src ->
         let an =
           Chimera.Pipeline.analyze ~profile_runs:4
             ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(700 + i))
             (Minic.Parser.parse ~file:"fuzz.mc" src)
         in
         let raw = acq_multiset an.an_plan_raw in
         let opt = acq_multiset an.an_plan in
         sub_multiset opt raw
         && an.an_lockopt.Lockopt.lo_plan_acqs = List.length raw
         && an.an_lockopt.Lockopt.lo_elided_acqs
            = List.length raw - List.length opt))

(* ------------------------------------------------------------------ *)
(* tier-1 replay pin: the nine benchmarks, pass on and off *)

let weak_count (o : Interp.Engine.outcome) =
  Array.fold_left ( + ) 0 o.o_stats.n_weak_acq

let bench_case ?pool (b : Bench_progs.Registry.bench) =
  let scale = b.b_eval_scale in
  let analyze lockopt =
    Chimera.Pipeline.analyze ?pool ~profile_runs:6 ~lockopt
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:b.b_name (b.b_source ~workers:4 ~scale))
  in
  let io = b.b_io ~seed:42 ~scale in
  let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
  let run_one (an : Chimera.Pipeline.analysis) =
    let r = Chimera.Runner.record ~config ~io an.an_instrumented in
    let rep =
      Chimera.Runner.replay ~config ~io an.an_instrumented
        r.Chimera.Runner.rc_log
    in
    (match Chimera.Runner.same_execution r.rc_outcome rep with
    | Ok () -> ()
    | Error d ->
        Alcotest.failf "%s: replay diverged: %a" b.b_name
          Chimera.Runner.pp_divergence d);
    r.rc_outcome
  in
  let an_on = analyze true and an_off = analyze false in
  let o_on = run_one an_on and o_off = run_one an_off in
  let elided = an_on.an_lockopt.Lockopt.lo_elided_acqs in
  if elided > 0 then
    Alcotest.(check bool)
      (Fmt.str "%s: elision reduces runtime acquisitions (%d < %d)"
         b.b_name (weak_count o_on) (weak_count o_off))
      true
      (weak_count o_on < weak_count o_off);
  elided

let test_bench_replay_pin () =
  let benches =
    List.map Bench_progs.Registry.by_name Bench_progs.Registry.names
  in
  let elided =
    Par.Pool.with_pool ~clamp:false ~domains:4 (fun p ->
        Par.Pool.map_list p (fun b -> bench_case ~pool:p b) benches)
  in
  let n_eliding = List.length (List.filter (fun e -> e > 0) elided) in
  Alcotest.(check bool)
    (Fmt.str "at least 3 of 9 benchmarks elide (got %d)" n_eliding)
    true (n_eliding >= 3)

let suite =
  [
    Alcotest.test_case "dominated stmt under func lock elided" `Quick
      test_dominated_elided;
    Alcotest.test_case "lock held on one branch only: kept" `Quick
      test_one_path_not_elided;
    Alcotest.test_case "recursive callee poisons call-site context" `Quick
      test_recursive_callee_poisoned;
    Alcotest.test_case "all call sites locked: callee elided" `Quick
      test_callsite_elided;
    Alcotest.test_case "one unlocked call site: callee kept" `Quick
      test_unlocked_caller_kept;
    Alcotest.test_case "fuzz: elision only removes acquisitions" `Slow
      test_fuzz_subset;
    Alcotest.test_case "benchmarks replay identically, pass on/off" `Slow
      test_bench_replay_pin;
  ]
