(** Standalone gate for the corpus-driven refinement loop
    (`make refine-check`).

    Library leg, on the pfscan/fft/ocean trio:

    - build a stress corpus in memory (seeds 1..4 x the three
      scheduling strategies, 4 cores), refine the lockopt plan on its
      evidence, and require the safety valve to come back clean — the
      validation re-records every corpus cell with the detector
      attached ([track_weak:true]) and must find zero violations;
    - record and replay the evaluation input under both the lockopt and
      the refined instrumentation: both must satisfy record == replay,
      refined runtime weak-lock acquisitions must never exceed lockopt,
      and at least two of the three applications must drop strictly;
    - a machine-readable report lands in /tmp/chimera-refine.json
      (schema chimera-refine-check/1), validated by the shared Bjson
      reader before it is written.

    CLI leg, end to end through the installed subcommands:

    - [chimera stress --corpus DIR] materialises an on-disk corpus with
      a manifest; [chimera refine --corpus DIR] reloads it, re-derives
      each analysis, emits per-program refined-plan deployments, and
      self-validates (exit 0);
    - hand-corrupting the manifest's [plan_digest] makes the refine
      subcommand report the stale evidence and exit with the typed
      issue status (2) — never a crash.

    Exits 0 when every check passes, 1 otherwise. *)

let failures = ref 0

let check what ok =
  if ok then Fmt.pr "  ok: %s@." what
  else begin
    incr failures;
    Fmt.pr "  FAIL: %s@." what
  end

let cli =
  try Sys.getenv "CHIMERA_CLI"
  with Not_found -> "./_build/default/bin/chimera_cli.exe"

let benches = [ "pfscan"; "fft"; "ocean" ]
let seeds = [ 1; 2; 3; 4 ]

let jobs =
  List.concat_map
    (fun strat -> List.map (fun s -> (s, strat)) seeds)
    Interp.Engine.all_strategies

(* ------------------------------------------------------------------ *)
(* library leg *)

type row = {
  r_name : string;
  r_base_acqs : int;
  r_refined_acqs : int;
  r_dropped : int;
  r_violations : int;
  r_rt_lockopt : int;
  r_rt_refined : int;
  r_replay_lockopt : bool;
  r_replay_refined : bool;
}

let run_bench name : row =
  let b = Bench_progs.Registry.by_name name in
  let scale = b.b_eval_scale in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:6
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:name (b.b_source ~workers:4 ~scale))
  in
  let io = b.b_io ~seed:42 ~scale in
  let obs =
    Refine.corpus_observations ~cores:4 ~io ~instrumented:an.an_instrumented
      ~racy_sids:an.an_report.racy_sids ~jobs ()
  in
  let rf = Refine.refine ~min_coverage:2 ~plan:an.an_plan obs in
  let refined = Instrument.Transform.apply an.an_prog rf.rf_plan in
  let va =
    Refine.validate ~cores:4 ~io ~report:an.an_report ~refined ~jobs ()
  in
  let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
  let run_one prog =
    let r = Chimera.Runner.record ~config ~io prog in
    let rep = Chimera.Runner.replay ~config ~io prog r.Chimera.Runner.rc_log in
    ( Refine.runtime_weak_acqs r.rc_outcome,
      Chimera.Runner.same_execution r.rc_outcome rep = Ok () )
  in
  let rt_base, det_base = run_one an.an_instrumented in
  let rt_ref, det_ref = run_one refined in
  {
    r_name = name;
    r_base_acqs = rf.rf_base_acqs;
    r_refined_acqs = rf.rf_refined_acqs;
    r_dropped = List.length rf.rf_dropped;
    r_violations = List.length va.va_violations;
    r_rt_lockopt = rt_base;
    r_rt_refined = rt_ref;
    r_replay_lockopt = det_base;
    r_replay_refined = det_ref;
  }

let library_leg () =
  Fmt.pr "refinement on the stress trio (seeds %s x default,pct,storm):@."
    (String.concat "," (List.map string_of_int seeds));
  let rows = List.map run_bench benches in
  List.iter
    (fun r ->
      Fmt.pr "  %-8s static %2d -> %2d (%d lock(s) dropped)  rt-acq %3d -> %3d@."
        r.r_name r.r_base_acqs r.r_refined_acqs r.r_dropped r.r_rt_lockopt
        r.r_rt_refined;
      check (Fmt.str "%s: safety valve clean" r.r_name) (r.r_violations = 0);
      check
        (Fmt.str "%s: record == replay under the lockopt plan" r.r_name)
        r.r_replay_lockopt;
      check
        (Fmt.str "%s: record == replay under the refined plan" r.r_name)
        r.r_replay_refined;
      check
        (Fmt.str "%s: refined acquisitions never exceed lockopt" r.r_name)
        (r.r_rt_refined <= r.r_rt_lockopt))
    rows;
  let strict =
    List.length (List.filter (fun r -> r.r_rt_refined < r.r_rt_lockopt) rows)
  in
  check "strict runtime-acquisition drop on >= 2 applications" (strict >= 2);
  rows

(* ------------------------------------------------------------------ *)
(* JSON artifact *)

let emit_report (rows : row list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"chimera-refine-check/1\",\n";
  Buffer.add_string buf
    (Fmt.str "  \"min_coverage\": 2,\n  \"seeds\": [%s],\n  \"benches\": [\n"
       (String.concat ", " (List.map string_of_int seeds)));
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": \"%s\", \"static_acqs\": %d, \"refined_acqs\": \
            %d,\n\
           \     \"locks_dropped\": %d, \"violations\": %d,\n\
           \     \"rt_acq_lockopt\": %d, \"rt_acq_refined\": %d,\n\
           \     \"replay_lockopt\": %b, \"replay_refined\": %b}%s\n"
           r.r_name r.r_base_acqs r.r_refined_acqs r.r_dropped r.r_violations
           r.r_rt_lockopt r.r_rt_refined r.r_replay_lockopt r.r_replay_refined
           (if i < List.length rows - 1 then "," else "")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let doc = Buffer.contents buf in
  (match Bjson.parse doc with
  | exception Bjson.Bad m -> check (Fmt.str "report JSON parses (%s)" m) false
  | _ -> check "report JSON parses" true);
  let path = "/tmp/chimera-refine.json" in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Fmt.pr "  report: %s@." path

(* ------------------------------------------------------------------ *)
(* CLI leg *)

let sh cmd =
  match Unix.system cmd with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let cli_leg () =
  Fmt.pr "CLI loop (stress --corpus / refine / corrupted manifest):@.";
  let dir = Filename.temp_file "chimera-refine" "" in
  Sys.remove dir;
  let corpus = Filename.concat dir "corpus" in
  let plans = Filename.concat dir "plans" in
  let quiet = "> /dev/null 2>&1" in
  let rc =
    sh
      (Fmt.str "%s stress %s --seeds 1..3 --corpus %s -j 2 %s" cli
         (String.concat " " benches)
         (Filename.quote corpus) quiet)
  in
  check "chimera stress --corpus exits 0" (rc = 0);
  let manifest = Filename.concat corpus "corpus.json" in
  check "corpus manifest written" (Sys.file_exists manifest);
  let rc =
    sh
      (Fmt.str "%s refine --corpus %s --min-coverage 2 -o %s %s" cli
         (Filename.quote corpus) (Filename.quote plans) quiet)
  in
  check "chimera refine validates its own corpus (exit 0)" (rc = 0);
  List.iter
    (fun b ->
      check
        (Fmt.str "refined deployment emitted for %s" b)
        (Sys.file_exists (Filename.concat plans (b ^ ".refined.json"))))
    benches;
  (* stale evidence: corrupt every plan digest in the manifest and make
     sure the refine subcommand reports it with the typed issue exit *)
  let doc = read_file manifest in
  let corrupted =
    Str.global_replace
      (Str.regexp {|"plan_digest": "[0-9a-f]+"|})
      {|"plan_digest": "deadbeefdeadbeefdeadbeefdeadbeef"|} doc
  in
  check "manifest corruption changed the digest" (corrupted <> doc);
  write_file manifest corrupted;
  let rc =
    sh
      (Fmt.str "%s refine --corpus %s -o %s %s" cli (Filename.quote corpus)
         (Filename.quote plans) quiet)
  in
  check "stale corpus evidence is a typed issue (exit 2)" (rc = 2);
  ignore (sh (Fmt.str "rm -rf %s" (Filename.quote dir)))

let () =
  let rows = library_leg () in
  emit_report rows;
  cli_leg ();
  if !failures > 0 then begin
    Fmt.pr "refine-check: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "refine-check: all checks passed@."
