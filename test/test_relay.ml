(** Tests for the RELAY static race detector: lockset reasoning, summary
    composition, thread-root logic, the heapified-local escape filter, and
    the deliberate sources of imprecision the paper's optimizations
    target. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

let report src = snd (Relay.Detect.analyze (parse src))

let race_between (r : Relay.Detect.report) f g =
  List.exists
    (fun (rp : Relay.Detect.race_pair) ->
      (rp.rp_s1.st_fname = f && rp.rp_s2.st_fname = g)
      || (rp.rp_s1.st_fname = g && rp.rp_s2.st_fname = f))
    r.races

let test_unprotected_counter_races () =
  let r =
    report
      {|int counter;
        void w(int *u) { counter = counter + 1; }
        int main() { int t1; int t2;
          t1 = spawn(w, &counter); t2 = spawn(w, &counter);
          join(t1); join(t2); return counter; }|}
  in
  Alcotest.(check bool) "w races with itself" true (race_between r "w" "w")

let test_locked_counter_no_self_race () =
  let r =
    report
      {|int counter; int m;
        void w(int *u) { lock(&m); counter = counter + 1; unlock(&m); }
        int main() { int t1; int t2;
          t1 = spawn(w, &counter); t2 = spawn(w, &counter);
          join(t1); join(t2); return counter; }|}
  in
  Alcotest.(check bool) "consistently locked: no w-w race" false
    (race_between r "w" "w")

let test_different_locks_race () =
  let r =
    report
      {|int counter; int m1; int m2;
        void a(int *u) { lock(&m1); counter = counter + 1; unlock(&m1); }
        void b(int *u) { lock(&m2); counter = counter + 1; unlock(&m2); }
        int main() { int t1; int t2;
          t1 = spawn(a, &counter); t2 = spawn(b, &counter);
          join(t1); join(t2); return counter; }|}
  in
  Alcotest.(check bool) "disjoint locksets race" true (race_between r "a" "b")

let test_lock_through_callee () =
  (* summary composition: the callee's accesses inherit the caller's
     lockset *)
  let r =
    report
      {|int counter; int m;
        void bump() { counter = counter + 1; }
        void w(int *u) { lock(&m); bump(); unlock(&m); }
        int main() { int t1; int t2;
          t1 = spawn(w, &counter); t2 = spawn(w, &counter);
          join(t1); join(t2); return counter; }|}
  in
  Alcotest.(check bool) "callee protected by caller's lock" false
    (race_between r "bump" "bump")

let test_lock_acquired_in_callee () =
  (* the callee's lock effect must flow back to the caller *)
  let r =
    report
      {|int counter; int m;
        void take() { lock(&m); }
        void drop() { unlock(&m); }
        void w(int *u) { take(); counter = counter + 1; drop(); }
        int main() { int t1; int t2;
          t1 = spawn(w, &counter); t2 = spawn(w, &counter);
          join(t1); join(t2); return counter; }|}
  in
  Alcotest.(check bool) "lock effect composes bottom-up" false
    (race_between r "w" "w")

let test_fork_join_false_positive () =
  (* RELAY itself ignores fork/join: init-vs-worker is reported even
     though it is ordered — the deliberate imprecision. The MHP pass
     (on by default) recovers exactly this pattern, so the pair must be
     reported raw and pruned-with-provenance otherwise. *)
  let src =
    {|int data;
      void w(int *u) { data = data + 1; }
      int main() { int t;
        data = 5;
        t = spawn(w, &data);
        join(t);
        return data; }|}
  in
  let raw = snd (Relay.Detect.analyze ~mhp:false (parse src)) in
  Alcotest.(check bool) "fork-ordered write reported by raw RELAY" true
    (race_between raw "main" "w");
  let r = report src in
  Alcotest.(check bool) "MHP prunes the fork-ordered pair" false
    (race_between r "main" "w");
  Alcotest.(check int) "candidate count preserved" raw.n_candidates
    r.n_candidates;
  Alcotest.(check bool) "pruned with a recorded reason" true
    (List.exists
       (fun ((rp : Relay.Detect.race_pair), pv) ->
         pv <> Relay.Detect.Kept
         && ((rp.rp_s1.st_fname = "main" && rp.rp_s2.st_fname = "w")
            || (rp.rp_s1.st_fname = "w" && rp.rp_s2.st_fname = "main")))
       r.pruned)

let test_barrier_false_positive () =
  (* the water pattern of Figure 2: barrier-separated phases still race
     statically *)
  let r =
    report
      {|int x; int bar;
        void interf(int id) { x = x + id; }
        void bndry(int id) { x = x / 2; }
        void w(int *idp) { interf(*idp); barrier_wait(&bar); bndry(*idp); }
        int main() { int t1; int t2; int i1; int i2;
          i1 = 1; i2 = 2;
          barrier_init(&bar, 2);
          t1 = spawn(w, &i1); t2 = spawn(w, &i2);
          join(t1); join(t2); return x; }|}
  in
  Alcotest.(check bool) "barrier-separated functions reported racy" true
    (race_between r "interf" "bndry")

let test_single_thread_no_race () =
  let r =
    report
      {|int g;
        void f() { g = g + 1; }
        int main() { f(); f(); return g; }|}
  in
  Alcotest.(check int) "no threads, no races" 0 (List.length r.races)

let test_escape_filter () =
  (* locals that never escape cannot race even when the function runs in
     many threads *)
  let r =
    report
      {|int sink;
        void w(int *u) { int local; local = 1; local = local + 1; sink = local; }
        int main() { int t1; int t2;
          t1 = spawn(w, &sink); t2 = spawn(w, &sink);
          join(t1); join(t2); return sink; }|}
  in
  let local_race =
    List.exists
      (fun (rp : Relay.Detect.race_pair) ->
        List.exists
          (function
            | Pointer.Absloc.ALocal (_, "local") -> true
            | _ -> false)
          rp.rp_objs)
      r.races
  in
  Alcotest.(check bool) "non-escaping local filtered" false local_race;
  Alcotest.(check bool) "sink still races" true
    (List.exists
       (fun (rp : Relay.Detect.race_pair) ->
         List.exists (( = ) (Pointer.Absloc.AGlobal "sink")) rp.rp_objs)
       r.races)

let test_escaped_local_races () =
  (* a local whose address escapes through the spawn argument must be
     reported *)
  let r =
    report
      {|void w(int *p) { *p = *p + 1; }
        int main() { int shared; int t1; int t2;
          shared = 0;
          t1 = spawn(w, &shared); t2 = spawn(w, &shared);
          join(t1); join(t2);
          return shared; }|}
  in
  let shared_race =
    List.exists
      (fun (rp : Relay.Detect.race_pair) ->
        List.exists
          (function
            | Pointer.Absloc.ALocal ("main", "shared") -> true
            | _ -> false)
          rp.rp_objs)
      r.races
  in
  Alcotest.(check bool) "escaped local reported" true shared_race

let test_read_read_no_race () =
  let r =
    report
      {|int g = 7;
        int out1; int out2;
        void w1(int *u) { out1 = g; }
        void w2(int *u) { out2 = g; }
        int main() { int t1; int t2;
          t1 = spawn(w1, &g); t2 = spawn(w2, &g);
          join(t1); join(t2); return out1 + out2; }|}
  in
  let g_race =
    List.exists
      (fun (rp : Relay.Detect.race_pair) ->
        List.exists (( = ) (Pointer.Absloc.AGlobal "g")) rp.rp_objs)
      r.races
  in
  Alcotest.(check bool) "read-read not a race" false g_race

let test_racy_sids_cover_pairs () =
  let r =
    report
      {|int a; int b;
        void w(int *u) { a = a + 1; b = b + 1; }
        int main() { int t1; int t2;
          t1 = spawn(w, &a); t2 = spawn(w, &a);
          join(t1); join(t2); return a + b; }|}
  in
  List.iter
    (fun (rp : Relay.Detect.race_pair) ->
      Alcotest.(check bool) "s1 in racy_sids" true
        (Hashtbl.mem r.racy_sids rp.rp_s1.st_sid);
      Alcotest.(check bool) "s2 in racy_sids" true
        (Hashtbl.mem r.racy_sids rp.rp_s2.st_sid))
    r.races

let test_netread_buffer_write_detected () =
  (* net_read writes its buffer: two workers reading into one shared
     buffer must race *)
  let r =
    report
      {|int buf[64];
        void w(int *u) { int got; got = net_read(buf, 32); }
        int main() { int t1; int t2;
          t1 = spawn(w, &buf[0]); t2 = spawn(w, &buf[0]);
          join(t1); join(t2); return buf[0]; }|}
  in
  let buf_race =
    List.exists
      (fun (rp : Relay.Detect.race_pair) ->
        List.exists (( = ) (Pointer.Absloc.AGlobal "buf")) rp.rp_objs)
      r.races
  in
  Alcotest.(check bool) "syscall buffer write races" true buf_race

(* ------------------------------------------------------------------ *)
(* escapes audit: the doc promises a local escapes iff its address is
   reachable from a global, the heap, or another function's frame in the
   points-to solution. Exercise each holder class directly. *)

let escapes_of src fname vname =
  let p = parse src in
  let pa = Pointer.Analysis.run p in
  Relay.Detect.escapes pa (Pointer.Absloc.ALocal (fname, vname))

let test_escapes_via_global_holder () =
  let src =
    {|int *gp;
      void f() { int x; gp = &x; }
      int main() { f(); return 0; }|}
  in
  Alcotest.(check bool) "address stored in a global escapes" true
    (escapes_of src "f" "x")

let test_escapes_via_other_frame () =
  (* the address only ever lives in ANOTHER function's frame (a callee
     parameter): still an escape — that frame may be a different thread *)
  let src =
    {|void sink(int *p) { *p = 1; }
      void f() { int x; sink(&x); }
      int main() { f(); return 0; }|}
  in
  Alcotest.(check bool) "address passed to another frame escapes" true
    (escapes_of src "f" "x")

let test_escapes_via_heap_holder () =
  (* heapified: the address is stored into a malloc'd cell *)
  let src =
    {|void f() { int x; int **c; c = malloc(1); *c = &x; }
      int main() { f(); return 0; }|}
  in
  Alcotest.(check bool) "address stored in the heap escapes" true
    (escapes_of src "f" "x")

let test_escapes_transitive_heap () =
  (* two hops: heap cell -> struct-ish heap cell -> &x; the filter must
     chase the points-to solution transitively *)
  let src =
    {|int **gp;
      void f() { int x; int **inner; inner = malloc(1); *inner = &x; gp = inner; }
      int main() { f(); return 0; }|}
  in
  Alcotest.(check bool) "transitively held address escapes" true
    (escapes_of src "f" "x")

let test_no_escape_same_frame_only () =
  (* the address never leaves f's own frame: pointer juggling inside one
     function is not an escape *)
  let src =
    {|void f() { int x; int *p; int *q; p = &x; q = p; *q = 3; }
      int main() { f(); return 0; }|}
  in
  Alcotest.(check bool) "frame-local pointer does not escape" false
    (escapes_of src "f" "x");
  (* and non-local locations trivially "escape" (shareable) *)
  let p = parse src in
  let pa = Pointer.Analysis.run p in
  Alcotest.(check bool) "globals trivially escape" true
    (Relay.Detect.escapes pa (Pointer.Absloc.AGlobal "whatever"))

let suite =
  [
    Alcotest.test_case "unprotected counter" `Quick test_unprotected_counter_races;
    Alcotest.test_case "locked counter" `Quick test_locked_counter_no_self_race;
    Alcotest.test_case "different locks" `Quick test_different_locks_race;
    Alcotest.test_case "lock through callee" `Quick test_lock_through_callee;
    Alcotest.test_case "lock acquired in callee" `Quick test_lock_acquired_in_callee;
    Alcotest.test_case "fork-join false positive" `Quick test_fork_join_false_positive;
    Alcotest.test_case "barrier false positive (Fig 2)" `Quick
      test_barrier_false_positive;
    Alcotest.test_case "single thread" `Quick test_single_thread_no_race;
    Alcotest.test_case "escape filter" `Quick test_escape_filter;
    Alcotest.test_case "escaped local races" `Quick test_escaped_local_races;
    Alcotest.test_case "read-read" `Quick test_read_read_no_race;
    Alcotest.test_case "racy sids cover pairs" `Quick test_racy_sids_cover_pairs;
    Alcotest.test_case "syscall buffer write" `Quick test_netread_buffer_write_detected;
    Alcotest.test_case "escapes: global holder" `Quick test_escapes_via_global_holder;
    Alcotest.test_case "escapes: other frame" `Quick test_escapes_via_other_frame;
    Alcotest.test_case "escapes: heap holder" `Quick test_escapes_via_heap_holder;
    Alcotest.test_case "escapes: transitive heap" `Quick test_escapes_transitive_heap;
    Alcotest.test_case "escapes: same frame only" `Quick test_no_escape_same_frame_only;
  ]
