(** The {!Par.Pool} work-stealing pool, and the determinism contract the
    whole parallel harness rests on: running the pipeline across domains
    is {e observationally identical} to running it serially. The
    par≡serial property compares full digests — race reports, the
    instrumented source, every measurement field of every trial, and the
    encoded replay logs byte-for-byte — between a no-pool run and a
    4-domain run of the same benchmarks and fuzz programs. *)

module P = Par.Pool

(* ------------------------------------------------------------------ *)
(* pool unit tests *)

let test_map_order () =
  P.with_pool ~clamp:false ~domains:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "map_list preserves input order"
        (List.map (fun x -> x * x) xs)
        (P.map_list p (fun x -> x * x) xs);
      Alcotest.(check (list int))
        "mapi_list passes matching indices"
        (List.init 20 (fun i -> 3 * i))
        (P.mapi_list p (fun i x -> i + (2 * x)) (List.init 20 Fun.id)))

let test_inline_pool () =
  let p = P.create ~domains:1 () in
  Alcotest.(check int) "j<=1 pool has size 1" 1 (P.size p);
  (* inline pools run at submit: side effects happen immediately *)
  let hit = ref false in
  let fut = P.submit p (fun () -> hit := true) in
  Alcotest.(check bool) "inline task ran at submit" true !hit;
  P.await p fut;
  Alcotest.(check (list int))
    "inline map_list" [ 2; 4; 6 ]
    (P.map_list p (fun x -> 2 * x) [ 1; 2; 3 ]);
  P.shutdown p

let test_exception_order () =
  (* map_list must re-raise the first exception in *input* order even
     when a later element fails first on another domain *)
  P.with_pool ~clamp:false ~domains:4 (fun p ->
      (* element 3 sleeps before failing; elements 4 and 5 fail
         immediately, likely first in wall-clock order *)
      let spin = ref 0 in
      Alcotest.check_raises "first input-order failure wins"
        (Failure "boom:3") (fun () ->
          ignore
            (P.map_list p
               (fun x ->
                 if x >= 3 then (
                   if x = 3 then
                     for _ = 1 to 2_000_000 do
                       incr spin
                     done;
                   failwith (Fmt.str "boom:%d" x));
                 x)
               [ 0; 1; 2; 3; 4; 5 ])))

let test_nested_await () =
  (* tasks submitting and awaiting sub-tasks must not deadlock: await
     helps by running queued work.  Binary-tree sum, depth 8 => 255
     nested submits on a 2-domain pool. *)
  P.with_pool ~clamp:false ~domains:2 (fun p ->
      let rec sum lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          let left = P.submit p (fun () -> sum lo mid) in
          let right = sum mid hi in
          P.await p left + right
      in
      Alcotest.(check int) "nested tree sum" (128 * 127 / 2) (sum 0 128))

let test_shutdown () =
  let p = P.create ~domains:3 () in
  let fut = P.submit p (fun () -> 7) in
  P.shutdown p;
  P.shutdown p (* idempotent *);
  Alcotest.(check int) "queued task finished before join" 7 (P.await p fut);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Par.Pool.submit: pool is shut down") (fun () ->
      ignore (P.submit p (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* parallel ≡ serial: observational-equality digests *)

let stats_digest (s : Interp.Engine.stats) =
  ( s.n_stmts,
    s.n_mem_ops,
    s.n_sync_ops,
    s.n_syscalls,
    Array.to_list s.n_weak_acq,
    Array.to_list s.weak_block_ticks,
    s.n_forced,
    (s.log_ticks_sync, s.log_ticks_weak, s.log_ticks_input, s.weak_op_ticks) )

let outcome_digest (o : Interp.Engine.outcome) =
  ( o.o_outputs,
    o.o_final_hash,
    o.o_ticks,
    o.o_steps,
    o.o_faults,
    o.o_exit,
    stats_digest o.o_stats,
    (o.o_timed_out, o.o_stuck) )

(* every measurement the bench harness derives, plus the replay logs as
   raw bytes *)
let trial_digest (tr : Chimera.Runner.trial) =
  ( outcome_digest tr.tr_native,
    outcome_digest tr.tr_recorded.rc_outcome,
    outcome_digest tr.tr_replay,
    ( tr.tr_recorded.rc_input_log_raw,
      tr.tr_recorded.rc_order_log_raw,
      tr.tr_recorded.rc_input_log_z,
      tr.tr_recorded.rc_order_log_z ),
    Replay.Log.encode_input_log tr.tr_recorded.rc_log,
    Replay.Log.encode_order_log tr.tr_recorded.rc_log )

let analysis_digest (an : Chimera.Pipeline.analysis) =
  ( Fmt.str "%a" Relay.Detect.pp_report_explain an.an_report,
    an.an_report.n_candidates,
    Profiling.Profile.n_concurrent_pairs an.an_profile,
    Minic.Pretty.program_to_string an.an_instrumented )

(* one unit of comparable work: full pipeline + 2 native/record/replay
   trials on a parsed program *)
let program_digest ?pool ~name ~profile_io ~eval_io prog =
  let an = Chimera.Pipeline.analyze ?pool ~profile_runs:6 ~profile_io prog in
  ignore name;
  let trials =
    Chimera.Runner.run_trials ?pool ~trials:2
      ~config_of:(fun t ->
        { Interp.Engine.default_config with seed = 1 + (t * 13); cores = 4 })
      ~io_of:(fun _ -> eval_io)
      ~original:an.an_prog ~instrumented:an.an_instrumented ()
  in
  (analysis_digest an, List.map trial_digest trials)

type sample = {
  s_name : string;
  s_prog : Minic.Ast.program;
  s_profile_io : int -> Interp.Iomodel.t;
  s_eval_io : Interp.Iomodel.t;
}

let bench_sample name =
  let b = Bench_progs.Registry.by_name name in
  {
    s_name = name;
    s_prog =
      Minic.Parser.parse ~file:name
        (b.b_source ~workers:4 ~scale:b.b_eval_scale);
    s_profile_io = (fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale);
    s_eval_io = b.b_io ~seed:42 ~scale:b.b_eval_scale;
  }

let fuzz_samples () =
  let rand = Random.State.make [| 0xC41EA5; 17 |] in
  QCheck.Gen.generate ~rand ~n:2 Proggen.gen_program
  |> List.mapi (fun i src ->
         {
           s_name = Fmt.str "fuzz-%d" i;
           s_prog = Minic.Parser.parse ~file:(Fmt.str "fuzz-%d.mc" i) src;
           s_profile_io = (fun j -> Interp.Iomodel.random ~seed:(500 + j));
           s_eval_io = Interp.Iomodel.random ~seed:33;
         })

let digest_of ?pool s =
  program_digest ?pool ~name:s.s_name ~profile_io:s.s_profile_io
    ~eval_io:s.s_eval_io s.s_prog

(* analyze-only digest over report, plan provenance, and instrumented
   source — everything `chimera races/plan/instrument` prints *)
let analyze_digest ?pool s =
  let an =
    Chimera.Pipeline.analyze ?pool ~profile_runs:4
      ~profile_io:s.s_profile_io s.s_prog
  in
  ( Fmt.str "%a" Relay.Detect.pp_report_explain an.an_report,
    Fmt.str "%a" Lockopt.pp_explain an.an_lockopt,
    Minic.Pretty.program_to_string an.an_instrumented )

(* ISSUE 6 tier-1 pin: a -j 4 analyze (SCC-scheduled summaries, parallel
   race scans, profile runs and lockopt dataflow) produces byte-identical
   report/plan/provenance on *every* built-in benchmark plus fuzz
   programs. The trial-level property below exercises fewer programs but
   adds record/replay to the digest. *)
let test_par_analyze_all_benches () =
  let samples =
    List.map bench_sample Bench_progs.Registry.names @ fuzz_samples ()
  in
  let serial = List.map (fun s -> analyze_digest s) samples in
  let par =
    P.with_pool ~clamp:false ~domains:4 (fun p ->
        List.map (fun s -> analyze_digest ~pool:p s) samples)
  in
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Fmt.str "%s: -j4 analyze digest is bit-identical to serial" s.s_name)
        true
        (List.nth serial i = List.nth par i))
    samples

let test_par_eq_serial () =
  let samples =
    List.map bench_sample [ "pfscan"; "fft"; "radix" ] @ fuzz_samples ()
  in
  (* serial reference: no pool anywhere *)
  let serial = List.map (fun s -> digest_of s) samples in
  (* parallel: samples fanned across a 4-domain pool, and the *same* pool
     threaded inside each pipeline (profile runs + trials), exercising
     nested submit/await on real work *)
  let par =
    P.with_pool ~clamp:false ~domains:4 (fun p ->
        P.map_list p (fun s -> digest_of ~pool:p s) samples)
  in
  List.iteri
    (fun i s ->
      let ds = List.nth serial i and dp = List.nth par i in
      Alcotest.(check bool)
        (Fmt.str "%s: -j4 digest is bit-identical to serial" s.s_name)
        true (ds = dp))
    samples

let suite =
  [
    Alcotest.test_case "pool: map_list ordering" `Quick test_map_order;
    Alcotest.test_case "pool: inline (j=1) execution" `Quick test_inline_pool;
    Alcotest.test_case "pool: deterministic exception order" `Quick
      test_exception_order;
    Alcotest.test_case "pool: nested submit/await" `Quick test_nested_await;
    Alcotest.test_case "pool: shutdown semantics" `Quick test_shutdown;
    Alcotest.test_case "parallel analyze == serial analyze (all benches)"
      `Slow test_par_analyze_all_benches;
    Alcotest.test_case "parallel pipeline == serial pipeline" `Slow
      test_par_eq_serial;
  ]
