(** Tests for the LZ77 compressor used for log-size reporting. *)

let test_roundtrip_simple () =
  let s = "hello hello hello hello world world world" in
  Alcotest.(check string) "roundtrip" s (Zcompress.decompress (Zcompress.compress s))

let test_empty () =
  Alcotest.(check string) "empty" "" (Zcompress.decompress (Zcompress.compress ""))

let test_compresses_repetition () =
  let s = String.concat "" (List.init 200 (fun _ -> "abcdefgh")) in
  let z = Zcompress.compress s in
  Alcotest.(check bool)
    (Fmt.str "1600 bytes -> %d" (String.length z))
    true
    (String.length z < String.length s / 8)

let test_incompressible_bounded_expansion () =
  let s = String.init 1000 (fun i -> Char.chr ((i * 137 + (i * i * 7)) land 0xff)) in
  let z = Zcompress.compress s in
  Alcotest.(check string) "roundtrip random" s (Zcompress.decompress z);
  Alcotest.(check bool) "expansion bounded" true
    (String.length z <= String.length s + (String.length s / 64) + 16)

let prop_roundtrip =
  QCheck.Test.make ~name:"zcompress roundtrip" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 2000) Gen.printable)
    (fun s -> Zcompress.decompress (Zcompress.compress s) = s)

let prop_roundtrip_binary =
  QCheck.Test.make ~name:"zcompress roundtrip (binary)" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 500) (Gen.map Char.chr (Gen.int_range 0 255)))
    (fun s -> Zcompress.decompress (Zcompress.compress s) = s)

(* mixed-structure inputs: runs of repetition, literal spans, and raw
   binary — the shape of real replay logs (framed records with
   compressible headers and incompressible payload bytes) *)
let gen_mixed =
  QCheck.Gen.(
    let chunk =
      oneof
        [
          (* repeated unit *)
          map2
            (fun u n -> String.concat "" (List.init n (fun _ -> u)))
            (string_size ~gen:printable (int_range 1 8))
            (int_range 1 40);
          (* literal printable span *)
          string_size ~gen:printable (int_range 0 60);
          (* raw binary span *)
          string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60);
        ]
    in
    map (String.concat "") (list_size (int_range 0 12) chunk))

let prop_roundtrip_mixed =
  QCheck.Test.make ~name:"zcompress roundtrip (mixed structure)" ~count:300
    (QCheck.make ~print:String.escaped gen_mixed)
    (fun s -> Zcompress.decompress (Zcompress.compress s) = s)

let prop_compressed_size =
  QCheck.Test.make ~name:"compressed_size = |compress s|" ~count:200
    (QCheck.make ~print:String.escaped gen_mixed)
    (fun s -> Zcompress.compressed_size s = String.length (Zcompress.compress s))

let prop_repetitive_shrinks =
  QCheck.Test.make ~name:"zcompress shrinks repetitive input" ~count:50
    QCheck.(pair (string_gen_of_size (Gen.int_range 4 20) Gen.printable) (int_range 20 100))
    (fun (unit_s, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit_s)) in
      String.length (Zcompress.compress s) < String.length s)

let suite =
  [
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "compresses repetition" `Quick test_compresses_repetition;
    Alcotest.test_case "bounded expansion" `Quick test_incompressible_bounded_expansion;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip_binary;
    QCheck_alcotest.to_alcotest prop_roundtrip_mixed;
    QCheck_alcotest.to_alcotest prop_compressed_size;
    QCheck_alcotest.to_alcotest prop_repetitive_shrinks;
  ]
