(** The persistent analysis cache ({!Ancache}) and its integration into
    {!Chimera.Pipeline.analyze}: hit/miss round-trips, binary-safe
    payloads, and — the property the store is designed around — every
    kind of damaged entry (truncated, bit-flipped, version-bumped,
    undecodable) degrades to recomputation with a one-line diagnostic,
    never to a crash, mirroring how [Replay.Log.Corrupt] gates damaged
    replay logs. *)

module A = Ancache

let temp_store_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-ancache-test-%d-%d" (Unix.getpid ()) !n)

let with_store f =
  let dir = temp_store_dir () in
  let c = A.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () -> f c)

let entry_files c =
  Sys.readdir (A.dir c) |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".anc")
  |> List.map (Filename.concat (A.dir c))

(** Rewrite the store's single entry file through [f : string -> string]. *)
let damage_entry c f =
  match entry_files c with
  | [ path ] ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (f s);
      close_out oc
  | files ->
      Alcotest.failf "expected exactly one cache entry, found %d"
        (List.length files)

let miss_t : A.miss Alcotest.testable =
  Alcotest.testable A.pp_miss (fun a b -> a = b)

let find_t = Alcotest.(result string miss_t)

(* a payload with every byte class the entry format must survive:
   newlines, NULs, high bytes, and the header magic itself *)
let binary_payload =
  "line1\nline2\x00\xff\x01" ^ A.magic ^ "\ntrailing\n"

(* ------------------------------------------------------------------ *)
(* store unit tests *)

let test_roundtrip () =
  with_store @@ fun c ->
  let key = A.key_of_parts [ "roundtrip"; "k" ] in
  Alcotest.check find_t "empty store misses" (Error A.Absent)
    (A.find c ~key);
  Alcotest.(check bool) "put succeeds" true (A.put c ~key binary_payload);
  Alcotest.check find_t "hit returns the exact payload" (Ok binary_payload)
    (A.find c ~key);
  let s = A.stats c in
  Alcotest.(check int) "one entry" 1 s.A.st_entries;
  Alcotest.(check bool) "entry has a size" true (s.A.st_bytes > 0);
  (* overwrite with new content *)
  Alcotest.(check bool) "overwrite succeeds" true (A.put c ~key "v2");
  Alcotest.check find_t "overwrite wins" (Ok "v2") (A.find c ~key);
  Alcotest.(check int) "still one entry" 1 (A.stats c).A.st_entries

let test_keys_independent () =
  with_store @@ fun c ->
  let k1 = A.key_of_parts [ "a"; "b" ] in
  let k2 = A.key_of_parts [ "ab" ] in
  Alcotest.(check bool)
    "part boundaries are part of the key (no concatenation collision)" false
    (k1 = k2);
  ignore (A.put c ~key:k1 "one");
  ignore (A.put c ~key:k2 "two");
  Alcotest.check find_t "k1 payload" (Ok "one") (A.find c ~key:k1);
  Alcotest.check find_t "k2 payload" (Ok "two") (A.find c ~key:k2);
  Alcotest.(check int) "two entries" 2 (A.stats c).A.st_entries

let test_clear () =
  with_store @@ fun c ->
  ignore (A.put c ~key:(A.key_of_parts [ "x" ]) "x");
  ignore (A.put c ~key:(A.key_of_parts [ "y" ]) "y");
  Alcotest.(check int) "clear reports removals" 2 (A.clear c);
  Alcotest.(check int) "store is empty" 0 (A.stats c).A.st_entries;
  Alcotest.(check int) "clear on empty store" 0 (A.clear c)

(* a [put] that crashes between temp-file creation and the atomic rename
   leaves a [.<key>...tmp] stray; it must be counted by [stats], swept
   by [clear], and never shadow or become an entry *)
let test_stray_tmp_swept () =
  with_store @@ fun c ->
  let key = A.key_of_parts [ "survivor" ] in
  ignore (A.put c ~key "payload");
  (* plant the stray a crashed writer would leave *)
  let stray = Filename.concat (A.dir c) ("." ^ key ^ "abc123.tmp") in
  let oc = open_out_bin stray in
  output_string oc "half-written";
  close_out oc;
  Alcotest.(check (list string))
    "stray is visible" [ Filename.basename stray ] (A.stray_tmp_files c);
  let s = A.stats c in
  Alcotest.(check int) "stats count the stray" 1 s.A.st_tmp;
  Alcotest.(check int) "stray is not an entry" 1 s.A.st_entries;
  Alcotest.check find_t "the real entry still hits" (Ok "payload")
    (A.find c ~key);
  Alcotest.(check int) "clear counts entries only" 1 (A.clear c);
  Alcotest.(check bool) "stray swept" false (Sys.file_exists stray);
  let s = A.stats c in
  Alcotest.(check int) "no entries left" 0 s.A.st_entries;
  Alcotest.(check int) "no strays left" 0 s.A.st_tmp

let damaged_cases =
  [
    ( "truncated payload",
      (fun s -> String.sub s 0 (String.length s - 4)),
      Error A.Truncated );
    ( "truncated header",
      (fun s -> String.sub s 0 (String.length A.magic + 3)),
      Error A.Truncated );
    ( "empty file", (fun _ -> ""), Error A.Truncated );
    ( "flipped payload byte",
      (fun s ->
        let b = Bytes.of_string s in
        let i = Bytes.length b - 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        Bytes.to_string b),
      Error A.Checksum_mismatch );
    ( "foreign magic",
      (fun s -> "CHIMERA-ANCACHE/999" ^ String.sub s (String.length A.magic)
                  (String.length s - String.length A.magic)),
      Error A.Version_mismatch );
  ]

let test_damaged_entries () =
  List.iter
    (fun (what, mangle, expect) ->
      with_store @@ fun c ->
      let key = A.key_of_parts [ "damage"; what ] in
      ignore (A.put c ~key binary_payload);
      damage_entry c mangle;
      Alcotest.check find_t what expect (A.find c ~key);
      (* a damaged entry is recoverable: put wins and find hits again *)
      Alcotest.(check bool) "re-put over damage" true
        (A.put c ~key binary_payload);
      Alcotest.check find_t (what ^ ": healed") (Ok binary_payload)
        (A.find c ~key))
    damaged_cases

let test_missing_dir () =
  (* find/stats/clear on a directory that was never created *)
  let c = A.create ~dir:(temp_store_dir ()) () in
  Alcotest.check find_t "find in absent dir" (Error A.Absent)
    (A.find c ~key:(A.key_of_parts [ "k" ]));
  Alcotest.(check int) "stats in absent dir" 0 (A.stats c).A.st_entries;
  Alcotest.(check int) "clear in absent dir" 0 (A.clear c)

(* ------------------------------------------------------------------ *)
(* pipeline integration *)

let racy_src =
  "int counter = 0;\n\
   void w(int *u) {\n\
  \  int i; int tmp;\n\
  \  for (i = 0; i < 40; i++) { tmp = counter; counter = tmp + 1; }\n\
   }\n\
   int main() { int t1; int t2;\n\
  \  t1 = spawn(w, &counter); t2 = spawn(w, &counter);\n\
  \  join(t1); join(t2);\n\
  \  output(counter);\n\
  \  return 0; }\n"

let analysis_digest (an : Chimera.Pipeline.analysis) =
  ( Fmt.str "%a" Relay.Detect.pp_report_explain an.an_report,
    Fmt.str "%a" Lockopt.pp_explain an.an_lockopt,
    Minic.Pretty.program_to_string an.an_instrumented )

let analyze ~cache ~log src =
  Chimera.Pipeline.analyze ~profile_runs:4 ~cache
    ~cache_log:(fun m -> log := m :: !log)
    (Minic.Parser.parse ~file:"cache-test.mc" src)

let logged log needle =
  List.exists
    (fun m ->
      let nh = String.length m and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub m i nn = needle || go (i + 1))
      in
      nn = 0 || go 0)
    !log

let test_pipeline_warm_identical () =
  with_store @@ fun c ->
  let log = ref [] in
  let cold = analyze ~cache:c ~log racy_src in
  Alcotest.(check bool) "cold run logs a miss" true (logged log "miss");
  Alcotest.(check int) "cold run stored one entry" 1 (A.stats c).A.st_entries;
  log := [];
  let warm = analyze ~cache:c ~log racy_src in
  Alcotest.(check bool) "warm run logs a hit" true (logged log "hit");
  Alcotest.(check bool) "warm analysis is identical to cold" true
    (analysis_digest cold = analysis_digest warm);
  (* the cached plan instruments to a program that still runs *)
  let o =
    Chimera.Runner.deterministic
      ~config:{ Interp.Engine.default_config with seed = 3; cores = 4 }
      ~io:(Interp.Iomodel.random ~seed:7) warm.an_instrumented
  in
  Alcotest.(check bool) "cached analysis executes" true (o.o_outputs <> [])

let test_pipeline_damaged_fallback () =
  List.iter
    (fun (what, mangle, _) ->
      with_store @@ fun c ->
      let log = ref [] in
      let cold = analyze ~cache:c ~log racy_src in
      damage_entry c mangle;
      log := [];
      let again = analyze ~cache:c ~log racy_src in
      Alcotest.(check bool)
        (what ^ ": recompute matches the original analysis")
        true
        (analysis_digest cold = analysis_digest again);
      Alcotest.(check bool) (what ^ ": a warning was logged") true
        (logged log "warning:");
      (* the damaged entry was overwritten: the next run hits *)
      log := [];
      ignore (analyze ~cache:c ~log racy_src);
      Alcotest.(check bool) (what ^ ": entry healed, next run hits") true
        (logged log "hit"))
    damaged_cases

let test_pipeline_undecodable_payload () =
  (* a well-formed entry (header + checksum intact) whose payload is not
     a marshalled analysis: the unmarshal guard must recompute *)
  with_store @@ fun c ->
  let log = ref [] in
  let cold = analyze ~cache:c ~log racy_src in
  let prog =
    Minic.Typecheck.check (Minic.Parser.parse ~file:"cache-test.mc" racy_src)
  in
  let key =
    Chimera.Pipeline.cache_key ~opts:Instrument.Plan.all_opts ~profile_runs:4
      ~profile_config:Interp.Engine.default_config ~mhp:true ~lockopt:true
      ~cache_tag:"default" prog
  in
  Alcotest.(check bool) "test recomputes the pipeline's key" true
    (match A.find c ~key with Ok _ -> true | Error _ -> false);
  ignore (A.put c ~key "not a marshalled analysis");
  log := [];
  let again = analyze ~cache:c ~log racy_src in
  Alcotest.(check bool) "undecodable payload recomputes" true
    (analysis_digest cold = analysis_digest again);
  Alcotest.(check bool) "undecodable payload warns" true
    (logged log "undecodable")

let test_cache_key_sensitivity () =
  let prog =
    Minic.Typecheck.check (Minic.Parser.parse ~file:"cache-test.mc" racy_src)
  in
  let key ?(opts = Instrument.Plan.all_opts) ?(profile_runs = 4)
      ?(mhp = true) ?(lockopt = true) ?(cache_tag = "default") () =
    Chimera.Pipeline.cache_key ~opts ~profile_runs
      ~profile_config:Interp.Engine.default_config ~mhp ~lockopt ~cache_tag
      prog
  in
  let base = key () in
  Alcotest.(check string) "key is deterministic" base (key ());
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool) (what ^ " changes the key") false (base = k))
    [
      ("opts", key ~opts:Instrument.Plan.naive ());
      ("profile_runs", key ~profile_runs:5 ());
      ("mhp", key ~mhp:false ());
      ("lockopt", key ~lockopt:false ());
      ("cache_tag", key ~cache_tag:"other" ());
    ]

let suite =
  [
    Alcotest.test_case "put/find round-trip (binary-safe)" `Quick
      test_roundtrip;
    Alcotest.test_case "key part boundaries" `Quick test_keys_independent;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "stray writer tmp files swept" `Quick
      test_stray_tmp_swept;
    Alcotest.test_case "damaged entries miss, typed" `Quick
      test_damaged_entries;
    Alcotest.test_case "absent directory" `Quick test_missing_dir;
    Alcotest.test_case "pipeline: warm cache == cold analysis" `Quick
      test_pipeline_warm_identical;
    Alcotest.test_case "pipeline: damaged entry falls back + heals" `Quick
      test_pipeline_damaged_fallback;
    Alcotest.test_case "pipeline: undecodable payload falls back" `Quick
      test_pipeline_undecodable_payload;
    Alcotest.test_case "cache_key sensitivity" `Quick
      test_cache_key_sensitivity;
  ]
