bench/harness.ml: Array Bench_progs Chimera Float Fmt Hashtbl Instrument Interp List Minic String
