bench/main.mli:
