bench/main.ml: Analyze Array Bechamel Bench_progs Benchmark Chimera Fmt Harness Hashtbl Instrument Interp List Minic Pointer Profiling Relay Staged String Sys Test Time Toolkit
