(** Tests for the pointer-analysis substrate: Steensgaard, Andersen, the
    query layer, and the relative precision property (Andersen's
    inclusion-based points-to sets refine Steensgaard's unification-based
    ones). *)

module A = Pointer.Absloc
module Aset = Pointer.Absloc.Set

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

let run ?solver src = Pointer.Analysis.run ?solver (parse src)

let names set = List.map A.to_string (Aset.elements set) |> List.sort compare

let test_addr_of_global () =
  let pa =
    run
      {|int g;
        int *p;
        int main() { p = &g; return *p; }|}
  in
  Alcotest.(check (list string)) "p -> {g}" [ "g" ]
    (names (Pointer.Analysis.points_to pa (A.AGlobal "p")))

let test_copy_chain () =
  let pa =
    run
      {|int g;
        int *p; int *q; int *r;
        int main() { p = &g; q = p; r = q; return *r; }|}
  in
  Alcotest.(check (list string)) "r -> {g}" [ "g" ]
    (names (Pointer.Analysis.points_to pa (A.AGlobal "r")))

let test_store_load () =
  let pa =
    run
      {|int g;
        int *p; int **pp; int *q;
        int main() { p = &g; pp = &p; q = *pp; return *q; }|}
  in
  Alcotest.(check (list string)) "q -> {g} via load" [ "g" ]
    (names (Pointer.Analysis.points_to pa (A.AGlobal "q")))

let test_malloc_site () =
  let pa =
    run
      {|int *p;
        int main() { p = malloc(4); *p = 1; return *p; }|}
  in
  let pts = Pointer.Analysis.points_to pa (A.AGlobal "p") in
  Alcotest.(check bool) "p -> heap site" true
    (Aset.exists (function A.AHeap _ -> true | _ -> false) pts)

let test_param_binding () =
  let pa =
    run
      {|int g;
        void f(int *x) { *x = 1; }
        int main() { f(&g); return g; }|}
  in
  Alcotest.(check (list string)) "param x -> {g}" [ "g" ]
    (names (Pointer.Analysis.points_to pa (A.ALocal ("f", "x"))))

let test_andersen_more_precise_than_steensgaard () =
  (* two disjoint pointer chains: Steensgaard merges when flowed through a
     common variable; Andersen keeps them apart in the first chain *)
  let src =
    {|int a; int b;
      int *p; int *q; int *r;
      int main() { p = &a; q = &b; r = q; return *p + *r; }|}
  in
  let p = parse src in
  let cs = Pointer.Constr.gen p in
  let and_ = Pointer.Andersen.solve cs in
  let st = Pointer.Steensgaard.solve cs in
  let a_p = Pointer.Andersen.points_to and_ (A.AGlobal "p") in
  let s_p = Pointer.Steensgaard.points_to st (A.AGlobal "p") in
  Alcotest.(check bool) "andersen p = {a}" true
    (Aset.equal (Aset.filter A.is_memory a_p) (Aset.singleton (A.AGlobal "a")));
  Alcotest.(check bool) "andersen subset of steensgaard" true
    (Aset.subset (Aset.filter A.is_memory a_p) (Aset.filter A.is_memory s_p))

(* property: on every benchmark, for every global pointer, Andersen's
   points-to set is contained in Steensgaard's *)
let test_refinement_on_benchmarks () =
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let p = Minic.Parser.parse (b.b_source ~workers:2 ~scale:2) in
      let cs = Pointer.Constr.gen p in
      let and_ = Pointer.Andersen.solve cs in
      let st = Pointer.Steensgaard.solve cs in
      List.iter
        (fun (g : Minic.Ast.global) ->
          let l = A.AGlobal g.g_name in
          let a = Aset.filter A.is_memory (Pointer.Andersen.points_to and_ l) in
          let s = Aset.filter A.is_memory (Pointer.Steensgaard.points_to st l) in
          Alcotest.(check bool)
            (Fmt.str "%s: andersen(%s) within steensgaard" b.b_name g.g_name)
            true (Aset.subset a s))
        p.p_globals)
    Bench_progs.Registry.all

let test_funptr_resolution () =
  let pa =
    run
      {|int inc(int x) { return x + 1; }
        int dec(int x) { return x - 1; }
        int main() {
          int (*fp)(int); int r;
          fp = inc;
          r = fp(1);
          return r;
        }|}
  in
  Alcotest.(check (list string)) "fp resolves to inc" [ "inc" ]
    (Pointer.Analysis.resolve_funptr pa "main" (Lval (Var "fp")))

let test_lval_objects_array () =
  let pa =
    run
      {|int arr[8];
        int main() { int i; i = 3; arr[i] = 1; return arr[0]; }|}
  in
  Alcotest.(check (list string)) "arr[i] touches arr" [ "arr" ]
    (names
       (Pointer.Analysis.lval_objects pa "main"
          (Index (Var "arr", Lval (Var "i")))))

let test_lval_objects_deref () =
  let pa =
    run
      {|int g; int h;
        int *p;
        int main() { int c; c = input(); if (c) { p = &g; } else { p = &h; } *p = 1; return 0; }|}
  in
  Alcotest.(check (list string)) "*p touches {g,h}" [ "g"; "h" ]
    (names (Pointer.Analysis.lval_objects pa "main" (Deref (Lval (Var "p")))))

let test_lock_must_alias () =
  let pa =
    run
      {|int m;
        int main() { lock(&m); unlock(&m); return 0; }|}
  in
  Alcotest.(check (option string)) "lock(&m) resolves uniquely"
    (Some "m")
    (Option.map A.to_string
       (Pointer.Analysis.lock_objects pa "main" (AddrOf (Var "m"))));
  (* an ambiguous lock pointer must resolve to None (lockset soundness) *)
  let pa2 =
    run
      {|int m1; int m2;
        int *lp;
        int main() { int c; c = input(); if (c) { lp = &m1; } else { lp = &m2; } lock(lp); unlock(lp); return 0; }|}
  in
  Alcotest.(check (option string)) "ambiguous lock -> None" None
    (Option.map A.to_string
       (Pointer.Analysis.lock_objects pa2 "main" (Lval (Var "lp"))))

let test_field_insensitivity () =
  (* the documented conservative choice: struct fields share one object *)
  let pa =
    run
      {|struct s { int a; int b; };
        struct s g;
        int *p; int *q;
        int main() { p = &g.a; q = &g.b; return *p + *q; }|}
  in
  let pp = Pointer.Analysis.points_to pa (A.AGlobal "p") in
  let pq = Pointer.Analysis.points_to pa (A.AGlobal "q") in
  Alcotest.(check bool) "fields alias" false (Aset.is_empty (Aset.inter pp pq))

let suite =
  [
    Alcotest.test_case "addr-of global" `Quick test_addr_of_global;
    Alcotest.test_case "copy chain" `Quick test_copy_chain;
    Alcotest.test_case "store/load" `Quick test_store_load;
    Alcotest.test_case "malloc site" `Quick test_malloc_site;
    Alcotest.test_case "param binding" `Quick test_param_binding;
    Alcotest.test_case "andersen refines steensgaard" `Quick
      test_andersen_more_precise_than_steensgaard;
    Alcotest.test_case "refinement on all benchmarks" `Slow
      test_refinement_on_benchmarks;
    Alcotest.test_case "function pointer resolution" `Quick test_funptr_resolution;
    Alcotest.test_case "lval objects: array" `Quick test_lval_objects_array;
    Alcotest.test_case "lval objects: deref" `Quick test_lval_objects_deref;
    Alcotest.test_case "lock must-alias" `Quick test_lock_must_alias;
    Alcotest.test_case "field insensitivity" `Quick test_field_insensitivity;
  ]
