(** Deterministic execution (the paper's future-work direction, realized
    as {!Interp.Engine.Deterministic} mode): because the
    Chimera-transformed program is data-race-free, arbitrating every
    synchronization operation by deterministic logical time (Kendo-style
    global-minimum turns) makes the whole execution a function of the
    program and its inputs — same output under every scheduler seed,
    with no recording at all. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"det.mc" src

let run_det ?(cores = 4) ~seed ~io p =
  (* through the public API; the tick cap fails fast if an arbitration
     livelock would otherwise grind to the default 400M-tick cap *)
  Chimera.Runner.deterministic
    ~config:
      { Interp.Engine.default_config with seed; cores; max_ticks = 5_000_000 }
    ~io p

(* every lock-state change commits under the strict-minimum logical
   turn, so the whole execution — including per-thread instruction
   counts, arbitration retries and all — is a function of program and
   inputs *)
let observable (o : Interp.Engine.outcome) =
  (o.o_timed_out, List.map snd o.o_outputs, o.o_final_hash, o.o_steps)

let check_det ?(seeds = [ 1; 7; 19; 42 ]) ~io name p =
  let outs = List.map (fun seed -> observable (run_det ~seed ~io p)) seeds in
  (match outs with
  | (timed_out, _, _, _) :: _ ->
      Alcotest.(check bool) (name ^ ": completes") false timed_out
  | [] -> ());
  Alcotest.(check int)
    (name ^ ": one outcome across seeds")
    1
    (List.length (List.sort_uniq compare outs))

let test_drf_program_directly_deterministic () =
  (* an already-DRF program needs no transformation *)
  let p =
    parse
      {|int counter = 0; int m;
        void w(int *u) {
          int i;
          for (i = 0; i < 25; i++) { lock(&m); counter = counter + 1; unlock(&m); }
        }
        int main() { int t1; int t2;
          t1 = spawn(w, &counter); t2 = spawn(w, &counter);
          join(t1); join(t2);
          output(counter);
          return 0; }|}
  in
  check_det ~io:(Interp.Iomodel.random ~seed:3) "locked counter" p

let transformed name src =
  Chimera.Pipeline.analyze ~profile_runs:4
    ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(900 + i))
    (Minic.Parser.parse ~file:name src)

let racy_src =
  {|int counter = 0;
    void w(int *u) {
      int i; int tmp;
      for (i = 0; i < 30; i++) { tmp = counter; counter = tmp + 1; }
    }
    int main() { int t1; int t2;
      t1 = spawn(w, &counter); t2 = spawn(w, &counter);
      join(t1); join(t2);
      output(counter);
      return 0; }|}

let test_transformed_racy_program_deterministic () =
  (* the headline: transform + deterministic arbitration = deterministic
     execution of a RACY program, no logs *)
  let an = transformed "racy" racy_src in
  check_det ~io:(Interp.Iomodel.random ~seed:3) "transformed racy counter"
    an.an_instrumented

let test_untransformed_racy_program_varies () =
  (* without the transformation, data races stay unordered: the same
     deterministic arbitration of sync ops does NOT determinize the racy
     program (showing the transformation is what carries the property) *)
  let p = parse racy_src in
  let io = Interp.Iomodel.random ~seed:3 in
  let outs =
    List.map
      (fun seed -> observable (run_det ~seed ~io p))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "racy program still varies" true
    (List.length (List.sort_uniq compare outs) > 1)

let test_benchmarks_deterministic () =
  List.iter
    (fun name ->
      let b = Bench_progs.Registry.by_name name in
      let an =
        Chimera.Pipeline.analyze ~profile_runs:4
          ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse ~file:name
             (b.b_source ~workers:4 ~scale:b.b_profile_scale))
      in
      check_det ~seeds:[ 1; 9; 27 ]
        ~io:(b.b_io ~seed:42 ~scale:b.b_profile_scale)
        name an.an_instrumented)
    Bench_progs.Registry.names

(* regression: the first fuzz counterexample of the mutex/weak-lock
   interaction — T1 holds the mutex and needs the function-lock; T2
   holds the function-lock (possibly with reacquisition immunity) and
   spins on the mutex. Resolved by the second doom threshold that breaks
   immunity, plus spin-deferred reacquisition (see weak_acquire_one /
   mutex_lock in the engine). *)
let test_mutex_weak_cycle () =
  let an =
    transformed "cycle"
      {|int g0; int g1; int a0[16]; int a1[16]; int m0; int ids[2];
        void w0(int *idp) {
          int t0; int t1; int id;
          id = *idp;
          t1 = a1[(id & 15)];
          t1 = ((t1 | 0) | (9 * 2));
          lock(&m0); g1 = t0; a0[(id & 15)] = (8 - 0); unlock(&m0);
          g0 = (g1 * 5);
        }
        int main() { int t[2]; int i0; int t0;
          for (i0 = 0; i0 < 16; i0++) { a0[i0] = i0 * 3; }
          for (i0 = 0; i0 < 16; i0++) { a1[i0] = i0 * 4; }
          ids[0] = 1; t[0] = spawn(w0, &ids[0]);
          ids[1] = 2; t[1] = spawn(w0, &ids[1]);
          join(t[0]); join(t[1]);
          output(g0); output(g1);
          t0 = 0; for (i0 = 0; i0 < 16; i0++) { t0 = t0 + a0[i0]; } output(t0);
          t0 = 0; for (i0 = 0; i0 < 16; i0++) { t0 = t0 + a1[i0]; } output(t0);
          return 0; }|}
  in
  check_det ~seeds:[ 2; 11; 23 ]
    ~io:(Interp.Iomodel.random ~seed:33)
    "mutex/weak cycle" an.an_instrumented

(* regression: the second fuzz counterexample — three contenders on one
   function-lock. The *release* must commit under the deterministic turn
   too: gating only acquisitions hands the freed lock to whichever
   spinner's retry physically follows the release. *)
let test_release_serialization () =
  let an =
    transformed "release"
      {|int g0; int g1; int g2; int a0[8]; int m0; int ids[3];
        void w0(int *idp) {
          int t0; int t1; int id; int i0;
          id = *idp;
          a0[5] = g1;
          a0[3] = id;
          lock(&m0); g1 = g1; g1 = ((id * 4) - (t1 | g0)); unlock(&m0);
          for (i0 = 0; i0 < 3; i0++) { t0 = ((1 * 3) + 5); g1 = a0[(id & 7)]; }
        }
        int main() { int t[3]; int i0; int t0;
          for (i0 = 0; i0 < 8; i0++) { a0[i0] = i0 * 3; }
          ids[0] = 1; t[0] = spawn(w0, &ids[0]);
          ids[1] = 2; t[1] = spawn(w0, &ids[1]);
          ids[2] = 3; t[2] = spawn(w0, &ids[2]);
          join(t[0]); join(t[1]); join(t[2]);
          output(g0); output(g1); output(g2);
          t0 = 0; for (i0 = 0; i0 < 8; i0++) { t0 = t0 + a0[i0]; } output(t0);
          return 0; }|}
  in
  check_det ~seeds:[ 2; 11; 23 ]
    ~io:(Interp.Iomodel.random ~seed:33)
    "release serialization" an.an_instrumented

let test_cond_and_barrier_deterministic () =
  let p =
    parse
      {|int q[8]; int head = 0; int tail = 0; int qlock; int nonempty;
        int done_flag = 0; int total = 0; int bar;
        void consumer(int *u) {
          int more; int v;
          more = 1;
          while (more) {
            v = 0 - 1;
            lock(&qlock);
            while (head == tail && done_flag == 0) { cond_wait(&nonempty, &qlock); }
            if (head < tail) { v = q[head % 8]; head = head + 1; }
            unlock(&qlock);
            if (v < 0) { more = 0; } else { total = total + v; }
          }
          barrier_wait(&bar);
        }
        int main() { int t1; int t2; int i;
          barrier_init(&bar, 2);
          t1 = spawn(consumer, &total);
          for (i = 1; i <= 10; i++) {
            lock(&qlock);
            q[tail % 8] = i; tail = tail + 1;
            cond_signal(&nonempty);
            unlock(&qlock);
          }
          lock(&qlock); done_flag = 1; cond_broadcast(&nonempty); unlock(&qlock);
          barrier_wait(&bar);
          join(t1);
          output(total);
          return 0; }|}
  in
  check_det ~io:(Interp.Iomodel.random ~seed:3) "producer/consumer" p

let fuzz_det =
  QCheck.Test.make ~name:"fuzz: transformed programs det-execute identically"
    ~count:25 Proggen.arbitrary_program (fun src ->
      let an =
        Chimera.Pipeline.analyze ~profile_runs:3
          ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(500 + i))
          (Minic.Parser.parse ~file:"fuzz.mc" src)
      in
      let io = Interp.Iomodel.random ~seed:33 in
      let outs =
        List.map
          (fun seed -> observable (run_det ~seed ~io an.an_instrumented))
          [ 2; 11; 23 ]
      in
      match List.sort_uniq compare outs with
      | [ (false, _, _, _) ] -> true
      | [ (true, _, _, _) ] -> QCheck.Test.fail_reportf "det execution stuck"
      | _ -> QCheck.Test.fail_reportf "outcomes differ across seeds")

let suite =
  [
    Alcotest.test_case "DRF program" `Quick test_drf_program_directly_deterministic;
    Alcotest.test_case "transformed racy program" `Quick
      test_transformed_racy_program_deterministic;
    Alcotest.test_case "untransformed racy program varies" `Quick
      test_untransformed_racy_program_varies;
    Alcotest.test_case "benchmarks" `Slow test_benchmarks_deterministic;
    Alcotest.test_case "mutex/weak-lock cycle" `Quick test_mutex_weak_cycle;
    Alcotest.test_case "release serialization" `Quick
      test_release_serialization;
    Alcotest.test_case "cond + barrier" `Quick test_cond_and_barrier_deterministic;
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0xDE7EC |])
      fuzz_det;
  ]
