(** Tests for the MiniC front end: lexer, parser, pretty-printer
    roundtrip, typechecker, CFG/dominators/loops, call graph. *)

open Minic

let parse src = Typecheck.parse_and_check ~file:"test.mc" src

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "int x = 40 + 2; // comment\nx += 1;" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "token count" 12 (List.length kinds);
  Alcotest.(check bool) "starts with int" true (List.hd kinds = Lexer.KW_INT)

let test_lexer_operators () =
  let toks = Lexer.tokenize "-> << >> == != <= >= && || ++ --" in
  let kinds = List.map fst toks in
  Alcotest.(check int) "11 operators + eof" 12 (List.length kinds);
  Alcotest.(check bool) "arrow first" true (List.hd kinds = Lexer.ARROW)

let test_lexer_comments () =
  let toks = Lexer.tokenize "/* multi \n line */ x // rest\n y" in
  Alcotest.(check int) "two idents + eof" 3 (List.length toks)

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd toks in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

let test_lexer_error () =
  Alcotest.check_raises "unexpected char"
    (Lexer.Lex_error ("unexpected character '@'", 1))
    (fun () -> ignore (Lexer.tokenize "@"))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_minimal () =
  let p = parse "int main() { return 0; }" in
  Alcotest.(check int) "one function" 1 (List.length p.Ast.p_funs)

let test_parse_globals () =
  let p =
    parse
      "int g = 5; int arr[10]; int init[3] = {1, 2, 3};\nint main() { return g; }"
  in
  Alcotest.(check int) "three globals" 3 (List.length p.Ast.p_globals);
  let init = Option.get (Ast.find_global p "init") in
  Alcotest.(check (option (list int))) "initializer" (Some [ 1; 2; 3 ]) init.g_init

let test_parse_struct () =
  let p =
    parse
      {|struct pair { int a; int b; };
        struct pair g;
        int main() { g.a = 1; g.b = g.a + 2; return g.b; }|}
  in
  let s = Option.get (Ast.find_struct p "pair") in
  Alcotest.(check int) "two fields" 2 (List.length s.s_fields);
  Alcotest.(check int) "struct size" 2 (Ast.sizeof p.p_structs (Tstruct "pair"))

let test_parse_for_induction () =
  let p = parse "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) { s = s + i; } return s; }" in
  let main = Option.get (Ast.find_fun p "main") in
  let found = ref None in
  Ast.iter_stmts
    (fun s ->
      match s.skind with
      | While (_, _, li) -> found := li.l_induction
      | _ -> ())
    main.f_body;
  match !found with
  | Some ind ->
      Alcotest.(check string) "iv var" "i" ind.iv_var;
      Alcotest.(check bool) "strict" true ind.iv_strict
  | None -> Alcotest.fail "for loop lost its induction info"

let test_parse_fn_ptr () =
  let p =
    parse
      {|int twice(int x) { return x + x; }
        int main() { int (*fp)(int); int r; fp = twice; r = fp(21); return r; }|}
  in
  let main = Option.get (Ast.find_fun p "main") in
  (* the typechecker must rewrite fp(21) into a ViaPtr call *)
  let has_viaptr = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.skind with
      | Call (_, ViaPtr _, _) -> has_viaptr := true
      | _ -> ())
    main.f_body;
  Alcotest.(check bool) "indirect call resolved" true !has_viaptr

let test_parse_precedence () =
  let p = parse "int main() { int x; x = 2 + 3 * 4; return x; }" in
  let main = Option.get (Ast.find_fun p "main") in
  let ok = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.skind with
      | Assign (Var "x", Binop (Add, Const 2, Binop (Mul, Const 3, Const 4))) ->
          ok := true
      | _ -> ())
    main.f_body;
  Alcotest.(check bool) "mul binds tighter" true !ok

let test_parse_error_reports_line () =
  match Parser.parse ~file:"t" "int main() {\n  return 0\n}" with
  | exception Parser.Parse_error (_, line) ->
      Alcotest.(check int) "error line" 3 line
  | _ -> Alcotest.fail "expected parse error"

let test_unique_sids () =
  let src = (Bench_progs.Registry.by_name "radix").b_source ~workers:2 ~scale:2 in
  let p = Minic.Parser.parse src in
  let seen = Hashtbl.create 64 in
  Ast.iter_program_stmts
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "sid %d unique" s.sid)
        false (Hashtbl.mem seen s.sid);
      Hashtbl.replace seen s.sid ())
    p

(* ------------------------------------------------------------------ *)
(* Pretty-printer roundtrip *)

let roundtrip_ok src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try Typecheck.check (Parser.parse ~file:"printed" printed)
    with e ->
      Alcotest.failf "reparse failed: %s@.--- printed:@.%s" (Printexc.to_string e)
        printed
  in
  (* compare structure after erasing sids/locs *)
  let norm p = Pretty.program_to_string p in
  Alcotest.(check string) "print . parse . print stable" printed (norm p2)

let test_roundtrip_benchmarks () =
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      roundtrip_ok (b.b_source ~workers:3 ~scale:2))
    Bench_progs.Registry.all

(* ------------------------------------------------------------------ *)
(* Typechecker *)

let test_typecheck_rejects_unbound () =
  match parse "int main() { x = 1; return 0; }" with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "unbound variable accepted"

let test_typecheck_rejects_bad_arity () =
  match
    parse "void f(int a, int b) { } int main() { f(1); return 0; }"
  with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "bad arity accepted"

let test_typecheck_rejects_missing_main () =
  match parse "int f() { return 1; }" with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "missing main accepted"

let test_typecheck_rejects_unknown_field () =
  match
    parse
      "struct s { int a; }; struct s g; int main() { g.b = 1; return 0; }"
  with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "unknown field accepted"

let test_typecheck_types () =
  let p =
    parse
      {|struct s { int a; int b; };
        struct s arr[4];
        int main() { int *p; p = &arr[1].b; return *p; }|}
  in
  let env = Typecheck.env_of_program p in
  let main = Option.get (Ast.find_fun p "main") in
  let fenv = Typecheck.fun_env env main in
  Alcotest.(check bool) "p : int*" true
    (Typecheck.type_of_lval fenv (Var "p") = Tptr Tint);
  Alcotest.(check int) "field offset b" 1
    (fst (Ast.field_offset p.p_structs "s" "b"))

(* ------------------------------------------------------------------ *)
(* CFG *)

let cfg_of src fname =
  let p = parse src in
  Cfg.build (Option.get (Ast.find_fun p fname))

let test_cfg_linear () =
  let cfg = cfg_of "int main() { int x; x = 1; x = 2; return x; }" "main" in
  Alcotest.(check (list int)) "no loops" []
    (List.map fst (Cfg.loops cfg))

let test_cfg_loop_detected () =
  let cfg =
    cfg_of "int main() { int i; for (i = 0; i < 3; i++) { i = i; } return i; }"
      "main"
  in
  Alcotest.(check int) "one natural loop" 1 (List.length (Cfg.loops cfg))

let test_cfg_nested_loops () =
  let cfg =
    cfg_of
      {|int main() {
          int i; int j; int s; s = 0;
          for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) { s = s + 1; } }
          return s;
        }|}
      "main"
  in
  let loops = Cfg.loops cfg in
  Alcotest.(check int) "two natural loops" 2 (List.length loops);
  (* the outer loop body contains the inner loop's nodes *)
  let sizes = List.sort compare (List.map (fun (_, ns) -> List.length ns) loops) in
  Alcotest.(check bool) "outer strictly larger" true
    (List.nth sizes 0 < List.nth sizes 1)

let test_cfg_dominators () =
  let cfg =
    cfg_of
      {|int main() {
          int x; x = 0;
          if (x) { x = 1; } else { x = 2; }
          return x;
        }|}
      "main"
  in
  let doms = Cfg.idom cfg in
  (* entry dominates everything reachable *)
  Array.iteri
    (fun i d ->
      if d >= 0 then
        Alcotest.(check bool)
          (Fmt.str "entry dominates %d" i)
          true
          (Cfg.dominates doms cfg.c_entry i))
    doms

let test_cfg_break_exits_loop () =
  let cfg =
    cfg_of
      {|int main() {
          int i; i = 0;
          while (1) { i = i + 1; if (i > 3) { break; } }
          return i;
        }|}
      "main"
  in
  (* loop must still be found, and the exit node reachable *)
  Alcotest.(check int) "loop found" 1 (List.length (Cfg.loops cfg))

(* ------------------------------------------------------------------ *)
(* Call graph *)

let test_callgraph_direct () =
  let p =
    parse
      {|void a() { }
        void b() { a(); }
        int main() { b(); return 0; }|}
  in
  let cg = Callgraph.build p in
  Alcotest.(check (list string)) "main reaches all" [ "a"; "b"; "main" ]
    (Callgraph.reachable_from cg "main")

let test_callgraph_spawn_roots () =
  let p =
    parse
      {|void w(int *x) { *x = 1; }
        int main() { int v; int t; t = spawn(w, &v); join(t); return v; }|}
  in
  let cg = Callgraph.build p in
  Alcotest.(check (list string)) "roots" [ "main"; "w" ] cg.cg_roots;
  Alcotest.(check bool) "w spawned once" false
    (Callgraph.root_multiply_spawned cg "w")

let test_callgraph_multi_spawn () =
  let p =
    parse
      {|void w(int *x) { *x = 1; }
        int main() {
          int v; int i; int t;
          for (i = 0; i < 2; i++) { t = spawn(w, &v); }
          join(t);
          return v;
        }|}
  in
  let cg = Callgraph.build p in
  Alcotest.(check bool) "w spawned in loop" true
    (Callgraph.root_multiply_spawned cg "w")

let test_callgraph_bottom_up () =
  let p =
    parse
      {|void leaf() { }
        void mid() { leaf(); }
        int main() { mid(); return 0; }|}
  in
  let cg = Callgraph.build p in
  let order = Callgraph.bottom_up_order cg p in
  let pos f = Option.get (List.find_index (String.equal f) order) in
  Alcotest.(check bool) "leaf before mid" true (pos "leaf" < pos "mid");
  Alcotest.(check bool) "mid before main" true (pos "mid" < pos "main")

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "lexer: tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer: error" `Quick test_lexer_error;
    Alcotest.test_case "parser: minimal" `Quick test_parse_minimal;
    Alcotest.test_case "parser: globals" `Quick test_parse_globals;
    Alcotest.test_case "parser: struct" `Quick test_parse_struct;
    Alcotest.test_case "parser: for induction" `Quick test_parse_for_induction;
    Alcotest.test_case "parser: fn pointer" `Quick test_parse_fn_ptr;
    Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parser: error line" `Quick test_parse_error_reports_line;
    Alcotest.test_case "parser: unique sids" `Quick test_unique_sids;
    Alcotest.test_case "pretty: benchmark roundtrips" `Quick test_roundtrip_benchmarks;
    Alcotest.test_case "typecheck: unbound var" `Quick test_typecheck_rejects_unbound;
    Alcotest.test_case "typecheck: arity" `Quick test_typecheck_rejects_bad_arity;
    Alcotest.test_case "typecheck: missing main" `Quick test_typecheck_rejects_missing_main;
    Alcotest.test_case "typecheck: unknown field" `Quick test_typecheck_rejects_unknown_field;
    Alcotest.test_case "typecheck: types" `Quick test_typecheck_types;
    Alcotest.test_case "cfg: linear" `Quick test_cfg_linear;
    Alcotest.test_case "cfg: loop detection" `Quick test_cfg_loop_detected;
    Alcotest.test_case "cfg: nested loops" `Quick test_cfg_nested_loops;
    Alcotest.test_case "cfg: dominators" `Quick test_cfg_dominators;
    Alcotest.test_case "cfg: break" `Quick test_cfg_break_exits_loop;
    Alcotest.test_case "callgraph: direct" `Quick test_callgraph_direct;
    Alcotest.test_case "callgraph: spawn roots" `Quick test_callgraph_spawn_roots;
    Alcotest.test_case "callgraph: multi spawn" `Quick test_callgraph_multi_spawn;
    Alcotest.test_case "callgraph: bottom-up order" `Quick test_callgraph_bottom_up;
  ]
