(** Small shared helpers for the test suites. *)

(** [contains s sub]: naive substring search. *)
let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let found = ref false in
    for i = 0 to n - m do
      if (not !found) && String.sub s i m = sub then found := true
    done;
    !found
  end
