test/proggen.ml: Fmt List QCheck String
