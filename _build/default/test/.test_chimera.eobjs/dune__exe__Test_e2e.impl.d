test/test_e2e.ml: Alcotest Bench_progs Chimera Dynrace Hashtbl Instrument Interp List Minic Replay Runtime
