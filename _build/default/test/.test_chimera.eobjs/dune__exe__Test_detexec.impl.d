test/test_detexec.ml: Alcotest Bench_progs Chimera Interp List Minic Proggen QCheck QCheck_alcotest Random
