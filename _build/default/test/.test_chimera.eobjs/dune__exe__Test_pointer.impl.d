test/test_pointer.ml: Alcotest Bench_progs Fmt List Minic Option Pointer
