test/test_dynrace.ml: Alcotest Dynrace Interp List Minic Runtime
