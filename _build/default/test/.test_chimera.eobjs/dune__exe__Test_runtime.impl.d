test/test_runtime.ml: Alcotest Fmt Gen Key List Minic QCheck QCheck_alcotest Runtime Sync Test Weaklock
