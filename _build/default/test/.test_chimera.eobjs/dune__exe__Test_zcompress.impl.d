test/test_zcompress.ml: Alcotest Char Fmt Gen List QCheck QCheck_alcotest String Zcompress
