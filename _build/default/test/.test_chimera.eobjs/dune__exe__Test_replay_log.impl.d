test/test_replay_log.ml: Alcotest Gen Key List Minic QCheck QCheck_alcotest Replay Runtime Test
