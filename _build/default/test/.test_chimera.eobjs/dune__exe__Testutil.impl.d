test/testutil.ml: String
