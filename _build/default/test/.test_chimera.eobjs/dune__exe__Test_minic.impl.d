test/test_minic.ml: Alcotest Array Ast Bench_progs Callgraph Cfg Fmt Hashtbl Lexer List Minic Option Parser Pretty Printexc String Typecheck
