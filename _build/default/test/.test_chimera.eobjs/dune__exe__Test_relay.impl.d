test/test_relay.ml: Alcotest Hashtbl List Minic Pointer Relay
