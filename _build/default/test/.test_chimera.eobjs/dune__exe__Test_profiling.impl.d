test/test_profiling.ml: Alcotest Fmt Interp Minic Option Profiling
