test/test_instrument.ml: Alcotest Bench_progs Chimera Hashtbl Instrument Interp List Minic Option
