test/test_chimera.mli:
