test/test_interp.ml: Alcotest Fmt Interp List Minic Runtime Testutil
