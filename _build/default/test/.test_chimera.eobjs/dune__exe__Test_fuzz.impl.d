test/test_fuzz.ml: Chimera Dynrace Hashtbl Interp List Minic Out_channel Printexc Proggen QCheck QCheck_alcotest Random Runtime Sys
