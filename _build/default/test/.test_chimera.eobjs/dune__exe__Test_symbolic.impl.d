test/test_symbolic.ml: Alcotest Bounds Fm Interp Linexp List Minic Option QCheck QCheck_alcotest Runtime Symbolic
