(** Tests for the simulator engine: MiniC semantics (arithmetic, arrays,
    structs, pointers, recursion, control flow), scheduling determinism
    for a fixed seed, racy-outcome divergence across seeds, I/O latency
    hiding, fault detection, and the weak-lock timeout escape hatch. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

let run ?(seed = 1) ?(cores = 4) ?config src =
  let config =
    match config with
    | Some c -> c
    | None -> { Interp.Engine.default_config with seed; cores }
  in
  let io = Interp.Iomodel.random ~seed:99 in
  Interp.Engine.run ~config ~mode:Interp.Engine.Native ~io (parse src)

let outputs o = List.map snd o.Interp.Engine.o_outputs

let check_outputs name expected src =
  let o = run src in
  List.iter
    (fun (p, m) ->
      Alcotest.failf "fault in %a: %s" Runtime.Key.pp_tid_path p m)
    o.o_faults;
  Alcotest.(check (list int)) name expected (outputs o)

(* ------------------------------------------------------------------ *)
(* Sequential semantics *)

let test_arith () =
  check_outputs "arith" [ 14; 1; 6; -3; 1; 0; 12 ]
    {|int main() {
        output(2 + 3 * 4);
        output(7 % 2);
        output(25 / 4);
        output(0 - 3);
        output(5 > 4 && 2 < 3);
        output(!7);
        output(4 | 8);
        return 0;
      }|}

let test_shortcut_eval () =
  check_outputs "shortcut && avoids division by zero" [ 0; 1 ]
    {|int main() {
        int z; z = 0;
        output(z != 0 && 10 / z > 1);
        output(z == 0 || 10 / z > 1);
        return 0;
      }|}

let test_arrays () =
  check_outputs "array sum" [ 45 ]
    {|int a[10];
      int main() {
        int i; int s; s = 0;
        for (i = 0; i < 10; i++) { a[i] = i; }
        for (i = 0; i < 10; i++) { s = s + a[i]; }
        output(s);
        return 0;
      }|}

let test_2d_arrays () =
  check_outputs "2d array" [ 7 ]
    {|int m[3][4];
      int main() {
        m[2][3] = 7;
        output(m[2][3]);
        return 0;
      }|}

let test_structs () =
  check_outputs "struct fields + arrow" [ 5; 11 ]
    {|struct pt { int x; int y; };
      struct pt g;
      int main() {
        struct pt *p;
        g.x = 5;
        p = &g;
        p->y = p->x + 6;
        output(g.x);
        output(g.y);
        return 0;
      }|}

let test_pointers () =
  check_outputs "pointer arithmetic over array" [ 30 ]
    {|int a[4] = {1, 2, 3, 24};
      int main() {
        int *p; int s; int i;
        p = a; s = 0;
        for (i = 0; i < 4; i++) { s = s + *(p + i); }
        output(s);
        return 0;
      }|}

let test_recursion () =
  check_outputs "factorial" [ 120 ]
    {|int fact(int n) {
        int rest;
        if (n <= 1) { return 1; }
        rest = fact(n - 1);
        return n * rest;
      }
      int main() { int r; r = fact(5); output(r); return 0; }|}

let test_break_continue () =
  check_outputs "break/continue" [ 16 ]
    {|int main() {
        int i; int s; s = 0;
        for (i = 0; i < 100; i++) {
          if (i % 2 == 0) { continue; }
          if (i > 7) { break; }
          s = s + i;
        }
        output(s);
        return 0;
      }|}

let test_globals_initialized () =
  check_outputs "global initializers" [ 10; 0 ]
    {|int g = 10;
      int z;
      int main() { output(g); output(z); return 0; }|}

let test_malloc () =
  check_outputs "heap blocks" [ 5; 9 ]
    {|int main() {
        int *p; int *q;
        p = malloc(2);
        q = malloc(3);
        p[0] = 5; p[1] = 4;
        q[0] = p[0] + p[1];
        output(p[0]);
        output(q[0]);
        free(p);
        return 0;
      }|}

let test_fault_oob () =
  let o = run {|int a[2]; int main() { a[5] = 1; return 0; }|} in
  Alcotest.(check int) "one fault" 1 (List.length o.o_faults);
  Alcotest.(check bool) "out-of-bounds message" true
    (match o.o_faults with
    | [ (_, m) ] ->
        Testutil.contains m "out-of-bounds"
    | _ -> false)

let test_fault_div0 () =
  let o = run {|int main() { int z; z = 0; output(1 / z); return 0; }|} in
  Alcotest.(check int) "one fault" 1 (List.length o.o_faults)

let test_fault_use_after_free () =
  let o =
    run {|int main() { int *p; p = malloc(1); free(p); *p = 1; return 0; }|}
  in
  Alcotest.(check int) "one fault" 1 (List.length o.o_faults)

let test_exit_builtin () =
  let o =
    run {|int main() { output(1); exit(3); output(2); return 0; }|}
  in
  Alcotest.(check (option int)) "exit code" (Some 3) o.o_exit;
  Alcotest.(check (list int)) "stops at exit" [ 1 ] (outputs o)

(* ------------------------------------------------------------------ *)
(* Threads & scheduling *)

let racy_src =
  {|int counter = 0;
    void w(int *u) {
      int i; int tmp;
      for (i = 0; i < 30; i++) { tmp = counter; counter = tmp + 1; }
    }
    int main() {
      int t1; int t2;
      t1 = spawn(w, &counter); t2 = spawn(w, &counter);
      join(t1); join(t2);
      output(counter);
      return 0;
    }|}

let test_same_seed_same_outcome () =
  let a = run ~seed:5 racy_src and b = run ~seed:5 racy_src in
  Alcotest.(check (list int)) "identical seeds identical runs" (outputs a)
    (outputs b);
  Alcotest.(check int) "same ticks" a.o_ticks b.o_ticks

let test_races_diverge_across_seeds () =
  let results =
    List.map (fun seed -> outputs (run ~seed racy_src)) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let distinct = List.sort_uniq compare results in
  Alcotest.(check bool) "racy counter varies with schedule" true
    (List.length distinct > 1);
  (* lost updates only: every outcome is between 30 and 60 *)
  List.iter
    (fun r ->
      match r with
      | [ v ] ->
          Alcotest.(check bool) (Fmt.str "outcome %d in range" v) true
            (v >= 30 && v <= 60)
      | _ -> Alcotest.fail "expected one output")
    results

let test_mutex_protects () =
  let src =
    {|int counter = 0; int m;
      void w(int *u) {
        int i; int tmp;
        for (i = 0; i < 30; i++) {
          lock(&m); tmp = counter; counter = tmp + 1; unlock(&m);
        }
      }
      int main() {
        int t1; int t2;
        t1 = spawn(w, &counter); t2 = spawn(w, &counter);
        join(t1); join(t2);
        output(counter);
        return 0;
      }|}
  in
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Fmt.str "locked counter exact (seed %d)" seed)
        [ 60 ] (outputs (run ~seed src)))
    [ 1; 2; 3; 4; 5 ]

let test_barrier_phases () =
  let src =
    {|int a[4]; int b[4]; int bar;
      int ids[4];
      void w(int *idp) {
        int id; int left;
        id = *idp;
        a[id] = id + 1;
        barrier_wait(&bar);
        left = (id + 3) % 4;
        b[id] = a[left];
        barrier_wait(&bar);
      }
      int main() {
        int t[4]; int i; int s;
        barrier_init(&bar, 4);
        for (i = 0; i < 4; i++) { ids[i] = i; t[i] = spawn(w, &ids[i]); }
        for (i = 0; i < 4; i++) { join(t[i]); }
        s = 0;
        for (i = 0; i < 4; i++) { s = s * 10 + b[i]; }
        output(s);
        return 0;
      }|}
  in
  (* b[i] = a[(i+3) mod 4] = ((i+3) mod 4) + 1: [4;1;2;3] -> 4123 *)
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Fmt.str "barrier ordering (seed %d)" seed)
        [ 4123 ] (outputs (run ~seed src)))
    [ 1; 5; 9 ]

let test_cond_producer_consumer () =
  let src =
    {|int q[8]; int head = 0; int tail = 0;
      int qlock; int nonempty;
      int done_flag = 0;
      int total = 0;
      void consumer(int *u) {
        int more; int v;
        more = 1;
        while (more) {
          v = 0 - 1;
          lock(&qlock);
          while (head == tail && done_flag == 0) { cond_wait(&nonempty, &qlock); }
          if (head < tail) { v = q[head % 8]; head = head + 1; }
          unlock(&qlock);
          if (v < 0) { more = 0; } else { total = total + v; }
        }
      }
      int main() {
        int t; int i;
        t = spawn(consumer, &total);
        for (i = 1; i <= 10; i++) {
          lock(&qlock);
          q[tail % 8] = i;
          tail = tail + 1;
          cond_signal(&nonempty);
          unlock(&qlock);
        }
        lock(&qlock);
        done_flag = 1;
        cond_broadcast(&nonempty);
        unlock(&qlock);
        join(t);
        output(total);
        return 0;
      }|}
  in
  List.iter
    (fun seed ->
      Alcotest.(check (list int))
        (Fmt.str "producer/consumer sum (seed %d)" seed)
        [ 55 ] (outputs (run ~seed src)))
    [ 2; 4; 6 ]

let test_spawn_arg_and_tids () =
  check_outputs "spawn passes pointer; join works" [ 3 ]
    {|void child(int *p) { *p = *p + 1; }
      int main() {
        int v; int t1; int t2; int t3;
        v = 0;
        t1 = spawn(child, &v); join(t1);
        t2 = spawn(child, &v); join(t2);
        t3 = spawn(child, &v); join(t3);
        output(v);
        return 0;
      }|}

let test_more_threads_than_cores () =
  let src =
    {|int done_count = 0; int m;
      void w(int *u) {
        int i; int x; x = 0;
        for (i = 0; i < 20; i++) { x = x + i; }
        lock(&m); done_count = done_count + 1; unlock(&m);
      }
      int main() {
        int t[8]; int i;
        for (i = 0; i < 8; i++) { t[i] = spawn(w, &m); }
        for (i = 0; i < 8; i++) { join(t[i]); }
        output(done_count);
        return 0;
      }|}
  in
  let o = run ~cores:2 src in
  Alcotest.(check (list int)) "8 threads on 2 cores" [ 8 ] (outputs o)

let test_parallel_speedup () =
  (* embarrassingly parallel work must get faster with more cores *)
  let src =
    {|int sink[4];
      int ids[4];
      void w(int *idp) {
        int i; int x; int id;
        id = *idp; x = 0;
        for (i = 0; i < 200; i++) { x = x + i; }
        sink[id] = x;
      }
      int main() {
        int t[4]; int i;
        for (i = 0; i < 4; i++) { ids[i] = i; t[i] = spawn(w, &ids[i]); }
        for (i = 0; i < 4; i++) { join(t[i]); }
        output(sink[0] + sink[3]);
        return 0;
      }|}
  in
  let one = run ~cores:1 src and four = run ~cores:4 src in
  Alcotest.(check (list int)) "same result" (outputs one) (outputs four);
  Alcotest.(check bool)
    (Fmt.str "4 cores faster: %d vs %d" four.o_ticks one.o_ticks)
    true
    (float_of_int four.o_ticks < 0.45 *. float_of_int one.o_ticks)

let test_io_latency_overlap () =
  (* a compute thread should hide a network wait *)
  let src =
    {|int buf[8];
      int out = 0;
      void reader(int *u) { int got; got = net_read(buf, 8); out = got; }
      int main() {
        int t; int i; int x; x = 0;
        t = spawn(reader, &out);
        for (i = 0; i < 50; i++) { x = x + i; }
        join(t);
        output(out);
        output(x);
        return 0;
      }|}
  in
  let o = run src in
  Alcotest.(check bool) "read returned data" true
    (match outputs o with got :: _ -> got > 0 | [] -> false);
  (* total time ≈ network latency, not latency + compute *)
  Alcotest.(check bool) "latency dominates" true
    (o.o_ticks < Interp.Engine.default_config.cost.l_net + 2500)

let test_weak_timeout_breaks_deadlock () =
  (* hand-instrumented program: a weak lock held across a mutex acquire
     that another thread owns while wanting the weak lock — the paper's
     deadlock case, resolved by timeout-preemption *)
  let p =
    parse
      {|int m; int x; int y;
        void a(int *u) { lock(&m); x = 1; unlock(&m); }
        void b(int *u) { lock(&m); y = 1; unlock(&m); }
        int main() { int t1; int t2;
          t1 = spawn(a, &x); t2 = spawn(b, &y);
          join(t1); join(t2);
          output(x + y);
          return 0; }|}
  in
  (* wrap each worker body in a total weak-lock region by hand *)
  let wlock = { Minic.Ast.wl_id = 0; wl_gran = Minic.Ast.Gbb } in
  let wrap (fd : Minic.Ast.fundec) =
    if fd.f_name = "a" || fd.f_name = "b" then
      {
        fd with
        f_body =
          Minic.Ast.Fresh.stmt (WeakEnter [ { wa_lock = wlock; wa_ranges = [] } ])
          :: fd.f_body
          @ [ Minic.Ast.Fresh.stmt (WeakExit [ wlock ]) ];
      }
    else fd
  in
  Minic.Ast.Fresh.reset_from p;
  let p = { p with p_funs = List.map wrap p.p_funs } in
  let config =
    { Interp.Engine.default_config with seed = 3; cores = 4; weak_timeout = 500 }
  in
  let io = Interp.Iomodel.random ~seed:1 in
  let o = Interp.Engine.run ~config ~mode:Interp.Engine.Record ~io p in
  Alcotest.(check bool) "completes despite weak/mutex interleaving" false
    o.o_timed_out;
  Alcotest.(check (list int)) "result" [ 2 ] (outputs o)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "shortcut eval" `Quick test_shortcut_eval;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "2d arrays" `Quick test_2d_arrays;
    Alcotest.test_case "structs" `Quick test_structs;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointers;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "global init" `Quick test_globals_initialized;
    Alcotest.test_case "malloc/free" `Quick test_malloc;
    Alcotest.test_case "fault: out of bounds" `Quick test_fault_oob;
    Alcotest.test_case "fault: div by zero" `Quick test_fault_div0;
    Alcotest.test_case "fault: use after free" `Quick test_fault_use_after_free;
    Alcotest.test_case "exit" `Quick test_exit_builtin;
    Alcotest.test_case "determinism per seed" `Quick test_same_seed_same_outcome;
    Alcotest.test_case "racy divergence across seeds" `Quick
      test_races_diverge_across_seeds;
    Alcotest.test_case "mutex protects" `Quick test_mutex_protects;
    Alcotest.test_case "barrier phases" `Quick test_barrier_phases;
    Alcotest.test_case "cond producer/consumer" `Quick test_cond_producer_consumer;
    Alcotest.test_case "spawn/join" `Quick test_spawn_arg_and_tids;
    Alcotest.test_case "threads > cores" `Quick test_more_threads_than_cores;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "io latency overlap" `Quick test_io_latency_overlap;
    Alcotest.test_case "weak timeout breaks deadlock" `Quick
      test_weak_timeout_breaks_deadlock;
  ]
