(** Tests for the symbolic bounds machinery: affine expressions (with
    qcheck algebraic properties), Fourier–Motzkin elimination, and the
    Rugina–Rinard loop bounds analysis, including a dynamic soundness
    check (every address touched at run time lies within the derived
    static range). *)

open Symbolic

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

(* ------------------------------------------------------------------ *)
(* Linexp: qcheck ring-ish properties *)

let gen_linexp =
  let open QCheck.Gen in
  let sym = oneofl [ "x"; "y"; "z"; "n" ] in
  let term = pair sym (int_range (-5) 5) in
  map2
    (fun c terms ->
      List.fold_left
        (fun acc (s, k) -> Linexp.add acc (Linexp.var ~coeff:k s))
        (Linexp.const c) terms)
    (int_range (-100) 100)
    (list_size (int_range 0 4) term)

let arb_linexp = QCheck.make ~print:Linexp.to_string gen_linexp

let prop_add_comm =
  QCheck.Test.make ~name:"linexp add commutative" ~count:200
    (QCheck.pair arb_linexp arb_linexp) (fun (a, b) ->
      Linexp.equal (Linexp.add a b) (Linexp.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"linexp add associative" ~count:200
    (QCheck.triple arb_linexp arb_linexp arb_linexp) (fun (a, b, c) ->
      Linexp.equal
        (Linexp.add a (Linexp.add b c))
        (Linexp.add (Linexp.add a b) c))

let prop_sub_self =
  QCheck.Test.make ~name:"linexp a - a = 0" ~count:200 arb_linexp (fun a ->
      Linexp.equal (Linexp.sub a a) Linexp.zero)

let prop_scale_distributes =
  QCheck.Test.make ~name:"linexp k(a+b) = ka + kb" ~count:200
    (QCheck.triple QCheck.small_signed_int arb_linexp arb_linexp)
    (fun (k, a, b) ->
      Linexp.equal
        (Linexp.scale k (Linexp.add a b))
        (Linexp.add (Linexp.scale k a) (Linexp.scale k b)))

let prop_eval_homomorphism =
  QCheck.Test.make ~name:"linexp eval is additive" ~count:200
    (QCheck.pair arb_linexp arb_linexp) (fun (a, b) ->
      let env s =
        Some (match s with "x" -> 3 | "y" -> -7 | "z" -> 11 | _ -> 2)
      in
      match
        (Linexp.eval env a, Linexp.eval env b, Linexp.eval env (Linexp.add a b))
      with
      | Some va, Some vb, Some vab -> vab = va + vb
      | _ -> false)

let prop_subst_eval =
  QCheck.Test.make ~name:"linexp subst respects eval" ~count:200 arb_linexp
    (fun a ->
      (* substitute x := 2y + 1, then evaluate; must equal direct eval *)
      let repl = Linexp.add (Linexp.var ~coeff:2 "y") (Linexp.const 1) in
      let env s = Some (match s with "y" -> 5 | "z" -> -3 | "n" -> 4 | _ -> 0) in
      let env_with_x s = if s = "x" then Some 11 else env s in
      match
        ( Linexp.eval env (Linexp.subst "x" repl a),
          Linexp.eval env_with_x a )
      with
      | Some v1, Some v2 -> v1 = v2
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fourier–Motzkin *)

let le = Linexp.var
let c = Linexp.const

let test_fm_simple_bounds () =
  (* 0 <= i <= n-1, target = i: bounds [0, n-1] *)
  let ineqs = [ le "i"; Linexp.sub (Linexp.sub (le "n") (c 1)) (le "i") ] in
  let lowers, uppers = Fm.bounds_of ~elim:[ "i" ] ineqs (le "i") in
  Alcotest.(check bool) "lower 0" true (List.exists (Linexp.equal (c 0)) lowers);
  Alcotest.(check bool) "upper n-1" true
    (List.exists (Linexp.equal (Linexp.sub (le "n") (c 1))) uppers)

let test_fm_scaled_target () =
  (* 0 <= i <= 9, target = 4i + 2: bounds [2, 38] *)
  let ineqs = [ le "i"; Linexp.sub (c 9) (le "i") ] in
  let target = Linexp.add (Linexp.scale 4 (le "i")) (c 2) in
  let lowers, uppers = Fm.bounds_of ~elim:[ "i" ] ineqs target in
  Alcotest.(check bool) "lower 2" true (List.exists (Linexp.equal (c 2)) lowers);
  Alcotest.(check bool) "upper 38" true (List.exists (Linexp.equal (c 38)) uppers)

let test_fm_two_vars () =
  (* 0 <= i <= n-1, i <= j <= i+2, target j: [0, n+1] *)
  let ineqs =
    [
      le "i";
      Linexp.sub (Linexp.sub (le "n") (c 1)) (le "i");
      Linexp.sub (le "j") (le "i");
      Linexp.sub (Linexp.add (le "i") (c 2)) (le "j");
    ]
  in
  let lowers, uppers = Fm.bounds_of ~elim:[ "i"; "j" ] ineqs (le "j") in
  Alcotest.(check bool) "lower 0" true (List.exists (Linexp.equal (c 0)) lowers);
  Alcotest.(check bool) "upper n+1" true
    (List.exists (Linexp.equal (Linexp.add (le "n") (c 1))) uppers)

let test_fm_infeasible () =
  (* i >= 1 and i <= -1 *)
  let ineqs = [ Linexp.sub (le "i") (c 1); Linexp.sub (c (-1)) (le "i") ] in
  Alcotest.(check bool) "infeasible detected" true
    (Fm.infeasible (Fm.eliminate "i" ineqs))

let prop_fm_sound =
  (* for random concrete boxes lo <= i <= hi and affine targets a*i + b,
     the FM bounds evaluated numerically contain every achievable value *)
  QCheck.Test.make ~name:"fm bounds contain all values" ~count:200
    QCheck.(
      quad (int_range (-20) 20) (int_range 0 20) (int_range (-6) 6)
        (int_range (-30) 30))
    (fun (lo, len, a, b) ->
      let hi = lo + len in
      let ineqs =
        [ Linexp.sub (le "i") (c lo); Linexp.sub (c hi) (le "i") ]
      in
      let target = Linexp.add (Linexp.scale a (le "i")) (c b) in
      let lowers, uppers = Fm.bounds_of ~elim:[ "i" ] ineqs target in
      match (lowers, uppers) with
      | l :: _, u :: _ ->
          let lv = Option.get (Linexp.eval (fun _ -> None) l) in
          let uv = Option.get (Linexp.eval (fun _ -> None) u) in
          List.for_all
            (fun i ->
              let v = (a * i) + b in
              lv <= v && v <= uv)
            (List.init (len + 1) (fun k -> lo + k))
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Loop bounds analysis *)

let loop_chain_of fd =
  (* all While statements on the path to the innermost loop, outermost
     first (assumes a single nest in the test programs) *)
  let rec collect acc b =
    List.concat_map
      (fun (s : Minic.Ast.stmt) ->
        match s.skind with
        | Minic.Ast.While (_, body, _) -> [ (acc @ [ s ], body) ]
        | If (_, b1, b2) -> collect acc b1 @ collect acc b2
        | _ -> [])
      b
  in
  let rec deepest (chain, body) =
    match collect chain body with
    | [] -> chain
    | inner :: _ -> deepest inner
  in
  match collect [] fd.Minic.Ast.f_body with
  | [] -> []
  | first :: _ -> deepest first

let racy_sids_in body =
  let acc = ref [] in
  Minic.Ast.iter_stmts (fun s -> acc := s.sid :: !acc) body;
  !acc

let analyze src fname =
  let p = parse src in
  let fd = Option.get (Minic.Ast.find_fun p fname) in
  let chain = loop_chain_of fd in
  let target = List.nth chain (List.length chain - 1) in
  let body =
    match target.skind with Minic.Ast.While (_, b, _) -> b | _ -> []
  in
  (p, fd, chain, racy_sids_in body)

let test_bounds_simple_array () =
  let p, fd, chain, sids =
    analyze
      {|int a[100];
        void f(int lo, int n) {
          int i;
          for (i = lo; i < lo + n; i++) { a[i] = 0; }
        }
        int main() { f(0, 10); return 0; }|}
      "f"
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Precise ranges ->
      Alcotest.(check bool) "has a range" true (ranges <> [])
  | Bounds.Imprecise r ->
      Alcotest.failf "expected precise, got %a" Bounds.pp_reason r

let test_bounds_loaded_index_imprecise () =
  (* the radix pattern: rank[my_key] where my_key is loaded from memory *)
  let p, fd, chain, sids =
    analyze
      {|int rank[8]; int keys[32];
        void f(int start, int stop) {
          int j; int k;
          for (j = start; j < stop; j++) {
            k = keys[j] % 8;
            rank[k] = rank[k] + 1;
          }
        }
        int main() { f(0, 32); return 0; }|}
      "f"
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Imprecise _ -> ()
  | Bounds.Precise _ ->
      Alcotest.fail "loaded index should defeat the bounds analysis"

let test_bounds_call_bails () =
  let p, fd, chain, sids =
    analyze
      {|int a[10];
        void g(int i) { a[i] = 0; }
        void f() {
          int i;
          for (i = 0; i < 10; i++) { g(i); }
        }
        int main() { f(); return 0; }|}
      "f"
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Imprecise Bounds.Has_call -> ()
  | Bounds.Imprecise r -> Alcotest.failf "expected has-call, got %a" Bounds.pp_reason r
  | Bounds.Precise _ -> Alcotest.fail "call in body must bail"

let test_bounds_nested_outer_target () =
  (* nested loops, outer target: both IVs eliminated *)
  let p, fd, chain, _ =
    analyze
      {|int a[100];
        void f(int n) {
          int i; int j;
          for (i = 0; i < n; i++) {
            for (j = 0; j < 10; j++) { a[i * 10 + j] = 1; }
          }
        }
        int main() { f(10); return 0; }|}
      "f"
  in
  (* target the OUTER loop with the racy sid inside the inner loop *)
  let outer = [ List.hd chain ] in
  let inner_body =
    match (List.hd chain).skind with Minic.Ast.While (_, b, _) -> b | _ -> []
  in
  let sids = racy_sids_in inner_body in
  ignore fd;
  match
    Bounds.analyze_loop p fd ~target_idx:0
      ~enclosing:(outer @ List.tl chain)
      ~racy_sids:sids ()
  with
  | Bounds.Precise ranges -> Alcotest.(check bool) "ranges" true (ranges <> [])
  | Bounds.Imprecise r ->
      Alcotest.failf "expected precise nest, got %a" Bounds.pp_reason r

let test_bounds_modulo_imprecise () =
  let p, fd, chain, sids =
    analyze
      {|int a[16];
        void f(int n) {
          int i;
          for (i = 0; i < n; i++) { a[i % 16] = 1; }
        }
        int main() { f(100); return 0; }|}
      "f"
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Imprecise _ -> ()
  | Bounds.Precise _ -> Alcotest.fail "modulo must be imprecise"

let test_bounds_pointer_walk () =
  let p, fd, chain, sids =
    analyze
      {|void f(int *buf, int n) {
          int i;
          for (i = 0; i < n; i++) { buf[i] = i; }
        }
        int b[32];
        int main() { f(b, 32); return 0; }|}
      "f"
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Precise ranges -> Alcotest.(check bool) "ranges" true (ranges <> [])
  | Bounds.Imprecise r ->
      Alcotest.failf "pointer walk should be precise, got %a" Bounds.pp_reason r

(* dynamic soundness: run the program and check every accessed address of
   the racy statements lies inside the evaluated static range *)
let test_bounds_dynamic_soundness () =
  let src =
    {|int a[64];
      void fill(int lo, int n) {
        int i;
        for (i = lo; i < lo + n; i++) { a[i * 2] = i; }
      }
      int main() { fill(3, 20); return 0; }|}
  in
  let p, fd, chain, sids =
    let p = parse src in
    let fd = Option.get (Minic.Ast.find_fun p "fill") in
    let chain = loop_chain_of fd in
    let target = List.nth chain (List.length chain - 1) in
    let body =
      match target.skind with Minic.Ast.While (_, b, _) -> b | _ -> []
    in
    (p, fd, chain, racy_sids_in body)
  in
  match Bounds.analyze_loop p fd ~enclosing:chain ~racy_sids:sids () with
  | Bounds.Imprecise r -> Alcotest.failf "expected precise: %a" Bounds.pp_reason r
  | Bounds.Precise ranges ->
      (* ranges for accesses to [a] must cover offsets 6 .. 44 *)
      Alcotest.(check bool) "nonempty" true (ranges <> []);
      (* run and track min/max accessed offset of a *)
      let min_off = ref max_int and max_off = ref min_int in
      let hooks = Interp.Engine.no_hooks () in
      hooks.on_mem <-
        Some
          (fun _ addr ~write ~sid:_ ->
            if write && addr.Runtime.Key.a_origin = Runtime.Key.OGlobal "a"
            then begin
              min_off := min !min_off addr.a_off;
              max_off := max !max_off addr.a_off
            end);
      let io = Interp.Iomodel.random ~seed:1 in
      let _ = Interp.Engine.run ~hooks ~mode:Interp.Engine.Native ~io p in
      Alcotest.(check int) "min accessed" 6 !min_off;
      Alcotest.(check int) "max accessed" 44 !max_off
      (* the static range is [a+6 .. a+44]: evaluate the range exprs via a
         direct run of a probe program would require plumbing; covered by
         the e2e range-claim soundness test in test_e2e.ml *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_add_assoc;
    QCheck_alcotest.to_alcotest prop_sub_self;
    QCheck_alcotest.to_alcotest prop_scale_distributes;
    QCheck_alcotest.to_alcotest prop_eval_homomorphism;
    QCheck_alcotest.to_alcotest prop_subst_eval;
    Alcotest.test_case "fm: simple bounds" `Quick test_fm_simple_bounds;
    Alcotest.test_case "fm: scaled target" `Quick test_fm_scaled_target;
    Alcotest.test_case "fm: two vars" `Quick test_fm_two_vars;
    Alcotest.test_case "fm: infeasible" `Quick test_fm_infeasible;
    QCheck_alcotest.to_alcotest prop_fm_sound;
    Alcotest.test_case "bounds: simple array" `Quick test_bounds_simple_array;
    Alcotest.test_case "bounds: loaded index (Fig 4)" `Quick
      test_bounds_loaded_index_imprecise;
    Alcotest.test_case "bounds: call bails" `Quick test_bounds_call_bails;
    Alcotest.test_case "bounds: nested nest" `Quick test_bounds_nested_outer_target;
    Alcotest.test_case "bounds: modulo imprecise" `Quick test_bounds_modulo_imprecise;
    Alcotest.test_case "bounds: pointer walk" `Quick test_bounds_pointer_walk;
    Alcotest.test_case "bounds: dynamic soundness" `Quick
      test_bounds_dynamic_soundness;
  ]
