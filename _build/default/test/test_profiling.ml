(** Tests for the off-line profiler: concurrent-function-pair detection
    and loop body-size measurement. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

let profile ?(runs = 5) src =
  Profiling.Profile.profile_many
    ~io_of:(fun i -> Interp.Iomodel.random ~seed:(20 + i))
    ~runs (parse src)

let test_workers_concurrent () =
  let prof =
    profile
      {|int g;
        void w(int *u) { int i; for (i = 0; i < 40; i++) { g = g + 1; } }
        int main() { int t1; int t2;
          t1 = spawn(w, &g); t2 = spawn(w, &g);
          join(t1); join(t2); return g; }|}
  in
  Alcotest.(check bool) "(w,w) observed concurrent" true
    (Profiling.Profile.concurrent prof "w" "w");
  Alcotest.(check bool) "(main,w) observed concurrent" true
    (Profiling.Profile.concurrent prof "main" "w")

let test_fork_ordered_never_concurrent () =
  let prof =
    profile
      {|int g;
        void before() { g = 1; }
        void after() { g = g + 1; }
        void w(int *u) { g = g * 2; }
        int main() { int t;
          before();
          t = spawn(w, &g);
          join(t);
          after();
          return g; }|}
  in
  Alcotest.(check bool) "(before,w) never concurrent" false
    (Profiling.Profile.concurrent prof "before" "w");
  Alcotest.(check bool) "(after,w) never concurrent" false
    (Profiling.Profile.concurrent prof "after" "w")

let test_barrier_phases_never_concurrent () =
  (* the water pattern: interf and bndry are barrier-separated *)
  let prof =
    profile
      {|int x; int bar;
        void interf(int id) { int i; for (i = 0; i < 20; i++) { x = x + i; } }
        void bndry(int id) { int i; for (i = 0; i < 20; i++) { x = x - i; } }
        void w(int *idp) {
          interf(*idp);
          barrier_wait(&bar);
          bndry(*idp);
        }
        int main() { int t1; int t2; int i1; int i2;
          i1 = 1; i2 = 2;
          barrier_init(&bar, 2);
          t1 = spawn(w, &i1); t2 = spawn(w, &i2);
          join(t1); join(t2); return x; }|}
  in
  Alcotest.(check bool) "(interf,interf) concurrent" true
    (Profiling.Profile.concurrent prof "interf" "interf");
  Alcotest.(check bool) "(interf,bndry) never concurrent" false
    (Profiling.Profile.concurrent prof "interf" "bndry")

let test_loop_body_size () =
  let src =
    {|int a[100];
      int main() {
        int i;
        for (i = 0; i < 50; i++) { a[i] = i; a[i] = a[i] * 2; }
        return a[0];
      }|}
  in
  let p = parse src in
  let prof = Profiling.Profile.create () in
  let _ =
    Profiling.Profile.profile_run ~io:(Interp.Iomodel.random ~seed:1) prof p
  in
  (* the single loop: body executes 2 assignments + the increment *)
  let lid =
    let found = ref None in
    Minic.Ast.iter_program_stmts
      (fun s ->
        match s.skind with
        | Minic.Ast.While (_, _, li) -> found := Some li.lid
        | _ -> ())
      p;
    Option.get !found
  in
  match Profiling.Profile.avg_loop_body prof lid with
  | Some avg ->
      Alcotest.(check bool) (Fmt.str "avg body %.1f in [2,5]" avg) true
        (avg >= 2. && avg <= 5.)
  | None -> Alcotest.fail "loop never profiled"

let test_saturation () =
  (* the Section 7.3 sensitivity property: pairs saturate after few runs *)
  let src =
    {|int g;
      void a(int *u) { int i; for (i = 0; i < 30; i++) { g = g + 1; } }
      void b(int *u) { int i; for (i = 0; i < 30; i++) { g = g - 1; } }
      int main() { int t1; int t2;
        t1 = spawn(a, &g); t2 = spawn(b, &g);
        join(t1); join(t2); return g; }|}
  in
  let after n =
    Profiling.Profile.n_concurrent_pairs (profile ~runs:n src)
  in
  let p3 = after 3 and p10 = after 10 in
  Alcotest.(check int) "saturated by run 3" p3 p10

let suite =
  [
    Alcotest.test_case "workers concurrent" `Quick test_workers_concurrent;
    Alcotest.test_case "fork-ordered non-concurrent" `Quick
      test_fork_ordered_never_concurrent;
    Alcotest.test_case "barrier phases non-concurrent (Fig 2)" `Quick
      test_barrier_phases_never_concurrent;
    Alcotest.test_case "loop body size" `Quick test_loop_body_size;
    Alcotest.test_case "profile saturation" `Quick test_saturation;
  ]
