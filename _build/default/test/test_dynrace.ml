(** Tests for the vector-clock dynamic race detector: true positives on
    seeded races, true negatives across every synchronization primitive's
    happens-before edges, and weak-lock-aware tracking. *)

let parse src = Minic.Typecheck.parse_and_check ~file:"test.mc" src

let detect ?(seed = 3) ?(track_weak = true) src =
  let dr = Dynrace.create ~track_weak () in
  let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
  let config = { Interp.Engine.default_config with seed; cores = 4 } in
  let io = Interp.Iomodel.random ~seed:7 in
  let o = Interp.Engine.run ~config ~hooks ~mode:Interp.Engine.Native ~io (parse src) in
  (dr, o)

let test_detects_unprotected () =
  let dr, _ =
    detect
      {|int g;
        void w(int *u) { g = g + 1; }
        int main() { int t1; int t2;
          t1 = spawn(w, &g); t2 = spawn(w, &g);
          join(t1); join(t2); return g; }|}
  in
  Alcotest.(check bool) "race found" true (Dynrace.n_races dr > 0)

let test_mutex_hb () =
  let dr, _ =
    detect
      {|int g; int m;
        void w(int *u) { lock(&m); g = g + 1; unlock(&m); }
        int main() { int t1; int t2;
          t1 = spawn(w, &g); t2 = spawn(w, &g);
          join(t1); join(t2); return g; }|}
  in
  Alcotest.(check int) "mutex orders accesses" 0 (Dynrace.n_races dr)

let test_fork_join_hb () =
  let dr, _ =
    detect
      {|int g;
        void w(int *u) { g = g + 1; }
        int main() { int t;
          g = 1;
          t = spawn(w, &g);
          join(t);
          g = g + 1;
          return g; }|}
  in
  Alcotest.(check int) "spawn/join order accesses" 0 (Dynrace.n_races dr)

let test_barrier_hb () =
  let dr, _ =
    detect
      {|int a[2]; int b[2]; int bar;
        int ids[2];
        void w(int *idp) {
          int id; id = *idp;
          a[id] = id + 1;
          barrier_wait(&bar);
          b[id] = a[1 - id];
          barrier_wait(&bar);
        }
        int main() { int t1; int t2;
          barrier_init(&bar, 2);
          ids[0] = 0; ids[1] = 1;
          t1 = spawn(w, &ids[0]); t2 = spawn(w, &ids[1]);
          join(t1); join(t2); return b[0] + b[1]; }|}
  in
  Alcotest.(check int) "barrier orders cross-phase accesses" 0
    (Dynrace.n_races dr)

let test_cond_hb () =
  let dr, _ =
    detect
      {|int data; int ready = 0; int m; int cv;
        void consumer(int *u) {
          lock(&m);
          while (ready == 0) { cond_wait(&cv, &m); }
          unlock(&m);
          data = data + 1;
        }
        int main() { int t;
          t = spawn(consumer, &data);
          data = 42;
          lock(&m); ready = 1; cond_signal(&cv); unlock(&m);
          join(t);
          return data; }|}
  in
  Alcotest.(check int) "cond signal orders data" 0 (Dynrace.n_races dr)

let test_weak_lock_hb () =
  (* hand-instrumented: a weak lock ordering otherwise-racy accesses is
     counted as synchronization when track_weak is on, and ignored when
     off *)
  let src =
    {|int g;
      void w(int *u) { g = g + 1; }
      int main() { int t1; int t2;
        t1 = spawn(w, &g); t2 = spawn(w, &g);
        join(t1); join(t2); return g; }|}
  in
  let p = parse src in
  Minic.Ast.Fresh.reset_from p;
  let wlock = { Minic.Ast.wl_id = 0; wl_gran = Minic.Ast.Gbb } in
  let wrap (fd : Minic.Ast.fundec) =
    if fd.f_name = "w" then
      {
        fd with
        f_body =
          Minic.Ast.Fresh.stmt
            (WeakEnter [ { wa_lock = wlock; wa_ranges = [] } ])
          :: fd.f_body
          @ [ Minic.Ast.Fresh.stmt (WeakExit [ wlock ]) ];
      }
    else fd
  in
  let p = { p with p_funs = List.map wrap p.p_funs } in
  let run track_weak =
    let dr = Dynrace.create ~track_weak () in
    let hooks = Dynrace.attach dr (Interp.Engine.no_hooks ()) in
    let config = { Interp.Engine.default_config with seed = 3; cores = 4 } in
    let io = Interp.Iomodel.random ~seed:7 in
    ignore (Interp.Engine.run ~config ~hooks ~mode:Interp.Engine.Native ~io p);
    Dynrace.n_races dr
  in
  Alcotest.(check int) "weak lock counts as sync" 0 (run true);
  Alcotest.(check bool) "ignored when track_weak=false" true (run false > 0)

let test_write_write_and_read_write () =
  let dr, _ =
    detect
      {|int g; int sink1; int sink2;
        void writer(int *u) { g = 1; }
        void reader(int *u) { sink1 = g; }
        int main() { int t1; int t2;
          t1 = spawn(writer, &g); t2 = spawn(reader, &g);
          join(t1); join(t2);
          sink2 = 0;
          return g; }|}
  in
  let races = Dynrace.races dr in
  Alcotest.(check bool) "read-write race found" true
    (List.exists
       (fun (r : Dynrace.race) ->
         r.dr_addr.Runtime.Key.a_origin = Runtime.Key.OGlobal "g")
       races)

let test_vc_epoch_ordering () =
  let open Dynrace.Vc in
  let vc = tick 1 (tick 1 (tick 2 empty)) in
  Alcotest.(check bool) "epoch le" true (epoch_le (1, 2) vc);
  Alcotest.(check bool) "epoch not le" false (epoch_le (1, 3) vc);
  let joined = join vc (tick 3 empty) in
  Alcotest.(check bool) "join keeps max" true (epoch_le (3, 1) joined)

let test_counts_all_memops () =
  (* the Figure 6 baseline: the dynamic detector instruments every memory
     operation *)
  let dr, o =
    detect
      {|int a[10];
        int main() { int i; for (i = 0; i < 10; i++) { a[i] = i; } return a[5]; }|}
  in
  Alcotest.(check int) "checked = engine memory ops" o.o_stats.n_mem_ops
    (Dynrace.n_checks dr)

let suite =
  [
    Alcotest.test_case "detects unprotected race" `Quick test_detects_unprotected;
    Alcotest.test_case "mutex HB" `Quick test_mutex_hb;
    Alcotest.test_case "fork/join HB" `Quick test_fork_join_hb;
    Alcotest.test_case "barrier HB" `Quick test_barrier_hb;
    Alcotest.test_case "cond HB" `Quick test_cond_hb;
    Alcotest.test_case "weak-lock HB" `Quick test_weak_lock_hb;
    Alcotest.test_case "read/write race" `Quick test_write_write_and_read_write;
    Alcotest.test_case "vector clock epochs" `Quick test_vc_epoch_ordering;
    Alcotest.test_case "100% memop coverage" `Quick test_counts_all_memops;
  ]
