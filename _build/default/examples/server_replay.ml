(** Production-style recording: the apache benchmark under load.

    Run with: dune exec examples/server_replay.exe

    The paper's headline claim for servers is that recording costs almost
    nothing (2.4% average for apache + desktop apps) because logging
    overlaps with I/O wait, while the hot memset loop — which a naive
    scheme would serialize — runs in parallel thanks to loop-locks with
    symbolic address ranges. This example records a busy 4-worker server,
    reports the overhead and log sizes, and replays the run. *)

let () =
  let b = Bench_progs.Registry.by_name "apache" in
  let workers = 4 in
  let src = b.b_source ~workers ~scale:b.b_eval_scale in
  Fmt.pr "apache workload: %d workers, %d lines of MiniC@." workers
    (Bench_progs.Registry.loc b ~workers);

  let an =
    Chimera.Pipeline.analyze ~profile_runs:8
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:"apache" src)
  in
  Fmt.pr "static analysis : %d race pairs reported by RELAY@."
    (List.length an.an_report.races);
  Fmt.pr "plan            : %a@." Instrument.Plan.pp_summary an.an_plan;

  (* the memset story: show the loop-lock decisions with their ranges *)
  let ranged_loops =
    List.filter
      (fun (pd : Instrument.Plan.pair_decision) ->
        pd.pd_s1.sd_ranges <> [] || pd.pd_s2.sd_ranges <> [])
      an.an_plan.pl_decisions
  in
  Fmt.pr "loop-locks with symbolic ranges: %d race pairs (the hot memset \
          pattern)@."
    (List.length ranged_loops);

  let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
  let config = { Interp.Engine.default_config with seed = 2; cores = workers } in
  let ov, r =
    Chimera.Runner.measure ~config ~io ~original:an.an_prog
      ~instrumented:an.an_instrumented ()
  in
  Fmt.pr "@.native run      : %7d simulated ticks@." ov.ov_native_ticks;
  Fmt.pr "recorded run    : %7d simulated ticks  -> %.2fx overhead@."
    ov.ov_record_ticks ov.ov_record;
  Fmt.pr "replayed run    : %7d simulated ticks  -> %.2fx (network waits \
          are skipped at replay)@."
    ov.ov_replay_ticks ov.ov_replay;
  let s = r.rc_outcome.o_stats in
  Fmt.pr "weak-lock ops   : func %d | loop %d | bb %d | instr %d (of %d \
          memory ops = %.3f%%)@."
    s.n_weak_acq.(0) s.n_weak_acq.(1) s.n_weak_acq.(2) s.n_weak_acq.(3)
    s.n_mem_ops
    (100.
    *. float_of_int (Array.fold_left ( + ) 0 s.n_weak_acq)
    /. float_of_int (max 1 s.n_mem_ops));
  Fmt.pr "log sizes (gz)  : input %dB, order %dB@." r.rc_input_log_z
    r.rc_order_log_z;

  let o =
    Chimera.Runner.replay
      ~config:{ config with seed = 424242 }
      ~io an.an_instrumented r.rc_log
  in
  match Chimera.Runner.same_execution r.rc_outcome o with
  | Ok () ->
      Fmt.pr "@.replay under a different scheduler: DETERMINISTIC — all %d \
              responses identical.@."
        (List.length r.rc_outcome.o_outputs)
  | Error d -> Fmt.pr "@.replay DIVERGED: %a@." Chimera.Runner.pp_divergence d
