examples/server_replay.mli:
