examples/quickstart.mli:
