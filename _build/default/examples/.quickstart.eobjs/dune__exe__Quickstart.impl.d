examples/quickstart.ml: Chimera Fmt Instrument Interp List Minic Relay
