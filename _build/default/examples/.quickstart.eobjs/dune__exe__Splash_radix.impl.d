examples/splash_radix.ml: Bench_progs Chimera Fmt Instrument Interp List Minic
