examples/server_replay.ml: Array Bench_progs Chimera Fmt Instrument Interp List Minic
