examples/deterministic.mli:
