examples/splash_radix.mli:
