examples/debug_race.ml: Chimera Fmt Interp List Minic
