examples/deterministic.ml: Chimera Fmt Instrument Interp List Minic
