(** Deterministic execution without logs — the paper's future-work
    direction, realized.

    Run with: dune exec examples/deterministic.exe

    Record/replay reproduces *one recorded* execution. Deterministic
    execution goes further: because the Chimera-transformed program is
    data-race-free, arbitrating every lock-state change by deterministic
    logical time (Kendo-style: an operation commits only when its
    thread's logical clock is the strict global minimum) makes the whole
    execution a function of the program and its inputs — the same
    outputs, final memory, and per-thread instruction counts on every
    run, under every scheduler, with no recording at all.

    This example runs a racy work-stealing histogram twice through the
    simulator's schedule space:
    - the original program natively: results vary with the scheduler;
    - the transformed program in [Interp.Engine.Deterministic] mode:
      one outcome, every seed. *)

(* Workers histogram a shared buffer with racy bin updates and a racy
   "items processed" counter — both outcomes depend on the schedule. *)
let source =
  {|
int data[256];
int hist[8];
int processed = 0;
int ids[4];

void worker(int *idp) {
  int i; int id; int b; int t;
  id = *idp;
  for (i = id; i < 256; i = i + 4) {
    b = data[i] & 7;
    t = hist[b];           // racy read-modify-write on the bin
    hist[b] = t + 1;
    t = processed;         // racy counter
    processed = t + 1;
  }
}

int main() {
  int t[4]; int i; int sum;
  for (i = 0; i < 256; i++) { data[i] = (i * 13 + 5) % 97; }
  for (i = 0; i < 4; i++) { ids[i] = i; t[i] = spawn(worker, &ids[i]); }
  for (i = 0; i < 4; i++) { join(t[i]); }
  sum = 0;
  for (i = 0; i < 8; i++) { sum = sum * 31 + hist[i]; }
  output(sum);
  output(processed);
  return 0;
}
|}

let seeds = [ 1; 7; 19; 42; 123; 999 ]

let outcomes mode prog =
  List.map
    (fun seed ->
      let o =
        Interp.Engine.run
          ~config:{ Interp.Engine.default_config with seed; cores = 2 }
          ~mode
          ~io:(Interp.Iomodel.random ~seed:3)
          prog
      in
      (List.map snd o.Interp.Engine.o_outputs, o.o_final_hash))
    seeds

let show (outs, _hash) = Fmt.str "[%a]" Fmt.(list ~sep:comma int) outs

let () =
  let program = Minic.Parser.parse ~file:"deterministic.mc" source in

  Fmt.pr "=== 1. The original racy program, natively, 6 scheduler seeds ===@.";
  let native = outcomes Interp.Engine.Native program in
  List.iter2
    (fun seed o -> Fmt.pr "  seed %4d -> outputs %s@." seed (show o))
    seeds native;
  Fmt.pr "  distinct outcomes: %d (races make the result a dice roll)@.@."
    (List.length (List.sort_uniq compare native));

  Fmt.pr "=== 2. Transform (RELAY races -> weak locks) ===@.";
  let an = Chimera.Pipeline.analyze ~profile_runs:4 program in
  Fmt.pr "  %d race pairs guarded; plan: %a@.@."
    (List.length an.an_report.races)
    Instrument.Plan.pp_summary an.an_plan;

  Fmt.pr "=== 3. Transformed program, deterministic mode, same 6 seeds ===@.";
  let det = outcomes Interp.Engine.Deterministic an.an_instrumented in
  List.iter2
    (fun seed o -> Fmt.pr "  seed %4d -> outputs %s@." seed (show o))
    seeds det;
  let distinct = List.length (List.sort_uniq compare det) in
  Fmt.pr "  distinct outcomes: %d@.@." distinct;

  if distinct = 1 then
    Fmt.pr
      "DETERMINISTIC: every schedule produces the same execution — no race \
       windows left to toss coins in, and no logs were written.@."
  else (
    Fmt.pr "UNEXPECTED: deterministic mode diverged!@.";
    exit 1)
