(** The paper's Figure 4, live: radix sort and the symbolic bounds
    analysis.

    Run with: dune exec examples/splash_radix.exe

    radix partitions its arrays across worker threads. A conservative
    static race detector cannot prove the partitions disjoint (the [rank]
    index is loaded from memory in the counting loop), so every array
    access is a potential race. Chimera derives symbolic address bounds
    for the affine loops — [&rank\[base\] .. &rank\[base+RADIX-1\]] — and
    guards them with range-claimed loop-locks that let disjoint workers
    run in parallel; the unboundable counting loop falls back to a
    coarser guard (the [-INF..+INF] case in Figure 4). *)

let () =
  let b = Bench_progs.Registry.by_name "radix" in
  let workers = 4 in
  let src = b.b_source ~workers ~scale:b.b_eval_scale in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:8
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:"radix" src)
  in

  Fmt.pr "=== Granularity decisions for radix's race pairs ===@.";
  List.iteri
    (fun i (pd : Instrument.Plan.pair_decision) ->
      if i < 12 then begin
        let show (sd : Instrument.Plan.side_decision) =
          match sd.sd_ranges with
          | [] -> Fmt.str "%a [total]" Instrument.Plan.pp_region sd.sd_region
          | rs ->
              Fmt.str "%a %a" Instrument.Plan.pp_region sd.sd_region
                Fmt.(
                  list ~sep:(any "+")
                    (fun ppf (r : Minic.Ast.warange) ->
                      Fmt.pf ppf "[%a..%a]%s" Minic.Pretty.pp_exp r.wr_lo
                        Minic.Pretty.pp_exp r.wr_hi
                        (if r.wr_write then "w" else "r")))
                rs
        in
        Fmt.pr "  %-22s %s | %s@."
          (Fmt.str "%a" Minic.Ast.pp_weak_lock pd.pd_lock)
          (show pd.pd_s1) (show pd.pd_s2)
      end)
    an.an_plan.pl_decisions;
  Fmt.pr "  ... (%d pairs total)@.@."
    (List.length an.an_plan.pl_decisions);

  (* correctness: sorted output is schedule-independent once instrumented *)
  let io = b.b_io ~seed:42 ~scale:b.b_eval_scale in
  Fmt.pr "=== Record at 2, 4, 8 threads; replay each ===@.";
  List.iter
    (fun workers ->
      let src = b.b_source ~workers ~scale:b.b_eval_scale in
      let an =
        Chimera.Pipeline.analyze ~profile_runs:6
          ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
          (Minic.Parser.parse ~file:"radix" src)
      in
      let config =
        { Interp.Engine.default_config with seed = 3; cores = workers }
      in
      let ov, r =
        Chimera.Runner.measure ~config ~io ~original:an.an_prog
          ~instrumented:an.an_instrumented ()
      in
      let verdict =
        match
          Chimera.Runner.same_execution r.rc_outcome
            (Chimera.Runner.replay
               ~config:{ config with seed = 31337 }
               ~io an.an_instrumented r.rc_log)
        with
        | Ok () -> "deterministic"
        | Error _ -> "DIVERGED"
      in
      Fmt.pr "  %d threads: record %.2fx, replay %.2fx — %s@." workers
        ov.ov_record ov.ov_replay verdict)
    [ 2; 4; 8 ];

  Fmt.pr "@.=== Checksum of the sorted keys (stable across replays) ===@.";
  let config = { Interp.Engine.default_config with seed = 3; cores = 4 } in
  let r = Chimera.Runner.record ~config ~io an.an_instrumented in
  Fmt.pr "  sorted-key checksum: %a@."
    Fmt.(list ~sep:comma int)
    (List.map snd r.rc_outcome.o_outputs)
