(** Why Chimera exists: replaying a racy program from sync-only logs does
    not work — Chimera's weak locks make it work.

    Run with: dune exec examples/debug_race.exe

    This is the paper's motivating scenario (Section 1): a program with a
    heisenbug that only appears under some interleavings. Without Chimera
    the bug cannot be reproduced from a recording; with Chimera, every
    replay reproduces the recorded execution — including the buggy one —
    and the developer can then inspect it deterministically. *)

(* A bank-account "deposit" with a read-modify-write race: under unlucky
   schedules deposits are lost and the final balance is short. *)
let source =
  {|
int balance = 0;

void depositor(int *amount) {
  int i; int snapshot;
  for (i = 0; i < 40; i++) {
    snapshot = balance;      // racy read
    balance = snapshot + *amount;   // racy write: deposits get lost
  }
}

int main() {
  int t1; int t2; int a1; int a2;
  a1 = 1; a2 = 1;
  t1 = spawn(depositor, &a1);
  t2 = spawn(depositor, &a2);
  join(t1);
  join(t2);
  output(balance);           // should be 80; races lose deposits
  return 0;
}
|}

let io = Interp.Iomodel.random ~seed:5

let config seed = { Interp.Engine.default_config with seed; cores = 4 }

let () =
  let program = Minic.Typecheck.parse_and_check ~file:"bank.mc" source in

  Fmt.pr "=== The heisenbug: final balance across schedules ===@.";
  List.iter
    (fun seed ->
      let o = Chimera.Runner.native ~config:(config seed) ~io program in
      let v = List.hd (List.map snd o.o_outputs) in
      Fmt.pr "  seed %2d -> balance = %d%s@." seed v
        (if v < 80 then "   <- lost deposits!" else ""))
    [ 1; 2; 3; 4; 5; 6 ];

  Fmt.pr "@.=== Naive replay (sync logs only, no weak locks) ===@.";
  let tried = ref 0 and diverged = ref 0 in
  List.iter
    (fun seed ->
      incr tried;
      let r = Chimera.Runner.record ~config:(config seed) ~io program in
      let o =
        Chimera.Runner.replay ~config:(config (seed + 7919)) ~io program r.rc_log
      in
      match Chimera.Runner.same_execution r.rc_outcome o with
      | Ok () -> ()
      | Error _ -> incr diverged)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Fmt.pr "  %d of %d replays reproduced a DIFFERENT execution.@." !diverged
    !tried;
  Fmt.pr "  (Racy programs cannot be replayed from input+sync logs alone.)@.";

  Fmt.pr "@.=== With Chimera ===@.";
  let an = Chimera.Pipeline.analyze ~profile_runs:6 (Minic.Parser.parse source) in
  Fmt.pr "  RELAY found %d race pairs; instrumented with %d weak locks.@."
    (List.length an.an_report.races)
    an.an_plan.pl_n_locks;
  let ok = ref 0 in
  List.iter
    (fun seed ->
      match
        Chimera.Runner.record_replay_check ~config:(config seed) ~io
          an.an_instrumented
      with
      | Ok (r, _) ->
          incr ok;
          let v = List.hd (List.map snd r.rc_outcome.o_outputs) in
          Fmt.pr "  seed %2d -> recorded balance %d, replay identical ✓@." seed v
      | Error d ->
          Fmt.pr "  seed %2d -> DIVERGED: %a@." seed Chimera.Runner.pp_divergence d)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Fmt.pr "  %d/8 recordings replayed deterministically.@." !ok;
  Fmt.pr
    "@.Every recorded execution — including ones that exhibit the lost-update \
     bug — can now be replayed and debugged deterministically.@."
