(** Quickstart: the whole Chimera pipeline on a small racy program.

    Run with: dune exec examples/quickstart.exe

    The program has a classic lost-update race on [counter]. We:
    1. run RELAY to find the potential races,
    2. profile and plan weak-lock granularities,
    3. instrument the program,
    4. record an execution and replay it under a different scheduler,
    5. check the replay reproduced the recording exactly. *)

let source =
  {|
int counter = 0;
int done_flags[2];
int ids[2];

void worker(int *idp) {
  int i; int tmp; int id;
  id = *idp;
  for (i = 0; i < 25; i++) {
    tmp = counter;        // racy read
    counter = tmp + 1;    // racy write (lost updates!)
  }
  done_flags[id] = 1;
}

int main() {
  int t[2]; int i;
  for (i = 0; i < 2; i++) {
    ids[i] = i;
    t[i] = spawn(worker, &ids[i]);
  }
  for (i = 0; i < 2; i++) { join(t[i]); }
  output(counter);
  output(done_flags[0] + done_flags[1]);
  return 0;
}
|}

let () =
  Fmt.pr "=== 1. Static race detection (RELAY) ===@.";
  let program = Minic.Parser.parse ~file:"quickstart.mc" source in
  let an = Chimera.Pipeline.analyze ~profile_runs:6 program in
  Fmt.pr "%a@.@." Relay.Detect.pp_report an.an_report;

  Fmt.pr "=== 2. Granularity plan ===@.";
  Fmt.pr "%a@." Instrument.Plan.pp_summary an.an_plan;
  List.iter
    (fun (pd : Instrument.Plan.pair_decision) ->
      Fmt.pr "  %a / %a <- lock %a@." Instrument.Plan.pp_region
        pd.pd_s1.sd_region Instrument.Plan.pp_region pd.pd_s2.sd_region
        Minic.Ast.pp_weak_lock pd.pd_lock)
    an.an_plan.pl_decisions;
  Fmt.pr "@.=== 3. Instrumented program ===@.";
  print_string (Minic.Pretty.program_to_string an.an_instrumented);

  Fmt.pr "@.=== 4. Record, then replay under a different scheduler ===@.";
  let io = Interp.Iomodel.random ~seed:7 in
  let record_config = { Interp.Engine.default_config with seed = 11; cores = 4 } in
  let r = Chimera.Runner.record ~config:record_config ~io an.an_instrumented in
  Fmt.pr "recorded run : outputs = [%a], %d simulated ticks@."
    Fmt.(list ~sep:comma int)
    (List.map snd r.rc_outcome.o_outputs)
    r.rc_outcome.o_ticks;
  Fmt.pr "log sizes    : input %dB, order %dB (compressed)@."
    r.rc_input_log_z r.rc_order_log_z;

  let replay_config = { record_config with seed = 99999 } in
  let o = Chimera.Runner.replay ~config:replay_config ~io an.an_instrumented r.rc_log in
  Fmt.pr "replayed run : outputs = [%a]@."
    Fmt.(list ~sep:comma int)
    (List.map snd o.o_outputs);

  Fmt.pr "@.=== 5. Determinism check ===@.";
  match Chimera.Runner.same_execution r.rc_outcome o with
  | Ok () ->
      Fmt.pr
        "DETERMINISTIC: same outputs, same final memory, same per-thread \
         instruction counts.@."
  | Error d -> Fmt.pr "DIVERGED: %a@." Chimera.Runner.pp_divergence d
