(** The replayer: cursors over a {!Log.t} the engine consults to gate
    execution. Data accesses are never gated — the instrumented program
    is race-free under its (weak-)lock synchronization, so the recorded
    orders of inputs, sync operations, and conflicting weak-lock
    acquisitions determine the execution. *)

open Runtime

type t

val of_log : Log.t -> t

(** Whose syscall comes next, globally? [None] past the end of the log
    (unconstrained). *)
val peek_syscall : t -> Key.tid_path option

val advance_syscall : t -> unit

val peek_sync : t -> Key.addr -> (Log.sync_op * Key.tid_path) option
val advance_sync : t -> Key.addr -> unit

(** May the thread perform its next recorded acquisition of the lock?
    True when no earlier unconsumed acquisition of the same lock
    conflicts with the thread's next recorded claim (disjoint-range
    holders legitimately overlap), or when the thread has no entry
    left. *)
val weak_turn : t -> Minic.Ast.weak_lock -> tp:Key.tid_path -> bool

(** Consume the thread's earliest remaining acquisition entry. *)
val consume_weak : t -> Minic.Ast.weak_lock -> tp:Key.tid_path -> unit

(** Pop the next recorded input burst for the thread. *)
val take_input : t -> Key.tid_path -> int list option

(** Forced release due for the owner at (or before) the given step
    count; consumed only when [holds lock] — the owner may not have
    reacquired yet when the threshold is first crossed. *)
val pending_forced :
  t ->
  Key.tid_path ->
  steps:int ->
  holds:(Minic.Ast.weak_lock -> bool) ->
  Minic.Ast.weak_lock option

(** Step count of the owner's next forced event, if any. *)
val peek_forced : t -> Key.tid_path -> int option

(** Human-readable first entries of every remaining cursor (deadlock
    diagnosis). *)
val dump_remaining : t -> string list
