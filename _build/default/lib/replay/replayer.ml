(** The replayer: cursors over a {!Log.t} that the engine consults to gate
    execution.

    Replay enforces exactly the orders the paper's replayer enforces:
    per-thread syscall results are fed back from the input log; the global
    syscall order, the per-object synchronization-operation order, and
    the per-weak-lock acquisition order are enforced by blocking a thread
    whose operation is not next in its object's recorded sequence; forced
    weak-lock releases are re-applied at the recorded owner step count.
    Data accesses are not gated: the instrumented program is data-race
    free under its (weak-)lock synchronization, so these orders determine
    the execution. *)

open Runtime

type t = {
  log : Log.t;
  mutable syscall_cursor : Key.tid_path list;
  sync_cursors : (Key.addr, (Log.sync_op * Key.tid_path) list ref) Hashtbl.t;
  weak_cursors :
    (Minic.Ast.weak_lock, (Key.tid_path * Log.sclaim) list ref) Hashtbl.t;
  input_cursors : (Key.tid_path, int list list ref) Hashtbl.t;
      (** remaining bursts, oldest first *)
  forced_by_owner : (Key.tid_path, (int * Minic.Ast.weak_lock) list ref) Hashtbl.t;
}

let of_log (log : Log.t) : t =
  let sync_cursors = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace sync_cursors k (ref (List.rev v)))
    log.sync_order;
  let weak_cursors = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace weak_cursors k (ref (List.rev v)))
    log.weak_order;
  let input_cursors = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k bursts -> Hashtbl.replace input_cursors k (ref (List.rev bursts)))
    log.inputs;
  let forced_by_owner = Hashtbl.create 4 in
  List.iter
    (fun (fe : Log.forced_event) ->
      let r =
        match Hashtbl.find_opt forced_by_owner fe.fe_owner with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace forced_by_owner fe.fe_owner r;
            r
      in
      r := !r @ [ (fe.fe_steps, fe.fe_lock) ])
    (List.rev log.forced);
  {
    log;
    syscall_cursor = List.rev log.syscall_order;
    sync_cursors;
    weak_cursors;
    input_cursors;
    forced_by_owner;
  }

(* ------------------------------------------------------------------ *)
(* Gating queries: [peek] tells whose turn it is; [advance] consumes. *)

let peek_syscall (t : t) : Key.tid_path option =
  match t.syscall_cursor with [] -> None | p :: _ -> Some p

let advance_syscall (t : t) =
  match t.syscall_cursor with [] -> () | _ :: rest -> t.syscall_cursor <- rest

let peek_sync (t : t) (obj : Key.addr) : (Log.sync_op * Key.tid_path) option =
  match Hashtbl.find_opt t.sync_cursors obj with
  | None -> None
  | Some r -> ( match !r with [] -> None | x :: _ -> Some x)

let advance_sync (t : t) (obj : Key.addr) =
  match Hashtbl.find_opt t.sync_cursors obj with
  | None -> ()
  | Some r -> ( match !r with [] -> () | _ :: rest -> r := rest)

(** May thread [tp] perform its next recorded acquisition of [lock]?
    True when no {e earlier} unconsumed acquisition of the same lock
    conflicts (range-overlaps) with [tp]'s next recorded claim —
    disjoint-range loop-lock acquisitions legitimately overlap in the
    recording, so only the order of conflicting pairs is enforced.
    Also true when [tp] has no remaining entry (execution ran beyond the
    log). *)
let weak_turn (t : t) (lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path) : bool
    =
  match Hashtbl.find_opt t.weak_cursors lock with
  | None -> true
  | Some r ->
      let rec scan earlier = function
        | [] -> true
        | (p, claim) :: rest ->
            if p = tp then
              not
                (List.exists
                   (fun (_, c') -> Log.sclaims_conflict claim c')
                   earlier)
            else scan ((p, claim) :: earlier) rest
      in
      scan [] !r

(** Consume [tp]'s earliest remaining acquisition entry for [lock]. *)
let consume_weak (t : t) (lock : Minic.Ast.weak_lock) ~(tp : Key.tid_path) =
  match Hashtbl.find_opt t.weak_cursors lock with
  | None -> ()
  | Some r ->
      let rec remove acc = function
        | [] -> List.rev acc
        | (p, _) :: rest when p = tp -> List.rev_append acc rest
        | e :: rest -> remove (e :: acc) rest
      in
      r := remove [] !r

(** Pop the next recorded input burst for thread [tp]. *)
let take_input (t : t) (tp : Key.tid_path) : int list option =
  match Hashtbl.find_opt t.input_cursors tp with
  | None -> None
  | Some r -> (
      match !r with
      | [] -> None
      | burst :: rest ->
          r := rest;
          Some burst)

(** Forced release pending for [owner] at (or before) step count [steps].
    The entry is consumed only when [holds lock] — the owner may not have
    (re)acquired the lock yet at the moment the step threshold is first
    crossed (recordings can carry several forced events at the same owner
    step count when the owner was parked). *)
let pending_forced (t : t) (owner : Key.tid_path) ~(steps : int)
    ~(holds : Minic.Ast.weak_lock -> bool) : Minic.Ast.weak_lock option =
  match Hashtbl.find_opt t.forced_by_owner owner with
  | None -> None
  | Some r -> (
      match !r with
      | (s, lock) :: rest when steps >= s && holds lock ->
          r := rest;
          Some lock
      | _ -> None)

(** Human-readable dump of the first few remaining entries of every
    cursor — the deadlock-diagnosis view. *)
let dump_remaining (t : t) : string list =
  let acc = ref [] in
  (match t.syscall_cursor with
  | [] -> ()
  | ps ->
      acc :=
        Fmt.str "syscall next: %a (%d left)"
          Fmt.(list ~sep:sp Key.pp_tid_path)
          (List.filteri (fun i _ -> i < 4) ps)
          (List.length ps)
        :: !acc);
  Hashtbl.iter
    (fun obj r ->
      match !r with
      | [] -> ()
      | (op, p) :: _ ->
          acc :=
            Fmt.str "sync %a next: %a by %a (%d left)" Key.pp_addr obj
              Log.pp_sync_op op Key.pp_tid_path p (List.length !r)
            :: !acc)
    t.sync_cursors;
  Hashtbl.iter
    (fun lock r ->
      match !r with
      | [] -> ()
      | entries ->
          acc :=
            Fmt.str "weak %a next: %a (%d left)" Minic.Ast.pp_weak_lock lock
              Fmt.(list ~sep:sp Key.pp_tid_path)
              (List.filteri (fun i _ -> i < 4) (List.map fst entries))
              (List.length entries)
            :: !acc)
    t.weak_cursors;
  List.sort compare !acc

(** Is the next forced event for [owner] exactly at [steps]? (peek) *)
let peek_forced (t : t) (owner : Key.tid_path) : int option =
  match Hashtbl.find_opt t.forced_by_owner owner with
  | None -> None
  | Some r -> ( match !r with (s, _) :: _ -> Some s | [] -> None)
