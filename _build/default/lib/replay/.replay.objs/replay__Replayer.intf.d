lib/replay/replayer.mli: Key Log Minic Runtime
