lib/replay/replayer.ml: Fmt Hashtbl Key List Log Minic Runtime
