lib/replay/recorder.ml: Array Hashtbl Key Log Minic Option Runtime
