lib/replay/log.ml: Buffer Char Fmt Hashtbl Key List Minic Runtime String
