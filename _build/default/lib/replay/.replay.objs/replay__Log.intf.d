lib/replay/log.mli: Fmt Hashtbl Key Minic Runtime
