lib/replay/recorder.mli: Key Log Minic Runtime
