(** Steensgaard's unification-based points-to analysis.

    Almost-linear time via union-find: every abstract location has a node;
    each equivalence class has at most one pointee class; assignments
    unify pointee classes, and unification cascades recursively (POPL'96).
    Coarser than Andersen but very fast — RELAY uses it for lvalue
    aliasing; we expose both and the test suite checks Andersen refines
    Steensgaard. *)

module A = Absloc

type node = {
  id : int;
  mutable parent : int;            (* union-find *)
  mutable rank : int;
  mutable pointee : int option;    (* class this class points to *)
  mutable members : A.t list;      (* abslocs living in this class *)
}

type t = {
  nodes : (int, node) Hashtbl.t;
  index : (A.t, int) Hashtbl.t;
  mutable next : int;
}

let create () = { nodes = Hashtbl.create 256; index = Hashtbl.create 256; next = 0 }

let new_node ?(members = []) st =
  let id = st.next in
  st.next <- id + 1;
  let n = { id; parent = id; rank = 0; pointee = None; members } in
  Hashtbl.replace st.nodes id n;
  n

let node_of st l =
  match Hashtbl.find_opt st.index l with
  | Some id -> Hashtbl.find st.nodes id
  | None ->
      let n = new_node ~members:[ l ] st in
      Hashtbl.replace st.index l n.id;
      n

let rec find st id =
  let n = Hashtbl.find st.nodes id in
  if n.parent = id then n
  else begin
    let root = find st n.parent in
    n.parent <- root.id;
    root
  end

(* pointee class of class [n], creating a fresh one if absent *)
let pts st n =
  let n = find st n.id in
  match n.pointee with
  | Some p -> find st p
  | None ->
      let fresh = new_node st in
      n.pointee <- Some fresh.id;
      fresh

let rec union st a b =
  let ra = find st a.id and rb = find st b.id in
  if ra.id = rb.id then ra
  else begin
    let parent, child =
      if ra.rank >= rb.rank then (ra, rb) else (rb, ra)
    in
    child.parent <- parent.id;
    if parent.rank = child.rank then parent.rank <- parent.rank + 1;
    parent.members <- List.rev_append child.members parent.members;
    (* merge pointees recursively (cjoin) *)
    let pp = child.pointee in
    child.pointee <- None;
    (match (parent.pointee, pp) with
    | None, Some p -> parent.pointee <- Some (find st p).id
    | Some p1, Some p2 ->
        let merged = union st (find st p1) (find st p2) in
        parent.pointee <- Some merged.id
    | _, None -> ());
    find st parent.id
  end

let solve (constraints : Constr.t list) : t =
  let st = create () in
  List.iter
    (fun c ->
      match c with
      | Constr.Addr (d, a) ->
          (* pts(d) must contain a: unify pts(d) with a's class *)
          ignore (union st (pts st (node_of st d)) (node_of st a))
      | Constr.Copy (d, s) ->
          ignore (union st (pts st (node_of st d)) (pts st (node_of st s)))
      | Constr.Load (d, s) ->
          let ps = pts st (node_of st s) in
          ignore (union st (pts st (node_of st d)) (pts st ps))
      | Constr.Store (d, s) ->
          let pd = pts st (node_of st d) in
          ignore (union st (pts st pd) (pts st (node_of st s))))
    constraints;
  st

(** Points-to set of [l]: members of the pointee class. Empty if [l] was
    never constrained. *)
let points_to (st : t) (l : A.t) : A.Set.t =
  match Hashtbl.find_opt st.index l with
  | None -> A.Set.empty
  | Some id -> (
      let n = find st id in
      match n.pointee with
      | None -> A.Set.empty
      | Some p ->
          let pc = find st p in
          A.Set.of_list pc.members)

(** Do [a] and [b] possibly alias, i.e. share an equivalence class? *)
let may_alias (st : t) (a : A.t) (b : A.t) : bool =
  match (Hashtbl.find_opt st.index a, Hashtbl.find_opt st.index b) with
  | Some ia, Some ib -> (find st ia).id = (find st ib).id
  | _ -> A.equal a b
