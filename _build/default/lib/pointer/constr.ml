(** Inclusion-constraint generation from MiniC programs.

    Produces the classic four constraint forms over abstract locations:

    - [Addr (d, a)]  : the address of object [a] flows into [d]
                       (pts(d) ⊇ \{a\})
    - [Copy (d, s)]  : pts(d) ⊇ pts(s)
    - [Load (d, s)]  : pts(d) ⊇ pts(o) for every o ∈ pts(s)     (d = star-s)
    - [Store (d, s)] : pts(o) ⊇ pts(s) for every o ∈ pts(d)     (star-d = s)

    Nested lvalues are normalized with fresh temporaries. The analysis is
    field- and element-insensitive: a struct or array is one object, and
    pointer arithmetic does not change the pointed-to object — exactly the
    conservative assumption RELAY inherits from Steensgaard/Andersen
    (Section 3.2 / 5.1 of the paper), and the source of the imprecision
    Chimera's symbolic bounds analysis compensates for. *)

open Minic.Ast
module A = Absloc

type t =
  | Addr of A.t * A.t
  | Copy of A.t * A.t
  | Load of A.t * A.t
  | Store of A.t * A.t

let pp ppf = function
  | Addr (d, s) -> Fmt.pf ppf "%a >= {%a}" A.pp d A.pp s
  | Copy (d, s) -> Fmt.pf ppf "%a >= %a" A.pp d A.pp s
  | Load (d, s) -> Fmt.pf ppf "%a >= *%a" A.pp d A.pp s
  | Store (d, s) -> Fmt.pf ppf "*%a >= %a" A.pp d A.pp s

type genv = {
  prog : program;
  tenv : Minic.Typecheck.env;
  mutable temp : int;
  mutable acc : t list;
}

let fresh g =
  g.temp <- g.temp + 1;
  A.ATemp g.temp

let emit g c = g.acc <- c :: g.acc

(** The abstract location for variable [v] as seen from function [fname]:
    a local/param of the function, a global, or a function constant. *)
let var_loc g fname v : A.t =
  let is_local =
    match Minic.Ast.find_fun g.prog fname with
    | Some f ->
        List.exists (fun d -> d.v_name = v) f.f_params
        || List.exists (fun d -> d.v_name = v) f.f_locals
    | None -> false
  in
  if is_local then A.ALocal (fname, v)
  else if Minic.Ast.find_fun g.prog v <> None then A.AFun v
  else A.AGlobal v

(** Where an lvalue lives: the object itself, or the objects designated by
    a pointer temporary. *)
type place = PDirect of A.t | PDeref of A.t

(* [trans_exp g fname e dst] emits constraints making pts(dst) include all
   pointer values of [e]. *)
let rec trans_exp g fname (e : exp) (dst : A.t) : unit =
  match e with
  | Const _ -> ()
  | Lval lv -> (
      (* reading the lvalue's contents — unless the lvalue is an array
         (decays to the object's address) or a function name (a constant
         address) *)
      let decays =
        try
          match Minic.Typecheck.type_of_lval g.tenv lv with
          | Tarray _ | Tfun _ -> true
          | _ -> false
        with _ -> false
      in
      match place_of_lval g fname lv with
      | PDirect a -> if decays then emit g (Addr (dst, a)) else emit g (Copy (dst, a))
      | PDeref t -> if decays then emit g (Copy (dst, t)) else emit g (Load (dst, t)))
  | AddrOf lv -> (
      match place_of_lval g fname lv with
      | PDirect a -> emit g (Addr (dst, a))
      | PDeref t -> emit g (Copy (dst, t)))
  | Unop (_, e) -> trans_exp g fname e dst
  | Binop (_, a, b) ->
      (* pointer arithmetic: result may point wherever either side points *)
      trans_exp g fname a dst;
      trans_exp g fname b dst

and place_of_lval g fname (lv : lval) : place =
  match lv with
  | Var v -> PDirect (var_loc g fname v)
  | Deref e ->
      let t = fresh g in
      trans_exp g fname e t;
      PDeref t
  | Index (base, _) -> (
      (* a[i] stays within object a when a is an array; p[i] dereferences
         p when p is a pointer *)
      let base_is_array =
        try
          match Minic.Typecheck.type_of_lval g.tenv base with
          | Tarray _ -> true
          | _ -> false
        with _ -> true
      in
      if base_is_array then place_of_lval g fname base
      else
        match place_of_lval g fname base with
        | PDirect p ->
            let t = fresh g in
            emit g (Copy (t, p));
            PDeref t
        | PDeref t ->
            let t2 = fresh g in
            emit g (Load (t2, t));
            PDeref t2)
  | Field (base, _) -> place_of_lval g fname base
  | Arrow (e, _) ->
      let t = fresh g in
      trans_exp g fname e t;
      PDeref t

(* assignment of expression [e] into place [pl] *)
let assign_into g fname pl (e : exp) : unit =
  match pl with
  | PDirect a -> trans_exp g fname e a
  | PDeref t ->
      let t2 = fresh g in
      trans_exp g fname e t2;
      emit g (Store (t, t2))

(* copy contents of absloc [src] into place [pl] (used for call returns) *)
let copy_into g pl (src : A.t) : unit =
  match pl with
  | PDirect a -> emit g (Copy (a, src))
  | PDeref t -> emit g (Store (t, src))

(** Synthetic location holding function [f]'s return value. *)
let ret_loc f = A.AGlobal ("$ret." ^ f)


(* bind arguments to the parameters of callee [callee] *)
let bind_args g fname (callee : fundec) (args : exp list) : unit =
  List.iteri
    (fun i (p : var_decl) ->
      match List.nth_opt args i with
      | Some a -> trans_exp g fname a (A.ALocal (callee.f_name, p.v_name))
      | None -> ())
    callee.f_params

let trans_stmt g (fname : string) (s : stmt)
    ~(resolve : string -> exp -> string list) : unit =
  match s.skind with
  | Assign (lv, e) -> assign_into g fname (place_of_lval g fname lv) e
  | Call (ret, tgt, args) ->
      let callees =
        match tgt with
        | Direct f -> [ f ]
        | ViaPtr e -> resolve fname e
      in
      List.iter
        (fun cname ->
          match Minic.Ast.find_fun g.prog cname with
          | None -> ()
          | Some callee ->
              bind_args g fname callee args;
              Option.iter
                (fun lv ->
                  copy_into g (place_of_lval g fname lv) (ret_loc cname))
                ret)
        callees
  | Builtin (ret, b, args) -> (
      match (b, args) with
      | Spawn, target :: rest ->
          let tgts =
            match Minic.Callgraph.syntactic_targets g.prog target with
            | Some ts -> ts
            | None -> resolve fname target
          in
          List.iter
            (fun tname ->
              match Minic.Ast.find_fun g.prog tname with
              | Some callee -> bind_args g fname callee rest
              | None -> ())
            tgts
      | Malloc, _ ->
          (* the heap object's address flows into wherever malloc's result
             is stored: pts(ret) ⊇ {heap site} *)
          (match ret with
          | Some lv -> (
              match place_of_lval g fname lv with
              | PDirect a -> emit g (Addr (a, A.AHeap s.sid))
              | PDeref t ->
                  let t2 = fresh g in
                  emit g (Addr (t2, A.AHeap s.sid));
                  emit g (Store (t, t2)))
          | None -> ())
      | (NetRead | FileRead), _buf :: _ -> ()
      | _ -> ())
  | Return (Some e) -> trans_exp g fname e (ret_loc fname)
  | _ -> ()

(** Generate all constraints for [p], resolving indirect calls/spawns with
    [resolve]. *)
let gen ?(resolve : (string -> exp -> string list) option) (p : program) :
    t list =
  let tenv = Minic.Typecheck.env_of_program p in
  let default_resolve _ e =
    match Minic.Callgraph.syntactic_targets p e with
    | Some ts -> ts
    | None -> Minic.Callgraph.address_taken_funs p
  in
  let resolve = Option.value resolve ~default:default_resolve in
  List.concat_map
    (fun (fd : fundec) ->
      let g =
        {
          prog = p;
          tenv = Minic.Typecheck.fun_env tenv fd;
          temp = 0;
          acc = [];
        }
      in
      (* temps must be globally unique: offset by function hash *)
      g.temp <- Hashtbl.hash fd.f_name land 0xffff * 100000;
      Minic.Ast.iter_stmts (fun s -> trans_stmt g fd.f_name s ~resolve) fd.f_body;
      g.acc)
    p.p_funs
