(** Combined pointer-analysis driver and query interface.

    Mirrors RELAY's use of pointer analysis (Section 6.2 of the paper):
    Andersen's inclusion-based analysis resolves function pointers (with
    an on-the-fly fixpoint: resolving targets can add constraints that
    reveal more targets), and both Andersen and Steensgaard answer object
    and aliasing queries. Queries used downstream:

    - {!lval_objects}: the abstract objects an lvalue access may touch —
      RELAY's overestimated shared-object sets;
    - {!lock_objects}: the abstract lock a [lock(&m)] argument denotes,
      kept only when it resolves to exactly one object (must-alias), which
      is the sound direction for locksets (underestimate);
    - {!resolve_funptr}: candidate targets of an indirect call/spawn. *)

open Minic.Ast
module A = Absloc

type solver = Use_andersen | Use_steensgaard

type t = {
  prog : program;
  tenv : Minic.Typecheck.env;
  andersen : Andersen.t;
  steensgaard : Steensgaard.t;
  solver : solver;
}

let rec run ?(solver = Use_andersen) ?(rounds = 4) (p : program) : t =
  ignore rounds;
  let tenv = Minic.Typecheck.env_of_program p in
  (* round 0: syntactic resolution *)
  let resolve0 _ e =
    match Minic.Callgraph.syntactic_targets p e with
    | Some ts -> ts
    | None -> Minic.Callgraph.address_taken_funs p
  in
  let constraints = Constr.gen ~resolve:resolve0 p in
  let andersen = Andersen.solve constraints in
  (* refinement rounds: use current solution to resolve pointers *)
  let fixpoint = ref { prog = p; tenv; andersen; steensgaard = Steensgaard.solve constraints; solver } in
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < 4 do
    incr round;
    changed := false;
    let cur = !fixpoint in
    let resolve fname e =
      let ts = resolve_funptr cur fname e in
      if ts = [] then resolve0 fname e else ts
    in
    let constraints' = Constr.gen ~resolve p in
    let andersen' = Andersen.solve constraints' in
    (* detect change in fn-ptr knowledge by comparing AFun points-to *)
    let funs_of st =
      Hashtbl.fold
        (fun k r acc ->
          A.Set.fold
            (fun l acc -> match l with A.AFun f -> (k, f) :: acc | _ -> acc)
            !r acc)
        st.Andersen.pts []
      |> List.sort_uniq compare
    in
    if funs_of andersen' <> funs_of cur.andersen then changed := true;
    fixpoint :=
      {
        prog = p;
        tenv;
        andersen = andersen';
        steensgaard = Steensgaard.solve constraints';
        solver;
      }
  done;
  !fixpoint

(** Points-to set of an abstract location under the selected solver,
    restricted to memory locations and functions. *)
and points_to (t : t) (l : A.t) : A.Set.t =
  let s =
    match t.solver with
    | Use_andersen -> Andersen.points_to t.andersen l
    | Use_steensgaard -> Steensgaard.points_to t.steensgaard l
  in
  A.Set.filter (fun l -> A.is_memory l || match l with A.AFun _ -> true | _ -> false) s

and var_loc (t : t) (fname : string) (v : string) : A.t =
  let is_local =
    match Minic.Ast.find_fun t.prog fname with
    | Some f ->
        List.exists (fun d -> d.v_name = v) f.f_params
        || List.exists (fun d -> d.v_name = v) f.f_locals
    | None -> false
  in
  if is_local then A.ALocal (fname, v)
  else if Minic.Ast.find_fun t.prog v <> None then A.AFun v
  else A.AGlobal v

(** Objects that reading/writing lvalue [lv] (evaluated in [fname]) may
    touch. *)
and lval_objects (t : t) (fname : string) (lv : lval) : A.Set.t =
  let fenv =
    match Minic.Ast.find_fun t.prog fname with
    | Some f -> Minic.Typecheck.fun_env t.tenv f
    | None -> t.tenv
  in
  let rec go lv =
    match lv with
    | Var v -> A.Set.singleton (var_loc t fname v)
    | Deref e -> ptr_values e
    | Index (base, _) -> (
        let base_is_array =
          try
            match Minic.Typecheck.type_of_lval fenv base with
            | Tarray _ -> true
            | _ -> false
          with _ -> false
        in
        if base_is_array then go base
        else
          (* p[i] = *(p+i): the contents of p *)
          A.Set.fold
            (fun o acc -> A.Set.union (points_to t o) acc)
            (go base) A.Set.empty)
    | Field (base, _) -> go base
    | Arrow (e, _) -> ptr_values e
  and ptr_values (e : exp) : A.Set.t =
    match e with
    | Const _ -> A.Set.empty
    | AddrOf lv -> go lv
    | Lval lv ->
        let is_array =
          try
            match Minic.Typecheck.type_of_lval fenv lv with
            | Tarray _ -> true
            | _ -> false
          with _ -> false
        in
        if is_array then go lv
        else
          A.Set.fold
            (fun o acc -> A.Set.union (points_to t o) acc)
            (go lv) A.Set.empty
    | Unop (_, e) -> ptr_values e
    | Binop (_, a, b) -> A.Set.union (ptr_values a) (ptr_values b)
  in
  A.Set.filter A.is_memory (go lv)

(** Pointer values an expression can evaluate to (used to resolve lock
    arguments and spawn args). *)
and exp_objects (t : t) (fname : string) (e : exp) : A.Set.t =
  match e with
  | AddrOf lv -> lval_objects t fname lv
  | Lval lv -> (
      (* arrays decay: the expression's value is the object's address *)
      let fenv =
        match Minic.Ast.find_fun t.prog fname with
        | Some f -> Minic.Typecheck.fun_env t.tenv f
        | None -> t.tenv
      in
      match
        (try Minic.Typecheck.type_of_lval fenv lv with _ -> Tint)
      with
      | Tarray _ -> lval_objects t fname lv
      | _ ->
          let objs = lval_objects t fname lv in
          A.Set.fold (fun o acc -> A.Set.union (points_to t o) acc) objs A.Set.empty)
  | Unop (_, e) -> exp_objects t fname e
  | Binop (_, a, b) -> A.Set.union (exp_objects t fname a) (exp_objects t fname b)
  | Const _ -> A.Set.empty

(** The lock object denoted by a [lock(e)] argument, if it resolves to a
    single must-alias object. Locksets must underestimate to stay sound. *)
and lock_objects (t : t) (fname : string) (e : exp) : A.t option =
  let objs = A.Set.filter A.is_memory (exp_objects t fname e) in
  match A.Set.elements objs with [ l ] -> Some l | _ -> None

(** Candidate function targets of an indirect call through [e]. *)
and resolve_funptr (t : t) (fname : string) (e : exp) : string list =
  match Minic.Callgraph.syntactic_targets t.prog e with
  | Some ts -> ts
  | None ->
      let vals =
        match e with
        | Lval lv ->
            let objs = lval_objects t fname lv in
            A.Set.fold
              (fun o acc -> A.Set.union (points_to t o) acc)
              objs A.Set.empty
        | _ -> exp_objects t fname e
      in
      A.Set.fold
        (fun l acc -> match l with A.AFun f -> f :: acc | _ -> acc)
        vals []
      |> List.sort_uniq compare

(** Call graph built with pointer-based resolution of indirect calls. *)
let callgraph (t : t) : Minic.Callgraph.t =
  Minic.Callgraph.build ~resolve:(resolve_funptr t) t.prog
