(** Inclusion-constraint generation from MiniC programs.

    The four classic constraint forms over abstract locations; nested
    lvalues are normalized with fresh temporaries. Field- and element-
    insensitive, and pointer arithmetic preserves the pointed-to object —
    the conservative assumptions RELAY inherits (paper Sections 3.2/5.1)
    and the source of imprecision Chimera's bounds analysis compensates
    for. *)

type t =
  | Addr of Absloc.t * Absloc.t   (** pts(d) ⊇ \{a\} *)
  | Copy of Absloc.t * Absloc.t   (** pts(d) ⊇ pts(s) *)
  | Load of Absloc.t * Absloc.t   (** pts(d) ⊇ pts(o) for o ∈ pts(s) *)
  | Store of Absloc.t * Absloc.t  (** pts(o) ⊇ pts(s) for o ∈ pts(d) *)

val pp : t Fmt.t

(** Synthetic location holding a function's return value. *)
val ret_loc : string -> Absloc.t

(** Generate all constraints for a program; [resolve] maps an indirect
    call/spawn target expression (in the named function) to candidate
    callees. *)
val gen :
  ?resolve:(string -> Minic.Ast.exp -> string list) ->
  Minic.Ast.program ->
  t list
